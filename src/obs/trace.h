// Phase tracing — Chrome trace_event ("X" complete events) spans for the
// coarse phases of a run: EM iterations, SMC passes and generations, pool
// launches, online updates, serve jobs. The JSON written by --trace-out
// loads directly in chrome://tracing and Perfetto; spans recorded on one
// thread nest by timestamp containment, so per-generation SMC spans appear
// under their pass/EM-iteration parents without any explicit nesting.
//
// Arming follows the metrics registry's pattern: a global recorder pointer
// checked with one relaxed load per span — unarmed spans are a no-op and
// never read the clock. Span name/category must be string LITERALS (the
// recorder stores the pointers; pre-sized event storage means steady-state
// recording allocates nothing until the event cap). Tracing never touches
// an RNG stream, so traced runs stay bitwise identical to untraced runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mpcgs::obs {

class TraceRecorder {
  public:
    /// Reserves `capacity` events up front; recording beyond it drops
    /// events (counted, reported in the JSON) instead of reallocating.
    explicit TraceRecorder(std::size_t capacity = 1 << 18);

    /// Append one complete event. `name`/`cat` must outlive the recorder
    /// (string literals at every call site). Thread-safe.
    void record(const char* name, const char* cat, std::uint64_t tsUs,
                std::uint64_t durUs);

    /// Microseconds since recorder construction (the trace time origin).
    std::uint64_t nowUs() const;

    std::size_t eventCount() const;
    std::uint64_t droppedEvents() const;

    /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...},...]}
    std::string toJson() const;

    /// Write toJson() to `path`; the obs.emit fail point and real I/O
    /// failures surface as IoError (exit code 6).
    void writeFile(const std::string& path) const;

  private:
    struct Event {
        const char* name;
        const char* cat;
        std::uint64_t tsUs;
        std::uint64_t durUs;
        std::uint32_t tid;
    };

    std::chrono::steady_clock::time_point t0_;
    mutable std::mutex mu_;
    std::vector<Event> events_;
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
};

/// Install `recorder` as the process-wide span target (nullptr disarms).
/// The caller keeps ownership and must outlive every span.
void armTrace(TraceRecorder* recorder);
TraceRecorder* activeTrace();

/// RAII span: captures the clock on construction, records a complete event
/// on destruction. No-op (no clock read) when tracing is unarmed.
class TraceSpan {
  public:
    TraceSpan(const char* name, const char* cat);
    ~TraceSpan();
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    TraceRecorder* rec_;
    const char* name_;
    const char* cat_;
    std::uint64_t t0Us_ = 0;
};

}  // namespace mpcgs::obs
