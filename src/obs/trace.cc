#include "obs/trace.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs::obs {
namespace {

std::atomic<TraceRecorder*> gRecorder{nullptr};

/// Small stable per-thread ids (1, 2, ...) so the trace viewer groups
/// rows sensibly instead of showing raw pthread handles.
std::atomic<std::uint32_t> gNextTid{1};
thread_local std::uint32_t tlTid = 0;

std::uint32_t traceTid() {
    if (tlTid == 0) tlTid = gNextTid.fetch_add(1, std::memory_order_relaxed);
    return tlTid;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : t0_(std::chrono::steady_clock::now()), capacity_(capacity) {
    events_.reserve(capacity_);
}

std::uint64_t TraceRecorder::nowUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void TraceRecorder::record(const char* name, const char* cat, std::uint64_t tsUs,
                           std::uint64_t durUs) {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(Event{name, cat, tsUs, durUs, traceTid()});
}

std::size_t TraceRecorder::eventCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::uint64_t TraceRecorder::droppedEvents() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::string TraceRecorder::toJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"traceEvents\":[";
    char buf[256];
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event& e = events_[i];
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
                      ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":%u}",
                      i == 0 ? "" : ",", e.name, e.cat, e.tsUs, e.durUs, e.tid);
        out += buf;
    }
    out += "],\"displayTimeUnit\":\"ms\"";
    if (dropped_ > 0) {
        std::snprintf(buf, sizeof buf, ",\"mpcgsDroppedEvents\":%" PRIu64, dropped_);
        out += buf;
    }
    out += "}";
    return out;
}

void TraceRecorder::writeFile(const std::string& path) const {
    if (const auto hit = MPCGS_FAILPOINT("obs.emit"); hit.fired()) {
        if (hit.action == failpoint::Action::Errno)
            throw IoError("trace write " + path + ": " + std::strerror(hit.errnum) +
                          " (errno " + std::to_string(hit.errnum) + ")");
        throw InjectedFaultError("obs.emit");
    }
    const std::string body = toJson() + "\n";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) throw IoError("trace open " + path + ": " + std::strerror(errno));
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        throw IoError("trace write " + path + ": " + std::strerror(errno));
}

void armTrace(TraceRecorder* recorder) {
    gRecorder.store(recorder, std::memory_order_release);
}

TraceRecorder* activeTrace() { return gRecorder.load(std::memory_order_acquire); }

TraceSpan::TraceSpan(const char* name, const char* cat)
    : rec_(activeTrace()), name_(name), cat_(cat) {
    if (rec_) t0Us_ = rec_->nowUs();
}

TraceSpan::~TraceSpan() {
    if (!rec_) return;
    const std::uint64_t end = rec_->nowUs();
    rec_->record(name_, cat_, t0Us_, end > t0Us_ ? end - t0Us_ : 0);
}

}  // namespace mpcgs::obs
