#include "obs/metrics.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iterator>

#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs::obs {
namespace {

/// Index-aligned with the enums in metrics.h; a static_assert per table
/// keeps them honest.
constexpr const char* kCounterNames[] = {
    "pool.launches",
    "pool.chunks_stolen",
    "pool.parks",
    "pool.wakes",
    "lik.flushes",
    "lik.combine_ops",
    "lik.matrices_requested",
    "lik.matrices_computed",
    "mcmc.steps",
    "mcmc.accepted",
    "mcmc.swaps_proposed",
    "mcmc.swaps_accepted",
    "smc.generations",
    "smc.resamples",
    "smc.online_updates",
    "smc.online_refreshes",
    "smc.rejuvenation_accepts",
    "serve.jobs_accepted",
    "serve.jobs_rejected",
    "serve.updates_accepted",
    "serve.checkpoint_writes",
};
static_assert(std::size(kCounterNames) == kCounterCount);

constexpr const char* kGaugeNames[] = {
    "mcmc.rhat",
    "mcmc.pooled_ess",
    "smc.ess_fraction",
    "smc.min_ess_fraction",
    "smc.step_logz",
    "smc.logz",
    "smc.online_logz_increment",
};
static_assert(std::size(kGaugeNames) == kGaugeCount);

constexpr const char* kHistogramNames[] = {
    "pool.launch_latency_us",
    "serve.job_latency_us.add_sequence",
    "serve.job_latency_us.estimate",
    "serve.job_latency_us.logz",
    "serve.job_latency_us.snapshot",
    "serve.job_latency_us.metrics",
    "serve.job_latency_us.shutdown",
    "serve.checkpoint_write_us",
};
static_assert(std::size(kHistogramNames) == kHistogramCount);

/// Static shard pool: wide enough for any pool the tools construct (the
/// bench sweeps stop at 8 threads; hardware_concurrency on the CI runners
/// is single digits). A thread arriving after exhaustion drops its
/// increments and is counted in droppedThreads.
constexpr std::size_t kMaxShards = 64;
detail::Shard gShards[kMaxShards];
std::atomic<std::size_t> gShardCount{0};
std::atomic<std::uint64_t> gDroppedThreads{0};

thread_local detail::Shard* tlShard = nullptr;

}  // namespace

namespace detail {

std::atomic<bool> gArmed{false};
std::atomic<std::uint64_t> gGauges[kGaugeCount] = {};
std::atomic<bool> gGaugeSet[kGaugeCount] = {};

Shard* shard() {
    if (tlShard) return tlShard;
    const std::size_t i = gShardCount.fetch_add(1, std::memory_order_relaxed);
    if (i >= kMaxShards) {
        gShardCount.store(kMaxShards, std::memory_order_relaxed);
        gDroppedThreads.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    tlShard = &gShards[i];
    return tlShard;
}

}  // namespace detail

void arm() { detail::gArmed.store(true, std::memory_order_relaxed); }
void disarm() { detail::gArmed.store(false, std::memory_order_relaxed); }

void reset() {
    const std::size_t used =
        std::min(gShardCount.load(std::memory_order_relaxed), kMaxShards);
    for (std::size_t s = 0; s < used; ++s) {
        detail::Shard& sh = gShards[s];
        for (std::size_t c = 0; c < kCounterCount; ++c)
            sh.counters[c].store(0, std::memory_order_relaxed);
        for (std::size_t h = 0; h < kHistogramCount; ++h) {
            for (std::size_t b = 0; b < kHistogramBuckets; ++b)
                sh.hist[h][b].store(0, std::memory_order_relaxed);
            sh.histSumUs[h].store(0, std::memory_order_relaxed);
        }
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
        detail::gGauges[g].store(0, std::memory_order_relaxed);
        detail::gGaugeSet[g].store(false, std::memory_order_relaxed);
    }
    gDroppedThreads.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::histCount(Histogram h) const {
    const std::size_t hi = static_cast<std::size_t>(h);
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) n += hist[hi][b];
    return n;
}

std::uint64_t MetricsSnapshot::histQuantileUs(Histogram h, double q) const {
    const std::size_t hi = static_cast<std::size_t>(h);
    const std::uint64_t total = histCount(h);
    if (total == 0) return 0;
    const double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        seen += hist[hi][b];
        if (static_cast<double>(seen) >= target)
            return b < kHistogramBuckets - 1 ? (std::uint64_t{1} << b)
                                             : histSumUs[hi];  // +Inf bucket: cap at sum
    }
    return histSumUs[hi];
}

MetricsSnapshot snapshot() {
    MetricsSnapshot out;
    const std::size_t used =
        std::min(gShardCount.load(std::memory_order_relaxed), kMaxShards);
    for (std::size_t s = 0; s < used; ++s) {
        const detail::Shard& sh = gShards[s];
        for (std::size_t c = 0; c < kCounterCount; ++c)
            out.counters[c] += sh.counters[c].load(std::memory_order_relaxed);
        for (std::size_t h = 0; h < kHistogramCount; ++h) {
            for (std::size_t b = 0; b < kHistogramBuckets; ++b)
                out.hist[h][b] += sh.hist[h][b].load(std::memory_order_relaxed);
            out.histSumUs[h] += sh.histSumUs[h].load(std::memory_order_relaxed);
        }
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
        out.gaugeSet[g] = detail::gGaugeSet[g].load(std::memory_order_relaxed);
        out.gauges[g] = std::bit_cast<double>(
            detail::gGauges[g].load(std::memory_order_relaxed));
    }
    out.droppedThreads = gDroppedThreads.load(std::memory_order_relaxed);
    return out;
}

const char* counterName(Counter c) {
    return kCounterNames[static_cast<std::size_t>(c)];
}
const char* gaugeName(Gauge g) { return kGaugeNames[static_cast<std::size_t>(g)]; }
const char* histogramName(Histogram h) {
    return kHistogramNames[static_cast<std::size_t>(h)];
}

std::string toJson(const MetricsSnapshot& snap) {
    std::string out = "{";
    char buf[128];
    const auto emit = [&](const std::string& key, const std::string& value) {
        if (out.size() > 1) out += ',';
        out += '"';
        out += key;  // taxonomy names need no escaping
        out += "\":";
        out += value;
    };
    for (std::size_t c = 0; c < kCounterCount; ++c) {
        std::snprintf(buf, sizeof buf, "%" PRIu64, snap.counters[c]);
        emit(kCounterNames[c], buf);
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
        if (!snap.gaugeSet[g]) continue;
        std::snprintf(buf, sizeof buf, "%.17g", snap.gauges[g]);
        emit(kGaugeNames[g], buf);
    }
    for (std::size_t h = 0; h < kHistogramCount; ++h) {
        const auto hh = static_cast<Histogram>(h);
        const std::uint64_t n = snap.histCount(hh);
        if (n == 0) continue;
        const std::string base = kHistogramNames[h];
        std::snprintf(buf, sizeof buf, "%" PRIu64, n);
        emit(base + ".count", buf);
        std::snprintf(buf, sizeof buf, "%" PRIu64, snap.histSumUs[h]);
        emit(base + ".sum", buf);
        std::snprintf(buf, sizeof buf, "%" PRIu64, snap.histQuantileUs(hh, 0.50));
        emit(base + ".p50", buf);
        std::snprintf(buf, sizeof buf, "%" PRIu64, snap.histQuantileUs(hh, 0.90));
        emit(base + ".p90", buf);
        std::snprintf(buf, sizeof buf, "%" PRIu64, snap.histQuantileUs(hh, 0.99));
        emit(base + ".p99", buf);
    }
    if (snap.droppedThreads > 0) {
        std::snprintf(buf, sizeof buf, "%" PRIu64, snap.droppedThreads);
        emit("obs.dropped_threads", buf);
    }
    out += '}';
    return out;
}

namespace {

/// pool.launch_latency_us -> mpcgs_pool_launch_latency_us
std::string promName(const char* name) {
    std::string out = "mpcgs_";
    for (const char* p = name; *p; ++p) out += *p == '.' ? '_' : *p;
    return out;
}

}  // namespace

std::string toPrometheus(const MetricsSnapshot& snap) {
    std::string out;
    char buf[160];
    for (std::size_t c = 0; c < kCounterCount; ++c) {
        const std::string n = promName(kCounterNames[c]);
        out += "# TYPE " + n + " counter\n";
        std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", n.c_str(),
                      snap.counters[c]);
        out += buf;
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
        if (!snap.gaugeSet[g]) continue;
        const std::string n = promName(kGaugeNames[g]);
        out += "# TYPE " + n + " gauge\n";
        std::snprintf(buf, sizeof buf, "%s %.17g\n", n.c_str(), snap.gauges[g]);
        out += buf;
    }
    for (std::size_t h = 0; h < kHistogramCount; ++h) {
        if (snap.histCount(static_cast<Histogram>(h)) == 0) continue;
        const std::string n = promName(kHistogramNames[h]);
        out += "# TYPE " + n + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            cum += snap.hist[h][b];
            if (b < kHistogramBuckets - 1)
                std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                              n.c_str(), std::uint64_t{1} << b, cum);
            else
                std::snprintf(buf, sizeof buf, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                              n.c_str(), cum);
            out += buf;
        }
        std::snprintf(buf, sizeof buf, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                      n.c_str(), snap.histSumUs[h], n.c_str(), cum);
        out += buf;
    }
    return out;
}

void writeMetricsFile(const std::string& path) {
    if (const auto hit = MPCGS_FAILPOINT("obs.emit"); hit.fired()) {
        if (hit.action == failpoint::Action::Errno)
            throw IoError("metrics write " + path + ": " +
                          std::strerror(hit.errnum) + " (errno " +
                          std::to_string(hit.errnum) + ")");
        throw InjectedFaultError("obs.emit");
    }
    const std::string body = toJson(snapshot()) + "\n";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) throw IoError("metrics open " + path + ": " + std::strerror(errno));
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        throw IoError("metrics write " + path + ": " + std::strerror(errno));
}

}  // namespace mpcgs::obs
