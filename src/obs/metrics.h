// Runtime metrics registry — lock-free named counters, gauges, and
// fixed-bucket latency histograms for the whole stack (pool, likelihood
// backends, MCMC, SMC, serve).
//
// Design mirrors util/failpoint.h: every instrumentation site is compiled
// into the binary permanently but costs one relaxed atomic load plus a
// branch while the registry is unarmed, so production runs that never pass
// --metrics-out pay nothing measurable. When armed:
//
//   * Counters increment into PER-THREAD SHARDS drawn from a fixed static
//     pool — a single-writer relaxed load/store pair per increment, so the
//     hot path has zero atomic RMW contention and zero heap allocation
//     (tests/zero_alloc_test.cc runs its windows with the registry armed).
//     snapshot() folds the shards on the read side.
//   * Gauges are last-write-wins doubles; by convention they are only set
//     from serial sections (the same rule the fail points follow), so the
//     relaxed store is race-free in practice and benign otherwise.
//   * Histograms use power-of-two microsecond buckets (le 1, 2, 4, ...,
//     2^14, +Inf) — bucket selection is a bit scan, no search, no floats.
//
// Instrumentation NEVER touches an RNG stream and never branches on
// sampler state, so arming the registry cannot perturb any estimate: the
// bitwise thread-invariance and checkpoint/resume-identity suites run with
// metrics on (tests/obs_test.cc).
//
// The metric name taxonomy (emitted by toJson/toPrometheus):
//   pool.*   thread-pool launches, steals, park/wake, launch latency
//   lik.*    backend flushes, combine ops, matrices requested/computed
//   mcmc.*   sampler steps/accepts/swaps, R-hat and pooled-ESS gauges
//   smc.*    generations, resamples, ESS trajectory, logZ increments
//   serve.*  per-job-type latency, accepted/rejected jobs, checkpointing
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mpcgs::obs {

// Fixed compile-time metric sets: names live in kCounterNames /
// kGaugeNames / kHistogramNames (metrics.cc), index-aligned with these
// enums. A fixed set is what makes allocation-free per-thread shards
// possible; adding a metric is one enum entry plus one name.
enum class Counter : std::uint32_t {
    PoolLaunches,
    PoolChunksStolen,
    PoolParks,
    PoolWakes,
    LikFlushes,
    LikCombineOps,
    LikMatricesRequested,
    LikMatricesComputed,
    McmcSteps,
    McmcAccepted,
    McmcSwapsProposed,
    McmcSwapsAccepted,
    SmcGenerations,
    SmcResamples,
    SmcOnlineUpdates,
    SmcOnlineRefreshes,
    SmcRejuvenationAccepts,
    ServeJobsAccepted,
    ServeJobsRejected,
    ServeUpdatesAccepted,
    ServeCheckpointWrites,
    kCount
};

enum class Gauge : std::uint32_t {
    McmcRhat,
    McmcPooledEss,
    SmcEssFraction,
    SmcMinEssFraction,
    SmcStepLogZ,
    SmcLogZ,
    SmcOnlineLogZIncrement,
    kCount
};

enum class Histogram : std::uint32_t {
    PoolLaunchLatencyUs,
    ServeAddSequenceUs,
    ServeEstimateUs,
    ServeLogzUs,
    ServeSnapshotUs,
    ServeMetricsUs,
    ServeShutdownUs,
    ServeCheckpointWriteUs,
    kCount
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);
/// Buckets 0..14 hold values <= 2^i microseconds; bucket 15 is +Inf.
inline constexpr std::size_t kHistogramBuckets = 16;

namespace detail {

/// One thread's private slice of the registry. Cells are single-writer:
/// only the owning thread stores, so increments are a relaxed load + store
/// (no RMW, no lock prefix); snapshot() reads them relaxed from the
/// folding thread — every ordering is benign for monotonic counters.
struct alignas(64) Shard {
    std::atomic<std::uint64_t> counters[kCounterCount];
    std::atomic<std::uint64_t> hist[kHistogramCount][kHistogramBuckets];
    std::atomic<std::uint64_t> histSumUs[kHistogramCount];
};

extern std::atomic<bool> gArmed;
extern std::atomic<std::uint64_t> gGauges[kGaugeCount];  ///< bit_cast doubles
extern std::atomic<bool> gGaugeSet[kGaugeCount];

/// Claim (or recall) this thread's shard from the static pool; returns
/// nullptr once the pool is exhausted (increments are then dropped and
/// counted — see Snapshot::droppedThreads). Never allocates.
Shard* shard();

inline void bump(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

}  // namespace detail

/// True while any consumer armed the registry. Sites are free to skip
/// work (e.g. a clock read) that only feeds metrics.
inline bool armed() { return detail::gArmed.load(std::memory_order_relaxed); }

/// Add `n` to a counter. Unarmed: one relaxed load + branch.
inline void add(Counter c, std::uint64_t n = 1) {
    if (!armed()) return;
    if (detail::Shard* s = detail::shard())
        detail::bump(s->counters[static_cast<std::size_t>(c)], n);
}

/// Set a gauge (last write wins; serial sections only by convention).
inline void set(Gauge g, double value) {
    if (!armed()) return;
    detail::gGauges[static_cast<std::size_t>(g)].store(
        std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
    detail::gGaugeSet[static_cast<std::size_t>(g)].store(true,
                                                         std::memory_order_relaxed);
}

/// Record one histogram observation in microseconds.
inline void observe(Histogram h, std::uint64_t us) {
    if (!armed()) return;
    detail::Shard* s = detail::shard();
    if (!s) return;
    const std::size_t hi = static_cast<std::size_t>(h);
    std::size_t b = us <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(us - 1));
    if (b >= kHistogramBuckets) b = kHistogramBuckets - 1;
    detail::bump(s->hist[hi][b], 1);
    detail::bump(s->histSumUs[hi], us);
}

/// Arm / disarm the registry process-wide. Shards persist across
/// arm/disarm cycles; disarm only stops new recording.
void arm();
void disarm();

/// Zero every shard, gauge, and drop counter (tests, bench row isolation).
/// Call from a quiescent point — concurrent writers would race the zeroing.
void reset();

/// Folded read-side view of the registry.
struct MetricsSnapshot {
    std::uint64_t counters[kCounterCount] = {};
    double gauges[kGaugeCount] = {};
    bool gaugeSet[kGaugeCount] = {};
    std::uint64_t hist[kHistogramCount][kHistogramBuckets] = {};
    std::uint64_t histSumUs[kHistogramCount] = {};
    std::uint64_t droppedThreads = 0;  ///< threads that exhausted the shard pool

    std::uint64_t counter(Counter c) const {
        return counters[static_cast<std::size_t>(c)];
    }
    std::uint64_t histCount(Histogram h) const;
    /// Upper-bound quantile estimate from the bucket boundaries (returns
    /// the `le` bound of the bucket holding quantile q; 0 when empty).
    std::uint64_t histQuantileUs(Histogram h, double q) const;
};

MetricsSnapshot snapshot();

const char* counterName(Counter c);
const char* gaugeName(Gauge g);
const char* histogramName(Histogram h);

/// Flat single-level JSON object: every counter, every set gauge, and
/// count/sum/p50/p90/p99 per non-empty histogram. Parses with
/// serve/json_mini (no nesting) and python -c json.loads alike.
std::string toJson(const MetricsSnapshot& snap);

/// Prometheus text exposition format (# TYPE lines, _bucket{le=...},
/// _sum/_count), metric names mangled mpcgs_<name with . -> _>.
std::string toPrometheus(const MetricsSnapshot& snap);

/// Snapshot and write the flat JSON to `path`. The obs.emit fail point and
/// every real open/write failure surface as IoError (exit code 6) — losing
/// the metrics of a finished run is an operational fault, not a warning.
void writeMetricsFile(const std::string& path);

}  // namespace mpcgs::obs
