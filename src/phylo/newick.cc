#include "phylo/newick.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace mpcgs {
namespace {

// --- writing ---------------------------------------------------------------

void writeNode(const Genealogy& g, NodeId id, int precision, std::string& out) {
    const TreeNode& nd = g.node(id);
    if (g.isTip(id)) {
        out += g.tipNames()[static_cast<std::size_t>(id)];
    } else {
        out += '(';
        writeNode(g, nd.child[0], precision, out);
        out += ',';
        writeNode(g, nd.child[1], precision, out);
        out += ')';
    }
    if (nd.parent != kNoNode) {
        char buf[48];
        std::snprintf(buf, sizeof buf, ":%.*g", precision, g.branchLength(id));
        out += buf;
    }
}

// --- parsing ---------------------------------------------------------------

struct ParseNode {
    int left = -1;
    int right = -1;
    double branch = 0.0;  // length of the branch above this node
    std::string name;
    bool isTip = false;
};

class Parser {
  public:
    explicit Parser(const std::string& text) : s_(text) {}

    int parseTree() {
        skipWs();
        const int root = parseClade();
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ';') ++pos_;
        skipWs();
        if (pos_ != s_.size())
            throw ParseError("newick: trailing characters at offset " + std::to_string(pos_));
        return root;
    }

    std::vector<ParseNode>& nodes() { return nodes_; }

  private:
    int parseClade() {
        skipWs();
        int id;
        if (peek() == '(') {
            ++pos_;  // '('
            const int left = parseClade();
            skipWs();
            if (peek() != ',') throw ParseError("newick: expected ',' (binary trees only)");
            ++pos_;
            const int right = parseClade();
            skipWs();
            if (peek() != ')') throw ParseError("newick: expected ')'");
            ++pos_;
            id = static_cast<int>(nodes_.size());
            nodes_.push_back(ParseNode{});
            nodes_[static_cast<std::size_t>(id)].left = left;
            nodes_[static_cast<std::size_t>(id)].right = right;
            // Optional internal label, ignored for topology purposes.
            nodes_[static_cast<std::size_t>(id)].name = parseLabel();
        } else {
            id = static_cast<int>(nodes_.size());
            nodes_.push_back(ParseNode{});
            nodes_[static_cast<std::size_t>(id)].isTip = true;
            nodes_[static_cast<std::size_t>(id)].name = parseLabel();
        }
        skipWs();
        if (peek() == ':') {
            ++pos_;
            nodes_[static_cast<std::size_t>(id)].branch = parseNumber();
        }
        return id;
    }

    std::string parseLabel() {
        skipWs();
        std::string out;
        if (peek() == '\'') {  // quoted label
            ++pos_;
            while (pos_ < s_.size() && s_[pos_] != '\'') out += s_[pos_++];
            if (pos_ >= s_.size()) throw ParseError("newick: unterminated quoted label");
            ++pos_;
            return out;
        }
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == ',' || c == ')' || c == '(' || c == ':' || c == ';' ||
                std::isspace(static_cast<unsigned char>(c)))
                break;
            out += c;
            ++pos_;
        }
        return out;
    }

    double parseNumber() {
        skipWs();
        const char* begin = s_.c_str() + pos_;
        char* end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin) throw ParseError("newick: expected a number");
        pos_ += static_cast<std::size_t>(end - begin);
        return v;
    }

    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string& s_;
    std::size_t pos_ = 0;
    std::vector<ParseNode> nodes_;
};

}  // namespace

std::string toNewick(const Genealogy& g, int precision) {
    std::string out;
    writeNode(g, g.root(), precision, out);
    out += ';';
    return out;
}

Genealogy fromNewick(const std::string& text, double ultrametricTol) {
    Parser parser(text);
    const int parseRoot = parser.parseTree();
    auto& pnodes = parser.nodes();

    int nTips = 0;
    for (const auto& pn : pnodes)
        if (pn.isTip) ++nTips;
    if (nTips < 2) throw ParseError("newick: need at least two tips");

    // Depth of each parse node from the root (sum of branch lengths).
    std::vector<double> depth(pnodes.size(), 0.0);
    std::vector<int> order{parseRoot};  // preorder
    for (std::size_t i = 0; i < order.size(); ++i) {
        const auto& pn = pnodes[static_cast<std::size_t>(order[i])];
        if (!pn.isTip) {
            depth[static_cast<std::size_t>(pn.left)] =
                depth[static_cast<std::size_t>(order[i])] + pnodes[static_cast<std::size_t>(pn.left)].branch;
            depth[static_cast<std::size_t>(pn.right)] =
                depth[static_cast<std::size_t>(order[i])] + pnodes[static_cast<std::size_t>(pn.right)].branch;
            order.push_back(pn.left);
            order.push_back(pn.right);
        }
    }

    double height = 0.0;
    for (std::size_t i = 0; i < pnodes.size(); ++i)
        if (pnodes[i].isTip && depth[i] > height) height = depth[i];
    if (height <= 0.0) throw ParseError("newick: tree has zero height");
    for (std::size_t i = 0; i < pnodes.size(); ++i) {
        if (pnodes[i].isTip && std::fabs(depth[i] - height) > ultrametricTol * height)
            throw ParseError("newick: tree is not ultrametric (tip depths differ)");
    }

    Genealogy g(nTips);
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(nTips));
    std::vector<NodeId> mapped(pnodes.size(), kNoNode);

    int nextTip = 0;
    int nextInternal = nTips;
    // Assign ids in the preorder discovered above so tips get encounter
    // order, matching `ms`-style unlabeled output.
    for (const int pid : order) {
        const auto& pn = pnodes[static_cast<std::size_t>(pid)];
        if (pn.isTip) {
            mapped[static_cast<std::size_t>(pid)] = nextTip;
            names.push_back(pn.name.empty() ? ("t" + std::to_string(nextTip + 1)) : pn.name);
            ++nextTip;
        } else {
            mapped[static_cast<std::size_t>(pid)] = nextInternal++;
        }
    }

    for (const int pid : order) {
        const auto& pn = pnodes[static_cast<std::size_t>(pid)];
        const NodeId id = mapped[static_cast<std::size_t>(pid)];
        const double t = height - depth[static_cast<std::size_t>(pid)];
        g.node(id).time = pn.isTip ? 0.0 : t;
        if (!pn.isTip) {
            g.link(id, mapped[static_cast<std::size_t>(pn.left)]);
            g.link(id, mapped[static_cast<std::size_t>(pn.right)]);
        }
    }
    g.setRoot(mapped[static_cast<std::size_t>(parseRoot)]);
    g.setTipNames(std::move(names));
    g.validate();
    return g;
}

}  // namespace mpcgs
