// Genealogical trees (§2.4 of Davis 2016).
//
// A Genealogy is a rooted, strictly bifurcating tree over n contemporary
// tips. Node times are measured backwards from the present: every tip is at
// time 0 and internal (coalescent) nodes carry strictly positive times, the
// root being the most ancient. Branch length = time(parent) - time(child).
//
// Storage is an index-based arena (std::vector<Node>): tips occupy indices
// [0, n), internal nodes [n, 2n-1). This makes the N+1 proposal slots of
// the GMH sampler cheap to preallocate and copy (§5.1.3) and traversals
// cache-friendly.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace mpcgs {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

struct TreeNode {
    NodeId parent = kNoNode;
    std::array<NodeId, 2> child{kNoNode, kNoNode};
    double time = 0.0;  ///< backwards from the present; 0 for tips

    bool isLeaf() const { return child[0] == kNoNode && child[1] == kNoNode; }

    bool operator==(const TreeNode&) const = default;
};

/// One inter-coalescent interval of a genealogy: `lineages` lineages are
/// extant for the duration [begin, end). Used by the coalescent prior
/// (Eq. 18) and stored per-sample by the posterior kernel (§5.1.3 keeps
/// only interval vectors for sampled genealogies).
struct CoalInterval {
    double begin = 0.0;    ///< more recent boundary
    double end = 0.0;      ///< more ancient boundary
    int lineages = 0;      ///< lineage count throughout the interval

    double length() const { return end - begin; }
};

class Genealogy {
  public:
    Genealogy() = default;

    /// An unlinked forest of n tips at time 0 (build topology afterwards).
    explicit Genealogy(int nTips);

    int tipCount() const { return nTips_; }
    int nodeCount() const { return static_cast<int>(nodes_.size()); }
    int internalCount() const { return nTips_ > 0 ? nTips_ - 1 : 0; }

    NodeId root() const { return root_; }
    void setRoot(NodeId r) { root_ = r; }

    TreeNode& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
    const TreeNode& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }

    bool isTip(NodeId id) const { return id >= 0 && id < nTips_; }

    const std::vector<std::string>& tipNames() const { return tipNames_; }
    void setTipNames(std::vector<std::string> names);
    /// Tip index by name; kNoNode when absent.
    NodeId tipByName(const std::string& name) const;

    /// Attach `child` under `parent` in the first free child slot.
    void link(NodeId parent, NodeId child);
    /// Detach `child` from its parent (compacting the parent's child slots).
    void unlink(NodeId child);

    /// Sibling of `id` under its parent (kNoNode for the root).
    NodeId sibling(NodeId id) const;

    /// Branch length above `id`; throws for the root.
    double branchLength(NodeId id) const;

    /// Node ids in postorder (children before parents) from the root.
    std::vector<NodeId> postorder() const;
    /// Postorder into caller-owned storage: `out` receives the ids and
    /// `stack` is traversal scratch. Neither allocates once warm — the
    /// allocation-free form used by the evaluation hot path.
    void postorderInto(std::vector<NodeId>& out, std::vector<NodeId>& stack) const;
    /// Node ids in preorder.
    std::vector<NodeId> preorder() const;

    /// Internal node ids sorted by time ascending.
    std::vector<NodeId> internalsByTime() const;

    /// The n-1 inter-coalescent intervals, most recent first (Fig 3).
    std::vector<CoalInterval> intervals() const;

    /// Time of the most recent common ancestor (root time).
    double tmrca() const;

    /// Multiply all node times by f > 0.
    void scaleTimes(double f);

    /// Structural invariants: bifurcating, parent/child symmetry, tip times
    /// zero, parent strictly more ancient than child, single root, all
    /// nodes reachable. Throws InvariantError with a description on
    /// failure.
    void validate() const;

    /// Total branch length (sum over non-root nodes).
    double totalBranchLength() const;

    bool operator==(const Genealogy& o) const = default;

  private:
    std::vector<TreeNode> nodes_;
    std::vector<std::string> tipNames_;
    NodeId root_ = kNoNode;
    int nTips_ = 0;
};

}  // namespace mpcgs
