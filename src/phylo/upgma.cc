#include "phylo/upgma.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace mpcgs {

Genealogy upgmaTree(const DistanceMatrix& d) {
    const int n = static_cast<int>(d.size());
    if (n < 2) throw ConfigError("upgma: need at least two sequences");
    for (const auto& row : d)
        if (static_cast<int>(row.size()) != n) throw ConfigError("upgma: matrix not square");

    Genealogy g(n);

    // Active cluster list: representative genealogy node, height, size.
    struct Cluster {
        NodeId node;
        double height;
        int size;
    };
    std::vector<Cluster> clusters;
    clusters.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) clusters.push_back({i, 0.0, 1});

    // Working copy of distances indexed by position in `clusters`.
    std::vector<std::vector<double>> dist(static_cast<std::size_t>(n),
                                          std::vector<double>(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];

    NodeId nextInternal = n;
    while (clusters.size() > 1) {
        // Find the closest pair.
        std::size_t bi = 0, bj = 1;
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < clusters.size(); ++i)
            for (std::size_t j = i + 1; j < clusters.size(); ++j)
                if (dist[i][j] < best) {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }

        // Merge height: half the distance, nudged to stay strictly above
        // both children (identical sequences would otherwise produce
        // zero-length branches).
        const double childMax = std::max(clusters[bi].height, clusters[bj].height);
        double h = best / 2.0;
        const double eps = std::max(1e-12, childMax * 1e-9 + 1e-12);
        if (h <= childMax) h = childMax + eps;

        const NodeId parent = nextInternal++;
        g.node(parent).time = h;
        g.link(parent, clusters[bi].node);
        g.link(parent, clusters[bj].node);

        // Lance-Williams size-weighted average-linkage update.
        const double wi = clusters[bi].size;
        const double wj = clusters[bj].size;
        for (std::size_t k = 0; k < clusters.size(); ++k) {
            if (k == bi || k == bj) continue;
            const double nd = (wi * dist[bi][k] + wj * dist[bj][k]) / (wi + wj);
            dist[bi][k] = dist[k][bi] = nd;
        }
        clusters[bi] = {parent, h, clusters[bi].size + clusters[bj].size};

        // Remove cluster bj by swapping with the last entry.
        const std::size_t last = clusters.size() - 1;
        if (bj != last) {
            clusters[bj] = clusters[last];
            for (std::size_t k = 0; k < clusters.size(); ++k) {
                dist[bj][k] = dist[last][k];
                dist[k][bj] = dist[k][last];
            }
        }
        clusters.pop_back();
    }

    g.setRoot(clusters[0].node);
    g.validate();
    return g;
}

void scaleToExpectedHeight(Genealogy& g, double theta0) {
    if (theta0 <= 0.0) throw ConfigError("scaleToExpectedHeight: theta0 must be positive");
    const double n = g.tipCount();
    const double target = theta0 * (1.0 - 1.0 / n);
    const double height = g.tmrca();
    require(height > 0.0, "scaleToExpectedHeight: degenerate tree height");
    g.scaleTimes(target / height);
}

}  // namespace mpcgs
