// UPGMA clustering for the sampler's initial genealogy (§5.1.3).
//
// Following the paper (and LAMARC), the Markov chain is seeded with the
// UPGMA tree of the pairwise sequence distances, with node heights scaled
// to the expected coalescent height for the driving value θ0.
#pragma once

#include <vector>

#include "phylo/tree.h"

namespace mpcgs {

/// Symmetric pairwise distance matrix (row i, column j).
using DistanceMatrix = std::vector<std::vector<double>>;

/// Agglomerative average-linkage (UPGMA) clustering. Node heights are half
/// the cluster distance at each merge; zero or tied distances are nudged by
/// a relative epsilon so the resulting genealogy has strictly increasing
/// coalescent times (required by the coalescent density, which is
/// continuous). Throws ConfigError on a non-square or too-small matrix.
Genealogy upgmaTree(const DistanceMatrix& d);

/// Scale `g` so its root height equals the expected coalescent TMRCA for
/// the driving value theta0, E[TMRCA] = theta0 * (1 - 1/n) under Eq. (17).
/// This is the paper's "branch lengths are scaled by the assumed driving
/// value of theta" deviation from standard UPGMA.
void scaleToExpectedHeight(Genealogy& g, double theta0);

}  // namespace mpcgs
