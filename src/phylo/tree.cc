#include "phylo/tree.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mpcgs {

Genealogy::Genealogy(int nTips) : nTips_(nTips) {
    require(nTips >= 2, "Genealogy needs at least 2 tips");
    nodes_.resize(static_cast<std::size_t>(2 * nTips - 1));
    tipNames_.resize(static_cast<std::size_t>(nTips));
    for (int i = 0; i < nTips; ++i) tipNames_[static_cast<std::size_t>(i)] = "t" + std::to_string(i + 1);
}

void Genealogy::setTipNames(std::vector<std::string> names) {
    require(static_cast<int>(names.size()) == nTips_, "tip name count mismatch");
    tipNames_ = std::move(names);
}

NodeId Genealogy::tipByName(const std::string& name) const {
    for (int i = 0; i < nTips_; ++i)
        if (tipNames_[static_cast<std::size_t>(i)] == name) return i;
    return kNoNode;
}

void Genealogy::link(NodeId parent, NodeId child) {
    TreeNode& p = node(parent);
    require(p.child[0] == kNoNode || p.child[1] == kNoNode, "link: parent already full");
    if (p.child[0] == kNoNode)
        p.child[0] = child;
    else
        p.child[1] = child;
    node(child).parent = parent;
}

void Genealogy::unlink(NodeId child) {
    const NodeId parent = node(child).parent;
    require(parent != kNoNode, "unlink: node has no parent");
    TreeNode& p = node(parent);
    if (p.child[0] == child) {
        p.child[0] = p.child[1];
        p.child[1] = kNoNode;
    } else if (p.child[1] == child) {
        p.child[1] = kNoNode;
    } else {
        require(false, "unlink: parent/child links inconsistent");
    }
    node(child).parent = kNoNode;
}

NodeId Genealogy::sibling(NodeId id) const {
    const NodeId parent = node(id).parent;
    if (parent == kNoNode) return kNoNode;
    const TreeNode& p = node(parent);
    return p.child[0] == id ? p.child[1] : p.child[0];
}

double Genealogy::branchLength(NodeId id) const {
    const NodeId parent = node(id).parent;
    require(parent != kNoNode, "branchLength: root has no branch");
    return node(parent).time - node(id).time;
}

std::vector<NodeId> Genealogy::postorder() const {
    std::vector<NodeId> out;
    std::vector<NodeId> stack;
    postorderInto(out, stack);
    return out;
}

void Genealogy::postorderInto(std::vector<NodeId>& out, std::vector<NodeId>& stack) const {
    out.clear();
    out.reserve(nodes_.size());
    // Iterative two-stack postorder (reversed reverse-preorder).
    stack.clear();
    stack.push_back(root_);
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        out.push_back(id);
        const TreeNode& nd = node(id);
        if (nd.child[0] != kNoNode) stack.push_back(nd.child[0]);
        if (nd.child[1] != kNoNode) stack.push_back(nd.child[1]);
    }
    std::reverse(out.begin(), out.end());
}

std::vector<NodeId> Genealogy::preorder() const {
    std::vector<NodeId> out;
    out.reserve(nodes_.size());
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        out.push_back(id);
        const TreeNode& nd = node(id);
        if (nd.child[1] != kNoNode) stack.push_back(nd.child[1]);
        if (nd.child[0] != kNoNode) stack.push_back(nd.child[0]);
    }
    return out;
}

std::vector<NodeId> Genealogy::internalsByTime() const {
    std::vector<NodeId> ids;
    ids.reserve(static_cast<std::size_t>(internalCount()));
    for (NodeId id = nTips_; id < nodeCount(); ++id) ids.push_back(id);
    std::sort(ids.begin(), ids.end(),
              [this](NodeId a, NodeId b) { return node(a).time < node(b).time; });
    return ids;
}

std::vector<CoalInterval> Genealogy::intervals() const {
    const auto ids = internalsByTime();
    std::vector<CoalInterval> out;
    out.reserve(ids.size());
    double prev = 0.0;
    int k = nTips_;
    for (const NodeId id : ids) {
        const double t = node(id).time;
        out.push_back(CoalInterval{prev, t, k});
        prev = t;
        --k;
    }
    return out;
}

double Genealogy::tmrca() const {
    require(root_ != kNoNode, "tmrca: tree has no root");
    return node(root_).time;
}

void Genealogy::scaleTimes(double f) {
    require(f > 0.0, "scaleTimes: factor must be positive");
    for (auto& nd : nodes_) nd.time *= f;
}

double Genealogy::totalBranchLength() const {
    double total = 0.0;
    for (NodeId id = 0; id < nodeCount(); ++id)
        if (id != root_) total += branchLength(id);
    return total;
}

void Genealogy::validate() const {
    require(root_ != kNoNode, "validate: no root");
    require(node(root_).parent == kNoNode, "validate: root has a parent");
    require(nodeCount() == 2 * nTips_ - 1, "validate: wrong node count");

    std::vector<char> seen(nodes_.size(), 0);
    for (const NodeId id : postorder()) {
        require(!seen[static_cast<std::size_t>(id)], "validate: node visited twice (cycle)");
        seen[static_cast<std::size_t>(id)] = 1;
        const TreeNode& nd = node(id);
        if (isTip(id)) {
            require(nd.isLeaf(), "validate: tip has children");
            require(nd.time == 0.0, "validate: tip not at time 0");
        } else {
            require(nd.child[0] != kNoNode && nd.child[1] != kNoNode,
                    "validate: internal node not bifurcating");
            for (const NodeId c : nd.child) {
                require(node(c).parent == id, "validate: parent/child asymmetry");
                require(node(c).time < nd.time,
                        "validate: child not strictly more recent than parent");
            }
        }
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        require(seen[i], "validate: node unreachable from root");
}

}  // namespace mpcgs
