// Newick tree format reader/writer.
//
// This is the interchange format between the coalescent tree simulator (the
// `ms` substitute) and the sequence simulator (the `seq-gen` substitute),
// exactly as in §6.1 of the paper ("ms 12 1 -T" produces a tree in the
// Newick tree format, piped into seq-gen).
//
// Reading requires an ultrametric tree (all tips equidistant from the
// root), because a Genealogy stores coalescent *times*; a tolerance
// parameter absorbs the rounding of decimal branch lengths.
#pragma once

#include <iosfwd>
#include <string>

#include "phylo/tree.h"

namespace mpcgs {

/// Serialize with branch lengths, e.g. "((a:0.1,b:0.1):0.2,c:0.3);".
/// Precision controls the number of significant digits.
std::string toNewick(const Genealogy& g, int precision = 10);

/// Parse a Newick string into a Genealogy.
///
/// Tip name handling: named tips keep their labels; unnamed tips are named
/// t1, t2, ... in encounter order. Throws ParseError on malformed input or
/// when tip depths differ by more than `ultrametricTol` (relative to tree
/// height).
Genealogy fromNewick(const std::string& text, double ultrametricTol = 1e-6);

}  // namespace mpcgs
