// Standard Metropolis-Hastings chain (§2.3) — the serial baseline the
// paper compares against (production LAMARC's sampling core).
//
// Problem concept:
//   using State;
//   double logPosterior(const State&) const;              // unnormalized
//   struct Proposal { State state; double logForward; double logReverse; };
//   Proposal propose(const State& cur, Rng& rng) const;
//
// The engine accepts with probability min(1, r), where
//   log r = logPi(x') - logPi(x) + logReverse - logForward,
// which reduces to the paper's Eq. 28 ratio P(D|G')/P(D|G) when the
// proposal density equals the conditional coalescent prior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "rng/mt19937.h"

namespace mpcgs {

template <class Problem>
class MhChain {
  public:
    using State = typename Problem::State;

    MhChain(const Problem& problem, State init, std::uint64_t seed)
        : MhChain(problem, std::move(init),
                  Mt19937(static_cast<std::uint32_t>(seed ^ (seed >> 32)))) {}

    /// Chain with an explicitly derived RNG stream — the sampler runtime
    /// passes Mt19937::fromSplitMix(splitMix64At(seed, chain)) here so
    /// every chain of an ensemble owns a decorrelated stream.
    MhChain(const Problem& problem, State init, Mt19937 rng)
        : problem_(problem),
          current_(std::move(init)),
          logPost_(problem_.logPosterior(current_)),
          rng_(std::move(rng)) {}

    /// One MH transition; returns true when the proposal was accepted.
    bool step() {
        auto prop = problem_.propose(current_, rng_);
        const double logNew = problem_.logPosterior(prop.state);
        const double logR = logNew - logPost_ + prop.logReverse - prop.logForward;
        ++steps_;
        if (logR >= 0.0 || std::log(rng_.uniformPos()) < logR) {
            current_ = std::move(prop.state);
            logPost_ = logNew;
            ++accepted_;
            return true;
        }
        return false;
    }

    /// Burn in `burnIn` transitions, then run `samples` further transitions,
    /// passing the (possibly repeated) post-transition state to `sink` —
    /// the rejected-proposal convention of §2.3 ("the current state will be
    /// sampled again").
    template <class Sink>
    void run(std::size_t burnIn, std::size_t samples, Sink&& sink) {
        for (std::size_t i = 0; i < burnIn; ++i) step();
        for (std::size_t i = 0; i < samples; ++i) {
            step();
            sink(current_);
        }
    }

    const State& current() const { return current_; }
    double currentLogPosterior() const { return logPost_; }
    std::size_t steps() const { return steps_; }
    std::size_t acceptedCount() const { return accepted_; }
    double acceptanceRate() const {
        return steps_ == 0 ? 0.0 : static_cast<double>(accepted_) / static_cast<double>(steps_);
    }

    /// RNG stream access for checkpointing.
    Mt19937& rng() { return rng_; }
    const Mt19937& rng() const { return rng_; }

    /// Restore a snapshotted chain: state, its log-posterior and the
    /// counters (the RNG is restored separately through rng()).
    void restore(State s, double logPost, std::size_t steps, std::size_t accepted) {
        current_ = std::move(s);
        logPost_ = logPost;
        steps_ = steps;
        accepted_ = accepted;
    }

  private:
    const Problem& problem_;
    State current_;
    double logPost_;
    Mt19937 rng_;
    std::size_t steps_ = 0;
    std::size_t accepted_ = 0;
};

}  // namespace mpcgs
