#include "mcmc/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "coalescent/structured.h"
#include "phylo/tree.h"
#include "rng/mt19937.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

/// ": <strerror> (errno N)" when errnum is set, empty otherwise — appended
/// to every I/O failure message so ENOSPC reads as ENOSPC, not as a bare
/// "write failed".
std::string errnoSuffix(int errnum) {
    if (errnum == 0) return "";
    return std::string(": ") + std::strerror(errnum) + " (errno " +
           std::to_string(errnum) + ")";
}

/// Evaluate an I/O fail point. On a hit the site fails exactly like a real
/// fault: `errnum` carries the injected errno (0 for a plain error).
bool injected(const char* point, int& errnum) {
    const auto hit = MPCGS_FAILPOINT(point);
    if (!hit.fired()) return false;
    errnum = hit.action == failpoint::Action::Errno ? hit.errnum : 0;
    return true;
}

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08X", v);
    return buf;
}

}  // namespace

CheckpointWriter::CheckpointWriter(std::string path, std::uint32_t version)
    : path_(std::move(path)), version_(version) {
    if (int e = 0; injected("checkpoint.open", e))
        fail("open", path_ + ".tmp", e);
    errno = 0;
    out_.open(path_ + ".tmp", std::ios::binary | std::ios::trunc);
    if (!out_) fail("open", path_ + ".tmp", errno);
    try {
        u32(kCheckpointMagic);
        u32(version_);
    } catch (...) {
        // The destructor never runs when the constructor throws — remove
        // the staging file here so no .tmp litter survives a header fault.
        out_.close();
        std::remove((path_ + ".tmp").c_str());
        throw;
    }
}

CheckpointWriter::~CheckpointWriter() {
    if (!committed_) {
        out_.close();
        std::remove((path_ + ".tmp").c_str());
    }
}

void CheckpointWriter::fail(const std::string& op, const std::string& target,
                            int errnum) {
    throw CheckpointError(op + " failed for '" + target + "'" + errnoSuffix(errnum));
}

void CheckpointWriter::rawToStream(const void* data, std::size_t bytes) {
    if (int e = 0; injected("checkpoint.write", e))
        fail("write", path_ + ".tmp", e);
    errno = 0;
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    if (!out_) fail("write", path_ + ".tmp", errno);
}

void CheckpointWriter::raw(const void* data, std::size_t bytes) {
    if (inSection_) {
        const char* p = static_cast<const char*>(data);
        section_.insert(section_.end(), p, p + bytes);
    } else {
        rawToStream(data, bytes);
    }
}

void CheckpointWriter::u32(std::uint32_t v) { raw(&v, sizeof v); }
void CheckpointWriter::u64(std::uint64_t v) { raw(&v, sizeof v); }
void CheckpointWriter::f64(double v) { raw(&v, sizeof v); }

void CheckpointWriter::str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
}

void CheckpointWriter::doubles(std::span<const double> xs) {
    u64(xs.size());
    raw(xs.data(), xs.size() * sizeof(double));
}

void CheckpointWriter::beginSection(const std::string& name) {
    if (version_ < 5) return;
    if (inSection_) flushSection();
    inSection_ = true;
    sectionName_ = name;
    section_.clear();
}

void CheckpointWriter::flushSection() {
    // Frame fields bypass raw() — they must hit the stream, not the buffer.
    const std::uint32_t marker = kSectionMarker;
    rawToStream(&marker, sizeof marker);
    const std::uint64_t nameLen = sectionName_.size();
    rawToStream(&nameLen, sizeof nameLen);
    rawToStream(sectionName_.data(), sectionName_.size());
    const std::uint64_t payloadLen = section_.size();
    rawToStream(&payloadLen, sizeof payloadLen);
    const std::uint32_t crc = crc32c(section_.data(), section_.size());
    rawToStream(&crc, sizeof crc);
    rawToStream(section_.data(), section_.size());
    inSection_ = false;
    section_.clear();
}

namespace {

/// Force `path`'s data (or, for a directory, its entries) to stable
/// storage. Without this, journaling filesystems with delayed allocation
/// can persist the rename before the staged file's blocks, leaving an
/// empty snapshot after a power loss.
bool syncPath(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
#else
    (void)path;
    return true;
#endif
}

}  // namespace

void CheckpointWriter::commit() {
    if (inSection_) flushSection();
    out_.flush();
    out_.close();
    if (!out_) fail("flush", path_ + ".tmp", errno);
    if (int e = 0; injected("checkpoint.fsync", e))
        fail("fsync", path_ + ".tmp", e);
    errno = 0;
    if (!syncPath(path_ + ".tmp")) fail("fsync", path_ + ".tmp", errno);
    if (int e = 0; injected("checkpoint.rename", e)) fail("rename", path_, e);
    // Two-generation retention: the previous snapshot survives as
    // `<path>.prev` until the one we are about to publish is durable.
    // Best-effort — a fresh run has no previous generation.
    std::error_code ec;
    if (std::filesystem::exists(path_, ec) && !ec) {
        std::error_code ignored;
        std::filesystem::rename(path_, path_ + ".prev", ignored);
    }
    ec.clear();
    std::filesystem::rename(path_ + ".tmp", path_, ec);
    if (ec)
        throw CheckpointError("rename to '" + path_ + "' failed: " + ec.message() +
                              " (errno " + std::to_string(ec.value()) + ")");
    // Best effort: make the rename itself durable (not every filesystem
    // supports fsync on a directory handle).
    syncPath(std::filesystem::path(path_).has_parent_path()
                 ? std::filesystem::path(path_).parent_path().string()
                 : std::string("."));
    committed_ = true;
}

CheckpointReader::CheckpointReader(const std::string& path) : path_(path) {
    if (int e = 0; injected("checkpoint.read.open", e))
        throw CheckpointError("cannot open '" + path + "'" + errnoSuffix(e));
    errno = 0;
    in_.open(path, std::ios::binary | std::ios::ate);
    if (!in_) throw CheckpointError("cannot open '" + path + "'" + errnoSuffix(errno));
    fileSize_ = static_cast<std::uint64_t>(in_.tellg());
    if (fileSize_ == 0)
        throw CheckpointError("'" + path +
                              "' is empty (0 bytes) — the snapshot write was likely "
                              "interrupted or the disk was full");
    in_.seekg(0);
    if (u32() != kCheckpointMagic) throw CheckpointError("'" + path + "' is not a snapshot");
    version_ = u32();
    if (version_ < kCheckpointMinVersion || version_ > kCheckpointVersion)
        throw CheckpointError("'" + path + "' has format version " + std::to_string(version_) +
                              ", supported: " + std::to_string(kCheckpointMinVersion) + ".." +
                              std::to_string(kCheckpointVersion));
}

void CheckpointReader::rawFromStream(void* data, std::size_t bytes) {
    if (int e = 0; injected("checkpoint.read", e))
        throw CheckpointError("read failed for '" + path_ + "'" + errnoSuffix(e));
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (in_.gcount() != static_cast<std::streamsize>(bytes))
        throw CheckpointError("truncated snapshot '" + path_ + "'");
}

void CheckpointReader::raw(void* data, std::size_t bytes) {
    if (inSection_) {
        if (bytes > section_.size() - sectionPos_)
            throw CheckpointError("truncated section '" + sectionName_ + "' in '" +
                                  path_ + "'");
        std::memcpy(data, section_.data() + sectionPos_, bytes);
        sectionPos_ += bytes;
    } else {
        rawFromStream(data, bytes);
    }
}

std::uint32_t CheckpointReader::u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
}

std::uint64_t CheckpointReader::u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
}

double CheckpointReader::f64() {
    double v;
    raw(&v, sizeof v);
    return v;
}

std::uint64_t CheckpointReader::remaining() {
    if (inSection_) return section_.size() - sectionPos_;
    const auto pos = static_cast<std::uint64_t>(in_.tellg());
    return pos > fileSize_ ? 0 : fileSize_ - pos;
}

void CheckpointReader::requireRemaining(std::uint64_t bytes) {
    if (bytes > remaining()) throw CheckpointError("corrupt snapshot: length exceeds file");
}

std::string CheckpointReader::str() {
    const std::uint64_t n = u64();
    requireRemaining(n);
    std::string s(n, '\0');
    raw(s.data(), s.size());
    return s;
}

std::vector<double> CheckpointReader::doubles() {
    const std::uint64_t n = u64();
    // Divide rather than multiply: n * sizeof(double) could wrap.
    if (n > remaining() / sizeof(double))
        throw CheckpointError("corrupt snapshot: length exceeds file");
    std::vector<double> xs(n);
    raw(xs.data(), xs.size() * sizeof(double));
    return xs;
}

std::string CheckpointReader::nextSection() {
    // Any unread tail of the previous section is discarded; the stream is
    // already positioned at the next frame because enterSection() consumed
    // the whole payload up front.
    inSection_ = false;
    if (remaining() == 0) return std::string();
    const std::uint32_t marker = u32();
    if (marker != kSectionMarker)
        throw CheckpointError("'" + path_ +
                              "': expected a section frame but found marker " +
                              hex32(marker) + " — snapshot is corrupt");
    const std::string name = str();
    const std::uint64_t len = u64();
    const std::uint32_t storedCrc = u32();
    requireRemaining(len);
    section_.resize(len);
    if (len > 0) rawFromStream(section_.data(), len);
    const std::uint32_t actualCrc = crc32c(section_.data(), len);
    if (actualCrc != storedCrc)
        throw CheckpointError("'" + path_ + "': checksum mismatch in section '" + name +
                              "' (stored " + hex32(storedCrc) + ", computed " +
                              hex32(actualCrc) + ") — snapshot is corrupt");
    sectionName_ = name;
    sectionPos_ = 0;
    inSection_ = true;
    return name;
}

void CheckpointReader::enterSection(const std::string& expected) {
    if (version_ < 5) return;
    const std::string name = nextSection();
    if (name.empty())
        throw CheckpointError("'" + path_ + "': expected section '" + expected +
                              "' but the snapshot ended");
    if (name != expected)
        throw CheckpointError("'" + path_ + "': expected section '" + expected +
                              "' but found '" + name + "'");
}

bool checkpointExists(const std::string& path) {
    std::error_code ec;
    return std::filesystem::exists(path, ec) && !ec;
}

std::uint32_t verifySnapshot(const std::string& path) {
    CheckpointReader r(path);
    // Pre-v5 files carry no checksums — the header check above is all the
    // verification available without parsing.
    if (r.version() >= 5)
        while (!r.nextSection().empty()) {}
    return r.version();
}

std::string pickResumeSnapshot(const std::string& path) {
    std::string firstFault;
    try {
        verifySnapshot(path);
        return path;
    } catch (const CheckpointError& e) {
        firstFault = e.what();
    }
    const std::string prev = path + ".prev";
    if (checkpointExists(prev)) {
        try {
            verifySnapshot(prev);
            std::fprintf(stderr,
                         "mpcgs: warning: %s; falling back to previous snapshot "
                         "generation '%s'\n",
                         firstFault.c_str(), prev.c_str());
            return prev;
        } catch (const CheckpointError& e2) {
            throw ResumeError(firstFault + "; previous generation '" + prev +
                              "' is also unusable: " + e2.what());
        }
    }
    throw ResumeError(firstFault);
}

void writeGenealogy(CheckpointWriter& w, const Genealogy& g) {
    w.u64(static_cast<std::uint64_t>(g.tipCount()));
    w.u64(static_cast<std::uint64_t>(g.nodeCount()));
    w.u64(static_cast<std::uint64_t>(g.root()));
    for (NodeId id = 0; id < g.nodeCount(); ++id) {
        const TreeNode& n = g.node(id);
        w.u64(static_cast<std::uint64_t>(n.parent));
        w.u64(static_cast<std::uint64_t>(n.child[0]));
        w.u64(static_cast<std::uint64_t>(n.child[1]));
        w.f64(n.time);
    }
    w.u64(g.tipNames().size());
    for (const auto& name : g.tipNames()) w.str(name);
}

Genealogy readGenealogy(CheckpointReader& r) {
    const std::uint64_t tips64 = r.u64();
    const std::uint64_t nodes64 = r.u64();
    // Validate against the bytes actually present (4 u64-sized fields per
    // node) before allocating anything from untrusted lengths.
    if (tips64 < 2 || nodes64 != 2 * tips64 - 1 ||
        nodes64 > r.remaining() / (4 * sizeof(std::uint64_t)))
        throw CheckpointError("corrupt snapshot: implausible genealogy shape");
    const auto tips = static_cast<int>(tips64);
    const auto nodes = static_cast<int>(nodes64);
    Genealogy g(tips);
    if (g.nodeCount() != nodes) throw CheckpointError("genealogy node count mismatch");
    // Every node reference must land inside the arena (or be kNoNode)
    // before anything traverses the restored tree.
    const auto nodeRef = [nodes](std::uint64_t raw) {
        const auto id = static_cast<NodeId>(static_cast<std::int64_t>(raw));
        if (id != kNoNode && (id < 0 || id >= nodes))
            throw CheckpointError("corrupt snapshot: genealogy node index out of range");
        return id;
    };
    g.setRoot(nodeRef(r.u64()));
    for (NodeId id = 0; id < nodes; ++id) {
        TreeNode& n = g.node(id);
        n.parent = nodeRef(r.u64());
        n.child[0] = nodeRef(r.u64());
        n.child[1] = nodeRef(r.u64());
        n.time = r.f64();
    }
    try {
        g.validate();
    } catch (const Error& e) {
        throw CheckpointError(std::string("corrupt snapshot: ") + e.what());
    }
    const std::uint64_t names = r.u64();
    if (names > r.remaining() / sizeof(std::uint64_t))  // every name carries a length word
        throw CheckpointError("corrupt snapshot: implausible tip name count");
    if (names > 0) {
        std::vector<std::string> tipNames(names);
        for (auto& name : tipNames) name = r.str();
        g.setTipNames(std::move(tipNames));
    }
    return g;
}

void writeStructuredGenealogy(CheckpointWriter& w, const StructuredGenealogy& g) {
    writeGenealogy(w, g.tree());
    const int nodes = g.tree().nodeCount();
    for (NodeId id = 0; id < nodes; ++id) w.u32(static_cast<std::uint32_t>(g.deme(id)));
    for (NodeId id = 0; id < nodes; ++id) {
        const auto& events = g.branchEvents(id);
        w.u64(events.size());
        for (const MigrationEvent& e : events) {
            w.f64(e.time);
            w.u32(static_cast<std::uint32_t>(e.toDeme));
        }
    }
}

StructuredGenealogy readStructuredGenealogy(CheckpointReader& r, int demeCount) {
    StructuredGenealogy g(readGenealogy(r));
    const int nodes = g.tree().nodeCount();
    for (NodeId id = 0; id < nodes; ++id) g.setDeme(id, static_cast<int>(r.u32()));
    for (NodeId id = 0; id < nodes; ++id) {
        const std::uint64_t n = r.u64();
        // Each event occupies one f64 + one u32 in the stream.
        if (n > r.remaining() / (sizeof(double) + sizeof(std::uint32_t)))
            throw CheckpointError("corrupt snapshot: implausible migration event count");
        auto& events = g.branchEvents(id);
        events.resize(n);
        for (MigrationEvent& e : events) {
            e.time = r.f64();
            e.toDeme = static_cast<int>(r.u32());
        }
    }
    try {
        g.validate(demeCount);
    } catch (const Error& e) {
        throw CheckpointError(std::string("corrupt snapshot: ") + e.what());
    }
    return g;
}

void writeRng(CheckpointWriter& w, const Mt19937& rng) {
    std::uint32_t words[Mt19937::kStateWords];
    rng.saveState(words);
    for (const std::uint32_t word : words) w.u32(word);
}

void readRng(CheckpointReader& r, Mt19937& rng) {
    std::uint32_t words[Mt19937::kStateWords];
    for (std::uint32_t& word : words) word = r.u32();
    // The cursor indexes the 624-word state; N itself means "twist before
    // the next draw". Anything larger is corruption.
    if (words[Mt19937::kStateWords - 1] >= Mt19937::kStateWords)
        throw CheckpointError("corrupt snapshot: RNG cursor out of range");
    rng.loadState(words);
}

}  // namespace mpcgs
