// Versioned binary snapshots of sampler runtime state (checkpoint/resume).
//
// A checkpoint captures everything a run needs for bitwise-identical
// continuation: chain genealogies, log-posteriors, full RNG states, sweep
// and sample counters, the streamed summaries collected so far and the
// convergence-monitor traces. The writer stages into `<path>.tmp` and
// renames on commit, so a crash mid-write never clobbers the previous
// snapshot. On commit the previous snapshot (when one exists) is kept as
// `<path>.prev` until the new one is durable — pickResumeSnapshot() falls
// back to it when the latest generation is corrupt.
//
// Format: little-endian host-native binary. Header = magic 'MPCK' (u32) +
// format version (u32). Through v4 the rest is a flat sequence of
// primitives written and read in lockstep by the owning components
// (driver context, sampler state, sink contents). v5 wraps that same
// primitive stream into named, CRC-32C-checksummed sections:
//
//   frame := marker 'SECT' (u32) | name (str) | payload length (u64)
//          | crc32c(payload) (u32) | payload bytes
//
// Writers open sections with beginSection(); readers enter them with
// enterSection(), which verifies the checksum before handing out a single
// payload byte and names the damaged section on mismatch. Both calls are
// no-ops on pre-v5 files, so owner read paths stay version-agnostic.
// Snapshots are not portable across architectures with different
// endianness or double format — they are restart files, not an
// interchange format.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace mpcgs {

class Genealogy;
class Mt19937;
class StructuredGenealogy;

/// Corrupt, truncated, or incompatible snapshot file; also raised by the
/// writer on I/O failures (message carries the failing operation and
/// strerror detail).
class CheckpointError : public Error {
  public:
    explicit CheckpointError(const std::string& what)
        : Error("checkpoint error: " + what) {}

  protected:
    struct AlreadyFormatted {};
    CheckpointError(AlreadyFormatted, const std::string& what) : Error(what) {}
};

/// A snapshot that could not be READ back during resume (missing,
/// truncated, or corrupt at any depth of the payload). Distinct from
/// plain CheckpointError so callers can fall back to a fresh run on
/// unreadable snapshots while mid-run WRITE failures stay fatal. Takes
/// the inner error's already-formatted message verbatim.
class ResumeError : public CheckpointError {
  public:
    explicit ResumeError(const std::string& formatted)
        : CheckpointError(AlreadyFormatted{}, formatted) {}
};

inline constexpr std::uint32_t kCheckpointMagic = 0x4B43504Du;  // "MPCK"
/// Current format: v5 frames the payload into named sections, each
/// guarded by a CRC-32C over its bytes, so single-bit corruption is
/// detected and attributed before any state is parsed. v4 added the
/// 'PSMC' section — particle-marginal MH (PMMH) sampler payloads
/// (per-chain theta, logZ, genealogy, RNG stream, pass-seed counter and
/// theta trace; src/smc/pmmh.h). v3 added deme-labelled
/// (structured-coalescent) genealogy payloads — node demes and per-branch
/// migration events. v2 snapshots carry per-locus payloads (genealogies,
/// RNG streams, sinks, monitors) for multi-locus runs; v1 is the original
/// single-locus layout. All older versions are still readable; the reader
/// exposes the file's version so owners can branch on layout.
inline constexpr std::uint32_t kCheckpointVersion = 5;
inline constexpr std::uint32_t kCheckpointMinVersion = 1;
/// Marker word opening every v5 section frame ("SECT").
inline constexpr std::uint32_t kSectionMarker = 0x54434553u;

class CheckpointWriter {
  public:
    /// Opens `<path>.tmp` and writes the header. Nothing becomes visible at
    /// `path` until commit(). `version` is the header format stamp — always
    /// the current version outside of compatibility tests.
    explicit CheckpointWriter(std::string path,
                              std::uint32_t version = kCheckpointVersion);
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter&) = delete;
    CheckpointWriter& operator=(const CheckpointWriter&) = delete;

    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    void str(const std::string& s);
    void doubles(std::span<const double> xs);

    /// Start a named section: subsequent primitives are buffered and
    /// flushed as one checksummed frame when the next section begins or
    /// commit() runs. No-op when the writer's format version predates v5,
    /// so owners call it unconditionally. Primitives written outside any
    /// section (as the primitive-roundtrip tests do) go to the stream
    /// unframed, exactly like pre-v5 files.
    void beginSection(const std::string& name);

    /// Flush and atomically rename the staging file onto `path`. When a
    /// snapshot already exists at `path` it is preserved as `<path>.prev`
    /// (two-generation retention) before the rename.
    void commit();

  private:
    void raw(const void* data, std::size_t bytes);
    void rawToStream(const void* data, std::size_t bytes);
    void flushSection();
    [[noreturn]] void fail(const std::string& op, const std::string& target,
                           int errnum);

    std::string path_;
    std::ofstream out_;
    std::uint32_t version_ = kCheckpointVersion;
    bool committed_ = false;
    bool inSection_ = false;
    std::string sectionName_;
    std::vector<char> section_;
};

class CheckpointReader {
  public:
    /// Opens `path` and validates the header. Throws CheckpointError when
    /// the file is missing, empty (a distinct message — the signature of an
    /// interrupted or out-of-space write), truncated, or has the wrong
    /// magic or an unsupported version (outside [kCheckpointMinVersion,
    /// kCheckpointVersion]).
    explicit CheckpointReader(const std::string& path);

    /// Format version stamped in the header (1 = single-locus layouts,
    /// 2 = per-locus payloads, 3 = structured-genealogy payloads,
    /// 4 = PMMH 'PSMC' sections, 5 = checksummed section frames).
    std::uint32_t version() const { return version_; }

    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    std::vector<double> doubles();

    /// Enter the next section frame, verifying its CRC-32C and that its
    /// name matches `expected`. Throws CheckpointError naming the damaged
    /// or mismatched section. No-op on pre-v5 files, so owner read paths
    /// call it unconditionally; any unread tail of the previous section is
    /// discarded.
    void enterSection(const std::string& expected);

    /// Advance to the next section frame, verify its CRC-32C, and position
    /// the reader inside it; returns the section's name, or "" at
    /// end-of-file (verifySnapshot's walk). Only meaningful on v5+ files.
    std::string nextSection();

    /// Bytes left in the current section (or in the file, outside any
    /// section). Length fields read from the snapshot are validated
    /// against this before any allocation, so a corrupt length word raises
    /// CheckpointError instead of a huge allocation.
    std::uint64_t remaining();
    void requireRemaining(std::uint64_t bytes);

  private:
    void raw(void* data, std::size_t bytes);
    void rawFromStream(void* data, std::size_t bytes);

    std::string path_;
    std::ifstream in_;
    std::uint64_t fileSize_ = 0;
    std::uint32_t version_ = kCheckpointVersion;
    bool inSection_ = false;
    std::string sectionName_;
    std::vector<char> section_;
    std::size_t sectionPos_ = 0;
};

/// True when a snapshot file exists at `path`.
bool checkpointExists(const std::string& path);

/// Walk `path`'s section frames and verify every CRC without parsing any
/// payload. Throws CheckpointError naming the first damaged section (or
/// describing the structural fault). Pre-v5 files carry no checksums;
/// verification succeeds after the header check alone. Returns the file's
/// format version.
std::uint32_t verifySnapshot(const std::string& path);

/// Choose the snapshot generation to resume from: `path` when it
/// verifies, else `<path>.prev` (with a stderr warning) when that
/// verifies. Throws ResumeError when neither generation is usable,
/// carrying both failure messages.
std::string pickResumeSnapshot(const std::string& path);

// Serialization helpers for the two composite types every sampler state
// contains. Node times and tip names round-trip exactly, so a restored
// genealogy compares equal (operator==) to the saved one.
void writeGenealogy(CheckpointWriter& w, const Genealogy& g);
Genealogy readGenealogy(CheckpointReader& r);

void writeRng(CheckpointWriter& w, const Mt19937& rng);
void readRng(CheckpointReader& r, Mt19937& rng);

/// Deme-labelled genealogy payload (format v3): the plain genealogy
/// followed by per-node demes and per-branch migration events. The read
/// side validates label consistency for `demeCount` demes, so a corrupt
/// or mislabelled snapshot raises CheckpointError before any sampling.
void writeStructuredGenealogy(CheckpointWriter& w, const StructuredGenealogy& g);
StructuredGenealogy readStructuredGenealogy(CheckpointReader& r, int demeCount);

}  // namespace mpcgs
