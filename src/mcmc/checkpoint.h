// Versioned binary snapshots of sampler runtime state (checkpoint/resume).
//
// A checkpoint captures everything a run needs for bitwise-identical
// continuation: chain genealogies, log-posteriors, full RNG states, sweep
// and sample counters, the streamed summaries collected so far and the
// convergence-monitor traces. The writer stages into `<path>.tmp` and
// renames on commit, so a crash mid-write never clobbers the previous
// snapshot.
//
// Format: little-endian host-native binary. Header = magic 'MPCK' (u32) +
// format version (u32); the rest is a flat sequence of primitives written
// and read in lockstep by the owning components (driver context, sampler
// state, sink contents). Snapshots are not portable across architectures
// with different endianness or double format — they are restart files, not
// an interchange format.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace mpcgs {

class Genealogy;
class Mt19937;
class StructuredGenealogy;

/// Corrupt, truncated, or incompatible snapshot file.
class CheckpointError : public Error {
  public:
    explicit CheckpointError(const std::string& what)
        : Error("checkpoint error: " + what) {}

  protected:
    struct AlreadyFormatted {};
    CheckpointError(AlreadyFormatted, const std::string& what) : Error(what) {}
};

/// A snapshot that could not be READ back during resume (missing,
/// truncated, or corrupt at any depth of the payload). Distinct from
/// plain CheckpointError so callers can fall back to a fresh run on
/// unreadable snapshots while mid-run WRITE failures stay fatal. Takes
/// the inner error's already-formatted message verbatim.
class ResumeError : public CheckpointError {
  public:
    explicit ResumeError(const std::string& formatted)
        : CheckpointError(AlreadyFormatted{}, formatted) {}
};

inline constexpr std::uint32_t kCheckpointMagic = 0x4B43504Du;  // "MPCK"
/// Current format: v4 adds the 'PSMC' section — particle-marginal MH
/// (PMMH) sampler payloads (per-chain theta, logZ, genealogy, RNG stream,
/// pass-seed counter and theta trace; src/smc/pmmh.h). v3 added
/// deme-labelled (structured-coalescent) genealogy payloads — node demes
/// and per-branch migration events. v2 snapshots carry per-locus payloads
/// (genealogies, RNG streams, sinks, monitors) for multi-locus runs; v1 is
/// the original single-locus layout. All older versions are still
/// readable; the reader exposes the file's version so owners can branch
/// on layout.
inline constexpr std::uint32_t kCheckpointVersion = 4;
inline constexpr std::uint32_t kCheckpointMinVersion = 1;

class CheckpointWriter {
  public:
    /// Opens `<path>.tmp` and writes the header. Nothing becomes visible at
    /// `path` until commit(). `version` is the header format stamp — always
    /// the current version outside of compatibility tests.
    explicit CheckpointWriter(std::string path,
                              std::uint32_t version = kCheckpointVersion);
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter&) = delete;
    CheckpointWriter& operator=(const CheckpointWriter&) = delete;

    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    void str(const std::string& s);
    void doubles(std::span<const double> xs);

    /// Flush and atomically rename the staging file onto `path`.
    void commit();

  private:
    void raw(const void* data, std::size_t bytes);

    std::string path_;
    std::ofstream out_;
    bool committed_ = false;
};

class CheckpointReader {
  public:
    /// Opens `path` and validates the header. Throws CheckpointError when
    /// the file is missing, truncated, or has the wrong magic or an
    /// unsupported version (outside [kCheckpointMinVersion,
    /// kCheckpointVersion]).
    explicit CheckpointReader(const std::string& path);

    /// Format version stamped in the header (1 = single-locus layouts,
    /// 2 = per-locus payloads, 3 = structured-genealogy payloads,
    /// 4 = PMMH 'PSMC' sections).
    std::uint32_t version() const { return version_; }

    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    std::vector<double> doubles();

    /// Bytes left in the file. Length fields read from the snapshot are
    /// validated against this before any allocation, so a corrupt length
    /// word raises CheckpointError instead of a huge allocation.
    std::uint64_t remaining();
    void requireRemaining(std::uint64_t bytes);

  private:
    void raw(void* data, std::size_t bytes);

    std::ifstream in_;
    std::uint64_t fileSize_ = 0;
    std::uint32_t version_ = kCheckpointVersion;
};

/// True when a snapshot file exists at `path`.
bool checkpointExists(const std::string& path);

// Serialization helpers for the two composite types every sampler state
// contains. Node times and tip names round-trip exactly, so a restored
// genealogy compares equal (operator==) to the saved one.
void writeGenealogy(CheckpointWriter& w, const Genealogy& g);
Genealogy readGenealogy(CheckpointReader& r);

void writeRng(CheckpointWriter& w, const Mt19937& rng);
void readRng(CheckpointReader& r, Mt19937& rng);

/// Deme-labelled genealogy payload (format v3): the plain genealogy
/// followed by per-node demes and per-branch migration events. The read
/// side validates label consistency for `demeCount` demes, so a corrupt
/// or mislabelled snapshot raises CheckpointError before any sampling.
void writeStructuredGenealogy(CheckpointWriter& w, const StructuredGenealogy& g);
StructuredGenealogy readStructuredGenealogy(CheckpointReader& r, int demeCount);

}  // namespace mpcgs
