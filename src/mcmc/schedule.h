// Chain-level scheduling across the ThreadPool.
//
// The runtime's ensemble strategies (multi-chain rounds, MC^3 sweeps) all
// reduce to the same shape: P per-chain step functions that may run
// concurrently, separated by serialized barrier sections (swap points,
// sample emission, stopping checks). ChainScheduler packages that shape
// with the determinism contract the runtime depends on: each chain touches
// only its own state and RNG stream during the parallel section, so the
// result is bitwise invariant to the worker count — the parallel section
// only changes *when* chains step, never *what* they compute.
//
// This turns the previously serial HeatedChains sweep into a pool-parallel
// one (every chain's proposal + likelihood evaluation runs concurrently,
// the swap decision stays serialized), and gives MultiChain its lockstep
// rounds for convergence-checked sampling.
#pragma once

#include <cstddef>
#include <functional>

#include "par/kernel.h"
#include "par/thread_pool.h"

namespace mpcgs {

class ChainScheduler {
  public:
    /// A scheduler for `chains` logical chains on `pool` (nullptr = serial).
    ChainScheduler(ThreadPool* pool, std::size_t chains)
        : pool_(pool), chains_(chains) {}

    std::size_t chains() const { return chains_; }
    ThreadPool* pool() const { return pool_; }

    /// Parallel section: run step(c) once for every chain c. Each chain is
    /// one unit of work (no chunking), so a chain never migrates mid-step.
    void stepChains(const std::function<void(std::size_t)>& step) const {
        launchChains(pool_, chains_, step);
    }

    /// One synchronized round: the parallel section followed by a
    /// serialized barrier section on the calling thread (run even for a
    /// single chain; pass an empty function to skip).
    void round(const std::function<void(std::size_t)>& step,
               const std::function<void()>& barrier) const {
        stepChains(step);
        if (barrier) barrier();
    }

  private:
    ThreadPool* pool_;
    std::size_t chains_;
};

}  // namespace mpcgs
