// Chain-level scheduling across the ThreadPool.
//
// The runtime's ensemble strategies (multi-chain rounds, MC^3 sweeps) all
// reduce to the same shape: P per-chain step functions that may run
// concurrently, separated by serialized barrier sections (swap points,
// sample emission, stopping checks). ChainScheduler packages that shape
// with the determinism contract the runtime depends on: each chain touches
// only its own state and RNG stream during the parallel section, so the
// result is bitwise invariant to the worker count — the parallel section
// only changes *when* chains step, never *what* they compute.
//
// This turns the previously serial HeatedChains sweep into a pool-parallel
// one (every chain's proposal + likelihood evaluation runs concurrently,
// the swap decision stays serialized), and gives MultiChain its lockstep
// rounds for convergence-checked sampling.
#pragma once

#include <cstddef>

#include "par/kernel.h"
#include "par/thread_pool.h"

namespace mpcgs {

class ChainScheduler {
  public:
    /// A scheduler for `chains` logical chains on `pool` (nullptr = serial).
    ChainScheduler(ThreadPool* pool, std::size_t chains)
        : pool_(pool), chains_(chains) {}

    std::size_t chains() const { return chains_; }
    ThreadPool* pool() const { return pool_; }

    /// Parallel section: run step(c) once for every chain c. Each chain is
    /// one unit of work (no chunking), so a chain never migrates mid-step.
    /// Templated so the callable reaches the pool's non-type-erased launch
    /// path directly — no std::function construction per round.
    template <class Step>
    void stepChains(Step&& step) const {
        launchChains(pool_, chains_, step);
    }

    /// One synchronized round: the parallel section followed by a
    /// serialized barrier section on the calling thread (run even for a
    /// single chain).
    template <class Step, class Barrier>
    void round(Step&& step, Barrier&& barrier) const {
        stepChains(step);
        barrier();
    }

  private:
    ThreadPool* pool_;
    std::size_t chains_;
};

}  // namespace mpcgs
