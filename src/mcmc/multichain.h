// The multi-chain parallelization baseline of §3 (Fig 6): P independent
// Metropolis-Hastings chains, each paying its own burn-in of B transitions,
// aggregated into one sample set. Per-processor cost is B + N/P, so
// efficiency decays toward the Amdahl bound (Eq. 27) as P grows — the
// motivating inefficiency the GMH sampler removes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "mcmc/mh.h"
#include "par/thread_pool.h"

namespace mpcgs {

struct MultiChainOptions {
    std::size_t chains = 4;        ///< P
    std::size_t burnInPerChain = 100;  ///< B (every chain pays this)
    std::size_t totalSamples = 1000;   ///< N, split across chains
    std::uint64_t seed = 1;
};

/// Run the ensemble; `sink(state)` is invoked once per aggregated sample
/// (order is deterministic: chain-major). Returns per-chain acceptance
/// rates. The chains execute concurrently on `pool` when provided.
template <class Problem, class Sink>
std::vector<double> runMultiChain(const Problem& problem, typename Problem::State init,
                                  const MultiChainOptions& opts, Sink&& sink,
                                  ThreadPool* pool = nullptr) {
    using State = typename Problem::State;
    const std::size_t perChain =
        (opts.totalSamples + opts.chains - 1) / opts.chains;

    std::vector<std::vector<State>> collected(opts.chains);
    std::vector<double> acceptance(opts.chains, 0.0);

    forEachIndex(pool, opts.chains, [&](std::size_t c) {
        MhChain<Problem> chain(problem, init, opts.seed + 0x9E3779B9ull * (c + 1));
        auto& out = collected[c];
        out.reserve(perChain);
        chain.run(opts.burnInPerChain, perChain,
                  [&](const State& s) { out.push_back(s); });
        acceptance[c] = chain.acceptanceRate();
    });

    for (const auto& chainSamples : collected)
        for (const auto& s : chainSamples) sink(s);
    return acceptance;
}

}  // namespace mpcgs
