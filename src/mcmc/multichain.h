// The multi-chain parallelization baseline of §3 (Fig 6): P independent
// Metropolis-Hastings chains, each paying its own burn-in of B transitions,
// aggregated into one sample set. Per-processor cost is B + N/P, so
// efficiency decays toward the Amdahl bound (Eq. 27) as P grows — the
// motivating inefficiency the GMH sampler removes.
//
// Samples STREAM through the sink as each chain produces them: live memory
// is O(P) chain states, not O(N) buffered samples (the old implementation
// collected every chain's full sample vector before replaying it). The
// sink is invoked as sink(state, chain, indexInChain); calls for one chain
// arrive in index order from that chain's worker, calls for different
// chains may be concurrent, and the (chain, index) tag lets consumers
// place records chain-major deterministically without any cross-chain
// synchronization. Each chain draws from its own SplitMix64-derived
// Mt19937 stream, so the aggregate is bitwise invariant to the thread
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcmc/mh.h"
#include "par/thread_pool.h"
#include "rng/splitmix.h"

namespace mpcgs {

struct MultiChainOptions {
    std::size_t chains = 4;        ///< P
    std::size_t burnInPerChain = 100;  ///< B (every chain pays this)
    std::size_t totalSamples = 1000;   ///< N, split across chains
    std::uint64_t seed = 1;
};

/// Number of samples each chain contributes: ceil(N / P).
inline std::size_t multiChainSamplesPerChain(const MultiChainOptions& opts) {
    return (opts.totalSamples + opts.chains - 1) / opts.chains;
}

/// Run the ensemble; `sink(state, chain, index)` is invoked once per
/// sample, streamed as produced (see the header comment for the ordering
/// and concurrency contract). Returns per-chain acceptance rates. The
/// chains execute concurrently on `pool` when provided.
template <class Problem, class Sink>
std::vector<double> runMultiChain(const Problem& problem, typename Problem::State init,
                                  const MultiChainOptions& opts, Sink&& sink,
                                  ThreadPool* pool = nullptr) {
    using State = typename Problem::State;
    const std::size_t perChain = multiChainSamplesPerChain(opts);

    std::vector<double> acceptance(opts.chains, 0.0);
    forEachIndex(
        pool, opts.chains,
        [&](std::size_t c) {
            MhChain<Problem> chain(problem, init,
                                   Mt19937::fromSplitMix(splitMix64At(opts.seed, c + 1)));
            std::size_t index = 0;
            chain.run(opts.burnInPerChain, perChain,
                      [&](const State& s) { sink(s, c, index++); });
            acceptance[c] = chain.acceptanceRate();
        },
        /*grain=*/1);
    return acceptance;
}

}  // namespace mpcgs
