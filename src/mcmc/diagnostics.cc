#include "mcmc/diagnostics.h"

#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace mpcgs {

double gelmanRubin(const std::vector<std::vector<double>>& chains) {
    const std::size_t m = chains.size();
    if (m < 2) throw std::invalid_argument("gelmanRubin: need at least 2 chains");
    const std::size_t n = chains[0].size();
    if (n < 2) throw std::invalid_argument("gelmanRubin: chains too short");
    for (const auto& c : chains)
        if (c.size() != n) throw std::invalid_argument("gelmanRubin: unequal chain lengths");

    std::vector<double> chainMeans(m);
    std::vector<double> chainVars(m);
    for (std::size_t j = 0; j < m; ++j) {
        chainMeans[j] = mean(chains[j]);
        chainVars[j] = variance(chains[j]);
    }
    const double w = mean(chainVars);                       // within-chain variance
    const double b = static_cast<double>(n) * variance(chainMeans);  // between-chain
    if (w == 0.0) return 1.0;
    const double nd = static_cast<double>(n);
    const double varPlus = (nd - 1.0) / nd * w + b / nd;
    return std::sqrt(varPlus / w);
}

double gewekeZ(std::span<const double> chain, double firstFrac, double lastFrac) {
    const std::size_t n = chain.size();
    if (n < 20) throw std::invalid_argument("gewekeZ: chain too short");
    const std::size_t nA = static_cast<std::size_t>(static_cast<double>(n) * firstFrac);
    const std::size_t nB = static_cast<std::size_t>(static_cast<double>(n) * lastFrac);
    if (nA < 2 || nB < 2) throw std::invalid_argument("gewekeZ: fractions too small");
    const auto a = chain.subspan(0, nA);
    const auto b = chain.subspan(n - nB, nB);
    // Variance estimates inflated by the integrated autocorrelation time to
    // account for serial dependence.
    const double tauA = integratedAutocorrelationTime(a);
    const double tauB = integratedAutocorrelationTime(b);
    const double se = std::sqrt(variance(a) * tauA / static_cast<double>(nA) +
                                variance(b) * tauB / static_cast<double>(nB));
    if (se == 0.0) return 0.0;
    return (mean(a) - mean(b)) / se;
}

double integratedAutocorrelationTime(std::span<const double> chain) {
    const double ess = effectiveSampleSize(chain);
    if (ess <= 0.0) return static_cast<double>(chain.size());
    return static_cast<double>(chain.size()) / ess;
}

std::size_t estimateBurnIn(std::span<const double> chain, double tol) {
    const std::size_t n = chain.size();
    if (n < 10) return n;
    // Reference: mean and stderr of the last half.
    const auto tail = chain.subspan(n / 2);
    const double refMean = mean(tail);
    const double refSe = stdev(tail);
    if (refSe == 0.0) return 0;
    // Walk a window forward until its mean enters the tolerance band and
    // stays there.
    const std::size_t window = std::max<std::size_t>(5, n / 50);
    for (std::size_t start = 0; start + window <= n; start += window) {
        const double wMean = mean(chain.subspan(start, window));
        if (std::fabs(wMean - refMean) <= tol * refSe) return start;
    }
    return n;
}

}  // namespace mpcgs
