// MCMC convergence diagnostics: burn-in assessment tools discussed in §2.3
// (trace stabilization, multi-chain comparison).
#pragma once

#include <span>
#include <vector>

namespace mpcgs {

/// Gelman-Rubin potential scale reduction factor R-hat across chains of
/// equal length. Values near 1 indicate convergence; the multi-chain
/// workaround of §3 relies on this style of check. Throws on fewer than
/// two chains or mismatched lengths.
double gelmanRubin(const std::vector<std::vector<double>>& chains);

/// Geweke Z-score comparing the means of the first `firstFrac` and last
/// `lastFrac` of a chain (|Z| >~ 2 suggests non-stationarity).
double gewekeZ(std::span<const double> chain, double firstFrac = 0.1, double lastFrac = 0.5);

/// Integrated autocorrelation time (ESS = n / tau).
double integratedAutocorrelationTime(std::span<const double> chain);

/// Index after which the running mean stays within `tol` standard errors
/// of the final mean — a crude empirical burn-in estimate for traces like
/// Fig 2. Returns chain.size() when never stabilized.
std::size_t estimateBurnIn(std::span<const double> chain, double tol = 2.0);

}  // namespace mpcgs
