// Generalized Metropolis-Hastings — Calderhead's multiple-proposal
// construction (§4.1, Algorithm 1), the paper's core contribution vehicle.
//
// Problem concept:
//   using State;
//   using Region;                       // the auxiliary variable phi (§4.3)
//   Region makeRegion(const State& generator, Rng& hostRng) const;
//   State proposeInRegion(const Region&, Rng& threadRng) const;   // iid given region
//   double logProposalDensity(const Region&, const State&) const; // q_phi(x)
//   double logPosterior(const State&) const;                      // unnormalized log pi
//
// Each iteration: draw the region from the current generator, fan out N
// independent proposals (one logical device thread each — the proposal
// kernel of §5.2.1), then sample the index variable I from the stationary
// distribution of the induced transition matrix, which is the categorical
// distribution with weights
//
//   w_i  propto  pi(x_i) / q_phi(x_i).
//
// When q_phi is exactly the conditional coalescent prior this reduces to
// the paper's Eq. 31 (w_i propto P(D|G_i)); keeping the q term makes the
// sampler exact for any positive proposal density (DESIGN.md §1).
//
// Proposal randomness comes from per-(iteration, proposal) Philox streams,
// so results are bit-reproducible regardless of the thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/thread_pool.h"
#include "rng/mt19937.h"
#include "rng/philox.h"
#include "util/logspace.h"

namespace mpcgs {

namespace detail {
/// Invoke a sampler sink with (state, logPosterior) when it accepts the
/// pair, falling back to the classic single-argument form. Lets the
/// runtime stream log-posteriors without breaking existing sinks.
template <class Sink, class State>
void emitSample(Sink* sink, const State& s, double logPost) {
    if (!sink) return;
    if constexpr (std::is_invocable_v<Sink&, const State&, double>)
        (*sink)(s, logPost);
    else
        (*sink)(s);
}
}  // namespace detail

struct GmhOptions {
    std::size_t numProposals = 16;         ///< N proposals per iteration
    std::size_t samplesPerIteration = 16;  ///< draws from the stationary of A
    std::uint64_t seed = 1;
};

struct GmhStats {
    std::size_t iterations = 0;
    std::size_t samplesDrawn = 0;
    std::size_t generatorResampled = 0;  ///< draws that picked the generator
    double meanGeneratorWeight = 0.0;    ///< running mean of the generator's weight

    /// Fraction of draws that moved away from the generator (the GMH
    /// analogue of an acceptance rate).
    double moveRate() const {
        return samplesDrawn == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(generatorResampled) / static_cast<double>(samplesDrawn);
    }
};

template <class Problem>
class GmhSampler {
  public:
    using State = typename Problem::State;
    using Region = typename Problem::Region;

    GmhSampler(const Problem& problem, GmhOptions opts, ThreadPool* pool = nullptr)
        : problem_(problem), opts_(opts), pool_(pool),
          hostRng_(static_cast<std::uint32_t>(opts.seed ^ (opts.seed >> 32))) {}

    /// Run `burnInIters` discarded iterations then `sampleIters` recorded
    /// iterations; every recorded iteration emits samplesPerIteration
    /// states to sink(const State&) (or sink(const State&, double logPost)
    /// when the sink accepts it). Returns the final state.
    template <class Sink>
    State run(State init, std::size_t burnInIters, std::size_t sampleIters, Sink&& sink) {
        start(std::move(init));
        using SinkT = std::remove_reference_t<Sink>;
        for (std::size_t it = 0; it < burnInIters; ++it) tick(static_cast<SinkT*>(nullptr));
        for (std::size_t it = 0; it < sampleIters; ++it) tick(&sink);
        return std::move(current_);
    }

    /// Tick-level interface for the sampler runtime: start() installs the
    /// initial state (evaluating its posterior once — the generator's
    /// posterior is carried between iterations afterwards, so no serial
    /// likelihood evaluation remains inside an iteration), then each tick()
    /// performs one Algorithm-1 iteration.
    void start(State init) {
        current_ = std::move(init);
        currentLogPost_ = problem_.logPosterior(current_);
    }

    template <class Sink>
    void tick(Sink* sink) {
        current_ = iterate(std::move(current_), currentLogPost_, sink);
    }

    const State& current() const { return current_; }
    double currentLogPosterior() const { return currentLogPost_; }
    std::uint64_t iteration() const { return iteration_; }
    Mt19937& hostRng() { return hostRng_; }
    const Mt19937& hostRng() const { return hostRng_; }

    /// Restore a snapshotted sampler mid-run (the host RNG is restored
    /// separately through hostRng(); proposal streams are counter-based
    /// Philox keyed by the iteration counter, so they need no state).
    void restore(State s, double logPost, std::uint64_t iteration, GmhStats stats) {
        current_ = std::move(s);
        currentLogPost_ = logPost;
        iteration_ = iteration;
        stats_ = stats;
    }

    const GmhStats& stats() const { return stats_; }

  private:
    /// One Algorithm-1 iteration. When sink != nullptr the M index draws
    /// are emitted as samples; burn-in iterations draw indices the same way
    /// (the chain dynamics are identical, §4.1: "there is no distinction
    /// between the parallelism applied to the burn-in phase and the
    /// sampling phase") but discard them. `currentLogPost` carries the
    /// generator's posterior in and the chosen member's posterior out.
    template <class Sink>
    State iterate(State current, double& currentLogPost, Sink* sink) {
        const std::size_t n = opts_.numProposals;
        const Region region = problem_.makeRegion(current, hostRng_);

        // Proposal fan-out: slot n holds the generator itself. The fan-out
        // buffers are sampler members, so their storage is reused across
        // iterations instead of reallocated per step.
        std::vector<State>& members = members_;
        std::vector<double>& logPost = logPost_;
        std::vector<double>& logW = logW_;
        members.resize(n + 1);
        logPost.resize(n + 1);
        logW.resize(n + 1);
        const std::uint64_t iterBase = iteration_ * static_cast<std::uint64_t>(n + 1);
        forEachIndex(pool_, n, [&](std::size_t i) {
            Philox rng(opts_.seed, iterBase + i);
            members[i] = problem_.proposeInRegion(region, rng);
            logPost[i] = problem_.logPosterior(members[i]);
            logW[i] = logPost[i] - problem_.logProposalDensity(region, members[i]);
        });
        members[n] = std::move(current);
        logPost[n] = currentLogPost;
        logW[n] = logPost[n] - problem_.logProposalDensity(region, members[n]);

        // Stationary distribution of the inner transition matrix A.
        std::vector<double>& probs = probs_;
        logNormalize(logW, probs);

        stats_.meanGeneratorWeight += (probs[n] - stats_.meanGeneratorWeight) /
                                      static_cast<double>(stats_.iterations + 1);

        // Sample I repeatedly (§4.3); the last draw seeds the next round.
        std::size_t last = n;
        for (std::size_t m = 0; m < opts_.samplesPerIteration; ++m) {
            last = hostRng_.categorical(probs);
            ++stats_.samplesDrawn;
            if (last == n) ++stats_.generatorResampled;
            detail::emitSample(sink, members[last], logPost[last]);
        }
        ++stats_.iterations;
        ++iteration_;
        currentLogPost = logPost[last];
        return std::move(members[last]);
    }

    const Problem& problem_;
    GmhOptions opts_;
    ThreadPool* pool_;
    Mt19937 hostRng_;
    GmhStats stats_;
    std::uint64_t iteration_ = 0;
    State current_{};
    double currentLogPost_ = 0.0;
    // Per-iteration fan-out buffers, reused across iterations (never part
    // of checkpointed state — rebuilt from scratch by the next iterate()).
    std::vector<State> members_;
    std::vector<double> logPost_;
    std::vector<double> logW_;
    std::vector<double> probs_;
};

}  // namespace mpcgs
