// Metropolis-coupled MCMC (MC^3, "heated chains") — the mixing aid the
// LAMARC package runs alongside its sampler and a natural baseline for the
// paper's multi-chain discussion (§2.3, §3): several chains explore
// tempered versions pi(x)^{1/T} of the posterior and periodically propose
// to swap states; only the cold chain (T = 1) is sampled.
//
// Every chain owns a SplitMix64-derived Mt19937 stream and swap decisions
// draw from a dedicated stream, so (a) chain steps and swap decisions are
// decorrelated, and (b) the within-sweep stepping can run concurrently on
// a ThreadPool (via ChainScheduler) with results bitwise invariant to the
// thread count: the parallel section only reads/writes per-chain state,
// and the swap point is serialized on the calling thread.
//
// Problem concept: same as MhChain's (logPosterior + propose).
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "mcmc/schedule.h"
#include "rng/mt19937.h"
#include "rng/rng.h"
#include "rng/splitmix.h"

namespace mpcgs {

struct HeatedOptions {
    /// Temperatures, first entry must be 1 (the cold chain). LAMARC's
    /// default ladder is {1, 1.1, 1.2, 1.3}-like; steeper ladders help
    /// multi-modal posteriors.
    std::vector<double> temperatures{1.0, 1.2, 1.5, 2.0};
    std::size_t swapInterval = 10;  ///< propose one swap every k sweeps
    std::uint64_t seed = 1;
};

struct HeatedStats {
    std::size_t swapsProposed = 0;
    std::size_t swapsAccepted = 0;
    std::size_t steps = 0;     ///< MH transitions across all chains
    std::size_t accepted = 0;  ///< accepted transitions across all chains
    double swapRate() const {
        return swapsProposed == 0
                   ? 0.0
                   : static_cast<double>(swapsAccepted) / static_cast<double>(swapsProposed);
    }
};

template <class Problem>
class HeatedChains {
  public:
    using State = typename Problem::State;

    /// `pool` parallelizes the within-sweep stepping across chains; null
    /// runs the sweep serially. Either way the results are identical.
    HeatedChains(const Problem& problem, State init, HeatedOptions opts,
                 ThreadPool* pool = nullptr)
        : problem_(problem), opts_(std::move(opts)),
          scheduler_(pool, opts_.temperatures.size()),
          swapRng_(Mt19937::fromSplitMix(splitMix64At(opts_.seed, 0))) {
        if (opts_.temperatures.empty() || opts_.temperatures.front() != 1.0)
            throw std::invalid_argument("HeatedChains: temperatures must start with 1.0");
        const double logPost = problem_.logPosterior(init);
        for (std::size_t i = 0; i < opts_.temperatures.size(); ++i) {
            const double t = opts_.temperatures[i];
            if (t < 1.0) throw std::invalid_argument("HeatedChains: temperatures must be >= 1");
            chains_.push_back(Slot{init, logPost, t,
                                   Mt19937::fromSplitMix(splitMix64At(opts_.seed, i + 1))});
        }
    }

    /// One sweep: an MH step in every chain (parallel section), plus (every
    /// swapInterval sweeps) one proposed swap between a random adjacent
    /// pair (serialized swap point).
    void sweep() {
        scheduler_.round(
            [this](std::size_t i) { stepChain(chains_[i]); },
            [this] {
                ++sweeps_;
                if (sweeps_ % opts_.swapInterval == 0 && chains_.size() > 1) proposeSwap();
            });
    }

    template <class Sink>
    void run(std::size_t burnInSweeps, std::size_t sampleSweeps, Sink&& sink) {
        for (std::size_t i = 0; i < burnInSweeps; ++i) sweep();
        for (std::size_t i = 0; i < sampleSweeps; ++i) {
            sweep();
            sink(cold());
        }
    }

    /// Current state of the cold (T = 1) chain.
    const State& cold() const { return chains_.front().state; }
    double coldLogPosterior() const { return chains_.front().logPost; }
    /// Swap counters plus per-chain step/acceptance counters aggregated.
    HeatedStats stats() const {
        HeatedStats s = stats_;
        for (const Slot& c : chains_) {
            s.steps += c.steps;
            s.accepted += c.accepted;
        }
        return s;
    }
    std::size_t chainCount() const { return chains_.size(); }
    std::size_t sweeps() const { return sweeps_; }

    // Checkpoint access: per-chain state/log-posterior/RNG, the swap
    // stream, and the counters. Restoring all of them resumes the sweep
    // sequence bitwise.
    const State& chainState(std::size_t i) const { return chains_[i].state; }
    double chainLogPosterior(std::size_t i) const { return chains_[i].logPost; }
    Mt19937& chainRng(std::size_t i) { return chains_[i].rng; }
    const Mt19937& chainRng(std::size_t i) const { return chains_[i].rng; }
    Mt19937& swapRng() { return swapRng_; }
    const Mt19937& swapRng() const { return swapRng_; }
    std::size_t chainSteps(std::size_t i) const { return chains_[i].steps; }
    std::size_t chainAccepted(std::size_t i) const { return chains_[i].accepted; }
    void restoreChain(std::size_t i, State s, double logPost, std::size_t steps,
                      std::size_t accepted) {
        chains_[i].state = std::move(s);
        chains_[i].logPost = logPost;
        chains_[i].steps = steps;
        chains_[i].accepted = accepted;
    }
    /// Restore the sweep counter and the swap counters (per-chain counters
    /// go through restoreChain).
    void restoreCounters(std::size_t sweeps, std::size_t swapsProposed,
                         std::size_t swapsAccepted) {
        sweeps_ = sweeps;
        stats_.swapsProposed = swapsProposed;
        stats_.swapsAccepted = swapsAccepted;
    }

  private:
    struct Slot {
        State state;
        double logPost;  ///< untempered log pi(state)
        double temperature;
        Mt19937 rng;     ///< this chain's private stream
        std::size_t steps = 0;
        std::size_t accepted = 0;
    };

    void stepChain(Slot& c) {
        auto prop = problem_.propose(c.state, c.rng);
        const double logNew = problem_.logPosterior(prop.state);
        // Tempered acceptance: (pi(x')/pi(x))^{1/T} times the Hastings term.
        const double logR =
            (logNew - c.logPost) / c.temperature + prop.logReverse - prop.logForward;
        ++c.steps;
        if (logR >= 0.0 || std::log(c.rng.uniformPos()) < logR) {
            c.state = std::move(prop.state);
            c.logPost = logNew;
            ++c.accepted;
        }
    }

    void proposeSwap() {
        const std::size_t i = static_cast<std::size_t>(swapRng_.below(chains_.size() - 1));
        Slot& a = chains_[i];
        Slot& b = chains_[i + 1];
        ++stats_.swapsProposed;
        // Standard MC^3 swap ratio.
        const double logR = (a.logPost - b.logPost) *
                            (1.0 / b.temperature - 1.0 / a.temperature);
        if (logR >= 0.0 || std::log(swapRng_.uniformPos()) < logR) {
            std::swap(a.state, b.state);
            std::swap(a.logPost, b.logPost);
            ++stats_.swapsAccepted;
        }
    }

    const Problem& problem_;
    HeatedOptions opts_;
    ChainScheduler scheduler_;
    Mt19937 swapRng_;
    std::vector<Slot> chains_;
    HeatedStats stats_;
    std::size_t sweeps_ = 0;
};

}  // namespace mpcgs
