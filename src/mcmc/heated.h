// Metropolis-coupled MCMC (MC^3, "heated chains") — the mixing aid the
// LAMARC package runs alongside its sampler and a natural baseline for the
// paper's multi-chain discussion (§2.3, §3): several chains explore
// tempered versions pi(x)^{1/T} of the posterior and periodically propose
// to swap states; only the cold chain (T = 1) is sampled.
//
// Problem concept: same as MhChain's (logPosterior + propose).
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "rng/mt19937.h"
#include "rng/rng.h"

namespace mpcgs {

struct HeatedOptions {
    /// Temperatures, first entry must be 1 (the cold chain). LAMARC's
    /// default ladder is {1, 1.1, 1.2, 1.3}-like; steeper ladders help
    /// multi-modal posteriors.
    std::vector<double> temperatures{1.0, 1.2, 1.5, 2.0};
    std::size_t swapInterval = 10;  ///< propose one swap every k sweeps
    std::uint64_t seed = 1;
};

struct HeatedStats {
    std::size_t swapsProposed = 0;
    std::size_t swapsAccepted = 0;
    double swapRate() const {
        return swapsProposed == 0
                   ? 0.0
                   : static_cast<double>(swapsAccepted) / static_cast<double>(swapsProposed);
    }
};

template <class Problem>
class HeatedChains {
  public:
    using State = typename Problem::State;

    HeatedChains(const Problem& problem, State init, HeatedOptions opts)
        : problem_(problem), opts_(std::move(opts)),
          rng_(static_cast<std::uint32_t>(opts_.seed ^ (opts_.seed >> 32))) {
        if (opts_.temperatures.empty() || opts_.temperatures.front() != 1.0)
            throw std::invalid_argument("HeatedChains: temperatures must start with 1.0");
        for (const double t : opts_.temperatures) {
            if (t < 1.0) throw std::invalid_argument("HeatedChains: temperatures must be >= 1");
            chains_.push_back(Slot{init, problem_.logPosterior(init), t});
        }
    }

    /// One sweep: an MH step in every chain, plus (every swapInterval
    /// sweeps) one proposed swap between a random adjacent pair.
    void sweep() {
        for (auto& c : chains_) stepChain(c);
        ++sweeps_;
        if (sweeps_ % opts_.swapInterval == 0 && chains_.size() > 1) proposeSwap();
    }

    template <class Sink>
    void run(std::size_t burnInSweeps, std::size_t sampleSweeps, Sink&& sink) {
        for (std::size_t i = 0; i < burnInSweeps; ++i) sweep();
        for (std::size_t i = 0; i < sampleSweeps; ++i) {
            sweep();
            sink(cold());
        }
    }

    /// Current state of the cold (T = 1) chain.
    const State& cold() const { return chains_.front().state; }
    double coldLogPosterior() const { return chains_.front().logPost; }
    const HeatedStats& stats() const { return stats_; }
    std::size_t chainCount() const { return chains_.size(); }

  private:
    struct Slot {
        State state;
        double logPost;  ///< untempered log pi(state)
        double temperature;
    };

    void stepChain(Slot& c) {
        auto prop = problem_.propose(c.state, rng_);
        const double logNew = problem_.logPosterior(prop.state);
        // Tempered acceptance: (pi(x')/pi(x))^{1/T} times the Hastings term.
        const double logR =
            (logNew - c.logPost) / c.temperature + prop.logReverse - prop.logForward;
        if (logR >= 0.0 || std::log(rng_.uniformPos()) < logR) {
            c.state = std::move(prop.state);
            c.logPost = logNew;
        }
    }

    void proposeSwap() {
        const std::size_t i = static_cast<std::size_t>(rng_.below(chains_.size() - 1));
        Slot& a = chains_[i];
        Slot& b = chains_[i + 1];
        ++stats_.swapsProposed;
        // Standard MC^3 swap ratio.
        const double logR = (a.logPost - b.logPost) *
                            (1.0 / b.temperature - 1.0 / a.temperature);
        if (logR >= 0.0 || std::log(rng_.uniformPos()) < logR) {
            std::swap(a.state, b.state);
            std::swap(a.logPost, b.logPost);
            ++stats_.swapsAccepted;
        }
    }

    const Problem& problem_;
    HeatedOptions opts_;
    Mt19937 rng_;
    std::vector<Slot> chains_;
    HeatedStats stats_;
    std::size_t sweeps_ = 0;
};

}  // namespace mpcgs
