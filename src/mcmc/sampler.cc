#include "mcmc/sampler.h"

#include <algorithm>
#include <limits>

#include "mcmc/checkpoint.h"

namespace mpcgs {

void ConvergenceMonitor::beginRun(std::uint32_t chains) {
    if (chains > traces_.size()) {
        traces_.resize(chains);
        stats_.resize(chains);
    }
}

void ConvergenceMonitor::consume(const Genealogy&, const SampleTag& tag) {
    traces_[tag.chain].push_back(tag.logPosterior);
    stats_[tag.chain].add(tag.logPosterior);
}

std::size_t ConvergenceMonitor::minChainLength() const {
    std::size_t n = std::numeric_limits<std::size_t>::max();
    for (const auto& t : traces_) n = std::min(n, t.size());
    return traces_.empty() ? 0 : n;
}

std::size_t ConvergenceMonitor::totalSamples() const {
    std::size_t n = 0;
    for (const auto& t : traces_) n += t.size();
    return n;
}

double ConvergenceMonitor::rhat() const {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (traces_.empty()) return kInf;
    if (traces_.size() == 1) {
        // Split-R-hat: compare the two halves of the (windowed) chain.
        const auto& t = traces_.front();
        const std::size_t n = std::min(t.size(), kDiagnosticWindow);
        const std::size_t half = n / 2;
        if (half < 2) return kInf;
        const auto tail = t.end() - static_cast<std::ptrdiff_t>(n);
        return gelmanRubin({std::vector<double>(tail, tail + static_cast<std::ptrdiff_t>(half)),
                            std::vector<double>(t.end() - static_cast<std::ptrdiff_t>(half),
                                                t.end())});
    }
    const std::size_t n = std::min(minChainLength(), kDiagnosticWindow);
    if (n < 2) return kInf;
    std::vector<std::vector<double>> windows;
    windows.reserve(traces_.size());
    for (const auto& t : traces_)
        windows.emplace_back(t.end() - static_cast<std::ptrdiff_t>(n), t.end());
    return gelmanRubin(windows);
}

double ConvergenceMonitor::pooledEss() const {
    double ess = 0.0;
    for (const auto& t : traces_) {
        if (t.size() < 2) continue;
        const std::size_t n = std::min(t.size(), kDiagnosticWindow);
        const std::span<const double> window(t.data() + (t.size() - n), n);
        const double windowEss = effectiveSampleSize(window);
        // tau estimated on the window, ESS = n_total / tau.
        ess += windowEss * (static_cast<double>(t.size()) / static_cast<double>(n));
    }
    return ess;
}

void ConvergenceMonitor::save(CheckpointWriter& w) const {
    w.u64(traces_.size());
    for (const auto& t : traces_) w.doubles(t);
}

void ConvergenceMonitor::load(CheckpointReader& r) {
    const std::uint64_t chains = r.u64();
    if (chains > r.remaining() / sizeof(std::uint64_t))  // every trace carries a length word
        throw CheckpointError("corrupt snapshot: implausible chain count");
    traces_.assign(chains, {});
    stats_.assign(chains, RunningStats{});
    for (std::uint64_t c = 0; c < chains; ++c) {
        traces_[c] = r.doubles();
        // Replaying the trace rebuilds the Welford accumulator with the
        // exact sequence of adds, so the stats match the saved run bitwise.
        for (const double x : traces_[c]) stats_[c].add(x);
    }
}

bool StoppingRule::satisfied(const ConvergenceMonitor& m, double* rhatOut,
                             double* essOut) const {
    if (!enabled()) return false;
    if (m.minChainLength() < minSamplesPerChain) return false;
    // Evaluate both diagnostics up front (when needed for a criterion or a
    // report slot), so callers always see the full picture even when the
    // first criterion already fails.
    double r = 0.0;
    double e = 0.0;
    if (rhatBelow > 0.0 || rhatOut) {
        r = m.rhat();
        if (rhatOut) *rhatOut = r;
    }
    if (essAtLeast > 0.0 || essOut) {
        e = m.pooledEss();
        if (essOut) *essOut = e;
    }
    if (rhatBelow > 0.0 && !(r < rhatBelow)) return false;
    if (essAtLeast > 0.0 && !(e >= essAtLeast)) return false;
    return true;
}

SamplerRun::SamplerRun(Sampler& sampler, Config cfg)
    : sampler_(sampler), cfg_(std::move(cfg)) {}

void SamplerRun::restoreProgress(std::size_t burnTicksDone, std::size_t sampleTicksDone,
                                 bool stopped) {
    burnDone_ = std::min(burnTicksDone, cfg_.burnInTicks);
    sampleDone_ = std::min(sampleTicksDone, cfg_.sampleTicks);
    stopped_ = stopped;
}

SamplerRunReport SamplerRun::execute(SampleSink& sink, ConvergenceMonitor& monitor) {
    FanoutSink fanout;
    fanout.add(&sink);
    fanout.add(&monitor);
    fanout.beginRun(sampler_.chainCount());

    const std::size_t ckptEvery =
        cfg_.checkpointInterval > 0
            ? cfg_.checkpointInterval
            : std::max<std::size_t>(1, (cfg_.burnInTicks + cfg_.sampleTicks) / 16);
    const std::size_t checkEvery =
        cfg_.stopping.checkInterval > 0
            ? cfg_.stopping.checkInterval
            : std::max<std::size_t>(1, cfg_.sampleTicks / 64);

    std::size_t sinceCkpt = 0;
    const auto maybeCheckpoint = [&](bool force) {
        if (!cfg_.checkpoint) return;
        if (!force && ++sinceCkpt < ckptEvery) return;
        sinceCkpt = 0;
        cfg_.checkpoint(burnDone_, sampleDone_, stopped_);
    };

    while (burnDone_ < cfg_.burnInTicks) {
        sampler_.tick(nullptr);
        ++burnDone_;
        maybeCheckpoint(burnDone_ == cfg_.burnInTicks);
    }

    SamplerRunReport report;
    if (stopped_) {
        // Resumed from a snapshot taken after the stopping rule fired:
        // re-derive the diagnostics from the restored monitor, sample no
        // further.
        report.stoppedEarly = true;
        cfg_.stopping.satisfied(monitor, &report.rhat, &report.ess);
    }
    while (!stopped_ && sampleDone_ < cfg_.sampleTicks) {
        sampler_.tick(&fanout);
        ++sampleDone_;
        if (cfg_.stopping.enabled() && sampleDone_ % checkEvery == 0 &&
            cfg_.stopping.satisfied(monitor, &report.rhat, &report.ess)) {
            report.stoppedEarly = true;
            stopped_ = true;
            break;
        }
        maybeCheckpoint(false);
    }
    // A capped run reports the diagnostics at the cap (not at the last
    // periodic check), which also keeps a run resumed from an at-cap
    // snapshot consistent with its uninterrupted counterpart.
    if (!report.stoppedEarly && cfg_.stopping.enabled())
        cfg_.stopping.satisfied(monitor, &report.rhat, &report.ess);
    maybeCheckpoint(true);

    report.samples = monitor.totalSamples();
    report.ticks = sampleDone_;
    return report;
}

}  // namespace mpcgs
