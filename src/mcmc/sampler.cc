#include "mcmc/sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "coalescent/structured.h"
#include "core/numeric_guard.h"
#include "core/supervisor.h"
#include "mcmc/checkpoint.h"
#include "par/kernel.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

/// Serial-section guardrail shared by both run orchestrators: checks the
/// newest log-posterior of every chain in `monitor` after a tick. The
/// mcmc.logpost fail point (evaluated once per call — deterministic tick
/// counting) can poison chain 0's value or throw directly.
void guardTickLogPosts(const SamplerNumericGuard& guard, const Sampler& sampler,
                       const ConvergenceMonitor& monitor, std::uint64_t tick,
                       std::uint32_t locus) {
    if (!guard.enabled) return;
    const auto hit = MPCGS_FAILPOINT("mcmc.logpost");
    if (hit.fired() && hit.action != failpoint::Action::Nan)
        throw InjectedFaultError("mcmc.logpost");
    for (std::uint32_t c = 0; c < monitor.chainCount(); ++c) {
        const auto& trace = monitor.trace(c);
        if (trace.empty()) continue;
        double v = trace.back();
        if (c == 0 && hit.action == failpoint::Action::Nan)
            v = std::numeric_limits<double>::quiet_NaN();
        if (std::isfinite(v)) continue;
        NumericFaultContext ctx;
        ctx.where = "mcmc.logpost";
        ctx.value = v;
        ctx.theta = guard.theta;
        ctx.seed = guard.seed;
        ctx.tick = tick;
        ctx.chain = c;
        ctx.genealogy = genealogySummary(sampler.continuation());
        ctx.detail = "phase: " + guard.phase + "\nlocus: " + std::to_string(locus);
        raiseNumericFault(ctx);
    }
}

}  // namespace

void SampleSink::consume(const StructuredGenealogy& g, const SampleTag& tag) {
    consume(g.tree(), tag);
}

void ConvergenceMonitor::beginRun(std::uint32_t chains) {
    if (chains > traces_.size()) {
        traces_.resize(chains);
        stats_.resize(chains);
    }
}

void ConvergenceMonitor::consume(const Genealogy&, const SampleTag& tag) {
    traces_[tag.chain].push_back(tag.logPosterior);
    stats_[tag.chain].add(tag.logPosterior);
}

std::size_t ConvergenceMonitor::minChainLength() const {
    std::size_t n = std::numeric_limits<std::size_t>::max();
    for (const auto& t : traces_) n = std::min(n, t.size());
    return traces_.empty() ? 0 : n;
}

std::size_t ConvergenceMonitor::totalSamples() const {
    std::size_t n = 0;
    for (const auto& t : traces_) n += t.size();
    return n;
}

double ConvergenceMonitor::rhat() const {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (traces_.empty()) return kInf;
    if (traces_.size() == 1) {
        // Split-R-hat: compare the two halves of the (windowed) chain.
        const auto& t = traces_.front();
        const std::size_t n = std::min(t.size(), kDiagnosticWindow);
        const std::size_t half = n / 2;
        if (half < 2) return kInf;
        const auto tail = t.end() - static_cast<std::ptrdiff_t>(n);
        return gelmanRubin({std::vector<double>(tail, tail + static_cast<std::ptrdiff_t>(half)),
                            std::vector<double>(t.end() - static_cast<std::ptrdiff_t>(half),
                                                t.end())});
    }
    const std::size_t n = std::min(minChainLength(), kDiagnosticWindow);
    if (n < 2) return kInf;
    std::vector<std::vector<double>> windows;
    windows.reserve(traces_.size());
    for (const auto& t : traces_)
        windows.emplace_back(t.end() - static_cast<std::ptrdiff_t>(n), t.end());
    return gelmanRubin(windows);
}

double ConvergenceMonitor::pooledEss() const {
    double ess = 0.0;
    for (const auto& t : traces_) {
        if (t.size() < 2) continue;
        const std::size_t n = std::min(t.size(), kDiagnosticWindow);
        const std::span<const double> window(t.data() + (t.size() - n), n);
        const double windowEss = effectiveSampleSize(window);
        // tau estimated on the window, ESS = n_total / tau.
        ess += windowEss * (static_cast<double>(t.size()) / static_cast<double>(n));
    }
    return ess;
}

void ConvergenceMonitor::save(CheckpointWriter& w) const {
    w.u64(traces_.size());
    for (const auto& t : traces_) w.doubles(t);
}

void ConvergenceMonitor::load(CheckpointReader& r) {
    const std::uint64_t chains = r.u64();
    if (chains > r.remaining() / sizeof(std::uint64_t))  // every trace carries a length word
        throw CheckpointError("corrupt snapshot: implausible chain count");
    traces_.assign(chains, {});
    stats_.assign(chains, RunningStats{});
    for (std::uint64_t c = 0; c < chains; ++c) {
        traces_[c] = r.doubles();
        // Replaying the trace rebuilds the Welford accumulator with the
        // exact sequence of adds, so the stats match the saved run bitwise.
        for (const double x : traces_[c]) stats_[c].add(x);
    }
}

bool StoppingRule::satisfied(const ConvergenceMonitor& m, double* rhatOut,
                             double* essOut) const {
    if (!enabled()) return false;
    if (m.minChainLength() < minSamplesPerChain) return false;
    // Evaluate both diagnostics up front (when needed for a criterion or a
    // report slot), so callers always see the full picture even when the
    // first criterion already fails.
    double r = 0.0;
    double e = 0.0;
    if (rhatBelow > 0.0 || rhatOut) {
        r = m.rhat();
        if (rhatOut) *rhatOut = r;
    }
    if (essAtLeast > 0.0 || essOut) {
        e = m.pooledEss();
        if (essOut) *essOut = e;
    }
    if (rhatBelow > 0.0 && !(r < rhatBelow)) return false;
    if (essAtLeast > 0.0 && !(e >= essAtLeast)) return false;
    return true;
}

SamplerRun::SamplerRun(Sampler& sampler, Config cfg)
    : sampler_(sampler), cfg_(std::move(cfg)) {}

void SamplerRun::restoreProgress(std::size_t burnTicksDone, std::size_t sampleTicksDone,
                                 bool stopped) {
    burnDone_ = std::min(burnTicksDone, cfg_.burnInTicks);
    sampleDone_ = std::min(sampleTicksDone, cfg_.sampleTicks);
    stopped_ = stopped;
}

SamplerRunReport SamplerRun::execute(SampleSink& sink, ConvergenceMonitor& monitor) {
    FanoutSink fanout;
    fanout.add(&sink);
    fanout.add(&monitor);
    fanout.beginRun(sampler_.chainCount());

    const std::size_t ckptEvery =
        cfg_.checkpointInterval > 0
            ? cfg_.checkpointInterval
            : std::max<std::size_t>(1, (cfg_.burnInTicks + cfg_.sampleTicks) / 16);
    const std::size_t checkEvery =
        cfg_.stopping.checkInterval > 0
            ? cfg_.stopping.checkInterval
            : std::max<std::size_t>(1, cfg_.sampleTicks / 64);

    std::size_t sinceCkpt = 0;
    const auto maybeCheckpoint = [&](bool force) {
        if (!cfg_.checkpoint) return;
        if (!force && ++sinceCkpt < ckptEvery) return;
        sinceCkpt = 0;
        cfg_.checkpoint(burnDone_, sampleDone_, stopped_);
    };
    // Cooperative stop: polled at every tick boundary so an interrupt
    // always lands on a consistent state; the forced final checkpoint
    // makes `--resume` continue bitwise-identically.
    const auto checkStop = [&](const char* where) {
        if (!cfg_.stopRequested || !cfg_.stopRequested()) return;
        maybeCheckpoint(true);
        throw InterruptedError(std::string("stop requested during ") + where +
                                   " — progress checkpointed at the tick boundary",
                               static_cast<bool>(cfg_.checkpoint));
    };

    while (burnDone_ < cfg_.burnInTicks) {
        checkStop("burn-in");
        sampler_.tick(nullptr);
        ++burnDone_;
        maybeCheckpoint(burnDone_ == cfg_.burnInTicks);
    }

    SamplerRunReport report;
    if (stopped_) {
        // Resumed from a snapshot taken after the stopping rule fired:
        // re-derive the diagnostics from the restored monitor, sample no
        // further.
        report.stoppedEarly = true;
        cfg_.stopping.satisfied(monitor, &report.rhat, &report.ess);
    }
    while (!stopped_ && sampleDone_ < cfg_.sampleTicks) {
        checkStop("sampling");
        sampler_.tick(&fanout);
        ++sampleDone_;
        guardTickLogPosts(cfg_.numeric, sampler_, monitor, sampleDone_, 0);
        if (cfg_.stopping.enabled() && sampleDone_ % checkEvery == 0 &&
            cfg_.stopping.satisfied(monitor, &report.rhat, &report.ess)) {
            report.stoppedEarly = true;
            stopped_ = true;
            break;
        }
        maybeCheckpoint(false);
    }
    // A capped run reports the diagnostics at the cap (not at the last
    // periodic check), which also keeps a run resumed from an at-cap
    // snapshot consistent with its uninterrupted counterpart.
    if (!report.stoppedEarly && cfg_.stopping.enabled())
        cfg_.stopping.satisfied(monitor, &report.rhat, &report.ess);
    maybeCheckpoint(true);

    report.samples = monitor.totalSamples();
    report.ticks = sampleDone_;
    return report;
}

std::size_t MultiLocusReport::totalSamples() const {
    std::size_t n = 0;
    for (const LocusRunReport& r : loci) n += r.samples;
    return n;
}

bool MultiLocusReport::allStoppedEarly() const {
    for (const LocusRunReport& r : loci)
        if (!r.stoppedEarly) return false;
    return !loci.empty();
}

MultiLocusRun::MultiLocusRun(std::vector<LocusSlot> slots, Config cfg)
    : slots_(std::move(slots)), cfg_(std::move(cfg)) {
    require(!slots_.empty(), "MultiLocusRun: no loci");
    for (const LocusSlot& s : slots_)
        require(s.sampler && s.sink && s.monitor,
                "MultiLocusRun: every slot needs a sampler, sink and monitor");
    sampleDone_.assign(slots_.size(), 0);
    stopped_.assign(slots_.size(), 0);
}

void MultiLocusRun::restoreProgress(std::size_t burnTicksDone,
                                    std::span<const std::uint64_t> sampleTicksDone,
                                    std::span<const std::uint8_t> stopped) {
    require(sampleTicksDone.size() == slots_.size() && stopped.size() == slots_.size(),
            "MultiLocusRun: restored progress has the wrong locus count");
    burnDone_ = std::min(burnTicksDone, cfg_.burnInTicks);
    for (std::size_t l = 0; l < slots_.size(); ++l) {
        sampleDone_[l] = std::min<std::uint64_t>(sampleTicksDone[l], cfg_.sampleTicks);
        stopped_[l] = stopped[l] ? 1 : 0;
    }
}

MultiLocusReport MultiLocusRun::execute() {
    const std::size_t L = slots_.size();

    // Per-locus sink pipelines: summary sink + convergence monitor behind a
    // locus-stamping adapter, so every streamed tag carries its locus id.
    std::vector<FanoutSink> fanouts(L);
    std::vector<LocusTagSink> tagged;
    tagged.reserve(L);
    for (std::size_t l = 0; l < L; ++l) {
        fanouts[l].add(slots_[l].sink);
        fanouts[l].add(slots_[l].monitor);
        fanouts[l].beginRun(slots_[l].sampler->chainCount());
        tagged.emplace_back(static_cast<std::uint32_t>(l), &fanouts[l]);
    }

    // The single-locus cadence formulas of SamplerRun, applied per round: a
    // round advances every active locus by one tick, so the L = 1 round
    // sequence is exactly the SamplerRun tick sequence.
    const std::size_t ckptEvery =
        cfg_.checkpointInterval > 0
            ? cfg_.checkpointInterval
            : std::max<std::size_t>(1, (cfg_.burnInTicks + cfg_.sampleTicks) / 16);
    const std::size_t checkEvery =
        cfg_.stopping.checkInterval > 0
            ? cfg_.stopping.checkInterval
            : std::max<std::size_t>(1, cfg_.sampleTicks / 64);

    std::size_t sinceCkpt = 0;
    const auto maybeCheckpoint = [&](bool force) {
        if (!cfg_.checkpoint) return;
        if (!force && ++sinceCkpt < ckptEvery) return;
        sinceCkpt = 0;
        cfg_.checkpoint(burnDone_, sampleDone_, stopped_);
    };
    // Cooperative stop at round boundaries, in the serial section between
    // parallel rounds — same contract as SamplerRun.
    const auto checkStop = [&](const char* where) {
        if (!cfg_.stopRequested || !cfg_.stopRequested()) return;
        maybeCheckpoint(true);
        throw InterruptedError(std::string("stop requested during ") + where +
                                   " — progress checkpointed at the round boundary",
                               static_cast<bool>(cfg_.checkpoint));
    };
    const auto guardRound = [&](std::uint64_t round) {
        for (std::size_t l = 0; l < L; ++l)
            guardTickLogPosts(cfg_.numeric, *slots_[l].sampler, *slots_[l].monitor,
                              round, static_cast<std::uint32_t>(l));
    };

    // The loci axis: one indivisible unit of pool work per locus and round.
    // With a single slot the sampler may own the pool internally, so the
    // round must run on the calling thread (pool sections don't nest).
    const auto forEachLocus = [&](const std::function<void(std::size_t)>& f) {
        if (L == 1)
            f(0);
        else
            launchChains(cfg_.pool, L, f);
    };

    while (burnDone_ < cfg_.burnInTicks) {
        checkStop("burn-in");
        forEachLocus([&](std::size_t l) { slots_[l].sampler->tick(nullptr); });
        ++burnDone_;
        maybeCheckpoint(burnDone_ == cfg_.burnInTicks);
    }

    MultiLocusReport report;
    report.loci.resize(L);
    for (std::size_t l = 0; l < L; ++l) {
        if (!stopped_[l]) continue;
        // Resumed from a snapshot taken after this locus's rule fired:
        // re-derive its diagnostics from the restored monitor.
        report.loci[l].stoppedEarly = true;
        cfg_.stopping.satisfied(*slots_[l].monitor, &report.loci[l].rhat,
                                &report.loci[l].ess);
    }

    const auto locusActive = [&](std::size_t l) {
        return !stopped_[l] && sampleDone_[l] < cfg_.sampleTicks;
    };
    const auto anyActive = [&] {
        for (std::size_t l = 0; l < L; ++l)
            if (locusActive(l)) return true;
        return false;
    };

    std::uint64_t round = 0;
    while (anyActive()) {
        checkStop("sampling");
        forEachLocus([&](std::size_t l) {
            if (!locusActive(l)) return;
            slots_[l].sampler->tick(&tagged[l]);
            ++sampleDone_[l];
        });
        guardRound(++round);
        // Serialized barrier section: per-locus stopping checks at each
        // locus's own cadence. A locus that satisfies its rule latches
        // stopped and freezes; the others keep sampling.
        if (cfg_.stopping.enabled()) {
            for (std::size_t l = 0; l < L; ++l) {
                if (stopped_[l] || sampleDone_[l] % checkEvery != 0) continue;
                if (cfg_.stopping.satisfied(*slots_[l].monitor, &report.loci[l].rhat,
                                            &report.loci[l].ess)) {
                    report.loci[l].stoppedEarly = true;
                    stopped_[l] = 1;
                }
            }
        }
        maybeCheckpoint(false);
    }
    // Phase-end snapshot (forced), covering the final round and the case
    // where every locus was already complete on entry.
    maybeCheckpoint(true);
    // Capped loci report the diagnostics at the cap, exactly as SamplerRun
    // does for its single sampler.
    if (cfg_.stopping.enabled())
        for (std::size_t l = 0; l < L; ++l)
            if (!report.loci[l].stoppedEarly)
                cfg_.stopping.satisfied(*slots_[l].monitor, &report.loci[l].rhat,
                                        &report.loci[l].ess);

    for (std::size_t l = 0; l < L; ++l) {
        report.loci[l].samples = slots_[l].monitor->totalSamples();
        report.loci[l].ticks = sampleDone_[l];
    }
    return report;
}

}  // namespace mpcgs
