// Unified sampler runtime: the common interface every sampling strategy
// (GMH, serial MH, cached MH, multi-chain, heated MC^3) runs behind, plus
// the streaming sample pipeline and the orchestrator that drives burn-in,
// sampling, convergence-driven stopping and checkpointing.
//
// Layering:
//
//   Sampler (abstract)        one tick() = one transition unit of the whole
//     |                       strategy (MH step / GMH proposal set / MC^3
//     |                       sweep / lockstep multi-chain round); emits
//     |                       zero or more chain-tagged samples to a sink
//   SampleSink (abstract)     streaming consumer; bounded memory, no
//     |                       buffer-then-replay
//   SamplerRun                burn-in -> sampling loop -> StoppingRule
//                             checks -> periodic checkpoint callbacks
//
// Sink concurrency contract: for a fixed chain id, consume() calls arrive
// in index order and never concurrently; calls for *different* chains may
// overlap (each chain runs on one pool worker). Implementations keep
// per-chain state disjoint and need no locking. The (chain, index) tag
// makes aggregate order deterministic without cross-chain synchronization.
//
// Determinism: every chain owns a SplitMix64-derived RNG stream
// (splitMix64At(seed, chain)), so results are bitwise invariant to the
// thread count, and serialized RNG states make checkpointed runs continue
// bitwise-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mcmc/diagnostics.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"
#include "util/stats.h"

namespace mpcgs {

class CheckpointWriter;
class CheckpointReader;
class StructuredGenealogy;

/// Provenance of one streamed sample.
struct SampleTag {
    std::uint32_t chain = 0;    ///< logical chain that produced the sample
    std::uint64_t index = 0;    ///< 0-based position within that chain
    double logPosterior = 0.0;  ///< unnormalized log pi of the sample
    std::uint32_t locus = 0;    ///< locus whose genealogy this is (multi-locus runs)
};

/// Streaming consumer of chain-tagged samples (see the concurrency
/// contract above).
class SampleSink {
  public:
    virtual ~SampleSink() = default;

    /// Called once before sampling starts (and again on resume) with the
    /// producer's chain count; implementations pre-size per-chain slots
    /// here (growing only — existing data is kept across resume).
    virtual void beginRun(std::uint32_t chains) { (void)chains; }

    virtual void consume(const Genealogy& g, const SampleTag& tag) = 0;

    /// Deme-labelled sample from a structured-coalescent sampler. The
    /// default forwards the underlying tree to consume(Genealogy), so
    /// label-agnostic sinks (convergence monitors, trace writers) work on
    /// structured runs unchanged; label-aware sinks override this.
    virtual void consume(const StructuredGenealogy& g, const SampleTag& tag);
};

/// Stamps a fixed locus id onto every tag before forwarding (not owning
/// the inner sink). Samplers are locus-agnostic and always emit locus 0;
/// the multi-locus runtime wraps each locus's sink pipeline in one of
/// these so any shared downstream consumer sees fully-qualified
/// (locus, chain, index) provenance.
class LocusTagSink final : public SampleSink {
  public:
    LocusTagSink(std::uint32_t locus, SampleSink* inner)
        : locus_(locus), inner_(inner) {}

    void beginRun(std::uint32_t chains) override { inner_->beginRun(chains); }
    void consume(const Genealogy& g, const SampleTag& tag) override {
        SampleTag stamped = tag;
        stamped.locus = locus_;
        inner_->consume(g, stamped);
    }
    void consume(const StructuredGenealogy& g, const SampleTag& tag) override {
        SampleTag stamped = tag;
        stamped.locus = locus_;
        inner_->consume(g, stamped);
    }

  private:
    std::uint32_t locus_;
    SampleSink* inner_;
};

/// Fans every sample out to several sinks (not owned).
class FanoutSink final : public SampleSink {
  public:
    void add(SampleSink* sink) {
        if (sink) sinks_.push_back(sink);
    }
    void beginRun(std::uint32_t chains) override {
        for (SampleSink* s : sinks_) s->beginRun(chains);
    }
    void consume(const Genealogy& g, const SampleTag& tag) override {
        for (SampleSink* s : sinks_) s->consume(g, tag);
    }
    void consume(const StructuredGenealogy& g, const SampleTag& tag) override {
        for (SampleSink* s : sinks_) s->consume(g, tag);
    }

  private:
    std::vector<SampleSink*> sinks_;
};

/// Online per-chain statistics and scalar traces: running mean/variance of
/// the log-posterior per chain plus the full per-chain trace the
/// convergence diagnostics need. Memory is one double per sample — bounded
/// by design compared to retaining genealogy states.
class ConvergenceMonitor final : public SampleSink {
  public:
    void beginRun(std::uint32_t chains) override;
    void consume(const Genealogy& g, const SampleTag& tag) override;

    std::uint32_t chainCount() const { return static_cast<std::uint32_t>(traces_.size()); }
    std::size_t minChainLength() const;
    std::size_t totalSamples() const;
    const std::vector<double>& trace(std::uint32_t chain) const { return traces_[chain]; }
    const RunningStats& chainStats(std::uint32_t chain) const { return stats_[chain]; }

    /// Diagnostics evaluate at most this many recent samples per chain, so
    /// the per-check cost stays bounded no matter how long the run grows
    /// (the stopping rule re-evaluates every few ticks; unwindowed ESS is
    /// O(n^2) for slowly mixing chains).
    static constexpr std::size_t kDiagnosticWindow = 4096;

    /// Potential scale reduction of the log-posterior: cross-chain
    /// Gelman-Rubin over the common (windowed) length for >= 2 chains,
    /// split-R-hat (first half vs second half) for a single chain.
    /// Returns +inf when there is too little data to estimate.
    double rhat() const;

    /// Pooled effective sample size: sum of per-chain ESS estimates. The
    /// autocorrelation time is estimated on the recent window and scaled
    /// to the full chain length (ESS = n / tau), so long well-mixed runs
    /// keep accumulating ESS while the estimate stays O(window) to compute.
    double pooledEss() const;

    void save(CheckpointWriter& w) const;
    void load(CheckpointReader& r);

  private:
    std::vector<std::vector<double>> traces_;
    std::vector<RunningStats> stats_;
};

/// Convergence-driven stopping: keep sampling until the cross-chain R-hat
/// drops below `rhatBelow` AND the pooled ESS reaches `essAtLeast`
/// (whichever of the two is enabled), or until the sample cap. Disabled
/// thresholds (<= 0) are ignored; with both disabled the rule never fires
/// and the run always uses the full cap.
struct StoppingRule {
    double rhatBelow = 0.0;               ///< require rhat() < this (0 = off)
    double essAtLeast = 0.0;              ///< require pooledEss() >= this (0 = off)
    std::size_t minSamplesPerChain = 64;  ///< no checks before this much data
    std::size_t checkInterval = 0;        ///< ticks between checks (0 = auto)

    bool enabled() const { return rhatBelow > 0.0 || essAtLeast > 0.0; }
    bool satisfied(const ConvergenceMonitor& m, double* rhatOut = nullptr,
                   double* essOut = nullptr) const;
};

/// Counters common to all strategies. `steps`/`accepted` generalize: MH
/// transitions vs accepted ones; GMH index draws vs draws that moved off
/// the generator. Swap counters apply to MC^3 only.
struct SamplerStats {
    std::size_t steps = 0;
    std::size_t accepted = 0;
    std::size_t swapsProposed = 0;
    std::size_t swapsAccepted = 0;

    double moveRate() const {
        return steps == 0 ? 0.0 : static_cast<double>(accepted) / static_cast<double>(steps);
    }
    double swapRate() const {
        return swapsProposed == 0
                   ? 0.0
                   : static_cast<double>(swapsAccepted) / static_cast<double>(swapsProposed);
    }
};

/// The unified sampler interface. One tick() advances the whole strategy by
/// its natural unit and, when a sink is supplied, emits that tick's
/// samples; a null sink is a burn-in tick (same chain dynamics, samples
/// discarded). save()/load() round-trip the complete state — chain
/// genealogies, log-posteriors, RNG streams, counters — for
/// bitwise-identical continuation.
class Sampler {
  public:
    virtual ~Sampler() = default;

    virtual std::uint32_t chainCount() const = 0;   ///< sample-producing chains
    virtual std::size_t samplesPerTick() const = 0; ///< samples emitted per sampling tick
    virtual void tick(SampleSink* sink) = 0;
    virtual const Genealogy& continuation() const = 0; ///< warm-start state
    virtual SamplerStats stats() const = 0;

    virtual void save(CheckpointWriter& w) const = 0;
    virtual void load(CheckpointReader& r) = 0;
};

/// Numeric-guardrail context shared by the run orchestrators: when
/// enabled, the freshly-appended log-posteriors of every sampling tick are
/// checked for finiteness in the serial section after the tick (never
/// inside a parallel region), and a non-finite value dumps the offending
/// chain state and raises NumericError (core/numeric_guard.h). theta and
/// seed only label the fault dump.
struct SamplerNumericGuard {
    bool enabled = false;
    double theta = 0.0;
    std::uint64_t seed = 0;
    std::string phase;  ///< extra dump context, e.g. "estimateTheta E-step"
};

/// What one sampling phase did.
struct SamplerRunReport {
    std::size_t samples = 0;     ///< samples emitted (including pre-resume)
    std::size_t ticks = 0;       ///< sampling ticks executed
    bool stoppedEarly = false;   ///< stopping rule fired before the cap
    double rhat = 0.0;           ///< last diagnostic values (0 = never evaluated)
    double ess = 0.0;
};

/// Orchestrates one sampling phase of any Sampler: burn-in ticks, streamed
/// sampling through the sink pipeline, stopping-rule checks at a fixed
/// tick cadence, and a periodic checkpoint callback (the owner serializes
/// its context plus the sampler at every invocation). Progress counters
/// are restorable so an interrupted phase resumes exactly where the last
/// snapshot left it.
class SamplerRun {
  public:
    struct Config {
        std::size_t burnInTicks = 0;
        std::size_t sampleTicks = 0;  ///< cap on sampling ticks
        StoppingRule stopping;
        /// Invoked every `checkpointInterval` ticks (and at the end of
        /// burn-in) with the progress counters; `stopped` records that the
        /// stopping rule already ended the phase. Empty = no checkpointing.
        std::function<void(std::size_t burnDone, std::size_t sampleDone, bool stopped)>
            checkpoint;
        std::size_t checkpointInterval = 0;  ///< ticks between snapshots (0 = auto)
        /// Polled at every tick boundary (RunSupervisor::stopCallback()).
        /// When it returns true the run writes one final forced checkpoint
        /// and raises InterruptedError; a later --resume continues
        /// bitwise-identically to the uninterrupted run. Empty = no
        /// cooperative stop.
        std::function<bool()> stopRequested;
        SamplerNumericGuard numeric;  ///< non-finite log-posterior guard
    };

    SamplerRun(Sampler& sampler, Config cfg);

    /// Resume progress bookkeeping from a snapshot (the sampler itself is
    /// restored separately via Sampler::load). A snapshot taken after the
    /// stopping rule fired resumes as already-complete — no extra ticks.
    void restoreProgress(std::size_t burnTicksDone, std::size_t sampleTicksDone,
                         bool stopped = false);

    /// Run to completion (cap or stopping rule). `monitor` is part of the
    /// sink pipeline and feeds the stopping rule; `sink` receives every
    /// sample as well.
    SamplerRunReport execute(SampleSink& sink, ConvergenceMonitor& monitor);

    std::size_t burnTicksDone() const { return burnDone_; }
    std::size_t sampleTicksDone() const { return sampleDone_; }

  private:
    Sampler& sampler_;
    Config cfg_;
    std::size_t burnDone_ = 0;
    std::size_t sampleDone_ = 0;
    bool stopped_ = false;
};

/// One locus's participants in a multi-locus run (none owned). Sink and
/// monitor are per-locus: convergence is judged locus by locus, and a
/// locus's samples never mix into another locus's summaries.
struct LocusSlot {
    Sampler* sampler = nullptr;
    SampleSink* sink = nullptr;
    ConvergenceMonitor* monitor = nullptr;
};

/// What one locus did during a multi-locus sampling phase.
struct LocusRunReport {
    std::size_t samples = 0;    ///< samples emitted (including pre-resume)
    std::size_t ticks = 0;      ///< sampling ticks executed
    bool stoppedEarly = false;  ///< this locus's stopping rule fired before the cap
    double rhat = 0.0;          ///< last diagnostic values (0 = never evaluated)
    double ess = 0.0;
};

struct MultiLocusReport {
    std::vector<LocusRunReport> loci;

    std::size_t totalSamples() const;
    /// True when every locus's stopping rule fired before the cap.
    bool allStoppedEarly() const;
};

/// Orchestrates one sampling phase across L independent loci: lockstep
/// rounds where every still-active locus advances one tick, per-locus
/// stopping-rule checks (a converged locus freezes while the rest keep
/// sampling; the phase ends when ALL loci are stopped or capped), and a
/// periodic checkpoint callback carrying every locus's progress.
///
/// Scheduling: with more than one slot, each round steps the loci in
/// parallel across the pool via the chain-affinity launch — the loci axis
/// is embarrassingly parallel, and per-locus state (sampler, sink,
/// monitor) is disjoint by construction. The slots' samplers must then be
/// built WITHOUT an inner pool (pool nesting is not supported); with a
/// single slot the round runs on the calling thread and the sampler may
/// use the pool internally, which is exactly the single-locus SamplerRun
/// configuration. Either way results are bitwise invariant to the worker
/// count: the parallel section only changes when loci step, never what
/// they compute.
///
/// For one slot this executes the identical tick/check/checkpoint sequence
/// as SamplerRun, so single-locus datasets reproduce the single-sampler
/// path bitwise.
class MultiLocusRun {
  public:
    struct Config {
        std::size_t burnInTicks = 0;
        std::size_t sampleTicks = 0;  ///< cap on sampling ticks per locus
        StoppingRule stopping;        ///< applied to every locus independently
        /// Invoked every `checkpointInterval` rounds (and at the end of
        /// burn-in and of the phase) with the global burn progress and the
        /// per-locus sampling progress/stopped latches.
        std::function<void(std::size_t burnDone, std::span<const std::uint64_t> sampleDone,
                           std::span<const std::uint8_t> stopped)>
            checkpoint;
        std::size_t checkpointInterval = 0;  ///< rounds between snapshots (0 = auto)
        ThreadPool* pool = nullptr;          ///< loci-parallel axis (>= 2 slots)
        /// Polled at every round boundary, in the serial section — same
        /// contract as SamplerRun::Config::stopRequested.
        std::function<bool()> stopRequested;
        SamplerNumericGuard numeric;  ///< non-finite log-posterior guard
    };

    MultiLocusRun(std::vector<LocusSlot> slots, Config cfg);

    /// Resume progress bookkeeping from a snapshot (samplers, sinks and
    /// monitors are restored separately by the owner).
    void restoreProgress(std::size_t burnTicksDone, std::span<const std::uint64_t> sampleTicksDone,
                         std::span<const std::uint8_t> stopped);

    /// Run to completion (every locus at its cap or stopped).
    MultiLocusReport execute();

  private:
    std::vector<LocusSlot> slots_;
    Config cfg_;
    std::size_t burnDone_ = 0;
    std::vector<std::uint64_t> sampleDone_;
    std::vector<std::uint8_t> stopped_;  ///< per-locus latch (u8: serialized + span-able)
};

}  // namespace mpcgs
