#include "rng/mt19937.h"

#include <algorithm>

#include "rng/splitmix.h"

namespace mpcgs {

static_assert(Mt19937::kStateWords == 624 + 1);

void Mt19937::reseed(std::uint32_t seed) {
    state_[0] = seed;
    for (std::size_t i = 1; i < N; ++i) {
        // Knuth-style initialization from the 2002 reference code.
        state_[i] = 1812433253u * (state_[i - 1] ^ (state_[i - 1] >> 30)) +
                    static_cast<std::uint32_t>(i);
    }
    index_ = N;
}

Mt19937 Mt19937::fromSplitMix(std::uint64_t seed) {
    Mt19937 g;
    std::uint64_t s = seed;
    for (std::size_t i = 0; i < N; i += 2) {
        const std::uint64_t z = splitMix64(s);
        g.state_[i] = static_cast<std::uint32_t>(z);
        if (i + 1 < N) g.state_[i + 1] = static_cast<std::uint32_t>(z >> 32);
    }
    // An all-zero state is a fixed point of the recurrence; SplitMix64
    // cannot realistically produce one, but the guard costs nothing.
    if (std::all_of(g.state_.begin(), g.state_.end(),
                    [](std::uint32_t w) { return w == 0; }))
        g.state_[0] = 1u;
    g.index_ = N;
    return g;
}

void Mt19937::saveState(std::uint32_t out[kStateWords]) const {
    std::copy(state_.begin(), state_.end(), out);
    out[N] = static_cast<std::uint32_t>(index_);
}

void Mt19937::loadState(const std::uint32_t in[kStateWords]) {
    std::copy(in, in + N, state_.begin());
    index_ = in[N];
}

void Mt19937::twist() {
    for (std::size_t i = 0; i < N; ++i) {
        const std::uint32_t y =
            (state_[i] & kUpperMask) | (state_[(i + 1) % N] & kLowerMask);
        std::uint32_t next = state_[(i + M) % N] ^ (y >> 1);
        if (y & 1u) next ^= kMatrixA;
        state_[i] = next;
    }
    index_ = 0;
}

std::uint32_t Mt19937::nextU32() {
    if (index_ >= N) twist();
    std::uint32_t y = state_[index_++];
    // Tempering transform.
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
}

}  // namespace mpcgs
