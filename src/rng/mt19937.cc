#include "rng/mt19937.h"

namespace mpcgs {

void Mt19937::reseed(std::uint32_t seed) {
    state_[0] = seed;
    for (std::size_t i = 1; i < N; ++i) {
        // Knuth-style initialization from the 2002 reference code.
        state_[i] = 1812433253u * (state_[i - 1] ^ (state_[i - 1] >> 30)) +
                    static_cast<std::uint32_t>(i);
    }
    index_ = N;
}

void Mt19937::twist() {
    for (std::size_t i = 0; i < N; ++i) {
        const std::uint32_t y =
            (state_[i] & kUpperMask) | (state_[(i + 1) % N] & kLowerMask);
        std::uint32_t next = state_[(i + M) % N] ^ (y >> 1);
        if (y & 1u) next ^= kMatrixA;
        state_[i] = next;
    }
    index_ = 0;
}

std::uint32_t Mt19937::nextU32() {
    if (index_ >= N) twist();
    std::uint32_t y = state_[index_++];
    // Tempering transform.
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
}

}  // namespace mpcgs
