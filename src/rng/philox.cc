#include "rng/philox.h"

namespace mpcgs {
namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulHiLo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi, std::uint32_t& lo) {
    const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
    hi = static_cast<std::uint32_t>(p >> 32);
    lo = static_cast<std::uint32_t>(p);
}

inline std::array<std::uint32_t, 4> round1(const std::array<std::uint32_t, 4>& c,
                                           const std::array<std::uint32_t, 2>& k) {
    std::uint32_t hi0, lo0, hi1, lo1;
    mulHiLo(kMul0, c[0], hi0, lo0);
    mulHiLo(kMul1, c[2], hi1, lo1);
    return {hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
}

}  // namespace

std::array<std::uint32_t, 4> philox4x32(const std::array<std::uint32_t, 4>& counter,
                                        const std::array<std::uint32_t, 2>& key) {
    std::array<std::uint32_t, 4> c = counter;
    std::array<std::uint32_t, 2> k = key;
    for (int r = 0; r < 10; ++r) {
        c = round1(c, k);
        if (r < 9) {
            k[0] += kWeyl0;
            k[1] += kWeyl1;
        }
    }
    return c;
}

Philox::Philox(std::uint64_t seed, std::uint64_t stream) : seed_(seed) {
    // Mix the stream id into both key words so distinct streams give keys
    // that differ in many bits (splitmix64-style finalizer).
    std::uint64_t z = stream + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    key_[0] = static_cast<std::uint32_t>(seed) ^ static_cast<std::uint32_t>(z);
    key_[1] = static_cast<std::uint32_t>(seed >> 32) ^ static_cast<std::uint32_t>(z >> 32);
}

void Philox::refill() {
    buffer_ = philox4x32(counter_, key_);
    // 128-bit counter increment.
    for (std::size_t i = 0; i < 4; ++i) {
        if (++counter_[i] != 0) break;
    }
    bufPos_ = 0;
}

std::uint32_t Philox::nextU32() {
    if (bufPos_ >= 4) refill();
    return buffer_[bufPos_++];
}

void Philox::skipBlocks(std::uint64_t blocks) {
    std::uint64_t lo = (static_cast<std::uint64_t>(counter_[1]) << 32) | counter_[0];
    const std::uint64_t before = lo;
    lo += blocks;
    counter_[0] = static_cast<std::uint32_t>(lo);
    counter_[1] = static_cast<std::uint32_t>(lo >> 32);
    if (lo < before) {  // carry into the high 64 bits
        std::uint64_t hi = (static_cast<std::uint64_t>(counter_[3]) << 32) | counter_[2];
        ++hi;
        counter_[2] = static_cast<std::uint32_t>(hi);
        counter_[3] = static_cast<std::uint32_t>(hi >> 32);
    }
    bufPos_ = 4;  // discard buffered words
}

}  // namespace mpcgs
