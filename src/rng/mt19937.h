// MT19937 Mersenne Twister (Matsumoto & Nishimura 1998), implemented from
// the reference recurrence. This is the paper's host-side generator
// (§5.1.2); outputs are bit-exact with the reference implementation and
// with std::mt19937 (verified in tests/rng_test.cc).
#pragma once

#include <array>
#include <cstdint>

#include "rng/rng.h"

namespace mpcgs {

class Mt19937 final : public Rng {
  public:
    static constexpr std::uint32_t kDefaultSeed = 5489u;

    explicit Mt19937(std::uint32_t seed = kDefaultSeed) { reseed(seed); }

    void reseed(std::uint32_t seed);

    /// A generator whose full 624-word state is filled from the SplitMix64
    /// sequence of a 64-bit seed — the per-chain stream derivation of the
    /// sampler runtime (no entropy is lost to a 32-bit fold, and distinct
    /// 64-bit seeds give decorrelated states).
    static Mt19937 fromSplitMix(std::uint64_t seed);

    std::uint32_t nextU32() override;

    /// Serialized size: the 624 state words plus the cursor.
    static constexpr std::size_t kStateWords = 625;

    /// Copy the exact generator state out / back in (checkpointing). The
    /// layout is the 624 words followed by the cursor; restoring it resumes
    /// the output sequence bitwise.
    void saveState(std::uint32_t out[kStateWords]) const;
    void loadState(const std::uint32_t in[kStateWords]);

  private:
    static constexpr std::size_t N = 624;
    static constexpr std::size_t M = 397;
    static constexpr std::uint32_t kMatrixA = 0x9908b0dfu;
    static constexpr std::uint32_t kUpperMask = 0x80000000u;
    static constexpr std::uint32_t kLowerMask = 0x7fffffffu;

    void twist();

    std::array<std::uint32_t, N> state_{};
    std::size_t index_ = N;
};

}  // namespace mpcgs
