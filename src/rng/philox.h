// Philox4x32-10 counter-based PRNG (Salmon et al., SC'11 / Random123).
//
// Stands in for the paper's MTGP32 device generator: each logical thread
// gets an independent stream keyed by (seed, stream id) with no shared
// state, so parallel proposal generation is reproducible regardless of
// thread scheduling. Verified against the Random123 known-answer vectors
// in tests/rng_test.cc.
#pragma once

#include <array>
#include <cstdint>

#include "rng/rng.h"

namespace mpcgs {

/// One Philox4x32-10 block: 4 output words from a 128-bit counter and a
/// 64-bit key. Pure function; exposed for testing.
std::array<std::uint32_t, 4> philox4x32(const std::array<std::uint32_t, 4>& counter,
                                        const std::array<std::uint32_t, 2>& key);

/// Streaming generator over consecutive counter blocks.
class Philox final : public Rng {
  public:
    /// Key layout: key[0] = low 32 bits of seed mixed with stream,
    /// key[1] = high 32 bits of seed. Distinct (seed, stream) pairs produce
    /// statistically independent sequences.
    explicit Philox(std::uint64_t seed, std::uint64_t stream = 0);

    std::uint32_t nextU32() override;

    /// A new generator on a different stream of the same seed (device-style
    /// per-thread stream derivation).
    Philox split(std::uint64_t stream) const { return Philox(seed_, stream); }

    /// Jump the counter forward by `blocks` 4-word blocks.
    void skipBlocks(std::uint64_t blocks);

  private:
    void refill();

    std::uint64_t seed_;
    std::array<std::uint32_t, 2> key_{};
    std::array<std::uint32_t, 4> counter_{};
    std::array<std::uint32_t, 4> buffer_{};
    std::size_t bufPos_ = 4;  // force refill on first use
};

}  // namespace mpcgs
