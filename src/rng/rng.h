// Random number generation interface (§5.1.2 of Davis 2016).
//
// The paper uses two generators: MT19937 on the host (sampling the
// auxiliary target-node variable), and MTGP32 on the device with one
// independent stream per CUDA thread. This library mirrors that split:
// Mt19937 is the host generator, Philox4x32 provides counter-based
// per-thread streams whose outputs are independent of thread scheduling.
#pragma once

#include <cstdint>
#include <cmath>
#include <span>
#include <stdexcept>

namespace mpcgs {

/// Abstract uniform bit source with distribution helpers.
///
/// Derived classes supply raw 32-bit words; the helpers below implement the
/// distributions the sampler needs. Helpers are non-virtual so the sampling
/// logic is independent of the engine.
class Rng {
  public:
    virtual ~Rng() = default;

    /// Next uniformly distributed 32-bit word.
    virtual std::uint32_t nextU32() = 0;

    /// Next uniformly distributed 64-bit word.
    std::uint64_t nextU64() {
        const std::uint64_t hi = nextU32();
        const std::uint64_t lo = nextU32();
        return (hi << 32) | lo;
    }

    /// Uniform double in [0, 1) with 53 random bits.
    double uniform01() {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in (0, 1] — safe as argument to log().
    double uniformPos() { return 1.0 - uniform01(); }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

    /// Uniform integer in [0, n). Unbiased (rejection); n must be > 0.
    std::uint64_t below(std::uint64_t n);

    /// Uniform integer in [lo, hi] inclusive.
    long long between(long long lo, long long hi) {
        return lo + static_cast<long long>(below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Exponential variate with the given rate (mean 1/rate).
    double exponential(double rate) {
        if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
        return -std::log(uniformPos()) / rate;
    }

    /// Standard normal via Box-Muller (no state caching; two uniforms/call).
    double normal() {
        const double u = uniformPos();
        const double v = uniform01();
        return std::sqrt(-2.0 * std::log(u)) * std::cos(6.283185307179586 * v);
    }

    double normal(double mu, double sigma) { return mu + sigma * normal(); }

    /// Sample an index from unnormalized non-negative linear weights.
    /// Throws if the weights sum to zero or the span is empty.
    std::size_t categorical(std::span<const double> weights);

    /// Sample an index from log-space weights (max-normalized internally,
    /// §5.2.3 underflow discipline).
    std::size_t categoricalFromLog(std::span<const double> logWeights);

    /// True with probability p (clamped to [0,1]).
    bool bernoulli(double p) { return uniform01() < p; }
};

}  // namespace mpcgs
