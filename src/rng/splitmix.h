// SplitMix64 (Steele, Lea & Vigna 2014) — the stream-derivation function of
// the sampler runtime. Every logical chain of every strategy draws its RNG
// stream as splitMix64At(runSeed, chainIndex): a bijective 64-bit mix of a
// golden-ratio-strided counter, so adjacent chain indices land in unrelated
// parts of the output space and a 64-bit run seed is never folded down to
// 32 bits before decorrelation (the defect the old HeatedChains seeding
// had).
#pragma once

#include <cstdint>

namespace mpcgs {

inline constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ull;

/// The output (finalization) function of SplitMix64: a bijective mixer.
inline std::uint64_t splitMix64Mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/// Advance the SplitMix64 state and return the next output.
inline std::uint64_t splitMix64(std::uint64_t& state) {
    return splitMix64Mix(state += kSplitMix64Gamma);
}

/// The i-th output of the SplitMix64 sequence seeded with `seed`, without
/// materializing the sequence (counter-based random access).
inline std::uint64_t splitMix64At(std::uint64_t seed, std::uint64_t i) {
    return splitMix64Mix(seed + (i + 1) * kSplitMix64Gamma);
}

}  // namespace mpcgs
