#include "rng/rng.h"

#include <limits>
#include <vector>

#include "util/logspace.h"

namespace mpcgs {

std::uint64_t Rng::below(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::below: n must be > 0");
    // Rejection from the top of the 64-bit range to avoid modulo bias.
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                                (std::numeric_limits<std::uint64_t>::max() % n);
    std::uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return v % n;
}

std::size_t Rng::categorical(std::span<const double> weights) {
    if (weights.empty()) throw std::invalid_argument("categorical: empty weights");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("categorical: zero total weight");
    // Draw x uniformly on (0, total] and take the lowest index whose running
    // sum reaches x — the sampling rule of §4.3.
    const double x = uniformPos() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (acc >= x) return i;
    }
    return weights.size() - 1;  // floating-point slack
}

std::size_t Rng::categoricalFromLog(std::span<const double> logWeights) {
    std::vector<double> probs;
    logNormalize(logWeights, probs);
    return categorical(probs);
}

}  // namespace mpcgs
