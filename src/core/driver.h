// The mpcgs program flow (Fig 11): Expectation-Maximization over theta.
//
//   read sequence data -> seed RNG -> UPGMA initial genealogy scaled by
//   theta0 -> repeat { burn-in in parallel; sampling in parallel; MLE of
//   theta; replace driving value } -> final estimate.
//
// Two sampling strategies implement the E-step: the paper's Generalized
// Metropolis-Hastings sampler (Strategy::Gmh — the contribution) and the
// serial single-chain Metropolis-Hastings baseline (Strategy::SerialMh —
// the LAMARC stand-in). MultiChain aggregates P independent MH chains, the
// §3 workaround whose Amdahl-limited scaling motivates the thesis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/genealogy_problem.h"
#include "core/mle.h"
#include "core/posterior.h"
#include "par/thread_pool.h"
#include "seq/alignment.h"

namespace mpcgs {

enum class Strategy {
    Gmh,        ///< multiple-proposal sampler (the paper's method)
    SerialMh,   ///< single serial MH chain (LAMARC baseline)
    MultiChain, ///< P independent MH chains, aggregated (§3 baseline)
    HeatedMh,   ///< Metropolis-coupled chains (LAMARC's heating feature)
};

struct MpcgsOptions {
    double theta0 = 1.0;            ///< driving value (2nd CLI argument)
    std::size_t emIterations = 4;   ///< outer EM loop count (Fig 11's N)
    std::size_t samplesPerIteration = 4000;  ///< genealogies per E-step (M)
    std::size_t burnInFraction1000 = 100;    ///< burn-in as permille of samples

    Strategy strategy = Strategy::Gmh;

    // GMH geometry (Alg 1): N proposals per set, M index draws per set.
    // Algorithm 1 draws M = N samples per proposal set, which keeps the
    // posterior-evaluation count per sample at (N+1)/M ~ 1, matching the
    // serial MH baseline's work per sample.
    std::size_t gmhProposals = 32;
    std::size_t gmhSamplesPerSet = 32;

    // MultiChain geometry.
    std::size_t chains = 4;

    // HeatedMh geometry: temperature ladder (first entry must be 1.0).
    std::vector<double> temperatures{1.0, 1.3, 1.8, 3.0};

    std::uint64_t seed = 20160408;  ///< thesis defense date, why not
    bool compressPatterns = true;
    std::string substModel = "F81"; ///< inference model (Eq. 20)

    /// SerialMh only: evaluate likelihoods incrementally via dirty-path
    /// caching, as production LAMARC does, instead of full recomputation.
    bool cachedBaseline = false;
};

struct EmIterationRecord {
    double thetaBefore = 0.0;
    double thetaAfter = 0.0;
    double logLAtMax = 0.0;     ///< log relative likelihood at the estimate
    double seconds = 0.0;       ///< wall time of the E-step (sampling)
    double moveRate = 0.0;      ///< GMH move rate / MH acceptance rate
    std::size_t samples = 0;
};

struct MpcgsResult {
    double theta = 0.0;
    std::vector<EmIterationRecord> history;
    double totalSeconds = 0.0;
    double samplingSeconds = 0.0;  ///< E-step time only (speedup metric)

    /// Interval summaries of the final EM iteration's samples plus the
    /// driving value they were generated under: enough to rebuild the
    /// final relative-likelihood curve (Fig 5 exports, support intervals).
    std::vector<IntervalSummary> finalSummaries;
    double finalDrivingTheta = 0.0;
};

/// Full estimation pipeline. `pool` parallelizes the GMH proposal fan-out
/// and the multi-chain ensemble; nullptr (or a 1-thread pool) runs
/// serially — the baseline configuration of §6.2.
MpcgsResult estimateTheta(const Alignment& aln, const MpcgsOptions& opts,
                          ThreadPool* pool = nullptr);

/// The initial genealogy of §5.1.3: UPGMA over raw pairwise differences,
/// scaled to the expected coalescent height under theta0.
Genealogy initialGenealogy(const Alignment& aln, double theta0);

}  // namespace mpcgs
