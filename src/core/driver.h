// The mpcgs program flow (Fig 11): Expectation-Maximization over theta.
//
//   read sequence data -> seed RNG -> UPGMA initial genealogy scaled by
//   theta0 -> repeat { burn-in in parallel; sampling in parallel; MLE of
//   theta; replace driving value } -> final estimate.
//
// Every E-step runs through the unified sampler runtime: estimateTheta
// builds the strategy's Sampler (core/samplers.h) and drives it with one
// SamplerRun — streaming chain-tagged samples into the summary sink and
// the convergence monitor, optionally stopping early on R-hat/ESS, and
// optionally snapshotting state for bitwise-identical resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/genealogy_problem.h"
#include "core/mle.h"
#include "core/posterior.h"
#include "core/samplers.h"
#include "par/thread_pool.h"
#include "seq/alignment.h"

namespace mpcgs {

struct MpcgsOptions {
    double theta0 = 1.0;            ///< driving value (2nd CLI argument)
    std::size_t emIterations = 4;   ///< outer EM loop count (Fig 11's N)
    std::size_t samplesPerIteration = 4000;  ///< genealogy samples per E-step (M)
    std::size_t burnInFraction1000 = 100;    ///< burn-in as permille of samples

    Strategy strategy = Strategy::Gmh;

    // GMH geometry (Alg 1): N proposals per set, M index draws per set.
    // Algorithm 1 draws M = N samples per proposal set, which keeps the
    // posterior-evaluation count per sample at (N+1)/M ~ 1, matching the
    // serial MH baseline's work per sample.
    std::size_t gmhProposals = 32;
    std::size_t gmhSamplesPerSet = 32;

    // MultiChain geometry.
    std::size_t chains = 4;

    // HeatedMh geometry: temperature ladder (first entry must be 1.0).
    std::vector<double> temperatures{1.0, 1.3, 1.8, 3.0};

    std::uint64_t seed = 20160408;  ///< thesis defense date, why not
    bool compressPatterns = true;
    std::string substModel = "F81"; ///< inference model (Eq. 20)

    /// SerialMh only: evaluate likelihoods incrementally via dirty-path
    /// caching, as production LAMARC does, instead of full recomputation.
    bool cachedBaseline = false;

    // Convergence-driven stopping (0 disables each criterion): end an
    // E-step before the sample cap once cross-chain R-hat of the
    // log-posterior falls below stopRhat AND pooled ESS reaches stopEss.
    double stopRhat = 0.0;          ///< e.g. 1.01
    double stopEss = 0.0;           ///< e.g. 400

    // Checkpoint/resume: with a non-empty path, snapshots are written
    // periodically during sampling and at every EM boundary; with resume,
    // estimateTheta continues from the snapshot at `checkpointPath` and
    // produces the bitwise-identical final estimate of an uninterrupted
    // run.
    std::string checkpointPath;
    std::size_t checkpointIntervalTicks = 0;  ///< ticks between snapshots (0 = auto)
    bool resume = false;
};

struct EmIterationRecord {
    double thetaBefore = 0.0;
    double thetaAfter = 0.0;
    double logLAtMax = 0.0;     ///< log relative likelihood at the estimate
    double seconds = 0.0;       ///< wall time of the E-step (sampling)
    double moveRate = 0.0;      ///< GMH move rate / MH acceptance / MC^3 swap rate
    std::size_t samples = 0;
    double rhat = 0.0;          ///< last R-hat evaluated (0 = never checked)
    double ess = 0.0;           ///< last pooled ESS evaluated
    bool stoppedEarly = false;  ///< stopping rule fired before the cap
};

struct MpcgsResult {
    double theta = 0.0;
    std::vector<EmIterationRecord> history;
    double totalSeconds = 0.0;
    double samplingSeconds = 0.0;  ///< E-step time only (speedup metric)

    /// Interval summaries of the final EM iteration's samples plus the
    /// driving value they were generated under: enough to rebuild the
    /// final relative-likelihood curve (Fig 5 exports, support intervals).
    std::vector<IntervalSummary> finalSummaries;
    double finalDrivingTheta = 0.0;
};

/// Full estimation pipeline. `pool` parallelizes whatever the selected
/// strategy can use it for (GMH proposal fan-out, multi-chain rounds, MC^3
/// sweeps, pattern blocks); nullptr (or a 1-thread pool) runs serially —
/// the baseline configuration of §6.2. Results are bitwise identical for
/// any pool width.
MpcgsResult estimateTheta(const Alignment& aln, const MpcgsOptions& opts,
                          ThreadPool* pool = nullptr);

/// The initial genealogy of §5.1.3: UPGMA over raw pairwise differences,
/// scaled to the expected coalescent height under theta0.
Genealogy initialGenealogy(const Alignment& aln, double theta0);

}  // namespace mpcgs
