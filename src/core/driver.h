// The mpcgs program flow (Fig 11): Expectation-Maximization over theta,
// generalized to a Dataset of L independent loci sharing theta.
//
//   read sequence data (L loci) -> seed RNG -> per-locus UPGMA initial
//   genealogies scaled by mu_l * theta0 -> repeat { burn-in in parallel;
//   sampling in parallel (each locus its own chain set); pooled MLE of
//   theta over sum_l log L_l; replace driving value } -> final estimate.
//
// Every E-step runs through the unified sampler runtime: estimateTheta
// builds one Sampler per locus (core/samplers.h) and drives them with one
// MultiLocusRun — streaming locus/chain-tagged samples into per-locus
// summary sinks and convergence monitors, optionally stopping early once
// EVERY locus meets the R-hat/ESS rule, and optionally snapshotting the
// full per-locus state (checkpoint v2) for bitwise-identical resume.
// A single alignment is the L = 1 special case and reproduces the
// pre-dataset pipeline bitwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/genealogy_problem.h"
#include "core/locus_problem.h"
#include "core/mle.h"
#include "core/posterior.h"
#include "core/samplers.h"
#include "core/supervisor.h"
#include "par/thread_pool.h"
#include "seq/alignment.h"
#include "seq/dataset.h"
#include "util/options.h"

namespace mpcgs {

struct MpcgsOptions {
    double theta0 = 1.0;            ///< driving value (2nd CLI argument)
    std::size_t emIterations = 4;   ///< outer EM loop count (Fig 11's N)
    std::size_t samplesPerIteration = 4000;  ///< genealogy samples per E-step (M)
    std::size_t burnInFraction1000 = 100;    ///< burn-in as permille of samples

    Strategy strategy = Strategy::Gmh;

    // GMH geometry (Alg 1): N proposals per set, M index draws per set.
    // Algorithm 1 draws M = N samples per proposal set, which keeps the
    // posterior-evaluation count per sample at (N+1)/M ~ 1, matching the
    // serial MH baseline's work per sample.
    std::size_t gmhProposals = 32;
    std::size_t gmhSamplesPerSet = 32;

    // MultiChain geometry.
    std::size_t chains = 4;

    // HeatedMh geometry: temperature ladder (first entry must be 1.0).
    std::vector<double> temperatures{1.0, 1.3, 1.8, 3.0};

    std::uint64_t seed = 20160408;  ///< thesis defense date, why not
    bool compressPatterns = true;
    std::string substModel = "F81"; ///< inference model (Eq. 20)

    /// SerialMh only: evaluate likelihoods incrementally via dirty-path
    /// caching, as production LAMARC does, instead of full recomputation.
    bool cachedBaseline = false;

    // Convergence-driven stopping (0 disables each criterion): end an
    // E-step before the sample cap once cross-chain R-hat of the
    // log-posterior falls below stopRhat AND pooled ESS reaches stopEss.
    double stopRhat = 0.0;          ///< e.g. 1.01
    double stopEss = 0.0;           ///< e.g. 400

    // Checkpoint/resume: with a non-empty path, snapshots are written
    // periodically during sampling and at every EM boundary; with resume,
    // estimateTheta continues from the snapshot at `checkpointPath` and
    // produces the bitwise-identical final estimate of an uninterrupted
    // run.
    std::string checkpointPath;
    std::size_t checkpointIntervalTicks = 0;  ///< ticks between snapshots (0 = auto)
    bool resume = false;

    /// Optional run supervision (core/supervisor.h): cooperative
    /// SIGTERM/SIGINT + wall-time stops polled at tick and EM boundaries
    /// (the run checkpoints and raises InterruptedError), and
    /// checkpoint-write retry with exponential backoff. Not owned.
    const RunSupervisor* supervisor = nullptr;
};

/// Throws ConfigError on nonsensical option combinations (non-positive
/// theta0, zero EM iterations or samples, empty temperature ladder or a
/// ladder not starting at 1.0, zero chains, zero GMH geometry, burn-in
/// permille above 1000, resume without a checkpoint path). Called by
/// estimateTheta and by the CLI right after parsing, so misconfiguration
/// fails loudly before any sampling starts.
void validateOptions(const MpcgsOptions& opts);

/// Hard-reject mode-specific CLI flags passed to a run mode they do not
/// apply to (e.g. --ess-threshold with --algo mcmc, --strategy with --algo
/// smc). `mode` is one of "mcmc" | "smc" | "pmmh" | "structured"
/// (--populations). Throws ConfigError naming the flag and the modes it
/// applies to — the tools map that onto exit code 2. A silently ignored
/// flag is worse than a loud rejection: the user believes it took effect.
void validateAlgoFlags(const Options& opts, const std::string& mode);

struct EmIterationRecord {
    double thetaBefore = 0.0;
    double thetaAfter = 0.0;
    double logLAtMax = 0.0;     ///< pooled log relative likelihood at the estimate
    double seconds = 0.0;       ///< wall time of the E-step (sampling)
    double moveRate = 0.0;      ///< GMH move rate / MH acceptance / MC^3 swap rate
    std::size_t samples = 0;    ///< samples summed over loci
    double rhat = 0.0;          ///< worst (largest) per-locus R-hat (0 = never checked)
    double ess = 0.0;           ///< smallest per-locus pooled ESS
    bool stoppedEarly = false;  ///< EVERY locus's stopping rule fired before the cap
};

/// Per-locus slice of the final E-step: enough to rebuild that locus's
/// relative-likelihood curve and, summed, the pooled curve the final
/// M-step maximized.
struct LocusFinal {
    std::string name;
    double mutationScale = 1.0;
    double drivingTheta = 0.0;  ///< mu_l * (final driving theta)
    std::vector<IntervalSummary> summaries;
};

struct MpcgsResult {
    double theta = 0.0;
    std::vector<EmIterationRecord> history;
    double totalSeconds = 0.0;
    double samplingSeconds = 0.0;  ///< E-step time only (speedup metric)

    /// Interval summaries of the final EM iteration's samples plus the
    /// driving value they were generated under — locus 0's slice, which
    /// for a single-locus run is the whole story (Fig 5 exports, support
    /// intervals). Multi-locus consumers use `loci`/finalPooledLikelihood.
    std::vector<IntervalSummary> finalSummaries;
    double finalDrivingTheta = 0.0;

    /// One entry per locus, in dataset order.
    std::vector<LocusFinal> loci;
};

/// The pooled relative-likelihood curve of the final EM iteration,
/// rebuilt from the per-locus result sections (support intervals, curve
/// exports). Works for any locus count.
PooledRelativeLikelihood finalPooledLikelihood(const MpcgsResult& result);

/// Full estimation pipeline over a multi-locus dataset: each locus runs
/// its own chain set, the M-step maximizes the pooled curve. `pool`
/// parallelizes whatever the run can use it for — the loci axis when
/// L > 1; GMH proposal fan-out, multi-chain rounds, MC^3 sweeps and
/// pattern blocks when L == 1 — plus the M-step curve evaluations.
/// nullptr (or a 1-thread pool) runs serially — the baseline
/// configuration of §6.2. Results are bitwise identical for any pool
/// width.
MpcgsResult estimateTheta(const Dataset& dataset, const MpcgsOptions& opts,
                          ThreadPool* pool = nullptr);

/// Single-alignment convenience wrapper: the L = 1 dataset case, bitwise
/// identical to the pre-dataset single-alignment pipeline.
MpcgsResult estimateTheta(const Alignment& aln, const MpcgsOptions& opts,
                          ThreadPool* pool = nullptr);

/// The initial genealogy of §5.1.3: UPGMA over raw pairwise differences,
/// scaled to the expected coalescent height under theta0.
Genealogy initialGenealogy(const Alignment& aln, double theta0);

}  // namespace mpcgs
