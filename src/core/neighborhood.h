// Neighbourhood resimulation — the multiple-proposal kernel of §4.2-4.3.
//
// The auxiliary variable phi picks one non-root interior node (the target
// T) uniformly; the neighbourhood consists of T and its parent P. Deleting
// both detaches three child lineages — T's two children and T's sibling —
// which must re-coalesce below the ancestor A = parent(P) (or unboundedly
// when P is the root). Because every member of a proposal set shares the
// same region (same A, same three children), each member can propose every
// other, satisfying the mutual-proposability requirement of Generalized
// Metropolis-Hastings (§4.3); the thesis introduces phi exactly for this.
//
// The two merge times are sampled from the conditioned death process over
// the feasible intervals (§4.2 machinery, coalescent/death_process.h); the
// merging pair at the first event is uniform among the active lineages.
// The exact log-density of the whole draw — merge times plus pairing — is
// available for the GMH weights (w = pi/q; DESIGN.md §1).
#pragma once

#include <array>
#include <memory>

#include "coalescent/death_process.h"
#include "phylo/tree.h"
#include "rng/rng.h"

namespace mpcgs {

/// The shared resimulation region (the realization of phi).
struct NeighborhoodRegion {
    Genealogy skeleton;      ///< the generator; untouched outside the region
    NodeId target = kNoNode;   ///< T: first (most recent) rebuilt coalescence
    NodeId parent = kNoNode;   ///< P: second rebuilt coalescence (T's parent)
    NodeId ancestor = kNoNode; ///< A: fixed upper boundary; kNoNode => unbounded
    std::array<NodeId, 3> children{kNoNode, kNoNode, kNoNode};  ///< detached lineages
    std::shared_ptr<const DeathProcess> process;  ///< conditioned resimulator
};

/// Number of interior nodes eligible as targets (non-root internal nodes).
int neighborhoodTargetCount(const Genealogy& g);

/// Build the region for a given target node (must be internal, non-root).
NeighborhoodRegion makeNeighborhoodRegion(const Genealogy& g, NodeId target, double theta);

/// Build the region for a uniformly drawn target (§4.3: "sampled from a
/// uniform distribution of 1:N ... prior to each proposal set").
NeighborhoodRegion makeNeighborhoodRegion(const Genealogy& g, double theta, Rng& rng);

/// Draw one proposal: resimulated merge times + child pairing grafted onto
/// a copy of the skeleton. iid given the region.
Genealogy proposeInNeighborhood(const NeighborhoodRegion& region, Rng& rng);

/// Exact log q_phi(state) of the mechanism above for any state reachable in
/// the region (-inf otherwise). The generator itself is always reachable.
double logNeighborhoodDensity(const NeighborhoodRegion& region, const Genealogy& state);

}  // namespace mpcgs
