// Problem bindings: genealogy state + posterior + proposal mechanisms,
// consumed by the generic MH and GMH engines.
//
// The unnormalized posterior (Eq. 24/29) is
//   log pi(G) = log P(D|G) + log P(G|theta),
// with P(D|G) from the Felsenstein kernel and P(G|theta) from Eq. 18.
#pragma once

#include "core/neighborhood.h"
#include "core/recoalesce.h"
#include "coalescent/prior.h"
#include "lik/felsenstein.h"
#include "phylo/tree.h"
#include "rng/rng.h"

namespace mpcgs {

/// Shared posterior evaluation. Holds references; keep the DataLikelihood
/// alive for the problem's lifetime. Likelihood evaluation is serial by
/// design: the samplers parallelize *across* proposals/chains (the paper's
/// one-thread-per-proposal layout), so nested pool use never occurs.
class GenealogyPosterior {
  public:
    GenealogyPosterior(const DataLikelihood& lik, double theta);

    double theta() const { return theta_; }
    double logPosterior(const Genealogy& g) const;
    double logDataLikelihood(const Genealogy& g) const;

  private:
    const DataLikelihood& lik_;
    double theta_;
};

/// Baseline problem for MhChain: single-lineage recoalescence moves.
class MhGenealogyProblem {
  public:
    using State = Genealogy;

    MhGenealogyProblem(const DataLikelihood& lik, double theta)
        : posterior_(lik, theta), theta_(theta) {}

    double logPosterior(const State& g) const { return posterior_.logPosterior(g); }

    struct Proposal {
        State state;
        double logForward;
        double logReverse;
    };
    Proposal propose(const State& cur, Rng& rng) const {
        auto r = proposeRecoalesce(cur, theta_, rng);
        return Proposal{std::move(r.state), r.logForward, r.logReverse};
    }

    double theta() const { return theta_; }

  private:
    GenealogyPosterior posterior_;
    double theta_;
};

/// Multiple-proposal problem for GmhSampler: shared-neighbourhood
/// resimulation (§4.3).
class GmhGenealogyProblem {
  public:
    using State = Genealogy;
    using Region = NeighborhoodRegion;

    GmhGenealogyProblem(const DataLikelihood& lik, double theta)
        : posterior_(lik, theta), theta_(theta) {}

    double logPosterior(const State& g) const { return posterior_.logPosterior(g); }

    Region makeRegion(const State& generator, Rng& hostRng) const {
        return makeNeighborhoodRegion(generator, theta_, hostRng);
    }
    State proposeInRegion(const Region& region, Rng& rng) const {
        return proposeInNeighborhood(region, rng);
    }
    double logProposalDensity(const Region& region, const State& s) const {
        return logNeighborhoodDensity(region, s);
    }

    double theta() const { return theta_; }

  private:
    GenealogyPosterior posterior_;
    double theta_;
};

}  // namespace mpcgs
