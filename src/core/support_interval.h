// Approximate support (confidence) intervals for theta from the relative
// likelihood curve — the standard companion output of LAMARC's maximum
// likelihood estimates (Kuhner 2006). By the asymptotic chi-square
// argument, the (1-alpha) support interval is the set of theta whose
// log-likelihood lies within chi2_{1,1-alpha}/2 of the maximum
// (1.92 units for 95%). Works on any ThetaLikelihood — the single-locus
// Eq. 26 curve or the multi-locus pooled curve.
#pragma once

#include "core/posterior.h"
#include "par/thread_pool.h"

namespace mpcgs {

struct SupportInterval {
    double mle = 0.0;      ///< curve maximizer
    double lower = 0.0;    ///< lower crossing of logL(mle) - drop
    double upper = 0.0;    ///< upper crossing
    double logLAtMle = 0.0;
    bool lowerBounded = true;  ///< false if the drop is never crossed below
    bool upperBounded = true;  ///< false if the drop is never crossed above
};

/// Compute the support interval around `mleTheta` on the Eq. 26 curve.
/// `drop` defaults to 1.92 (95% for one parameter). Crossings are located
/// by bisection on each side; the search expands geometrically up to
/// `maxFactor` away from the MLE before declaring the side unbounded.
SupportInterval supportInterval(const ThetaLikelihood& rl, double mleTheta,
                                double drop = 1.92, double maxFactor = 1e4,
                                ThreadPool* pool = nullptr);

}  // namespace mpcgs
