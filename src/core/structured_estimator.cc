#include "core/structured_estimator.h"

#include <cmath>
#include <memory>
#include <utility>

#include "core/structured_sampler.h"
#include "lik/locus_likelihoods.h"
#include "mcmc/checkpoint.h"
#include "rng/splitmix.h"
#include "util/error.h"
#include "util/timer.h"

namespace mpcgs {
namespace {

/// Fingerprint tag of structured-estimator snapshots ("STRC" again — the
/// payload layouts are versioned by the file header, the tag only guards
/// against feeding a single-population snapshot to the structured driver).
constexpr std::uint32_t kStructuredRunTag = 0x43525453u;

std::uint64_t emSeed(const StructuredOptions& opts, std::size_t em) {
    return opts.seed + em * 0x632BE59BD9B4E019ull;
}

void writeModel(CheckpointWriter& w, const MigrationModel& m) {
    w.doubles(m.theta);
    w.doubles(m.mig);
}

MigrationModel readModel(CheckpointReader& r) {
    MigrationModel m;
    m.theta = r.doubles();
    m.mig = r.doubles();
    if (m.theta.empty() || m.mig.size() != m.theta.size() * m.theta.size())
        throw CheckpointError("corrupt snapshot: migration model shape mismatch");
    return m;
}

void writeFingerprint(CheckpointWriter& w, const StructuredOptions& opts,
                      const Alignment& aln, const std::vector<int>& tipDemes) {
    w.u32(kStructuredRunTag);
    w.u64(opts.seed);
    w.u64(opts.samplesPerIteration);
    w.u64(opts.burnInFraction1000);
    w.u64(opts.chains);
    w.f64(opts.pathRefreshProb);
    w.str(opts.substModel);
    w.f64(opts.stopRhat);
    w.f64(opts.stopEss);
    writeModel(w, opts.init);
    w.u64(tipDemes.size());
    for (const int d : tipDemes) w.u32(static_cast<std::uint32_t>(d));
    w.u64(aln.sequenceCount());
    w.u64(aln.length());
}

void checkFingerprint(CheckpointReader& r, const StructuredOptions& opts,
                      const Alignment& aln, const std::vector<int>& tipDemes) {
    if (r.version() < 3)
        throw ConfigError(
            "resume: structured runs need a format v3 snapshot (found version " +
            std::to_string(r.version()) + ")");
    bool ok = true;
    ok &= r.u32() == kStructuredRunTag;
    ok &= r.u64() == opts.seed;
    ok &= r.u64() == opts.samplesPerIteration;
    ok &= r.u64() == opts.burnInFraction1000;
    ok &= r.u64() == opts.chains;
    ok &= r.f64() == opts.pathRefreshProb;
    ok &= r.str() == opts.substModel;
    ok &= r.f64() == opts.stopRhat;
    ok &= r.f64() == opts.stopEss;
    if (ok) ok &= readModel(r) == opts.init;
    if (ok) {
        ok &= r.u64() == tipDemes.size();
        if (ok)
            for (const int d : tipDemes) ok &= r.u32() == static_cast<std::uint32_t>(d);
    }
    ok &= r.u64() == aln.sequenceCount();
    ok &= r.u64() == aln.length();
    if (!ok)
        throw ConfigError(
            "resume: checkpoint was written by an incompatible structured run");
}

void writeHistory(CheckpointWriter& w, const std::vector<StructuredEmRecord>& history) {
    w.u64(history.size());
    for (const StructuredEmRecord& h : history) {
        writeModel(w, h.before);
        writeModel(w, h.after);
        w.f64(h.logLAtMax);
        w.f64(h.seconds);
        w.f64(h.moveRate);
        w.u64(h.samples);
        w.f64(h.rhat);
        w.f64(h.ess);
        w.u32(h.stoppedEarly ? 1 : 0);
    }
}

std::vector<StructuredEmRecord> readHistory(CheckpointReader& r) {
    std::vector<StructuredEmRecord> history(r.u64());
    for (StructuredEmRecord& h : history) {
        h.before = readModel(r);
        h.after = readModel(r);
        h.logLAtMax = r.f64();
        h.seconds = r.f64();
        h.moveRate = r.f64();
        h.samples = r.u64();
        h.rhat = r.f64();
        h.ess = r.f64();
        h.stoppedEarly = r.u32() != 0;
    }
    return history;
}

}  // namespace

void validateStructuredOptions(const StructuredOptions& opts) {
    opts.init.validate();
    if (opts.init.demeCount() < 2)
        throw ConfigError("structured options: need at least 2 demes");
    if (opts.emIterations == 0)
        throw ConfigError("structured options: need >= 1 EM iteration");
    if (opts.samplesPerIteration == 0)
        throw ConfigError("structured options: need >= 1 sample per EM iteration");
    if (opts.burnInFraction1000 > 1000)
        throw ConfigError("structured options: burn-in permille must be <= 1000");
    if (opts.chains == 0) throw ConfigError("structured options: need >= 1 chain");
    if (opts.pathRefreshProb < 0.0 || opts.pathRefreshProb >= 1.0)
        throw ConfigError("structured options: pathRefreshProb must be in [0, 1)");
    if (opts.resume && opts.checkpointPath.empty())
        throw ConfigError("structured options: resume requires a checkpointPath");
}

StructuredRelativeLikelihood finalStructuredLikelihood(const StructuredResult& result) {
    return StructuredRelativeLikelihood(result.finalSummaries, result.finalDriving);
}

StructuredResult estimateStructured(const Alignment& aln, const std::vector<int>& tipDemes,
                                    const StructuredOptions& opts, ThreadPool* pool) {
    validateStructuredOptions(opts);
    const int K = opts.init.demeCount();
    if (tipDemes.size() != aln.sequenceCount())
        throw ConfigError("estimateStructured: one deme assignment per sequence required");
    for (const int d : tipDemes)
        if (d < 0 || d >= K)
            throw ConfigError("estimateStructured: tip deme out of range");
    bool allInOneDeme = false;
    for (int k = 0; k < K && !allInOneDeme; ++k) {
        int n = 0;
        for (const int d : tipDemes) n += d == k ? 1 : 0;
        allInOneDeme = n == static_cast<int>(tipDemes.size());
    }
    if (allInOneDeme)
        throw ConfigError(
            "estimateStructured: all sequences in one deme — migration rates are "
            "unidentifiable; run the single-population pipeline instead");

    Timer total;
    const std::unique_ptr<SubstModel> model = makeInferenceModel(opts.substModel, aln);
    const DataLikelihood lik(aln, *model, opts.compressPatterns);

    StructuredResult result;
    MigrationModel driving = opts.init;

    // Warm start: a seeded draw from the structured prior at the driving
    // values (labels must be consistent from step one; data-independent
    // initialization is standard MCMC warmup and burn-in absorbs it).
    Mt19937 initRng = Mt19937::fromSplitMix(splitMix64At(opts.seed, 0x53545243ull));
    StructuredGenealogy current = simulateStructuredCoalescent(tipDemes, driving, initRng);
    current.tree().setTipNames(aln.names());

    std::size_t emStart = 0;
    std::unique_ptr<CheckpointReader> resumeReader;
    bool resumeMidIteration = false;
    std::size_t resumeBurnDone = 0;
    std::size_t resumeSampleDone = 0;
    bool resumeStopped = false;

    if (opts.resume) {
        // Snapshot READ failures become ResumeError so callers can fall
        // back to a fresh run; fingerprint mismatches stay ConfigError.
        try {
            resumeReader = std::make_unique<CheckpointReader>(
                pickResumeSnapshot(opts.checkpointPath));
            resumeReader->enterSection("fingerprint");
            checkFingerprint(*resumeReader, opts, aln, tipDemes);
            resumeReader->enterSection("context");
            emStart = resumeReader->u64();
            driving = readModel(*resumeReader);
            result.history = readHistory(*resumeReader);
            for (const StructuredEmRecord& h : result.history)
                result.samplingSeconds += h.seconds;
            current = readStructuredGenealogy(*resumeReader, K);
            if (resumeReader->u32() == 1) {
                resumeMidIteration = true;
                resumeBurnDone = resumeReader->u64();
                resumeSampleDone = resumeReader->u64();
                resumeStopped = resumeReader->u32() != 0;
            } else {
                resumeReader.reset();
            }
        } catch (const CheckpointError& e) {
            throw ResumeError(e.what());
        }
        if (emStart >= opts.emIterations)
            throw ConfigError(
                "resume: checkpoint already covers all requested EM iterations");
    }

    // Tick budgets mirror the MultiChain strategy: one lockstep round per
    // tick, burn-in as the configured permille of the serial step count.
    const std::size_t capTicks =
        (opts.samplesPerIteration + opts.chains - 1) / opts.chains;
    const std::size_t burnTicks =
        (opts.samplesPerIteration * opts.burnInFraction1000 + 999) / 1000;

    for (std::size_t em = emStart; em < opts.emIterations; ++em) {
        // EM-boundary stop check, mirroring estimateTheta.
        if (opts.supervisor && opts.supervisor->stopRequested())
            throw InterruptedError(
                "stop requested at EM iteration boundary (" + std::to_string(em) + ")",
                !opts.checkpointPath.empty() && em > emStart);

        StructuredEmRecord rec;
        rec.before = driving;

        Timer estep;
        const StructuredGenealogy emInit = current;
        StructuredChainsSampler sampler(lik, driving, emInit, opts.chains,
                                        emSeed(opts, em), opts.pathRefreshProb, pool);
        StructuredSummarySink sink(K);
        ConvergenceMonitor monitor;

        SamplerRun::Config cfg;
        cfg.burnInTicks = burnTicks;
        cfg.sampleTicks = capTicks;
        cfg.stopping.rhatBelow = opts.stopRhat;
        cfg.stopping.essAtLeast = opts.stopEss;
        cfg.checkpointInterval = opts.checkpointIntervalTicks;
        if (opts.supervisor) cfg.stopRequested = opts.supervisor->stopCallback();
        cfg.numeric.enabled = true;
        cfg.numeric.theta = driving.theta.empty() ? 0.0 : driving.theta.front();
        cfg.numeric.seed = opts.seed;
        cfg.numeric.phase =
            "estimateStructured E-step (EM iteration " + std::to_string(em) + ")";
        if (!opts.checkpointPath.empty()) {
            cfg.checkpoint = [&, em](std::size_t burnDone, std::size_t sampleDone,
                                     bool stopped) {
                withCheckpointRetry(opts.supervisor, [&] {
                    CheckpointWriter w(opts.checkpointPath);
                    w.beginSection("fingerprint");
                    writeFingerprint(w, opts, aln, tipDemes);
                    w.beginSection("context");
                    w.u64(em);
                    writeModel(w, rec.before);
                    writeHistory(w, result.history);
                    writeStructuredGenealogy(w, emInit);
                    w.u32(1);  // mid-iteration
                    w.u64(burnDone);
                    w.u64(sampleDone);
                    w.u32(stopped ? 1 : 0);
                    w.beginSection("sampler");
                    sampler.save(w);
                    w.beginSection("sink");
                    sink.save(w);
                    w.beginSection("monitor");
                    monitor.save(w);
                    w.commit();
                });
            };
        }

        SamplerRun run(sampler, cfg);
        if (resumeMidIteration && em == emStart) {
            try {
                resumeReader->enterSection("sampler");
                sampler.load(*resumeReader);
                resumeReader->enterSection("sink");
                sink.load(*resumeReader);
                resumeReader->enterSection("monitor");
                monitor.load(*resumeReader);
            } catch (const CheckpointError& e) {
                throw ResumeError(e.what());
            }
            run.restoreProgress(resumeBurnDone, resumeSampleDone, resumeStopped);
            resumeReader.reset();
        }

        const SamplerRunReport report = run.execute(sink, monitor);
        rec.seconds = estep.seconds();
        result.samplingSeconds += rec.seconds;
        rec.samples = report.samples;
        rec.stoppedEarly = report.stoppedEarly;
        rec.rhat = report.rhat;
        rec.ess = report.ess;
        rec.moveRate = sampler.stats().moveRate();

        current = sampler.structuredContinuation();

        // Profile M-step over the structured relative likelihood.
        result.finalSummaries = sink.chainMajor();
        result.finalDriving = rec.before;
        const StructuredRelativeLikelihood rl(result.finalSummaries, rec.before);
        const StructuredMleResult mle = maximizeStructured(rl, driving, 1e-5, 10, pool);
        driving = mle.model;
        rec.after = driving;
        rec.logLAtMax = mle.logL;
        result.history.push_back(rec);

        if (!opts.checkpointPath.empty() && em + 1 < opts.emIterations) {
            withCheckpointRetry(opts.supervisor, [&] {
                CheckpointWriter w(opts.checkpointPath);
                w.beginSection("fingerprint");
                writeFingerprint(w, opts, aln, tipDemes);
                w.beginSection("context");
                w.u64(em + 1);
                writeModel(w, driving);
                writeHistory(w, result.history);
                writeStructuredGenealogy(w, current);
                w.u32(0);  // iteration boundary
                w.commit();
            });
        }
    }

    result.estimate = driving;
    const StructuredRelativeLikelihood rl(result.finalSummaries, result.finalDriving);
    const int coords = structuredCoordinateCount(K);
    result.support.reserve(static_cast<std::size_t>(coords));
    for (int c = 0; c < coords; ++c)
        result.support.push_back(structuredSupportInterval(rl, result.estimate, c, 1.92, pool));
    result.totalSeconds = total.seconds();
    return result;
}

}  // namespace mpcgs
