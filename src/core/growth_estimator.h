// Joint (theta, growth) estimation — the thesis's §7 extension realized.
//
// "Adding a new parameter would require a new proposal kernel ... as well
// as the ability to calculate that posterior probability" (§7). Because
// this library's GMH weights are pi(x)/q(x) with q computed exactly
// (DESIGN.md §1), the constant-size neighbourhood kernel remains a valid
// proposal for ANY genealogy posterior; adding growth only changes pi.
// The E-step samples genealogies under the growth posterior at the driving
// parameters; the M-step maximizes the two-parameter relative likelihood
//
//   L(theta, g) = (1/M) sum_G P(G|theta,g) / P(G|theta0,g0)        (Eq. 26')
//
// over the stored interval vectors (full vectors now: growth breaks the
// single-sufficient-statistic reduction of the constant-size model).
//
// Multi-locus datasets pool exactly as the constant-size pipeline does
// (core/locus_problem.h): each locus samples its own genealogies under its
// effective theta_l = mu_l * theta, and the pooled M-step maximizes
// sum_l log L_l(mu_l * theta, g) — growth is shared across loci.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coalescent/growth.h"
#include "lik/felsenstein.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"
#include "seq/dataset.h"

namespace mpcgs {

/// Anything exposing a log relative likelihood over (theta, growth): one
/// locus's Eq. 26' surface or the pooled multi-locus sum. The coordinate
/// ascent maximizer operates on this interface.
class GrowthLikelihood {
  public:
    virtual ~GrowthLikelihood() = default;

    /// log L(theta, g).
    virtual double logL(const GrowthParams& p, ThreadPool* pool = nullptr) const = 0;
};

/// Two-parameter relative likelihood surface over sampled genealogies.
class GrowthRelativeLikelihood final : public GrowthLikelihood {
  public:
    GrowthRelativeLikelihood(std::vector<std::vector<CoalInterval>> samples,
                             GrowthParams driving);

    double logL(const GrowthParams& p, ThreadPool* pool = nullptr) const override;

    const GrowthParams& driving() const { return driving_; }
    std::size_t sampleCount() const { return samples_.size(); }

  private:
    std::vector<std::vector<CoalInterval>> samples_;
    std::vector<double> logPriorAtDriving_;
    GrowthParams driving_;
};

/// Pooled multi-locus surface: sum_l log L_l(mu_l * theta, g). Growth is a
/// shared parameter; each locus's theta axis is scaled by its mutation
/// rate. With one locus and mu = 1 this is the locus surface bitwise.
class PooledGrowthRelativeLikelihood final : public GrowthLikelihood {
  public:
    struct LocusTerm {
        GrowthRelativeLikelihood rl;
        double mutationScale = 1.0;
        std::string name;
    };

    explicit PooledGrowthRelativeLikelihood(std::vector<LocusTerm> loci);

    double logL(const GrowthParams& p, ThreadPool* pool = nullptr) const override;

    std::size_t locusCount() const { return loci_.size(); }

  private:
    std::vector<LocusTerm> loci_;
};

/// Coordinate-ascent maximization (golden sections in log-theta and in g).
struct GrowthMleResult {
    GrowthParams params;
    double logL = 0.0;
    int sweeps = 0;
    bool converged = false;
};
GrowthMleResult maximizeGrowthParams(const GrowthLikelihood& rl, GrowthParams start,
                                     double growthLo = 0.0, double growthHi = 20.0,
                                     ThreadPool* pool = nullptr);

/// Full EM pipeline for (theta, growth), mirroring Fig 11 with a
/// two-parameter M-step.
struct GrowthEstimateOptions {
    GrowthParams driving{1.0, 0.0};      ///< initial driving values
    std::size_t emIterations = 5;
    std::size_t samplesPerIteration = 4000;
    std::size_t gmhProposals = 32;
    std::uint64_t seed = 20160408;
    double growthLo = 0.0;               ///< M-step search bounds for g
    double growthHi = 20.0;
};

struct GrowthEstimateResult {
    GrowthParams params;
    std::vector<GrowthParams> history;  ///< driving values per EM iteration
    double seconds = 0.0;
};

/// Multi-locus pipeline: per-locus GMH chain sets per E-step, pooled
/// two-parameter M-step. `samplesPerIteration` applies per locus.
GrowthEstimateResult estimateThetaAndGrowth(const Dataset& dataset,
                                            const GrowthEstimateOptions& opts,
                                            ThreadPool* pool = nullptr);

/// Single-alignment convenience wrapper: the L = 1 dataset case.
GrowthEstimateResult estimateThetaAndGrowth(const Alignment& aln,
                                            const GrowthEstimateOptions& opts,
                                            ThreadPool* pool = nullptr);

}  // namespace mpcgs
