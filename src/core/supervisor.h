// Resilient run supervision: cooperative shutdown, wall-time deadlines,
// and checkpoint-write retry with bounded exponential backoff.
//
// A RunSupervisor owns the process-level stop signal for one estimator
// run. SIGTERM/SIGINT set an async-signal-safe flag; the estimators poll
// stopRequested() at tick boundaries (never inside a parallel region), so
// a stop always lands at a consistent state: the run writes one final
// checkpoint and raises InterruptedError, which the tools translate into
// kExitInterrupted. `--resume` from that checkpoint continues
// bitwise-identically to the uninterrupted run. A wall-time deadline
// (`--max-wall-time`) and the `supervisor.stop` fail point (deterministic
// stand-in for a signal in tests) feed the same flag.
//
// Exit-code taxonomy, shared by all tools (see exitCodeFor):
//   0  clean completion (including early convergence)
//   1  unclassified error
//   2  usage / invalid configuration
//   3  interrupted (signal or deadline) — final checkpoint attempted
//   4  resume failed under --resume-policy strict
//   5  numeric fault — diagnostics dumped (core/numeric_guard.h)
//   6  checkpoint I/O fault (after retries)
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <string>

#include "util/error.h"

namespace mpcgs {

inline constexpr int kExitClean = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitInterrupted = 3;
inline constexpr int kExitResumeFailed = 4;
inline constexpr int kExitNumericFault = 5;
inline constexpr int kExitIoFault = 6;

/// Raised from a tick boundary when the supervisor requests a stop. The
/// run has already written (or attempted) its final checkpoint when
/// checkpointWritten() is true; the tools report the path and exit with
/// kExitInterrupted either way.
class InterruptedError : public Error {
  public:
    InterruptedError(const std::string& what, bool checkpointWritten)
        : Error("interrupted: " + what), checkpointWritten_(checkpointWritten) {}

    bool checkpointWritten() const { return checkpointWritten_; }

  private:
    bool checkpointWritten_;
};

class RunSupervisor {
  public:
    struct Config {
        /// Stop after this much wall time; 0 disables the deadline.
        double maxWallSeconds = 0.0;
        /// Retries after the first failed checkpoint write (so N+1
        /// attempts total).
        int checkpointRetries = 3;
        /// First backoff sleep; doubles per retry up to backoffMaxMs.
        double backoffInitialMs = 50.0;
        double backoffMaxMs = 2000.0;
        /// Install SIGTERM/SIGINT handlers for cooperative shutdown
        /// (restored on destruction). Tests that drive the stop flag via
        /// the supervisor.stop fail point can leave this off.
        bool handleSignals = true;
    };

    RunSupervisor();  // default Config
    explicit RunSupervisor(Config cfg);
    ~RunSupervisor();

    RunSupervisor(const RunSupervisor&) = delete;
    RunSupervisor& operator=(const RunSupervisor&) = delete;

    /// True once a signal arrived, the wall-time deadline passed, or the
    /// supervisor.stop fail point fired. Cheap enough for every tick
    /// boundary; latches on first true.
    bool stopRequested() const;

    /// Human-readable cause for the latched stop ("SIGTERM", "wall-time
    /// deadline (...)", "injected stop"); empty when no stop is pending.
    std::string stopReason() const;

    /// Run `write` (which stages and commits one snapshot), retrying on
    /// CheckpointError with bounded exponential backoff. Rethrows the last
    /// error when all attempts fail. Transient full-disk or EINTR
    /// conditions thus cost a delay, not the run.
    void writeCheckpointWithRetry(const std::function<void()>& write) const;

    /// The stop predicate handed to sampler run loops.
    std::function<bool()> stopCallback() const {
        return [this] { return stopRequested(); };
    }

  private:
    Config cfg_;
    std::chrono::steady_clock::time_point start_;
    bool signalsInstalled_ = false;
    // Latched stop cause (0 none, 1 signal, 2 deadline, 3 injected).
    // Atomic because multi-locus runs poll from pool workers.
    mutable std::atomic<int> stopCause_{0};
    mutable std::atomic<int> signum_{0};
};

/// Run `write` with the supervisor's retry policy, or directly when no
/// supervisor is attached — the estimators' checkpoint lambdas wrap
/// themselves in this.
void withCheckpointRetry(const RunSupervisor* supervisor,
                         const std::function<void()>& write);

/// Map an escaped exception onto the documented exit-code taxonomy.
int exitCodeFor(const std::exception& e);

}  // namespace mpcgs
