#include "core/genealogy_problem.h"

#include "util/error.h"

namespace mpcgs {

GenealogyPosterior::GenealogyPosterior(const DataLikelihood& lik, double theta)
    : lik_(lik), theta_(theta) {
    if (theta <= 0.0) throw ConfigError("GenealogyPosterior: theta must be positive");
}

double GenealogyPosterior::logPosterior(const Genealogy& g) const {
    return lik_.logLikelihood(g) + logCoalescentPrior(g, theta_);
}

double GenealogyPosterior::logDataLikelihood(const Genealogy& g) const {
    return lik_.logLikelihood(g);
}

}  // namespace mpcgs
