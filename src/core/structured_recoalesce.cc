#include "core/structured_recoalesce.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Migration-target draw shared by both proposal kernels: `u` is uniform
/// on [0, totalRateFrom(from)); walk the off-diagonal rates, with a
/// reverse-scan guard for u landing exactly on the total from rounding.
int sampleMigrationTarget(const MigrationModel& model, int from, double u) {
    for (int l = 0; l < model.demeCount(); ++l) {
        if (l == from) continue;
        const double rate = model.rate(from, l);
        if (u < rate) return l;
        u -= rate;
    }
    for (int l = model.demeCount() - 1; l >= 0; --l)
        if (l != from && model.rate(from, l) > 0.0) return l;
    require(false, "sampleMigrationTarget: no positive migration rate");
    return from;
}

/// Log density of a FREE label-chain path on [start, end): jumps `events`
/// (ascending, strictly inside), no conditioning on the end deme. Returns
/// -inf for infeasible realizations.
double logFreePathDensity(double start, double end, int startDeme,
                          std::span<const MigrationEvent> events,
                          const MigrationModel& model) {
    int d = startDeme;
    double t = start;
    double logDen = 0.0;
    for (const MigrationEvent& e : events) {
        if (!(e.time > t) || !(e.time < end) || e.toDeme == d) return -kInf;
        const double rate = model.rate(d, e.toDeme);
        if (!(rate > 0.0)) return -kInf;
        logDen += -model.totalRateFrom(d) * (e.time - t) + std::log(rate);
        t = e.time;
        d = e.toDeme;
    }
    logDen += -model.totalRateFrom(d) * (end - t);
    return logDen;
}

}  // namespace

StructuredLineageIndex::StructuredLineageIndex(const StructuredGenealogy& g, NodeId root,
                                               const MigrationModel& model)
    : model_(model) {
    const Genealogy& tree = g.tree();
    std::vector<NodeId> stack{root};
    std::vector<NodeId> component;
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        component.push_back(id);
        for (const NodeId c : tree.node(id).child)
            if (c != kNoNode) stack.push_back(c);
    }
    std::sort(component.begin(), component.end());

    for (const NodeId id : component) {
        if (id == root) {
            segments_.push_back({tree.node(id).time, kInf, g.deme(id), id});
            boundaries_.push_back(tree.node(id).time);
            continue;
        }
        const double lo = tree.node(id).time;
        const double hi = tree.node(tree.node(id).parent).time;
        double t = lo;
        int d = g.deme(id);
        for (const MigrationEvent& e : g.branchEvents(id)) {
            segments_.push_back({t, e.time, d, id});
            boundaries_.push_back(t);
            t = e.time;
            d = e.toDeme;
        }
        segments_.push_back({t, hi, d, id});
        boundaries_.push_back(t);
        boundaries_.push_back(hi);
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                      boundaries_.end());

    // Per-interval deme counts via a difference array over the boundary
    // grid, so the hazard lookups inside the sampling/replay loops are
    // O(log S) instead of a full segment scan per interval crossed.
    const std::size_t K = static_cast<std::size_t>(model.demeCount());
    const std::size_t B = boundaries_.size();
    counts_.assign(B * K, 0);
    for (const Segment& s : segments_) {
        const auto beginIdx = static_cast<std::size_t>(
            std::lower_bound(boundaries_.begin(), boundaries_.end(), s.begin) -
            boundaries_.begin());
        counts_[beginIdx * K + static_cast<std::size_t>(s.deme)] += 1;
        if (s.end != kInf) {
            const auto endIdx = static_cast<std::size_t>(
                std::lower_bound(boundaries_.begin(), boundaries_.end(), s.end) -
                boundaries_.begin());
            counts_[endIdx * K + static_cast<std::size_t>(s.deme)] -= 1;
        }
    }
    for (std::size_t i = 1; i < B; ++i)
        for (std::size_t k = 0; k < K; ++k) counts_[i * K + k] += counts_[(i - 1) * K + k];
}

int StructuredLineageIndex::countInDeme(double t, int d) const {
    if (boundaries_.empty() || t < boundaries_.front()) return 0;
    const auto idx = static_cast<std::size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), t) -
        boundaries_.begin() - 1);
    return counts_[idx * static_cast<std::size_t>(model_.demeCount()) +
                   static_cast<std::size_t>(d)];
}

std::vector<NodeId> StructuredLineageIndex::nodesInDeme(double t, int d) const {
    std::vector<NodeId> out;
    for (const Segment& s : segments_)
        if (s.deme == d && s.begin <= t && t < s.end) out.push_back(s.node);
    // segments_ is sorted by (node, begin) and a node's segments are
    // disjoint in time, so `out` is already in ascending node order.
    return out;
}

double StructuredLineageIndex::hazard(double t, int d) const {
    return 2.0 * countInDeme(t, d) / model_.theta[static_cast<std::size_t>(d)] +
           model_.totalRateFrom(d);
}

double StructuredLineageIndex::nextBoundary(double t) const {
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
    return it == boundaries_.end() ? kInf : *it;
}

StructuredLineageIndex::Path StructuredLineageIndex::samplePath(double start, int startDeme,
                                                                Rng& rng) const {
    Path path;
    double t = start;
    int d = startDeme;
    double logDen = 0.0;
    for (;;) {
        const double b = nextBoundary(t);
        const int m = countInDeme(t, d);
        const double theta = model_.theta[static_cast<std::size_t>(d)];
        const double coal = 2.0 * m / theta;
        const double migTotal = model_.totalRateFrom(d);
        const double total = coal + migTotal;
        require(total > 0.0, "structured recoalescence: zero total hazard");

        const double wait = rng.exponential(total);
        if (t + wait >= b) {
            logDen -= total * (b - t);
            t = b;
            continue;
        }
        t += wait;
        logDen -= total * wait;

        double u = rng.uniform01() * total;
        if (u < coal) {
            // Coalescence: the specific-lineage density is 2/theta_d (total
            // hazard 2m/theta times a uniform 1/m target choice).
            logDen += std::log(2.0 / theta);
            const auto nodes = nodesInDeme(t, d);
            path.attachNode = nodes[static_cast<std::size_t>(rng.below(nodes.size()))];
            path.attachTime = t;
            path.attachDeme = d;
            path.logDensity = logDen;
            return path;
        }
        const int to = sampleMigrationTarget(model_, d, u - coal);
        logDen += std::log(model_.rate(d, to));
        path.events.push_back({t, to});
        d = to;
    }
}

double StructuredLineageIndex::logPathDensity(double start, int startDeme,
                                              std::span<const MigrationEvent> events,
                                              double attachTime, NodeId attachNode) const {
    double t = start;
    int d = startDeme;
    double logDen = 0.0;
    std::size_t ei = 0;
    for (;;) {
        const double nextEvent = ei < events.size() ? events[ei].time : attachTime;
        if (!(nextEvent > t)) return -kInf;
        // Integrate the survival hazard up to the next event, crossing
        // index boundaries where the same-deme lineage count changes.
        while (t < nextEvent) {
            const double b = std::min(nextBoundary(t), nextEvent);
            logDen -= hazard(t, d) * (b - t);
            t = b;
        }
        if (ei < events.size()) {
            const int to = events[ei].toDeme;
            if (to == d) return -kInf;
            const double rate = model_.rate(d, to);
            if (!(rate > 0.0)) return -kInf;
            logDen += std::log(rate);
            d = to;
            ++ei;
            continue;
        }
        // Attachment: the target lineage must be in the path's deme.
        const auto nodes = nodesInDeme(attachTime, d);
        if (std::find(nodes.begin(), nodes.end(), attachNode) == nodes.end()) return -kInf;
        logDen += std::log(2.0 / model_.theta[static_cast<std::size_t>(d)]);
        return logDen;
    }
}

StructuredProposal proposeStructuredRecoalesce(const StructuredGenealogy& g,
                                               const MigrationModel& model, Rng& rng) {
    StructuredGenealogy work = g;
    Genealogy& tree = work.tree();
    const int nodes = tree.nodeCount();

    // Uniform non-root target v.
    NodeId v;
    do {
        v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (v == tree.root());

    const NodeId p = tree.node(v).parent;
    const NodeId a = tree.node(p).parent;  // may be kNoNode (p is the root)
    const double tOld = tree.node(p).time;
    const NodeId sib = tree.sibling(v);

    // The reverse realization: v's old migration path plus the attachment
    // to the sibling's lineage at tOld. When dissolving the old root
    // destroys migration events on the sibling's branch, the original
    // state cannot be rebuilt by this mechanism and the reverse density is
    // honestly zero.
    const std::vector<MigrationEvent> oldPath = work.branchEvents(v);
    const bool oldStateReachable = (a != kNoNode) || work.branchEvents(sib).empty();

    // Dissolve p: the sibling reconnects to the grandparent carrying the
    // concatenated migration path (or becomes the component root, whose
    // lineage is label-constant by convention).
    work.branchEvents(v).clear();
    std::vector<MigrationEvent> merged = work.branchEvents(sib);
    merged.insert(merged.end(), work.branchEvents(p).begin(), work.branchEvents(p).end());
    work.branchEvents(p).clear();
    tree.unlink(v);
    tree.unlink(sib);
    if (a != kNoNode) {
        tree.unlink(p);
        tree.link(a, sib);
        work.branchEvents(sib) = std::move(merged);
    } else {
        tree.setRoot(sib);
        work.branchEvents(sib).clear();
    }
    const NodeId componentRoot = (a == kNoNode) ? sib : tree.root();

    const double tv = tree.node(v).time;
    const int dv = work.deme(v);
    const StructuredLineageIndex index(work, componentRoot, model);
    const double logReverse =
        oldStateReachable ? index.logPathDensity(tv, dv, oldPath, tOld, sib) : -kInf;

    const StructuredLineageIndex::Path fwd = index.samplePath(tv, dv, rng);
    const NodeId w = fwd.attachNode;
    const double s = fwd.attachTime;

    // Re-insert p at time s above w (or as the new root when w is the
    // component root and the attachment lies on its semi-infinite lineage).
    tree.node(p).time = s;
    work.setDeme(p, fwd.attachDeme);
    work.branchEvents(v) = fwd.events;
    if (w == componentRoot && tree.node(w).parent == kNoNode) {
        tree.link(p, w);
        tree.link(p, v);
        tree.setRoot(p);
        // The component root's lineage carries no events, so the new top
        // branch (w -> p) is event-free and p's deme equals w's.
    } else {
        const NodeId u = tree.node(w).parent;
        require(u != kNoNode, "structured recoalescence: attachment branch has no parent");
        tree.unlink(w);
        tree.link(u, p);
        tree.link(p, w);
        tree.link(p, v);
        // Split w's migration path at s: events below stay on w, events
        // above continue on p's new branch toward u.
        std::vector<MigrationEvent> below, above;
        for (const MigrationEvent& e : work.branchEvents(w))
            (e.time <= s ? below : above).push_back(e);
        work.branchEvents(w) = std::move(below);
        work.branchEvents(p) = std::move(above);
    }

    return StructuredProposal{std::move(work), fwd.logDensity, logReverse};
}

StructuredProposal proposeMigrationPathRefresh(const StructuredGenealogy& g,
                                               const MigrationModel& model, Rng& rng) {
    StructuredGenealogy work = g;
    const Genealogy& tree = work.tree();
    const int nodes = tree.nodeCount();

    NodeId w;
    do {
        w = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (w == tree.root());

    const double lo = tree.node(w).time;
    const double hi = tree.node(tree.node(w).parent).time;
    const int d0 = work.deme(w);

    const double logReverse =
        logFreePathDensity(lo, hi, d0, work.branchEvents(w), model);

    // Free simulation of the label chain over [lo, hi); landing in the
    // wrong deme leaves the proposal inconsistent and the posterior -inf.
    std::vector<MigrationEvent> events;
    double t = lo;
    int d = d0;
    double logForward = 0.0;
    for (;;) {
        const double rate = model.totalRateFrom(d);
        if (!(rate > 0.0)) break;  // absorbing label (K == 1): empty path
        const double wait = rng.exponential(rate);
        if (t + wait >= hi) {
            logForward -= rate * (hi - t);
            break;
        }
        t += wait;
        logForward -= rate * wait;
        const int to = sampleMigrationTarget(model, d, rng.uniform01() * rate);
        logForward += std::log(model.rate(d, to));
        events.push_back({t, to});
        d = to;
    }
    work.branchEvents(w) = std::move(events);

    return StructuredProposal{std::move(work), logForward, logReverse};
}

}  // namespace mpcgs
