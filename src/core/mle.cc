#include "core/mle.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace mpcgs {

MleResult maximizeThetaGradient(const ThetaLikelihood& rl, double thetaStart,
                                const GradientAscentOptions& opts, ThreadPool* pool) {
    require(thetaStart > 0.0, "maximizeThetaGradient: theta must be positive");
    MleResult out;
    double theta = thetaStart;
    double logL = rl.logL(theta, pool);

    for (int it = 0; it < opts.maxIterations; ++it) {
        ++out.iterations;
        // Central finite-difference gradient (Alg 2 line 5), with the step
        // scaled by theta so the estimate stays sane across magnitudes.
        const double d = opts.delta * std::max(theta, 1e-8);
        const double lo = std::max(theta - d, theta * 0.5);
        const double hi = theta + d;
        double gradient = (rl.logL(hi, pool) - rl.logL(lo, pool)) / (hi - lo);

        // Initial step proportional to the gradient.
        double step = gradient * std::max(theta * theta, 1e-12);

        // Halve while the step leaves the domain or decreases L (Alg 2
        // lines 6-8).
        double thetaNext = theta + step;
        double logLNext = -std::numeric_limits<double>::infinity();
        int halvings = 0;
        while (halvings < opts.maxHalvings) {
            if (thetaNext > 0.0) {
                logLNext = rl.logL(thetaNext, pool);
                if (logLNext >= logL) break;
            }
            step *= 0.5;
            thetaNext = theta + step;
            ++halvings;
        }
        if (halvings >= opts.maxHalvings) {
            // No uphill step found: already at (numerical) maximum.
            out.converged = true;
            break;
        }

        const double moved = std::fabs(thetaNext - theta);
        theta = thetaNext;
        logL = logLNext;
        if (moved < opts.epsilon * std::max(1.0, theta)) {
            out.converged = true;
            break;
        }
    }
    out.theta = theta;
    out.logL = logL;
    return out;
}

MleResult maximizeThetaGolden(const ThetaLikelihood& rl, double lo, double hi, double tol,
                              ThreadPool* pool) {
    require(lo > 0.0 && hi > lo, "maximizeThetaGolden: bad bracket");
    // Work in log-theta so the search is scale-free.
    double a = std::log(lo), b = std::log(hi);
    const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
    double x1 = b - phi * (b - a);
    double x2 = a + phi * (b - a);
    double f1 = rl.logL(std::exp(x1), pool);
    double f2 = rl.logL(std::exp(x2), pool);
    MleResult out;
    while (b - a > tol) {
        ++out.iterations;
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + phi * (b - a);
            f2 = rl.logL(std::exp(x2), pool);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - phi * (b - a);
            f1 = rl.logL(std::exp(x1), pool);
        }
        if (out.iterations > 500) break;
    }
    out.theta = std::exp(0.5 * (a + b));
    out.logL = rl.logL(out.theta, pool);
    out.converged = (b - a) <= tol;
    return out;
}

MleResult maximizeTheta(const ThetaLikelihood& rl, double thetaStart, ThreadPool* pool) {
    MleResult grad = maximizeThetaGradient(rl, thetaStart, {}, pool);
    if (grad.converged) return grad;
    // Fallback: bracket a few decades around the start value.
    MleResult golden =
        maximizeThetaGolden(rl, thetaStart * 1e-3, thetaStart * 1e3, 1e-7, pool);
    return golden.logL > grad.logL ? golden : grad;
}

}  // namespace mpcgs
