// Migration-aware proposal kernels for the structured coalescent — the
// two-deme generalization of the single-lineage recoalescence move
// (core/recoalesce.h) plus a labels-only migration-path refresh.
//
// Recoalescence: pick a uniform non-root node v, detach its subtree and
// dissolve its parent, then trace v's lineage backward from (t_v, deme_v)
// under the structured-coalescent clocks — coalescence with each remaining
// lineage *currently in the same deme* at pair rate 2/theta_d, migration
// d -> l at rate M_dl. The traced path's migration events become v's new
// branch events and the coalescence point re-creates the parent. Both
// directional densities (the exact density of the realized path + specific
// attachment) are computed against the same detached component, so the
// Hastings ratio is exact. Convention: the component root's lineage keeps
// its node deme out to infinity (migration above the surviving root is not
// modeled); states whose root branch carried migration events are
// therefore unreachable from their own proposals and such proposals
// honestly report logReverse = -inf (the MH engine rejects them — the
// path-refresh move keeps the chain ergodic across those labellings).
//
// Path refresh: pick a uniform non-root node w and resimulate the
// migration path on its branch as a FREE (unconditioned) label chain from
// the child's deme; a path that fails to land in the parent's deme makes
// the labelling inconsistent, so the posterior is -inf and MH rejects —
// no bridge normalizer needed, both densities stay exact. Topology and
// times are untouched, so this move explores labellings cheaply.
#pragma once

#include <span>
#include <vector>

#include "coalescent/structured.h"
#include "phylo/tree.h"
#include "rng/rng.h"

namespace mpcgs {

/// Outcome of one structured proposal.
struct StructuredProposal {
    StructuredGenealogy state;  ///< proposed labelled genealogy
    double logForward = 0.0;    ///< log q(G -> G')
    double logReverse = 0.0;    ///< log q(G' -> G); -inf when G is unreachable
};

/// Piecewise-constant index of the deme-labelled lineages of a partial
/// structured genealogy (the detached component of the recoalescence
/// move). Exposed for tests.
class StructuredLineageIndex {
  public:
    /// Index the structure reachable from `root` in `g` (the arena may
    /// contain detached nodes). The root lineage extends to +infinity in
    /// the root node's deme; any branch events stored on `root` are
    /// ignored (the component root has no branch).
    StructuredLineageIndex(const StructuredGenealogy& g, NodeId root,
                           const MigrationModel& model);

    /// Lineages of the component in deme d crossing backward time t.
    int countInDeme(double t, int d) const;

    /// Owners of the branches in deme d crossing t, in ascending node id
    /// (deterministic). The root node represents the semi-infinite root
    /// lineage.
    std::vector<NodeId> nodesInDeme(double t, int d) const;

    /// One backward trace from (start, startDeme): migration events plus
    /// the final coalescence (attachment time + specific lineage), with the
    /// exact log density of the whole draw.
    struct Path {
        std::vector<MigrationEvent> events;
        double attachTime = 0.0;
        int attachDeme = 0;
        NodeId attachNode = kNoNode;
        double logDensity = 0.0;
    };
    Path samplePath(double start, int startDeme, Rng& rng) const;

    /// Exact log density of one specific realization of samplePath:
    /// the given migration events followed by attachment to `attachNode`
    /// at `attachTime`. Returns -inf for infeasible realizations (events
    /// out of order, migration under a zero rate, attachment to a lineage
    /// not present in the path's deme).
    double logPathDensity(double start, int startDeme,
                          std::span<const MigrationEvent> events, double attachTime,
                          NodeId attachNode) const;

  private:
    struct Segment {
        double begin, end;
        int deme;
        NodeId node;  ///< branch owner (the child below the branch)
    };

    /// Total event hazard at time t for an active lineage in deme d:
    /// 2 * countInDeme(t, d) / theta_d + sum_l M_dl.
    double hazard(double t, int d) const;
    /// Next indexed boundary strictly above t (+inf when none).
    double nextBoundary(double t) const;

    const MigrationModel& model_;
    std::vector<Segment> segments_;   ///< sorted by (node, begin)
    std::vector<double> boundaries_;  ///< sorted distinct finite segment bounds
    std::vector<int> counts_;         ///< per (interval, deme) crossing counts
};

/// Draw one migration-aware recoalescence proposal from `g` under `model`.
StructuredProposal proposeStructuredRecoalesce(const StructuredGenealogy& g,
                                               const MigrationModel& model, Rng& rng);

/// Draw one migration-path refresh proposal (labels only).
StructuredProposal proposeMigrationPathRefresh(const StructuredGenealogy& g,
                                               const MigrationModel& model, Rng& rng);

}  // namespace mpcgs
