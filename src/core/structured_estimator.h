// Full estimation pipeline for the two-population structured coalescent
// (Fig 11 generalized): EM over (theta_1..theta_K, M_kl).
//
//   read alignment + per-sequence deme assignment -> seeded prior draw of
//   an initial labelled genealogy -> repeat { burn-in; sample labelled
//   genealogies with the migration-aware chains; profile M-step over the
//   structured relative likelihood; replace driving values } -> final
//   estimate + per-parameter support intervals.
//
// The E-step runs through the unified sampler runtime (SamplerRun with a
// StructuredSummarySink + ConvergenceMonitor), so convergence-driven early
// stopping and checkpoint/resume (format v3) work exactly as in the
// single-population driver; results are bitwise invariant to the thread
// count and a mid-run kill + resume continues bitwise-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coalescent/structured.h"
#include "core/structured_problem.h"
#include "core/supervisor.h"
#include "core/support_interval.h"
#include "par/thread_pool.h"
#include "seq/alignment.h"

namespace mpcgs {

struct StructuredOptions {
    MigrationModel init;            ///< driving start (thetas + migration rates)
    std::size_t emIterations = 4;
    std::size_t samplesPerIteration = 4000;  ///< labelled samples per E-step
    std::size_t burnInFraction1000 = 100;    ///< burn-in as permille of samples
    std::size_t chains = 4;                  ///< lockstep MH chains
    double pathRefreshProb = 0.25;  ///< labels-only move share of proposals
    std::uint64_t seed = 20160408;
    std::string substModel = "F81";
    bool compressPatterns = true;

    // Convergence-driven stopping (0 disables each criterion).
    double stopRhat = 0.0;
    double stopEss = 0.0;

    // Checkpoint/resume (format v3); same semantics as MpcgsOptions.
    std::string checkpointPath;
    std::size_t checkpointIntervalTicks = 0;
    bool resume = false;

    /// Optional run supervision (core/supervisor.h); same semantics as
    /// MpcgsOptions::supervisor. Not owned.
    const RunSupervisor* supervisor = nullptr;
};

/// Throws ConfigError on nonsensical combinations (invalid migration
/// model, fewer than 2 demes, zero iterations/samples/chains, burn-in
/// permille above 1000, resume without a checkpoint path).
void validateStructuredOptions(const StructuredOptions& opts);

struct StructuredEmRecord {
    MigrationModel before;
    MigrationModel after;
    double logLAtMax = 0.0;
    double seconds = 0.0;
    double moveRate = 0.0;
    std::size_t samples = 0;
    double rhat = 0.0;
    double ess = 0.0;
    bool stoppedEarly = false;
};

struct StructuredResult {
    MigrationModel estimate;
    std::vector<StructuredEmRecord> history;
    double totalSeconds = 0.0;
    double samplingSeconds = 0.0;

    /// Final E-step summaries plus the driving model they were sampled
    /// under — enough to rebuild the relative-likelihood surface.
    std::vector<StructuredSummary> finalSummaries;
    MigrationModel finalDriving;

    /// Conditional support interval per flattened coordinate (see
    /// core/structured_problem.h for the coordinate order).
    std::vector<SupportInterval> support;
};

/// Rebuild the final-iteration relative-likelihood surface.
StructuredRelativeLikelihood finalStructuredLikelihood(const StructuredResult& result);

/// Estimate (theta_k, M_kl) from one alignment whose sequence i lives in
/// deme tipDemes[i]. `pool` parallelizes the chain rounds and the M-step
/// curve evaluations; results are bitwise identical for any pool width.
StructuredResult estimateStructured(const Alignment& aln, const std::vector<int>& tipDemes,
                                    const StructuredOptions& opts,
                                    ThreadPool* pool = nullptr);

}  // namespace mpcgs
