// SMC-based inference drivers — the `--algo smc|pmmh` pipelines.
//
// estimateThetaSmc: the SMC marginal-likelihood curve theta -> log Zhat
// (per-locus particle clouds summed into a pooled logZ) maximized with the
// same Algorithm-2 machinery as the MCMC-EM path and bracketed by the same
// support-interval search — an independent inference paradigm whose point
// estimate cross-validates the MCMC answer (tests/statistical_qa_test.cc).
//
// runPmmh: particle-marginal MH over theta through the unified sampler
// runtime — PmmhSampler behind SamplerRun with parallel chains, streaming
// sinks, R-hat/ESS convergence stopping and periodic 'PSMC' (format v4)
// snapshots; kill + --resume continues bitwise-identically, and a resumed
// run may extend the sample horizon (the cap is deliberately outside the
// snapshot fingerprint).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/supervisor.h"
#include "core/support_interval.h"
#include "par/thread_pool.h"
#include "seq/dataset.h"
#include "smc/pmmh.h"
#include "smc/smc_sampler.h"

namespace mpcgs {

struct SmcEstimateOptions {
    double theta0 = 1.0;
    SmcOptions smc;
    std::uint64_t seed = 20160408;
    std::string substModel = "F81";
    bool compressPatterns = true;
    int curvePoints = 0;  ///< export the logZ curve on [theta/20, theta*20]

    // Checkpoint/resume (format v5). The logZ curve is a deterministic
    // function of theta under common random numbers, so the snapshot is
    // simply the memo of evaluated (theta, logZ) pairs: on resume the
    // deterministic maximizer re-traverses the same theta sequence,
    // replays the memo bitwise, and goes live at the first unseen theta.
    std::string checkpointPath;
    std::size_t checkpointIntervalEvals = 0;  ///< evals between snapshots (0 = auto)
    bool resume = false;

    /// Optional run supervision (core/supervisor.h); same semantics as
    /// MpcgsOptions::supervisor. Not owned.
    const RunSupervisor* supervisor = nullptr;
};

struct SmcEstimateResult {
    double theta = 0.0;       ///< maximizer of the pooled logZ curve
    double logZAtMax = 0.0;   ///< pooled log marginal likelihood there
    SupportInterval support;  ///< 1.92-unit drop interval on the logZ curve
    std::vector<std::pair<double, double>> curve;  ///< when curvePoints > 0
    double totalSeconds = 0.0;
};

/// Maximize the pooled SMC marginal likelihood over theta. `pool`
/// parallelizes the particle blocks of every pass; results are bitwise
/// identical for any pool width.
SmcEstimateResult estimateThetaSmc(const Dataset& dataset, const SmcEstimateOptions& opts,
                                   ThreadPool* pool = nullptr);

struct PmmhEstimateOptions {
    double theta0 = 1.0;
    PmmhOptions pmmh;
    std::size_t samples = 2000;           ///< theta draws summed over chains
    std::size_t burnInFraction1000 = 100; ///< burn-in as permille of the tick cap
    std::string substModel = "F81";
    bool compressPatterns = true;
    double stopRhat = 0.0;
    double stopEss = 0.0;
    std::string checkpointPath;
    std::size_t checkpointIntervalTicks = 0;
    bool resume = false;

    /// Optional run supervision (core/supervisor.h); same semantics as
    /// MpcgsOptions::supervisor. Not owned.
    const RunSupervisor* supervisor = nullptr;
};

struct PmmhEstimateResult {
    double posteriorMean = 0.0;
    double posteriorSd = 0.0;
    double q025 = 0.0;   ///< central 95% credible interval bounds + median
    double median = 0.0;
    double q975 = 0.0;
    double acceptRate = 0.0;
    std::size_t samples = 0;
    double rhat = 0.0;
    double ess = 0.0;
    bool stoppedEarly = false;
    double totalSeconds = 0.0;
    std::vector<double> thetaChainMajor;  ///< pooled posterior draws, chain-major
};

/// Run PMMH over theta through the sampler runtime. `pool` parallelizes
/// the chain axis (chains > 1) or the single chain's particle blocks;
/// results are bitwise identical for any pool width.
PmmhEstimateResult runPmmh(const Dataset& dataset, const PmmhEstimateOptions& opts,
                           ThreadPool* pool = nullptr);

/// Factory mirror of core/samplers.h makeSampler for the PMMH strategy:
/// the sampler runs over `marginal` (which must outlive it).
std::unique_ptr<Sampler> makePmmhSampler(const PooledSmcLikelihood& marginal,
                                         double thetaInit, const PmmhOptions& opts,
                                         ThreadPool* pool = nullptr);

}  // namespace mpcgs
