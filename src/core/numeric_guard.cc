#include "core/numeric_guard.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "phylo/tree.h"

namespace mpcgs {

std::string genealogySummary(const Genealogy& g) {
    double totalBranch = 0.0;
    for (NodeId id = 0; id < g.nodeCount(); ++id) {
        const TreeNode& n = g.node(id);
        if (n.parent != kNoNode) totalBranch += g.node(n.parent).time - n.time;
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "tips=%d rootHeight=%.17g totalBranchLength=%.17g",
                  g.tipCount(), g.node(g.root()).time, totalBranch);
    return buf;
}

void raiseNumericFault(const NumericFaultContext& ctx) {
    const char* dir = std::getenv("MPCGS_FAULT_DIR");
    std::string path = (dir && *dir) ? std::string(dir) : std::string(".");
    path += "/mpcgs_numeric_fault_" + ctx.where + ".txt";

    std::string note;
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "mpcgs numeric fault dump\n");
        std::fprintf(f, "boundary: %s\n", ctx.where.c_str());
        std::fprintf(f, "value: %.17g\n", ctx.value);
        std::fprintf(f, "theta: %.17g\n", ctx.theta);
        std::fprintf(f, "seed: %llu\n", static_cast<unsigned long long>(ctx.seed));
        std::fprintf(f, "tick: %llu\n", static_cast<unsigned long long>(ctx.tick));
        std::fprintf(f, "chain: %u\n", ctx.chain);
        if (!ctx.genealogy.empty())
            std::fprintf(f, "genealogy: %s\n", ctx.genealogy.c_str());
        if (!ctx.detail.empty()) std::fprintf(f, "%s\n", ctx.detail.c_str());
        std::fclose(f);
        note = "state dumped to '" + path + "'";
    } else {
        note = "state dump to '" + path + "' failed";
    }

    char head[128];
    std::snprintf(head, sizeof head, "non-finite value %.17g at %s (chain %u, tick %llu); ",
                  ctx.value, ctx.where.c_str(), ctx.chain,
                  static_cast<unsigned long long>(ctx.tick));
    throw NumericError(head + note);
}

void guardFinite(const NumericFaultContext& ctx) {
    if (!std::isfinite(ctx.value)) raiseNumericFault(ctx);
}

}  // namespace mpcgs
