#include "core/smc_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "core/mle.h"
#include "lik/locus_likelihoods.h"
#include "mcmc/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/timer.h"

namespace mpcgs {
namespace {

/// Swallow the genealogy stream: PMMH's posterior lives in the theta
/// traces (kept by the sampler) and the convergence monitor.
class DiscardSink final : public SampleSink {
  public:
    void consume(const Genealogy&, const SampleTag&) override {}
};

PooledSmcLikelihood::LocusTerm termFor(const Dataset& ds, const LocusLikelihoods& liks,
                                       std::size_t l) {
    return PooledSmcLikelihood::LocusTerm{&liks.at(l), ds.locus(l).mutationScale};
}

std::vector<PooledSmcLikelihood::LocusTerm> allTerms(const Dataset& ds,
                                                     const LocusLikelihoods& liks) {
    std::vector<PooledSmcLikelihood::LocusTerm> terms;
    terms.reserve(ds.locusCount());
    for (std::size_t l = 0; l < ds.locusCount(); ++l) terms.push_back(termFor(ds, liks, l));
    return terms;
}

// --- PMMH checkpoint layout -------------------------------------------
// fingerprint ('PSMC' tag + run configuration + locus roster; the sample
// cap is deliberately absent so a resumed run may extend the horizon) |
// burnDone sampleDone stopped | sampler payload | monitor payload.

void writeFingerprint(CheckpointWriter& w, const PmmhEstimateOptions& opts,
                      const Dataset& ds) {
    w.u32(kPmmhSnapshotTag);
    w.u64(opts.pmmh.seed);
    w.u64(opts.pmmh.chains);
    w.u64(opts.pmmh.smc.particles);
    w.u32(static_cast<std::uint32_t>(opts.pmmh.smc.scheme));
    w.f64(opts.pmmh.smc.essThreshold);
    w.f64(opts.pmmh.proposalSigma);
    w.f64(opts.pmmh.thetaMin);
    w.f64(opts.pmmh.thetaMax);
    w.f64(opts.theta0);
    w.u64(opts.burnInFraction1000);
    w.str(opts.substModel);
    w.u64(ds.locusCount());
    for (const Locus& locus : ds.loci()) {
        w.str(locus.name);
        w.u64(locus.alignment.sequenceCount());
        w.u64(locus.alignment.length());
        w.f64(locus.mutationScale);
    }
}

void checkFingerprint(CheckpointReader& r, const PmmhEstimateOptions& opts,
                      const Dataset& ds) {
    bool ok = true;
    ok &= r.u32() == kPmmhSnapshotTag;
    ok &= r.u64() == opts.pmmh.seed;
    ok &= r.u64() == opts.pmmh.chains;
    ok &= r.u64() == opts.pmmh.smc.particles;
    ok &= r.u32() == static_cast<std::uint32_t>(opts.pmmh.smc.scheme);
    ok &= r.f64() == opts.pmmh.smc.essThreshold;
    ok &= r.f64() == opts.pmmh.proposalSigma;
    ok &= r.f64() == opts.pmmh.thetaMin;
    ok &= r.f64() == opts.pmmh.thetaMax;
    ok &= r.f64() == opts.theta0;
    ok &= r.u64() == opts.burnInFraction1000;
    ok &= r.str() == opts.substModel;
    ok &= r.u64() == ds.locusCount();
    if (ok) {
        for (const Locus& locus : ds.loci()) {
            ok &= r.str() == locus.name;
            ok &= r.u64() == locus.alignment.sequenceCount();
            ok &= r.u64() == locus.alignment.length();
            ok &= r.f64() == locus.mutationScale;
        }
    }
    if (!ok)
        throw ConfigError(
            "resume: PMMH checkpoint was written by an incompatible run configuration");
}

// --- SMC-estimate checkpoint layout -----------------------------------
// fingerprint ('SMCZ' tag + run configuration + locus roster) | memo
// (the (theta, logZ) pairs evaluated so far, in evaluation order).

constexpr std::uint32_t kSmcEstimateSnapshotTag = 0x5A434D53u;  // "SMCZ"

void writeSmcFingerprint(CheckpointWriter& w, const SmcEstimateOptions& opts,
                         const Dataset& ds) {
    w.u32(kSmcEstimateSnapshotTag);
    w.u64(opts.seed);
    w.u64(opts.smc.particles);
    w.u32(static_cast<std::uint32_t>(opts.smc.scheme));
    w.f64(opts.smc.essThreshold);
    w.f64(opts.theta0);
    w.str(opts.substModel);
    w.u64(ds.locusCount());
    for (const Locus& locus : ds.loci()) {
        w.str(locus.name);
        w.u64(locus.alignment.sequenceCount());
        w.u64(locus.alignment.length());
        w.f64(locus.mutationScale);
    }
}

void checkSmcFingerprint(CheckpointReader& r, const SmcEstimateOptions& opts,
                         const Dataset& ds) {
    bool ok = true;
    ok &= r.u32() == kSmcEstimateSnapshotTag;
    ok &= r.u64() == opts.seed;
    ok &= r.u64() == opts.smc.particles;
    ok &= r.u32() == static_cast<std::uint32_t>(opts.smc.scheme);
    ok &= r.f64() == opts.smc.essThreshold;
    ok &= r.f64() == opts.theta0;
    ok &= r.str() == opts.substModel;
    ok &= r.u64() == ds.locusCount();
    if (ok) {
        for (const Locus& locus : ds.loci()) {
            ok &= r.str() == locus.name;
            ok &= r.u64() == locus.alignment.sequenceCount();
            ok &= r.u64() == locus.alignment.length();
            ok &= r.f64() == locus.mutationScale;
        }
    }
    if (!ok)
        throw ConfigError(
            "resume: SMC checkpoint was written by an incompatible run configuration");
}

/// Memoizing, checkpointing, stop-aware view of the pooled SMC curve.
/// Every logZ value is a deterministic function of theta (common random
/// numbers), so the memo of evaluated (theta, logZ) pairs IS the whole
/// optimizer state: a resumed run hands the deterministic maximizer the
/// cached values bitwise as it re-traverses the same theta sequence, and
/// only goes live at the first theta the interrupted run never reached.
class CheckpointedSmcLikelihood final : public ThetaLikelihood {
  public:
    CheckpointedSmcLikelihood(const PooledSmcLikelihood& inner,
                              const SmcEstimateOptions& opts, const Dataset& ds)
        : inner_(inner),
          opts_(opts),
          ds_(ds),
          snapshotEvery_(opts.checkpointIntervalEvals ? opts.checkpointIntervalEvals
                                                      : 8) {}

    double logL(double theta, ThreadPool* pool = nullptr) const override {
        const std::uint64_t key = thetaKey(theta);
        if (const auto it = index_.find(key); it != index_.end()) return it->second;
        // Stop only before a LIVE evaluation: memo replay after a resume
        // involves no new work, so cache hits never interrupt.
        if (opts_.supervisor && opts_.supervisor->stopRequested()) {
            if (!opts_.checkpointPath.empty()) snapshot();
            throw InterruptedError("stop requested before SMC curve evaluation " +
                                       std::to_string(memo_.size() + 1) + " (" +
                                       opts_.supervisor->stopReason() + ")",
                                   !opts_.checkpointPath.empty());
        }
        const double v = inner_.logL(theta, pool);
        memo_.emplace_back(theta, v);
        index_.emplace(key, v);
        if (!opts_.checkpointPath.empty() && memo_.size() % snapshotEvery_ == 0)
            snapshot();
        return v;
    }

    void loadFromSnapshot() {
        try {
            CheckpointReader r(pickResumeSnapshot(opts_.checkpointPath));
            r.enterSection("fingerprint");
            checkSmcFingerprint(r, opts_, ds_);
            r.enterSection("memo");
            const std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i) {
                const double t = r.f64();
                const double v = r.f64();
                memo_.emplace_back(t, v);
                index_.emplace(thetaKey(t), v);
            }
        } catch (const CheckpointError& e) {
            throw ResumeError(e.what());
        }
    }

    std::size_t evaluations() const { return memo_.size(); }

  private:
    static std::uint64_t thetaKey(double theta) {
        std::uint64_t k = 0;
        std::memcpy(&k, &theta, sizeof k);
        return k;
    }

    void snapshot() const {
        withCheckpointRetry(opts_.supervisor, [&] {
            CheckpointWriter w(opts_.checkpointPath);
            w.beginSection("fingerprint");
            writeSmcFingerprint(w, opts_, ds_);
            w.beginSection("memo");
            w.u64(memo_.size());
            for (const auto& [t, v] : memo_) {
                w.f64(t);
                w.f64(v);
            }
            w.commit();
        });
    }

    const PooledSmcLikelihood& inner_;
    const SmcEstimateOptions& opts_;
    const Dataset& ds_;
    std::size_t snapshotEvery_;
    mutable std::vector<std::pair<double, double>> memo_;
    mutable std::unordered_map<std::uint64_t, double> index_;
};

double quantileOfSorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

SmcEstimateResult estimateThetaSmc(const Dataset& dataset, const SmcEstimateOptions& opts,
                                   ThreadPool* pool) {
    if (opts.theta0 <= 0.0) throw ConfigError("smc: theta0 must be positive");
    if (opts.resume && opts.checkpointPath.empty())
        throw ConfigError("smc: resume requires a checkpointPath");
    validateSmcOptions(opts.smc);
    dataset.validate();

    Timer total;
    const obs::TraceSpan span("smc_estimate", "smc");
    const LocusLikelihoods liks(dataset, opts.substModel, opts.compressPatterns);
    const PooledSmcLikelihood pooled(allTerms(dataset, liks), opts.smc, opts.seed);
    CheckpointedSmcLikelihood curve(pooled, opts, dataset);
    if (opts.resume) curve.loadFromSnapshot();

    SmcEstimateResult res;
    const MleResult mle = maximizeTheta(curve, opts.theta0, pool);
    res.theta = mle.theta;
    res.logZAtMax = mle.logL;
    res.support = supportInterval(curve, res.theta, 1.92, 1e4, pool);
    if (opts.curvePoints > 0)
        res.curve = curve.curve(res.theta / 20, res.theta * 20, opts.curvePoints, pool);
    res.totalSeconds = total.seconds();
    return res;
}

std::unique_ptr<Sampler> makePmmhSampler(const PooledSmcLikelihood& marginal,
                                         double thetaInit, const PmmhOptions& opts,
                                         ThreadPool* pool) {
    return std::make_unique<PmmhSampler>(marginal, thetaInit, opts, pool);
}

PmmhEstimateResult runPmmh(const Dataset& dataset, const PmmhEstimateOptions& opts,
                           ThreadPool* pool) {
    if (opts.theta0 <= 0.0) throw ConfigError("pmmh: theta0 must be positive");
    if (opts.samples == 0) throw ConfigError("pmmh: need >= 1 sample");
    if (opts.burnInFraction1000 > 1000)
        throw ConfigError("pmmh: burn-in permille must be <= 1000");
    if (opts.resume && opts.checkpointPath.empty())
        throw ConfigError("pmmh: resume requires a checkpointPath");
    validatePmmhOptions(opts.pmmh);
    dataset.validate();

    Timer total;
    const obs::TraceSpan span("pmmh_run", "mcmc");
    const LocusLikelihoods liks(dataset, opts.substModel, opts.compressPatterns);
    const PooledSmcLikelihood pooled(allTerms(dataset, liks), opts.pmmh.smc,
                                     opts.pmmh.seed);
    PmmhSampler sampler(pooled, opts.theta0, opts.pmmh, pool);

    const std::size_t capTicks =
        (opts.samples + opts.pmmh.chains - 1) / opts.pmmh.chains;
    // Planned burn-in, derived from the cap on a fresh run. A resumed run
    // takes the ORIGINAL run's value from the snapshot instead: the cap is
    // outside the fingerprint precisely so --samples can grow, and
    // recomputing burn ticks from the new cap would inject extra
    // burn ticks into the middle of an already-sampling chain.
    std::size_t burnTicks = (capTicks * opts.burnInFraction1000 + 999) / 1000;

    ConvergenceMonitor monitor;
    DiscardSink sink;
    std::size_t resumeBurnDone = 0, resumeSampleDone = 0;
    bool resumeStopped = false;
    if (opts.resume) {
        try {
            CheckpointReader r(pickResumeSnapshot(opts.checkpointPath));
            r.enterSection("fingerprint");
            checkFingerprint(r, opts, dataset);
            r.enterSection("context");
            burnTicks = r.u64();
            resumeBurnDone = r.u64();
            resumeSampleDone = r.u64();
            resumeStopped = r.u32() != 0;
            r.enterSection("sampler");
            sampler.load(r);
            r.enterSection("monitor");
            monitor.load(r);
        } catch (const CheckpointError& e) {
            throw ResumeError(e.what());
        }
    }

    SamplerRun::Config cfg;
    cfg.burnInTicks = burnTicks;
    cfg.sampleTicks = capTicks;
    cfg.stopping.rhatBelow = opts.stopRhat;
    cfg.stopping.essAtLeast = opts.stopEss;
    cfg.checkpointInterval = opts.checkpointIntervalTicks;
    if (opts.supervisor) cfg.stopRequested = opts.supervisor->stopCallback();
    cfg.numeric.enabled = true;
    cfg.numeric.theta = opts.theta0;
    cfg.numeric.seed = opts.pmmh.seed;
    cfg.numeric.phase = "runPmmh sampling";
    if (!opts.checkpointPath.empty()) {
        cfg.checkpoint = [&, burnTicks](std::size_t burnDone, std::size_t sampleDone,
                                        bool stopped) {
            withCheckpointRetry(opts.supervisor, [&] {
                CheckpointWriter w(opts.checkpointPath);
                w.beginSection("fingerprint");
                writeFingerprint(w, opts, dataset);
                w.beginSection("context");
                w.u64(burnTicks);  // freeze the burn geometry for resumes
                w.u64(burnDone);
                w.u64(sampleDone);
                w.u32(stopped ? 1 : 0);
                w.beginSection("sampler");
                sampler.save(w);
                w.beginSection("monitor");
                monitor.save(w);
                w.commit();
            });
        };
    }

    SamplerRun run(sampler, cfg);
    if (opts.resume) run.restoreProgress(resumeBurnDone, resumeSampleDone, resumeStopped);

    const SamplerRunReport report = run.execute(sink, monitor);

    PmmhEstimateResult res;
    res.stoppedEarly = report.stoppedEarly;
    res.rhat = report.rhat;
    res.ess = report.ess;
    const SamplerStats stats = sampler.stats();
    res.acceptRate = stats.moveRate();
    obs::add(obs::Counter::McmcSteps, stats.steps);
    obs::add(obs::Counter::McmcAccepted, stats.accepted);
    if (res.rhat > 0.0) obs::set(obs::Gauge::McmcRhat, res.rhat);
    if (res.ess > 0.0) obs::set(obs::Gauge::McmcPooledEss, res.ess);
    for (std::size_t c = 0; c < opts.pmmh.chains; ++c) {
        const std::vector<double>& trace = sampler.thetaTrace(c);
        res.thetaChainMajor.insert(res.thetaChainMajor.end(), trace.begin(), trace.end());
    }
    res.samples = res.thetaChainMajor.size();
    if (!res.thetaChainMajor.empty()) {
        double sum = 0.0;
        for (double t : res.thetaChainMajor) sum += t;
        res.posteriorMean = sum / static_cast<double>(res.samples);
        double ss = 0.0;
        for (double t : res.thetaChainMajor) {
            const double d = t - res.posteriorMean;
            ss += d * d;
        }
        res.posteriorSd = res.samples > 1
                              ? std::sqrt(ss / static_cast<double>(res.samples - 1))
                              : 0.0;
        std::vector<double> sorted = res.thetaChainMajor;
        std::sort(sorted.begin(), sorted.end());
        res.q025 = quantileOfSorted(sorted, 0.025);
        res.median = quantileOfSorted(sorted, 0.5);
        res.q975 = quantileOfSorted(sorted, 0.975);
    }
    res.totalSeconds = total.seconds();
    return res;
}

}  // namespace mpcgs
