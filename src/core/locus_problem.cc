#include "core/locus_problem.h"

#include "util/error.h"

namespace mpcgs {

LocusProblemSet::LocusProblemSet(const Dataset& dataset, const LocusLikelihoods& liks) {
    require(dataset.locusCount() == liks.locusCount(),
            "LocusProblemSet: dataset/likelihood locus counts differ");
    problems_.reserve(dataset.locusCount());
    for (std::size_t l = 0; l < dataset.locusCount(); ++l)
        problems_.push_back(LocusProblem{&dataset.locus(l), &liks.at(l)});
}

PooledRelativeLikelihood::PooledRelativeLikelihood(std::vector<LocusTerm> loci)
    : loci_(std::move(loci)) {
    require(!loci_.empty(), "PooledRelativeLikelihood: no loci");
    for (const LocusTerm& t : loci_)
        require(t.mutationScale > 0.0,
                "PooledRelativeLikelihood: mutation scale must be positive");
}

double PooledRelativeLikelihood::logL(double theta, ThreadPool* pool) const {
    require(theta > 0.0, "PooledRelativeLikelihood: theta must be positive");
    // Loci are independent, so the pooled curve is a plain sum. Summation
    // order is locus order (fixed), keeping the value bitwise reproducible;
    // the per-locus evaluation parallelizes over its samples on `pool`.
    double sum = 0.0;
    for (const LocusTerm& t : loci_) sum += t.rl.logL(theta * t.mutationScale, pool);
    return sum;
}

std::size_t PooledRelativeLikelihood::sampleCount() const {
    std::size_t n = 0;
    for (const LocusTerm& t : loci_) n += t.rl.sampleCount();
    return n;
}

}  // namespace mpcgs
