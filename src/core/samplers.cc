#include "core/samplers.h"

#include <utility>

#include "core/cached_mh.h"
#include "core/genealogy_problem.h"
#include "mcmc/checkpoint.h"
#include "mcmc/gmh.h"
#include "mcmc/heated.h"
#include "mcmc/mh.h"
#include "mcmc/schedule.h"
#include "rng/splitmix.h"

namespace mpcgs {

std::size_t SummarySink::total() const {
    std::size_t n = 0;
    for (const auto& c : perChain_) n += c.size();
    return n;
}

std::vector<IntervalSummary> SummarySink::chainMajor() const {
    std::vector<IntervalSummary> out;
    out.reserve(total());
    for (const auto& c : perChain_) out.insert(out.end(), c.begin(), c.end());
    return out;
}

void SummarySink::save(CheckpointWriter& w) const {
    w.u64(perChain_.size());
    for (const auto& c : perChain_) {
        w.u64(c.size());
        for (const IntervalSummary& s : c) {
            w.f64(s.weightedSum);
            w.u64(static_cast<std::uint64_t>(s.events));
        }
    }
}

void SummarySink::load(CheckpointReader& r) {
    const std::uint64_t chains = r.u64();
    if (chains > r.remaining() / sizeof(std::uint64_t))
        throw CheckpointError("corrupt snapshot: implausible chain count");
    perChain_.assign(chains, {});
    for (auto& c : perChain_) {
        const std::uint64_t n = r.u64();
        // Each summary occupies one f64 + one u64 in the stream.
        if (n > r.remaining() / (2 * sizeof(std::uint64_t)))
            throw CheckpointError("corrupt snapshot: implausible summary count");
        c.resize(n);
        for (IntervalSummary& s : c) {
            s.weightedSum = r.f64();
            s.events = static_cast<int>(r.u64());
        }
    }
}

namespace {

/// Every adapter writes its strategy id first, so loading a snapshot into
/// the wrong sampler fails loudly instead of misinterpreting the stream.
void writeTag(CheckpointWriter& w, Strategy s) { w.u32(static_cast<std::uint32_t>(s)); }
void checkTag(CheckpointReader& r, Strategy s) {
    if (r.u32() != static_cast<std::uint32_t>(s))
        throw CheckpointError("snapshot was written by a different strategy");
}

/// Serial MH baseline (recompute or cached evaluation): one transition and
/// one sample per tick.
template <class Chain>
class SerialMhAdapter final : public Sampler {
  public:
    SerialMhAdapter(Chain chain) : chain_(std::move(chain)) {}

    std::uint32_t chainCount() const override { return 1; }
    std::size_t samplesPerTick() const override { return 1; }

    void tick(SampleSink* sink) override {
        chain_.step();
        if (sink)
            sink->consume(chain_.current(),
                          SampleTag{0, emitted_++, chain_.currentLogPosterior()});
    }

    const Genealogy& continuation() const override { return chain_.current(); }

    SamplerStats stats() const override {
        return SamplerStats{chain_.steps(), chain_.acceptedCount(), 0, 0};
    }

    void save(CheckpointWriter& w) const override {
        writeTag(w, Strategy::SerialMh);
        writeGenealogy(w, chain_.current());
        w.f64(savedLogValue());
        w.u64(chain_.steps());
        w.u64(chain_.acceptedCount());
        w.u64(emitted_);
        writeRng(w, chain_.rng());
    }

    void load(CheckpointReader& r) override {
        checkTag(r, Strategy::SerialMh);
        Genealogy g = readGenealogy(r);
        const double logValue = r.f64();
        const std::size_t steps = r.u64();
        const std::size_t accepted = r.u64();
        emitted_ = r.u64();
        chain_.restore(std::move(g), logValue, steps, accepted);
        readRng(r, chain_.rng());
    }

  private:
    /// MhChain carries the log-posterior; CachedMhSampler carries the data
    /// log-likelihood (its prior term is recomputed per step). Snapshot
    /// whichever quantity restore() expects.
    double savedLogValue() const {
        if constexpr (requires { chain_.currentDataLogLik(); })
            return chain_.currentDataLogLik();
        else
            return chain_.currentLogPosterior();
    }

    Chain chain_;
    std::uint64_t emitted_ = 0;
};

/// GMH: one Algorithm-1 iteration per tick, emitting M index draws.
class GmhAdapter final : public Sampler {
  public:
    GmhAdapter(const DataLikelihood& lik, double theta, Genealogy init,
               const SamplerSpec& spec, ThreadPool* pool)
        : problem_(lik, theta),
          sampler_(problem_, gmhOptions(spec), pool),
          samplesPerTick_(spec.gmhSamplesPerSet) {
        sampler_.hostRng() = Mt19937::fromSplitMix(splitMix64At(spec.seed, 1));
        sampler_.start(std::move(init));
    }

    std::uint32_t chainCount() const override { return 1; }
    std::size_t samplesPerTick() const override { return samplesPerTick_; }

    void tick(SampleSink* sink) override {
        if (!sink) {
            sampler_.tick(static_cast<Emit*>(nullptr));
            return;
        }
        Emit emit{sink, &emitted_};
        sampler_.tick(&emit);
    }

    const Genealogy& continuation() const override { return sampler_.current(); }

    SamplerStats stats() const override {
        const GmhStats& s = sampler_.stats();
        return SamplerStats{s.samplesDrawn, s.samplesDrawn - s.generatorResampled, 0, 0};
    }

    void save(CheckpointWriter& w) const override {
        writeTag(w, Strategy::Gmh);
        writeGenealogy(w, sampler_.current());
        w.f64(sampler_.currentLogPosterior());
        w.u64(sampler_.iteration());
        const GmhStats& s = sampler_.stats();
        w.u64(s.iterations);
        w.u64(s.samplesDrawn);
        w.u64(s.generatorResampled);
        w.f64(s.meanGeneratorWeight);
        w.u64(emitted_);
        writeRng(w, sampler_.hostRng());
    }

    void load(CheckpointReader& r) override {
        checkTag(r, Strategy::Gmh);
        Genealogy g = readGenealogy(r);
        const double logPost = r.f64();
        const std::uint64_t iteration = r.u64();
        GmhStats s;
        s.iterations = r.u64();
        s.samplesDrawn = r.u64();
        s.generatorResampled = r.u64();
        s.meanGeneratorWeight = r.f64();
        emitted_ = r.u64();
        sampler_.restore(std::move(g), logPost, iteration, s);
        readRng(r, sampler_.hostRng());
    }

  private:
    struct Emit {
        SampleSink* sink;
        std::uint64_t* emitted;
        void operator()(const Genealogy& g, double logPost) {
            sink->consume(g, SampleTag{0, (*emitted)++, logPost});
        }
    };

    static GmhOptions gmhOptions(const SamplerSpec& spec) {
        GmhOptions o;
        o.numProposals = spec.gmhProposals;
        o.samplesPerIteration = spec.gmhSamplesPerSet;
        o.seed = spec.seed;
        return o;
    }

    GmhGenealogyProblem problem_;
    GmhSampler<GmhGenealogyProblem> sampler_;
    std::size_t samplesPerTick_;
    std::uint64_t emitted_ = 0;
};

/// Multi-chain §3 baseline: P independent chains advanced in lockstep
/// rounds across the pool — one step and one tagged sample per chain per
/// tick. Chain c's stream is splitMix64At(seed, c + 1), exactly as the
/// free-running runMultiChain derives it, so both produce identical
/// per-chain sample sequences.
class MultiChainAdapter final : public Sampler {
  public:
    MultiChainAdapter(const DataLikelihood& lik, double theta, Genealogy init,
                      const SamplerSpec& spec, ThreadPool* pool)
        : problem_(lik, theta), scheduler_(pool, spec.chains) {
        chains_.reserve(spec.chains);
        for (std::size_t c = 0; c < spec.chains; ++c)
            chains_.emplace_back(problem_, init,
                                 Mt19937::fromSplitMix(splitMix64At(spec.seed, c + 1)));
    }

    std::uint32_t chainCount() const override {
        return static_cast<std::uint32_t>(chains_.size());
    }
    std::size_t samplesPerTick() const override { return chains_.size(); }

    void tick(SampleSink* sink) override {
        scheduler_.stepChains([&](std::size_t c) {
            chains_[c].step();
            if (sink)
                sink->consume(chains_[c].current(),
                              SampleTag{static_cast<std::uint32_t>(c), sampleRounds_,
                                        chains_[c].currentLogPosterior()});
        });
        if (sink) ++sampleRounds_;
    }

    const Genealogy& continuation() const override { return chains_.front().current(); }

    SamplerStats stats() const override {
        SamplerStats s;
        for (const auto& c : chains_) {
            s.steps += c.steps();
            s.accepted += c.acceptedCount();
        }
        return s;
    }

    void save(CheckpointWriter& w) const override {
        writeTag(w, Strategy::MultiChain);
        w.u64(chains_.size());
        for (const auto& c : chains_) {
            writeGenealogy(w, c.current());
            w.f64(c.currentLogPosterior());
            w.u64(c.steps());
            w.u64(c.acceptedCount());
            writeRng(w, c.rng());
        }
        w.u64(sampleRounds_);
    }

    void load(CheckpointReader& r) override {
        checkTag(r, Strategy::MultiChain);
        if (r.u64() != chains_.size())
            throw CheckpointError("snapshot chain count does not match configuration");
        for (auto& c : chains_) {
            Genealogy g = readGenealogy(r);
            const double logPost = r.f64();
            const std::size_t steps = r.u64();
            const std::size_t accepted = r.u64();
            c.restore(std::move(g), logPost, steps, accepted);
            readRng(r, c.rng());
        }
        sampleRounds_ = r.u64();
    }

  private:
    MhGenealogyProblem problem_;
    ChainScheduler scheduler_;
    std::vector<MhChain<MhGenealogyProblem>> chains_;
    std::uint64_t sampleRounds_ = 0;
};

/// MC^3: one sweep per tick (pool-parallel within-sweep stepping inside
/// HeatedChains), sampling the cold chain.
class HeatedAdapter final : public Sampler {
  public:
    HeatedAdapter(const DataLikelihood& lik, double theta, Genealogy init,
                  const SamplerSpec& spec, ThreadPool* pool)
        : problem_(lik, theta),
          chains_(problem_, std::move(init), heatedOptions(spec), pool) {}

    std::uint32_t chainCount() const override { return 1; }
    std::size_t samplesPerTick() const override { return 1; }

    void tick(SampleSink* sink) override {
        chains_.sweep();
        if (sink)
            sink->consume(chains_.cold(),
                          SampleTag{0, emitted_++, chains_.coldLogPosterior()});
    }

    const Genealogy& continuation() const override { return chains_.cold(); }

    SamplerStats stats() const override {
        const HeatedStats s = chains_.stats();
        return SamplerStats{s.steps, s.accepted, s.swapsProposed, s.swapsAccepted};
    }

    void save(CheckpointWriter& w) const override {
        writeTag(w, Strategy::HeatedMh);
        w.u64(chains_.chainCount());
        for (std::size_t i = 0; i < chains_.chainCount(); ++i) {
            writeGenealogy(w, chains_.chainState(i));
            w.f64(chains_.chainLogPosterior(i));
            w.u64(chains_.chainSteps(i));
            w.u64(chains_.chainAccepted(i));
            writeRng(w, chains_.chainRng(i));
        }
        writeRng(w, chains_.swapRng());
        w.u64(chains_.sweeps());
        const HeatedStats s = chains_.stats();
        w.u64(s.swapsProposed);
        w.u64(s.swapsAccepted);
        w.u64(emitted_);
    }

    void load(CheckpointReader& r) override {
        checkTag(r, Strategy::HeatedMh);
        if (r.u64() != chains_.chainCount())
            throw CheckpointError("snapshot temperature ladder does not match configuration");
        for (std::size_t i = 0; i < chains_.chainCount(); ++i) {
            Genealogy g = readGenealogy(r);
            const double logPost = r.f64();
            const std::size_t steps = r.u64();
            const std::size_t accepted = r.u64();
            chains_.restoreChain(i, std::move(g), logPost, steps, accepted);
            readRng(r, chains_.chainRng(i));
        }
        readRng(r, chains_.swapRng());
        const std::size_t sweeps = r.u64();
        const std::size_t swapsProposed = r.u64();
        const std::size_t swapsAccepted = r.u64();
        chains_.restoreCounters(sweeps, swapsProposed, swapsAccepted);
        emitted_ = r.u64();
    }

  private:
    static HeatedOptions heatedOptions(const SamplerSpec& spec) {
        HeatedOptions o;
        o.temperatures = spec.temperatures;
        o.swapInterval = spec.swapInterval;
        o.seed = spec.seed;
        return o;
    }

    MhGenealogyProblem problem_;
    HeatedChains<MhGenealogyProblem> chains_;
    std::uint64_t emitted_ = 0;
};

/// MhChain stores a reference to its problem; this wrapper owns both so
/// the adapter is self-contained.
class OwnedMhChain {
  public:
    OwnedMhChain(const DataLikelihood& lik, double theta, Genealogy init, Mt19937 rng)
        : problem_(std::make_unique<MhGenealogyProblem>(lik, theta)),
          chain_(std::make_unique<MhChain<MhGenealogyProblem>>(*problem_, std::move(init),
                                                               std::move(rng))) {}

    void step() { chain_->step(); }
    const Genealogy& current() const { return chain_->current(); }
    double currentLogPosterior() const { return chain_->currentLogPosterior(); }
    std::size_t steps() const { return chain_->steps(); }
    std::size_t acceptedCount() const { return chain_->acceptedCount(); }
    Mt19937& rng() { return chain_->rng(); }
    const Mt19937& rng() const { return chain_->rng(); }
    void restore(Genealogy g, double logPost, std::size_t steps, std::size_t accepted) {
        chain_->restore(std::move(g), logPost, steps, accepted);
    }

  private:
    std::unique_ptr<MhGenealogyProblem> problem_;
    std::unique_ptr<MhChain<MhGenealogyProblem>> chain_;
};

}  // namespace

std::unique_ptr<Sampler> makeSampler(const SamplerSpec& spec, const DataLikelihood& lik,
                                     double theta, Genealogy init, ThreadPool* pool) {
    switch (spec.strategy) {
        case Strategy::Gmh:
            return std::make_unique<GmhAdapter>(lik, theta, std::move(init), spec, pool);
        case Strategy::SerialMh:
            if (spec.cachedBaseline)
                return std::make_unique<SerialMhAdapter<CachedMhSampler>>(CachedMhSampler(
                    lik, theta, std::move(init),
                    Mt19937::fromSplitMix(splitMix64At(spec.seed, 1)), pool));
            return std::make_unique<SerialMhAdapter<OwnedMhChain>>(OwnedMhChain(
                lik, theta, std::move(init),
                Mt19937::fromSplitMix(splitMix64At(spec.seed, 1))));
        case Strategy::MultiChain:
            return std::make_unique<MultiChainAdapter>(lik, theta, std::move(init), spec, pool);
        case Strategy::HeatedMh:
            return std::make_unique<HeatedAdapter>(lik, theta, std::move(init), spec, pool);
    }
    throw ConfigError("makeSampler: unknown strategy");
}

}  // namespace mpcgs
