#include "core/structured_sampler.h"

#include "mcmc/checkpoint.h"
#include "rng/splitmix.h"
#include "util/error.h"

namespace mpcgs {
namespace {

/// Snapshot tag of the structured strategy ("STRC"): loading a structured
/// payload into any other sampler — or vice versa — fails loudly.
constexpr std::uint32_t kStructuredTag = 0x43525453u;

}  // namespace

void StructuredSummarySink::consume(const Genealogy&, const SampleTag&) {
    throw InvariantError("StructuredSummarySink: received an unlabelled sample");
}

std::size_t StructuredSummarySink::total() const {
    std::size_t n = 0;
    for (const auto& c : perChain_) n += c.size();
    return n;
}

std::vector<StructuredSummary> StructuredSummarySink::chainMajor() const {
    std::vector<StructuredSummary> out;
    out.reserve(total());
    for (const auto& c : perChain_) out.insert(out.end(), c.begin(), c.end());
    return out;
}

void StructuredSummarySink::save(CheckpointWriter& w) const {
    w.u32(static_cast<std::uint32_t>(demeCount_));
    w.u64(perChain_.size());
    for (const auto& c : perChain_) {
        w.u64(c.size());
        for (const StructuredSummary& s : c) {
            w.doubles(s.coal);
            w.doubles(s.W);
            w.doubles(s.mig);
            w.doubles(s.U);
        }
    }
}

void StructuredSummarySink::load(CheckpointReader& r) {
    demeCount_ = static_cast<int>(r.u32());
    if (demeCount_ < 1 || demeCount_ > 64)
        throw CheckpointError("corrupt snapshot: implausible deme count");
    const std::uint64_t chains = r.u64();
    if (chains > r.remaining() / sizeof(std::uint64_t))
        throw CheckpointError("corrupt snapshot: implausible chain count");
    perChain_.assign(chains, {});
    const auto Ku = static_cast<std::size_t>(demeCount_);
    for (auto& c : perChain_) {
        const std::uint64_t n = r.u64();
        // Each summary occupies 4 length words plus (3K + K^2) doubles.
        const std::uint64_t bytesEach =
            4 * sizeof(std::uint64_t) + (3 * Ku + Ku * Ku) * sizeof(double);
        if (n > r.remaining() / bytesEach)
            throw CheckpointError("corrupt snapshot: implausible summary count");
        c.resize(n);
        for (StructuredSummary& s : c) {
            s.coal = r.doubles();
            s.W = r.doubles();
            s.mig = r.doubles();
            s.U = r.doubles();
            if (s.coal.size() != Ku || s.W.size() != Ku || s.U.size() != Ku ||
                s.mig.size() != Ku * Ku)
                throw CheckpointError("corrupt snapshot: summary shape mismatch");
        }
    }
}

StructuredChainsSampler::StructuredChainsSampler(const DataLikelihood& lik,
                                                 const MigrationModel& model,
                                                 StructuredGenealogy init,
                                                 std::size_t chains, std::uint64_t seed,
                                                 double pathRefreshProb, ThreadPool* pool)
    : problem_(lik, model, pathRefreshProb), scheduler_(pool, chains) {
    require(chains >= 1, "StructuredChainsSampler: need at least one chain");
    init.validate(model.demeCount());
    chains_.reserve(chains);
    for (std::size_t c = 0; c < chains; ++c)
        chains_.emplace_back(problem_, init,
                             Mt19937::fromSplitMix(splitMix64At(seed, c + 1)));
}

void StructuredChainsSampler::tick(SampleSink* sink) {
    scheduler_.stepChains([&](std::size_t c) {
        chains_[c].step();
        if (sink)
            sink->consume(chains_[c].current(),
                          SampleTag{static_cast<std::uint32_t>(c), sampleRounds_,
                                    chains_[c].currentLogPosterior()});
    });
    if (sink) ++sampleRounds_;
}

SamplerStats StructuredChainsSampler::stats() const {
    SamplerStats s;
    for (const auto& c : chains_) {
        s.steps += c.steps();
        s.accepted += c.acceptedCount();
    }
    return s;
}

void StructuredChainsSampler::save(CheckpointWriter& w) const {
    w.u32(kStructuredTag);
    w.u64(chains_.size());
    for (const auto& c : chains_) {
        writeStructuredGenealogy(w, c.current());
        w.f64(c.currentLogPosterior());
        w.u64(c.steps());
        w.u64(c.acceptedCount());
        writeRng(w, c.rng());
    }
    w.u64(sampleRounds_);
}

void StructuredChainsSampler::load(CheckpointReader& r) {
    if (r.u32() != kStructuredTag)
        throw CheckpointError("snapshot was written by a different strategy");
    if (r.u64() != chains_.size())
        throw CheckpointError("snapshot chain count does not match configuration");
    for (auto& c : chains_) {
        StructuredGenealogy g = readStructuredGenealogy(r, problem_.model().demeCount());
        const double logPost = r.f64();
        const std::size_t steps = r.u64();
        const std::size_t accepted = r.u64();
        c.restore(std::move(g), logPost, steps, accepted);
        readRng(r, c.rng());
    }
    sampleRounds_ = r.u64();
}

}  // namespace mpcgs
