#include "core/support_interval.h"

#include <cmath>

#include "util/error.h"

namespace mpcgs {
namespace {

/// Bisection for the theta in [inside, outside] (by log-theta) where the
/// curve crosses `target`, assuming logL(inside) >= target >= logL(outside).
double bisectCrossing(const ThetaLikelihood& rl, double target, double inside,
                      double outside, ThreadPool* pool) {
    double lo = std::log(inside), hi = std::log(outside);
    for (int it = 0; it < 100 && std::fabs(hi - lo) > 1e-10; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (rl.logL(std::exp(mid), pool) >= target)
            lo = mid;
        else
            hi = mid;
    }
    return std::exp(0.5 * (lo + hi));
}

}  // namespace

SupportInterval supportInterval(const ThetaLikelihood& rl, double mleTheta, double drop,
                                double maxFactor, ThreadPool* pool) {
    require(mleTheta > 0.0, "supportInterval: mle must be positive");
    require(drop > 0.0, "supportInterval: drop must be positive");
    SupportInterval out;
    out.mle = mleTheta;
    out.logLAtMle = rl.logL(mleTheta, pool);
    const double target = out.logLAtMle - drop;

    // Walk outward geometrically until the curve falls below the target,
    // then bisect back to the crossing.
    auto findSide = [&](bool upperSide, bool& bounded) {
        double inside = mleTheta;
        double factor = 1.5;
        while (factor <= maxFactor) {
            const double probe = upperSide ? mleTheta * factor : mleTheta / factor;
            if (rl.logL(probe, pool) < target)
                return bisectCrossing(rl, target, inside, probe, pool);
            inside = probe;
            factor *= 2.0;
        }
        bounded = false;
        return upperSide ? mleTheta * maxFactor : mleTheta / maxFactor;
    };

    out.lower = findSide(false, out.lowerBounded);
    out.upper = findSide(true, out.upperBounded);
    return out;
}

}  // namespace mpcgs
