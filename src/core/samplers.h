// Concrete Sampler implementations binding the unified runtime interface
// (mcmc/sampler.h) to the genealogy problems: every strategy the driver
// offers is constructed here, behind one factory, with per-chain
// SplitMix64-derived RNG streams and full checkpoint support.
//
//   Strategy::Gmh        one GmhSampler iteration per tick (M samples)
//   Strategy::SerialMh   one MhChain / CachedMhSampler step per tick
//   Strategy::MultiChain P lockstep MhChain steps per tick (P samples),
//                        parallel across the pool via ChainScheduler
//   Strategy::HeatedMh   one MC^3 sweep per tick (cold-chain sample),
//                        within-sweep stepping parallel across the pool
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/posterior.h"
#include "lik/felsenstein.h"
#include "mcmc/sampler.h"
#include "par/thread_pool.h"

namespace mpcgs {

enum class Strategy {
    Gmh,        ///< multiple-proposal sampler (the paper's method)
    SerialMh,   ///< single serial MH chain (LAMARC baseline)
    MultiChain, ///< P independent MH chains, aggregated (§3 baseline)
    HeatedMh,   ///< Metropolis-coupled chains (LAMARC's heating feature)
};

/// Everything the factory needs to build one sampler (a strategy-relevant
/// subset of MpcgsOptions; the driver fills it per E-step).
struct SamplerSpec {
    Strategy strategy = Strategy::Gmh;
    std::uint64_t seed = 1;
    bool cachedBaseline = false;               ///< SerialMh: dirty-path caching
    std::size_t gmhProposals = 32;             ///< Gmh: N proposals per set
    std::size_t gmhSamplesPerSet = 32;         ///< Gmh: M draws per set
    std::size_t chains = 4;                    ///< MultiChain: P
    std::vector<double> temperatures{1.0, 1.3, 1.8, 3.0};  ///< HeatedMh ladder
    std::size_t swapInterval = 10;             ///< HeatedMh: sweeps per swap
};

/// Streaming chain-major summary collector — the driver's sample sink.
/// Each sample is reduced to its IntervalSummary on arrival (§5.1.3 stores
/// nothing more than interval statistics), so no genealogy state is ever
/// buffered. Per-chain vectors make concurrent consumption lock-free under
/// the sink contract; chainMajor() concatenates them in chain order, which
/// is deterministic regardless of how chain execution interleaved.
class SummarySink final : public SampleSink {
  public:
    void beginRun(std::uint32_t chains) override {
        if (chains > perChain_.size()) perChain_.resize(chains);
    }
    void consume(const Genealogy& g, const SampleTag& tag) override {
        perChain_[tag.chain].push_back(IntervalSummary::fromGenealogy(g));
    }

    std::size_t total() const;
    std::vector<IntervalSummary> chainMajor() const;

    void save(CheckpointWriter& w) const;
    void load(CheckpointReader& r);

  private:
    std::vector<std::vector<IntervalSummary>> perChain_;
};

/// Build the sampler for `spec` over P(D|G) * P(G|theta), warm-started
/// from `init`. `pool` parallelizes whatever the strategy can use it for
/// (GMH proposal fan-out, multi-chain rounds, MC^3 sweeps, cached-MH
/// pattern blocks); results are bitwise identical for any pool width.
std::unique_ptr<Sampler> makeSampler(const SamplerSpec& spec, const DataLikelihood& lik,
                                     double theta, Genealogy init,
                                     ThreadPool* pool = nullptr);

}  // namespace mpcgs
