// The multi-locus inference problem: L independent loci sharing theta.
//
// The joint posterior factorizes over loci,
//
//   P(G_1..G_L | D, theta) = prod_l P(G_l | D_l, mu_l * theta),
//
// so the E-step samples each locus's genealogy with its own chain set
// (independent per-locus samplers over P(D_l|G_l) * P(G_l | mu_l theta)),
// and the M-step maximizes the pooled relative log likelihood
//
//   log L(theta) = sum_l log L_l(mu_l * theta)                    (Eq. 26, pooled)
//
// over the per-locus interval summaries — each L_l is the single-locus
// Eq. 26 curve evaluated at the locus's effective theta. With one locus and
// mu = 1 every expression reduces bitwise to the single-alignment pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/posterior.h"
#include "lik/locus_likelihoods.h"
#include "seq/dataset.h"

namespace mpcgs {

/// One locus's slice of the joint problem: its data likelihood plus the
/// mapping from the shared theta to the locus's effective theta.
struct LocusProblem {
    const Locus* locus = nullptr;         ///< name, alignment, mutation scale
    const DataLikelihood* lik = nullptr;  ///< per-locus engine (LocusLikelihoods)

    double mutationScale() const { return locus->mutationScale; }
    /// Effective theta governing this locus's coalescent prior. With
    /// mu = 1 this is the shared theta bitwise (x * 1.0 == x).
    double effectiveTheta(double theta) const { return theta * locus->mutationScale; }
};

/// The per-locus problem views over a Dataset and its likelihood set (both
/// must outlive this object).
class LocusProblemSet {
  public:
    LocusProblemSet(const Dataset& dataset, const LocusLikelihoods& liks);

    std::size_t count() const { return problems_.size(); }
    const LocusProblem& at(std::size_t l) const { return problems_[l]; }

  private:
    std::vector<LocusProblem> problems_;
};

/// RNG stream seed for locus `l` within an E-step seeded with `emSeed`.
/// Locus 0 keeps `emSeed` itself so single-locus runs reproduce the
/// pre-dataset pipeline bitwise; later loci stride by a large odd constant
/// (their chains then decorrelate through SplitMix64 as usual).
inline std::uint64_t locusStreamSeed(std::uint64_t emSeed, std::size_t locus) {
    return emSeed + static_cast<std::uint64_t>(locus) * 0xD1B54A32D192ED03ull;
}

/// The pooled M-step curve: sum of independent per-locus Eq. 26 curves,
/// each evaluated at its locus's effective theta.
class PooledRelativeLikelihood final : public ThetaLikelihood {
  public:
    struct LocusTerm {
        RelativeLikelihood rl;      ///< per-locus curve (driving theta_l = mu_l * theta0)
        double mutationScale = 1.0; ///< mu_l
        std::string name;
    };

    explicit PooledRelativeLikelihood(std::vector<LocusTerm> loci);

    /// sum_l log L_l(mu_l * theta).
    double logL(double theta, ThreadPool* pool = nullptr) const override;

    std::size_t locusCount() const { return loci_.size(); }
    const LocusTerm& locusTerm(std::size_t l) const { return loci_[l]; }

    /// Samples summed over loci.
    std::size_t sampleCount() const;

  private:
    std::vector<LocusTerm> loci_;
};

}  // namespace mpcgs
