#include "core/supervisor.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <thread>

#include "mcmc/checkpoint.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

/// The one async-signal-safe cell SIGTERM/SIGINT are allowed to touch.
/// Process-wide by necessity; a RunSupervisor resets it on destruction so
/// back-to-back supervised runs (tests) start clean.
volatile std::sig_atomic_t gSignal = 0;

extern "C" void onStopSignal(int sig) { gSignal = sig; }

}  // namespace

RunSupervisor::RunSupervisor() : RunSupervisor(Config()) {}

RunSupervisor::RunSupervisor(Config cfg)
    : cfg_(cfg), start_(std::chrono::steady_clock::now()) {
    if (cfg_.handleSignals) {
#if defined(__unix__) || defined(__APPLE__)
        struct sigaction sa {};
        sa.sa_handler = onStopSignal;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see the stop
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
#else
        std::signal(SIGTERM, onStopSignal);
        std::signal(SIGINT, onStopSignal);
#endif
        signalsInstalled_ = true;
    }
}

RunSupervisor::~RunSupervisor() {
    if (signalsInstalled_) {
#if defined(__unix__) || defined(__APPLE__)
        struct sigaction sa {};
        sa.sa_handler = SIG_DFL;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
#else
        std::signal(SIGTERM, SIG_DFL);
        std::signal(SIGINT, SIG_DFL);
#endif
    }
    gSignal = 0;
}

bool RunSupervisor::stopRequested() const {
    if (stopCause_.load(std::memory_order_relaxed) != 0) return true;
    if (gSignal != 0) {
        signum_.store(static_cast<int>(gSignal), std::memory_order_relaxed);
        stopCause_.store(1, std::memory_order_relaxed);
        return true;
    }
    if (cfg_.maxWallSeconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                .count();
        if (elapsed >= cfg_.maxWallSeconds) {
            stopCause_.store(2, std::memory_order_relaxed);
            return true;
        }
    }
    if (MPCGS_FAILPOINT("supervisor.stop").fired()) {
        stopCause_.store(3, std::memory_order_relaxed);
        return true;
    }
    return false;
}

std::string RunSupervisor::stopReason() const {
    switch (stopCause_.load(std::memory_order_relaxed)) {
        case 1:
            return signum_.load(std::memory_order_relaxed) == SIGINT ? "SIGINT"
                                                                     : "SIGTERM";
        case 2: {
            char buf[64];
            std::snprintf(buf, sizeof buf, "wall-time deadline (%gs)",
                          cfg_.maxWallSeconds);
            return buf;
        }
        case 3:
            return "injected stop (fail point supervisor.stop)";
        default:
            return "";
    }
}

void RunSupervisor::writeCheckpointWithRetry(
    const std::function<void()>& write) const {
    double backoffMs = cfg_.backoffInitialMs;
    for (int attempt = 0;; ++attempt) {
        try {
            write();
            return;
        } catch (const CheckpointError& e) {
            if (attempt >= cfg_.checkpointRetries) throw;
            std::fprintf(stderr,
                         "mpcgs: warning: checkpoint write failed (%s); retrying in "
                         "%.0f ms (attempt %d of %d)\n",
                         e.what(), backoffMs, attempt + 1, cfg_.checkpointRetries);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoffMs));
            backoffMs = std::min(backoffMs * 2.0, cfg_.backoffMaxMs);
        }
    }
}

void withCheckpointRetry(const RunSupervisor* supervisor,
                         const std::function<void()>& write) {
    if (supervisor)
        supervisor->writeCheckpointWithRetry(write);
    else
        write();
}

int exitCodeFor(const std::exception& e) {
    // Order matters where types nest: ResumeError derives from
    // CheckpointError, so the more specific cast runs first.
    if (dynamic_cast<const InterruptedError*>(&e)) return kExitInterrupted;
    if (dynamic_cast<const NumericError*>(&e)) return kExitNumericFault;
    if (dynamic_cast<const ResumeError*>(&e)) return kExitResumeFailed;
    if (dynamic_cast<const CheckpointError*>(&e)) return kExitIoFault;
    if (dynamic_cast<const IoError*>(&e)) return kExitIoFault;
    if (dynamic_cast<const ParseError*>(&e)) return kExitUsage;
    if (dynamic_cast<const ConfigError*>(&e)) return kExitUsage;
    return kExitFailure;
}

}  // namespace mpcgs
