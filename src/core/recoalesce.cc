#include "core/recoalesce.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace mpcgs {

LineageIndex::LineageIndex(const Genealogy& g, NodeId root) : g_(g), root_(root) {
    // Sweep construction: every branch [t_w, t_parent(w)) contributes a +1
    // at its lower end and a -1 at its upper end; the root lineage is +1 at
    // t_root with no matching -1 (it extends to infinity). Prefix sums over
    // the sorted distinct event times give the crossing count per segment
    // in O(n log n).
    std::vector<std::pair<double, int>> events;
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const TreeNode& nd = g_.node(id);
        events.emplace_back(nd.time, +1);
        if (id != root_) events.emplace_back(g_.node(nd.parent).time, -1);
        for (const NodeId c : nd.child)
            if (c != kNoNode) stack.push_back(c);
    }
    std::sort(events.begin(), events.end());

    boundaries_.reserve(events.size());
    count_.reserve(events.size());
    int running = 0;
    for (std::size_t i = 0; i < events.size();) {
        const double t = events[i].first;
        while (i < events.size() && events[i].first == t) {
            running += events[i].second;
            ++i;
        }
        boundaries_.push_back(t);
        count_.push_back(running);
    }
}

int LineageIndex::crossingCount(double t) const {
    if (boundaries_.empty() || t < boundaries_.front()) return 0;
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
    return count_[static_cast<std::size_t>(it - boundaries_.begin() - 1)];
}

std::vector<NodeId> LineageIndex::crossingNodes(double t) const {
    std::vector<NodeId> out;
    std::vector<NodeId> walk{root_};
    while (!walk.empty()) {
        const NodeId id = walk.back();
        walk.pop_back();
        const TreeNode& nd = g_.node(id);
        if (id == root_) {
            if (t >= nd.time) out.push_back(id);
        } else if (nd.time <= t && t < g_.node(nd.parent).time) {
            out.push_back(id);
        }
        for (const NodeId c : nd.child)
            if (c != kNoNode) walk.push_back(c);
    }
    return out;
}

double LineageIndex::integrateCount(double a, double b) const {
    require(b >= a, "integrateCount: inverted bounds");
    double acc = 0.0;
    for (std::size_t i = 0; i < boundaries_.size(); ++i) {
        const double lo = std::max(a, boundaries_[i]);
        const double hi = (i + 1 < boundaries_.size())
                              ? std::min(b, boundaries_[i + 1])
                              : b;  // final segment extends to infinity
        if (hi > lo) acc += static_cast<double>(count_[i]) * (hi - lo);
    }
    return acc;
}

double LineageIndex::sampleAttachTime(double start, double theta, Rng& rng) const {
    require(theta > 0.0, "sampleAttachTime: theta must be positive");
    // Piecewise-constant hazard 2 m(t) / theta; walk segments, drawing one
    // exponential per segment.
    double t = start;
    for (std::size_t i = 0; i < boundaries_.size(); ++i) {
        const double segEnd = (i + 1 < boundaries_.size())
                                  ? boundaries_[i + 1]
                                  : std::numeric_limits<double>::infinity();
        if (segEnd <= t) continue;
        const int m = count_[i];
        if (t < boundaries_[i]) t = boundaries_[i];
        if (m <= 0) {
            t = segEnd;
            continue;
        }
        const double wait = rng.exponential(2.0 * m / theta);
        if (t + wait < segEnd) return t + wait;
        t = segEnd;
    }
    // Unreachable: the last segment has m == 1 and infinite extent, so the
    // exponential above always lands.
    require(false, "sampleAttachTime: fell off the lineage index");
    return t;
}

double LineageIndex::logAttachDensity(double start, double s, double theta) const {
    require(theta > 0.0, "logAttachDensity: theta must be positive");
    if (s < start) return -std::numeric_limits<double>::infinity();
    return std::log(2.0 / theta) - (2.0 / theta) * integrateCount(start, s);
}

RecoalesceProposal proposeRecoalesce(const Genealogy& g, double theta, Rng& rng) {
    if (theta <= 0.0) throw ConfigError("proposeRecoalesce: theta must be positive");

    Genealogy work = g;
    const int nodes = work.nodeCount();

    // Uniform non-root target v.
    NodeId v;
    do {
        v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (v == work.root());

    const NodeId p = work.node(v).parent;
    const NodeId a = work.node(p).parent;  // may be kNoNode (p is the root)
    const double tOld = work.node(p).time;

    // Dissolve p: sibling reconnects to the grandparent (or becomes the
    // component root when p was the root).
    const NodeId sib = work.sibling(v);
    work.unlink(v);
    work.unlink(sib);
    if (a != kNoNode) {
        work.unlink(p);
        work.link(a, sib);
    }
    NodeId componentRoot = (a == kNoNode) ? sib : work.root();
    if (a == kNoNode) work.setRoot(sib);

    // Both directional densities are measured on the same detached
    // structure.
    const double tv = work.node(v).time;
    const LineageIndex index(work, componentRoot);
    const double logReverse = index.logAttachDensity(tv, tOld, theta);

    const double s = index.sampleAttachTime(tv, theta, rng);
    const double logForward = index.logAttachDensity(tv, s, theta);

    // Uniform choice among the lineages crossing s.
    const auto crossing = index.crossingNodes(s);
    require(!crossing.empty(), "proposeRecoalesce: no lineage at attachment time");
    const NodeId w = crossing[static_cast<std::size_t>(rng.below(crossing.size()))];

    // Re-insert p at time s above w (or as the new root when w is the
    // component root and s lies above it).
    work.node(p).time = s;
    if (w == componentRoot && s >= work.node(componentRoot).time &&
        work.node(w).parent == kNoNode) {
        work.link(p, w);
        work.link(p, v);
        work.setRoot(p);
    } else {
        const NodeId u = work.node(w).parent;
        require(u != kNoNode, "proposeRecoalesce: attachment branch has no parent");
        work.unlink(w);
        work.link(u, p);
        work.link(p, w);
        work.link(p, v);
    }

    return RecoalesceProposal{std::move(work), logForward, logReverse, v, p};
}

}  // namespace mpcgs
