// Single-lineage recoalescence — the proposal move of the production
// LAMARC sampler (Kuhner-Yamato-Felsenstein 1995), used here as the serial
// Metropolis-Hastings baseline the paper benchmarks against (§4.2).
//
// The move: pick a uniform random non-root node v, detach the subtree
// rooted at v, dissolve v's parent (reconnecting v's sibling to its
// grandparent), then trace v's lineage backward in time from t_v letting it
// coalesce with each remaining ("inactive") lineage at the Kingman pair
// rate 2/theta. Above the remaining root the lineage races only the root
// lineage, so re-attachment is guaranteed. The proposal density is exactly
// the conditional coalescent prior of the attachment, so the MH ratio
// collapses to the data-likelihood ratio of Eq. 28; both directional
// densities are nevertheless computed explicitly and used in the full
// Hastings ratio, making the sampler robust by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "phylo/tree.h"
#include "rng/rng.h"

namespace mpcgs {

/// Outcome of one recoalescence proposal.
struct RecoalesceProposal {
    Genealogy state;      ///< proposed genealogy
    double logForward;    ///< log q(G -> G') given the chosen target
    double logReverse;    ///< log q(G' -> G) given the same target
    NodeId target;        ///< the detached node v
    NodeId rebuiltParent; ///< the re-created coalescent node (v's new parent)
};

/// Draw one proposal from `g` under `theta`. Throws ConfigError for
/// non-positive theta.
RecoalesceProposal proposeRecoalesce(const Genealogy& g, double theta, Rng& rng);

/// Piecewise-constant index of the lineages of a partial genealogy that an
/// active lineage can coalesce with. Exposed for tests; built internally by
/// proposeRecoalesce after the target subtree and its parent are detached.
class LineageIndex {
  public:
    /// Index the structure reachable from `root` in `g` (arena may contain
    /// detached nodes; only the reachable component counts). The root
    /// lineage extends to +infinity.
    LineageIndex(const Genealogy& g, NodeId root);

    /// Number of lineages crossing backward time t.
    int crossingCount(double t) const;

    /// Nodes whose parent branch crosses t (the root node represents the
    /// semi-infinite root lineage).
    std::vector<NodeId> crossingNodes(double t) const;

    /// Integral of the crossing count from a to b (a <= b).
    double integrateCount(double a, double b) const;

    /// Sample an attachment: starting at `start`, wait for an exponential
    /// event with total hazard 2*m(t)/theta. Returns the attachment time.
    double sampleAttachTime(double start, double theta, Rng& rng) const;

    /// log density of attaching to one specific lineage at time s >= start:
    /// log(2/theta) - (2/theta) * integral_start^s m(u) du.
    double logAttachDensity(double start, double s, double theta) const;

  private:
    const Genealogy& g_;
    NodeId root_;
    std::vector<double> boundaries_;  ///< sorted node times (distinct)
    std::vector<int> count_;          ///< crossing count in [boundaries_[i], boundaries_[i+1])
};

}  // namespace mpcgs
