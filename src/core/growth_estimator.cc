#include "core/growth_estimator.h"

#include <cmath>

#include "core/driver.h"
#include "core/locus_problem.h"
#include "core/neighborhood.h"
#include "mcmc/gmh.h"
#include "par/kernel.h"
#include "util/error.h"
#include "util/timer.h"

namespace mpcgs {

GrowthRelativeLikelihood::GrowthRelativeLikelihood(
    std::vector<std::vector<CoalInterval>> samples, GrowthParams driving)
    : samples_(std::move(samples)), driving_(driving) {
    require(!samples_.empty(), "GrowthRelativeLikelihood: no samples");
    logPriorAtDriving_.reserve(samples_.size());
    for (const auto& ivs : samples_)
        logPriorAtDriving_.push_back(
            logGrowthCoalescentPrior(std::span<const CoalInterval>(ivs), driving_));
}

double GrowthRelativeLikelihood::logL(const GrowthParams& p, ThreadPool* pool) const {
    require(p.theta > 0.0, "GrowthRelativeLikelihood: theta must be positive");
    std::vector<double> terms(samples_.size());
    forEachIndex(pool, samples_.size(), [&](std::size_t i) {
        terms[i] = logGrowthCoalescentPrior(std::span<const CoalInterval>(samples_[i]), p) -
                   logPriorAtDriving_[i];
    });
    return blockReduceLogSumExp(pool, terms, 256) -
           std::log(static_cast<double>(samples_.size()));
}

PooledGrowthRelativeLikelihood::PooledGrowthRelativeLikelihood(std::vector<LocusTerm> loci)
    : loci_(std::move(loci)) {
    require(!loci_.empty(), "PooledGrowthRelativeLikelihood: no loci");
    for (const LocusTerm& t : loci_)
        require(t.mutationScale > 0.0,
                "PooledGrowthRelativeLikelihood: mutation scale must be positive");
}

double PooledGrowthRelativeLikelihood::logL(const GrowthParams& p, ThreadPool* pool) const {
    double sum = 0.0;
    for (const LocusTerm& t : loci_)
        sum += t.rl.logL(GrowthParams{p.theta * t.mutationScale, p.growth}, pool);
    return sum;
}

namespace {

/// Golden-section maximization of f over [lo, hi].
template <class F>
double goldenMax(F&& f, double lo, double hi, double tol) {
    const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
    double a = lo, b = hi;
    double x1 = b - phi * (b - a);
    double x2 = a + phi * (b - a);
    double f1 = f(x1), f2 = f(x2);
    int guard = 0;
    while (b - a > tol && ++guard < 300) {
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + phi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - phi * (b - a);
            f1 = f(x1);
        }
    }
    return 0.5 * (a + b);
}

}  // namespace

GrowthMleResult maximizeGrowthParams(const GrowthLikelihood& rl, GrowthParams start,
                                     double growthLo, double growthHi, ThreadPool* pool) {
    GrowthMleResult out;
    GrowthParams cur = start;
    double curLogL = rl.logL(cur, pool);
    for (int sweep = 0; sweep < 30; ++sweep) {
        ++out.sweeps;
        // Theta sweep in log space around the current value.
        const double logTheta = goldenMax(
            [&](double lt) {
                return rl.logL(GrowthParams{std::exp(lt), cur.growth}, pool);
            },
            std::log(cur.theta) - 3.0, std::log(cur.theta) + 3.0, 1e-7);
        cur.theta = std::exp(logTheta);
        // Growth sweep on the bounded interval.
        cur.growth = goldenMax(
            [&](double g) { return rl.logL(GrowthParams{cur.theta, g}, pool); }, growthLo,
            growthHi, 1e-7);
        const double next = rl.logL(cur, pool);
        if (next - curLogL < 1e-10) {
            curLogL = next;
            out.converged = true;
            break;
        }
        curLogL = next;
    }
    out.params = cur;
    out.logL = curLogL;
    return out;
}

namespace {

/// GMH problem for the growth posterior: constant-size proposal kernel,
/// growth-aware target density.
class GrowthGenealogyProblem {
  public:
    using State = Genealogy;
    using Region = NeighborhoodRegion;

    GrowthGenealogyProblem(const DataLikelihood& lik, GrowthParams p) : lik_(lik), p_(p) {}

    double logPosterior(const State& g) const {
        return lik_.logLikelihood(g) + logGrowthCoalescentPrior(g, p_);
    }
    Region makeRegion(const State& s, Rng& rng) const {
        return makeNeighborhoodRegion(s, p_.theta, rng);
    }
    State proposeInRegion(const Region& r, Rng& rng) const {
        return proposeInNeighborhood(r, rng);
    }
    double logProposalDensity(const Region& r, const State& s) const {
        return logNeighborhoodDensity(r, s);
    }

  private:
    const DataLikelihood& lik_;
    GrowthParams p_;
};

}  // namespace

GrowthEstimateResult estimateThetaAndGrowth(const Dataset& dataset,
                                            const GrowthEstimateOptions& opts,
                                            ThreadPool* pool) {
    if (opts.driving.theta <= 0.0)
        throw ConfigError("estimateThetaAndGrowth: driving theta must be positive");
    dataset.validate();
    for (const Locus& locus : dataset.loci())
        if (locus.alignment.sequenceCount() < 3)
            throw ConfigError("estimateThetaAndGrowth: locus '" + locus.name +
                              "' needs at least 3 sequences (GMH)");

    Timer total;
    const std::size_t L = dataset.locusCount();
    const LocusLikelihoods liks(dataset, "F81");

    GrowthEstimateResult result;
    GrowthParams driving = opts.driving;
    std::vector<Genealogy> current;
    current.reserve(L);
    for (const Locus& locus : dataset.loci())
        current.push_back(
            initialGenealogy(locus.alignment, driving.theta * locus.mutationScale));

    for (std::size_t em = 0; em < opts.emIterations; ++em) {
        result.history.push_back(driving);
        const std::uint64_t emSeed = opts.seed + em * 0x9E3779B97F4A7C15ull;

        // E-step: one GMH chain set per locus, run in locus order. Each
        // locus's sampler parallelizes its proposal fan-out on the pool, so
        // the pool stays busy without nesting parallel sections.
        std::vector<PooledGrowthRelativeLikelihood::LocusTerm> terms;
        terms.reserve(L);
        for (std::size_t l = 0; l < L; ++l) {
            const Locus& locus = dataset.locus(l);
            const GrowthParams locusDriving{driving.theta * locus.mutationScale,
                                            driving.growth};
            const GrowthGenealogyProblem problem(liks.at(l), locusDriving);
            GmhOptions gopt;
            gopt.numProposals = opts.gmhProposals;
            gopt.samplesPerIteration = opts.gmhProposals;
            gopt.seed = locusStreamSeed(emSeed, l);
            GmhSampler<GrowthGenealogyProblem> sampler(problem, gopt, pool);

            const std::size_t iters = (opts.samplesPerIteration + gopt.samplesPerIteration - 1) /
                                      gopt.samplesPerIteration;
            std::vector<std::vector<CoalInterval>> samples;
            samples.reserve(iters * gopt.samplesPerIteration);
            current[l] = sampler.run(std::move(current[l]), iters / 10 + 1, iters,
                                     [&](const Genealogy& g) { samples.push_back(g.intervals()); });
            terms.push_back({GrowthRelativeLikelihood(std::move(samples), locusDriving),
                             locus.mutationScale, locus.name});
        }

        // Pooled M-step over sum_l log L_l(mu_l theta, g).
        const PooledGrowthRelativeLikelihood rl(std::move(terms));
        const GrowthMleResult mle =
            maximizeGrowthParams(rl, driving, opts.growthLo, opts.growthHi, pool);
        driving = mle.params;
    }

    result.params = driving;
    result.seconds = total.seconds();
    return result;
}

GrowthEstimateResult estimateThetaAndGrowth(const Alignment& aln,
                                            const GrowthEstimateOptions& opts,
                                            ThreadPool* pool) {
    return estimateThetaAndGrowth(Dataset::single(aln), opts, pool);
}

}  // namespace mpcgs
