// Serial Metropolis-Hastings with incremental likelihood updates — the
// production-LAMARC evaluation strategy. The recoalescence move touches a
// handful of nodes, so only the dirty path to the root is re-pruned
// (LikelihoodCache); on rejection the cache is restored by re-evaluating
// the same dirty path on the unchanged genealogy.
//
// This is the CPU-optimal baseline the paper's GPU kernel deliberately
// abandons ("computationally more efficient to simply recalculate the
// likelihood of every node", §5.2.2); bench/speedup_sequences_fig15
// reports speedups against both baselines.
#pragma once

#include <cstdint>

#include "coalescent/prior.h"
#include "core/recoalesce.h"
#include "lik/felsenstein.h"
#include "rng/mt19937.h"

namespace mpcgs {

class CachedMhSampler {
  public:
    /// `pool` (optional) parallelizes the cached likelihood evaluations
    /// over site-pattern blocks — the paper's one-thread-per-site mapping
    /// applied to the incremental CPU path. Results are identical to the
    /// serial ones for any pool width.
    CachedMhSampler(const DataLikelihood& lik, double theta, Genealogy init,
                    std::uint64_t seed, ThreadPool* pool = nullptr);

    /// As above with an explicitly derived RNG stream (sampler runtime:
    /// per-chain SplitMix64 streams).
    CachedMhSampler(const DataLikelihood& lik, double theta, Genealogy init,
                    Mt19937 rng, ThreadPool* pool = nullptr);

    /// One MH transition with dirty-path likelihood evaluation.
    bool step();

    template <class Sink>
    void run(std::size_t burnIn, std::size_t samples, Sink&& sink) {
        for (std::size_t i = 0; i < burnIn; ++i) step();
        for (std::size_t i = 0; i < samples; ++i) {
            step();
            sink(current_);
        }
    }

    const Genealogy& current() const { return current_; }
    /// Cached log P(D|G) of the current state (exposed for coherence tests).
    double currentDataLogLik() const { return logLik_; }
    double currentLogPosterior() const {
        return logLik_ + logCoalescentPrior(current_, theta_);
    }
    double acceptanceRate() const {
        return steps_ == 0 ? 0.0 : static_cast<double>(accepted_) / static_cast<double>(steps_);
    }
    std::size_t steps() const { return steps_; }
    std::size_t acceptedCount() const { return accepted_; }

    /// RNG stream access for checkpointing.
    Mt19937& rng() { return rng_; }
    const Mt19937& rng() const { return rng_; }

    /// Restore a snapshotted chain: the partials arena is re-primed with a
    /// full evaluation of `g` (clean-node partials are a pure function of
    /// the subtree, so subsequent dirty-path evaluations continue bitwise),
    /// while `logLik` restores the incrementally maintained total exactly
    /// as the interrupted run carried it.
    void restore(Genealogy g, double logLik, std::size_t steps, std::size_t accepted);

  private:
    const DataLikelihood& lik_;
    double theta_;
    ThreadPool* pool_;
    LikelihoodCache cache_;
    Genealogy current_;
    double logLik_;
    Mt19937 rng_;
    std::size_t steps_ = 0;
    std::size_t accepted_ = 0;
};

}  // namespace mpcgs
