#include "core/cached_mh.h"

#include <cmath>

namespace mpcgs {

CachedMhSampler::CachedMhSampler(const DataLikelihood& lik, double theta, Genealogy init,
                                 std::uint64_t seed, ThreadPool* pool)
    : CachedMhSampler(lik, theta, std::move(init),
                      Mt19937(static_cast<std::uint32_t>(seed ^ (seed >> 32))), pool) {}

CachedMhSampler::CachedMhSampler(const DataLikelihood& lik, double theta, Genealogy init,
                                 Mt19937 rng, ThreadPool* pool)
    : lik_(lik),
      theta_(theta),
      pool_(pool),
      cache_(lik),
      current_(std::move(init)),
      logLik_(cache_.evaluate(current_, pool)),
      rng_(std::move(rng)) {}

void CachedMhSampler::restore(Genealogy g, double logLik, std::size_t steps,
                              std::size_t accepted) {
    current_ = std::move(g);
    cache_.evaluate(current_, pool_);
    logLik_ = logLik;
    steps_ = steps;
    accepted_ = accepted;
}

bool CachedMhSampler::step() {
    // The old sibling's branch changes when its parent dissolves; record it
    // before proposing.
    auto prop = proposeRecoalesce(current_, theta_, rng_);
    const NodeId v = prop.target;
    const NodeId p = prop.rebuiltParent;
    const NodeId oldSib = current_.sibling(v);
    const NodeId newSib = prop.state.sibling(v);

    // Every node whose child set or child branch length differs between the
    // two trees is covered by these seeds plus their ancestors.
    const std::vector<NodeId> seeds{v, p, oldSib, newSib};

    const double newLik = cache_.evaluateDirty(prop.state, seeds, pool_);
    const double logR = (newLik + logCoalescentPrior(prop.state, theta_)) -
                        (logLik_ + logCoalescentPrior(current_, theta_)) +
                        prop.logReverse - prop.logForward;
    ++steps_;
    if (logR >= 0.0 || std::log(rng_.uniformPos()) < logR) {
        current_ = std::move(prop.state);
        logLik_ = newLik;
        ++accepted_;
        return true;
    }
    // Rejected: re-prune the same dirty path on the unchanged genealogy to
    // restore the cache (the overwritten nodes are exactly the seeds'
    // ancestor closure, which the old tree's closure covers).
    cache_.evaluateDirty(current_, seeds, pool_);
    return false;
}

}  // namespace mpcgs
