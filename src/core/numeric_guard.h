// Numeric guardrails at the sampler/SMC boundary.
//
// A non-finite log-posterior, importance weight, or marginal-likelihood
// estimate is never a recoverable state for an MCMC or SMC run — but a
// bare "nan" exception is useless for diagnosis. These guards dump the
// offending state (which boundary, theta, seed, tick, chain/particle,
// genealogy digest) to a diagnostic file first, then raise NumericError,
// which the tools map to kExitNumericFault. All guards run in serial
// sections only (after a parallel region completes), so the dump reflects
// one consistent state and injection via the numeric fail points
// (mcmc.logpost, smc.weight, smc.collapse, pmmh.logz) stays
// deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"

namespace mpcgs {

class Genealogy;

/// Everything the dump file records about one numeric fault.
struct NumericFaultContext {
    std::string where;        ///< boundary name, e.g. "pmmh.logz"
    double value = 0.0;       ///< the offending value
    double theta = 0.0;       ///< driving theta at the fault
    std::uint64_t seed = 0;   ///< run seed (reproduction handle)
    std::uint64_t tick = 0;   ///< tick / event index at the fault
    std::uint32_t chain = 0;  ///< chain or particle-slot index
    std::string genealogy;    ///< genealogySummary() of the offending tree
    std::string detail;       ///< free-form extra diagnostic lines
};

/// One-line structural digest of a genealogy (tip count, root height,
/// total branch length) — enough to correlate a fault with traces without
/// serializing the whole tree.
std::string genealogySummary(const Genealogy& g);

/// Write `ctx` to a diagnostic file in $MPCGS_FAULT_DIR (or the working
/// directory) and throw NumericError naming that file. Never returns.
[[noreturn]] void raiseNumericFault(const NumericFaultContext& ctx);

/// The guardrail itself: no-op when `ctx.value` is finite, otherwise dump
/// and raise.
void guardFinite(const NumericFaultContext& ctx);

}  // namespace mpcgs
