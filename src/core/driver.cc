#include "core/driver.h"

#include <cmath>
#include <memory>
#include <utility>

#include "mcmc/checkpoint.h"
#include "phylo/upgma.h"
#include "seq/distance.h"
#include "seq/subst_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace mpcgs {
namespace {

std::unique_ptr<SubstModel> makeModel(const std::string& name, const Alignment& aln) {
    const BaseFreqs pi = aln.baseFrequencies();
    if (name == "F81") return std::make_unique<F81Model>(pi);
    if (name == "JC69") return makeJc69();
    if (name == "HKY85") return makeHky85(2.0, pi);
    if (name == "F84") return makeF84(2.0, pi);
    throw ConfigError("unknown substitution model '" + name + "'");
}

SamplerSpec specFor(const MpcgsOptions& opts, std::uint64_t seed) {
    SamplerSpec s;
    s.strategy = opts.strategy;
    s.seed = seed;
    s.cachedBaseline = opts.cachedBaseline;
    s.gmhProposals = opts.gmhProposals;
    s.gmhSamplesPerSet = opts.gmhSamplesPerSet;
    s.chains = opts.chains;
    s.temperatures = opts.temperatures;
    return s;
}

struct RunGeometry {
    std::size_t burnTicks = 0;
    std::size_t capTicks = 0;
};

/// Tick budgets per strategy. A tick is the strategy's natural unit (MH
/// step, GMH proposal set, multi-chain round, MC^3 sweep); the budgets
/// reproduce the sample counts of the per-strategy glue this runtime
/// replaced: ceil(M / samplesPerTick) sampling ticks, burn-in as the
/// configured permille of the strategy's serial step count.
RunGeometry geometryFor(const MpcgsOptions& opts) {
    RunGeometry g;
    switch (opts.strategy) {
        case Strategy::Gmh: {
            const std::size_t sampleIters =
                (opts.samplesPerIteration + opts.gmhSamplesPerSet - 1) / opts.gmhSamplesPerSet;
            g.capTicks = sampleIters;
            g.burnTicks = (sampleIters * opts.burnInFraction1000 + 999) / 1000;
            break;
        }
        case Strategy::SerialMh:
        case Strategy::HeatedMh:
            g.capTicks = opts.samplesPerIteration;
            g.burnTicks = (opts.samplesPerIteration * opts.burnInFraction1000 + 999) / 1000;
            break;
        case Strategy::MultiChain:
            g.capTicks = (opts.samplesPerIteration + opts.chains - 1) / opts.chains;
            g.burnTicks = (opts.samplesPerIteration * opts.burnInFraction1000 + 999) / 1000;
            break;
    }
    return g;
}

std::uint64_t emSeed(const MpcgsOptions& opts, std::size_t em) {
    return opts.seed + em * 0x632BE59BD9B4E019ull;
}

// --- checkpoint layout -------------------------------------------------
// fingerprint | emIndex theta | history | warm genealogy | phase
// (0 = iteration start, 1 = mid-iteration: progress + sampler + sinks).
// emIterations is deliberately NOT part of the fingerprint: a resumed run
// may extend the EM horizon of the interrupted one.

void writeFingerprint(CheckpointWriter& w, const MpcgsOptions& opts, const Alignment& aln) {
    w.u32(static_cast<std::uint32_t>(opts.strategy));
    w.u64(opts.seed);
    w.u64(opts.samplesPerIteration);
    w.u64(opts.burnInFraction1000);
    w.u64(opts.gmhProposals);
    w.u64(opts.gmhSamplesPerSet);
    w.u64(opts.chains);
    w.doubles(opts.temperatures);
    w.str(opts.substModel);
    w.u32(opts.cachedBaseline ? 1 : 0);
    w.f64(opts.theta0);
    w.f64(opts.stopRhat);
    w.f64(opts.stopEss);
    w.u64(aln.sequenceCount());
    w.u64(aln.length());
}

void checkFingerprint(CheckpointReader& r, const MpcgsOptions& opts, const Alignment& aln) {
    bool ok = true;
    ok &= r.u32() == static_cast<std::uint32_t>(opts.strategy);
    ok &= r.u64() == opts.seed;
    ok &= r.u64() == opts.samplesPerIteration;
    ok &= r.u64() == opts.burnInFraction1000;
    ok &= r.u64() == opts.gmhProposals;
    ok &= r.u64() == opts.gmhSamplesPerSet;
    ok &= r.u64() == opts.chains;
    ok &= r.doubles() == opts.temperatures;
    ok &= r.str() == opts.substModel;
    ok &= r.u32() == (opts.cachedBaseline ? 1u : 0u);
    ok &= r.f64() == opts.theta0;
    ok &= r.f64() == opts.stopRhat;
    ok &= r.f64() == opts.stopEss;
    ok &= r.u64() == aln.sequenceCount();
    ok &= r.u64() == aln.length();
    if (!ok)
        throw ConfigError(
            "resume: checkpoint was written by an incompatible run configuration");
}

void writeHistory(CheckpointWriter& w, const std::vector<EmIterationRecord>& history) {
    w.u64(history.size());
    for (const EmIterationRecord& h : history) {
        w.f64(h.thetaBefore);
        w.f64(h.thetaAfter);
        w.f64(h.logLAtMax);
        w.f64(h.seconds);
        w.f64(h.moveRate);
        w.u64(h.samples);
        w.f64(h.rhat);
        w.f64(h.ess);
        w.u32(h.stoppedEarly ? 1 : 0);
    }
}

std::vector<EmIterationRecord> readHistory(CheckpointReader& r) {
    std::vector<EmIterationRecord> history(r.u64());
    for (EmIterationRecord& h : history) {
        h.thetaBefore = r.f64();
        h.thetaAfter = r.f64();
        h.logLAtMax = r.f64();
        h.seconds = r.f64();
        h.moveRate = r.f64();
        h.samples = r.u64();
        h.rhat = r.f64();
        h.ess = r.f64();
        h.stoppedEarly = r.u32() != 0;
    }
    return history;
}

}  // namespace

Genealogy initialGenealogy(const Alignment& aln, double theta0) {
    if (theta0 <= 0.0) throw ConfigError("initialGenealogy: theta0 must be positive");
    Genealogy g = upgmaTree(hammingMatrix(aln));
    g.setTipNames(aln.names());
    scaleToExpectedHeight(g, theta0);
    return g;
}

MpcgsResult estimateTheta(const Alignment& aln, const MpcgsOptions& opts, ThreadPool* pool) {
    if (opts.theta0 <= 0.0) throw ConfigError("estimateTheta: theta0 must be positive");
    if (opts.emIterations == 0) throw ConfigError("estimateTheta: need >= 1 EM iteration");
    if (opts.samplesPerIteration == 0) throw ConfigError("estimateTheta: need samples");
    if (opts.strategy == Strategy::Gmh && aln.sequenceCount() < 3)
        throw ConfigError("estimateTheta: GMH needs at least 3 sequences");
    if (opts.strategy == Strategy::Gmh && opts.gmhSamplesPerSet == 0)
        throw ConfigError("estimateTheta: GMH needs gmhSamplesPerSet >= 1");
    if (opts.strategy == Strategy::MultiChain && opts.chains == 0)
        throw ConfigError("estimateTheta: MultiChain needs chains >= 1");
    if (opts.resume && opts.checkpointPath.empty())
        throw ConfigError("estimateTheta: resume requires a checkpointPath");

    Timer total;
    const auto model = makeModel(opts.substModel, aln);
    const DataLikelihood lik(aln, *model, opts.compressPatterns);

    MpcgsResult result;
    double theta = opts.theta0;
    Genealogy current = initialGenealogy(aln, theta);
    std::size_t emStart = 0;

    // Mid-iteration resume payload stays open until the iteration's
    // sampler and sinks exist to load into.
    std::unique_ptr<CheckpointReader> resumeReader;
    bool resumeMidIteration = false;
    std::size_t resumeBurnDone = 0;
    std::size_t resumeSampleDone = 0;
    bool resumeStopped = false;

    if (opts.resume) {
        resumeReader = std::make_unique<CheckpointReader>(opts.checkpointPath);
        checkFingerprint(*resumeReader, opts, aln);
        emStart = resumeReader->u64();
        theta = resumeReader->f64();
        result.history = readHistory(*resumeReader);
        for (const EmIterationRecord& h : result.history) result.samplingSeconds += h.seconds;
        current = readGenealogy(*resumeReader);
        if (resumeReader->u32() == 1) {
            resumeMidIteration = true;
            resumeBurnDone = resumeReader->u64();
            resumeSampleDone = resumeReader->u64();
            resumeStopped = resumeReader->u32() != 0;
        } else {
            resumeReader.reset();
        }
        if (emStart >= opts.emIterations)
            throw ConfigError("resume: checkpoint already covers all requested EM iterations");
    }

    const RunGeometry geom = geometryFor(opts);
    std::vector<IntervalSummary> summaries;

    for (std::size_t em = emStart; em < opts.emIterations; ++em) {
        EmIterationRecord rec;
        rec.thetaBefore = theta;

        Timer estep;
        const Genealogy emInit = current;  // warm start, recorded in snapshots
        auto sampler =
            makeSampler(specFor(opts, emSeed(opts, em)), lik, theta, std::move(current), pool);
        SummarySink sink;
        ConvergenceMonitor monitor;

        SamplerRun::Config cfg;
        cfg.burnInTicks = geom.burnTicks;
        cfg.sampleTicks = geom.capTicks;
        cfg.stopping.rhatBelow = opts.stopRhat;
        cfg.stopping.essAtLeast = opts.stopEss;
        cfg.checkpointInterval = opts.checkpointIntervalTicks;
        if (!opts.checkpointPath.empty()) {
            cfg.checkpoint = [&, em](std::size_t burnDone, std::size_t sampleDone,
                                     bool stopped) {
                CheckpointWriter w(opts.checkpointPath);
                writeFingerprint(w, opts, aln);
                w.u64(em);
                w.f64(rec.thetaBefore);
                writeHistory(w, result.history);
                writeGenealogy(w, emInit);
                w.u32(1);  // mid-iteration
                w.u64(burnDone);
                w.u64(sampleDone);
                w.u32(stopped ? 1 : 0);
                sampler->save(w);
                sink.save(w);
                monitor.save(w);
                w.commit();
            };
        }

        SamplerRun run(*sampler, cfg);
        if (resumeMidIteration && em == emStart) {
            sampler->load(*resumeReader);
            sink.load(*resumeReader);
            monitor.load(*resumeReader);
            run.restoreProgress(resumeBurnDone, resumeSampleDone, resumeStopped);
            resumeReader.reset();
        }

        const SamplerRunReport report = run.execute(sink, monitor);
        rec.seconds = estep.seconds();
        result.samplingSeconds += rec.seconds;
        rec.samples = report.samples;
        rec.rhat = report.rhat;
        rec.ess = report.ess;
        rec.stoppedEarly = report.stoppedEarly;
        const SamplerStats stats = sampler->stats();
        rec.moveRate =
            opts.strategy == Strategy::HeatedMh ? stats.swapRate() : stats.moveRate();

        current = sampler->continuation();
        summaries = sink.chainMajor();

        const RelativeLikelihood rl(summaries, theta);
        const MleResult mle = maximizeTheta(rl, theta, pool);
        theta = mle.theta;
        rec.thetaAfter = theta;
        rec.logLAtMax = mle.logL;
        result.history.push_back(rec);

        // EM-boundary snapshot: the next iteration restarts cleanly from
        // here even if the process dies during the M-step bookkeeping.
        if (!opts.checkpointPath.empty() && em + 1 < opts.emIterations) {
            CheckpointWriter w(opts.checkpointPath);
            writeFingerprint(w, opts, aln);
            w.u64(em + 1);
            w.f64(theta);
            writeHistory(w, result.history);
            writeGenealogy(w, current);
            w.u32(0);  // iteration boundary
            w.commit();
        }
    }

    result.theta = theta;
    result.finalSummaries = std::move(summaries);
    result.finalDrivingTheta = result.history.back().thetaBefore;
    result.totalSeconds = total.seconds();
    return result;
}

}  // namespace mpcgs
