#include "core/driver.h"

#include <cmath>

#include "core/cached_mh.h"
#include "mcmc/gmh.h"
#include "mcmc/heated.h"
#include "mcmc/mh.h"
#include "mcmc/multichain.h"
#include "phylo/upgma.h"
#include "seq/distance.h"
#include "seq/subst_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace mpcgs {
namespace {

std::unique_ptr<SubstModel> makeModel(const std::string& name, const Alignment& aln) {
    const BaseFreqs pi = aln.baseFrequencies();
    if (name == "F81") return std::make_unique<F81Model>(pi);
    if (name == "JC69") return makeJc69();
    if (name == "HKY85") return makeHky85(2.0, pi);
    if (name == "F84") return makeF84(2.0, pi);
    throw ConfigError("unknown substitution model '" + name + "'");
}

/// One E-step with the GMH sampler; fills `summaries` and returns the final
/// genealogy (warm start for the next EM iteration).
Genealogy sampleGmh(const DataLikelihood& lik, double theta, Genealogy init,
                    const MpcgsOptions& opts, std::uint64_t seed, ThreadPool* pool,
                    std::vector<IntervalSummary>& summaries, double& moveRate) {
    const GmhGenealogyProblem problem(lik, theta);
    GmhOptions gopt;
    gopt.numProposals = opts.gmhProposals;
    gopt.samplesPerIteration = opts.gmhSamplesPerSet;
    gopt.seed = seed;
    GmhSampler<GmhGenealogyProblem> sampler(problem, gopt, pool);

    const std::size_t sampleIters =
        (opts.samplesPerIteration + gopt.samplesPerIteration - 1) / gopt.samplesPerIteration;
    const std::size_t burnIters =
        (sampleIters * opts.burnInFraction1000 + 999) / 1000;

    summaries.clear();
    summaries.reserve(sampleIters * gopt.samplesPerIteration);
    auto sink = [&](const Genealogy& g) { summaries.push_back(IntervalSummary::fromGenealogy(g)); };
    Genealogy last = sampler.run(std::move(init), burnIters, sampleIters, sink);
    moveRate = sampler.stats().moveRate();
    return last;
}

/// One E-step with the serial MH baseline (full recomputation by default;
/// dirty-path likelihood caching with opts.cachedBaseline, whose pattern
/// blocks run on `pool` when supplied).
Genealogy sampleSerialMh(const DataLikelihood& lik, double theta, Genealogy init,
                         const MpcgsOptions& opts, std::uint64_t seed, ThreadPool* pool,
                         std::vector<IntervalSummary>& summaries, double& moveRate) {
    const std::size_t samples = opts.samplesPerIteration;
    const std::size_t burnIn = (samples * opts.burnInFraction1000 + 999) / 1000;
    summaries.clear();
    summaries.reserve(samples);
    auto sink = [&](const Genealogy& g) {
        summaries.push_back(IntervalSummary::fromGenealogy(g));
    };

    if (opts.cachedBaseline) {
        CachedMhSampler chain(lik, theta, std::move(init), seed, pool);
        chain.run(burnIn, samples, sink);
        moveRate = chain.acceptanceRate();
        return chain.current();
    }
    const MhGenealogyProblem problem(lik, theta);
    MhChain<MhGenealogyProblem> chain(problem, std::move(init), seed);
    chain.run(burnIn, samples, sink);
    moveRate = chain.acceptanceRate();
    return chain.current();
}

/// One E-step with Metropolis-coupled chains: the cold chain is sampled,
/// the heated chains improve mixing through swap moves.
Genealogy sampleHeatedMh(const DataLikelihood& lik, double theta, Genealogy init,
                         const MpcgsOptions& opts, std::uint64_t seed,
                         std::vector<IntervalSummary>& summaries, double& moveRate) {
    const MhGenealogyProblem problem(lik, theta);
    HeatedOptions hopt;
    hopt.temperatures = opts.temperatures;
    hopt.seed = seed;
    HeatedChains<MhGenealogyProblem> chains(problem, std::move(init), hopt);
    const std::size_t samples = opts.samplesPerIteration;
    const std::size_t burnIn = (samples * opts.burnInFraction1000 + 999) / 1000;

    summaries.clear();
    summaries.reserve(samples);
    chains.run(burnIn, samples,
               [&](const Genealogy& g) { summaries.push_back(IntervalSummary::fromGenealogy(g)); });
    moveRate = chains.stats().swapRate();
    return chains.cold();
}

/// One E-step with the aggregated multi-chain baseline (each chain pays the
/// full burn-in, §3).
Genealogy sampleMultiChain(const DataLikelihood& lik, double theta, Genealogy init,
                           const MpcgsOptions& opts, std::uint64_t seed, ThreadPool* pool,
                           std::vector<IntervalSummary>& summaries, double& moveRate) {
    const MhGenealogyProblem problem(lik, theta);
    MultiChainOptions mopt;
    mopt.chains = opts.chains;
    mopt.totalSamples = opts.samplesPerIteration;
    mopt.burnInPerChain = (opts.samplesPerIteration * opts.burnInFraction1000 + 999) / 1000;
    mopt.seed = seed;

    summaries.clear();
    summaries.reserve(opts.samplesPerIteration + opts.chains);
    std::mutex mu;
    const auto acceptance = runMultiChain(
        problem, init, mopt,
        [&](const Genealogy& g) {
            std::lock_guard<std::mutex> lk(mu);
            summaries.push_back(IntervalSummary::fromGenealogy(g));
        },
        pool);
    double acc = 0.0;
    for (const double a : acceptance) acc += a;
    moveRate = acceptance.empty() ? 0.0 : acc / static_cast<double>(acceptance.size());
    return init;  // multi-chain has no single continuing state
}

}  // namespace

Genealogy initialGenealogy(const Alignment& aln, double theta0) {
    if (theta0 <= 0.0) throw ConfigError("initialGenealogy: theta0 must be positive");
    Genealogy g = upgmaTree(hammingMatrix(aln));
    g.setTipNames(aln.names());
    scaleToExpectedHeight(g, theta0);
    return g;
}

MpcgsResult estimateTheta(const Alignment& aln, const MpcgsOptions& opts, ThreadPool* pool) {
    if (opts.theta0 <= 0.0) throw ConfigError("estimateTheta: theta0 must be positive");
    if (opts.emIterations == 0) throw ConfigError("estimateTheta: need >= 1 EM iteration");
    if (opts.samplesPerIteration == 0) throw ConfigError("estimateTheta: need samples");
    if (opts.strategy == Strategy::Gmh && aln.sequenceCount() < 3)
        throw ConfigError("estimateTheta: GMH needs at least 3 sequences");

    Timer total;
    const auto model = makeModel(opts.substModel, aln);
    const DataLikelihood lik(aln, *model, opts.compressPatterns);

    MpcgsResult result;
    double theta = opts.theta0;
    Genealogy current = initialGenealogy(aln, theta);

    std::vector<IntervalSummary> summaries;
    for (std::size_t em = 0; em < opts.emIterations; ++em) {
        EmIterationRecord rec;
        rec.thetaBefore = theta;
        const std::uint64_t seed = opts.seed + em * 0x632BE59BD9B4E019ull;

        Timer estep;
        switch (opts.strategy) {
            case Strategy::Gmh:
                current = sampleGmh(lik, theta, std::move(current), opts, seed, pool, summaries,
                                    rec.moveRate);
                break;
            case Strategy::SerialMh:
                current = sampleSerialMh(lik, theta, std::move(current), opts, seed, pool,
                                         summaries, rec.moveRate);
                break;
            case Strategy::MultiChain:
                current = sampleMultiChain(lik, theta, std::move(current), opts, seed, pool,
                                           summaries, rec.moveRate);
                break;
            case Strategy::HeatedMh:
                current = sampleHeatedMh(lik, theta, std::move(current), opts, seed, summaries,
                                         rec.moveRate);
                break;
        }
        rec.seconds = estep.seconds();
        result.samplingSeconds += rec.seconds;
        rec.samples = summaries.size();

        const RelativeLikelihood rl(summaries, theta);
        const MleResult mle = maximizeTheta(rl, theta, pool);
        theta = mle.theta;
        rec.thetaAfter = theta;
        rec.logLAtMax = mle.logL;
        result.history.push_back(rec);
    }

    result.theta = theta;
    result.finalSummaries = std::move(summaries);
    result.finalDrivingTheta = result.history.back().thetaBefore;
    result.totalSeconds = total.seconds();
    return result;
}

}  // namespace mpcgs
