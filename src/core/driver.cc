#include "core/driver.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "mcmc/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phylo/upgma.h"
#include "seq/distance.h"
#include "util/error.h"
#include "util/timer.h"

namespace mpcgs {
namespace {

SamplerSpec specFor(const MpcgsOptions& opts, std::uint64_t seed) {
    SamplerSpec s;
    s.strategy = opts.strategy;
    s.seed = seed;
    s.cachedBaseline = opts.cachedBaseline;
    s.gmhProposals = opts.gmhProposals;
    s.gmhSamplesPerSet = opts.gmhSamplesPerSet;
    s.chains = opts.chains;
    s.temperatures = opts.temperatures;
    return s;
}

struct RunGeometry {
    std::size_t burnTicks = 0;
    std::size_t capTicks = 0;
};

/// Tick budgets per strategy. A tick is the strategy's natural unit (MH
/// step, GMH proposal set, multi-chain round, MC^3 sweep); the budgets
/// reproduce the sample counts of the per-strategy glue this runtime
/// replaced: ceil(M / samplesPerTick) sampling ticks, burn-in as the
/// configured permille of the strategy's serial step count. In a
/// multi-locus run every locus gets the same budget (samplesPerIteration
/// is per locus).
RunGeometry geometryFor(const MpcgsOptions& opts) {
    RunGeometry g;
    switch (opts.strategy) {
        case Strategy::Gmh: {
            const std::size_t sampleIters =
                (opts.samplesPerIteration + opts.gmhSamplesPerSet - 1) / opts.gmhSamplesPerSet;
            g.capTicks = sampleIters;
            g.burnTicks = (sampleIters * opts.burnInFraction1000 + 999) / 1000;
            break;
        }
        case Strategy::SerialMh:
        case Strategy::HeatedMh:
            g.capTicks = opts.samplesPerIteration;
            g.burnTicks = (opts.samplesPerIteration * opts.burnInFraction1000 + 999) / 1000;
            break;
        case Strategy::MultiChain:
            g.capTicks = (opts.samplesPerIteration + opts.chains - 1) / opts.chains;
            g.burnTicks = (opts.samplesPerIteration * opts.burnInFraction1000 + 999) / 1000;
            break;
    }
    return g;
}

std::uint64_t emSeed(const MpcgsOptions& opts, std::size_t em) {
    return opts.seed + em * 0x632BE59BD9B4E019ull;
}

// --- checkpoint layout -------------------------------------------------
// fingerprint | emIndex theta | history | per-locus warm genealogies |
// phase (0 = iteration start, 1 = mid-iteration: burn progress, per-locus
// sampling progress/stopped latches, then per-locus sampler + sink +
// monitor payloads).
//
// v2 stamps the locus roster (names, shapes, mutation scales) into the
// fingerprint and repeats every per-locus section L times; v1 files are
// the single-locus layout (no roster, one genealogy, one payload) and are
// read back as L = 1. emIterations is deliberately NOT part of the
// fingerprint: a resumed run may extend the EM horizon of the interrupted
// one.

void writeFingerprint(CheckpointWriter& w, const MpcgsOptions& opts, const Dataset& ds) {
    w.u32(static_cast<std::uint32_t>(opts.strategy));
    w.u64(opts.seed);
    w.u64(opts.samplesPerIteration);
    w.u64(opts.burnInFraction1000);
    w.u64(opts.gmhProposals);
    w.u64(opts.gmhSamplesPerSet);
    w.u64(opts.chains);
    w.doubles(opts.temperatures);
    w.str(opts.substModel);
    w.u32(opts.cachedBaseline ? 1 : 0);
    w.f64(opts.theta0);
    w.f64(opts.stopRhat);
    w.f64(opts.stopEss);
    w.u64(ds.locusCount());
    for (const Locus& locus : ds.loci()) {
        w.str(locus.name);
        w.u64(locus.alignment.sequenceCount());
        w.u64(locus.alignment.length());
        w.f64(locus.mutationScale);
    }
}

void checkFingerprint(CheckpointReader& r, const MpcgsOptions& opts, const Dataset& ds) {
    bool ok = true;
    ok &= r.u32() == static_cast<std::uint32_t>(opts.strategy);
    ok &= r.u64() == opts.seed;
    ok &= r.u64() == opts.samplesPerIteration;
    ok &= r.u64() == opts.burnInFraction1000;
    ok &= r.u64() == opts.gmhProposals;
    ok &= r.u64() == opts.gmhSamplesPerSet;
    ok &= r.u64() == opts.chains;
    ok &= r.doubles() == opts.temperatures;
    ok &= r.str() == opts.substModel;
    ok &= r.u32() == (opts.cachedBaseline ? 1u : 0u);
    ok &= r.f64() == opts.theta0;
    ok &= r.f64() == opts.stopRhat;
    ok &= r.f64() == opts.stopEss;
    if (r.version() >= 2) {
        ok &= r.u64() == ds.locusCount();
        if (ok) {
            for (const Locus& locus : ds.loci()) {
                ok &= r.str() == locus.name;
                ok &= r.u64() == locus.alignment.sequenceCount();
                ok &= r.u64() == locus.alignment.length();
                ok &= r.f64() == locus.mutationScale;
            }
        }
    } else {
        // v1: single-locus fingerprint tail (sequence count + length).
        ok &= ds.locusCount() == 1;
        ok &= r.u64() == ds.locus(0).alignment.sequenceCount();
        ok &= r.u64() == ds.locus(0).alignment.length();
        ok &= ds.locus(0).mutationScale == 1.0;
    }
    if (!ok)
        throw ConfigError(
            "resume: checkpoint was written by an incompatible run configuration");
}

void writeHistory(CheckpointWriter& w, const std::vector<EmIterationRecord>& history) {
    w.u64(history.size());
    for (const EmIterationRecord& h : history) {
        w.f64(h.thetaBefore);
        w.f64(h.thetaAfter);
        w.f64(h.logLAtMax);
        w.f64(h.seconds);
        w.f64(h.moveRate);
        w.u64(h.samples);
        w.f64(h.rhat);
        w.f64(h.ess);
        w.u32(h.stoppedEarly ? 1 : 0);
    }
}

std::vector<EmIterationRecord> readHistory(CheckpointReader& r) {
    std::vector<EmIterationRecord> history(r.u64());
    for (EmIterationRecord& h : history) {
        h.thetaBefore = r.f64();
        h.thetaAfter = r.f64();
        h.logLAtMax = r.f64();
        h.seconds = r.f64();
        h.moveRate = r.f64();
        h.samples = r.u64();
        h.rhat = r.f64();
        h.ess = r.f64();
        h.stoppedEarly = r.u32() != 0;
    }
    return history;
}

}  // namespace

void validateOptions(const MpcgsOptions& opts) {
    if (opts.theta0 <= 0.0) throw ConfigError("options: theta0 must be positive");
    if (opts.emIterations == 0) throw ConfigError("options: need >= 1 EM iteration");
    if (opts.samplesPerIteration == 0)
        throw ConfigError("options: need >= 1 sample per EM iteration");
    if (opts.burnInFraction1000 > 1000)
        throw ConfigError("options: burn-in permille must be <= 1000");
    if (opts.gmhProposals == 0) throw ConfigError("options: GMH needs proposals >= 1");
    if (opts.gmhSamplesPerSet == 0)
        throw ConfigError("options: GMH needs gmhSamplesPerSet >= 1");
    if (opts.chains == 0) throw ConfigError("options: MultiChain needs chains >= 1");
    if (opts.temperatures.empty())
        throw ConfigError("options: temperature ladder must not be empty");
    if (opts.temperatures.front() != 1.0)
        throw ConfigError("options: temperature ladder must start at 1.0 (the cold chain)");
    if (opts.resume && opts.checkpointPath.empty())
        throw ConfigError("options: resume requires a checkpointPath");
}

namespace {

/// Which run mode(s) each mode-specific CLI flag belongs to. Flags absent
/// from this table (threads, seed, model, checkpoint/resume, failpoints,
/// ...) apply everywhere and are never rejected.
struct AlgoFlag {
    const char* flag;
    const char* modes;  ///< space-separated applicable modes
};

constexpr AlgoFlag kAlgoFlags[] = {
    {"particles", "smc pmmh"},
    {"resampling", "smc pmmh"},
    {"ess-threshold", "smc pmmh"},
    {"lik-backend", "smc pmmh"},
    {"pmmh-sigma", "pmmh"},
    {"strategy", "mcmc"},
    {"proposals", "mcmc"},
    {"set-samples", "mcmc"},
    {"cached-baseline", "mcmc"},
    {"em", "mcmc structured"},
    {"samples", "mcmc pmmh structured"},
    {"chains", "mcmc pmmh structured"},
    {"curve", "mcmc smc"},
    {"stop-rhat", "mcmc pmmh structured"},
    {"stop-ess", "mcmc pmmh structured"},
    {"mig-init", "structured"},
    {"path-refresh", "structured"},
    {"pop-map", "structured"},
};

bool modeListed(const char* modes, const std::string& mode) {
    const std::string all(modes);
    std::size_t pos = 0;
    while (pos < all.size()) {
        std::size_t end = all.find(' ', pos);
        if (end == std::string::npos) end = all.size();
        if (all.compare(pos, end - pos, mode) == 0) return true;
        pos = end + 1;
    }
    return false;
}

}  // namespace

void validateAlgoFlags(const Options& opts, const std::string& mode) {
    for (const AlgoFlag& af : kAlgoFlags) {
        if (!opts.has(af.flag) || modeListed(af.modes, mode)) continue;
        std::string applicable(af.modes);
        for (std::size_t i = 0; i < applicable.size(); ++i) {
            if (applicable[i] != ' ') continue;
            applicable.replace(i, 1, " | ");
            i += 2;  // step past the insertion so its space isn't re-expanded
        }
        throw ConfigError("--" + std::string(af.flag) + " does not apply to a " + mode +
                          " run (applicable: " + applicable + ")");
    }
}

Genealogy initialGenealogy(const Alignment& aln, double theta0) {
    if (theta0 <= 0.0) throw ConfigError("initialGenealogy: theta0 must be positive");
    Genealogy g = upgmaTree(hammingMatrix(aln));
    g.setTipNames(aln.names());
    scaleToExpectedHeight(g, theta0);
    return g;
}

PooledRelativeLikelihood finalPooledLikelihood(const MpcgsResult& result) {
    std::vector<PooledRelativeLikelihood::LocusTerm> terms;
    terms.reserve(result.loci.size());
    for (const LocusFinal& lf : result.loci)
        terms.push_back({RelativeLikelihood(lf.summaries, lf.drivingTheta),
                         lf.mutationScale, lf.name});
    return PooledRelativeLikelihood(std::move(terms));
}

MpcgsResult estimateTheta(const Dataset& dataset, const MpcgsOptions& opts,
                          ThreadPool* pool) {
    validateOptions(opts);
    dataset.validate();
    const std::size_t L = dataset.locusCount();
    if (opts.strategy == Strategy::Gmh)
        for (const Locus& locus : dataset.loci())
            if (locus.alignment.sequenceCount() < 3)
                throw ConfigError("estimateTheta: GMH needs at least 3 sequences (locus '" +
                                  locus.name + "')");

    Timer total;
    const LocusLikelihoods liks(dataset, opts.substModel, opts.compressPatterns);
    const LocusProblemSet problems(dataset, liks);

    MpcgsResult result;
    double theta = opts.theta0;
    std::vector<Genealogy> current;
    current.reserve(L);
    for (std::size_t l = 0; l < L; ++l)
        current.push_back(initialGenealogy(dataset.locus(l).alignment,
                                           problems.at(l).effectiveTheta(opts.theta0)));
    std::size_t emStart = 0;

    // Mid-iteration resume payload stays open until the iteration's
    // samplers and sinks exist to load into.
    std::unique_ptr<CheckpointReader> resumeReader;
    bool resumeMidIteration = false;
    std::size_t resumeBurnDone = 0;
    std::vector<std::uint64_t> resumeSampleDone(L, 0);
    std::vector<std::uint8_t> resumeStopped(L, 0);

    if (opts.resume) {
        // Any CheckpointError while READING the snapshot context becomes a
        // ResumeError, so callers can fall back to a fresh run; config
        // mismatches (checkFingerprint) stay ConfigError and stay fatal.
        try {
            resumeReader = std::make_unique<CheckpointReader>(
                pickResumeSnapshot(opts.checkpointPath));
            resumeReader->enterSection("fingerprint");
            checkFingerprint(*resumeReader, opts, dataset);
            resumeReader->enterSection("context");
            emStart = resumeReader->u64();
            theta = resumeReader->f64();
            result.history = readHistory(*resumeReader);
            for (const EmIterationRecord& h : result.history)
                result.samplingSeconds += h.seconds;
            for (std::size_t l = 0; l < L; ++l) current[l] = readGenealogy(*resumeReader);
            if (resumeReader->u32() == 1) {
                resumeMidIteration = true;
                resumeBurnDone = resumeReader->u64();
                for (std::size_t l = 0; l < L; ++l) {
                    resumeSampleDone[l] = resumeReader->u64();
                    resumeStopped[l] = resumeReader->u32() != 0 ? 1 : 0;
                }
            } else {
                resumeReader.reset();
            }
        } catch (const CheckpointError& e) {
            throw ResumeError(e.what());
        }
        if (emStart >= opts.emIterations)
            throw ConfigError("resume: checkpoint already covers all requested EM iterations");
    }

    const RunGeometry geom = geometryFor(opts);
    std::vector<LocusFinal> finals(L);

    for (std::size_t em = emStart; em < opts.emIterations; ++em) {
        // EM-boundary stop check: a signal that lands during the M-step is
        // honored before the next E-step allocates anything. The previous
        // iteration's boundary snapshot (when checkpointing) already
        // covers this state.
        if (opts.supervisor && opts.supervisor->stopRequested())
            throw InterruptedError(
                "stop requested at EM iteration boundary (" + std::to_string(em) + ")",
                !opts.checkpointPath.empty() && em > emStart);

        const obs::TraceSpan emSpan("em_iteration", "mcmc");
        EmIterationRecord rec;
        rec.thetaBefore = theta;

        Timer estep;
        const std::vector<Genealogy> emInit = current;  // warm starts, recorded in snapshots
        // One sampler per locus over P(D_l|G_l) * P(G_l | mu_l theta), each
        // with its own SplitMix64-derived stream family. With several loci
        // the loci axis carries the parallelism (samplers run pool-free
        // inside the lockstep rounds); a single locus keeps the pool for
        // its intra-strategy parallel sections, exactly the pre-dataset
        // configuration.
        const std::uint64_t seed = emSeed(opts, em);
        std::vector<std::unique_ptr<Sampler>> samplers;
        samplers.reserve(L);
        for (std::size_t l = 0; l < L; ++l)
            samplers.push_back(makeSampler(specFor(opts, locusStreamSeed(seed, l)),
                                           liks.at(l),
                                           problems.at(l).effectiveTheta(theta),
                                           std::move(current[l]), L == 1 ? pool : nullptr));
        std::vector<SummarySink> sinks(L);
        std::vector<ConvergenceMonitor> monitors(L);

        MultiLocusRun::Config cfg;
        cfg.burnInTicks = geom.burnTicks;
        cfg.sampleTicks = geom.capTicks;
        cfg.stopping.rhatBelow = opts.stopRhat;
        cfg.stopping.essAtLeast = opts.stopEss;
        cfg.checkpointInterval = opts.checkpointIntervalTicks;
        cfg.pool = pool;
        if (opts.supervisor) cfg.stopRequested = opts.supervisor->stopCallback();
        cfg.numeric.enabled = true;
        cfg.numeric.theta = theta;
        cfg.numeric.seed = seed;
        cfg.numeric.phase = "estimateTheta E-step (EM iteration " + std::to_string(em) + ")";
        if (!opts.checkpointPath.empty()) {
            cfg.checkpoint = [&, em](std::size_t burnDone,
                                     std::span<const std::uint64_t> sampleDone,
                                     std::span<const std::uint8_t> stopped) {
                withCheckpointRetry(opts.supervisor, [&] {
                    CheckpointWriter w(opts.checkpointPath);
                    w.beginSection("fingerprint");
                    writeFingerprint(w, opts, dataset);
                    w.beginSection("context");
                    w.u64(em);
                    w.f64(rec.thetaBefore);
                    writeHistory(w, result.history);
                    for (const Genealogy& g : emInit) writeGenealogy(w, g);
                    w.u32(1);  // mid-iteration
                    w.u64(burnDone);
                    for (std::size_t l = 0; l < L; ++l) {
                        w.u64(sampleDone[l]);
                        w.u32(stopped[l] ? 1 : 0);
                    }
                    for (std::size_t l = 0; l < L; ++l) {
                        w.beginSection("sampler." + std::to_string(l));
                        samplers[l]->save(w);
                    }
                    for (std::size_t l = 0; l < L; ++l) {
                        w.beginSection("sink." + std::to_string(l));
                        sinks[l].save(w);
                    }
                    for (std::size_t l = 0; l < L; ++l) {
                        w.beginSection("monitor." + std::to_string(l));
                        monitors[l].save(w);
                    }
                    w.commit();
                });
            };
        }

        std::vector<LocusSlot> slots(L);
        for (std::size_t l = 0; l < L; ++l)
            slots[l] = LocusSlot{samplers[l].get(), &sinks[l], &monitors[l]};
        MultiLocusRun run(std::move(slots), cfg);
        if (resumeMidIteration && em == emStart) {
            try {
                if (resumeReader->version() >= 2) {
                    for (std::size_t l = 0; l < L; ++l) {
                        resumeReader->enterSection("sampler." + std::to_string(l));
                        samplers[l]->load(*resumeReader);
                    }
                    for (std::size_t l = 0; l < L; ++l) {
                        resumeReader->enterSection("sink." + std::to_string(l));
                        sinks[l].load(*resumeReader);
                    }
                    for (std::size_t l = 0; l < L; ++l) {
                        resumeReader->enterSection("monitor." + std::to_string(l));
                        monitors[l].load(*resumeReader);
                    }
                } else {
                    // v1 interleaves nothing: one sampler, one sink, one monitor.
                    samplers[0]->load(*resumeReader);
                    sinks[0].load(*resumeReader);
                    monitors[0].load(*resumeReader);
                }
            } catch (const CheckpointError& e) {
                throw ResumeError(e.what());
            }
            run.restoreProgress(resumeBurnDone, resumeSampleDone, resumeStopped);
            resumeReader.reset();
        }

        const MultiLocusReport report = run.execute();
        rec.seconds = estep.seconds();
        result.samplingSeconds += rec.seconds;
        rec.samples = report.totalSamples();
        rec.stoppedEarly = report.allStoppedEarly();
        for (const LocusRunReport& lr : report.loci) {
            rec.rhat = std::max(rec.rhat, lr.rhat);
            rec.ess = rec.ess == 0.0 ? lr.ess : std::min(rec.ess, lr.ess);
        }
        SamplerStats stats;
        for (const auto& s : samplers) {
            const SamplerStats ls = s->stats();
            stats.steps += ls.steps;
            stats.accepted += ls.accepted;
            stats.swapsProposed += ls.swapsProposed;
            stats.swapsAccepted += ls.swapsAccepted;
        }
        rec.moveRate =
            opts.strategy == Strategy::HeatedMh ? stats.swapRate() : stats.moveRate();
        obs::add(obs::Counter::McmcSteps, stats.steps);
        obs::add(obs::Counter::McmcAccepted, stats.accepted);
        obs::add(obs::Counter::McmcSwapsProposed, stats.swapsProposed);
        obs::add(obs::Counter::McmcSwapsAccepted, stats.swapsAccepted);
        if (rec.rhat > 0.0) obs::set(obs::Gauge::McmcRhat, rec.rhat);
        if (rec.ess > 0.0) obs::set(obs::Gauge::McmcPooledEss, rec.ess);

        // M-step: pooled relative likelihood over the per-locus summaries,
        // each locus's curve driven at its effective theta.
        std::vector<PooledRelativeLikelihood::LocusTerm> terms;
        terms.reserve(L);
        for (std::size_t l = 0; l < L; ++l) {
            current[l] = samplers[l]->continuation();
            finals[l].name = dataset.locus(l).name;
            finals[l].mutationScale = dataset.locus(l).mutationScale;
            finals[l].drivingTheta = problems.at(l).effectiveTheta(rec.thetaBefore);
            finals[l].summaries = sinks[l].chainMajor();
            terms.push_back({RelativeLikelihood(finals[l].summaries, finals[l].drivingTheta),
                             finals[l].mutationScale, finals[l].name});
        }
        const PooledRelativeLikelihood rl(std::move(terms));
        const obs::TraceSpan mSpan("m_step", "mcmc");
        const MleResult mle = maximizeTheta(rl, theta, pool);
        theta = mle.theta;
        rec.thetaAfter = theta;
        rec.logLAtMax = mle.logL;
        result.history.push_back(rec);

        // EM-boundary snapshot: the next iteration restarts cleanly from
        // here even if the process dies during the M-step bookkeeping.
        if (!opts.checkpointPath.empty() && em + 1 < opts.emIterations) {
            withCheckpointRetry(opts.supervisor, [&] {
                CheckpointWriter w(opts.checkpointPath);
                w.beginSection("fingerprint");
                writeFingerprint(w, opts, dataset);
                w.beginSection("context");
                w.u64(em + 1);
                w.f64(theta);
                writeHistory(w, result.history);
                for (const Genealogy& g : current) writeGenealogy(w, g);
                w.u32(0);  // iteration boundary
                w.commit();
            });
        }
    }

    result.theta = theta;
    result.loci = std::move(finals);
    result.finalSummaries = result.loci.front().summaries;
    result.finalDrivingTheta = result.history.back().thetaBefore;
    result.totalSeconds = total.seconds();
    return result;
}

MpcgsResult estimateTheta(const Alignment& aln, const MpcgsOptions& opts, ThreadPool* pool) {
    return estimateTheta(Dataset::single(aln), opts, pool);
}

}  // namespace mpcgs
