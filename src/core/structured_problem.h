// The structured-coalescent inference problem: deme-labelled genealogy
// state, posterior, proposal bindings for the generic MH engine, and the
// profile-likelihood M-step over (theta_1..theta_K, M_kl).
//
// The unnormalized posterior over labelled genealogies is
//
//   log pi(G) = log P(D | tree(G)) + log P(G | Theta, M),
//
// with P(D|.) the unchanged Felsenstein kernel (migration labels do not
// affect the substitution process) and the structured prior of
// coalescent/structured.h. The E-step samples labelled genealogies; each
// sample is reduced to its StructuredSummary, and the M-step maximizes the
// generalized Eq. 26 relative likelihood
//
//   L(Theta, M) = (1/N) sum_G P(G | Theta, M) / P(G | Theta0, M0)
//
// coordinate by coordinate, each 1-D slice driven through the abstract
// ThetaLikelihood machinery (core/mle.h, core/support_interval.h) so the
// structured model reuses the exact maximizers and support-interval search
// of the single-theta pipeline.
#pragma once

#include <vector>

#include "coalescent/structured.h"
#include "core/mle.h"
#include "core/posterior.h"
#include "core/structured_recoalesce.h"
#include "core/support_interval.h"
#include "lik/felsenstein.h"
#include "par/thread_pool.h"
#include "rng/rng.h"

namespace mpcgs {

/// Shared posterior evaluation (holds references; keep `lik` alive).
/// Label-inconsistent states short-circuit to -inf before any likelihood
/// work, so rejected path-refresh proposals never price a pruning pass.
class StructuredPosterior {
  public:
    StructuredPosterior(const DataLikelihood& lik, MigrationModel model);

    const MigrationModel& model() const { return model_; }
    double logPosterior(const StructuredGenealogy& g) const;

  private:
    const DataLikelihood& lik_;
    MigrationModel model_;
};

/// Problem binding for MhChain<StructuredMhProblem>: a fixed-probability
/// mixture of migration-aware recoalescence and migration-path refresh.
/// Each move type computes its own exact Hastings densities and reverses
/// through the same move type, so the mixture weight cancels and the
/// random-scan kernel is pi-reversible.
class StructuredMhProblem {
  public:
    using State = StructuredGenealogy;

    StructuredMhProblem(const DataLikelihood& lik, MigrationModel model,
                        double pathRefreshProb = 0.25);

    double logPosterior(const State& g) const { return posterior_.logPosterior(g); }

    struct Proposal {
        State state;
        double logForward;
        double logReverse;
    };
    Proposal propose(const State& cur, Rng& rng) const;

    const MigrationModel& model() const { return posterior_.model(); }

  private:
    StructuredPosterior posterior_;
    double pathRefreshProb_;
};

/// Coordinates of a MigrationModel flattened for 1-D profile slices:
/// [theta_0 .. theta_{K-1}, M_01, M_02, ..] (off-diagonals row-major).
int structuredCoordinateCount(int demeCount);
std::string structuredCoordinateName(int demeCount, int coord);
double getStructuredCoordinate(const MigrationModel& m, int coord);
void setStructuredCoordinate(MigrationModel& m, int coord, double value);

/// The generalized Eq. 26 curve over sampled StructuredSummary statistics.
class StructuredRelativeLikelihood {
  public:
    StructuredRelativeLikelihood(std::vector<StructuredSummary> samples,
                                 MigrationModel driving);

    /// log L(model) = log mean_G exp(logP(G|model) - logP(G|driving)).
    double logL(const MigrationModel& model) const;

    std::size_t sampleCount() const { return samples_.size(); }
    const MigrationModel& driving() const { return driving_; }

  private:
    std::vector<StructuredSummary> samples_;
    std::vector<double> logPriorAtDriving_;
    MigrationModel driving_;
};

/// 1-D slice through the structured curve along one coordinate, the rest
/// pinned — a ThetaLikelihood, so maximizeTheta and supportInterval drive
/// the structured M-step unchanged.
class StructuredCoordinateSlice final : public ThetaLikelihood {
  public:
    StructuredCoordinateSlice(const StructuredRelativeLikelihood& rl, MigrationModel pinned,
                              int coord)
        : rl_(rl), pinned_(std::move(pinned)), coord_(coord) {}

    double logL(double x, ThreadPool* pool = nullptr) const override;

  private:
    const StructuredRelativeLikelihood& rl_;
    MigrationModel pinned_;
    int coord_;
};

struct StructuredMleResult {
    MigrationModel model;
    double logL = 0.0;
    int sweeps = 0;
    bool converged = false;
};

/// Cyclic coordinate ascent: maximize each 1-D slice in turn via
/// maximizeTheta until no coordinate moves by more than `tol` (relative).
StructuredMleResult maximizeStructured(const StructuredRelativeLikelihood& rl,
                                       MigrationModel start, double tol = 1e-5,
                                       int maxSweeps = 10, ThreadPool* pool = nullptr);

/// Approximate per-parameter support interval: the 1-D slice through the
/// joint maximum along `coord` (other coordinates pinned at the MLE — a
/// conditional, not a full profile, interval; see README).
SupportInterval structuredSupportInterval(const StructuredRelativeLikelihood& rl,
                                          const MigrationModel& mle, int coord,
                                          double drop = 1.92, ThreadPool* pool = nullptr);

}  // namespace mpcgs
