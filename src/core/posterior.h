// Posterior-likelihood kernel (§5.2.3): the relative likelihood curve
//
//   L(theta) = (1/M) sum_G P(G|theta) / P(G|theta0)          (Eq. 26)
//
// over the M sampled genealogies, evaluated from their stored interval
// vectors (§5.1.3: "nothing more than the time intervals are stored for
// each sample"). One logical device thread per sample, followed by a
// max-normalized log-space reduction (§5.3).
#pragma once

#include <utility>
#include <vector>

#include "coalescent/prior.h"
#include "par/kernel.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"

namespace mpcgs {

/// A sampled genealogy reduced to its sufficient statistics for Eq. 18:
/// the number of coalescent events and the weighted interval sum.
struct IntervalSummary {
    double weightedSum = 0.0;  ///< sum_k k(k-1) t_k
    int events = 0;            ///< n - 1

    static IntervalSummary fromIntervals(std::span<const CoalInterval> ivs) {
        return IntervalSummary{weightedIntervalSum(ivs), static_cast<int>(ivs.size())};
    }
    static IntervalSummary fromGenealogy(const Genealogy& g) {
        const auto ivs = g.intervals();
        return fromIntervals(ivs);
    }
};

/// Anything exposing a log relative likelihood as a function of theta: the
/// single-locus Eq. 26 curve below, or the multi-locus pooled curve
/// (core/locus_problem.h) that sums independent per-locus curves. The
/// M-step maximizers (core/mle.h) and support intervals
/// (core/support_interval.h) operate on this interface, so single- and
/// multi-locus inference share one estimation path.
class ThetaLikelihood {
  public:
    virtual ~ThetaLikelihood() = default;

    /// log L(theta). Parallel over samples when a pool is given.
    virtual double logL(double theta, ThreadPool* pool = nullptr) const = 0;

    /// Evaluate the curve on a log-spaced grid [lo, hi] (Fig 5 export).
    std::vector<std::pair<double, double>> curve(double lo, double hi, int points,
                                                 ThreadPool* pool = nullptr) const;
};

class RelativeLikelihood final : public ThetaLikelihood {
  public:
    RelativeLikelihood(std::vector<IntervalSummary> samples, double theta0);

    /// log L(theta). Parallel over samples when a pool is given.
    double logL(double theta, ThreadPool* pool = nullptr) const override;

    double theta0() const { return theta0_; }
    std::size_t sampleCount() const { return samples_.size(); }
    const std::vector<IntervalSummary>& samples() const { return samples_; }

  private:
    std::vector<IntervalSummary> samples_;
    double theta0_;
};

}  // namespace mpcgs
