#include "core/neighborhood.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.h"

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Inactive lineage count at backward time t: branches of the skeleton
/// crossing t, excluding the deleted nodes (T, P) and the three active
/// child branches.
int inactiveCount(const NeighborhoodRegion& r, double t) {
    const Genealogy& g = r.skeleton;
    int m = 0;
    for (NodeId id = 0; id < g.nodeCount(); ++id) {
        if (id == r.target || id == r.parent) continue;
        if (id == r.children[0] || id == r.children[1] || id == r.children[2]) continue;
        const NodeId parent = g.node(id).parent;
        if (parent == kNoNode) continue;  // root lineage lies above the region
        if (g.node(id).time <= t && t < g.node(parent).time) ++m;
    }
    return m;
}

}  // namespace

int neighborhoodTargetCount(const Genealogy& g) {
    // Internal nodes excluding the root.
    return g.internalCount() - 1;
}

NeighborhoodRegion makeNeighborhoodRegion(const Genealogy& g, NodeId target, double theta) {
    require(!g.isTip(target), "neighborhood: target must be an interior node");
    require(target != g.root(), "neighborhood: target must not be the root");
    require(theta > 0.0, "neighborhood: theta must be positive");

    NeighborhoodRegion r;
    r.skeleton = g;
    r.target = target;
    r.parent = g.node(target).parent;
    r.ancestor = g.node(r.parent).parent;  // kNoNode when parent is the root
    r.children = {g.node(target).child[0], g.node(target).child[1], g.sibling(target)};

    const double tA = (r.ancestor == kNoNode) ? kInf : g.node(r.ancestor).time;

    // Feasible-interval boundaries: the three child times plus every
    // skeleton node time strictly inside the region (each changes the
    // inactive count), closed by tA for a bounded region.
    std::vector<double> childTimes;
    for (const NodeId c : r.children) childTimes.push_back(g.node(c).time);
    const double tMin = *std::min_element(childTimes.begin(), childTimes.end());

    std::vector<double> bounds = childTimes;
    for (NodeId id = 0; id < g.nodeCount(); ++id) {
        if (id == r.target || id == r.parent) continue;
        const double t = g.node(id).time;
        if (t > tMin && t < tA) bounds.push_back(t);
    }
    if (r.ancestor != kNoNode) bounds.push_back(tA);
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    std::vector<FeasibleInterval> intervals;
    const std::size_t nb = bounds.size();
    for (std::size_t i = 0; i < nb; ++i) {
        const bool last = (i + 1 == nb);
        if (last && r.ancestor != kNoNode) break;  // tA closes the region
        FeasibleInterval iv;
        iv.begin = bounds[i];
        iv.end = last ? kInf : bounds[i + 1];
        for (const double ct : childTimes)
            if (ct == bounds[i]) ++iv.activeEnter;
        // Inactive count is constant inside; probe just above the boundary.
        const double probe = last ? bounds[i] + 1.0 : 0.5 * (bounds[i] + bounds[i + 1]);
        iv.inactive = inactiveCount(r, probe);
        intervals.push_back(iv);
    }
    require(!intervals.empty(), "neighborhood: empty feasible region");

    r.process = std::make_shared<DeathProcess>(std::move(intervals), theta);
    require(r.process->completionProbability() > 0.0, "neighborhood: infeasible region");
    return r;
}

NeighborhoodRegion makeNeighborhoodRegion(const Genealogy& g, double theta, Rng& rng) {
    const int count = neighborhoodTargetCount(g);
    require(count >= 1,
            "neighborhood: genealogy has no non-root interior node (need >= 3 tips)");
    // Interior node ids occupy [tipCount, nodeCount); skip the root.
    NodeId target;
    do {
        target = g.tipCount() +
                 static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(g.internalCount())));
    } while (target == g.root());
    return makeNeighborhoodRegion(g, target, theta);
}

Genealogy proposeInNeighborhood(const NeighborhoodRegion& region, Rng& rng) {
    const auto times = region.process->sampleMergeTimes(rng);
    require(times.size() == 2, "neighborhood: expected exactly two merge times");
    const double s0 = times[0];
    const double s1 = times[1];

    Genealogy g = region.skeleton;
    const NodeId T = region.target;
    const NodeId P = region.parent;

    // Detach the three children from T and P (T keeps its slot under P).
    for (const NodeId c : region.children) g.unlink(c);

    // First merge: uniform pair among the lineages active just before s0.
    std::vector<NodeId> active;
    for (const NodeId c : region.children)
        if (g.node(c).time < s0) active.push_back(c);
    require(active.size() >= 2, "neighborhood: fewer than two active lineages at first merge");
    const std::size_t i = static_cast<std::size_t>(rng.below(active.size()));
    std::size_t j = static_cast<std::size_t>(rng.below(active.size() - 1));
    if (j >= i) ++j;
    const NodeId ca = active[i];
    const NodeId cb = active[j];
    NodeId remaining = kNoNode;
    for (const NodeId c : region.children)
        if (c != ca && c != cb) remaining = c;

    g.node(T).time = s0;
    g.link(T, ca);
    g.link(T, cb);
    g.node(P).time = s1;
    g.link(P, remaining);

    g.validate();
    return g;
}

double logNeighborhoodDensity(const NeighborhoodRegion& region, const Genealogy& state) {
    const double s0 = state.node(region.target).time;
    const double s1 = state.node(region.parent).time;
    if (!(s0 < s1)) return -kInf;
    const std::array<double, 2> times{s0, s1};
    const double logTimes = region.process->logDensity(times);
    if (logTimes == -kInf) return -kInf;

    // Pair-choice probability at the first merge: 1 / C(j0, 2) with j0 the
    // active count just before s0.
    const int j0 = region.process->activeCountBefore(times, s0);
    if (j0 < 2) return -kInf;
    const double pairs = static_cast<double>(j0) * (j0 - 1) / 2.0;
    return logTimes - std::log(pairs);
}

}  // namespace mpcgs
