// Structured-coalescent sampler behind the unified runtime interface:
// P lockstep MH chains over deme-labelled genealogies, advanced in
// ChainScheduler rounds (one step + one tagged structured sample per chain
// per tick). Each chain owns a SplitMix64-derived Mt19937 stream and steps
// touch only per-chain state, so results are bitwise invariant to the
// worker count — the same determinism contract as every other strategy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coalescent/structured.h"
#include "core/structured_problem.h"
#include "mcmc/mh.h"
#include "mcmc/sampler.h"
#include "mcmc/schedule.h"
#include "par/thread_pool.h"

namespace mpcgs {

/// Streaming chain-major collector of structured sufficient statistics —
/// the structured run's sample sink (the §5.1.3 discipline generalized:
/// each labelled genealogy is reduced to its StructuredSummary on
/// arrival). Per-chain slots keep concurrent consumption lock-free under
/// the sink contract.
class StructuredSummarySink final : public SampleSink {
  public:
    explicit StructuredSummarySink(int demeCount = 2) : demeCount_(demeCount) {}

    void beginRun(std::uint32_t chains) override {
        if (chains > perChain_.size()) perChain_.resize(chains);
    }
    /// Structured sinks need labelled samples; feeding plain genealogies is
    /// a wiring bug and fails loudly.
    void consume(const Genealogy& g, const SampleTag& tag) override;
    void consume(const StructuredGenealogy& g, const SampleTag& tag) override {
        perChain_[tag.chain].push_back(StructuredSummary::fromGenealogy(g, demeCount_));
    }

    std::size_t total() const;
    std::vector<StructuredSummary> chainMajor() const;

    void save(CheckpointWriter& w) const;
    void load(CheckpointReader& r);

  private:
    int demeCount_;
    std::vector<std::vector<StructuredSummary>> perChain_;
};

/// The structured strategy: P independent MhChain<StructuredMhProblem>
/// chains in lockstep rounds, chain c on stream splitMix64At(seed, c + 1).
class StructuredChainsSampler final : public Sampler {
  public:
    StructuredChainsSampler(const DataLikelihood& lik, const MigrationModel& model,
                            StructuredGenealogy init, std::size_t chains,
                            std::uint64_t seed, double pathRefreshProb = 0.25,
                            ThreadPool* pool = nullptr);

    std::uint32_t chainCount() const override {
        return static_cast<std::uint32_t>(chains_.size());
    }
    std::size_t samplesPerTick() const override { return chains_.size(); }
    void tick(SampleSink* sink) override;
    const Genealogy& continuation() const override {
        return chains_.front().current().tree();
    }
    const StructuredGenealogy& structuredContinuation() const {
        return chains_.front().current();
    }
    SamplerStats stats() const override;

    void save(CheckpointWriter& w) const override;
    void load(CheckpointReader& r) override;

  private:
    StructuredMhProblem problem_;
    ChainScheduler scheduler_;
    std::vector<MhChain<StructuredMhProblem>> chains_;
    std::uint64_t sampleRounds_ = 0;
};

}  // namespace mpcgs
