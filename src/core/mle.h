// Maximum likelihood estimation of theta from the relative likelihood
// curve (§5.1.5, Algorithm 2), plus a derivative-free golden-section
// maximizer used as a cross-check and fallback. The maximizers take any
// ThetaLikelihood, so the same Algorithm 2 drives the single-locus Eq. 26
// curve and the multi-locus pooled curve (core/locus_problem.h).
#pragma once

#include "core/posterior.h"
#include "par/thread_pool.h"

namespace mpcgs {

struct GradientAscentOptions {
    double delta = 1e-4;        ///< finite-difference step (Alg 2's small delta)
    double epsilon = 1e-6;      ///< convergence threshold on |theta - theta_next|
    int maxIterations = 200;
    int maxHalvings = 60;       ///< line-search halvings per step
};

struct MleResult {
    double theta = 0.0;
    double logL = 0.0;      ///< log relative likelihood at the maximum
    int iterations = 0;
    bool converged = false;
};

/// Algorithm 2: iterative gradient ascent from theta0 with step halving
/// whenever the step would decrease L or push theta non-positive.
MleResult maximizeThetaGradient(const ThetaLikelihood& rl, double thetaStart,
                                const GradientAscentOptions& opts = {},
                                ThreadPool* pool = nullptr);

/// Golden-section maximization of log L on [lo, hi] (unimodality holds for
/// Eq. 26 curves in practice).
MleResult maximizeThetaGolden(const ThetaLikelihood& rl, double lo, double hi,
                              double tol = 1e-7, ThreadPool* pool = nullptr);

/// Robust driver: gradient ascent per Algorithm 2, falling back to a
/// bracketed golden-section search when ascent fails to converge.
MleResult maximizeTheta(const ThetaLikelihood& rl, double thetaStart,
                        ThreadPool* pool = nullptr);

}  // namespace mpcgs
