#include "core/structured_problem.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/error.h"

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

StructuredPosterior::StructuredPosterior(const DataLikelihood& lik, MigrationModel model)
    : lik_(lik), model_(std::move(model)) {
    model_.validate();
}

double StructuredPosterior::logPosterior(const StructuredGenealogy& g) const {
    const double prior = logStructuredPrior(g, model_);
    if (prior == -kInf) return -kInf;
    return lik_.logLikelihood(g.tree()) + prior;
}

StructuredMhProblem::StructuredMhProblem(const DataLikelihood& lik, MigrationModel model,
                                         double pathRefreshProb)
    : posterior_(lik, std::move(model)), pathRefreshProb_(pathRefreshProb) {
    if (pathRefreshProb_ < 0.0 || pathRefreshProb_ >= 1.0)
        throw ConfigError("StructuredMhProblem: pathRefreshProb must be in [0, 1)");
}

StructuredMhProblem::Proposal StructuredMhProblem::propose(const State& cur, Rng& rng) const {
    StructuredProposal p = rng.uniform01() < pathRefreshProb_
                               ? proposeMigrationPathRefresh(cur, model(), rng)
                               : proposeStructuredRecoalesce(cur, model(), rng);
    return Proposal{std::move(p.state), p.logForward, p.logReverse};
}

int structuredCoordinateCount(int demeCount) {
    return demeCount + demeCount * (demeCount - 1);
}

std::string structuredCoordinateName(int demeCount, int coord) {
    if (coord < demeCount) return "theta_" + std::to_string(coord + 1);
    int off = coord - demeCount;
    for (int k = 0; k < demeCount; ++k)
        for (int l = 0; l < demeCount; ++l) {
            if (k == l) continue;
            if (off == 0)
                return "M_" + std::to_string(k + 1) + std::to_string(l + 1);
            --off;
        }
    throw ConfigError("structuredCoordinateName: coordinate out of range");
}

double getStructuredCoordinate(const MigrationModel& m, int coord) {
    const int K = m.demeCount();
    if (coord < K) return m.theta[static_cast<std::size_t>(coord)];
    int off = coord - K;
    for (int k = 0; k < K; ++k)
        for (int l = 0; l < K; ++l) {
            if (k == l) continue;
            if (off == 0) return m.rate(k, l);
            --off;
        }
    throw ConfigError("getStructuredCoordinate: coordinate out of range");
}

void setStructuredCoordinate(MigrationModel& m, int coord, double value) {
    const int K = m.demeCount();
    if (coord < K) {
        m.theta[static_cast<std::size_t>(coord)] = value;
        return;
    }
    int off = coord - K;
    for (int k = 0; k < K; ++k)
        for (int l = 0; l < K; ++l) {
            if (k == l) continue;
            if (off == 0) {
                m.setRate(k, l, value);
                return;
            }
            --off;
        }
    throw ConfigError("setStructuredCoordinate: coordinate out of range");
}

StructuredRelativeLikelihood::StructuredRelativeLikelihood(
    std::vector<StructuredSummary> samples, MigrationModel driving)
    : samples_(std::move(samples)), driving_(std::move(driving)) {
    if (samples_.empty())
        throw ConfigError("StructuredRelativeLikelihood: no samples");
    driving_.validate();
    logPriorAtDriving_.reserve(samples_.size());
    for (const StructuredSummary& s : samples_)
        logPriorAtDriving_.push_back(logStructuredPrior(s, driving_));
}

double StructuredRelativeLikelihood::logL(const MigrationModel& model) const {
    // Max-normalized log-space mean (§5.3 underflow discipline).
    std::vector<double> deltas;
    deltas.reserve(samples_.size());
    double maxDelta = -kInf;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const double d = logStructuredPrior(samples_[i], model) - logPriorAtDriving_[i];
        deltas.push_back(d);
        maxDelta = std::max(maxDelta, d);
    }
    if (maxDelta == -kInf) return -kInf;
    double acc = 0.0;
    for (const double d : deltas) acc += std::exp(d - maxDelta);
    return maxDelta + std::log(acc / static_cast<double>(samples_.size()));
}

double StructuredCoordinateSlice::logL(double x, ThreadPool*) const {
    if (!(x > 0.0) || !std::isfinite(x)) return -kInf;
    // Evaluate on a local copy: logL may be called concurrently (e.g. from
    // a pooled curve evaluation), and the slice itself stays immutable.
    MigrationModel m = pinned_;
    setStructuredCoordinate(m, coord_, x);
    return rl_.logL(m);
}

StructuredMleResult maximizeStructured(const StructuredRelativeLikelihood& rl,
                                       MigrationModel start, double tol, int maxSweeps,
                                       ThreadPool* pool) {
    start.validate();
    const int coords = structuredCoordinateCount(start.demeCount());
    StructuredMleResult result;
    result.model = std::move(start);
    for (int sweep = 0; sweep < maxSweeps; ++sweep) {
        double maxRel = 0.0;
        for (int c = 0; c < coords; ++c) {
            const double cur = getStructuredCoordinate(result.model, c);
            const StructuredCoordinateSlice slice(rl, result.model, c);
            const MleResult m = maximizeTheta(slice, cur, pool);
            setStructuredCoordinate(result.model, c, m.theta);
            result.logL = m.logL;
            maxRel = std::max(maxRel, std::abs(m.theta - cur) / std::max(cur, 1e-12));
        }
        result.sweeps = sweep + 1;
        if (maxRel < tol) {
            result.converged = true;
            break;
        }
    }
    return result;
}

SupportInterval structuredSupportInterval(const StructuredRelativeLikelihood& rl,
                                          const MigrationModel& mle, int coord, double drop,
                                          ThreadPool* pool) {
    const StructuredCoordinateSlice slice(rl, mle, coord);
    return supportInterval(slice, getStructuredCoordinate(mle, coord), drop, 1e4, pool);
}

}  // namespace mpcgs
