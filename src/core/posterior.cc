#include "core/posterior.h"

#include <cmath>

#include "util/error.h"

namespace mpcgs {

RelativeLikelihood::RelativeLikelihood(std::vector<IntervalSummary> samples, double theta0)
    : samples_(std::move(samples)), theta0_(theta0) {
    if (theta0 <= 0.0) throw ConfigError("RelativeLikelihood: theta0 must be positive");
    require(!samples_.empty(), "RelativeLikelihood: no samples");
}

double RelativeLikelihood::logL(double theta, ThreadPool* pool) const {
    require(theta > 0.0, "RelativeLikelihood: theta must be positive");
    // Per-sample term: log P(G|theta) - log P(G|theta0)
    //   = -(n-1) log(theta/theta0) - w (1/theta - 1/theta0).
    const double logRatio = std::log(theta / theta0_);
    const double invDiff = 1.0 / theta - 1.0 / theta0_;

    std::vector<double> terms(samples_.size());
    forEachIndex(pool, samples_.size(), [&](std::size_t i) {
        const auto& s = samples_[i];
        terms[i] = -static_cast<double>(s.events) * logRatio - s.weightedSum * invDiff;
    });

    // Max-normalized log-space mean (the §5.2.3 reduction): the paper's
    // block structure is mirrored by the two-stage kernel reduction.
    const double logSum = blockReduceLogSumExp(pool, terms, /*blockDim=*/256);
    return logSum - std::log(static_cast<double>(samples_.size()));
}

std::vector<std::pair<double, double>> ThetaLikelihood::curve(double lo, double hi, int points,
                                                              ThreadPool* pool) const {
    require(lo > 0.0 && hi > lo && points >= 2, "ThetaLikelihood: bad curve grid");
    std::vector<std::pair<double, double>> out;
    out.reserve(static_cast<std::size_t>(points));
    const double step = std::log(hi / lo) / (points - 1);
    for (int i = 0; i < points; ++i) {
        const double theta = lo * std::exp(step * i);
        out.emplace_back(theta, logL(theta, pool));
    }
    return out;
}

}  // namespace mpcgs
