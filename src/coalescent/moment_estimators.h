// Classical moment estimators of theta — the quick non-MCMC baselines
// every coalescent analysis reports next to the likelihood estimate
// (Kuhner 2009 compares genealogy samplers against exactly these).
//
// Under the paper's rate convention (Eq. 17: pair coalescence rate
// 2/theta), the expected number of segregating sites in n sequences of L
// sites is  E[S] = L * theta/2 * a1,  a1 = sum_{i=1}^{n-1} 1/i,  and the
// expected pairwise difference count is E[pi] = L * theta / 2... derived
// from E[T2] = theta/2 per pair with mutation rate 1 per site per unit
// time and two branches: E[pairwise diffs]/L = 2 * mu * E[T2] = theta.
#pragma once

#include "seq/alignment.h"

namespace mpcgs {

/// Watterson (1975) estimator from the number of segregating sites:
/// theta_W = S / (L * a1 / 2)... scaled for this library's rate convention
/// (theta equals the expected per-site pairwise diversity).
double wattersonTheta(const Alignment& aln);

/// Tajima (1983) estimator: mean pairwise difference per site.
double tajimaTheta(const Alignment& aln);

/// Tajima's D statistic (normalized difference between the two
/// estimators); strongly negative values suggest expansion/selection,
/// values near 0 neutrality. Returns 0 when the alignment has no
/// segregating sites.
double tajimaD(const Alignment& aln);

}  // namespace mpcgs
