// Coalescent genealogy simulator — the `ms` substitute (§6.1).
//
// Samples genealogies from the neutral constant-size Kingman coalescent
// with the paper's rate convention (Eq. 17): with k lineages extant, the
// total coalescence rate is k(k-1)/theta and the merging pair is uniform.
// Equivalent to `ms <n> 1 -T` up to the time-scaling constant, which the
// evaluation pipeline absorbs into theta.
#pragma once

#include "phylo/tree.h"
#include "rng/rng.h"

namespace mpcgs {

/// Draw one genealogy with `nTips` contemporary tips under theta.
/// Expected TMRCA is theta * (1 - 1/n); expected pairwise coalescence time
/// is theta / 2 for n = 2.
Genealogy simulateCoalescent(int nTips, double theta, Rng& rng);

}  // namespace mpcgs
