// Structured (multi-deme) coalescent — LAMARC's defining scenario beyond
// single-deme theta: K populations exchanging migrants, each with its own
// scaled size theta_k and per-lineage backward migration rates M_kl.
//
// Going backward in time, with n_k lineages extant in deme k:
//
//   pair coalescence rate within deme k : 2 / theta_k      (Eq. 17 per deme)
//   total coalescence rate in deme k    : n_k (n_k - 1) / theta_k
//   migration of one lineage k -> l     : M_kl per lineage
//
// The density of a fully labelled genealogy (topology, node times, deme
// labels and per-branch migration events) is therefore
//
//   log P(G | Theta, M) =   sum_k [ c_k log(2/theta_k) - W_k / theta_k ]
//                         + sum_{k != l} [ m_kl log M_kl - U_k M_kl ]
//
// with the sufficient statistics  c_k   coalescences in deme k,
//                                 W_k   int n_k (n_k - 1) dt,
//                                 m_kl  migration events k -> l,
//                                 U_k   int n_k dt  (lineage-time in k).
// With K = 1 every term reduces bitwise to the Kingman prior of Eq. 18.
//
// Samples are reduced to StructuredSummary on arrival (the §5.1.3
// discipline: store sufficient statistics, not genealogies), so the
// relative-likelihood curve of Eq. 26 generalizes to any (theta_k, M_kl).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/tree.h"
#include "rng/rng.h"

namespace mpcgs {

/// Parameters of the K-deme structured coalescent. Migration rates are
/// stored row-major: mig[k * K + l] is the backward rate k -> l (diagonal
/// entries are ignored and kept at 0).
struct MigrationModel {
    std::vector<double> theta;  ///< theta_k, one per deme
    std::vector<double> mig;    ///< K x K row-major backward rates, diag 0

    MigrationModel() = default;
    /// K demes with all thetas = `th` and all off-diagonal rates = `m`.
    MigrationModel(int K, double th, double m);

    int demeCount() const { return static_cast<int>(theta.size()); }
    double rate(int from, int to) const {
        return mig[static_cast<std::size_t>(from) * theta.size() +
                   static_cast<std::size_t>(to)];
    }
    void setRate(int from, int to, double m) {
        mig[static_cast<std::size_t>(from) * theta.size() +
            static_cast<std::size_t>(to)] = m;
    }
    /// Total emigration rate of one lineage in deme k: sum_l M_kl.
    double totalRateFrom(int k) const;

    /// Throws ConfigError unless every theta_k is positive and finite and
    /// every off-diagonal migration rate is positive and finite (K >= 2;
    /// positivity keeps the label chain irreducible and every proposal
    /// density finite). A single deme needs no migration entries.
    void validate() const;

    bool operator==(const MigrationModel&) const = default;
};

/// One migration event on a branch: going backward in time the lineage
/// switches to `toDeme` at `time`.
struct MigrationEvent {
    double time = 0.0;
    int toDeme = 0;

    bool operator==(const MigrationEvent&) const = default;
};

/// A deme-labelled genealogy: the plain tree plus, per node, the deme the
/// lineage occupies at the node's own time, and, per non-root node, the
/// ordered migration events on the branch from the node up to its parent.
///
/// Label consistency: walking a branch upward from the node's deme and
/// applying its events must land in the parent's deme — both children of
/// every coalescence therefore meet in the parent's deme, as the structured
/// coalescent requires (lineages only coalesce within a deme).
class StructuredGenealogy {
  public:
    StructuredGenealogy() = default;
    /// Label an existing tree: every node in deme 0, no migration events
    /// (the K = 1 embedding of a plain genealogy).
    explicit StructuredGenealogy(Genealogy tree);

    const Genealogy& tree() const { return tree_; }
    Genealogy& tree() { return tree_; }

    int deme(NodeId id) const { return nodeDeme_[static_cast<std::size_t>(id)]; }
    void setDeme(NodeId id, int d) { nodeDeme_[static_cast<std::size_t>(id)] = d; }

    const std::vector<MigrationEvent>& branchEvents(NodeId child) const {
        return branchEvents_[static_cast<std::size_t>(child)];
    }
    std::vector<MigrationEvent>& branchEvents(NodeId child) {
        return branchEvents_[static_cast<std::size_t>(child)];
    }

    /// Deme of the lineage below `child`'s parent at backward time t
    /// (t within [time(child), time(parent))): the node's deme after
    /// applying every branch event with event.time <= t.
    int demeAt(NodeId child, double t) const;

    /// Deme at the top of `child`'s branch (just below the parent) — must
    /// equal the parent's deme in a consistent labelling.
    int topDeme(NodeId child) const;

    /// Total number of migration events over all branches.
    std::size_t migrationCount() const;

    /// True when the labelling is consistent: every deme in [0, K), branch
    /// events strictly inside the branch, strictly ascending, actually
    /// switching deme, and every branch's top deme equal to the parent's
    /// deme. (The tree itself is NOT re-validated here; use validate().)
    bool consistent(int K) const;

    /// tree().validate() plus consistent(K), throwing InvariantError with a
    /// description on failure.
    void validate(int K) const;

    bool operator==(const StructuredGenealogy&) const = default;

  private:
    Genealogy tree_;
    std::vector<int> nodeDeme_;
    std::vector<std::vector<MigrationEvent>> branchEvents_;
};

/// Sufficient statistics of one labelled genealogy for the structured
/// prior (see the header comment). The vectors are sized K and K*K.
struct StructuredSummary {
    std::vector<double> coal;  ///< c_k: coalescences in deme k
    std::vector<double> W;     ///< int n_k (n_k - 1) dt
    std::vector<double> mig;   ///< m_kl, row-major (diag 0)
    std::vector<double> U;     ///< int n_k dt

    int demeCount() const { return static_cast<int>(coal.size()); }

    static StructuredSummary fromGenealogy(const StructuredGenealogy& g, int K);

    bool operator==(const StructuredSummary&) const = default;
};

/// log P(G | model) from sufficient statistics (exact for the density of
/// the labelled history; -inf when a migration count is positive under a
/// zero rate).
double logStructuredPrior(const StructuredSummary& s, const MigrationModel& model);

/// log P(G | model) of a labelled genealogy. Returns -inf when the
/// labelling is inconsistent with model.demeCount() demes.
double logStructuredPrior(const StructuredGenealogy& g, const MigrationModel& model);

/// Draw one labelled genealogy for contemporary tips with the given deme
/// assignment (tipDemes[i] in [0, K)) under `model` — the two-deme `ms -I`
/// substitute. Gillespie simulation of the competing coalescence and
/// migration clocks; terminates almost surely because validate() requires
/// positive off-diagonal rates for K >= 2.
StructuredGenealogy simulateStructuredCoalescent(const std::vector<int>& tipDemes,
                                                 const MigrationModel& model, Rng& rng);

/// Transition probability P(X_T = to | X_0 = from) of the two-state
/// migration label chain over elapsed time T (closed form; requires
/// model.demeCount() == 2). Used by tests and by the moment checks.
double twoDemeTransitionProb(const MigrationModel& model, int from, int to, double T);

}  // namespace mpcgs
