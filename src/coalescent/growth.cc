#include "coalescent/growth.h"

#include <cmath>
#include <vector>

#include "util/error.h"

namespace mpcgs {
namespace {

/// (e^{g b} - e^{g a}) / g, stable as g -> 0 (limit b - a).
double expDiffOverG(double a, double b, double g) {
    const double x = g * (b - a);
    if (std::fabs(x) < 1e-12) return (b - a) * std::exp(g * a);
    return std::exp(g * a) * std::expm1(x) / g;
}

/// d/dg [ (e^{g b} - e^{g a}) / g ], stable as g -> 0 (limit (b^2-a^2)/2).
double dExpDiffOverG(double a, double b, double g) {
    if (std::fabs(g) < 1e-7) {
        // Second-order Taylor expansion around g = 0.
        return (b * b - a * a) / 2.0 + g * (b * b * b - a * a * a) / 3.0;
    }
    const double eb = std::exp(g * b);
    const double ea = std::exp(g * a);
    return ((b * eb - a * ea) * g - (eb - ea)) / (g * g);
}

}  // namespace

double logGrowthCoalescentPrior(std::span<const CoalInterval> intervals,
                                const GrowthParams& p) {
    require(p.theta > 0.0, "growth prior needs theta > 0");
    double acc = 0.0;
    for (const auto& iv : intervals) {
        const double kk = static_cast<double>(iv.lineages) * (iv.lineages - 1);
        // Survival over the interval, then the coalescence at its end.
        acc -= kk * expDiffOverG(iv.begin, iv.end, p.growth) / p.theta;
        acc += std::log(2.0 / p.theta) + p.growth * iv.end;
    }
    return acc;
}

double logGrowthCoalescentPrior(const Genealogy& g, const GrowthParams& p) {
    const auto ivs = g.intervals();
    return logGrowthCoalescentPrior(std::span<const CoalInterval>(ivs), p);
}

GrowthGradient growthPriorGradient(std::span<const CoalInterval> intervals,
                                   const GrowthParams& p) {
    require(p.theta > 0.0, "growth prior needs theta > 0");
    GrowthGradient grad;
    for (const auto& iv : intervals) {
        const double kk = static_cast<double>(iv.lineages) * (iv.lineages - 1);
        grad.dTheta += kk * expDiffOverG(iv.begin, iv.end, p.growth) / (p.theta * p.theta) -
                       1.0 / p.theta;
        grad.dGrowth += iv.end - kk * dExpDiffOverG(iv.begin, iv.end, p.growth) / p.theta;
    }
    return grad;
}

Genealogy simulateGrowthCoalescent(int nTips, const GrowthParams& p, Rng& rng) {
    if (nTips < 2) throw ConfigError("simulateGrowthCoalescent: need at least 2 tips");
    if (p.theta <= 0.0) throw ConfigError("simulateGrowthCoalescent: theta must be positive");
    if (p.growth < 0.0)
        throw ConfigError(
            "simulateGrowthCoalescent: negative growth makes the coalescent improper "
            "(lineages may never find a common ancestor)");

    Genealogy g(nTips);
    std::vector<NodeId> active;
    active.reserve(static_cast<std::size_t>(nTips));
    for (int i = 0; i < nTips; ++i) active.push_back(i);

    double t = 0.0;
    NodeId nextInternal = nTips;
    while (active.size() > 1) {
        const double k = static_cast<double>(active.size());
        const double kk = k * (k - 1.0);
        const double e = rng.exponential(1.0);
        if (p.growth < 1e-12) {
            t += e * p.theta / kk;
        } else {
            // Invert the cumulative hazard kk (e^{g(t+tau)} - e^{g t}) / (g theta) = e.
            const double egt = std::exp(p.growth * t);
            t = std::log(egt + e * p.growth * p.theta / kk) / p.growth;
        }

        const std::size_t i = static_cast<std::size_t>(rng.below(active.size()));
        std::size_t j = static_cast<std::size_t>(rng.below(active.size() - 1));
        if (j >= i) ++j;

        const NodeId parent = nextInternal++;
        g.node(parent).time = t;
        g.link(parent, active[i]);
        g.link(parent, active[j]);
        const std::size_t lo = i < j ? i : j;
        const std::size_t hi = i < j ? j : i;
        active[lo] = parent;
        active[hi] = active.back();
        active.pop_back();
    }
    g.setRoot(active[0]);
    g.validate();
    return g;
}

}  // namespace mpcgs
