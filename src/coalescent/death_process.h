// The feasible-interval resimulation machinery of §4.2.
//
// When the proposal kernel deletes a neighbourhood of the genealogy, the
// detached ("active") lineages must re-coalesce across a sequence of
// feasible intervals, each with a constant number of untouched ("inactive")
// lineages. Going backward in time, the active count j is a pure death
// process: while j actives coexist with m inactives, some coalescence
// involving an active lineage occurs at rate
//
//   lambda(j, m) = j (j - 1 + 2m) / theta,
//
// the Kingman rate of all pairs containing at least one active lineage
// (the paper: "a constant chance of coalescence ... a function of the
// number of active lineages, the number of inactive lineages and theta").
// A single remaining active lineage is absorbing (the restricted proposal
// only merges active lineages with each other; see DESIGN.md §1).
//
// The class computes the interval transition probabilities S_{a,b}(t)
// (paper's S_{i,j}), runs the backward completion recursion (paper's
// P_i(n)), samples merge times *conditioned on a valid completion* —
// exactly one active lineage at the ancient end of a bounded region — and
// evaluates the exact log-density of any realized set of merge times.
// The density is exact by the telescoping identity
//
//   q(times) = [unconditioned trajectory density] / h(start),
//
// which the GMH weights consume directly (w = pi/q).
#pragma once

#include <span>
#include <vector>

#include "rng/rng.h"

namespace mpcgs {

/// One feasible interval, ordered recent -> ancient.
struct FeasibleInterval {
    double begin = 0.0;  ///< recent boundary (backward time)
    double end = 0.0;    ///< ancient boundary; may be +inf for the last interval
    int inactive = 0;    ///< inactive lineage count m, constant within
    int activeEnter = 0; ///< active lineages whose branches start at `begin`

    double length() const { return end - begin; }
};

class DeathProcess {
  public:
    /// `intervals` must be contiguous (interval[i].end == interval[i+1].begin),
    /// ordered by time, with non-negative lengths; the sum of activeEnter is
    /// the total number of active lineages K. A bounded region (finite final
    /// end) conditions on exactly one active lineage surviving to the end;
    /// an unbounded region needs no conditioning.
    DeathProcess(std::vector<FeasibleInterval> intervals, double theta);

    /// Hazard of an active-lineage coalescence with j actives, m inactives.
    static double rate(int j, int m, double theta);

    /// S_{a,b}(t): probability that a actives reduce to b over duration t
    /// with m inactives (paper's S_{i,j}). Requires 1 <= b <= a.
    static double transitionProb(int a, int b, double t, int m, double theta);

    /// Probability of a valid completion from the start of the region
    /// (h-value the forward walk is conditioned on; log of the paper's
    /// backward-recursion root). 0 means the region is infeasible.
    double completionProbability() const;

    /// Total active lineages K.
    int totalActive() const { return totalActive_; }

    /// Draw the K-1 merge times conditioned on valid completion, sorted
    /// ascending (most recent first). Throws InvariantError if infeasible.
    std::vector<double> sampleMergeTimes(Rng& rng) const;

    /// Exact log-density of `mergeTimes` (sorted ascending) under
    /// sampleMergeTimes. Returns -inf for configurations the sampler cannot
    /// produce (wrong count, times outside the region, more merges than
    /// available actives).
    double logDensity(std::span<const double> mergeTimes) const;

    /// Number of active lineages present just before backward time t, given
    /// the merge times (for the topology-choice factors of the proposal).
    int activeCountBefore(std::span<const double> mergeTimes, double t) const;

    const std::vector<FeasibleInterval>& intervals() const { return intervals_; }

  private:
    /// h-value at the start of interval i as a function of the active count
    /// *after* adding activeEnter at that boundary: hStart_[i][j].
    void buildBackwardRecursion();

    /// Sample the next merge inside an interval of remaining length T with
    /// current count j, conditioned on ending the interval with b actives.
    double sampleFirstEventTime(int j, int b, double T, int m, Rng& rng) const;

    std::vector<FeasibleInterval> intervals_;
    double theta_;
    int totalActive_ = 0;
    bool bounded_ = true;
    std::vector<std::vector<double>> hStart_;  // [interval][activeCount]
};

}  // namespace mpcgs
