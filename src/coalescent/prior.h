// Kingman coalescent prior on genealogies (Eqs. 17-18 of Davis 2016).
//
// Under the Wright-Fisher/Kingman model with scaled population parameter
// theta = m*Ne (the paper's units), the density of the waiting time to the
// next coalescence of k lineages is
//
//   p_k(t) = (2/theta) * exp(-k(k-1) t / theta)           (Eq. 17)
//
// per ordered genealogy, so a full genealogy with intervals t_i has
//
//   P(G|theta) = (2/theta)^{n-1} exp(-sum_k k(k-1) t_k / theta)   (Eq. 18)
//
// Everything here is in log space (§5.3).
#pragma once

#include <span>

#include "phylo/tree.h"

namespace mpcgs {

/// log p_k(t) of Eq. 17: density of the specific pair coalescing at t given
/// k extant lineages.
double logCoalescentWaitDensity(int k, double t, double theta);

/// log P(G|theta) from precomputed inter-coalescent intervals (Eq. 18).
/// The sampler stores genealogy samples as interval vectors precisely so
/// that this term can be recomputed for arbitrary theta (§5.1.3).
double logCoalescentPrior(std::span<const CoalInterval> intervals, double theta);

/// log P(G|theta) for a genealogy.
double logCoalescentPrior(const Genealogy& g, double theta);

/// d/dtheta log P(G|theta): -(n-1)/theta + sum_k k(k-1) t_k / theta^2.
double dLogCoalescentPrior(std::span<const CoalInterval> intervals, double theta);

/// The single-genealogy maximizer of Eq. 18:
/// theta_hat = sum_k k(k-1) t_k / (n-1). Useful as a sanity anchor and in
/// tests (the posterior-likelihood curve of one sample peaks here).
double singleTreeThetaMle(std::span<const CoalInterval> intervals);

/// Sufficient statistic sum_k k(k-1) t_k of a genealogy.
double weightedIntervalSum(std::span<const CoalInterval> intervals);

}  // namespace mpcgs
