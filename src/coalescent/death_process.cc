#include "coalescent/death_process.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Coefficients of S_{a,b}(t) = sum_{k=b}^{a} coeff[k-b] * exp(-lambda_k t)
/// for a pure death chain with distinct rates lambda_b..lambda_a
/// (lambda_k = hazard at state k).
std::vector<double> transitionCoeffs(int a, int b, const std::vector<double>& lambda) {
    const int len = a - b + 1;
    std::vector<double> coeff(static_cast<std::size_t>(len));
    double rateProd = 1.0;
    for (int l = b + 1; l <= a; ++l) rateProd *= lambda[static_cast<std::size_t>(l)];
    for (int k = b; k <= a; ++k) {
        double denom = 1.0;
        for (int l = b; l <= a; ++l) {
            if (l == k) continue;
            denom *= lambda[static_cast<std::size_t>(l)] - lambda[static_cast<std::size_t>(k)];
        }
        coeff[static_cast<std::size_t>(k - b)] = rateProd / denom;
    }
    return coeff;
}

/// Rates lambda_0..lambda_jmax for a given inactive count.
std::vector<double> rateVector(int jmax, int m, double theta) {
    std::vector<double> lambda(static_cast<std::size_t>(jmax + 1), 0.0);
    for (int j = 2; j <= jmax; ++j)
        lambda[static_cast<std::size_t>(j)] = DeathProcess::rate(j, m, theta);
    return lambda;
}

}  // namespace

double DeathProcess::rate(int j, int m, double theta) {
    require(theta > 0.0, "DeathProcess: theta must be positive");
    require(j >= 0 && m >= 0, "DeathProcess: negative lineage count");
    if (j < 2) return 0.0;  // a lone active lineage is absorbing
    return static_cast<double>(j) * (j - 1 + 2 * m) / theta;
}

double DeathProcess::transitionProb(int a, int b, double t, int m, double theta) {
    require(a >= 1 && b >= 1, "transitionProb: counts must be >= 1");
    if (b > a) return 0.0;
    if (t == 0.0) return a == b ? 1.0 : 0.0;
    require(t > 0.0, "transitionProb: negative duration");
    const auto lambda = rateVector(a, m, theta);
    if (a == b) return std::exp(-lambda[static_cast<std::size_t>(a)] * t);
    if (t == kInf) return b == 1 ? 1.0 : 0.0;  // all merges eventually happen
    const auto coeff = transitionCoeffs(a, b, lambda);
    double acc = 0.0;
    for (int k = b; k <= a; ++k)
        acc += coeff[static_cast<std::size_t>(k - b)] *
               std::exp(-lambda[static_cast<std::size_t>(k)] * t);
    // Round-off can produce tiny negatives for near-degenerate rates.
    return acc < 0.0 ? 0.0 : acc;
}

DeathProcess::DeathProcess(std::vector<FeasibleInterval> intervals, double theta)
    : intervals_(std::move(intervals)), theta_(theta) {
    require(!intervals_.empty(), "DeathProcess: no intervals");
    require(theta_ > 0.0, "DeathProcess: theta must be positive");
    for (std::size_t i = 0; i < intervals_.size(); ++i) {
        const auto& iv = intervals_[i];
        require(iv.length() >= 0.0, "DeathProcess: negative interval length");
        require(iv.inactive >= 0, "DeathProcess: negative inactive count");
        require(iv.activeEnter >= 0, "DeathProcess: negative activeEnter");
        if (i + 1 < intervals_.size()) {
            require(std::isfinite(iv.end), "DeathProcess: only the last interval may be unbounded");
            require(std::abs(iv.end - intervals_[i + 1].begin) <= 1e-9 * (1.0 + std::abs(iv.end)),
                    "DeathProcess: intervals not contiguous");
        }
        totalActive_ += iv.activeEnter;
    }
    require(totalActive_ >= 2, "DeathProcess: need at least two active lineages");
    bounded_ = std::isfinite(intervals_.back().end);
    buildBackwardRecursion();
}

void DeathProcess::buildBackwardRecursion() {
    const std::size_t R = intervals_.size();
    hStart_.assign(R + 1, std::vector<double>(static_cast<std::size_t>(totalActive_ + 1), 0.0));

    // Terminal condition: exactly one active lineage survives a bounded
    // region; an unbounded region always completes.
    for (int j = 1; j <= totalActive_; ++j)
        hStart_[R][static_cast<std::size_t>(j)] = (bounded_ ? (j == 1 ? 1.0 : 0.0) : 1.0);

    for (std::size_t i = R; i-- > 0;) {
        const auto& iv = intervals_[i];
        if (!std::isfinite(iv.end)) {
            // Unbounded final interval: every entry state completes.
            for (int j = 0; j <= totalActive_; ++j)
                hStart_[i][static_cast<std::size_t>(j)] = 1.0;
            continue;
        }
        const int enterNext = (i + 1 < R) ? intervals_[i + 1].activeEnter : 0;
        for (int j = 1; j <= totalActive_; ++j) {
            double acc = 0.0;
            for (int b = 1; b <= j; ++b) {
                const double s = transitionProb(j, b, iv.length(), iv.inactive, theta_);
                if (s == 0.0) continue;
                const int nextState = b + enterNext;
                if (nextState > totalActive_) continue;
                acc += s * hStart_[i + 1][static_cast<std::size_t>(nextState)];
            }
            hStart_[i][static_cast<std::size_t>(j)] = acc;
        }
    }
}

double DeathProcess::completionProbability() const {
    const int j0 = intervals_[0].activeEnter;
    if (j0 < 1) return 0.0;
    return hStart_[0][static_cast<std::size_t>(j0)];
}

double DeathProcess::sampleFirstEventTime(int j, int b, double T, int m, Rng& rng) const {
    // Density on u in (0, T):
    //   f(u) = lambda_j e^{-lambda_j u} S_{j-1,b}(T-u) / S_{j,b}(T),
    // whose CDF is an analytic sum of exponentials; invert by bisection.
    const auto lambda = rateVector(j, m, theta_);
    const double lj = lambda[static_cast<std::size_t>(j)];
    const auto coeff = transitionCoeffs(j - 1, b, lambda);

    auto cdfUnnorm = [&](double u) {
        double acc = 0.0;
        for (int k = b; k <= j - 1; ++k) {
            const double lk = lambda[static_cast<std::size_t>(k)];
            const double c = coeff[static_cast<std::size_t>(k - b)];
            // integral of lj e^{-lj v} e^{-lk (T - v)} over v in (0, u)
            acc += c * lj * std::exp(-lk * T) * std::expm1((lk - lj) * u) / (lk - lj);
        }
        return acc;
    };

    const double total = cdfUnnorm(T);
    require(total > 0.0, "DeathProcess: degenerate event-time distribution");
    const double target = rng.uniformPos() * total;
    double lo = 0.0, hi = T;
    for (int it = 0; it < 200 && (hi - lo) > 1e-15 * (1.0 + T); ++it) {
        const double mid = 0.5 * (lo + hi);
        if (cdfUnnorm(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

std::vector<double> DeathProcess::sampleMergeTimes(Rng& rng) const {
    require(completionProbability() > 0.0, "DeathProcess: infeasible region");
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(totalActive_ - 1));

    int j = 0;
    const std::size_t R = intervals_.size();
    for (std::size_t i = 0; i < R; ++i) {
        const auto& iv = intervals_[i];
        j += iv.activeEnter;

        if (!std::isfinite(iv.end)) {
            // Unconditioned exponential race until one active remains.
            double t = iv.begin;
            while (j > 1) {
                t += rng.exponential(rate(j, iv.inactive, theta_));
                times.push_back(t);
                --j;
            }
            break;
        }

        // Choose the end-of-interval count b with the backward weights
        // (paper's forward walk over P_i(n)).
        const int enterNext = (i + 1 < R) ? intervals_[i + 1].activeEnter : 0;
        std::vector<double> weights(static_cast<std::size_t>(j + 1), 0.0);
        for (int b = 1; b <= j; ++b) {
            const double s = transitionProb(j, b, iv.length(), iv.inactive, theta_);
            if (s == 0.0) continue;
            const double hNext = (i + 1 < R)
                                     ? ((b + enterNext <= totalActive_)
                                            ? hStart_[i + 1][static_cast<std::size_t>(b + enterNext)]
                                            : 0.0)
                                     : (bounded_ ? (b == 1 ? 1.0 : 0.0) : 1.0);
            weights[static_cast<std::size_t>(b)] = s * hNext;
        }
        const int b = static_cast<int>(rng.categorical(weights));

        // Place the j-b merge times inside the interval.
        double offset = 0.0;
        double remaining = iv.length();
        int cur = j;
        while (cur > b) {
            const double u = sampleFirstEventTime(cur, b, remaining, iv.inactive, rng);
            offset += u;
            remaining -= u;
            times.push_back(iv.begin + offset);
            --cur;
        }
        j = b;
    }

    std::sort(times.begin(), times.end());
    return times;
}

double DeathProcess::logDensity(std::span<const double> mergeTimes) const {
    if (static_cast<int>(mergeTimes.size()) != totalActive_ - 1) return -kInf;
    for (std::size_t i = 1; i < mergeTimes.size(); ++i)
        if (mergeTimes[i] < mergeTimes[i - 1]) return -kInf;
    const double h0 = completionProbability();
    if (h0 <= 0.0) return -kInf;

    // Unconditioned trajectory density, walked over intervals.
    double logf = 0.0;
    int j = 0;
    std::size_t e = 0;  // next merge event
    for (const auto& iv : intervals_) {
        j += iv.activeEnter;
        double t = iv.begin;
        while (e < mergeTimes.size() && mergeTimes[e] < iv.end) {
            const double s = mergeTimes[e];
            if (s < iv.begin) return -kInf;  // merge before its interval: impossible
            const double lam = rate(j, iv.inactive, theta_);
            if (lam <= 0.0) return -kInf;  // merge without two active lineages
            logf += std::log(lam) - lam * (s - t);
            t = s;
            --j;
            if (j < 1) return -kInf;
            ++e;
        }
        if (std::isfinite(iv.end)) {
            const double lam = rate(j, iv.inactive, theta_);
            logf += -lam * (iv.end - t);
        }
    }
    if (e != mergeTimes.size()) return -kInf;  // merges beyond a bounded region
    if (bounded_ && j != 1) return -kInf;
    return logf - std::log(h0);
}

int DeathProcess::activeCountBefore(std::span<const double> mergeTimes, double t) const {
    int j = 0;
    for (const auto& iv : intervals_)
        if (iv.begin < t) j += iv.activeEnter;
    for (const double s : mergeTimes)
        if (s < t) --j;
    return j;
}

}  // namespace mpcgs
