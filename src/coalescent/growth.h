// Exponential-growth coalescent — the "parameters other than theta"
// extension the thesis lists as future work (§7).
//
// The population's scaled size at backward time t is theta(t) =
// theta0 * exp(-g t): positive g means the population has been growing
// toward the present. With k lineages the pair-coalescence rate at time t
// is 2 exp(g t) / theta0, so the labeled-genealogy density generalizing
// Eq. 18 is
//
//   log P(G | theta0, g) = sum_events [ log(2/theta0) + g t_e ]
//                        - sum_intervals k(k-1) (e^{g b} - e^{g a}) / (g theta0),
//
// with the g -> 0 limit recovering the constant-size prior. The GMH
// sampler needs no new proposal kernel for this model: the pi/q weights
// (DESIGN.md §1) stay exact for any positive proposal density, so the
// constant-size neighbourhood kernel doubles as the proposal for the
// growth posterior.
#pragma once

#include <span>

#include "phylo/tree.h"
#include "rng/rng.h"

namespace mpcgs {

/// Parameters of the growth model.
struct GrowthParams {
    double theta = 1.0;  ///< present-day scaled population size
    double growth = 0.0; ///< exponential growth rate g (may be negative)
};

/// log P(G | theta, g) from inter-coalescent intervals (most recent first;
/// each interval's `end` is a coalescent event).
double logGrowthCoalescentPrior(std::span<const CoalInterval> intervals,
                                const GrowthParams& p);

double logGrowthCoalescentPrior(const Genealogy& g, const GrowthParams& p);

/// Gradient of the log prior with respect to (theta, growth).
struct GrowthGradient {
    double dTheta = 0.0;
    double dGrowth = 0.0;
};
GrowthGradient growthPriorGradient(std::span<const CoalInterval> intervals,
                                   const GrowthParams& p);

/// Simulate a genealogy under the growth coalescent via the time transform
/// of the inhomogeneous exponential clock.
Genealogy simulateGrowthCoalescent(int nTips, const GrowthParams& p, Rng& rng);

}  // namespace mpcgs
