#include "coalescent/prior.h"

#include <cmath>

#include "util/error.h"

namespace mpcgs {

double logCoalescentWaitDensity(int k, double t, double theta) {
    require(k >= 2, "coalescent density needs k >= 2");
    require(t >= 0.0, "coalescent density needs t >= 0");
    require(theta > 0.0, "coalescent density needs theta > 0");
    const double kk = static_cast<double>(k) * (k - 1);
    return std::log(2.0 / theta) - kk * t / theta;
}

double weightedIntervalSum(std::span<const CoalInterval> intervals) {
    double acc = 0.0;
    for (const auto& iv : intervals) {
        const double kk = static_cast<double>(iv.lineages) * (iv.lineages - 1);
        acc += kk * iv.length();
    }
    return acc;
}

double logCoalescentPrior(std::span<const CoalInterval> intervals, double theta) {
    require(theta > 0.0, "coalescent prior needs theta > 0");
    const double events = static_cast<double>(intervals.size());
    return events * std::log(2.0 / theta) - weightedIntervalSum(intervals) / theta;
}

double logCoalescentPrior(const Genealogy& g, double theta) {
    const auto ivs = g.intervals();
    return logCoalescentPrior(std::span<const CoalInterval>(ivs), theta);
}

double dLogCoalescentPrior(std::span<const CoalInterval> intervals, double theta) {
    require(theta > 0.0, "coalescent prior needs theta > 0");
    const double events = static_cast<double>(intervals.size());
    return -events / theta + weightedIntervalSum(intervals) / (theta * theta);
}

double singleTreeThetaMle(std::span<const CoalInterval> intervals) {
    require(!intervals.empty(), "theta MLE needs at least one interval");
    return weightedIntervalSum(intervals) / static_cast<double>(intervals.size());
}

}  // namespace mpcgs
