#include "coalescent/structured.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

MigrationModel::MigrationModel(int K, double th, double m) {
    theta.assign(static_cast<std::size_t>(K), th);
    mig.assign(static_cast<std::size_t>(K) * static_cast<std::size_t>(K), 0.0);
    for (int k = 0; k < K; ++k)
        for (int l = 0; l < K; ++l)
            if (k != l) setRate(k, l, m);
}

double MigrationModel::totalRateFrom(int k) const {
    double total = 0.0;
    for (int l = 0; l < demeCount(); ++l)
        if (l != k) total += rate(k, l);
    return total;
}

void MigrationModel::validate() const {
    const int K = demeCount();
    if (K < 1) throw ConfigError("MigrationModel: need at least one deme");
    if (mig.size() != static_cast<std::size_t>(K) * static_cast<std::size_t>(K))
        throw ConfigError("MigrationModel: migration matrix must be K x K");
    for (int k = 0; k < K; ++k)
        if (!(theta[static_cast<std::size_t>(k)] > 0.0) ||
            !std::isfinite(theta[static_cast<std::size_t>(k)]))
            throw ConfigError("MigrationModel: theta_" + std::to_string(k) +
                              " must be positive and finite");
    for (int k = 0; k < K; ++k)
        for (int l = 0; l < K; ++l) {
            if (k == l) continue;
            const double m = rate(k, l);
            if (!(m > 0.0) || !std::isfinite(m))
                throw ConfigError("MigrationModel: migration rate " + std::to_string(k) +
                                  "->" + std::to_string(l) + " must be positive and finite");
        }
}

StructuredGenealogy::StructuredGenealogy(Genealogy tree) : tree_(std::move(tree)) {
    nodeDeme_.assign(static_cast<std::size_t>(tree_.nodeCount()), 0);
    branchEvents_.assign(static_cast<std::size_t>(tree_.nodeCount()), {});
}

int StructuredGenealogy::demeAt(NodeId child, double t) const {
    int d = deme(child);
    for (const MigrationEvent& e : branchEvents(child)) {
        if (e.time > t) break;
        d = e.toDeme;
    }
    return d;
}

int StructuredGenealogy::topDeme(NodeId child) const {
    const auto& events = branchEvents(child);
    return events.empty() ? deme(child) : events.back().toDeme;
}

std::size_t StructuredGenealogy::migrationCount() const {
    std::size_t n = 0;
    for (const auto& events : branchEvents_) n += events.size();
    return n;
}

bool StructuredGenealogy::consistent(int K) const {
    if (nodeDeme_.size() != static_cast<std::size_t>(tree_.nodeCount()) ||
        branchEvents_.size() != static_cast<std::size_t>(tree_.nodeCount()))
        return false;
    for (NodeId id = 0; id < tree_.nodeCount(); ++id) {
        const int d0 = deme(id);
        if (d0 < 0 || d0 >= K) return false;
        const NodeId parent = tree_.node(id).parent;
        const auto& events = branchEvents(id);
        if (parent == kNoNode) {
            // The root has no branch; events above the root are not modeled.
            if (!events.empty()) return false;
            continue;
        }
        const double lo = tree_.node(id).time;
        const double hi = tree_.node(parent).time;
        int d = d0;
        double last = lo;
        for (const MigrationEvent& e : events) {
            if (!(e.time > last) || !(e.time < hi)) return false;
            if (e.toDeme < 0 || e.toDeme >= K || e.toDeme == d) return false;
            d = e.toDeme;
            last = e.time;
        }
        if (d != deme(parent)) return false;
    }
    return true;
}

void StructuredGenealogy::validate(int K) const {
    tree_.validate();
    require(consistent(K), "structured genealogy: inconsistent deme labelling");
}

StructuredSummary StructuredSummary::fromGenealogy(const StructuredGenealogy& g, int K) {
    StructuredSummary s;
    const auto Ku = static_cast<std::size_t>(K);
    s.coal.assign(Ku, 0.0);
    s.W.assign(Ku, 0.0);
    s.mig.assign(Ku * Ku, 0.0);
    s.U.assign(Ku, 0.0);

    const Genealogy& tree = g.tree();

    // Timeline events: coalescences (internal node times) and migrations,
    // swept from the present. Ties are broken (node id, then event order)
    // only for determinism; in continuous time they have measure zero.
    struct Event {
        double time;
        bool isCoal;
        int a;  ///< coalescence: deme; migration: from deme
        int b;  ///< migration: to deme
        NodeId node;
    };
    std::vector<Event> events;
    events.reserve(static_cast<std::size_t>(tree.nodeCount()) + g.migrationCount());
    for (NodeId id = 0; id < tree.nodeCount(); ++id) {
        if (!tree.isTip(id))
            events.push_back({tree.node(id).time, true, g.deme(id), 0, id});
        if (tree.node(id).parent == kNoNode) continue;
        int d = g.deme(id);
        for (const MigrationEvent& e : g.branchEvents(id)) {
            events.push_back({e.time, false, d, e.toDeme, id});
            d = e.toDeme;
        }
    }
    std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
        if (x.time != y.time) return x.time < y.time;
        if (x.isCoal != y.isCoal) return !x.isCoal;  // migrations first at ties
        return x.node < y.node;
    });

    // Lineage counts per deme, starting from the tips.
    std::vector<double> n(Ku, 0.0);
    for (NodeId tip = 0; tip < tree.tipCount(); ++tip)
        n[static_cast<std::size_t>(g.deme(tip))] += 1.0;

    double t = 0.0;
    for (const Event& e : events) {
        const double dt = e.time - t;
        for (std::size_t k = 0; k < Ku; ++k) {
            s.W[k] += n[k] * (n[k] - 1.0) * dt;
            s.U[k] += n[k] * dt;
        }
        t = e.time;
        if (e.isCoal) {
            s.coal[static_cast<std::size_t>(e.a)] += 1.0;
            n[static_cast<std::size_t>(e.a)] -= 1.0;
        } else {
            s.mig[static_cast<std::size_t>(e.a) * Ku + static_cast<std::size_t>(e.b)] += 1.0;
            n[static_cast<std::size_t>(e.a)] -= 1.0;
            n[static_cast<std::size_t>(e.b)] += 1.0;
        }
    }
    return s;
}

double logStructuredPrior(const StructuredSummary& s, const MigrationModel& model) {
    const int K = model.demeCount();
    require(s.demeCount() == K, "logStructuredPrior: summary/model deme count mismatch");
    double logP = 0.0;
    for (int k = 0; k < K; ++k) {
        const auto ku = static_cast<std::size_t>(k);
        const double th = model.theta[ku];
        logP += s.coal[ku] * std::log(2.0 / th) - s.W[ku] / th;
        for (int l = 0; l < K; ++l) {
            if (l == k) continue;
            const double m = model.rate(k, l);
            const double count = s.mig[ku * static_cast<std::size_t>(K) +
                                       static_cast<std::size_t>(l)];
            if (count > 0.0) {
                if (!(m > 0.0)) return -kInf;
                logP += count * std::log(m);
            }
            logP -= s.U[ku] * m;
        }
    }
    return logP;
}

double logStructuredPrior(const StructuredGenealogy& g, const MigrationModel& model) {
    if (!g.consistent(model.demeCount())) return -kInf;
    return logStructuredPrior(StructuredSummary::fromGenealogy(g, model.demeCount()), model);
}

StructuredGenealogy simulateStructuredCoalescent(const std::vector<int>& tipDemes,
                                                 const MigrationModel& model, Rng& rng) {
    model.validate();
    const int K = model.demeCount();
    const int nTips = static_cast<int>(tipDemes.size());
    if (nTips < 2) throw ConfigError("simulateStructuredCoalescent: need at least 2 tips");
    for (const int d : tipDemes)
        if (d < 0 || d >= K)
            throw ConfigError("simulateStructuredCoalescent: tip deme out of range");

    StructuredGenealogy g{Genealogy(nTips)};
    struct Lineage {
        NodeId node;
        int deme;
    };
    std::vector<Lineage> active;
    active.reserve(static_cast<std::size_t>(nTips));
    for (NodeId i = 0; i < nTips; ++i) {
        g.setDeme(i, tipDemes[static_cast<std::size_t>(i)]);
        active.push_back({i, tipDemes[static_cast<std::size_t>(i)]});
    }

    // Gillespie over the competing clocks: per-deme total coalescence rate
    // n_k (n_k - 1) / theta_k, per-pair migration channel rate n_k M_kl.
    // Weights are laid out [coal_0..coal_{K-1}, mig_{0,1}, mig_{0,2}, ...]
    // so one categorical draw picks the event type deterministically.
    std::vector<double> n(static_cast<std::size_t>(K), 0.0);
    std::vector<double> weights;
    double t = 0.0;
    NodeId nextInternal = nTips;
    while (active.size() > 1) {
        for (auto& c : n) c = 0.0;
        for (const Lineage& a : active) n[static_cast<std::size_t>(a.deme)] += 1.0;

        weights.clear();
        double total = 0.0;
        for (int k = 0; k < K; ++k) {
            const auto ku = static_cast<std::size_t>(k);
            const double w = n[ku] * (n[ku] - 1.0) / model.theta[ku];
            weights.push_back(w);
            total += w;
        }
        for (int k = 0; k < K; ++k)
            for (int l = 0; l < K; ++l) {
                if (l == k) continue;
                const double w = n[static_cast<std::size_t>(k)] * model.rate(k, l);
                weights.push_back(w);
                total += w;
            }
        require(total > 0.0, "simulateStructuredCoalescent: zero total rate");

        t += rng.exponential(total);
        std::size_t pick = rng.categorical(weights);

        if (pick < static_cast<std::size_t>(K)) {
            // Coalescence in deme `pick`: uniform pair among that deme's
            // lineages (active order is deterministic).
            const int d = static_cast<int>(pick);
            std::vector<std::size_t> inDeme;
            for (std::size_t i = 0; i < active.size(); ++i)
                if (active[i].deme == d) inDeme.push_back(i);
            const std::size_t ii = static_cast<std::size_t>(rng.below(inDeme.size()));
            std::size_t jj = static_cast<std::size_t>(rng.below(inDeme.size() - 1));
            if (jj >= ii) ++jj;
            const std::size_t lo = std::min(inDeme[ii], inDeme[jj]);
            const std::size_t hi = std::max(inDeme[ii], inDeme[jj]);

            const NodeId parent = nextInternal++;
            g.tree().node(parent).time = t;
            g.setDeme(parent, d);
            g.tree().link(parent, active[lo].node);
            g.tree().link(parent, active[hi].node);
            active[lo] = {parent, d};
            active[hi] = active.back();
            active.pop_back();
        } else {
            // Migration on channel (k -> l): uniform lineage within deme k.
            std::size_t channel = pick - static_cast<std::size_t>(K);
            int from = 0, to = 0, seen = 0;
            for (int k = 0; k < K && seen <= static_cast<int>(channel); ++k)
                for (int l = 0; l < K; ++l) {
                    if (l == k) continue;
                    if (static_cast<std::size_t>(seen) == channel) {
                        from = k;
                        to = l;
                    }
                    ++seen;
                }
            std::vector<std::size_t> inDeme;
            for (std::size_t i = 0; i < active.size(); ++i)
                if (active[i].deme == from) inDeme.push_back(i);
            const std::size_t i = inDeme[static_cast<std::size_t>(rng.below(inDeme.size()))];
            g.branchEvents(active[i].node).push_back({t, to});
            active[i].deme = to;
        }
    }

    g.tree().setRoot(active[0].node);
    g.validate(K);
    return g;
}

double twoDemeTransitionProb(const MigrationModel& model, int from, int to, double T) {
    require(model.demeCount() == 2, "twoDemeTransitionProb: needs exactly 2 demes");
    const double a = model.rate(0, 1);
    const double b = model.rate(1, 0);
    const double s = a + b;
    const double decay = std::exp(-s * T);
    // Stationary distribution (b, a) / (a + b); standard 2-state CTMC.
    const double p0stay = (b + a * decay) / s;   // 0 -> 0
    const double p1stay = (a + b * decay) / s;   // 1 -> 1
    if (from == 0) return to == 0 ? p0stay : 1.0 - p0stay;
    return to == 1 ? p1stay : 1.0 - p1stay;
}

}  // namespace mpcgs
