#include "coalescent/simulator.h"

#include <vector>

#include "util/error.h"

namespace mpcgs {

Genealogy simulateCoalescent(int nTips, double theta, Rng& rng) {
    if (nTips < 2) throw ConfigError("simulateCoalescent: need at least 2 tips");
    if (theta <= 0.0) throw ConfigError("simulateCoalescent: theta must be positive");

    Genealogy g(nTips);
    std::vector<NodeId> active;
    active.reserve(static_cast<std::size_t>(nTips));
    for (int i = 0; i < nTips; ++i) active.push_back(i);

    double t = 0.0;
    NodeId nextInternal = nTips;
    while (active.size() > 1) {
        const double k = static_cast<double>(active.size());
        t += rng.exponential(k * (k - 1.0) / theta);

        // Choose the merging pair uniformly.
        const std::size_t i = static_cast<std::size_t>(rng.below(active.size()));
        std::size_t j = static_cast<std::size_t>(rng.below(active.size() - 1));
        if (j >= i) ++j;

        const NodeId parent = nextInternal++;
        g.node(parent).time = t;
        g.link(parent, active[i]);
        g.link(parent, active[j]);

        // Replace the two lineages by the parent (order-stable removal).
        const std::size_t lo = i < j ? i : j;
        const std::size_t hi = i < j ? j : i;
        active[lo] = parent;
        active[hi] = active.back();
        active.pop_back();
    }

    g.setRoot(active[0]);
    g.validate();
    return g;
}

}  // namespace mpcgs
