#include "coalescent/moment_estimators.h"

#include <cmath>

#include "util/error.h"

namespace mpcgs {
namespace {

double harmonic(std::size_t n) {
    double a = 0.0;
    for (std::size_t i = 1; i <= n; ++i) a += 1.0 / static_cast<double>(i);
    return a;
}

/// Mean pairwise difference count across all sequence pairs.
double meanPairwiseDiffs(const Alignment& aln) {
    const std::size_t n = aln.sequenceCount();
    require(n >= 2, "moment estimators need at least 2 sequences");
    double acc = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            acc += static_cast<double>(aln.sequence(i).hammingDistance(aln.sequence(j)));
            ++pairs;
        }
    return acc / static_cast<double>(pairs);
}

}  // namespace

double wattersonTheta(const Alignment& aln) {
    const std::size_t n = aln.sequenceCount();
    require(n >= 2, "wattersonTheta needs at least 2 sequences");
    const double a1 = harmonic(n - 1);
    const double s = static_cast<double>(aln.segregatingSites());
    return s / (static_cast<double>(aln.length()) * a1);
}

double tajimaTheta(const Alignment& aln) {
    return meanPairwiseDiffs(aln) / static_cast<double>(aln.length());
}

double tajimaD(const Alignment& aln) {
    const std::size_t n = aln.sequenceCount();
    require(n >= 3, "tajimaD needs at least 3 sequences");
    const double s = static_cast<double>(aln.segregatingSites());
    if (s == 0.0) return 0.0;

    const double nd = static_cast<double>(n);
    const double a1 = harmonic(n - 1);
    double a2 = 0.0;
    for (std::size_t i = 1; i < n; ++i) a2 += 1.0 / (static_cast<double>(i) * static_cast<double>(i));
    const double b1 = (nd + 1.0) / (3.0 * (nd - 1.0));
    const double b2 = 2.0 * (nd * nd + nd + 3.0) / (9.0 * nd * (nd - 1.0));
    const double c1 = b1 - 1.0 / a1;
    const double c2 = b2 - (nd + 2.0) / (a1 * nd) + a2 / (a1 * a1);
    const double e1 = c1 / a1;
    const double e2 = c2 / (a1 * a1 + a2);

    const double d = meanPairwiseDiffs(aln) - s / a1;
    const double var = e1 * s + e2 * s * (s - 1.0);
    if (var <= 0.0) return 0.0;
    return d / std::sqrt(var);
}

}  // namespace mpcgs
