// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding
// checkpoint section payloads (format v5). Table-driven software
// implementation: snapshot sections are small relative to the sampling
// work between snapshots, so hardware CRC instructions are not worth a
// runtime dispatch here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpcgs {

/// CRC-32C of `bytes[0..n)`, continuing from `seed` (pass the previous
/// call's result to checksum a buffer in pieces; start at 0).
std::uint32_t crc32c(const void* bytes, std::size_t n, std::uint32_t seed = 0);

}  // namespace mpcgs
