#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace mpcgs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::addRow(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw std::invalid_argument("Table: row width mismatch");
    rows_.push_back(std::move(cells));
    return *this;
}

std::string Table::num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string Table::integer(long long v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", v);
    return buf;
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c];
            for (std::size_t k = cells[c].size(); k < w[c]; ++k) os << ' ';
            os << ' ';
        }
        os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << "|";
        for (std::size_t k = 0; k < w[c] + 2; ++k) os << '-';
    }
    os << "|\n";
    for (const auto& r : rows_) line(r);
}

void Table::printCsv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
}

}  // namespace mpcgs
