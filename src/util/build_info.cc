#include "util/build_info.h"

#include <cstdio>
#include <sstream>

#include "par/thread_pool.h"

#ifndef MPCGS_BUILD_TYPE
#define MPCGS_BUILD_TYPE "unknown"
#endif
#ifndef MPCGS_GIT_DESCRIBE
#define MPCGS_GIT_DESCRIBE "unknown"
#endif

namespace mpcgs {

const char* buildType() { return MPCGS_BUILD_TYPE; }

const char* gitDescribe() { return MPCGS_GIT_DESCRIBE; }

int simdWidthDoubles() {
#if defined(__AVX512F__)
    return 8;
#elif defined(__AVX2__) || defined(__AVX__)
    return 4;
#elif defined(__SSE2__) || defined(__aarch64__) || defined(__ARM_NEON)
    return 2;
#else
    return 1;
#endif
}

std::string buildConfigSummary() {
    std::ostringstream os;
    os << "build type:      " << buildType() << '\n'
       << "SIMD width:      " << simdWidthDoubles() << " doubles/vector\n"
       << "git describe:    " << gitDescribe() << '\n'
       << "default threads: " << hardwareThreads() << '\n';
    return os.str();
}

bool warnIfDirtyProvenance(const char* path) {
    const std::string git = gitDescribe();
    const bool dirty =
        git == "unknown" ||
        (git.size() >= 6 && git.compare(git.size() - 6, 6, "-dirty") == 0);
    if (dirty)
        std::fprintf(stderr,
                     "WARNING: writing %s with provenance git=\"%s\" — this build "
                     "does not correspond to a commit; do NOT commit this snapshot "
                     "(rebuild from a clean checkout and rerun)\n",
                     path, git.c_str());
    return dirty;
}

std::string buildProvenanceJson() {
    std::ostringstream os;
    os << "{\"build_type\": \"" << buildType() << "\", \"simd_doubles\": "
       << simdWidthDoubles() << ", \"git\": \"" << gitDescribe()
       << "\", \"default_threads\": " << hardwareThreads() << "}";
    return os.str();
}

}  // namespace mpcgs
