#include "util/build_info.h"

#include <sstream>

#include "par/thread_pool.h"

#ifndef MPCGS_BUILD_TYPE
#define MPCGS_BUILD_TYPE "unknown"
#endif
#ifndef MPCGS_GIT_DESCRIBE
#define MPCGS_GIT_DESCRIBE "unknown"
#endif

namespace mpcgs {

const char* buildType() { return MPCGS_BUILD_TYPE; }

const char* gitDescribe() { return MPCGS_GIT_DESCRIBE; }

int simdWidthDoubles() {
#if defined(__AVX512F__)
    return 8;
#elif defined(__AVX2__) || defined(__AVX__)
    return 4;
#elif defined(__SSE2__) || defined(__aarch64__) || defined(__ARM_NEON)
    return 2;
#else
    return 1;
#endif
}

std::string buildConfigSummary() {
    std::ostringstream os;
    os << "build type:      " << buildType() << '\n'
       << "SIMD width:      " << simdWidthDoubles() << " doubles/vector\n"
       << "git describe:    " << gitDescribe() << '\n'
       << "default threads: " << hardwareThreads() << '\n';
    return os.str();
}

std::string buildProvenanceJson() {
    std::ostringstream os;
    os << "{\"build_type\": \"" << buildType() << "\", \"simd_doubles\": "
       << simdWidthDoubles() << ", \"git\": \"" << gitDescribe()
       << "\", \"default_threads\": " << hardwareThreads() << "}";
    return os.str();
}

}  // namespace mpcgs
