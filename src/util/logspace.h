// Log-space arithmetic: underflow-safe probability computations.
//
// Reproduces §5.3 of Davis (2016): every quantity at risk of underflow is
// stored as its natural logarithm; addition of probabilities is performed
// with the max-factored identity of Eq. (32),
//
//   ln(x + y) = ln(e^{a-k} + e^{b-k}) + k,   k = max(a, b),
//
// which keeps at least the larger operand exactly representable.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace mpcgs {

/// Natural log of the sum of two probabilities given their logs.
///
/// Handles -inf (log of zero) operands exactly: logAdd(-inf, b) == b.
inline double logAdd(double a, double b) {
    if (a == -std::numeric_limits<double>::infinity()) return b;
    if (b == -std::numeric_limits<double>::infinity()) return a;
    const double k = (a > b) ? a : b;
    return std::log(std::exp(a - k) + std::exp(b - k)) + k;
}

/// Natural log of the difference of two probabilities, ln(e^a - e^b).
/// Requires a >= b; returns -inf when a == b.
inline double logSub(double a, double b) {
    assert(a >= b && "logSub requires a >= b");
    if (b == -std::numeric_limits<double>::infinity()) return a;
    const double d = -std::expm1(b - a);  // 1 - e^{b-a}, stable near 0
    if (d <= 0.0) return -std::numeric_limits<double>::infinity();
    return a + std::log(d);
}

/// Stable log-sum-exp over a span of log-values. Empty input -> -inf.
inline double logSumExp(std::span<const double> xs) {
    if (xs.empty()) return -std::numeric_limits<double>::infinity();
    double k = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        if (x > k) k = x;
    if (k == -std::numeric_limits<double>::infinity()) return k;
    double acc = 0.0;
    for (double x : xs) acc += std::exp(x - k);
    return std::log(acc) + k;
}

/// A non-negative real stored as its natural logarithm.
///
/// Used for likelihoods, priors and proposal densities throughout the
/// library. Multiplication/division are exact (log add/sub); addition uses
/// the max-factored identity. The value 0 is representable (log == -inf).
class LogValue {
  public:
    /// One (log == 0); the multiplicative identity.
    constexpr LogValue() : log_(0.0) {}

    /// Construct from an already-logged value.
    static constexpr LogValue fromLog(double lg) { return LogValue(lg, 0); }

    /// Construct from a linear-space value (must be >= 0).
    static LogValue fromLinear(double v) {
        assert(v >= 0.0);
        return LogValue(v > 0.0 ? std::log(v) : -std::numeric_limits<double>::infinity(), 0);
    }

    static constexpr LogValue zero() {
        return LogValue(-std::numeric_limits<double>::infinity(), 0);
    }
    static constexpr LogValue one() { return LogValue(0.0, 0); }

    /// The stored logarithm.
    constexpr double log() const { return log_; }
    /// Back to linear space (may overflow/underflow for extreme logs).
    double linear() const { return std::exp(log_); }

    constexpr bool isZero() const {
        return log_ == -std::numeric_limits<double>::infinity();
    }

    LogValue& operator*=(LogValue o) {
        log_ += o.log_;
        return *this;
    }
    LogValue& operator/=(LogValue o) {
        log_ -= o.log_;
        return *this;
    }
    LogValue& operator+=(LogValue o) {
        log_ = logAdd(log_, o.log_);
        return *this;
    }

    friend LogValue operator*(LogValue a, LogValue b) { return a *= b; }
    friend LogValue operator/(LogValue a, LogValue b) { return a /= b; }
    friend LogValue operator+(LogValue a, LogValue b) { return a += b; }

    friend bool operator==(LogValue a, LogValue b) { return a.log_ == b.log_; }
    friend bool operator<(LogValue a, LogValue b) { return a.log_ < b.log_; }
    friend bool operator>(LogValue a, LogValue b) { return a.log_ > b.log_; }
    friend bool operator<=(LogValue a, LogValue b) { return a.log_ <= b.log_; }
    friend bool operator>=(LogValue a, LogValue b) { return a.log_ >= b.log_; }

    /// a^p for real p.
    LogValue pow(double p) const { return fromLog(log_ * p); }

  private:
    constexpr LogValue(double lg, int) : log_(lg) {}
    double log_;
};

/// Normalize a vector of log-weights into linear-space probabilities that
/// sum to 1 (max-normalized before exponentiation; §5.2.3).
/// Returns the log of the normalizing constant (logSumExp of the input).
double logNormalize(std::span<const double> logWeights, std::vector<double>& probsOut);

}  // namespace mpcgs
