// Build provenance: compile-time facts every tool can print
// (--print-config) and every bench harness can stamp into its
// BENCH_*.json snapshot, so committed numbers carry the configuration
// that produced them.
#pragma once

#include <string>

namespace mpcgs {

/// CMAKE_BUILD_TYPE the library was compiled with ("Release", "Debug",
/// "unknown" outside CMake).
const char* buildType();

/// `git describe --always --dirty` captured at configure time
/// ("unknown" outside a git checkout).
const char* gitDescribe();

/// Widest SIMD register the compiler could target, in doubles per vector
/// (8 = AVX-512, 4 = AVX/AVX2, 2 = SSE2/NEON, 1 = scalar). The likelihood
/// kernels rely on auto-vectorization at exactly this width.
int simdWidthDoubles();

/// Human-readable multi-line summary: build type, SIMD width, git
/// describe, and the runtime thread default (hardwareThreads()).
std::string buildConfigSummary();

/// The same facts as one JSON object, e.g.
/// {"build_type": "Release", "simd_doubles": 4, "git": "abc1234",
///  "default_threads": 8} — embedded under "provenance" in BENCH_*.json.
std::string buildProvenanceJson();

/// Print a loud stderr warning when the configure-time git describe is
/// "-dirty" (or unknown): a committed BENCH snapshot stamped from an
/// unclean tree can't be reproduced from any commit. Bench harnesses call
/// this right before writing `path`. Returns true when the warning fired.
bool warnIfDirtyProvenance(const char* path);

}  // namespace mpcgs
