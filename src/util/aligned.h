// Cache-line-aligned, grow-only storage for the likelihood kernels.
//
// The pattern-major partials arenas want 64-byte alignment (full AVX-512
// vectors, no cache-line splits) and must not be reallocated on the MCMC
// hot path: PartialsBuffer sizes them once per (genealogy shape, pattern
// count) and reuses them across every subsequent sampler step.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

namespace mpcgs {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Grow-only array of doubles with 64-byte-aligned storage. `ensure` keeps
/// existing storage when the requested size fits the current capacity;
/// growing discards contents (callers overwrite anyway). Not copyable.
class AlignedDoubles {
  public:
    AlignedDoubles() = default;
    ~AlignedDoubles() { ::operator delete[](data_, std::align_val_t{kCacheLineBytes}); }

    AlignedDoubles(const AlignedDoubles&) = delete;
    AlignedDoubles& operator=(const AlignedDoubles&) = delete;
    AlignedDoubles(AlignedDoubles&& o) noexcept
        : data_(o.data_), size_(o.size_), capacity_(o.capacity_) {
        o.data_ = nullptr;
        o.size_ = o.capacity_ = 0;
    }
    AlignedDoubles& operator=(AlignedDoubles&& o) noexcept {
        if (this != &o) {
            ::operator delete[](data_, std::align_val_t{kCacheLineBytes});
            data_ = o.data_;
            size_ = o.size_;
            capacity_ = o.capacity_;
            o.data_ = nullptr;
            o.size_ = o.capacity_ = 0;
        }
        return *this;
    }

    /// Make at least `n` doubles available (contents unspecified on growth).
    void ensure(std::size_t n) {
        if (n > capacity_) {
            ::operator delete[](data_, std::align_val_t{kCacheLineBytes});
            data_ = static_cast<double*>(
                ::operator new[](n * sizeof(double), std::align_val_t{kCacheLineBytes}));
            capacity_ = n;
        }
        size_ = n;
    }

    double* data() { return data_; }
    const double* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

  private:
    double* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

/// Round `n` up to a multiple of `unit` (a power of two is typical; any
/// positive unit works).
inline constexpr std::size_t roundUpTo(std::size_t n, std::size_t unit) {
    return ((n + unit - 1) / unit) * unit;
}

}  // namespace mpcgs
