// Deterministic fault-injection framework ("fail points").
//
// A fail point is a named site in the I/O or numeric hot path where a
// fault can be injected on demand: an errno-style I/O failure, a thrown
// error, a poisoned (NaN / -inf) numeric value, or a hard abort. Sites are
// compiled into the binary permanently but cost a single relaxed atomic
// load + branch when no fail point is armed, so production runs pay
// nothing measurable.
//
// Activation comes from the MPCGS_FAILPOINTS environment variable or a
// programmatic configure() call (the tools expose --failpoints). The spec
// grammar, one clause per point, ';'-separated:
//
//   <name>=<trigger>[:<action>]
//   trigger := off | once | after(K) | every(N)
//   action  := error | errno=<ENOSPC|EIO|ENOENT|EINTR|number>
//            | nan | abort
//
//   once      fire on the first evaluation only
//   after(K)  fire exactly once, on evaluation K+1 (skip the first K)
//   every(N)  fire on every Nth evaluation (N, 2N, ...)
//
// Evaluations are counted per point from process start (or the last
// reset()), so an injected run is a deterministic function of the spec —
// resumable and bisectable like any other run. Unknown point names are
// rejected at configure time against the compile-time registry, so a typo
// fails loudly instead of silently never firing.
//
// Site usage:
//
//   if (auto hit = MPCGS_FAILPOINT("checkpoint.write"); hit.fired())
//       ...translate hit into the site's failure mode...
//
// I/O sites translate Action::Errno into the same typed error a real
// syscall failure produces (message includes strerror); numeric sites
// translate Action::Nan into a poisoned value that the numeric guardrails
// must catch. Action::Abort calls std::abort() inside evaluate() itself —
// the site never sees the hit.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace mpcgs {

/// A fault injected through a fail point armed with action `error` (I/O
/// sites may instead raise their own site-typed error, e.g.
/// CheckpointError, so callers see the identical type a real fault
/// produces).
class InjectedFaultError : public Error {
  public:
    explicit InjectedFaultError(const std::string& what)
        : Error("injected fault: " + what) {}
};

namespace failpoint {

enum class Action : std::uint8_t { Off, Error, Errno, Nan, Abort };

enum class Kind : std::uint8_t { Io, Numeric };

/// Outcome of one fail-point evaluation.
struct Hit {
    Action action = Action::Off;
    int errnum = 0;  ///< meaningful for Action::Errno

    bool fired() const { return action != Action::Off; }
};

namespace detail {
extern std::atomic<bool> gAnyArmed;
Hit evaluateSlow(const char* name);
}  // namespace detail

/// Evaluate the fail point `name`: counts the evaluation and returns the
/// armed action when the trigger fires. The fast path (nothing armed
/// process-wide) is one relaxed load and a branch.
inline Hit evaluate(const char* name) {
    if (!detail::gAnyArmed.load(std::memory_order_relaxed)) return Hit{};
    return detail::evaluateSlow(name);
}

/// Arm fail points from a spec string (see the grammar above). Clauses
/// accumulate over earlier configure() calls; `name=off` disarms one
/// point. Throws ConfigError on syntax errors or names missing from the
/// registry.
void configure(const std::string& spec);

/// Arm from the MPCGS_FAILPOINTS environment variable (no-op when unset).
/// Called once by the tools' mains before any estimator runs.
void configureFromEnv();

/// Disarm every point and zero all evaluation counters (tests).
void reset();

/// Number of times `name` has been evaluated since start/reset (tests).
std::uint64_t evaluations(const std::string& name);

/// One registry entry: the site's name and whether it is an I/O or a
/// numeric injection point (the fault-injection matrix test derives the
/// armed action from the kind).
struct RegisteredPoint {
    const char* name;
    Kind kind;
};

/// The compile-time registry of every fail-point site in the binary.
std::vector<RegisteredPoint> registeredPoints();

}  // namespace failpoint
}  // namespace mpcgs

/// Site macro: evaluates to a failpoint::Hit. No-op branch when nothing is
/// armed anywhere in the process.
#define MPCGS_FAILPOINT(name) (::mpcgs::failpoint::evaluate(name))
