// Minimal command-line option parsing for the tools, examples and bench
// harnesses. Supports --flag, --key value, --key=value and positional
// arguments; no external dependencies.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mpcgs {

class Options {
  public:
    /// Parse argv. Anything starting with "--" is an option; a following
    /// token that is not an option is its value, otherwise it is a flag.
    static Options parse(int argc, const char* const* argv);

    bool has(const std::string& key) const;

    std::optional<std::string> get(const std::string& key) const;
    std::string get(const std::string& key, const std::string& dflt) const;
    long long getInt(const std::string& key, long long dflt) const;
    double getDouble(const std::string& key, double dflt) const;
    bool getBool(const std::string& key, bool dflt) const;

    const std::vector<std::string>& positional() const { return positional_; }
    const std::string& programName() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> kv_;
    std::vector<std::string> positional_;
};

}  // namespace mpcgs
