// Library-wide exception types and precondition checks.
#pragma once

#include <stdexcept>
#include <string>

namespace mpcgs {

/// Base class for all mpcgs errors.
class Error : public std::runtime_error {
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (PHYLIP/Newick/FASTA parse failures, bad sequences).
class ParseError : public Error {
  public:
    explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Violated invariant in a genealogy or sampler state.
class InvariantError : public Error {
  public:
    explicit InvariantError(const std::string& what) : Error("invariant violated: " + what) {}
};

/// Invalid user-supplied configuration (e.g. non-positive theta).
class ConfigError : public Error {
  public:
    explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Non-finite log-likelihood, importance weight, or degenerate particle
/// cloud caught by a numeric guardrail (core/numeric_guard.h). The
/// offending state is dumped to a diagnostic file before this is raised;
/// the message names that file. Maps to the io/numeric exit-code taxonomy
/// (kExitNumericFault) in the tools.
class NumericError : public Error {
  public:
    explicit NumericError(const std::string& what) : Error("numeric fault: " + what) {}
};

/// Non-checkpoint file I/O failure (metrics/trace emission, CSV sinks).
/// Maps to kExitIoFault in the tools, same slot as CheckpointError: losing
/// observability output is an operational fault, not a silent warning.
class IoError : public Error {
  public:
    explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Throw InvariantError when cond is false. Used for checks that must stay
/// active in release builds (tree validity after proposals, etc.).
inline void require(bool cond, const char* msg) {
    if (!cond) throw InvariantError(msg);
}

}  // namespace mpcgs
