// Aligned text tables and CSV output for the benchmark harnesses, so every
// bench binary prints paper-style rows (Tables 1-4) uniformly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mpcgs {

/// Column-aligned table builder. Cells are strings; numeric helpers format
/// with fixed precision. Renders as a Markdown-ish aligned table and as CSV.
class Table {
  public:
    explicit Table(std::vector<std::string> headers);

    Table& addRow(std::vector<std::string> cells);

    /// Format helpers.
    static std::string num(double v, int precision = 3);
    static std::string integer(long long v);

    /// Pretty-print with column alignment and a header rule.
    void print(std::ostream& os) const;

    /// Comma-separated values (headers first).
    void printCsv(std::ostream& os) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t cols() const { return headers_.size(); }
    const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpcgs
