// Wall-clock timing for the speedup experiments (Tables 2-4 / Figs 14-16).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace mpcgs {

/// Monotonic wall-clock stopwatch.
class Timer {
  public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Elapsed seconds since construction or last reset().
    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    // Every elapsed-time figure the tools and benches report rides on this
    // clock; a non-monotonic source (NTP step, suspend) would surface as
    // negative phase durations. tests/util_test.cc checks monotonicity.
    static_assert(Clock::is_steady, "Timer requires a monotonic clock");
    Clock::time_point start_;
};

/// Accumulates time across start/stop intervals (for phase breakdowns).
class PhaseTimer {
  public:
    void start() { t_.reset(); running_ = true; }
    void stop() {
        if (running_) total_ += t_.seconds();
        running_ = false;
    }
    double totalSeconds() const { return total_; }
    void reset() { total_ = 0.0; running_ = false; }

  private:
    Timer t_;
    double total_ = 0.0;
    bool running_ = false;
};

/// Human-readable duration, e.g. "1.24 s" or "312 ms".
std::string formatDuration(double seconds);

}  // namespace mpcgs
