#include "util/timer.h"

#include <cstdio>

namespace mpcgs {

std::string formatDuration(double seconds) {
    char buf[64];
    if (seconds >= 60.0) {
        std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
    } else if (seconds >= 1.0) {
        std::snprintf(buf, sizeof buf, "%.2f s", seconds);
    } else if (seconds >= 1e-3) {
        std::snprintf(buf, sizeof buf, "%.0f ms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.0f us", seconds * 1e6);
    }
    return buf;
}

}  // namespace mpcgs
