#include "util/crc32c.h"

#include <array>

namespace mpcgs {
namespace {

/// Byte-at-a-time table for the reflected Castagnoli polynomial
/// (0x82F63B78 is 0x1EDC6F41 bit-reversed), built once at load.
std::array<std::uint32_t, 256> makeTable() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
        table[i] = crc;
    }
    return table;
}

const std::array<std::uint32_t, 256> kTable = makeTable();

}  // namespace

std::uint32_t crc32c(const void* bytes, std::size_t n, std::uint32_t seed) {
    const auto* p = static_cast<const unsigned char*>(bytes);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < n; ++i) crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
    return ~crc;
}

}  // namespace mpcgs
