// Descriptive statistics used by the accuracy evaluation (Table 1 / Fig 13)
// and by the MCMC diagnostics.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace mpcgs {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Unbiased (n-1) sample variance; 0 for fewer than two points.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation.
double stdev(std::span<const double> xs);

/// Pearson product-moment correlation coefficient between two equal-length
/// series. This is the accuracy metric of §6.1 (r = 0.905 in the paper).
/// Throws std::invalid_argument on length mismatch or length < 2.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Median (copies and partially sorts); throws on empty input.
double median(std::span<const double> xs);

/// Quantile in [0,1] with linear interpolation; throws on empty input.
double quantile(std::span<const double> xs, double q);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
  public:
    void add(double x) {
        ++n_;
        const double d = x - mean_;
        mean_ += d / static_cast<double>(n_);
        m2_ += d * (x - mean_);
        if (x < min_ || n_ == 1) min_ = x;
        if (x > max_ || n_ == 1) max_ = x;
    }
    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
    double stdev() const { return std::sqrt(variance()); }
    double min() const { return min_; }
    double max() const { return max_; }

    /// Merge another accumulator (parallel reduction support).
    void merge(const RunningStats& o);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Lag-k autocorrelation of a series (biased normalization, standard for
/// MCMC diagnostics).
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Effective sample size via initial-positive-sequence truncation of the
/// autocorrelation sum (Geyer 1992 style, simplified).
double effectiveSampleSize(std::span<const double> xs);

/// Simple fixed-width histogram; used by the burn-in/trace examples.
struct Histogram {
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::size_t> bins;

    Histogram(double lo_, double hi_, std::size_t nbins);
    void add(double x);
    std::size_t total() const;
};

}  // namespace mpcgs
