#include "util/matrix4.h"

#include <cmath>

namespace mpcgs {

Matrix4 Matrix4::identity() {
    Matrix4 r;
    for (std::size_t i = 0; i < 4; ++i) r.m[i][i] = 1.0;
    return r;
}

Matrix4 Matrix4::operator*(const Matrix4& o) const {
    Matrix4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t k = 0; k < 4; ++k) {
            const double a = m[i][k];
            if (a == 0.0) continue;
            for (std::size_t j = 0; j < 4; ++j) r.m[i][j] += a * o.m[k][j];
        }
    return r;
}

Matrix4 Matrix4::operator+(const Matrix4& o) const {
    Matrix4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) r.m[i][j] = m[i][j] + o.m[i][j];
    return r;
}

Matrix4 Matrix4::operator-(const Matrix4& o) const {
    Matrix4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) r.m[i][j] = m[i][j] - o.m[i][j];
    return r;
}

Matrix4 Matrix4::scaled(double s) const {
    Matrix4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) r.m[i][j] = m[i][j] * s;
    return r;
}

Matrix4 Matrix4::transposed() const {
    Matrix4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) r.m[j][i] = m[i][j];
    return r;
}

void Matrix4::packTransposed(double out[16]) const {
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c) out[4 * c + r] = m[r][c];
}

std::array<double, 4> Matrix4::apply(const std::array<double, 4>& v) const {
    std::array<double, 4> r{};
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) r[i] += m[i][j] * v[j];
    return r;
}

double Matrix4::maxAbsDiff(const Matrix4& o) const {
    double d = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
            const double v = std::fabs(m[i][j] - o.m[i][j]);
            if (v > d) d = v;
        }
    return d;
}

double Matrix4::rowSumError() const {
    double e = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < 4; ++j) s += m[i][j];
        const double v = std::fabs(s - 1.0);
        if (v > e) e = v;
    }
    return e;
}

SymEigen4 symmetricEigen(const Matrix4& input) {
    // Symmetrize defensively; inputs should already be symmetric.
    Matrix4 a;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) a.m[i][j] = 0.5 * (input.m[i][j] + input.m[j][i]);

    Matrix4 v = Matrix4::identity();
    // Cyclic Jacobi sweeps; 4x4 converges in a handful of sweeps.
    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < 4; ++p)
            for (std::size_t q = p + 1; q < 4; ++q) off += a.m[p][q] * a.m[p][q];
        if (off < 1e-30) break;

        for (std::size_t p = 0; p < 4; ++p) {
            for (std::size_t q = p + 1; q < 4; ++q) {
                const double apq = a.m[p][q];
                if (std::fabs(apq) < 1e-300) continue;
                const double theta = (a.m[q][q] - a.m[p][p]) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < 4; ++k) {
                    const double akp = a.m[k][p];
                    const double akq = a.m[k][q];
                    a.m[k][p] = c * akp - s * akq;
                    a.m[k][q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < 4; ++k) {
                    const double apk = a.m[p][k];
                    const double aqk = a.m[q][k];
                    a.m[p][k] = c * apk - s * aqk;
                    a.m[q][k] = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < 4; ++k) {
                    const double vkp = v.m[k][p];
                    const double vkq = v.m[k][q];
                    v.m[k][p] = c * vkp - s * vkq;
                    v.m[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    SymEigen4 out;
    for (std::size_t i = 0; i < 4; ++i) out.values[i] = a.m[i][i];
    out.vectors = v;
    return out;
}

}  // namespace mpcgs
