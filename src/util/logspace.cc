#include "util/logspace.h"

namespace mpcgs {

double logNormalize(std::span<const double> logWeights, std::vector<double>& probsOut) {
    probsOut.resize(logWeights.size());
    const double lz = logSumExp(logWeights);
    if (lz == -std::numeric_limits<double>::infinity()) {
        // All weights are zero: fall back to uniform so callers can still
        // sample; this only happens on degenerate inputs.
        const double u = logWeights.empty() ? 0.0 : 1.0 / static_cast<double>(logWeights.size());
        for (auto& p : probsOut) p = u;
        return lz;
    }
    for (std::size_t i = 0; i < logWeights.size(); ++i)
        probsOut[i] = std::exp(logWeights[i] - lz);
    return lz;
}

}  // namespace mpcgs
