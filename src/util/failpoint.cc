#include "util/failpoint.h"

#include <cerrno>
#include <cstdlib>
#include <mutex>

namespace mpcgs::failpoint {
namespace {

/// Every fail-point site compiled into the binary. configure() validates
/// names against this list, and the fault-injection matrix test sweeps it,
/// so adding a site without registering it here fails the tests.
constexpr RegisteredPoint kRegistry[] = {
    // Checkpoint writer I/O path.
    {"checkpoint.open", Kind::Io},
    {"checkpoint.write", Kind::Io},
    {"checkpoint.fsync", Kind::Io},
    {"checkpoint.rename", Kind::Io},
    // Checkpoint reader path (resume).
    {"checkpoint.read.open", Kind::Io},
    {"checkpoint.read", Kind::Io},
    // Numeric guardrail boundaries.
    {"mcmc.logpost", Kind::Numeric},
    {"smc.weight", Kind::Numeric},
    {"smc.collapse", Kind::Numeric},
    {"pmmh.logz", Kind::Numeric},
    // Supervisor tick boundary: armed in tests to request a deterministic
    // cooperative stop (stands in for a SIGTERM at that exact tick).
    {"supervisor.stop", Kind::Io},
    // Serve daemon: fires per accepted job, before dispatch (src/serve/).
    {"serve.accept", Kind::Io},
    // Online SMC add-sequence reweight boundary (src/smc/online_update.cc).
    {"online.reweight", Kind::Numeric},
    // Observability emission: metrics/trace file writes (src/obs/).
    {"obs.emit", Kind::Io},
};

struct TriggerSpec {
    enum class Mode : std::uint8_t { Off, Once, After, Every } mode = Mode::Off;
    std::uint64_t param = 0;  ///< K for after(K), N for every(N)
    Action action = Action::Off;
    int errnum = 0;
};

struct PointState {
    const RegisteredPoint* reg = nullptr;
    TriggerSpec spec;
    std::uint64_t evals = 0;
};

std::mutex gMutex;
PointState gStates[std::size(kRegistry)];
bool gInitialized = false;

void initLocked() {
    if (gInitialized) return;
    for (std::size_t i = 0; i < std::size(kRegistry); ++i) gStates[i].reg = &kRegistry[i];
    gInitialized = true;
}

PointState* findLocked(const std::string& name) {
    initLocked();
    for (PointState& s : gStates)
        if (name == s.reg->name) return &s;
    return nullptr;
}

void refreshArmedLocked() {
    bool any = false;
    for (const PointState& s : gStates) any |= s.spec.mode != TriggerSpec::Mode::Off;
    detail::gAnyArmed.store(any, std::memory_order_relaxed);
}

int parseErrno(const std::string& text) {
    if (text == "ENOSPC") return ENOSPC;
    if (text == "EIO") return EIO;
    if (text == "ENOENT") return ENOENT;
    if (text == "EINTR") return EINTR;
    if (text == "EACCES") return EACCES;
    try {
        return std::stoi(text);
    } catch (...) {
        throw ConfigError("failpoints: unknown errno '" + text + "'");
    }
}

TriggerSpec parseClauseBody(const std::string& name, const std::string& body) {
    // body = <trigger>[:<action>]
    TriggerSpec spec;
    const std::size_t colon = body.find(':');
    const std::string trigger = body.substr(0, colon);
    const std::string action =
        colon == std::string::npos ? std::string("error") : body.substr(colon + 1);

    const auto parseParam = [&](const std::string& t, const char* prefix) {
        const std::size_t open = t.find('(');
        const std::size_t close = t.rfind(')');
        if (open == std::string::npos || close != t.size() - 1 || close <= open + 1)
            throw ConfigError("failpoints: malformed trigger '" + t + "' for '" + name +
                              "' (expected " + prefix + "(<count>))");
        try {
            return static_cast<std::uint64_t>(std::stoull(t.substr(open + 1, close - open - 1)));
        } catch (...) {
            throw ConfigError("failpoints: bad count in trigger '" + t + "' for '" + name + "'");
        }
    };

    if (trigger == "off") {
        spec.mode = TriggerSpec::Mode::Off;
        return spec;
    } else if (trigger == "once") {
        spec.mode = TriggerSpec::Mode::Once;
    } else if (trigger.rfind("after(", 0) == 0) {
        spec.mode = TriggerSpec::Mode::After;
        spec.param = parseParam(trigger, "after");
    } else if (trigger.rfind("every(", 0) == 0) {
        spec.mode = TriggerSpec::Mode::Every;
        spec.param = parseParam(trigger, "every");
        if (spec.param == 0)
            throw ConfigError("failpoints: every(0) is meaningless for '" + name + "'");
    } else {
        throw ConfigError("failpoints: unknown trigger '" + trigger + "' for '" + name +
                          "' (expected off | once | after(K) | every(N))");
    }

    if (action == "error") {
        spec.action = Action::Error;
    } else if (action.rfind("errno=", 0) == 0) {
        spec.action = Action::Errno;
        spec.errnum = parseErrno(action.substr(6));
    } else if (action == "nan") {
        spec.action = Action::Nan;
    } else if (action == "abort") {
        spec.action = Action::Abort;
    } else {
        throw ConfigError("failpoints: unknown action '" + action + "' for '" + name +
                          "' (expected error | errno=<E> | nan | abort)");
    }
    return spec;
}

}  // namespace

namespace detail {

std::atomic<bool> gAnyArmed{false};

Hit evaluateSlow(const char* name) {
    TriggerSpec firing;
    {
        std::lock_guard<std::mutex> lock(gMutex);
        PointState* s = findLocked(name);
        if (!s || s->spec.mode == TriggerSpec::Mode::Off) {
            if (s) ++s->evals;
            return Hit{};
        }
        const std::uint64_t n = ++s->evals;  // 1-based evaluation index
        bool fire = false;
        switch (s->spec.mode) {
            case TriggerSpec::Mode::Off:
                break;
            case TriggerSpec::Mode::Once:
                fire = n == 1;
                break;
            case TriggerSpec::Mode::After:
                fire = n == s->spec.param + 1;
                break;
            case TriggerSpec::Mode::Every:
                fire = n % s->spec.param == 0;
                break;
        }
        if (!fire) return Hit{};
        firing = s->spec;
    }
    if (firing.action == Action::Abort) std::abort();
    return Hit{firing.action, firing.errnum};
}

}  // namespace detail

void configure(const std::string& spec) {
    std::lock_guard<std::mutex> lock(gMutex);
    initLocked();
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos) end = spec.size();
        const std::string clause = spec.substr(pos, end - pos);
        pos = end + 1;
        if (clause.empty()) continue;
        const std::size_t eq = clause.find('=');
        // Careful: action errno=E also contains '='; the FIRST '=' splits
        // name from body only when it precedes any ':'.
        const std::size_t colon = clause.find(':');
        if (eq == std::string::npos || (colon != std::string::npos && eq > colon))
            throw ConfigError("failpoints: malformed clause '" + clause +
                              "' (expected <name>=<trigger>[:<action>])");
        const std::string name = clause.substr(0, eq);
        PointState* s = findLocked(name);
        if (!s) {
            std::string known;
            for (const RegisteredPoint& p : kRegistry)
                known += std::string(known.empty() ? "" : ", ") + p.name;
            throw ConfigError("failpoints: unknown fail point '" + name +
                              "' (registered: " + known + ")");
        }
        s->spec = parseClauseBody(name, clause.substr(eq + 1));
        s->evals = 0;
    }
    refreshArmedLocked();
}

void configureFromEnv() {
    if (const char* env = std::getenv("MPCGS_FAILPOINTS"); env && *env) configure(env);
}

void reset() {
    std::lock_guard<std::mutex> lock(gMutex);
    initLocked();
    for (PointState& s : gStates) {
        s.spec = TriggerSpec{};
        s.evals = 0;
    }
    refreshArmedLocked();
}

std::uint64_t evaluations(const std::string& name) {
    std::lock_guard<std::mutex> lock(gMutex);
    const PointState* s = findLocked(name);
    return s ? s->evals : 0;
}

std::vector<RegisteredPoint> registeredPoints() {
    return std::vector<RegisteredPoint>(std::begin(kRegistry), std::end(kRegistry));
}

}  // namespace mpcgs::failpoint
