#include "util/options.h"

#include <cstdlib>
#include <stdexcept>

namespace mpcgs {

Options Options::parse(int argc, const char* const* argv) {
    Options o;
    if (argc > 0) o.program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) == 0) {
            a = a.substr(2);
            const auto eq = a.find('=');
            if (eq != std::string::npos) {
                o.kv_[a.substr(0, eq)] = a.substr(eq + 1);
            } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                o.kv_[a] = argv[++i];
            } else {
                o.kv_[a] = "";  // bare flag
            }
        } else {
            o.positional_.push_back(a);
        }
    }
    return o;
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::optional<std::string> Options::get(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
}

std::string Options::get(const std::string& key, const std::string& dflt) const {
    return get(key).value_or(dflt);
}

long long Options::getInt(const std::string& key, long long dflt) const {
    const auto v = get(key);
    if (!v || v->empty()) return dflt;
    return std::strtoll(v->c_str(), nullptr, 10);
}

double Options::getDouble(const std::string& key, double dflt) const {
    const auto v = get(key);
    if (!v || v->empty()) return dflt;
    return std::strtod(v->c_str(), nullptr);
}

bool Options::getBool(const std::string& key, bool dflt) const {
    const auto v = get(key);
    if (!v) return dflt;
    if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
    return false;
}

}  // namespace mpcgs
