// Dense 4x4 real matrices and a symmetric eigensolver, sized for nucleotide
// substitution models. Self-contained so the seq module needs no external
// linear-algebra dependency.
#pragma once

#include <array>
#include <cstddef>

namespace mpcgs {

/// Row-major 4x4 matrix of doubles.
struct Matrix4 {
    std::array<std::array<double, 4>, 4> m{};

    static Matrix4 identity();
    static Matrix4 zero() { return Matrix4{}; }

    double& operator()(std::size_t r, std::size_t c) { return m[r][c]; }
    double operator()(std::size_t r, std::size_t c) const { return m[r][c]; }

    Matrix4 operator*(const Matrix4& o) const;
    Matrix4 operator+(const Matrix4& o) const;
    Matrix4 operator-(const Matrix4& o) const;
    Matrix4 scaled(double s) const;
    Matrix4 transposed() const;

    /// Pack the transpose into a flat column-major block: out[4*c + r] =
    /// m[r][c], i.e. out row y holds P(., y). The likelihood kernels read
    /// this layout so the 4-wide state loop has unit-stride loads.
    void packTransposed(double out[16]) const;

    /// Multiply a column vector.
    std::array<double, 4> apply(const std::array<double, 4>& v) const;

    /// Largest absolute entry of (this - o).
    double maxAbsDiff(const Matrix4& o) const;

    /// Max row-sum deviation from 1 (stochasticity check).
    double rowSumError() const;
};

/// Eigendecomposition of a symmetric 4x4 matrix via cyclic Jacobi rotation.
/// On return: `values` are eigenvalues and the columns of `vectors` the
/// corresponding orthonormal eigenvectors (A = V diag(values) V^T).
struct SymEigen4 {
    std::array<double, 4> values{};
    Matrix4 vectors;
};

/// Requires a symmetric input (asymmetry is averaged away first).
SymEigen4 symmetricEigen(const Matrix4& a);

}  // namespace mpcgs
