#include "util/stats.h"

#include <algorithm>
#include <numeric>

namespace mpcgs {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double stdev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size())
        throw std::invalid_argument("pearson: length mismatch");
    if (xs.size() < 2)
        throw std::invalid_argument("pearson: need at least two points");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    const double denom = std::sqrt(sxx * syy);
    if (denom == 0.0)
        throw std::invalid_argument("pearson: zero variance series");
    return sxy / denom;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) throw std::invalid_argument("quantile: empty input");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void RunningStats::merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    const auto n = n_ + o.n_;
    const double d = o.mean_ - mean_;
    const double nd = static_cast<double>(n);
    m2_ += o.m2_ + d * d * static_cast<double>(n_) * static_cast<double>(o.n_) / nd;
    mean_ += d * static_cast<double>(o.n_) / nd;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
    const std::size_t n = xs.size();
    if (lag >= n || n < 2) return 0.0;
    const double m = mean(xs);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) den += (xs[i] - m) * (xs[i] - m);
    if (den == 0.0) return 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) num += (xs[i] - m) * (xs[i + lag] - m);
    return num / den;
}

double effectiveSampleSize(std::span<const double> xs) {
    const std::size_t n = xs.size();
    if (n < 4) return static_cast<double>(n);
    double sum = 0.0;
    // Sum consecutive-pair autocorrelations while the pair sum stays
    // positive (initial positive sequence estimator).
    for (std::size_t k = 1; k + 1 < n; k += 2) {
        const double pair = autocorrelation(xs, k) + autocorrelation(xs, k + 1);
        if (pair <= 0.0) break;
        sum += pair;
    }
    const double denom = 1.0 + 2.0 * sum;
    return static_cast<double>(n) / std::max(denom, 1.0);
}

Histogram::Histogram(double lo_, double hi_, std::size_t nbins) : lo(lo_), hi(hi_), bins(nbins, 0) {
    if (nbins == 0 || !(hi > lo))
        throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x) {
    if (x < lo || x >= hi) return;
    const auto idx =
        static_cast<std::size_t>((x - lo) / (hi - lo) * static_cast<double>(bins.size()));
    bins[std::min(idx, bins.size() - 1)]++;
}

std::size_t Histogram::total() const {
    return std::accumulate(bins.begin(), bins.end(), std::size_t{0});
}

}  // namespace mpcgs
