#include "par/kernel.h"

#include <limits>
#include <vector>

namespace mpcgs {

namespace {

std::size_t numBlocks(std::size_t n, std::size_t blockDim) {
    return (n + blockDim - 1) / blockDim;
}

}  // namespace

double blockReduceAdd(ThreadPool* pool, std::span<const double> values, std::size_t blockDim) {
    if (values.empty()) return 0.0;
    blockDim = std::max<std::size_t>(1, blockDim);
    const std::size_t blocks = numBlocks(values.size(), blockDim);
    std::vector<double> partial(blocks, 0.0);
    forEachIndex(
        pool, blocks,
        [&](std::size_t b) {
            const std::size_t lo = b * blockDim;
            const std::size_t hi = std::min(lo + blockDim, values.size());
            double acc = 0.0;
            for (std::size_t i = lo; i < hi; ++i) acc += values[i];
            partial[b] = acc;
        },
        1);
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
}

double blockReduceLogSumExp(ThreadPool* pool, std::span<const double> logValues,
                            std::size_t blockDim) {
    if (logValues.empty()) return -std::numeric_limits<double>::infinity();
    blockDim = std::max<std::size_t>(1, blockDim);
    const std::size_t blocks = numBlocks(logValues.size(), blockDim);
    std::vector<double> partial(blocks);
    forEachIndex(
        pool, blocks,
        [&](std::size_t b) {
            const std::size_t lo = b * blockDim;
            const std::size_t hi = std::min(lo + blockDim, logValues.size());
            partial[b] = logSumExp(logValues.subspan(lo, hi - lo));
        },
        1);
    return logSumExp(partial);
}

double blockReduceMax(ThreadPool* pool, std::span<const double> values, std::size_t blockDim) {
    if (values.empty()) return -std::numeric_limits<double>::infinity();
    blockDim = std::max<std::size_t>(1, blockDim);
    const std::size_t blocks = numBlocks(values.size(), blockDim);
    std::vector<double> partial(blocks, -std::numeric_limits<double>::infinity());
    forEachIndex(
        pool, blocks,
        [&](std::size_t b) {
            const std::size_t lo = b * blockDim;
            const std::size_t hi = std::min(lo + blockDim, values.size());
            double m = -std::numeric_limits<double>::infinity();
            for (std::size_t i = lo; i < hi; ++i) m = std::max(m, values[i]);
            partial[b] = m;
        },
        1);
    double m = -std::numeric_limits<double>::infinity();
    for (double p : partial) m = std::max(m, p);
    return m;
}

}  // namespace mpcgs
