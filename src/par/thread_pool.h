// CPU parallel-execution substrate: a persistent work-stealing runtime.
//
// Substitutes for the paper's CUDA device (§4.4): a fixed pool of worker
// threads over which all parallel phases of the sampler (proposal
// generation, per-site likelihood, particle propagation, posterior
// reduction) run, so the speedup experiments sweep thread count the way
// the paper sweeps GPU occupancy.
//
// Scheduling model. A launch partitions [0, n) into chunks of `grain`
// indices; the chunk ids are dealt deterministically into one contiguous
// span per worker slot. Each worker pops chunks from the front of its own
// span and, when empty, steals chunks one at a time off the back of a
// victim's remaining span (range stealing — one CAS per pop/steal, no
// locks, no queues; a thief never writes its own span, so a stale scan
// from a drained launch can never clobber the next launch's deal).
// The chunk *partition* depends only on (n, grain); the *assignment* of
// chunks to threads is dynamic. Components that must be bitwise invariant
// to the thread count (the likelihood engine, SMC propagation) therefore
// write per-chunk results into chunk-indexed slots and fold them in fixed
// chunk order on the caller — never into per-thread accumulators.
//
// Launch overhead. The pool keeps one persistent launch slot: submitting
// work writes a function pointer + context, deals the spans, and bumps an
// epoch counter — no per-launch allocation, no mutex/condvar construction,
// no std::function. The templated entry points compile the user callable
// into a per-chunk trampoline, so indices dispatch through one indirect
// call per *chunk*, not per index. Steady-state sampling performs zero
// heap allocation in this layer (asserted by tests/zero_alloc_test.cc).
//
// Idle policy: spin-then-park. Idle workers spin briefly on the epoch word
// (launches arrive back-to-back during sampling; futex latency would
// dominate small grids), then park on a condition variable. When the pool
// is wider than the hardware (oversubscription), workers skip the spin and
// park immediately, and launches wake at most hardwareThreads()-1 workers
// — surplus threads cost nothing, so an 8-thread pool on a 1-core host
// runs at 1-thread speed instead of degrading.
//
// Nested launches: a parallelFor issued from inside a launch of the same
// pool runs its loop serially inline on the issuing thread (detected via a
// thread-local; see insideLaunch()). Concurrent launches from distinct
// external threads serialize on an internal mutex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mpcgs {

/// Number of hardware threads, at least 1.
unsigned hardwareThreads();

class ThreadPool {
  public:
    /// Create a pool with `nThreads` total workers *including* the calling
    /// thread: nThreads == 1 means fully serial (no worker threads spawned).
    explicit ThreadPool(unsigned nThreads = hardwareThreads());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total parallel width (workers + caller).
    unsigned size() const { return width_; }

    /// True while the calling thread is executing work of one of this
    /// pool's launches (a worker slot or the participating caller). Used
    /// by the launch paths to run nested launches serially inline instead
    /// of corrupting the in-flight launch.
    bool insideLaunch() const;

    /// Parallel loop over [0, n): f(i) is invoked exactly once per index.
    /// Indices are handed out in chunks of `grain` (0 = auto); the calling
    /// thread participates. Exceptions from f propagate (the first one
    /// thrown wins; remaining chunks are skipped).
    template <class F>
    void parallelFor(std::size_t n, F&& f, std::size_t grain = 0) {
        if (n == 0) return;
        if (runsInline(n)) {
            for (std::size_t i = 0; i < n; ++i) f(i);
            return;
        }
        launchImpl(n, grain, &chunkTrampolineIndex<std::remove_reference_t<F>>,
                   const_cast<void*>(static_cast<const void*>(&f)));
    }

    /// Parallel loop receiving (index, workerSlot) where workerSlot is in
    /// [0, size()). Lets callers keep per-thread scratch without locking.
    template <class F>
    void parallelForSlot(std::size_t n, F&& f, std::size_t grain = 0) {
        if (n == 0) return;
        if (runsInline(n)) {
            for (std::size_t i = 0; i < n; ++i) f(i, 0u);
            return;
        }
        launchImpl(n, grain, &chunkTrampolineSlot<std::remove_reference_t<F>>,
                   const_cast<void*>(static_cast<const void*>(&f)));
    }

    /// Map-reduce over [0, n): combine(acc, map(i)) folded per worker slot
    /// then across slots in slot order. `combine` must be associative and
    /// commutative: the index→slot assignment is dynamic (work-stealing),
    /// so the result is NOT bitwise reproducible for non-exact combines —
    /// bitwise-deterministic reductions go through chunk-indexed slots
    /// instead (par/kernel.h blockReduce*). A top-level reduce folds into
    /// cache-line-padded persistent per-slot storage (no false sharing,
    /// no per-call allocation) and holds the launch mutex across the
    /// whole reset/launch/fold sequence, so reduces from distinct
    /// external threads serialize safely. Serial and nested reduces fold
    /// into a function-local accumulator and never touch the shared
    /// slots.
    template <class Map, class Combine>
    double parallelReduce(std::size_t n, double identity, Map&& map, Combine&& combine,
                          std::size_t grain = 0) {
        if (n == 0) return identity;
        if (runsInline(n)) {
            // Serial / nested path: fold into a function-local accumulator.
            // reduceSlots_ belongs to the (at most one) top-level reduce in
            // flight; a nested reduce touching it would race with every
            // other worker of the outer launch.
            double acc = identity;
            for (std::size_t i = 0; i < n; ++i) acc = combine(acc, map(i));
            return acc;
        }
        // Top-level path: hold the launch mutex across the whole
        // reset/launch/fold sequence so reduces submitted concurrently from
        // distinct external threads cannot interleave on the shared
        // per-slot partial storage.
        std::lock_guard<std::mutex> launchGuard(launchMu_);
        for (unsigned s = 0; s < width_; ++s) reduceSlots_[s].value = identity;
        auto body = [&](std::size_t i, unsigned slot) {
            double& acc = reduceSlots_[slot].value;
            acc = combine(acc, map(i));
        };
        launchLocked(n, grain, &chunkTrampolineSlot<decltype(body)>,
                     const_cast<void*>(static_cast<const void*>(&body)));
        double acc = identity;
        for (unsigned s = 0; s < width_; ++s) acc = combine(acc, reduceSlots_[s].value);
        return acc;
    }

  private:
    /// One chunk of a launch, dispatched through a single indirect call:
    /// (context, beginIndex, endIndex, workerSlot).
    using ChunkFn = void (*)(void*, std::size_t, std::size_t, unsigned);

    template <class F>
    static void chunkTrampolineIndex(void* ctx, std::size_t begin, std::size_t end,
                                     unsigned /*slot*/) {
        F& f = *static_cast<F*>(ctx);
        for (std::size_t i = begin; i < end; ++i) f(i);
    }

    template <class F>
    static void chunkTrampolineSlot(void* ctx, std::size_t begin, std::size_t end,
                                    unsigned slot) {
        F& f = *static_cast<F*>(ctx);
        for (std::size_t i = begin; i < end; ++i) f(i, slot);
    }

    /// Per-slot steal span: chunk ids [begin, end) packed into one 64-bit
    /// word (begin in the high half) so pop/steal are single CAS ops. Own
    /// cache line — the spans are the contended hot words of a launch.
    struct alignas(64) StealSpan {
        std::atomic<std::uint64_t> range{0};
        char pad_[64 - sizeof(std::atomic<std::uint64_t>)];
    };

    /// Cache-line-padded per-slot reduction accumulator.
    struct alignas(64) PaddedSlot {
        double value = 0.0;
        char pad_[64 - sizeof(double)];
    };

    bool runsInline(std::size_t n) const {
        return workers_.empty() || n == 1 || insideLaunch();
    }

    void launchImpl(std::size_t n, std::size_t grain, ChunkFn fn, void* ctx);
    /// Launch body; caller must hold launchMu_. Lets parallelReduce keep
    /// the mutex across its reset/launch/fold sequence.
    void launchLocked(std::size_t n, std::size_t grain, ChunkFn fn, void* ctx);
    void workerLoop(unsigned slot);
    void runChunks(unsigned slot);
    void executeChunk(std::size_t chunk, unsigned slot);
    bool popOwn(unsigned slot, std::size_t& chunk);
    bool stealChunk(unsigned slot, std::size_t& chunk);
    void finishChunk();

    unsigned width_ = 1;
    unsigned wakeCap_ = 0;      ///< max workers woken per launch (hw-aware)
    bool oversubscribed_ = false;
    std::vector<std::thread> workers_;

    // --- persistent launch slot (reused by every launch; no allocation) ---
    std::mutex launchMu_;  ///< serializes external submitters
    ChunkFn fn_ = nullptr;
    void* ctx_ = nullptr;
    std::size_t n_ = 0;
    std::size_t grain_ = 1;
    std::atomic<std::size_t> chunksLeft_{0};
    std::atomic<bool> abort_{false};
    std::exception_ptr error_;  ///< first exception wins, guarded by errMu_
    std::mutex errMu_;
    std::vector<StealSpan> spans_;        ///< width_ entries
    std::vector<PaddedSlot> reduceSlots_; ///< width_ entries

    // --- publication + idle/wake machinery ---
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};
    std::mutex wakeMu_;
    std::condition_variable wakeCv_;
    std::atomic<int> parked_{0};
    std::atomic<bool> callerParked_{false};
    std::mutex doneMu_;
    std::condition_variable doneCv_;
};

/// Serial fallback used wherever a component accepts `ThreadPool*` and is
/// handed nullptr.
template <class F>
void serialFor(std::size_t n, F&& f) {
    for (std::size_t i = 0; i < n; ++i) f(i);
}

/// Run f(i) over [0,n) on `pool`, or serially when pool is nullptr.
template <class F>
void forEachIndex(ThreadPool* pool, std::size_t n, F&& f, std::size_t grain = 0) {
    if (pool)
        pool->parallelFor(n, f, grain);
    else
        serialFor(n, f);
}

}  // namespace mpcgs
