// CPU parallel-execution substrate.
//
// Substitutes for the paper's CUDA device (§4.4): a fixed pool of worker
// threads with dynamic work-stealing chunks. All parallel phases of the
// sampler (proposal generation, per-site likelihood, posterior reduction)
// run through this pool, so the speedup experiments sweep thread count the
// way the paper sweeps GPU occupancy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpcgs {

/// Number of hardware threads, at least 1.
unsigned hardwareThreads();

class ThreadPool {
  public:
    /// Create a pool with `nThreads` total workers *including* the calling
    /// thread: nThreads == 1 means fully serial (no worker threads spawned).
    explicit ThreadPool(unsigned nThreads = hardwareThreads());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total parallel width (workers + caller).
    unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

    /// Parallel loop over [0, n): f(i) is invoked exactly once per index.
    /// Indices are handed out in dynamic chunks of `grain` (0 = auto).
    /// The calling thread participates. Exceptions from f propagate (the
    /// first one thrown is rethrown after all chunks finish).
    void parallelFor(std::size_t n, const std::function<void(std::size_t)>& f,
                     std::size_t grain = 0);

    /// Parallel loop receiving (index, workerSlot) where workerSlot is in
    /// [0, size()). Lets callers keep per-thread scratch without locking.
    void parallelForSlot(std::size_t n,
                         const std::function<void(std::size_t, unsigned)>& f,
                         std::size_t grain = 0);

    /// Map-reduce over [0, n): combine(acc, map(i)) folded per worker then
    /// across workers. `combine` must be associative and commutative.
    double parallelReduce(std::size_t n, double identity,
                          const std::function<double(std::size_t)>& map,
                          const std::function<double(double, double)>& combine,
                          std::size_t grain = 0);

  private:
    struct Batch;

    void workerLoop(unsigned slot);
    void runBatch(Batch& b, unsigned slot);

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    Batch* current_ = nullptr;  // guarded by mu_
    std::uint64_t epoch_ = 0;   // guarded by mu_
    bool stop_ = false;         // guarded by mu_
    // Lock-free mirror of epoch_ that workers spin on briefly before
    // falling back to the condition variable; samplers issue thousands of
    // small back-to-back batches, and futex sleep/wake latency would
    // otherwise dominate them.
    std::atomic<std::uint64_t> epochHint_{0};
};

/// Serial fallback used wherever a component accepts `ThreadPool*` and is
/// handed nullptr.
void serialFor(std::size_t n, const std::function<void(std::size_t)>& f);

/// Run f(i) over [0,n) on `pool`, or serially when pool is nullptr.
void forEachIndex(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& f, std::size_t grain = 0);

}  // namespace mpcgs
