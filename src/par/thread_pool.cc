#include "par/thread_pool.h"

#include <algorithm>

namespace mpcgs {

unsigned hardwareThreads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1u : n;
}

// A Batch is one parallelFor invocation: a shared atomic cursor over the
// index range plus completion bookkeeping. Workers grab chunks until the
// cursor passes n.
struct ThreadPool::Batch {
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, unsigned)>* fn = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> active{0};
    std::mutex emu;
    std::exception_ptr error;  // first exception wins, guarded by emu
    std::mutex dmu;
    std::condition_variable done;
    bool finished = false;  // guarded by dmu
};

ThreadPool::ThreadPool(unsigned nThreads) {
    const unsigned extra = nThreads > 1 ? nThreads - 1 : 0;
    workers_.reserve(extra);
    for (unsigned i = 0; i < extra; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop(unsigned slot) {
    constexpr int kSpinRounds = 20000;
    std::uint64_t seen = 0;
    for (;;) {
        // Spin briefly on the epoch hint before sleeping: batches arrive in
        // rapid succession during sampling and futex wakeups would dominate.
        for (int spin = 0; spin < kSpinRounds; ++spin) {
            if (epochHint_.load(std::memory_order_acquire) != seen) break;
            std::this_thread::yield();
        }
        Batch* b = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] { return stop_ || (current_ != nullptr && epoch_ != seen); });
            if (stop_) return;
            seen = epoch_;
            b = current_;
            b->active.fetch_add(1, std::memory_order_relaxed);
        }
        runBatch(*b, slot);
        {
            // Decrement under the completion mutex: the caller's wait
            // predicate reads `active` under the same mutex, so it cannot
            // observe 0 (and destroy the stack Batch) while this worker is
            // still touching it.
            std::lock_guard<std::mutex> lk(b->dmu);
            if (b->active.fetch_sub(1, std::memory_order_acq_rel) == 1) b->done.notify_all();
        }
    }
}

void ThreadPool::runBatch(Batch& b, unsigned slot) {
    for (;;) {
        const std::size_t begin = b.cursor.fetch_add(b.grain, std::memory_order_relaxed);
        if (begin >= b.n) return;
        const std::size_t end = std::min(begin + b.grain, b.n);
        try {
            for (std::size_t i = begin; i < end; ++i) (*b.fn)(i, slot);
        } catch (...) {
            std::lock_guard<std::mutex> lk(b.emu);
            if (!b.error) b.error = std::current_exception();
            // Drain the rest of the range so everyone retires quickly.
            b.cursor.store(b.n, std::memory_order_relaxed);
            return;
        }
    }
}

void ThreadPool::parallelForSlot(std::size_t n,
                                 const std::function<void(std::size_t, unsigned)>& f,
                                 std::size_t grain) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i) f(i, 0);
        return;
    }
    if (grain == 0) {
        // Aim for ~4 chunks per thread to balance scheduling overhead
        // against tail imbalance.
        grain = std::max<std::size_t>(1, n / (static_cast<std::size_t>(size()) * 4));
    }

    Batch b;
    b.n = n;
    b.grain = grain;
    b.fn = &f;
    {
        std::lock_guard<std::mutex> lk(mu_);
        current_ = &b;
        ++epoch_;
        epochHint_.store(epoch_, std::memory_order_release);
    }
    cv_.notify_all();

    runBatch(b, 0);  // caller participates

    {
        std::lock_guard<std::mutex> lk(mu_);
        current_ = nullptr;
    }
    // Completion: spin first (workers retire within microseconds once the
    // cursor drains), then fall back to the condition variable. In both
    // paths, acquiring dmu after observing active == 0 is the barrier that
    // guarantees the last worker has left the Batch's critical section
    // before the stack object is destroyed.
    bool drained = false;
    for (int spin = 0; spin < 200000; ++spin) {
        if (b.active.load(std::memory_order_acquire) == 0) {
            drained = true;
            break;
        }
        std::this_thread::yield();
    }
    if (drained) {
        std::lock_guard<std::mutex> lk(b.dmu);
    } else {
        std::unique_lock<std::mutex> lk(b.dmu);
        b.done.wait(lk, [&] { return b.active.load(std::memory_order_acquire) == 0; });
    }
    if (b.error) std::rethrow_exception(b.error);
}

void ThreadPool::parallelFor(std::size_t n, const std::function<void(std::size_t)>& f,
                             std::size_t grain) {
    parallelForSlot(n, [&f](std::size_t i, unsigned) { f(i); }, grain);
}

double ThreadPool::parallelReduce(std::size_t n, double identity,
                                  const std::function<double(std::size_t)>& map,
                                  const std::function<double(double, double)>& combine,
                                  std::size_t grain) {
    std::vector<double> partial(size(), identity);
    parallelForSlot(
        n, [&](std::size_t i, unsigned slot) { partial[slot] = combine(partial[slot], map(i)); },
        grain);
    double acc = identity;
    for (double p : partial) acc = combine(acc, p);
    return acc;
}

void serialFor(std::size_t n, const std::function<void(std::size_t)>& f) {
    for (std::size_t i = 0; i < n; ++i) f(i);
}

void forEachIndex(ThreadPool* pool, std::size_t n, const std::function<void(std::size_t)>& f,
                  std::size_t grain) {
    if (pool)
        pool->parallelFor(n, f, grain);
    else
        serialFor(n, f);
}

}  // namespace mpcgs
