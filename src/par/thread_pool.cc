#include "par/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpcgs {

unsigned hardwareThreads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1u : n;
}

namespace {

/// Pool whose launch the current thread is executing (nullptr outside any
/// launch). Lets the launch entry points detect nesting and degrade to a
/// serial inline loop instead of corrupting the in-flight launch slot.
thread_local const ThreadPool* tlActivePool = nullptr;

struct ScopedActive {
    const ThreadPool* prev;
    explicit ScopedActive(const ThreadPool* p) : prev(tlActivePool) { tlActivePool = p; }
    ~ScopedActive() { tlActivePool = prev; }
};

inline std::uint64_t packRange(std::uint64_t begin, std::uint64_t end) {
    return (begin << 32) | end;
}
inline std::uint32_t rangeBegin(std::uint64_t r) {
    return static_cast<std::uint32_t>(r >> 32);
}
inline std::uint32_t rangeEnd(std::uint64_t r) { return static_cast<std::uint32_t>(r); }

/// Scoped launch instrumentation: one pool.launches count per launch and,
/// when the metrics registry is armed, a launch-latency observation on
/// scope exit — covering the single-chunk early return and the full
/// dispatch+wait path alike. The clock is only read while armed.
struct LaunchObserver {
    bool on;
    std::chrono::steady_clock::time_point t0;
    obs::TraceSpan span{"pool_launch", "pool"};
    LaunchObserver() : on(obs::armed()) {
        if (on) {
            obs::add(obs::Counter::PoolLaunches);
            t0 = std::chrono::steady_clock::now();
        }
    }
    ~LaunchObserver() {
        if (on)
            obs::observe(obs::Histogram::PoolLaunchLatencyUs,
                         static_cast<std::uint64_t>(
                             std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count()));
    }
};

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

}  // namespace

bool ThreadPool::insideLaunch() const { return tlActivePool == this; }

ThreadPool::ThreadPool(unsigned nThreads)
    : width_(nThreads == 0 ? 1u : nThreads), spans_(width_), reduceSlots_(width_) {
    const unsigned hw = hardwareThreads();
    oversubscribed_ = width_ > hw;
    wakeCap_ = hw > 1 ? hw - 1 : 0;
    workers_.reserve(width_ - 1);
    for (unsigned s = 1; s < width_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

ThreadPool::~ThreadPool() {
    stop_.store(true, std::memory_order_seq_cst);
    {
        // Empty critical section: a worker past its predicate check but not
        // yet asleep re-checks after we hold the lock, so the notify below
        // cannot be lost.
        std::lock_guard<std::mutex> g(wakeMu_);
    }
    wakeCv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::launchImpl(std::size_t n, std::size_t grain, ChunkFn fn, void* ctx) {
    std::lock_guard<std::mutex> launchGuard(launchMu_);
    launchLocked(n, grain, fn, ctx);
}

void ThreadPool::launchLocked(std::size_t n, std::size_t grain, ChunkFn fn, void* ctx) {
    const LaunchObserver observer;
    if (grain == 0) {
        // Aim for ~4 chunks per slot: slack for stealing to balance uneven
        // work without per-chunk dispatch dominating small grids.
        const std::size_t target = static_cast<std::size_t>(width_) * 4;
        grain = (n + target - 1) / target;
        if (grain == 0) grain = 1;
    }
    // Chunk ids are packed into 32-bit halves of the steal words.
    while ((n + grain - 1) / grain > 0xffffffffull) grain *= 2;
    const std::size_t chunks = (n + grain - 1) / grain;

    fn_ = fn;
    ctx_ = ctx;
    n_ = n;
    grain_ = grain;

    if (chunks == 1) {
        ScopedActive active(this);
        fn(ctx, 0, n, 0);
        return;
    }

    abort_.store(false, std::memory_order_relaxed);
    chunksLeft_.store(chunks, std::memory_order_relaxed);
    callerParked_.store(false, std::memory_order_relaxed);

    // Deal chunk ids into one contiguous span per slot. The partition is a
    // pure function of (chunks, width); execution assignment may then move
    // via stealing, so callers needing bitwise thread invariance index
    // their outputs by chunk, never by thread. The release stores publish
    // fn_/ctx_/n_/grain_ to whichever thread later pops from a span.
    for (unsigned s = 0; s < width_; ++s) {
        const std::uint64_t b = static_cast<std::uint64_t>(chunks) * s / width_;
        const std::uint64_t e = static_cast<std::uint64_t>(chunks) * (s + 1) / width_;
        spans_[s].range.store(packRange(b, e), std::memory_order_release);
    }
    epoch_.fetch_add(1, std::memory_order_seq_cst);

    // Wake at most wakeCap_ parked workers (and never more than there are
    // chunks to share). On an oversubscribed pool wakeCap_ < width-1, so
    // surplus workers stay parked and cost nothing; spinning workers
    // self-serve off the epoch word without a wake.
    const unsigned wake =
        static_cast<unsigned>(std::min<std::size_t>(chunks - 1, wakeCap_));
    if (wake > 0 && parked_.load(std::memory_order_seq_cst) > 0) {
        std::lock_guard<std::mutex> g(wakeMu_);
        const int parked = parked_.load(std::memory_order_seq_cst);
        if (parked > 0 && wake >= static_cast<unsigned>(parked)) {
            wakeCv_.notify_all();
            obs::add(obs::Counter::PoolWakes, static_cast<std::uint64_t>(parked));
        } else {
            for (unsigned i = 0; i < wake; ++i) wakeCv_.notify_one();
            obs::add(obs::Counter::PoolWakes, wake);
        }
    }

    {
        ScopedActive active(this);
        runChunks(0);
    }

    // All chunks are popped; wait for stragglers still executing theirs.
    if (chunksLeft_.load(std::memory_order_seq_cst) != 0) {
        std::unique_lock<std::mutex> lk(doneMu_);
        callerParked_.store(true, std::memory_order_seq_cst);
        doneCv_.wait(lk,
                     [&] { return chunksLeft_.load(std::memory_order_seq_cst) == 0; });
        callerParked_.store(false, std::memory_order_relaxed);
    }

    if (error_) {
        std::exception_ptr e;
        std::swap(e, error_);
        std::rethrow_exception(e);
    }
}

void ThreadPool::workerLoop(unsigned slot) {
    std::uint64_t seen = 0;  // pool construction precedes the first launch
    for (;;) {
        if (stop_.load(std::memory_order_relaxed)) return;
        const std::uint64_t cur = epoch_.load(std::memory_order_seq_cst);
        if (cur != seen) {
            seen = cur;
            ScopedActive active(this);
            runChunks(slot);
            continue;
        }
        if (!oversubscribed_) {
            bool woke = false;
            for (int spin = 0; spin < 4096; ++spin) {
                cpuRelax();
                if (epoch_.load(std::memory_order_seq_cst) != seen ||
                    stop_.load(std::memory_order_relaxed)) {
                    woke = true;
                    break;
                }
            }
            if (woke) continue;
        }
        obs::add(obs::Counter::PoolParks);
        std::unique_lock<std::mutex> lk(wakeMu_);
        parked_.fetch_add(1, std::memory_order_seq_cst);
        wakeCv_.wait(lk, [&] {
            return epoch_.load(std::memory_order_seq_cst) != seen ||
                   stop_.load(std::memory_order_relaxed);
        });
        parked_.fetch_sub(1, std::memory_order_seq_cst);
    }
}

void ThreadPool::runChunks(unsigned slot) {
    std::size_t chunk;
    for (;;) {
        if (popOwn(slot, chunk)) {
            executeChunk(chunk, slot);
            continue;
        }
        if (stealChunk(slot, chunk)) {
            executeChunk(chunk, slot);
            continue;
        }
        return;
    }
}

bool ThreadPool::popOwn(unsigned slot, std::size_t& chunk) {
    auto& own = spans_[slot].range;
    std::uint64_t r = own.load(std::memory_order_acquire);
    for (;;) {
        const std::uint32_t b = rangeBegin(r);
        const std::uint32_t e = rangeEnd(r);
        if (b >= e) return false;
        if (own.compare_exchange_weak(r, packRange(b + 1ull, e),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
            chunk = b;
            return true;
        }
    }
}

bool ThreadPool::stealChunk(unsigned slot, std::size_t& chunk) {
    for (unsigned off = 1; off < width_; ++off) {
        const unsigned v = (slot + off) % width_;
        auto& victim = spans_[v].range;
        std::uint64_t r = victim.load(std::memory_order_acquire);
        for (;;) {
            const std::uint32_t b = rangeBegin(r);
            const std::uint32_t e = rangeEnd(r);
            if (b >= e) break;
            // Take one chunk off the back; the victim keeps popping the
            // front. A thief must never WRITE its own span: a stale worker
            // still scanning after its launch drained could otherwise
            // clobber chunks the next launch just dealt to its slot,
            // losing them and hanging that launch's completion wait.
            if (victim.compare_exchange_weak(r, packRange(b, e - 1ull),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
                chunk = e - 1ull;
                obs::add(obs::Counter::PoolChunksStolen);
                return true;
            }
        }
    }
    return false;
}

void ThreadPool::executeChunk(std::size_t chunk, unsigned slot) {
    if (!abort_.load(std::memory_order_relaxed)) {
        const std::size_t begin = chunk * grain_;
        const std::size_t end = std::min(begin + grain_, n_);
        try {
            fn_(ctx_, begin, end, slot);
        } catch (...) {
            std::lock_guard<std::mutex> g(errMu_);
            if (!error_) error_ = std::current_exception();
            abort_.store(true, std::memory_order_relaxed);
        }
    }
    finishChunk();
}

void ThreadPool::finishChunk() {
    if (chunksLeft_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        if (callerParked_.load(std::memory_order_seq_cst)) {
            std::lock_guard<std::mutex> g(doneMu_);
            doneCv_.notify_one();
        }
    }
}

}  // namespace mpcgs
