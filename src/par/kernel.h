// CUDA-launch-shaped facade over the thread pool.
//
// The paper structures its device work as three kernels launched over a
// grid of blocks of threads (§5.2), with warp-shuffle + shared-memory tree
// reductions. This header preserves that structure on the CPU so the core
// sampler code reads like the paper's implementation chapter: a Kernel is a
// function of (blockIdx, threadIdx), launched over a LaunchConfig, and
// blockReduce* mirror the two-stage (intra-block, then cross-block)
// reduction pattern of §5.2.1-5.2.3.
//
// The launch entry points are templates: the callable is compiled into the
// pool's per-chunk trampoline (one indirect call per block), with no
// std::function construction or allocation on the hot path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "par/thread_pool.h"
#include "util/logspace.h"

namespace mpcgs {

/// Grid geometry of a kernel launch.
struct LaunchConfig {
    std::size_t gridDim = 1;   ///< number of blocks
    std::size_t blockDim = 1;  ///< threads per block

    std::size_t totalThreads() const { return gridDim * blockDim; }
};

/// Index of one logical device thread within a launch.
struct ThreadIdx {
    std::size_t block = 0;   ///< blockIdx.x analogue
    std::size_t thread = 0;  ///< threadIdx.x analogue
    std::size_t global = 0;  ///< block * blockDim + thread
};

/// Launch `kernel` once per logical thread. Blocks are distributed across
/// the pool; within a block, threads run sequentially on one worker (the
/// CPU analogue of a streaming multiprocessor executing a block).
/// A null pool runs the whole grid serially.
template <class Kernel>
void launchKernel(ThreadPool* pool, LaunchConfig cfg, Kernel&& kernel) {
    forEachIndex(
        pool, cfg.gridDim,
        [&](std::size_t b) {
            ThreadIdx idx;
            idx.block = b;
            for (std::size_t t = 0; t < cfg.blockDim; ++t) {
                idx.thread = t;
                idx.global = b * cfg.blockDim + t;
                kernel(idx);
            }
        },
        /*grain=*/1);
}

/// Launch `f(blockIndex, begin, end)` over [0, n) partitioned into
/// contiguous blocks of `blockSize` indices (the last block may be short).
/// Blocks are distributed dynamically across the pool; a null pool runs
/// them in order on the calling thread. This is the grid geometry of the
/// data-likelihood kernel (§5.2.2) with site-pattern blocks as CUDA blocks:
/// each launch owns a contiguous, cache-resident slice of patterns, and the
/// partition depends only on (n, blockSize), so results that reduce
/// per-block are bitwise independent of thread count.
template <class F>
void launchBlocked(ThreadPool* pool, std::size_t n, std::size_t blockSize, F&& f) {
    if (n == 0) return;
    blockSize = std::max<std::size_t>(1, blockSize);
    const std::size_t blocks = (n + blockSize - 1) / blockSize;
    forEachIndex(
        pool, blocks,
        [&](std::size_t b) {
            const std::size_t lo = b * blockSize;
            f(b, lo, std::min(lo + blockSize, n));
        },
        /*grain=*/1);
}

/// Chain-affinity launch for the sampler runtime: run f(chain) once per
/// chain in [0, chains) with a grain of one, so each chain's step is a
/// single indivisible unit of pool work (a chain never splits across
/// workers mid-step, and per-chain RNG/state stays thread-private for the
/// duration). A null pool runs the chains in order on the calling thread.
template <class F>
void launchChains(ThreadPool* pool, std::size_t chains, F&& f) {
    forEachIndex(pool, chains, f, /*grain=*/1);
}

/// Two-stage additive reduction in linear space: per-block partial sums
/// (the warp-shuffle stage of §5.2.1) followed by a serial cross-block
/// fold (the paper performs this on a single master thread and notes the
/// block count is small enough for it not to matter).
double blockReduceAdd(ThreadPool* pool, std::span<const double> values,
                      std::size_t blockDim);

/// Two-stage log-space additive reduction (log-sum-exp per block, then a
/// cross-block log-sum-exp); the underflow-safe form used by the posterior
/// kernel (§5.2.3 + §5.3).
double blockReduceLogSumExp(ThreadPool* pool, std::span<const double> logValues,
                            std::size_t blockDim);

/// Two-stage max reduction (used to find the normalization constant before
/// exponentiation in the posterior kernel).
double blockReduceMax(ThreadPool* pool, std::span<const double> values,
                      std::size_t blockDim);

}  // namespace mpcgs
