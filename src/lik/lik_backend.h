// Pluggable likelihood backend — BEAGLE-style batched operation execution
// for the partial-forest (SMC) likelihood path.
//
// Callers never evaluate partials directly: they allocate backend-owned
// PARTIALS SLOTS, enqueue operations against them —
//
//   tipInit(slot, tip)                         fill tip indicator vectors
//   combine(parent, childA, lenA, childB, lenB) Eq. 19 merge of two roots
//   rootLogLik(slot, &out)                     forest root factor -> out
//
// — and then flush() once. The contract: operation RESULTS are guaranteed
// visible only after flush(); a backend is free to execute eagerly at
// enqueue time (ArenaBackend) or to buffer a whole generation of
// operations from every particle and execute them as one flat launch
// (BatchedBackend). Backends affect SCHEDULING only, never values: all
// backends run the identical per-pattern machine code (lik/forest_kernels)
// and fold in the identical order, so results are bitwise identical across
// backends and thread counts. This is the seam where a GPU or distributed
// backend plugs in later without touching sampler code.
//
// Enqueue thread-safety: tipInit/combine/rootLogLik may be called
// concurrently from inside a parallel launch (the SMC propagation phase),
// provided no two concurrent operations write the same parent slot and a
// batch never chains dependent combines (a combine's parent must not be
// another queued combine's child). flush(), resizeSlots() and copySlot()
// are serial-context only.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lik/felsenstein.h"
#include "par/thread_pool.h"
#include "util/aligned.h"

namespace mpcgs {

enum class LikBackendKind { Arena, Batched };

/// Backends are scheduling-neutral, so the faster batched execution is the
/// default; `--lik-backend arena` selects the eager reference execution.
inline constexpr LikBackendKind kDefaultLikBackend = LikBackendKind::Batched;

const char* likBackendName(LikBackendKind kind);

/// Parse "arena" | "batched"; throws ConfigError listing the choices.
LikBackendKind parseLikBackend(const std::string& name);

// Execution counters (flushes, combine ops, matrices requested vs
// computed) live in the metrics registry (obs/metrics.h, lik.* taxonomy):
// arm the registry and read obs::snapshot() — there is no per-backend
// stats copy. Distinct transition matrices are counted per (branch
// length, rate category) pair actually exponentiated, so
// lik.matrices_requested vs lik.matrices_computed is the dedup hit-rate.

class LikelihoodBackend {
  public:
    /// Opaque handle to one backend-owned partials buffer (conditional
    /// likelihood vectors of one live subtree root).
    using Slot = std::uint32_t;

    virtual ~LikelihoodBackend() = default;

    virtual LikBackendKind kind() const = 0;
    const char* name() const { return likBackendName(kind()); }

    // --- problem shape (from the wrapped DataLikelihood) -------------------
    virtual std::size_t patternCount() const = 0;
    virtual std::size_t categoryCount() const = 0;
    virtual const std::vector<std::string>& tipNames() const = 0;

    // --- slot pool ---------------------------------------------------------
    /// Make `n` slots available (contents unspecified; grow-only storage,
    /// so shrinking or re-requesting a fitting size never reallocates).
    virtual void resizeSlots(std::size_t n) = 0;
    virtual std::size_t slotCount() const = 0;

    // --- operation queue ---------------------------------------------------
    virtual void tipInit(Slot dst, int tip) = 0;
    virtual void combine(Slot parent, Slot childA, double lenA, Slot childB,
                         double lenB) = 0;
    virtual void rootLogLik(Slot slot, double* out) = 0;
    /// Execute everything queued since the last flush; on return all
    /// enqueued results are visible. Uses `pool` for the batch launches
    /// (nullptr = serial).
    virtual void flush(ThreadPool* pool) = 0;

    // --- state management (resampling, diagnostics, tests) -----------------
    /// Copy one slot's content onto another (no-op when dst == src).
    virtual void copySlot(Slot dst, Slot src) = 0;
    /// Raw views of a slot's conditional vectors / per-pattern log scale
    /// (valid until the next resizeSlots). CPU backends expose their arena
    /// directly; a device backend would stage through a host mirror.
    virtual std::span<const double> slotData(Slot slot) const = 0;
    virtual std::span<const double> slotScale(Slot slot) const = 0;
};

/// Construct a backend of `kind` over the pattern data / substitution
/// model / rate categories of `lik` (which must outlive the backend).
std::unique_ptr<LikelihoodBackend> makeLikelihoodBackend(LikBackendKind kind,
                                                         const DataLikelihood& lik);

namespace detail {

/// Shared CPU slot storage: one 64-byte-aligned grow-only slab of
/// conditional vectors plus one of per-pattern log scales, slot-strided.
/// Both CPU backends derive from this; the slot layout is identical, so a
/// cloud can switch backends without re-learning slot geometry.
class SlotArenaBackend : public LikelihoodBackend {
  public:
    explicit SlotArenaBackend(const DataLikelihood& lik);

    std::size_t patternCount() const final { return patterns_.patternCount(); }
    std::size_t categoryCount() const final { return rates_.count(); }
    const std::vector<std::string>& tipNames() const final {
        return patterns_.sequenceNames();
    }

    void resizeSlots(std::size_t n) override;
    std::size_t slotCount() const final { return slots_; }

    void copySlot(Slot dst, Slot src) final;
    std::span<const double> slotData(Slot slot) const final {
        return {dataPtr(slot), dataLen_};
    }
    std::span<const double> slotScale(Slot slot) const final {
        return {scalePtr(slot), patterns_.patternCount()};
    }

  protected:
    double* dataPtr(Slot s) { return data_.data() + s * dataStride_; }
    const double* dataPtr(Slot s) const { return data_.data() + s * dataStride_; }
    double* scalePtr(Slot s) { return scale_.data() + s * scaleStride_; }
    const double* scalePtr(Slot s) const { return scale_.data() + s * scaleStride_; }

    const SitePatterns& patterns_;
    const SubstModel& model_;
    const BaseFreqs& pi_;
    const RateCategories& rates_;
    std::size_t dataLen_ = 0;     ///< doubles of one slot's vectors (C*P*4)
    std::size_t dataStride_ = 0;  ///< dataLen_ rounded up to the cache line
    std::size_t scaleStride_ = 0;
    std::size_t slots_ = 0;
    AlignedDoubles data_;
    AlignedDoubles scale_;
};

}  // namespace detail

}  // namespace mpcgs
