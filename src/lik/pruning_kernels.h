// Pattern-major Felsenstein strip kernels.
//
// Every routine here sweeps a contiguous strip of site patterns for ONE
// tree node: partials are laid out [pattern][state] with the four state
// entries of a pattern adjacent, so the per-pattern 4x4 mat-vec
//
//   out[x] = (sum_y P_j(x,y) L_j[y]) * (sum_y P_k(x,y) L_k[y])    (Eq. 19)
//
// becomes, with the transition matrices pre-transposed (TransMat row y =
// P(., y)), four fused multiply-adds over unit-stride 4-lane vectors. The
// loops are written so the compiler's auto-vectorizer maps one pattern to
// one 256-bit vector (or two patterns per 512-bit vector after unrolling);
// all pointers are __restrict and strips never alias.
//
// This is the CPU transcription of the paper's one-thread-per-site GPU
// kernel (§5.2.2): the strip index plays the role of threadIdx.x.
#pragma once

#include <cmath>
#include <cstddef>

#include "seq/nucleotide.h"
#include "util/aligned.h"
#include "util/matrix4.h"

namespace mpcgs {

/// A transition matrix packed for the strip kernels: row y holds the
/// probabilities INTO the four parent states from child state y,
/// t[4*y + x] = P(x, y). 64-byte aligned so each row is one aligned load.
struct alignas(kCacheLineBytes) TransMat {
    double t[16];

    void pack(const Matrix4& p) { p.packTransposed(t); }
};

/// Conditional-likelihood propagation for one internal node over `n`
/// patterns: out[p] = (Pj lj[p]) .* (Pk lk[p]) element-wise over states.
inline void pruneStrip(const TransMat& pj, const TransMat& pk,
                       const double* __restrict lj, const double* __restrict lk,
                       double* __restrict out, std::size_t n) {
    const double* __restrict tj = pj.t;
    const double* __restrict tk = pk.t;
    for (std::size_t p = 0; p < n; ++p) {
        const double* a = lj + 4 * p;
        const double* b = lk + 4 * p;
        double* o = out + 4 * p;
        const double a0 = a[0], a1 = a[1], a2 = a[2], a3 = a[3];
        const double b0 = b[0], b1 = b[1], b2 = b[2], b3 = b[3];
        for (std::size_t x = 0; x < 4; ++x) {
            const double sj = tj[x] * a0 + tj[4 + x] * a1 + tj[8 + x] * a2 + tj[12 + x] * a3;
            const double sk = tk[x] * b0 + tk[4 + x] * b1 + tk[8 + x] * b2 + tk[12 + x] * b3;
            o[x] = sj * sk;
        }
    }
}

/// Scale-exponent propagation: so[p] = sa[p] + sb[p]. Either input may be
/// null, meaning an all-zero exponent strip (tips, un-rescaled subtrees).
inline void addScaleStrips(const double* __restrict sa, const double* __restrict sb,
                           double* __restrict so, std::size_t n) {
    if (sa != nullptr && sb != nullptr) {
        for (std::size_t p = 0; p < n; ++p) so[p] = sa[p] + sb[p];
    } else if (sa != nullptr) {
        for (std::size_t p = 0; p < n; ++p) so[p] = sa[p];
    } else if (sb != nullptr) {
        for (std::size_t p = 0; p < n; ++p) so[p] = sb[p];
    } else {
        for (std::size_t p = 0; p < n; ++p) so[p] = 0.0;
    }
}

/// Periodic rescaling (§5.3, hoisted out of the per-node inner loop): factor
/// the per-pattern max out of the partials and accumulate its log in the
/// scale strip. Called only every kRescaleInterval tree levels, instead of
/// the scalar path's per-node per-pattern underflow branch.
inline void rescaleStrip(double* __restrict part, double* __restrict scale, std::size_t n) {
    for (std::size_t p = 0; p < n; ++p) {
        double* o = part + 4 * p;
        double m = o[0];
        if (o[1] > m) m = o[1];
        if (o[2] > m) m = o[2];
        if (o[3] > m) m = o[3];
        if (m > 0.0) {
            const double inv = 1.0 / m;
            o[0] *= inv;
            o[1] *= inv;
            o[2] *= inv;
            o[3] *= inv;
            scale[p] += std::log(m);
        }
    }
}

/// Per-pattern site log-likelihood at the root (Eq. 21 + carried scale):
/// out[p] = log(sum_x pi[x] root[p][x]) + scale[p]. A zero root dot product
/// yields -inf, matching the scalar path. `scale` may be null (no rescaling
/// happened anywhere below the root).
inline void rootLogStrip(const double* __restrict root, const double* __restrict scale,
                         const BaseFreqs& pi, double* __restrict out, std::size_t n) {
    const double p0 = pi[0], p1 = pi[1], p2 = pi[2], p3 = pi[3];
    for (std::size_t p = 0; p < n; ++p) {
        const double* r = root + 4 * p;
        const double dot = p0 * r[0] + p1 * r[1] + p2 * r[2] + p3 * r[3];
        out[p] = std::log(dot) + (scale != nullptr ? scale[p] : 0.0);
    }
}

/// Weighted fold of per-pattern site log-likelihoods (Eq. 22):
/// sum_p w[p] * site[p].
inline double weightedSumStrip(const double* __restrict site, const double* __restrict w,
                               std::size_t n) {
    double acc = 0.0;
    for (std::size_t p = 0; p < n; ++p) acc += w[p] * site[p];
    return acc;
}

/// Tip conditional likelihoods for one sequence over `n` patterns starting
/// at `p0`: the standard 0/1 indicator rows, with kNucUnknown marginalized
/// as all-ones. `codes` is the pattern-major code matrix of SitePatterns
/// (stride nSeq), `seq` the tip's column in it.
inline void fillTipStrip(const NucCode* codes, std::size_t nSeq, std::size_t seq,
                         std::size_t p0, double* __restrict out, std::size_t n) {
    for (std::size_t p = 0; p < n; ++p) {
        const NucCode c = codes[(p0 + p) * nSeq + seq];
        double* o = out + 4 * p;
        if (c == kNucUnknown) {
            o[0] = o[1] = o[2] = o[3] = 1.0;
        } else {
            o[0] = o[1] = o[2] = o[3] = 0.0;
            o[c] = 1.0;
        }
    }
}

}  // namespace mpcgs
