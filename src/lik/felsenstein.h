// Felsenstein pruning data likelihood P(D|G) (Eqs. 19-22; §5.2.2).
//
// For each site (pattern), a post-order traversal propagates conditional
// likelihood vectors L_n(X) from the tips to the root:
//
//   L_n(X) = [sum_Y P_XY(t_nj) L_j(Y)] * [sum_Y P_XY(t_nk) L_k(Y)]   (Eq. 19)
//   L_i(G) = sum_X pi_X L_root(X)                                    (Eq. 21)
//   log P(D|G) = sum_i log L_i(G)                                    (Eq. 22)
//
// (Eq. 22 prints a plain sum; the product over independent sites is a sum
// of logs, which is also what the reference implementation computes.)
//
// The default mode recomputes every node for every call — the paper found
// full recomputation faster than caching on the GPU (§5.2.2). A cached
// incremental mode is provided for the CPU ablation study (bench/micro).
#pragma once

#include <memory>
#include <vector>

#include "lik/engine.h"
#include "lik/partials_buffer.h"
#include "lik/rate_model.h"
#include "lik/site_pattern.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"
#include "seq/subst_model.h"

namespace mpcgs {

class DataLikelihood {
  public:
    /// Holds a reference-independent copy of the pattern data and model.
    DataLikelihood(const Alignment& aln, const SubstModel& model, bool compressPatterns = true);

    /// With among-site rate variation: the site likelihood averages the
    /// pruning likelihood over the rate categories (each category scales
    /// every branch length by its rate).
    DataLikelihood(const Alignment& aln, const SubstModel& model, RateCategories rates,
                   bool compressPatterns = true);

    /// log P(D|G) via the pattern-major engine. Parallel over site-pattern
    /// blocks when a pool is supplied — the data-likelihood kernel of
    /// §5.2.2 (one logical thread per site). Thread-safe, and bitwise
    /// deterministic across thread counts (the block partition depends only
    /// on the problem shape).
    double logLikelihood(const Genealogy& g, ThreadPool* pool = nullptr) const;

    /// log P(D|G) via the original scalar one-pattern-at-a-time pruning.
    /// Kept as the numerical reference for the engine agreement tests and
    /// the kernel benchmarks; not a hot path.
    double logLikelihoodReference(const Genealogy& g) const;

    /// Per-pattern log-likelihoods (diagnostics/tests; scalar reference
    /// path).
    std::vector<double> patternLogLikelihoods(const Genealogy& g) const;

    std::size_t patternCount() const { return patterns_.patternCount(); }
    std::size_t siteCount() const { return patterns_.siteCount(); }
    /// Pattern data — the SMC partial-forest evaluator (lik/forest_eval.h)
    /// builds its per-subtree vectors over the same compressed patterns.
    const SitePatterns& patterns() const { return patterns_; }
    const SubstModel& model() const { return *model_; }
    const BaseFreqs& rootFreqs() const { return pi_; }
    const RateCategories& rateCategories() const { return rates_; }
    const LikelihoodEngine& engine() const { return *engine_; }

    // The engine holds references into this object; pinning the address
    // keeps them valid for the object's whole lifetime.
    DataLikelihood(const DataLikelihood&) = delete;
    DataLikelihood& operator=(const DataLikelihood&) = delete;

  private:
    friend class LikelihoodCache;

    /// Per-branch transition matrices for a genealogy, indexed by child id;
    /// branch lengths scaled by `rate`.
    std::vector<Matrix4> branchMatrices(const Genealogy& g, double rate = 1.0) const;

    /// Log-likelihood of one pattern via a pruning pass over the traversal
    /// `order`; `partials` is caller-provided scratch ([node][nucleotide]),
    /// with underflow handled by per-node rescaling carried in log space
    /// (§5.3).
    double computePattern(const Genealogy& g, const std::vector<NodeId>& order,
                          const std::vector<Matrix4>& pmat, std::size_t pattern,
                          std::vector<double>& partials) const;

    SitePatterns patterns_;
    std::unique_ptr<SubstModel> model_;
    BaseFreqs pi_;
    RateCategories rates_;
    // Last member: its construction reads patterns_/model_/rates_.
    std::unique_ptr<LikelihoodEngine> engine_;
};

/// Incremental (dirty-path) evaluation: keeps a persistent pattern-major
/// partials arena (PartialsBuffer) for one genealogy chain and recomputes
/// only ancestors of changed nodes, through the same strip kernels as the
/// full-recomputation path. This is the caching strategy the paper rejected
/// for the GPU; bench/micro_kernels quantifies the CPU tradeoff.
class LikelihoodCache {
  public:
    explicit LikelihoodCache(const DataLikelihood& lik);

    /// Full evaluation, populating the arena for `g`. Pattern blocks run on
    /// `pool` when supplied; the arena is sized on first use and reused
    /// (never reallocated) by every later call of the same shape.
    double evaluate(const Genealogy& g, ThreadPool* pool = nullptr);

    /// Re-evaluate after `dirty` nodes (and consequently their ancestors)
    /// changed. The genealogy must have the same shape (node count) as the
    /// last full evaluation.
    double evaluateDirty(const Genealogy& g, const std::vector<NodeId>& dirty,
                         ThreadPool* pool = nullptr);

  private:
    const DataLikelihood& lik_;
    PartialsBuffer buf_;
};

}  // namespace mpcgs
