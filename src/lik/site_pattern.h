// Site-pattern compression.
//
// Identical alignment columns contribute identical per-site likelihoods, so
// they can be collapsed into unique patterns with multiplicity weights.
// LAMARC performs this optimization; the paper's GPU kernel does not
// (one thread per raw site). Both paths are supported — the speedup
// benches run uncompressed to match the paper's scaling dimension.
#pragma once

#include <cstddef>
#include <vector>

#include "seq/alignment.h"

namespace mpcgs {

class SitePatterns {
  public:
    /// Compress (or, with compress=false, pass through) the columns of an
    /// alignment. Pattern p covers `weight(p)` original columns.
    explicit SitePatterns(const Alignment& aln, bool compress = true);

    std::size_t patternCount() const { return weights_.size(); }
    std::size_t sequenceCount() const { return nSeq_; }
    std::size_t siteCount() const { return nSites_; }

    /// Multiplicity of pattern p.
    double weight(std::size_t p) const { return weights_[p]; }

    /// Nucleotide code of sequence `s` in pattern `p` (pattern-major layout).
    NucCode code(std::size_t p, std::size_t s) const { return codes_[p * nSeq_ + s]; }

    /// Pattern index of each original column.
    const std::vector<std::size_t>& siteToPattern() const { return siteToPattern_; }

    /// Sequence names in tip order, captured from the alignment — the SMC
    /// cloud labels its genealogies with these so sampled trees are
    /// exportable the same way MCMC genealogies are.
    const std::vector<std::string>& sequenceNames() const { return names_; }

    /// Raw pattern-major code matrix (patternCount x nSeq), for the strip
    /// kernels' tip fills.
    const NucCode* codesData() const { return codes_.data(); }

    /// Raw multiplicity array (patternCount), for the weighted root fold.
    const double* weightsData() const { return weights_.data(); }

  private:
    std::size_t nSeq_ = 0;
    std::size_t nSites_ = 0;
    std::vector<NucCode> codes_;     // patternCount x nSeq
    std::vector<double> weights_;
    std::vector<std::size_t> siteToPattern_;
    std::vector<std::string> names_;
};

}  // namespace mpcgs
