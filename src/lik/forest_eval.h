// Partial-forest likelihood evaluation — the likelihood hook of the SMC
// subsystem (src/smc/).
//
// A particle in the genealogy filter is a forest: k live subtrees whose
// roots have conditional likelihood vectors L_r(X) per site pattern. The
// forest's likelihood is
//
//   L(forest) = prod_r [ prod_p ( sum_X pi_X L_r,p(X) )^{w_p} ],
//
// i.e. each live root is marginalized over the stationary distribution
// (the Chen & Xie / sts partial-likelihood target). Growing a particle by
// one coalescence only combines two root vectors through their branch
// transition matrices (Eq. 19 for a single new node) — no re-walk of the
// subtree below — so a cloud of N particles costs O(N * patterns) per
// coalescence, embarrassingly parallel over particles.
//
// Rate heterogeneity: vectors are carried per rate category and averaged
// at the root marginalization, matching DataLikelihood's site-likelihood
// definition. Underflow: each pattern's vector is max-rescaled after every
// combine, the log scale carried per pattern (§5.3 discipline).
#pragma once

#include <vector>

#include "lik/felsenstein.h"
#include "util/matrix4.h"

namespace mpcgs {

/// Conditional likelihood vectors of one live subtree root:
/// data[(c * patterns + p) * 4 + x] for rate category c, pattern p,
/// nucleotide x, plus the per-pattern log rescale factor accumulated from
/// the subtree below.
struct SubtreePartials {
    std::vector<double> data;
    std::vector<double> scaleLog;
};

class ForestEvaluator {
  public:
    /// Borrows the pattern data, substitution model and rate categories of
    /// `lik`, which must outlive this object.
    explicit ForestEvaluator(const DataLikelihood& lik);

    std::size_t patternCount() const { return patterns_.patternCount(); }
    std::size_t categoryCount() const { return rates_.count(); }
    const std::vector<std::string>& tipNames() const {
        return patterns_.sequenceNames();
    }

    /// Conditional vectors of tip `tip` (indicator columns; unknown sites
    /// are all-ones). scaleLog is zero.
    SubtreePartials tipPartials(int tip) const;

    /// Combine two live roots into their parent: `out` receives the
    /// Eq. 19 product of the children propagated through branch lengths
    /// `lenA`/`lenB` (scaled per rate category), max-rescaled per pattern.
    /// `out` may not alias the inputs.
    void combine(const SubtreePartials& a, double lenA, const SubtreePartials& b,
                 double lenB, SubtreePartials& out) const;

    /// log of this root's factor of the forest likelihood:
    /// sum_p w_p * [ log( sum_c v_c sum_X pi_X L_p,c(X) ) + scaleLog_p ].
    double rootLogLikelihood(const SubtreePartials& s) const;

  private:
    const SitePatterns& patterns_;
    const SubstModel& model_;
    const BaseFreqs& pi_;
    const RateCategories& rates_;
};

}  // namespace mpcgs
