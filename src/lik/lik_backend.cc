#include "lik/lik_backend.h"

#include <cstring>

#include "util/error.h"

namespace mpcgs {

const char* likBackendName(LikBackendKind kind) {
    switch (kind) {
        case LikBackendKind::Arena:
            return "arena";
        case LikBackendKind::Batched:
            return "batched";
    }
    return "?";
}

LikBackendKind parseLikBackend(const std::string& name) {
    if (name == "arena") return LikBackendKind::Arena;
    if (name == "batched") return LikBackendKind::Batched;
    throw ConfigError("unknown likelihood backend '" + name +
                      "' (choices: arena, batched)");
}

namespace detail {

SlotArenaBackend::SlotArenaBackend(const DataLikelihood& lik)
    : patterns_(lik.patterns()),
      model_(lik.model()),
      pi_(lik.rootFreqs()),
      rates_(lik.rateCategories()) {
    const std::size_t P = patterns_.patternCount();
    const std::size_t C = rates_.count();
    dataLen_ = C * P * 4;
    dataStride_ = roundUpTo(dataLen_, kCacheLineBytes / sizeof(double));
    scaleStride_ = roundUpTo(P, kCacheLineBytes / sizeof(double));
}

void SlotArenaBackend::resizeSlots(std::size_t n) {
    slots_ = n;
    data_.ensure(n * dataStride_);
    scale_.ensure(n * scaleStride_);
}

void SlotArenaBackend::copySlot(Slot dst, Slot src) {
    if (dst == src) return;
    std::memcpy(dataPtr(dst), dataPtr(src), dataLen_ * sizeof(double));
    std::memcpy(scalePtr(dst), scalePtr(src),
                patterns_.patternCount() * sizeof(double));
}

std::unique_ptr<LikelihoodBackend> makeArenaBackend(const DataLikelihood& lik);
std::unique_ptr<LikelihoodBackend> makeBatchedBackend(const DataLikelihood& lik);

}  // namespace detail

std::unique_ptr<LikelihoodBackend> makeLikelihoodBackend(LikBackendKind kind,
                                                         const DataLikelihood& lik) {
    switch (kind) {
        case LikBackendKind::Arena:
            return detail::makeArenaBackend(lik);
        case LikBackendKind::Batched:
            return detail::makeBatchedBackend(lik);
    }
    throw ConfigError("unknown likelihood backend kind");
}

}  // namespace mpcgs
