// Among-site rate variation via discrete gamma categories (Yang 1994) —
// the standard refinement of the pruning likelihood, following the hidden
// Markov rate-variation work of Felsenstein & Churchill (1996), the
// thesis's reference [9]. Each site's rate is one of C equal-weight
// categories whose rates are the category means of a Gamma(alpha, alpha)
// distribution (mean 1); the site likelihood averages the pruning
// likelihood over categories.
#pragma once

#include <vector>

namespace mpcgs {

/// Regularized lower incomplete gamma function P(a, x) (series expansion
/// for x < a+1, continued fraction otherwise). Exposed for tests.
double regularizedGammaP(double a, double x);

/// Inverse of P(a, .) by bisection: the x with P(a, x) = p.
double inverseGammaP(double a, double p);

/// A discrete distribution over site-rate multipliers, normalized so the
/// mean rate is 1 (branch lengths keep their expected-substitutions
/// meaning).
struct RateCategories {
    std::vector<double> rates;
    std::vector<double> weights;

    std::size_t count() const { return rates.size(); }

    /// Single rate 1 (the default, rate-homogeneous model).
    static RateCategories uniformRate();

    /// `categories` equal-weight classes of a mean-1 gamma with shape
    /// `alpha`; smaller alpha = stronger heterogeneity. Rates are the
    /// analytic category means (Yang 1994 "mean" method).
    static RateCategories discreteGamma(double alpha, int categories);

    /// Validates invariants (positive rates, weights summing to 1).
    void validate() const;
};

}  // namespace mpcgs
