#include "lik/locus_likelihoods.h"

#include "util/error.h"

namespace mpcgs {

std::unique_ptr<SubstModel> makeInferenceModel(const std::string& name,
                                               const Alignment& aln) {
    const BaseFreqs pi = aln.baseFrequencies();
    if (name == "F81") return std::make_unique<F81Model>(pi);
    if (name == "JC69") return makeJc69();
    if (name == "HKY85") return makeHky85(2.0, pi);
    if (name == "F84") return makeF84(2.0, pi);
    throw ConfigError("unknown substitution model '" + name + "'");
}

LocusLikelihoods::LocusLikelihoods(const Dataset& dataset, const std::string& modelName,
                                   bool compressPatterns) {
    models_.reserve(dataset.locusCount());
    liks_.reserve(dataset.locusCount());
    for (const Locus& locus : dataset.loci()) {
        models_.push_back(makeInferenceModel(modelName, locus.alignment));
        liks_.push_back(std::make_unique<DataLikelihood>(locus.alignment, *models_.back(),
                                                         compressPatterns));
    }
}

}  // namespace mpcgs
