#include "lik/forest_eval.h"

#include "lik/forest_kernels.h"

namespace mpcgs {

ForestEvaluator::ForestEvaluator(const DataLikelihood& lik)
    : patterns_(lik.patterns()),
      model_(lik.model()),
      pi_(lik.rootFreqs()),
      rates_(lik.rateCategories()) {}

SubtreePartials ForestEvaluator::tipPartials(int tip) const {
    const std::size_t P = patterns_.patternCount();
    const std::size_t C = rates_.count();
    SubtreePartials s;
    s.data.resize(C * P * 4);
    s.scaleLog.resize(P);
    forestTipInitRange(patterns_, tip, s.data.data(), s.scaleLog.data(), P, C, 0, P);
    return s;
}

void ForestEvaluator::combine(const SubtreePartials& a, double lenA,
                              const SubtreePartials& b, double lenB,
                              SubtreePartials& out) const {
    const std::size_t P = patterns_.patternCount();
    const std::size_t C = rates_.count();
    out.data.resize(C * P * 4);
    out.scaleLog.resize(P);

    for (std::size_t c = 0; c < C; ++c) {
        const double rate = rates_.rates[c];
        const Matrix4 pa = model_.transition(lenA * rate);
        const Matrix4 pb = model_.transition(lenB * rate);
        forestCombineRange(pa, pb, &a.data[c * P * 4], &b.data[c * P * 4],
                           &out.data[c * P * 4], 0, P);
    }
    forestRescaleRange(out.data.data(), out.scaleLog.data(), a.scaleLog.data(),
                       b.scaleLog.data(), P, C, 0, P);
}

double ForestEvaluator::rootLogLikelihood(const SubtreePartials& s) const {
    return forestRootLogLik(s.data.data(), s.scaleLog.data(), patterns_, pi_, rates_);
}

}  // namespace mpcgs
