#include "lik/forest_eval.h"

#include <cmath>
#include <limits>

namespace mpcgs {

ForestEvaluator::ForestEvaluator(const DataLikelihood& lik)
    : patterns_(lik.patterns()),
      model_(lik.model()),
      pi_(lik.rootFreqs()),
      rates_(lik.rateCategories()) {}

SubtreePartials ForestEvaluator::tipPartials(int tip) const {
    const std::size_t P = patterns_.patternCount();
    const std::size_t C = rates_.count();
    SubtreePartials s;
    s.data.assign(C * P * 4, 0.0);
    s.scaleLog.assign(P, 0.0);
    for (std::size_t p = 0; p < P; ++p) {
        const NucCode code = patterns_.code(p, static_cast<std::size_t>(tip));
        for (std::size_t c = 0; c < C; ++c) {
            double* v = &s.data[(c * P + p) * 4];
            if (code == kNucUnknown) {
                v[0] = v[1] = v[2] = v[3] = 1.0;
            } else {
                v[code] = 1.0;
            }
        }
    }
    return s;
}

void ForestEvaluator::combine(const SubtreePartials& a, double lenA,
                              const SubtreePartials& b, double lenB,
                              SubtreePartials& out) const {
    const std::size_t P = patterns_.patternCount();
    const std::size_t C = rates_.count();
    out.data.resize(C * P * 4);
    out.scaleLog.resize(P);

    for (std::size_t c = 0; c < C; ++c) {
        const double rate = rates_.rates[c];
        const Matrix4 pa = model_.transition(lenA * rate);
        const Matrix4 pb = model_.transition(lenB * rate);
        for (std::size_t p = 0; p < P; ++p) {
            const double* va = &a.data[(c * P + p) * 4];
            const double* vb = &b.data[(c * P + p) * 4];
            double* vo = &out.data[(c * P + p) * 4];
            for (std::size_t x = 0; x < 4; ++x) {
                double sa = 0.0, sb = 0.0;
                for (std::size_t y = 0; y < 4; ++y) {
                    sa += pa(x, y) * va[y];
                    sb += pb(x, y) * vb[y];
                }
                vo[x] = sa * sb;
            }
        }
    }
    // Per-pattern max rescale (common factor across categories so the
    // category average at the root stays exact).
    for (std::size_t p = 0; p < P; ++p) {
        double m = 0.0;
        for (std::size_t c = 0; c < C; ++c) {
            const double* vo = &out.data[(c * P + p) * 4];
            for (std::size_t x = 0; x < 4; ++x)
                if (vo[x] > m) m = vo[x];
        }
        const double carried = a.scaleLog[p] + b.scaleLog[p];
        if (m > 0.0) {
            const double inv = 1.0 / m;
            for (std::size_t c = 0; c < C; ++c) {
                double* vo = &out.data[(c * P + p) * 4];
                for (std::size_t x = 0; x < 4; ++x) vo[x] *= inv;
            }
            out.scaleLog[p] = carried + std::log(m);
        } else {
            out.scaleLog[p] = carried;
        }
    }
}

double ForestEvaluator::rootLogLikelihood(const SubtreePartials& s) const {
    const std::size_t P = patterns_.patternCount();
    const std::size_t C = rates_.count();
    double total = 0.0;
    for (std::size_t p = 0; p < P; ++p) {
        double site = 0.0;
        for (std::size_t c = 0; c < C; ++c) {
            const double* v = &s.data[(c * P + p) * 4];
            double root = 0.0;
            for (std::size_t x = 0; x < 4; ++x) root += pi_[x] * v[x];
            site += rates_.weights[c] * root;
        }
        const double logSite = site > 0.0
                                   ? std::log(site) + s.scaleLog[p]
                                   : -std::numeric_limits<double>::infinity();
        total += patterns_.weight(p) * logSite;
    }
    return total;
}

}  // namespace mpcgs
