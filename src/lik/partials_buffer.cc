#include "lik/partials_buffer.h"

namespace mpcgs {

void PartialsBuffer::ensure(std::size_t nCategories, std::size_t nTips,
                            std::size_t nInternals, std::size_t stride) {
    const bool sameShape = nCategories == categories && nTips == tips &&
                           nInternals == internals && stride == patternStride;
    if (!sameShape) primed = false;
    categories = nCategories;
    tips = nTips;
    internals = nInternals;
    patternStride = stride;

    partialsData.ensure(nCategories * nInternals * stride * 4);
    scaleData.ensure(nCategories * nInternals * stride);
    tmat.resize(nCategories * nodeCount());
    rescale.assign(nodeCount(), 0);
    hasScale.assign(nodeCount(), 0);
}

}  // namespace mpcgs
