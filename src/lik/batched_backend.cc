// BatchedBackend — cloud-wide batched execution of the likelihood
// operation queue (the paper's device-kernel batching discipline, §5.2,
// applied to the SMC likelihood path).
//
// Enqueue is a lock-free append into pre-sized operation arrays (one
// atomic fetch_add per op), so a whole generation of particles can queue
// its combines from inside the propagation launch. flush() then executes
// the batch in dependency order:
//
//   1. tip initializations (one launch item per op);
//   2. transition-matrix precompute: the distinct branch-length bit
//      patterns of the batch are sorted + uniqued and each distinct length
//      is exponentiated once per rate category — a generation of N
//      particles shares matrices instead of computing 2C per particle;
//   3. one flat launch over (combine op x pattern block): every item owns
//      a contiguous cache-resident pattern slice of one operation;
//   4. root log-likelihood folds, one launch item per op, each a serial
//      in-pattern-order fold (the fold order is part of the bitwise
//      contract).
//
// Results are slot-/pointer-indexed, so the nondeterministic enqueue order
// under concurrency never affects values: the same machine code (shared
// forest_kernels) runs over the same slots with bit-identical matrices,
// whatever the array order or thread count. Within one batch, a combine's
// parent must not feed another queued combine (the SMC generation
// structure guarantees this); root ops may read slots written by the same
// batch's combines or tip inits.
#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "lik/forest_kernels.h"
#include "lik/lik_backend.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace mpcgs {
namespace detail {
namespace {

/// Pattern-block width of the flat combine launch: one item touches
/// 4 * kPatternBlock doubles per category per operand, sized to stay
/// cache-resident while giving thread counts beyond the op count
/// something to steal.
constexpr std::size_t kPatternBlock = 256;

struct TipOp {
    LikelihoodBackend::Slot dst;
    int tip;
};

struct CombineOp {
    LikelihoodBackend::Slot parent, childA, childB;
    double lenA, lenB;
    std::uint32_t matA, matB;  ///< distinct-length indices, filled at flush
};

struct RootOp {
    LikelihoodBackend::Slot slot;
    double* out;
};

class BatchedBackend final : public SlotArenaBackend {
  public:
    using SlotArenaBackend::SlotArenaBackend;

    LikBackendKind kind() const override { return LikBackendKind::Batched; }

    void resizeSlots(std::size_t n) override {
        SlotArenaBackend::resizeSlots(n);
        // At most one op of each kind per slot per batch (a slot is written
        // once per generation), so slotCount bounds every queue.
        if (tipOps_.size() < n) {
            tipOps_.resize(n);
            combineOps_.resize(n);
            rootOps_.resize(n);
            lenKeys_.reserve(2 * n);
        }
    }

    void tipInit(Slot dst, int tip) override {
        tipOps_[claim(nTips_, tipOps_.size())] = {dst, tip};
    }

    void combine(Slot parent, Slot childA, double lenA, Slot childB,
                 double lenB) override {
        combineOps_[claim(nCombines_, combineOps_.size())] = {
            parent, childA, childB, lenA, lenB, 0, 0};
    }

    void rootLogLik(Slot slot, double* out) override {
        rootOps_[claim(nRoots_, rootOps_.size())] = {slot, out};
    }

    void flush(ThreadPool* pool) override;

  private:
    static std::size_t claim(std::atomic<std::size_t>& counter, std::size_t cap) {
        const std::size_t i = counter.fetch_add(1, std::memory_order_relaxed);
        if (i >= cap)
            throw InvariantError("likelihood batch overflows its slot-sized queue");
        return i;
    }

    std::vector<TipOp> tipOps_;
    std::vector<CombineOp> combineOps_;
    std::vector<RootOp> rootOps_;
    std::atomic<std::size_t> nTips_{0}, nCombines_{0}, nRoots_{0};

    std::vector<std::uint64_t> lenKeys_;  ///< sorted distinct length bits
    std::vector<Matrix4> matStore_;       ///< [distinct d][category c] = d*C + c
};

void BatchedBackend::flush(ThreadPool* pool) {
    const std::size_t P = patterns_.patternCount();
    const std::size_t C = rates_.count();
    const std::size_t nTips = nTips_.load(std::memory_order_relaxed);
    const std::size_t nCombines = nCombines_.load(std::memory_order_relaxed);
    const std::size_t nRoots = nRoots_.load(std::memory_order_relaxed);

    // 1. Tip initializations.
    forEachIndex(
        pool, nTips,
        [&](std::size_t i) {
            const TipOp& op = tipOps_[i];
            forestTipInitRange(patterns_, op.tip, dataPtr(op.dst),
                               scalePtr(op.dst), P, C, 0, P);
        },
        /*grain=*/1);

    if (nCombines > 0) {
        // 2. Distinct transition matrices, once per (length, category).
        lenKeys_.clear();
        for (std::size_t i = 0; i < nCombines; ++i) {
            lenKeys_.push_back(std::bit_cast<std::uint64_t>(combineOps_[i].lenA));
            lenKeys_.push_back(std::bit_cast<std::uint64_t>(combineOps_[i].lenB));
        }
        std::sort(lenKeys_.begin(), lenKeys_.end());
        lenKeys_.erase(std::unique(lenKeys_.begin(), lenKeys_.end()),
                       lenKeys_.end());
        const std::size_t nLens = lenKeys_.size();
        if (matStore_.size() < nLens * C) matStore_.resize(nLens * C);
        forEachIndex(
            pool, nLens,
            [&](std::size_t d) {
                const double len = std::bit_cast<double>(lenKeys_[d]);
                for (std::size_t c = 0; c < C; ++c)
                    matStore_[d * C + c] = model_.transition(len * rates_.rates[c]);
            },
            /*grain=*/1);
        obs::add(obs::Counter::LikMatricesComputed, nLens * C);

        const auto lenIndex = [&](double len) {
            const std::uint64_t key = std::bit_cast<std::uint64_t>(len);
            return static_cast<std::uint32_t>(
                std::lower_bound(lenKeys_.begin(), lenKeys_.end(), key) -
                lenKeys_.begin());
        };
        for (std::size_t i = 0; i < nCombines; ++i) {
            combineOps_[i].matA = lenIndex(combineOps_[i].lenA);
            combineOps_[i].matB = lenIndex(combineOps_[i].lenB);
        }

        // 3. One flat launch over (combine op x pattern block).
        const std::size_t nBlocks = (P + kPatternBlock - 1) / kPatternBlock;
        forEachIndex(
            pool, nCombines * nBlocks,
            [&](std::size_t item) {
                const CombineOp& op = combineOps_[item / nBlocks];
                const std::size_t p0 = (item % nBlocks) * kPatternBlock;
                const std::size_t n = std::min(kPatternBlock, P - p0);
                const double* va = dataPtr(op.childA);
                const double* vb = dataPtr(op.childB);
                double* vo = dataPtr(op.parent);
                for (std::size_t c = 0; c < C; ++c)
                    forestCombineRange(matStore_[op.matA * C + c],
                                       matStore_[op.matB * C + c], va + c * P * 4,
                                       vb + c * P * 4, vo + c * P * 4, p0, n);
                forestRescaleRange(vo, scalePtr(op.parent), scalePtr(op.childA),
                                   scalePtr(op.childB), P, C, p0, n);
            },
            /*grain=*/1);
    }

    // 4. Root folds (serial in-pattern-order per op; ops in parallel).
    forEachIndex(
        pool, nRoots,
        [&](std::size_t i) {
            const RootOp& op = rootOps_[i];
            *op.out = forestRootLogLik(dataPtr(op.slot), scalePtr(op.slot),
                                       patterns_, pi_, rates_);
        },
        /*grain=*/1);

    // flush() is serial-context (header contract), so these registry
    // counts are deterministic per run. matrices_requested vs
    // matrices_computed is the dedup hit-rate the batching buys.
    obs::add(obs::Counter::LikFlushes);
    obs::add(obs::Counter::LikCombineOps, nCombines);
    obs::add(obs::Counter::LikMatricesRequested, 2 * C * nCombines);
    nTips_.store(0, std::memory_order_relaxed);
    nCombines_.store(0, std::memory_order_relaxed);
    nRoots_.store(0, std::memory_order_relaxed);
}

}  // namespace

std::unique_ptr<LikelihoodBackend> makeBatchedBackend(const DataLikelihood& lik) {
    return std::make_unique<BatchedBackend>(lik);
}

}  // namespace detail
}  // namespace mpcgs
