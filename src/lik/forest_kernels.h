// Shared per-pattern kernels of the partial-forest likelihood path.
//
// Every likelihood backend (lik/lik_backend.h) and the ForestEvaluator
// reference implementation execute the SAME math through these functions:
// they are deliberately compiled once, out of line, so the combine /
// rescale / root-marginalization arithmetic has a single machine-code
// definition. That is what makes the cross-backend agreement contract
// *bitwise* rather than merely approximate — an eager arena execution, a
// cloud-wide batched execution, and the reference evaluator all run the
// identical instruction sequence per pattern, only scheduled differently.
//
// Layout convention (inherited from SubtreePartials): a partials buffer
// holds data[(c * P + p) * 4 + x] for rate category c of C, site pattern p
// of P and nucleotide x, plus a per-pattern log rescale factor scaleLog[p]
// shared by all categories.
#pragma once

#include <cstddef>

#include "lik/rate_model.h"
#include "lik/site_pattern.h"
#include "seq/nucleotide.h"
#include "util/matrix4.h"

namespace mpcgs {

/// Fill one tip's conditional vectors over patterns [p0, p0+n): indicator
/// columns (all-ones for unknown sites) for every category, zero scale.
/// `data`/`scaleLog` are the buffer base pointers (full P x C slot).
void forestTipInitRange(const SitePatterns& patterns, int tip, double* data,
                        double* scaleLog, std::size_t P, std::size_t C,
                        std::size_t p0, std::size_t n);

/// Eq. 19 combine for ONE rate category over patterns [p0, p0+n):
/// vo = (Pa va) .* (Pb vb) elementwise over the 4 states. The pointers are
/// already offset to the category's pattern-0 vector; the kernel indexes
/// (p * 4 + x) relative to them.
void forestCombineRange(const Matrix4& pa, const Matrix4& pb, const double* va,
                        const double* vb, double* vo, std::size_t p0, std::size_t n);

/// Per-pattern max rescale over patterns [p0, p0+n) after a combine: the
/// max runs across all C categories of the pattern (common factor, so the
/// category average at the root stays exact), and the children's carried
/// log scales are summed in. `data`/`scaleLog` are the parent slot's base
/// pointers; `scaleA`/`scaleB` the children's scale base pointers.
void forestRescaleRange(double* data, double* scaleLog, const double* scaleA,
                        const double* scaleB, std::size_t P, std::size_t C,
                        std::size_t p0, std::size_t n);

/// Root factor of the forest likelihood for one slot, folded serially in
/// pattern order (the fold order is part of the bitwise contract):
/// sum_p w_p * [ log( sum_c v_c sum_X pi_X L_p,c(X) ) + scaleLog_p ].
double forestRootLogLik(const double* data, const double* scaleLog,
                        const SitePatterns& patterns, const BaseFreqs& pi,
                        const RateCategories& rates);

}  // namespace mpcgs
