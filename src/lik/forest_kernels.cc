#include "lik/forest_kernels.h"

#include <cmath>
#include <limits>

namespace mpcgs {

void forestTipInitRange(const SitePatterns& patterns, int tip, double* data,
                        double* scaleLog, std::size_t P, std::size_t C,
                        std::size_t p0, std::size_t n) {
    for (std::size_t p = p0; p < p0 + n; ++p) {
        const NucCode code = patterns.code(p, static_cast<std::size_t>(tip));
        for (std::size_t c = 0; c < C; ++c) {
            double* v = data + (c * P + p) * 4;
            if (code == kNucUnknown) {
                v[0] = v[1] = v[2] = v[3] = 1.0;
            } else {
                v[0] = v[1] = v[2] = v[3] = 0.0;
                v[code] = 1.0;
            }
        }
        scaleLog[p] = 0.0;
    }
}

void forestCombineRange(const Matrix4& pa, const Matrix4& pb, const double* va,
                        const double* vb, double* vo, std::size_t p0, std::size_t n) {
    for (std::size_t p = p0; p < p0 + n; ++p) {
        const double* a = va + p * 4;
        const double* b = vb + p * 4;
        double* o = vo + p * 4;
        for (std::size_t x = 0; x < 4; ++x) {
            double sa = 0.0, sb = 0.0;
            for (std::size_t y = 0; y < 4; ++y) {
                sa += pa(x, y) * a[y];
                sb += pb(x, y) * b[y];
            }
            o[x] = sa * sb;
        }
    }
}

void forestRescaleRange(double* data, double* scaleLog, const double* scaleA,
                        const double* scaleB, std::size_t P, std::size_t C,
                        std::size_t p0, std::size_t n) {
    for (std::size_t p = p0; p < p0 + n; ++p) {
        double m = 0.0;
        for (std::size_t c = 0; c < C; ++c) {
            const double* vo = data + (c * P + p) * 4;
            for (std::size_t x = 0; x < 4; ++x)
                if (vo[x] > m) m = vo[x];
        }
        const double carried = scaleA[p] + scaleB[p];
        if (m > 0.0) {
            const double inv = 1.0 / m;
            for (std::size_t c = 0; c < C; ++c) {
                double* vo = data + (c * P + p) * 4;
                for (std::size_t x = 0; x < 4; ++x) vo[x] *= inv;
            }
            scaleLog[p] = carried + std::log(m);
        } else {
            scaleLog[p] = carried;
        }
    }
}

double forestRootLogLik(const double* data, const double* scaleLog,
                        const SitePatterns& patterns, const BaseFreqs& pi,
                        const RateCategories& rates) {
    const std::size_t P = patterns.patternCount();
    const std::size_t C = rates.count();
    double total = 0.0;
    for (std::size_t p = 0; p < P; ++p) {
        double site = 0.0;
        for (std::size_t c = 0; c < C; ++c) {
            const double* v = data + (c * P + p) * 4;
            double root = 0.0;
            for (std::size_t x = 0; x < 4; ++x) root += pi[x] * v[x];
            site += rates.weights[c] * root;
        }
        const double logSite = site > 0.0
                                   ? std::log(site) + scaleLog[p]
                                   : -std::numeric_limits<double>::infinity();
        total += patterns.weight(p) * logSite;
    }
    return total;
}

}  // namespace mpcgs
