// Pattern-major likelihood engine: the shared evaluation core behind both
// DataLikelihood::logLikelihood (stateless, full recomputation — the
// paper's GPU strategy, §5.2.2) and LikelihoodCache (persistent arena with
// dirty-path updates — the production-LAMARC strategy).
//
// Design, versus the seed's scalar per-pattern pruning:
//
//  * Partials are pattern-major ([pattern][state], contiguous per node), so
//    one node is processed as a single sweep over all its patterns by the
//    strip kernels (pruning_kernels.h) with the transition matrices held in
//    registers — the CPU image of one-GPU-thread-per-site.
//  * Tip partials depend only on the alignment, never on the genealogy;
//    they are packed once at construction and shared by every evaluation.
//  * Rescaling (§5.3) runs every kRescaleInterval tree levels as a separate
//    strip pass instead of a per-node per-pattern branch, and subtrees that
//    have never rescaled skip scale bookkeeping entirely.
//  * Pattern strips are partitioned into cache-sized blocks launched across
//    the thread pool (par/kernel.h launchBlocked): every worker prunes the
//    full post-order over its own pattern slice, so there is zero
//    synchronization between nodes. Block boundaries depend only on the
//    problem shape, so results are bitwise identical for any thread count.
//  * Rate categories are fused into the same blocked pass (each block
//    prunes all categories while its slice is cache-hot) for both the
//    stateless and the cached path.
#pragma once

#include <cstdint>
#include <vector>

#include "lik/partials_buffer.h"
#include "lik/rate_model.h"
#include "lik/site_pattern.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"
#include "seq/subst_model.h"

namespace mpcgs {

class LikelihoodEngine {
  public:
    /// Rescale every this many tree levels. With per-level partial shrink
    /// bounded below by the smallest transition probability, four levels
    /// stay far above the double underflow threshold between passes.
    static constexpr std::size_t kRescaleInterval = 4;

    /// Holds references: `patterns` and `model` must outlive the engine
    /// (DataLikelihood owns both and constructs the engine last).
    LikelihoodEngine(const SitePatterns& patterns, const SubstModel& model,
                     RateCategories rates);

    LikelihoodEngine(const LikelihoodEngine&) = delete;
    LikelihoodEngine& operator=(const LikelihoodEngine&) = delete;

    /// log P(D|G) by full recomputation. Thread-safe (per-thread scratch);
    /// pattern blocks run on `pool` when supplied.
    double logLikelihood(const Genealogy& g, ThreadPool* pool = nullptr) const;

    /// Full evaluation populating `buf` (the cached path's arena).
    double evaluate(const Genealogy& g, PartialsBuffer& buf, ThreadPool* pool = nullptr) const;

    /// Re-evaluate after `dirty` nodes (and their ancestors) changed,
    /// recomputing only the dirty closure — including its transition
    /// matrices, which the seed rebuilt for every node on every step.
    double evaluateDirty(const Genealogy& g, const std::vector<NodeId>& dirty,
                         PartialsBuffer& buf, ThreadPool* pool = nullptr) const;

    std::size_t patternCount() const { return patterns_.patternCount(); }
    std::size_t patternStride() const { return stride_; }

    /// Pattern-major conditional likelihoods of tip `s` (strip layout).
    const double* tipPartials(std::size_t s) const {
        return tipPartials_.data() + s * stride_ * 4;
    }

    /// Traversal metadata for one genealogy: the per-node rescale schedule
    /// derived from pruning levels. Public so callers (and the engine's own
    /// thread-local scratch) can keep one warm across evaluations.
    struct Meta {
        std::vector<std::uint8_t> rescale;
        std::vector<std::uint8_t> hasScale;
    };

  private:
    /// Fill `meta` for `order`; `level` is per-node scratch. Reuses the
    /// vectors' capacity — no allocation once warm.
    void traversalMeta(const Genealogy& g, const std::vector<NodeId>& order, Meta& meta,
                       std::vector<std::uint16_t>& level) const;

    /// Pack transition matrices for all categories; `dst` is indexed
    /// [c * nodeCount + child]. `only` restricts to the given child ids
    /// (nullptr = every non-root node).
    void packMatrices(const Genealogy& g, TransMat* dst,
                      const std::vector<NodeId>* only = nullptr) const;

    /// Prune the nodes of `order` for category c over patterns [p0, p0+n),
    /// reading/writing through the pointer resolvers. Shared by the
    /// stateless and cached paths.
    struct StripView;
    void pruneBlock(const Genealogy& g, const std::vector<NodeId>& order, const Meta& meta,
                    const TransMat* tmat, std::size_t c, const StripView& view,
                    std::size_t n) const;

    /// Root reduction for one category over a block: fills `site` with the
    /// per-pattern site log-likelihoods and either returns the weighted
    /// fold (single category) or log-adds into `acc` and returns 0.
    double foldCategory(const Genealogy& g, const Meta& meta, std::size_t c,
                        const StripView& view, std::size_t p0, std::size_t n, double* site,
                        double* acc) const;

    /// Blocked pruning + reduction over the persistent arena (cached path).
    double runBlocked(const Genealogy& g, const std::vector<NodeId>& order, const Meta& meta,
                      PartialsBuffer& buf, ThreadPool* pool) const;

    std::size_t blockSize() const;

    const SitePatterns& patterns_;
    const SubstModel& model_;
    BaseFreqs pi_;
    RateCategories rates_;
    std::vector<double> logCatWeights_;
    std::size_t stride_ = 0;        ///< patternCount rounded up to 8
    AlignedDoubles tipPartials_;    ///< nSeq x stride*4, packed once
};

}  // namespace mpcgs
