// ArenaBackend — eager reference execution of the likelihood operation
// queue. Every operation runs at enqueue time through the shared
// forest_kernels, serially on the enqueueing thread; flush() is a no-op
// barrier. This wraps the pre-backend SIMD pattern-major arena execution
// exactly (same kernels, same order), so it is the bitwise reference the
// batched backend is gated against — and it stays the simplest thing to
// read when debugging a numerical question.
#include "lik/forest_kernels.h"
#include "lik/lik_backend.h"
#include "obs/metrics.h"

namespace mpcgs {
namespace detail {
namespace {

class ArenaBackend final : public SlotArenaBackend {
  public:
    using SlotArenaBackend::SlotArenaBackend;

    LikBackendKind kind() const override { return LikBackendKind::Arena; }

    void tipInit(Slot dst, int tip) override {
        const std::size_t P = patterns_.patternCount();
        forestTipInitRange(patterns_, tip, dataPtr(dst), scalePtr(dst), P,
                           rates_.count(), 0, P);
    }

    void combine(Slot parent, Slot childA, double lenA, Slot childB,
                 double lenB) override {
        const std::size_t P = patterns_.patternCount();
        const std::size_t C = rates_.count();
        const double* va = dataPtr(childA);
        const double* vb = dataPtr(childB);
        double* vo = dataPtr(parent);
        for (std::size_t c = 0; c < C; ++c) {
            const double rate = rates_.rates[c];
            const Matrix4 pa = model_.transition(lenA * rate);
            const Matrix4 pb = model_.transition(lenB * rate);
            forestCombineRange(pa, pb, va + c * P * 4, vb + c * P * 4,
                               vo + c * P * 4, 0, P);
        }
        forestRescaleRange(vo, scalePtr(parent), scalePtr(childA),
                           scalePtr(childB), P, C, 0, P);
        obs::add(obs::Counter::LikCombineOps);
        obs::add(obs::Counter::LikMatricesRequested, 2 * C);
        obs::add(obs::Counter::LikMatricesComputed, 2 * C);
    }

    void rootLogLik(Slot slot, double* out) override {
        *out = forestRootLogLik(dataPtr(slot), scalePtr(slot), patterns_, pi_,
                                rates_);
    }

    void flush(ThreadPool* /*pool*/) override {
        obs::add(obs::Counter::LikFlushes);
    }
};

}  // namespace

std::unique_ptr<LikelihoodBackend> makeArenaBackend(const DataLikelihood& lik) {
    return std::make_unique<ArenaBackend>(lik);
}

}  // namespace detail
}  // namespace mpcgs
