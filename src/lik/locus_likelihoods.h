// Per-locus likelihood engines for a multi-locus Dataset.
//
// Each locus owns its own SubstModel instance (stationary frequencies are
// estimated from that locus's data, §2.4) and its own DataLikelihood —
// pattern compression, partials arena and SIMD engine included — so locus
// evaluations never share mutable state and parallelize freely across the
// loci axis.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lik/felsenstein.h"
#include "lik/lik_backend.h"
#include "seq/dataset.h"

namespace mpcgs {

/// Build the inference model `name` (F81 | JC69 | HKY85 | F84) with the
/// stationary frequencies of `aln`. Throws ConfigError on unknown names.
std::unique_ptr<SubstModel> makeInferenceModel(const std::string& name,
                                               const Alignment& aln);

/// One DataLikelihood per locus, in dataset order. DataLikelihood pins its
/// address (the engine holds references into it), so entries live behind
/// unique_ptr and the set itself is move-only.
class LocusLikelihoods {
  public:
    LocusLikelihoods(const Dataset& dataset, const std::string& modelName,
                     bool compressPatterns = true);

    std::size_t locusCount() const { return liks_.size(); }
    const DataLikelihood& at(std::size_t l) const { return *liks_[l]; }

    /// Fresh likelihood backend of `kind` over locus `l` (one per SMC
    /// pass: backends hold mutable batch state, so concurrent passes —
    /// e.g. parallel PMMH chains — must not share one).
    std::unique_ptr<LikelihoodBackend> makeBackend(std::size_t l,
                                                   LikBackendKind kind) const {
        return makeLikelihoodBackend(kind, *liks_[l]);
    }

    LocusLikelihoods(const LocusLikelihoods&) = delete;
    LocusLikelihoods& operator=(const LocusLikelihoods&) = delete;
    LocusLikelihoods(LocusLikelihoods&&) = default;
    LocusLikelihoods& operator=(LocusLikelihoods&&) = default;

  private:
    std::vector<std::unique_ptr<SubstModel>> models_;
    std::vector<std::unique_ptr<DataLikelihood>> liks_;
};

}  // namespace mpcgs
