#include "lik/site_pattern.h"

#include <map>

#include "util/error.h"

namespace mpcgs {

SitePatterns::SitePatterns(const Alignment& aln, bool compress) {
    nSeq_ = aln.sequenceCount();
    nSites_ = aln.length();
    require(nSeq_ > 0 && nSites_ > 0, "SitePatterns: empty alignment");
    names_ = aln.names();
    siteToPattern_.resize(nSites_);

    if (!compress) {
        codes_.resize(nSites_ * nSeq_);
        weights_.assign(nSites_, 1.0);
        for (std::size_t site = 0; site < nSites_; ++site) {
            siteToPattern_[site] = site;
            for (std::size_t s = 0; s < nSeq_; ++s)
                codes_[site * nSeq_ + s] = aln.sequence(s).at(site);
        }
        return;
    }

    std::map<std::vector<NucCode>, std::size_t> seen;
    std::vector<NucCode> col(nSeq_);
    for (std::size_t site = 0; site < nSites_; ++site) {
        for (std::size_t s = 0; s < nSeq_; ++s) col[s] = aln.sequence(s).at(site);
        const auto it = seen.find(col);
        if (it == seen.end()) {
            const std::size_t p = weights_.size();
            seen.emplace(col, p);
            weights_.push_back(1.0);
            codes_.insert(codes_.end(), col.begin(), col.end());
            siteToPattern_[site] = p;
        } else {
            weights_[it->second] += 1.0;
            siteToPattern_[site] = it->second;
        }
    }
}

}  // namespace mpcgs
