#include "lik/rate_model.h"

#include <cmath>
#include <limits>
#include <vector>

#include "util/error.h"

namespace mpcgs {
namespace {

/// Series expansion of P(a, x), valid and fast for x < a + 1.
double gammaPSeries(double a, double x) {
    double term = 1.0 / a;
    double sum = term;
    for (int n = 1; n < 500; ++n) {
        term *= x / (a + n);
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1
/// (modified Lentz algorithm).
double gammaQContinuedFraction(double a, double x) {
    constexpr double kTiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / kTiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 500; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = b + an / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < 1e-16) break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularizedGammaP(double a, double x) {
    require(a > 0.0, "regularizedGammaP: shape must be positive");
    if (x <= 0.0) return 0.0;
    if (x < a + 1.0) return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double inverseGammaP(double a, double p) {
    require(p >= 0.0 && p < 1.0, "inverseGammaP: p must be in [0, 1)");
    if (p == 0.0) return 0.0;
    // Bracket: expand the upper bound until P exceeds p.
    double hi = a + 1.0;
    while (regularizedGammaP(a, hi) < p) hi *= 2.0;
    double lo = 0.0;
    for (int it = 0; it < 200 && (hi - lo) > 1e-14 * (1.0 + hi); ++it) {
        const double mid = 0.5 * (lo + hi);
        if (regularizedGammaP(a, mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

RateCategories RateCategories::uniformRate() {
    return RateCategories{{1.0}, {1.0}};
}

RateCategories RateCategories::discreteGamma(double alpha, int categories) {
    if (alpha <= 0.0) throw ConfigError("discreteGamma: alpha must be positive");
    if (categories < 1) throw ConfigError("discreteGamma: need at least one category");
    if (categories == 1) return uniformRate();

    // Gamma(shape = alpha, rate = alpha): mean 1. Category c covers
    // quantiles [c/C, (c+1)/C); its mean is
    //   C * [ P(alpha+1, alpha q_{c+1}) - P(alpha+1, alpha q_c) ],
    // with q the category boundaries on the x-axis (Yang 1994, Eq. 10).
    const int C = categories;
    RateCategories out;
    out.rates.resize(static_cast<std::size_t>(C));
    out.weights.assign(static_cast<std::size_t>(C), 1.0 / C);

    std::vector<double> cut(static_cast<std::size_t>(C + 1), 0.0);
    for (int c = 1; c < C; ++c)
        cut[static_cast<std::size_t>(c)] =
            inverseGammaP(alpha, static_cast<double>(c) / C) / alpha;
    cut[static_cast<std::size_t>(C)] = std::numeric_limits<double>::infinity();

    double meanSum = 0.0;
    for (int c = 0; c < C; ++c) {
        const double pLo =
            std::isinf(cut[static_cast<std::size_t>(c)]) ? 1.0
            : regularizedGammaP(alpha + 1.0, alpha * cut[static_cast<std::size_t>(c)]);
        const double pHi =
            std::isinf(cut[static_cast<std::size_t>(c + 1)])
                ? 1.0
                : regularizedGammaP(alpha + 1.0, alpha * cut[static_cast<std::size_t>(c + 1)]);
        out.rates[static_cast<std::size_t>(c)] = C * (pHi - pLo);
        meanSum += out.rates[static_cast<std::size_t>(c)];
    }
    // Renormalize to mean exactly 1 against discretization round-off.
    for (auto& r : out.rates) r *= C / meanSum;
    out.validate();
    return out;
}

void RateCategories::validate() const {
    require(!rates.empty() && rates.size() == weights.size(),
            "RateCategories: size mismatch");
    double wsum = 0.0, mean = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        require(rates[i] > 0.0, "RateCategories: non-positive rate");
        require(weights[i] > 0.0, "RateCategories: non-positive weight");
        wsum += weights[i];
        mean += weights[i] * rates[i];
    }
    require(std::fabs(wsum - 1.0) < 1e-9, "RateCategories: weights must sum to 1");
    require(std::fabs(mean - 1.0) < 1e-6, "RateCategories: mean rate must be 1");
}

}  // namespace mpcgs
