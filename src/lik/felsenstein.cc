#include "lik/felsenstein.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/logspace.h"

namespace mpcgs {
namespace {

/// Rescale threshold: when the largest partial of a node drops below this,
/// factor it out and carry it in log space (§5.3).
constexpr double kScaleFloor = 1e-100;

}  // namespace

DataLikelihood::DataLikelihood(const Alignment& aln, const SubstModel& model,
                               bool compressPatterns)
    : DataLikelihood(aln, model, RateCategories::uniformRate(), compressPatterns) {}

DataLikelihood::DataLikelihood(const Alignment& aln, const SubstModel& model,
                               RateCategories rates, bool compressPatterns)
    : patterns_(aln, compressPatterns),
      model_(model.clone()),
      pi_(model.stationary()),
      rates_(std::move(rates)) {
    rates_.validate();
}

std::vector<Matrix4> DataLikelihood::branchMatrices(const Genealogy& g, double rate) const {
    std::vector<Matrix4> pmat(static_cast<std::size_t>(g.nodeCount()));
    for (NodeId id = 0; id < g.nodeCount(); ++id) {
        if (id == g.root()) continue;
        pmat[static_cast<std::size_t>(id)] = model_->transition(rate * g.branchLength(id));
    }
    return pmat;
}

double DataLikelihood::computePattern(const Genealogy& g, const std::vector<NodeId>& order,
                                      const std::vector<Matrix4>& pmat, std::size_t pattern,
                                      std::vector<double>& partials) const {
    const std::size_t nSeq = patterns_.sequenceCount();
    double logScale = 0.0;

    for (const NodeId id : order) {
        double* out = &partials[static_cast<std::size_t>(id) * 4];
        if (g.isTip(id)) {
            const NucCode c = patterns_.code(pattern, static_cast<std::size_t>(id));
            require(static_cast<std::size_t>(id) < nSeq, "likelihood: tip beyond alignment");
            for (int x = 0; x < 4; ++x)
                out[x] = (c == kNucUnknown || c == static_cast<NucCode>(x)) ? 1.0 : 0.0;
            continue;
        }
        const TreeNode& nd = g.node(id);
        const double* lj = &partials[static_cast<std::size_t>(nd.child[0]) * 4];
        const double* lk = &partials[static_cast<std::size_t>(nd.child[1]) * 4];
        const Matrix4& pj = pmat[static_cast<std::size_t>(nd.child[0])];
        const Matrix4& pk = pmat[static_cast<std::size_t>(nd.child[1])];
        double maxv = 0.0;
        for (std::size_t x = 0; x < 4; ++x) {
            double sj = 0.0, sk = 0.0;
            for (std::size_t y = 0; y < 4; ++y) {
                sj += pj(x, y) * lj[y];
                sk += pk(x, y) * lk[y];
            }
            out[x] = sj * sk;
            maxv = std::max(maxv, out[x]);
        }
        if (maxv > 0.0 && maxv < kScaleFloor) {
            for (std::size_t x = 0; x < 4; ++x) out[x] /= maxv;
            logScale += std::log(maxv);
        }
    }

    const double* rootPartial = &partials[static_cast<std::size_t>(g.root()) * 4];
    double lik = 0.0;
    for (std::size_t x = 0; x < 4; ++x) lik += pi_[x] * rootPartial[x];  // Eq. 21
    if (lik <= 0.0) return -std::numeric_limits<double>::infinity();
    return std::log(lik) + logScale;
}

double DataLikelihood::logLikelihood(const Genealogy& g, ThreadPool* pool) const {
    require(static_cast<std::size_t>(g.tipCount()) == patterns_.sequenceCount(),
            "likelihood: tip count != sequence count");
    const auto order = g.postorder();
    const std::size_t C = rates_.count();
    std::vector<std::vector<Matrix4>> pmats(C);
    for (std::size_t c = 0; c < C; ++c) pmats[c] = branchMatrices(g, rates_.rates[c]);
    const std::size_t P = patterns_.patternCount();
    const std::size_t scratchSize = static_cast<std::size_t>(g.nodeCount()) * 4;

    // Pattern log-likelihood averaged over rate categories.
    auto patternLogLik = [&](std::size_t p, std::vector<double>& partials) {
        if (C == 1) return computePattern(g, order, pmats[0], p, partials);
        double acc = -std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < C; ++c)
            acc = logAdd(acc, std::log(rates_.weights[c]) +
                                  computePattern(g, order, pmats[c], p, partials));
        return acc;
    };

    if (pool == nullptr || pool->size() == 1) {
        std::vector<double> partials(scratchSize);
        double total = 0.0;
        for (std::size_t p = 0; p < P; ++p)
            total += patterns_.weight(p) * patternLogLik(p, partials);
        return total;
    }

    std::vector<double> slotSums(pool->size(), 0.0);
    std::vector<std::vector<double>> scratch(pool->size());
    pool->parallelForSlot(P, [&](std::size_t p, unsigned slot) {
        auto& partials = scratch[slot];
        if (partials.size() != scratchSize) partials.resize(scratchSize);
        slotSums[slot] += patterns_.weight(p) * patternLogLik(p, partials);
    });
    double total = 0.0;
    for (const double s : slotSums) total += s;
    return total;
}

std::vector<double> DataLikelihood::patternLogLikelihoods(const Genealogy& g) const {
    const auto order = g.postorder();
    const std::size_t C = rates_.count();
    std::vector<std::vector<Matrix4>> pmats(C);
    for (std::size_t c = 0; c < C; ++c) pmats[c] = branchMatrices(g, rates_.rates[c]);
    std::vector<double> partials(static_cast<std::size_t>(g.nodeCount()) * 4);
    std::vector<double> out(patterns_.patternCount());
    for (std::size_t p = 0; p < out.size(); ++p) {
        if (C == 1) {
            out[p] = computePattern(g, order, pmats[0], p, partials);
            continue;
        }
        double acc = -std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < C; ++c)
            acc = logAdd(acc, std::log(rates_.weights[c]) +
                                  computePattern(g, order, pmats[c], p, partials));
        out[p] = acc;
    }
    return out;
}

// --- LikelihoodCache ---------------------------------------------------------

LikelihoodCache::LikelihoodCache(const DataLikelihood& lik) : lik_(lik) {
    require(lik.rateCategories().count() == 1,
            "LikelihoodCache: rate heterogeneity is not supported in cached mode");
}

void LikelihoodCache::computeNode(const Genealogy& g, const std::vector<Matrix4>& pmat,
                                  NodeId id) {
    const std::size_t P = lik_.patterns_.patternCount();
    const std::size_t base = static_cast<std::size_t>(id) * P;
    if (g.isTip(id)) {
        for (std::size_t p = 0; p < P; ++p) {
            const NucCode c = lik_.patterns_.code(p, static_cast<std::size_t>(id));
            double* out = &partials_[(base + p) * 4];
            for (int x = 0; x < 4; ++x)
                out[x] = (c == kNucUnknown || c == static_cast<NucCode>(x)) ? 1.0 : 0.0;
            logScale_[base + p] = 0.0;
        }
        return;
    }
    const TreeNode& nd = g.node(id);
    const std::size_t cj = static_cast<std::size_t>(nd.child[0]) * P;
    const std::size_t ck = static_cast<std::size_t>(nd.child[1]) * P;
    const Matrix4& pj = pmat[static_cast<std::size_t>(nd.child[0])];
    const Matrix4& pk = pmat[static_cast<std::size_t>(nd.child[1])];
    for (std::size_t p = 0; p < P; ++p) {
        const double* lj = &partials_[(cj + p) * 4];
        const double* lk = &partials_[(ck + p) * 4];
        double* out = &partials_[(base + p) * 4];
        double maxv = 0.0;
        for (std::size_t x = 0; x < 4; ++x) {
            double sj = 0.0, sk = 0.0;
            for (std::size_t y = 0; y < 4; ++y) {
                sj += pj(x, y) * lj[y];
                sk += pk(x, y) * lk[y];
            }
            out[x] = sj * sk;
            maxv = std::max(maxv, out[x]);
        }
        double scale = logScale_[cj + p] + logScale_[ck + p];
        if (maxv > 0.0 && maxv < kScaleFloor) {
            for (std::size_t x = 0; x < 4; ++x) out[x] /= maxv;
            scale += std::log(maxv);
        }
        logScale_[base + p] = scale;
    }
}

double LikelihoodCache::rootSum(const Genealogy& g) const {
    const std::size_t P = lik_.patterns_.patternCount();
    const std::size_t base = static_cast<std::size_t>(g.root()) * P;
    double total = 0.0;
    for (std::size_t p = 0; p < P; ++p) {
        const double* rp = &partials_[(base + p) * 4];
        double lik = 0.0;
        for (std::size_t x = 0; x < 4; ++x) lik += lik_.pi_[x] * rp[x];
        if (lik <= 0.0) return -std::numeric_limits<double>::infinity();
        total += lik_.patterns_.weight(p) * (std::log(lik) + logScale_[base + p]);
    }
    return total;
}

double LikelihoodCache::evaluate(const Genealogy& g) {
    const std::size_t P = lik_.patterns_.patternCount();
    nodeCount_ = static_cast<std::size_t>(g.nodeCount());
    partials_.assign(nodeCount_ * P * 4, 0.0);
    logScale_.assign(nodeCount_ * P, 0.0);
    const auto pmat = lik_.branchMatrices(g);
    for (const NodeId id : g.postorder()) computeNode(g, pmat, id);
    return rootSum(g);
}

double LikelihoodCache::evaluateDirty(const Genealogy& g, const std::vector<NodeId>& dirty) {
    require(nodeCount_ == static_cast<std::size_t>(g.nodeCount()),
            "LikelihoodCache: genealogy shape changed; call evaluate()");
    // Mark every dirty node and all of its ancestors.
    std::vector<char> mark(nodeCount_, 0);
    for (NodeId d : dirty) {
        NodeId cur = d;
        while (cur != kNoNode && !mark[static_cast<std::size_t>(cur)]) {
            mark[static_cast<std::size_t>(cur)] = 1;
            cur = g.node(cur).parent;
        }
    }
    const auto pmat = lik_.branchMatrices(g);
    for (const NodeId id : g.postorder())
        if (mark[static_cast<std::size_t>(id)]) computeNode(g, pmat, id);
    return rootSum(g);
}

}  // namespace mpcgs
