#include "lik/felsenstein.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/logspace.h"

namespace mpcgs {
namespace {

/// Rescale threshold: when the largest partial of a node drops below this,
/// factor it out and carry it in log space (§5.3).
constexpr double kScaleFloor = 1e-100;

}  // namespace

DataLikelihood::DataLikelihood(const Alignment& aln, const SubstModel& model,
                               bool compressPatterns)
    : DataLikelihood(aln, model, RateCategories::uniformRate(), compressPatterns) {}

DataLikelihood::DataLikelihood(const Alignment& aln, const SubstModel& model,
                               RateCategories rates, bool compressPatterns)
    : patterns_(aln, compressPatterns),
      model_(model.clone()),
      pi_(model.stationary()),
      rates_(std::move(rates)) {
    rates_.validate();
    engine_ = std::make_unique<LikelihoodEngine>(patterns_, *model_, rates_);
}

std::vector<Matrix4> DataLikelihood::branchMatrices(const Genealogy& g, double rate) const {
    std::vector<Matrix4> pmat(static_cast<std::size_t>(g.nodeCount()));
    for (NodeId id = 0; id < g.nodeCount(); ++id) {
        if (id == g.root()) continue;
        pmat[static_cast<std::size_t>(id)] = model_->transition(rate * g.branchLength(id));
    }
    return pmat;
}

double DataLikelihood::computePattern(const Genealogy& g, const std::vector<NodeId>& order,
                                      const std::vector<Matrix4>& pmat, std::size_t pattern,
                                      std::vector<double>& partials) const {
    const std::size_t nSeq = patterns_.sequenceCount();
    double logScale = 0.0;

    for (const NodeId id : order) {
        double* out = &partials[static_cast<std::size_t>(id) * 4];
        if (g.isTip(id)) {
            const NucCode c = patterns_.code(pattern, static_cast<std::size_t>(id));
            require(static_cast<std::size_t>(id) < nSeq, "likelihood: tip beyond alignment");
            for (int x = 0; x < 4; ++x)
                out[x] = (c == kNucUnknown || c == static_cast<NucCode>(x)) ? 1.0 : 0.0;
            continue;
        }
        const TreeNode& nd = g.node(id);
        const double* lj = &partials[static_cast<std::size_t>(nd.child[0]) * 4];
        const double* lk = &partials[static_cast<std::size_t>(nd.child[1]) * 4];
        const Matrix4& pj = pmat[static_cast<std::size_t>(nd.child[0])];
        const Matrix4& pk = pmat[static_cast<std::size_t>(nd.child[1])];
        double maxv = 0.0;
        for (std::size_t x = 0; x < 4; ++x) {
            double sj = 0.0, sk = 0.0;
            for (std::size_t y = 0; y < 4; ++y) {
                sj += pj(x, y) * lj[y];
                sk += pk(x, y) * lk[y];
            }
            out[x] = sj * sk;
            maxv = std::max(maxv, out[x]);
        }
        if (maxv > 0.0 && maxv < kScaleFloor) {
            for (std::size_t x = 0; x < 4; ++x) out[x] /= maxv;
            logScale += std::log(maxv);
        }
    }

    const double* rootPartial = &partials[static_cast<std::size_t>(g.root()) * 4];
    double lik = 0.0;
    for (std::size_t x = 0; x < 4; ++x) lik += pi_[x] * rootPartial[x];  // Eq. 21
    if (lik <= 0.0) return -std::numeric_limits<double>::infinity();
    return std::log(lik) + logScale;
}

double DataLikelihood::logLikelihood(const Genealogy& g, ThreadPool* pool) const {
    return engine_->logLikelihood(g, pool);
}

double DataLikelihood::logLikelihoodReference(const Genealogy& g) const {
    require(static_cast<std::size_t>(g.tipCount()) == patterns_.sequenceCount(),
            "likelihood: tip count != sequence count");
    const auto order = g.postorder();
    const std::size_t C = rates_.count();
    std::vector<std::vector<Matrix4>> pmats(C);
    for (std::size_t c = 0; c < C; ++c) pmats[c] = branchMatrices(g, rates_.rates[c]);
    const std::size_t P = patterns_.patternCount();
    std::vector<double> partials(static_cast<std::size_t>(g.nodeCount()) * 4);

    double total = 0.0;
    for (std::size_t p = 0; p < P; ++p) {
        double site;
        if (C == 1) {
            site = computePattern(g, order, pmats[0], p, partials);
        } else {
            site = -std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < C; ++c)
                site = logAdd(site, std::log(rates_.weights[c]) +
                                        computePattern(g, order, pmats[c], p, partials));
        }
        total += patterns_.weight(p) * site;
    }
    return total;
}

std::vector<double> DataLikelihood::patternLogLikelihoods(const Genealogy& g) const {
    const auto order = g.postorder();
    const std::size_t C = rates_.count();
    std::vector<std::vector<Matrix4>> pmats(C);
    for (std::size_t c = 0; c < C; ++c) pmats[c] = branchMatrices(g, rates_.rates[c]);
    std::vector<double> partials(static_cast<std::size_t>(g.nodeCount()) * 4);
    std::vector<double> out(patterns_.patternCount());
    for (std::size_t p = 0; p < out.size(); ++p) {
        if (C == 1) {
            out[p] = computePattern(g, order, pmats[0], p, partials);
            continue;
        }
        double acc = -std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < C; ++c)
            acc = logAdd(acc, std::log(rates_.weights[c]) +
                                  computePattern(g, order, pmats[c], p, partials));
        out[p] = acc;
    }
    return out;
}

// --- LikelihoodCache ---------------------------------------------------------

LikelihoodCache::LikelihoodCache(const DataLikelihood& lik) : lik_(lik) {}

double LikelihoodCache::evaluate(const Genealogy& g, ThreadPool* pool) {
    return lik_.engine().evaluate(g, buf_, pool);
}

double LikelihoodCache::evaluateDirty(const Genealogy& g, const std::vector<NodeId>& dirty,
                                      ThreadPool* pool) {
    return lik_.engine().evaluateDirty(g, dirty, buf_, pool);
}

}  // namespace mpcgs
