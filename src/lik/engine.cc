#include "lik/engine.h"

#include <algorithm>
#include <limits>

#include "par/kernel.h"
#include "util/error.h"
#include "util/logspace.h"

namespace mpcgs {
namespace {

/// Per-thread scratch for blocked evaluation. Worker threads live as long
/// as their pool, so these arenas are allocated once per thread and then
/// reused by every subsequent block, call, and engine.
struct BlockScratch {
    AlignedDoubles partials;  ///< internals x blockSize x 4 (stateless path)
    AlignedDoubles scale;     ///< internals x blockSize (stateless path)
    AlignedDoubles site;      ///< blockSize per-pattern site logs
    AlignedDoubles acc;       ///< blockSize cross-category accumulator
};

thread_local BlockScratch tlScratch;

/// Per-thread scratch for the evaluation driver (the thread that calls
/// logLikelihood/evaluate/evaluateDirty, as opposed to the block workers):
/// traversal order, rescale metadata, packed transition matrices and block
/// sums. Warm after the first evaluation on a thread, so the steady-state
/// sampling loop performs zero heap allocation here.
struct EvalScratch {
    std::vector<NodeId> order;           ///< postorder evaluation order
    std::vector<NodeId> stack;           ///< traversal scratch
    std::vector<std::uint16_t> level;    ///< per-node pruning level
    LikelihoodEngine::Meta meta;
    std::vector<TransMat> tmat;          ///< stateless path: C x nodes
    std::vector<double> blockSums;       ///< chunk-indexed partial sums
};

thread_local EvalScratch tlEval;

/// Per-thread scratch for dirty-closure recomputation.
struct DirtyScratch {
    std::vector<std::uint8_t> mark;
    std::vector<NodeId> todo;
    std::vector<NodeId> touchedChildren;
    LikelihoodEngine::Meta meta;
};

thread_local DirtyScratch tlDirty;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

/// Resolves the pattern strip of an internal node within one (category,
/// block) pass. `off4`/`off1` locate the block inside a full-length arena
/// strip (cached path) or are zero for block-local scratch strips
/// (stateless path); tip strips always live in the engine's full-length
/// rows, addressed through `tipOff4`.
struct LikelihoodEngine::StripView {
    double* part = nullptr;
    double* scl = nullptr;
    std::size_t stride4 = 0;
    std::size_t stride1 = 0;
    std::size_t off4 = 0;
    std::size_t off1 = 0;
    std::size_t tipOff4 = 0;

    double* partials(std::size_t internalIdx) const {
        return part + internalIdx * stride4 + off4;
    }
    double* scale(std::size_t internalIdx) const {
        return scl + internalIdx * stride1 + off1;
    }
};

LikelihoodEngine::LikelihoodEngine(const SitePatterns& patterns, const SubstModel& model,
                                   RateCategories rates)
    : patterns_(patterns),
      model_(model),
      pi_(model.stationary()),
      rates_(std::move(rates)) {
    rates_.validate();
    logCatWeights_.reserve(rates_.count());
    for (const double w : rates_.weights) logCatWeights_.push_back(std::log(w));

    const std::size_t P = patterns_.patternCount();
    const std::size_t nSeq = patterns_.sequenceCount();
    stride_ = roundUpTo(std::max<std::size_t>(P, 1), 8);
    tipPartials_.ensure(nSeq * stride_ * 4);
    for (std::size_t s = 0; s < nSeq; ++s) {
        double* row = tipPartials_.data() + s * stride_ * 4;
        fillTipStrip(patterns_.codesData(), nSeq, s, 0, row, P);
        // Padding patterns: benign ones so vector lanes never see garbage.
        for (std::size_t p = P; p < stride_; ++p)
            row[4 * p] = row[4 * p + 1] = row[4 * p + 2] = row[4 * p + 3] = 1.0;
    }
}

std::size_t LikelihoodEngine::blockSize() const {
    // Size pattern blocks so one block's partials + scale working set
    // (internals x (4+1) doubles per pattern) stays around 128 KiB —
    // comfortably cache-resident while leaving enough blocks to spread
    // across workers. Multiples of 8 keep every strip 64-byte aligned, and
    // the partition depends only on the problem shape, never on the pool.
    const std::size_t internals =
        std::max<std::size_t>(1, patterns_.sequenceCount() - 1);
    const std::size_t bytesPerPattern = internals * 5 * sizeof(double);
    std::size_t b = (128 * 1024) / bytesPerPattern;
    b = std::clamp<std::size_t>(b, 16, 2048);
    return b - b % 8;
}

void LikelihoodEngine::traversalMeta(const Genealogy& g, const std::vector<NodeId>& order,
                                     Meta& meta, std::vector<std::uint16_t>& level) const {
    const std::size_t nodes = static_cast<std::size_t>(g.nodeCount());
    meta.rescale.assign(nodes, 0);
    meta.hasScale.assign(nodes, 0);
    level.assign(nodes, 0);
    for (const NodeId id : order) {
        if (g.isTip(id)) continue;
        const TreeNode& nd = g.node(id);
        const std::size_t i = static_cast<std::size_t>(id);
        const std::size_t c0 = static_cast<std::size_t>(nd.child[0]);
        const std::size_t c1 = static_cast<std::size_t>(nd.child[1]);
        level[i] = static_cast<std::uint16_t>(1 + std::max(level[c0], level[c1]));
        meta.rescale[i] = level[i] % kRescaleInterval == 0;
        meta.hasScale[i] = meta.rescale[i] || meta.hasScale[c0] || meta.hasScale[c1];
    }
}

void LikelihoodEngine::packMatrices(const Genealogy& g, TransMat* dst,
                                    const std::vector<NodeId>* only) const {
    const std::size_t nodes = static_cast<std::size_t>(g.nodeCount());
    const std::size_t C = rates_.count();
    auto packOne = [&](NodeId id) {
        if (id == g.root()) return;
        const double t = g.branchLength(id);
        for (std::size_t c = 0; c < C; ++c)
            dst[c * nodes + static_cast<std::size_t>(id)].pack(
                model_.transition(rates_.rates[c] * t));
    };
    if (only != nullptr) {
        for (const NodeId id : *only) packOne(id);
    } else {
        for (NodeId id = 0; id < g.nodeCount(); ++id) packOne(id);
    }
}

void LikelihoodEngine::pruneBlock(const Genealogy& g, const std::vector<NodeId>& order,
                                  const Meta& meta, const TransMat* tmat, std::size_t c,
                                  const StripView& view, std::size_t n) const {
    const std::size_t nodes = static_cast<std::size_t>(g.nodeCount());
    const std::size_t tips = static_cast<std::size_t>(g.tipCount());
    const TransMat* cat = tmat + c * nodes;

    auto partialsOf = [&](NodeId id) -> const double* {
        const std::size_t i = static_cast<std::size_t>(id);
        if (i < tips) return tipPartials_.data() + i * stride_ * 4 + view.tipOff4;
        return view.partials(i - tips);
    };
    auto scaleOf = [&](NodeId id) -> const double* {
        const std::size_t i = static_cast<std::size_t>(id);
        if (i < tips || !meta.hasScale[i]) return nullptr;
        return view.scale(i - tips);
    };

    for (const NodeId id : order) {
        if (g.isTip(id)) continue;
        const TreeNode& nd = g.node(id);
        const std::size_t i = static_cast<std::size_t>(id);
        double* out = view.partials(i - tips);
        pruneStrip(cat[static_cast<std::size_t>(nd.child[0])],
                   cat[static_cast<std::size_t>(nd.child[1])], partialsOf(nd.child[0]),
                   partialsOf(nd.child[1]), out, n);
        if (meta.hasScale[i]) {
            double* so = view.scale(i - tips);
            addScaleStrips(scaleOf(nd.child[0]), scaleOf(nd.child[1]), so, n);
            if (meta.rescale[i]) rescaleStrip(out, so, n);
        }
    }
}

double LikelihoodEngine::foldCategory(const Genealogy& g, const Meta& meta, std::size_t c,
                                      const StripView& view, std::size_t p0, std::size_t n,
                                      double* site, double* acc) const {
    const std::size_t tips = static_cast<std::size_t>(g.tipCount());
    const std::size_t r = static_cast<std::size_t>(g.root());
    const double* rp = r < tips ? tipPartials_.data() + r * stride_ * 4 + view.tipOff4
                                : view.partials(r - tips);
    const double* rs = (r < tips || !meta.hasScale[r]) ? nullptr : view.scale(r - tips);
    rootLogStrip(rp, rs, pi_, site, n);
    if (rates_.count() == 1) return weightedSumStrip(site, patterns_.weightsData() + p0, n);
    for (std::size_t p = 0; p < n; ++p)
        acc[p] = logAdd(acc[p], logCatWeights_[c] + site[p]);
    return 0.0;
}

double LikelihoodEngine::logLikelihood(const Genealogy& g, ThreadPool* pool) const {
    require(static_cast<std::size_t>(g.tipCount()) == patterns_.sequenceCount(),
            "likelihood: tip count != sequence count");
    EvalScratch& es = tlEval;
    g.postorderInto(es.order, es.stack);
    const std::vector<NodeId>& order = es.order;
    traversalMeta(g, order, es.meta, es.level);
    const Meta& meta = es.meta;
    const std::size_t nodes = static_cast<std::size_t>(g.nodeCount());
    const std::size_t internals = nodes - static_cast<std::size_t>(g.tipCount());
    const std::size_t C = rates_.count();
    const std::size_t P = patterns_.patternCount();
    const std::size_t B = blockSize();

    es.tmat.resize(C * nodes);
    TransMat* tmatData = es.tmat.data();
    packMatrices(g, tmatData);

    std::vector<double>& blockSums = es.blockSums;
    blockSums.assign((P + B - 1) / B, 0.0);
    launchBlocked(pool, P, B, [&](std::size_t bi, std::size_t lo, std::size_t hi) {
        const std::size_t n = hi - lo;
        BlockScratch& s = tlScratch;
        s.partials.ensure(std::max<std::size_t>(1, internals) * B * 4);
        s.scale.ensure(std::max<std::size_t>(1, internals) * B);
        s.site.ensure(B);
        s.acc.ensure(B);
        if (C > 1) std::fill_n(s.acc.data(), n, kNegInf);

        // One category at a time through the same block-local scratch: the
        // fused pass keeps the pattern slice cache-hot across categories.
        double sum = 0.0;
        const StripView view{s.partials.data(), s.scale.data(), B * 4, B, 0, 0, lo * 4};
        for (std::size_t c = 0; c < C; ++c) {
            pruneBlock(g, order, meta, tmatData, c, view, n);
            sum = foldCategory(g, meta, c, view, lo, n, s.site.data(), s.acc.data());
        }
        if (C > 1) sum = weightedSumStrip(s.acc.data(), patterns_.weightsData() + lo, n);
        blockSums[bi] = sum;
    });

    double total = 0.0;
    for (const double s : blockSums) total += s;
    return total;
}

double LikelihoodEngine::evaluate(const Genealogy& g, PartialsBuffer& buf,
                                  ThreadPool* pool) const {
    require(static_cast<std::size_t>(g.tipCount()) == patterns_.sequenceCount(),
            "likelihood: tip count != sequence count");
    EvalScratch& es = tlEval;
    g.postorderInto(es.order, es.stack);
    traversalMeta(g, es.order, es.meta, es.level);
    const std::size_t tips = static_cast<std::size_t>(g.tipCount());
    const std::size_t internals = static_cast<std::size_t>(g.nodeCount()) - tips;
    const std::size_t C = rates_.count();

    buf.ensure(C, tips, internals, stride_);
    buf.rescale = es.meta.rescale;
    buf.hasScale = es.meta.hasScale;
    packMatrices(g, buf.tmat.data());

    const double total = runBlocked(g, es.order, es.meta, buf, pool);
    buf.primed = true;
    return total;
}

double LikelihoodEngine::evaluateDirty(const Genealogy& g, const std::vector<NodeId>& dirty,
                                       PartialsBuffer& buf, ThreadPool* pool) const {
    require(buf.primed && buf.nodeCount() == static_cast<std::size_t>(g.nodeCount()),
            "LikelihoodCache: genealogy shape changed; call evaluate()");
    const std::size_t nodes = static_cast<std::size_t>(g.nodeCount());

    // Dirty closure: every listed node and all of its ancestors.
    DirtyScratch& ds = tlDirty;
    std::vector<std::uint8_t>& mark = ds.mark;
    mark.assign(nodes, 0);
    for (NodeId d : dirty) {
        NodeId cur = d;
        while (cur != kNoNode && !mark[static_cast<std::size_t>(cur)]) {
            mark[static_cast<std::size_t>(cur)] = 1;
            cur = g.node(cur).parent;
        }
    }

    // Recompute order = marked internal nodes, children before parents; the
    // only transition matrices that can have changed are those of the
    // closure's children (a branch length is t(parent) - t(child), and only
    // closure members moved), so just those are re-packed — the seed
    // re-derived all 2n matrices every step.
    std::vector<NodeId>& todo = ds.todo;
    std::vector<NodeId>& touchedChildren = ds.touchedChildren;
    todo.clear();
    touchedChildren.clear();
    EvalScratch& es = tlEval;
    g.postorderInto(es.order, es.stack);
    for (const NodeId id : es.order) {
        if (!mark[static_cast<std::size_t>(id)] || g.isTip(id)) continue;
        todo.push_back(id);
        const TreeNode& nd = g.node(id);
        touchedChildren.push_back(nd.child[0]);
        touchedChildren.push_back(nd.child[1]);
        // Scale reachability can change with the topology; rescale flags
        // keep their last full-evaluation schedule (any schedule is valid —
        // partials and scale strips always move together).
        buf.hasScale[static_cast<std::size_t>(id)] =
            buf.rescale[static_cast<std::size_t>(id)] ||
            (!g.isTip(nd.child[0]) && buf.hasScale[static_cast<std::size_t>(nd.child[0])]) ||
            (!g.isTip(nd.child[1]) && buf.hasScale[static_cast<std::size_t>(nd.child[1])]);
    }
    packMatrices(g, buf.tmat.data(), &touchedChildren);

    ds.meta.rescale = buf.rescale;
    ds.meta.hasScale = buf.hasScale;
    return runBlocked(g, todo, ds.meta, buf, pool);
}

double LikelihoodEngine::runBlocked(const Genealogy& g, const std::vector<NodeId>& order,
                                    const Meta& meta, PartialsBuffer& buf,
                                    ThreadPool* pool) const {
    const std::size_t tips = static_cast<std::size_t>(g.tipCount());
    const std::size_t C = rates_.count();
    const std::size_t P = patterns_.patternCount();
    const std::size_t B = blockSize();

    std::vector<double>& blockSums = tlEval.blockSums;
    blockSums.assign((P + B - 1) / B, 0.0);

    launchBlocked(pool, P, B, [&](std::size_t bi, std::size_t lo, std::size_t hi) {
        const std::size_t n = hi - lo;
        BlockScratch& s = tlScratch;
        s.site.ensure(B);
        s.acc.ensure(B);
        if (C > 1) std::fill_n(s.acc.data(), n, kNegInf);

        double sum = 0.0;
        for (std::size_t c = 0; c < C; ++c) {
            const StripView v{buf.partials(c, tips), buf.scale(c, tips),
                              buf.patternStride * 4, buf.patternStride,
                              lo * 4, lo, lo * 4};
            pruneBlock(g, order, meta, buf.tmat.data(), c, v, n);
            sum = foldCategory(g, meta, c, v, lo, n, s.site.data(), s.acc.data());
        }
        if (C > 1) sum = weightedSumStrip(s.acc.data(), patterns_.weightsData() + lo, n);
        blockSums[bi] = sum;
    });

    double total = 0.0;
    for (const double s : blockSums) total += s;
    return total;
}

}  // namespace mpcgs
