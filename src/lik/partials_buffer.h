// Persistent pattern-major partials arena for cached likelihood evaluation.
//
// One PartialsBuffer holds the complete pruning state of ONE genealogy
// chain: per-internal-node conditional likelihood strips, per-node scale
// exponents, packed transition matrices, and the traversal metadata
// (levels, rescale schedule) of the last full evaluation. Everything is
// allocated once — 64-byte aligned, node-strided — and reused across every
// subsequent MCMC step; growing only happens if the genealogy shape or
// pattern count changes (it does not, along a chain). This replaces the
// seed's per-step `assign()` of the whole arena.
//
// Layout: partials for (category c, internal node i) start at
//   partialsData.data() + (c * internals + i) * patternStride * 4
// with patterns adjacent ([pattern][state], the strip-kernel layout), and
// scale exponents at (c * internals + i) * patternStride. patternStride is
// the pattern count rounded up so every node strip starts cache-aligned.
// Tip partials are genealogy-independent and live in the shared
// LikelihoodEngine, not here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lik/pruning_kernels.h"
#include "util/aligned.h"

namespace mpcgs {

struct PartialsBuffer {
    AlignedDoubles partialsData;  // categories x internals x patternStride*4
    AlignedDoubles scaleData;     // categories x internals x patternStride

    /// Packed transition matrices, indexed [c * nodeCount + child id];
    /// entries for the root are unused.
    std::vector<TransMat> tmat;

    // Traversal metadata from the last full evaluation (indexed by node id).
    std::vector<std::uint8_t> rescale;   ///< node rescales its strip
    std::vector<std::uint8_t> hasScale;  ///< any rescaling at/below node

    std::size_t categories = 0;
    std::size_t tips = 0;
    std::size_t internals = 0;
    std::size_t patternStride = 0;
    bool primed = false;  ///< a full evaluate() has populated the arena

    /// Size (grow-only) for the given shape; contents are unspecified after
    /// a growth, and `primed` is reset if the shape changed.
    void ensure(std::size_t nCategories, std::size_t nTips, std::size_t nInternals,
                std::size_t stride);

    std::size_t nodeCount() const { return tips + internals; }

    /// Partials strip of internal node `id` (id >= tips) in category c.
    double* partials(std::size_t c, std::size_t id) {
        return partialsData.data() + (c * internals + (id - tips)) * patternStride * 4;
    }
    const double* partials(std::size_t c, std::size_t id) const {
        return partialsData.data() + (c * internals + (id - tips)) * patternStride * 4;
    }

    /// Scale-exponent strip of internal node `id` in category c.
    double* scale(std::size_t c, std::size_t id) {
        return scaleData.data() + (c * internals + (id - tips)) * patternStride;
    }
    const double* scale(std::size_t c, std::size_t id) const {
        return scaleData.data() + (c * internals + (id - tips)) * patternStride;
    }
};

}  // namespace mpcgs
