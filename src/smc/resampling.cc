#include "smc/resampling.h"

#include <cmath>

#include "util/error.h"
#include "util/logspace.h"

namespace mpcgs {

std::string resamplingSchemeName(ResamplingScheme s) {
    switch (s) {
        case ResamplingScheme::Multinomial: return "multinomial";
        case ResamplingScheme::Stratified: return "stratified";
        case ResamplingScheme::Systematic: return "systematic";
        case ResamplingScheme::Residual: return "residual";
    }
    return "unknown";
}

ResamplingScheme parseResamplingScheme(const std::string& name) {
    if (name == "multinomial") return ResamplingScheme::Multinomial;
    if (name == "stratified") return ResamplingScheme::Stratified;
    if (name == "systematic") return ResamplingScheme::Systematic;
    if (name == "residual") return ResamplingScheme::Residual;
    throw ConfigError("unknown resampling scheme '" + name +
                      "' (expected multinomial|stratified|systematic|residual)");
}

double weightEss(std::span<const double> probs) {
    double sumSq = 0.0;
    for (double p : probs) sumSq += p * p;
    return sumSq > 0.0 ? 1.0 / sumSq : 0.0;
}

double essFromLogWeights(std::span<const double> logWeights) {
    std::vector<double> probs;
    logNormalize(logWeights, probs);
    return weightEss(probs);
}

namespace {

/// Smallest index i with cdf(i) > u, by linear scan with a carried running
/// sum. `from` lets stratified/systematic continue the scan monotonically.
std::size_t invertCdf(std::span<const double> probs, double u, std::size_t from,
                      double& runningCdf) {
    std::size_t i = from;
    while (i + 1 < probs.size() && runningCdf + probs[i] <= u) {
        runningCdf += probs[i];
        ++i;
    }
    return i;
}

void multinomial(std::span<const double> probs, std::size_t n, Rng& rng,
                 std::vector<std::uint32_t>& out) {
    // Independent categorical draws; each restarts the CDF scan.
    for (std::size_t k = 0; k < n; ++k)
        out.push_back(static_cast<std::uint32_t>(rng.categorical(probs)));
}

void stratified(std::span<const double> probs, std::size_t n, Rng& rng,
                std::vector<std::uint32_t>& out) {
    const double inv = 1.0 / static_cast<double>(n);
    double cdf = 0.0;
    std::size_t i = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const double u = (static_cast<double>(k) + rng.uniform01()) * inv;
        i = invertCdf(probs, u, i, cdf);
        out.push_back(static_cast<std::uint32_t>(i));
    }
}

void systematic(std::span<const double> probs, std::size_t n, Rng& rng,
                std::vector<std::uint32_t>& out) {
    const double inv = 1.0 / static_cast<double>(n);
    const double u0 = rng.uniform01() * inv;
    double cdf = 0.0;
    std::size_t i = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const double u = u0 + static_cast<double>(k) * inv;
        i = invertCdf(probs, u, i, cdf);
        out.push_back(static_cast<std::uint32_t>(i));
    }
}

void residual(std::span<const double> probs, std::size_t n, Rng& rng,
              std::vector<std::uint32_t>& out) {
    // Deterministic floor(N w_i) copies, then multinomial on the remainders.
    std::vector<double> rest(probs.size());
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        const double expected = static_cast<double>(n) * probs[i];
        const double copies = std::floor(expected);
        for (std::size_t c = 0; c < static_cast<std::size_t>(copies); ++c)
            out.push_back(static_cast<std::uint32_t>(i));
        assigned += static_cast<std::size_t>(copies);
        rest[i] = expected - copies;
    }
    for (std::size_t k = assigned; k < n; ++k)
        out.push_back(static_cast<std::uint32_t>(rng.categorical(rest)));
}

}  // namespace

void resampleAncestors(ResamplingScheme scheme, std::span<const double> probs,
                       Rng& rng, std::vector<std::uint32_t>& ancestors) {
    const std::size_t n = probs.size();
    if (n == 0) throw InvariantError("resampleAncestors: empty weight vector");
    ancestors.clear();
    ancestors.reserve(n);
    switch (scheme) {
        case ResamplingScheme::Multinomial: multinomial(probs, n, rng, ancestors); break;
        case ResamplingScheme::Stratified: stratified(probs, n, rng, ancestors); break;
        case ResamplingScheme::Systematic: systematic(probs, n, rng, ancestors); break;
        case ResamplingScheme::Residual: residual(probs, n, rng, ancestors); break;
    }
}

}  // namespace mpcgs
