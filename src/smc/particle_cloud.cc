#include "smc/particle_cloud.h"

#include <cmath>

#include "rng/splitmix.h"
#include "util/logspace.h"

namespace mpcgs {

ParticleCloud::ParticleCloud(std::size_t n, const ForestEvaluator& eval, int tipCount,
                             std::uint64_t passSeed)
    : hostRng_(Mt19937::fromSplitMix(splitMix64At(passSeed, 0))) {
    // One shared template: the initial forest is identical for every
    // particle (all tips uncoalesced), so build the tip vectors once.
    Particle init;
    init.tree = Genealogy(tipCount);
    init.tree.setTipNames(eval.tipNames());
    init.roots.reserve(static_cast<std::size_t>(tipCount));
    init.partials.reserve(static_cast<std::size_t>(tipCount));
    init.rootLogL.reserve(static_cast<std::size_t>(tipCount));
    logL0_ = 0.0;
    for (int t = 0; t < tipCount; ++t) {
        init.roots.push_back(t);
        init.partials.push_back(eval.tipPartials(t));
        init.rootLogL.push_back(eval.rootLogLikelihood(init.partials.back()));
        logL0_ += init.rootLogL.back();
    }

    particles_.assign(n, init);
    slotRngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        slotRngs_.push_back(Mt19937::fromSplitMix(splitMix64At(passSeed, i + 1)));
    logW_.ensure(n);
    const double uniform = -std::log(static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) logW_.data()[i] = uniform;
    probs_.assign(n, 1.0 / static_cast<double>(n));
}

double ParticleCloud::normalizeWeights() {
    const std::span<double> w = logWeights();
    const double logSum = logNormalize(w, probs_);
    for (double& x : w) x -= logSum;
    return logSum;
}

void ParticleCloud::resample(ResamplingScheme scheme) {
    resampleAncestors(scheme, probs_, hostRng_, ancestry_);
    // Overwrite slots in place, keeping survivors (ancestry[i] == i) where
    // they are — after a typical ESS-triggered resample most slots survive,
    // and particle states are heavyweight (a genealogy arena plus per-root
    // conditional vectors). An ancestor that is itself replaced is staged
    // before any slot is written, so every copy reads pre-resample state
    // regardless of order. Slot RNG streams deliberately stay with the
    // slot, so none of this affects the determinism contract.
    std::vector<int> stagedAt(particles_.size(), -1);
    std::vector<Particle> staged;
    for (std::size_t i = 0; i < ancestry_.size(); ++i) {
        const std::uint32_t a = ancestry_[i];
        if (a == i || ancestry_[a] == a || stagedAt[a] >= 0) continue;
        stagedAt[a] = static_cast<int>(staged.size());
        staged.push_back(particles_[a]);
    }
    for (std::size_t i = 0; i < ancestry_.size(); ++i) {
        const std::uint32_t a = ancestry_[i];
        if (a == i) continue;
        particles_[i] = stagedAt[a] >= 0 ? staged[stagedAt[a]] : particles_[a];
    }
    const double uniform = -std::log(static_cast<double>(particles_.size()));
    for (double& x : logWeights()) x = uniform;
    probs_.assign(particles_.size(), 1.0 / static_cast<double>(particles_.size()));
}

}  // namespace mpcgs
