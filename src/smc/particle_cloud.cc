#include "smc/particle_cloud.h"

#include <cmath>

#include "rng/splitmix.h"
#include "util/logspace.h"

namespace mpcgs {

ParticleCloud::ParticleCloud(std::size_t n, LikelihoodBackend& backend, int tipCount,
                             std::uint64_t passSeed, ThreadPool* pool)
    : backend_(backend),
      tipCount_(static_cast<std::size_t>(tipCount)),
      hostRng_(Mt19937::fromSplitMix(splitMix64At(passSeed, 0))) {
    // Slot pool: shared tips + one internal region per particle + the
    // staging region used to break resampling copy cycles.
    backend_.resizeSlots(tipCount_ + (n + 1) * (tipCount_ - 1));

    // One shared template: the initial forest is identical for every
    // particle (all tips uncoalesced, referencing the shared tip slots),
    // so batch the tip vectors once through a single flush.
    Particle init;
    init.tree = Genealogy(tipCount);
    init.tree.setTipNames(backend_.tipNames());
    init.roots.reserve(tipCount_);
    init.slots.reserve(tipCount_);
    init.rootLogL.resize(tipCount_);
    for (int t = 0; t < tipCount; ++t) {
        init.roots.push_back(t);
        init.slots.push_back(static_cast<Slot>(t));
        backend_.tipInit(static_cast<Slot>(t), t);
        backend_.rootLogLik(static_cast<Slot>(t), &init.rootLogL[t]);
    }
    backend_.flush(pool);
    logL0_ = 0.0;
    for (int t = 0; t < tipCount; ++t) logL0_ += init.rootLogL[t];

    particles_.assign(n, init);
    slotRngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        slotRngs_.push_back(Mt19937::fromSplitMix(splitMix64At(passSeed, i + 1)));
    logW_.ensure(n);
    const double uniform = -std::log(static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) logW_.data()[i] = uniform;
    probs_.assign(n, 1.0 / static_cast<double>(n));

    // Pre-size the resample scratch (steady state allocates nothing; the
    // staging particle grows to full-tree capacity on first use and is
    // reused after).
    pendingReads_.resize(n);
    copyQueue_.reserve(n);
    copied_.resize(n);
    staged_ = init;
}

double ParticleCloud::normalizeWeights() {
    const std::span<double> w = logWeights();
    const double logSum = logNormalize(w, probs_);
    for (double& x : w) x -= logSum;
    return logSum;
}

void ParticleCloud::assignParticle(Particle& dst, const Particle& src,
                                   std::size_t dstRegion) {
    dst.tree = src.tree;
    dst.roots = src.roots;
    dst.rootLogL = src.rootLogL;
    dst.lastEventTime = src.lastEventTime;
    dst.slots.resize(src.slots.size());
    for (std::size_t r = 0; r < src.slots.size(); ++r) {
        const Slot s = src.slots[r];
        if (s < tipCount_) {
            // Tip slots are shared read-only state: reference, don't copy.
            dst.slots[r] = s;
        } else {
            const Slot d = internalSlot(dstRegion, eventOfSlot(s));
            backend_.copySlot(d, s);
            dst.slots[r] = d;
        }
    }
}

void ParticleCloud::resample(ResamplingScheme scheme) {
    const std::size_t n = particles_.size();
    resampleAncestors(scheme, probs_, hostRng_, ancestry_);

    // Overwrite slots in place, keeping survivors (ancestry[i] == i) where
    // they are — after a typical ESS-triggered resample most slots survive,
    // and particle states are heavyweight (a genealogy arena plus per-root
    // conditional vectors in the backend). Copies are ordered so every
    // copy reads pre-resample state: a slot is overwritten only once no
    // pending copy still reads it (Kahn over the read graph), and pure
    // copy cycles are broken by staging one particle's state in the spare
    // backend region. Slot RNG streams deliberately stay with the slot, so
    // none of this affects the determinism contract.
    for (std::size_t i = 0; i < n; ++i) pendingReads_[i] = 0;
    for (std::size_t i = 0; i < n; ++i) copied_[i] = ancestry_[i] == i;
    for (std::size_t i = 0; i < n; ++i)
        if (ancestry_[i] != i) ++pendingReads_[ancestry_[i]];

    copyQueue_.clear();
    for (std::size_t i = 0; i < n; ++i)
        if (!copied_[i] && pendingReads_[i] == 0)
            copyQueue_.push_back(static_cast<std::uint32_t>(i));
    for (std::size_t head = 0; head < copyQueue_.size(); ++head) {
        const std::uint32_t i = copyQueue_[head];
        const std::uint32_t a = ancestry_[i];
        assignParticle(particles_[i], particles_[a], i);
        copied_[i] = 1;
        if (--pendingReads_[a] == 0 && !copied_[a])
            copyQueue_.push_back(a);
    }

    // Remaining uncopied slots form disjoint cycles (every node still has
    // exactly one pending reader). Walk each: stage the entry's state,
    // shift the rest of the cycle down, close from the stage.
    for (std::size_t i = 0; i < n; ++i) {
        if (copied_[i]) continue;
        assignParticle(staged_, particles_[i], n);
        std::size_t j = i;
        while (ancestry_[j] != i) {
            assignParticle(particles_[j], particles_[ancestry_[j]], j);
            copied_[j] = 1;
            j = ancestry_[j];
        }
        assignParticle(particles_[j], staged_, j);
        copied_[j] = 1;
    }

    const double uniform = -std::log(static_cast<double>(n));
    for (double& x : logWeights()) x = uniform;
    probs_.assign(n, 1.0 / static_cast<double>(n));
}

}  // namespace mpcgs
