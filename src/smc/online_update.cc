#include "smc/online_update.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "coalescent/prior.h"
#include "core/numeric_guard.h"
#include "core/recoalesce.h"
#include "lik/forest_kernels.h"
#include "lik/locus_likelihoods.h"
#include "mcmc/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/kernel.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/logspace.h"

namespace mpcgs {
namespace {

// ---------------------------------------------------------------------------
// Tripod scorer: exact grafted-tree log-likelihood as a function of the
// attachment point, without ever building the grafted tree.
//
// Lower partials D_v (conditional vectors of the subtree below v against
// the ENLARGED pattern set) are supplied from outside — backend slots in
// the add-sequence path, CPU buffers in the test hook. The scorer adds the
// OUTER partials: for every non-root v with parent w,
//
//   S_v,c(y)  = sum_z M_c(t_w - t_v)(y, z) D_v,c(z)       (D pushed up v's
//                                                          branch)
//   T_v,c(y)  = P(data outside v's subtree | state y at w), including the
//               root marginalization over pi:
//                 v child of the root:  T_v = pi .* S_sib(v)
//                 otherwise:            T_v = U_w .* S_sib(v),
//                 U_w,c(y) = sum_y' T_w,c(y') M_c(len_w)(y', y),
//
// so the likelihood of the tree with a new tip X joined to branch (v, w)
// by a coalescent node u at height h in (t_v, t_w) factorizes per pattern
// and category as the tripod
//
//   site_c = sum_y T_v,c(y) sum_z M_c(t_w - h)(y, z) A_c(z) B_c(z),
//   A_c(z) = sum_a M_c(h - t_v)(z, a) D_v,c(a),
//   B_c(z) = sum_b M_c(h)(z, b) X_c(b),
//
// with per-pattern log scale scaleT_v + scaleD_v (the new tip carries
// scale 0). Attaching to the ROOT LINEAGE (u above the old root at height
// h > t_root) instead marginalizes pi at u directly:
//
//   site_c = sum_y pi_y [sum_z M_c(h - t_root)(y, z) D_root,c(z)]
//                       [sum_b M_c(h)(y, b) X_c(b)],
//
// valid because every supported model is time-reversible, so re-rooting at
// u leaves the likelihood unchanged. Matrix rows index the SOURCE
// (ancestral) state throughout, matching SubstModel::transition.
// ---------------------------------------------------------------------------
class TripodScorer {
  public:
    TripodScorer(const SitePatterns& patterns, const SubstModel& model,
                 const BaseFreqs& pi, const RateCategories& rates, const Genealogy& tree)
        : patterns_(patterns),
          model_(model),
          pi_(pi),
          rates_(rates),
          tree_(tree),
          P_(patterns.patternCount()),
          C_(rates.count()),
          vlen_(C_ * P_ * 4) {
        const std::size_t nodes = static_cast<std::size_t>(tree.nodeCount());
        lowData_.assign(nodes, nullptr);
        lowScale_.assign(nodes, nullptr);
        matsU_.resize(C_);
        matsA_.resize(C_);
        matsB_.resize(C_);
    }

    /// Lower conditional vectors of node `v`: data[(c*P+p)*4+x] plus the
    /// per-pattern log scale. Must be set for every node reachable from the
    /// root before buildOuter().
    void setLower(NodeId v, const double* data, const double* scale) {
        lowData_[static_cast<std::size_t>(v)] = data;
        lowScale_[static_cast<std::size_t>(v)] = scale;
    }

    /// The new tip's conditional vectors (indicator columns, scale 0).
    void setNewTip(const double* data) { tip_ = data; }

    /// Compute S, U and T for the whole tree (preorder, parents first).
    void buildOuter() {
        const std::size_t nodes = static_cast<std::size_t>(tree_.nodeCount());
        sBuf_.assign(nodes * vlen_, 0.0);
        uBuf_.assign(nodes * vlen_, 0.0);
        tBuf_.assign(nodes * vlen_, 0.0);
        tScale_.assign(nodes * P_, 0.0);

        // S_v for every non-root node.
        for (NodeId v = 0; v < tree_.nodeCount(); ++v) {
            if (v == tree_.root()) continue;
            const double len = tree_.branchLength(v);
            for (std::size_t c = 0; c < C_; ++c)
                matsA_[c] = model_.transition(rates_.rates[c] * len);
            const double* d = lowData_[static_cast<std::size_t>(v)];
            double* s = sBuf_.data() + static_cast<std::size_t>(v) * vlen_;
            for (std::size_t c = 0; c < C_; ++c)
                for (std::size_t p = 0; p < P_; ++p) {
                    const double* dp = d + (c * P_ + p) * 4;
                    double* sp = s + (c * P_ + p) * 4;
                    for (int y = 0; y < 4; ++y)
                        sp[y] = matsA_[c](y, 0) * dp[0] + matsA_[c](y, 1) * dp[1] +
                                matsA_[c](y, 2) * dp[2] + matsA_[c](y, 3) * dp[3];
                }
        }

        // U and T, parents before children.
        for (NodeId w : tree_.preorder()) {
            if (tree_.isTip(w)) continue;
            double* u = uBuf_.data() + static_cast<std::size_t>(w) * vlen_;
            if (w == tree_.root()) {
                for (std::size_t c = 0; c < C_; ++c)
                    for (std::size_t p = 0; p < P_; ++p)
                        for (int y = 0; y < 4; ++y)
                            u[(c * P_ + p) * 4 + y] = pi_[static_cast<std::size_t>(y)];
            } else {
                const double len = tree_.branchLength(w);
                for (std::size_t c = 0; c < C_; ++c)
                    matsA_[c] = model_.transition(rates_.rates[c] * len);
                const double* t = tBuf_.data() + static_cast<std::size_t>(w) * vlen_;
                for (std::size_t c = 0; c < C_; ++c)
                    for (std::size_t p = 0; p < P_; ++p) {
                        const double* tp = t + (c * P_ + p) * 4;
                        double* up = u + (c * P_ + p) * 4;
                        for (int y = 0; y < 4; ++y)
                            up[y] = matsA_[c](0, y) * tp[0] + matsA_[c](1, y) * tp[1] +
                                    matsA_[c](2, y) * tp[2] + matsA_[c](3, y) * tp[3];
                    }
            }
            const double* uScale =
                w == tree_.root() ? nullptr : tScale_.data() + static_cast<std::size_t>(w) * P_;

            for (int side = 0; side < 2; ++side) {
                const NodeId v = tree_.node(w).child[static_cast<std::size_t>(side)];
                const NodeId sib = tree_.node(w).child[static_cast<std::size_t>(1 - side)];
                const double* s = sBuf_.data() + static_cast<std::size_t>(sib) * vlen_;
                const double* sibScale = lowScale_[static_cast<std::size_t>(sib)];
                double* t = tBuf_.data() + static_cast<std::size_t>(v) * vlen_;
                double* ts = tScale_.data() + static_cast<std::size_t>(v) * P_;
                for (std::size_t c = 0; c < C_; ++c)
                    for (std::size_t p = 0; p < P_; ++p)
                        for (int y = 0; y < 4; ++y)
                            t[(c * P_ + p) * 4 + y] =
                                u[(c * P_ + p) * 4 + y] * s[(c * P_ + p) * 4 + y];
                for (std::size_t p = 0; p < P_; ++p)
                    ts[p] = (uScale ? uScale[p] : 0.0) + sibScale[p];
                // Per-pattern max rescale across categories (the same
                // discipline as forestRescaleRange) so deep outer products
                // cannot underflow.
                for (std::size_t p = 0; p < P_; ++p) {
                    double m = 0.0;
                    for (std::size_t c = 0; c < C_; ++c)
                        for (int y = 0; y < 4; ++y)
                            m = std::max(m, t[(c * P_ + p) * 4 + y]);
                    if (m > 0.0 && std::isfinite(m)) {
                        const double inv = 1.0 / m;
                        for (std::size_t c = 0; c < C_; ++c)
                            for (int y = 0; y < 4; ++y) t[(c * P_ + p) * 4 + y] *= inv;
                        ts[p] += std::log(m);
                    }
                }
            }
        }
    }

    /// log-likelihood of the grafted tree for attachment node `v` at height
    /// `h`; v == root() means the root lineage (h above the old root).
    double logLikAt(NodeId v, double h) {
        constexpr double kNegInf = -std::numeric_limits<double>::infinity();
        double total = 0.0;
        if (v == tree_.root()) {
            const double tr = tree_.node(v).time;
            for (std::size_t c = 0; c < C_; ++c) {
                matsA_[c] = model_.transition(rates_.rates[c] * (h - tr));
                matsB_[c] = model_.transition(rates_.rates[c] * h);
            }
            const double* d = lowData_[static_cast<std::size_t>(v)];
            const double* dScale = lowScale_[static_cast<std::size_t>(v)];
            for (std::size_t p = 0; p < P_; ++p) {
                double site = 0.0;
                for (std::size_t c = 0; c < C_; ++c) {
                    const double* dp = d + (c * P_ + p) * 4;
                    const double* xp = tip_ + (c * P_ + p) * 4;
                    double acc = 0.0;
                    for (int y = 0; y < 4; ++y) {
                        const double a = matsA_[c](y, 0) * dp[0] + matsA_[c](y, 1) * dp[1] +
                                         matsA_[c](y, 2) * dp[2] + matsA_[c](y, 3) * dp[3];
                        const double b = matsB_[c](y, 0) * xp[0] + matsB_[c](y, 1) * xp[1] +
                                         matsB_[c](y, 2) * xp[2] + matsB_[c](y, 3) * xp[3];
                        acc += pi_[static_cast<std::size_t>(y)] * a * b;
                    }
                    site += rates_.weights[c] * acc;
                }
                const double logSite = site > 0.0 ? std::log(site) + dScale[p] : kNegInf;
                total += patterns_.weight(p) * logSite;
            }
            return total;
        }

        const NodeId w = tree_.node(v).parent;
        const double tv = tree_.node(v).time;
        const double tw = tree_.node(w).time;
        for (std::size_t c = 0; c < C_; ++c) {
            matsU_[c] = model_.transition(rates_.rates[c] * (tw - h));
            matsA_[c] = model_.transition(rates_.rates[c] * (h - tv));
            matsB_[c] = model_.transition(rates_.rates[c] * h);
        }
        const double* t = tBuf_.data() + static_cast<std::size_t>(v) * vlen_;
        const double* ts = tScale_.data() + static_cast<std::size_t>(v) * P_;
        const double* d = lowData_[static_cast<std::size_t>(v)];
        const double* dScale = lowScale_[static_cast<std::size_t>(v)];
        for (std::size_t p = 0; p < P_; ++p) {
            double site = 0.0;
            for (std::size_t c = 0; c < C_; ++c) {
                const double* tp = t + (c * P_ + p) * 4;
                const double* dp = d + (c * P_ + p) * 4;
                const double* xp = tip_ + (c * P_ + p) * 4;
                double ab[4];
                for (int z = 0; z < 4; ++z) {
                    const double a = matsA_[c](z, 0) * dp[0] + matsA_[c](z, 1) * dp[1] +
                                     matsA_[c](z, 2) * dp[2] + matsA_[c](z, 3) * dp[3];
                    const double b = matsB_[c](z, 0) * xp[0] + matsB_[c](z, 1) * xp[1] +
                                     matsB_[c](z, 2) * xp[2] + matsB_[c](z, 3) * xp[3];
                    ab[z] = a * b;
                }
                double acc = 0.0;
                for (int y = 0; y < 4; ++y) {
                    const double inner = matsU_[c](y, 0) * ab[0] + matsU_[c](y, 1) * ab[1] +
                                         matsU_[c](y, 2) * ab[2] + matsU_[c](y, 3) * ab[3];
                    acc += tp[y] * inner;
                }
                site += rates_.weights[c] * acc;
            }
            const double logSite =
                site > 0.0 ? std::log(site) + ts[p] + dScale[p] : kNegInf;
            total += patterns_.weight(p) * logSite;
        }
        return total;
    }

  private:
    const SitePatterns& patterns_;
    const SubstModel& model_;
    const BaseFreqs& pi_;
    const RateCategories& rates_;
    const Genealogy& tree_;
    std::size_t P_, C_, vlen_;
    std::vector<const double*> lowData_, lowScale_;
    const double* tip_ = nullptr;
    std::vector<double> sBuf_, uBuf_, tBuf_, tScale_;
    std::vector<Matrix4> matsU_, matsA_, matsB_;
};

/// Fixed-iteration golden-section maximum of f over [lo, hi]. The
/// evaluation points are a deterministic function of (lo, hi, iters), so
/// the guided proposal stays a deterministic function of the particle
/// state (no adaptive tolerance).
template <class F>
double goldenSectionMax(double lo, double hi, std::size_t iters, F&& f) {
    constexpr double kInvPhi = 0.6180339887498949;
    double a = lo, b = hi;
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    for (std::size_t i = 0; i < iters; ++i) {
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = f(x1);
        }
    }
    return std::max(f1, f2);
}

/// The enlarged-arena graft: old tips keep their ids, the new tip becomes
/// id n, old internals shift by one (v -> v+1) and the new coalescent node
/// takes id 2n, joining the new tip to (the branch above) `attach` at
/// height h. attach == root grafts above the old root (the new node
/// becomes the root).
Genealogy graftTip(const Genealogy& g, NodeId attach, double h,
                   const std::vector<std::string>& names) {
    const int n = g.tipCount();
    const NodeId newTip = n;
    const NodeId join = 2 * n;
    Genealogy out(n + 1);
    const auto map = [n](NodeId id) { return id < n ? id : id + 1; };
    for (NodeId v = n; v < g.nodeCount(); ++v) out.node(map(v)).time = g.node(v).time;
    for (NodeId v = 0; v < g.nodeCount(); ++v) {
        if (v == attach) continue;
        const NodeId par = g.node(v).parent;
        if (par != kNoNode) out.link(map(par), map(v));
    }
    out.node(join).time = h;
    if (attach == g.root()) {
        out.link(join, map(attach));
        out.link(join, newTip);
        out.setRoot(join);
    } else {
        out.link(map(g.node(attach).parent), join);
        out.link(join, map(attach));
        out.link(join, newTip);
        out.setRoot(map(g.root()));
    }
    out.setTipNames(names);
    return out;
}

}  // namespace

OnlineState initOnlineState(const Alignment& aln, double theta, const SmcOptions& smc,
                            const std::string& substModel, std::uint64_t seed,
                            ThreadPool* pool) {
    const std::unique_ptr<SubstModel> model = makeInferenceModel(substModel, aln);
    DataLikelihood lik(aln, *model);
    const std::unique_ptr<LikelihoodBackend> backend =
        makeLikelihoodBackend(smc.backend, lik);
    SmcFilter filter(*backend, theta, smc, seed, pool);
    while (!filter.done()) filter.step();

    OnlineState st;
    st.alignment = aln;
    st.substModel = substModel;
    st.theta = theta;
    st.seed = seed;
    st.logZ = filter.logZ();
    ParticleCloud& cloud = filter.cloud();
    const std::size_t N = cloud.size();
    const std::span<const double> logW = std::as_const(cloud).logWeights();
    st.particles.resize(N);
    for (std::size_t p = 0; p < N; ++p) {
        Particle& src = cloud.particle(p);
        src.tree.setRoot(src.roots.front());
        st.particles[p].tree = std::move(src.tree);
        st.particles[p].logW = logW[p];
        st.particles[p].logL = src.rootLogL.front();
    }
    st.hostRng = cloud.hostRng();
    st.slotRngs.reserve(N);
    for (std::size_t p = 0; p < N; ++p) st.slotRngs.push_back(cloud.slotRng(p));
    return st;
}

OnlineSmcUpdater::OnlineSmcUpdater(OnlineState& state, const OnlineOptions& opts,
                                   ThreadPool* pool)
    : state_(state), opts_(opts), pool_(pool) {
    if (!(opts.essThreshold >= 0.0 && opts.essThreshold <= 1.0))
        throw ConfigError("online: ESS threshold must lie in [0, 1]");
    if (opts.blockSize == 0) throw ConfigError("online: particle block size must be >= 1");
    if (opts.heightSearchIterations < 2)
        throw ConfigError("online: height search needs >= 2 iterations");
    if (state.particles.empty()) throw ConfigError("online: state holds no particles");
    if (state.slotRngs.size() != state.particles.size())
        throw ConfigError("online: state RNG stream count does not match particle count");
    if (state.theta <= 0.0) throw ConfigError("online: theta must be positive");
}

OnlineUpdateResult OnlineSmcUpdater::addSequence(const Sequence& seq) {
    const obs::TraceSpan span("online_update", "smc");
    const std::size_t N = state_.particles.size();
    const int n = static_cast<int>(state_.alignment.sequenceCount());
    const double theta = state_.theta;
    if (seq.length() != state_.alignment.length())
        throw ConfigError("online: new sequence '" + seq.name() + "' has length " +
                          std::to_string(seq.length()) + ", alignment has " +
                          std::to_string(state_.alignment.length()));
    for (const Sequence& s : state_.alignment.sequences())
        if (s.name() == seq.name())
            throw ConfigError("online: duplicate sequence name '" + seq.name() + "'");

    // The enlarged alignment compresses to a DIFFERENT pattern set, so the
    // whole likelihood stack is rebuilt fresh per update (model frequencies
    // re-estimated from the enlarged data — legitimate for the importance
    // ratio because the old-target denominator uses the CACHED old logL).
    std::vector<Sequence> seqs = state_.alignment.sequences();
    seqs.push_back(seq);
    const Alignment newAln(std::move(seqs));
    const std::unique_ptr<SubstModel> model =
        makeInferenceModel(state_.substModel, newAln);
    const DataLikelihood lik(newAln, *model);
    const std::unique_ptr<LikelihoodBackend> backend =
        makeLikelihoodBackend(opts_.backend, lik);
    const std::vector<std::string> newNames = newAln.names();

    // --- Phase 1: rebuild every particle's lower partials against the new
    // pattern set through the backend. Slot map: tips [0, n] shared (the
    // new tip is sequence n), then (n-1) internal slots per particle.
    const std::size_t tipSlots = static_cast<std::size_t>(n) + 1;
    const std::size_t perParticle = static_cast<std::size_t>(n) - 1;
    backend->resizeSlots(tipSlots + N * perParticle);
    const auto slotOf = [&](std::size_t p, NodeId id) {
        return static_cast<LikelihoodBackend::Slot>(
            id < n ? static_cast<std::size_t>(id)
                   : tipSlots + p * perParticle + static_cast<std::size_t>(id - n));
    };
    for (int t = 0; t <= n; ++t)
        backend->tipInit(static_cast<LikelihoodBackend::Slot>(t), t);
    backend->flush(pool_);

    // Level-by-level so a batch never chains dependent combines: level(v) =
    // 1 + max(level of children), tips at level 0. All of one level's
    // combines — across ALL particles — run as one generation flush.
    const int nodes = 2 * n - 1;
    std::vector<std::vector<int>> levels(N);
    int maxLevel = 0;
    for (std::size_t p = 0; p < N; ++p) {
        const Genealogy& g = state_.particles[p].tree;
        levels[p].assign(static_cast<std::size_t>(nodes), 0);
        for (NodeId v : g.postorder()) {
            if (g.isTip(v)) continue;
            const int l0 = levels[p][static_cast<std::size_t>(g.node(v).child[0])];
            const int l1 = levels[p][static_cast<std::size_t>(g.node(v).child[1])];
            levels[p][static_cast<std::size_t>(v)] = 1 + std::max(l0, l1);
            maxLevel = std::max(maxLevel, levels[p][static_cast<std::size_t>(v)]);
        }
    }
    for (int L = 1; L <= maxLevel; ++L) {
        for (std::size_t p = 0; p < N; ++p) {
            const Genealogy& g = state_.particles[p].tree;
            for (NodeId v = n; v < nodes; ++v) {
                if (levels[p][static_cast<std::size_t>(v)] != L) continue;
                const NodeId a = g.node(v).child[0];
                const NodeId b = g.node(v).child[1];
                backend->combine(slotOf(p, v), slotOf(p, a), g.node(v).time - g.node(a).time,
                                 slotOf(p, b), g.node(v).time - g.node(b).time);
            }
        }
        backend->flush(pool_);
    }

    // --- Phase 2: guided attachment per particle, thread-parallel over
    // fixed particle blocks with slot-pinned RNG streams (bitwise invariant
    // to the worker count). Candidates are the 2n-2 non-root nodes in id
    // order plus the root lineage LAST; each candidate's weight is its
    // height-optimized tripod log-likelihood, softmax-normalized.
    std::vector<double> delta(N, 0.0);
    std::vector<double> newLogL(N, 0.0);
    std::vector<Genealogy> newTrees(N);
    launchBlocked(pool_, N, opts_.blockSize, [&](std::size_t, std::size_t begin,
                                                 std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
            const OnlineParticle& pt = state_.particles[p];
            const Genealogy& g = pt.tree;
            Mt19937& rng = state_.slotRngs[p];

            TripodScorer scorer(lik.patterns(), lik.model(), lik.rootFreqs(),
                                lik.rateCategories(), g);
            for (NodeId v = 0; v < nodes; ++v)
                scorer.setLower(v, backend->slotData(slotOf(p, v)).data(),
                                backend->slotScale(slotOf(p, v)).data());
            scorer.setNewTip(
                backend->slotData(static_cast<LikelihoodBackend::Slot>(n)).data());
            scorer.buildOuter();

            std::vector<NodeId> cands;
            cands.reserve(static_cast<std::size_t>(nodes));
            for (NodeId v = 0; v < nodes; ++v)
                if (v != g.root()) cands.push_back(v);
            cands.push_back(g.root());  // the root lineage, by convention last

            const double tRoot = g.node(g.root()).time;
            std::vector<double> phi(cands.size());
            for (std::size_t i = 0; i < cands.size(); ++i) {
                const NodeId v = cands[i];
                const double lo = v == g.root() ? tRoot : g.node(v).time;
                const double hi =
                    v == g.root() ? tRoot + 2.0 * theta : g.node(g.node(v).parent).time;
                phi[i] = goldenSectionMax(lo, hi, opts_.heightSearchIterations,
                                          [&](double h) { return scorer.logLikAt(v, h); });
            }

            const double logQNorm = logSumExp(phi);
            const std::size_t pick = rng.categoricalFromLog(phi);
            const NodeId attach = cands[pick];
            const double logQBranch = phi[pick] - logQNorm;
            double h, logQHeight;
            if (attach == g.root()) {
                // Shifted exponential above the old root at the Kingman
                // two-lineage rate — an exact, easily-inverted density.
                const double rate = 2.0 / theta;
                const double e = rng.exponential(rate);
                h = tRoot + e;
                logQHeight = std::log(rate) - rate * e;
            } else {
                const double lo = g.node(attach).time;
                const double hi = g.node(g.node(attach).parent).time;
                h = rng.uniform(lo, hi);
                logQHeight = -std::log(hi - lo);
            }

            newLogL[p] = scorer.logLikAt(attach, h);
            newTrees[p] = graftTip(g, attach, h, newNames);
            // Exact importance ratio: enlarged target over old target times
            // proposal. The old prior comes from the ORIGINAL tree (the
            // enlarged arena holds unlinked nodes, so its intervals would
            // be wrong).
            delta[p] = newLogL[p] + logCoalescentPrior(newTrees[p], theta) - pt.logL -
                       logCoalescentPrior(g, theta) - logQBranch - logQHeight;
        }
    });

    // --- Phase 3 (serial): reweight, guard, commit. The fail point lives
    // here so its evaluation count (one per update) is deterministic.
    if (const auto hit = MPCGS_FAILPOINT("online.reweight"); hit.fired()) {
        if (hit.action == failpoint::Action::Nan)
            delta[0] = std::numeric_limits<double>::quiet_NaN();
        else
            throw InjectedFaultError("online.reweight");
    }
    std::vector<double> logW(N);
    for (std::size_t p = 0; p < N; ++p) logW[p] = state_.particles[p].logW + delta[p];
    // Old weights are normalized, so logSumExp(logW + delta) estimates
    // log P(D_{n+1}) - log P(D_n) directly.
    const double logZInc = logSumExp(logW);
    if (!std::isfinite(logZInc)) {
        std::size_t finiteD = 0;
        for (std::size_t p = 0; p < N; ++p)
            if (std::isfinite(delta[p])) ++finiteD;
        NumericFaultContext ctx;
        ctx.where = "online.reweight";
        ctx.value = logZInc;
        ctx.theta = theta;
        ctx.seed = state_.seed;
        ctx.tick = state_.updates;
        ctx.genealogy = genealogySummary(state_.particles[0].tree);
        ctx.detail = "add-sequence update: " + std::to_string(state_.updates) +
                     "\nnew sequence: " + seq.name() +
                     "\nparticles: " + std::to_string(N) +
                     "\nfinite importance increments: " + std::to_string(finiteD) +
                     "\nhint: a particle produced a non-finite reweight — check "
                     "the new sequence's alignment against the model";
        raiseNumericFault(ctx);
    }
    for (std::size_t p = 0; p < N; ++p) {
        state_.particles[p].tree = std::move(newTrees[p]);
        state_.particles[p].logL = newLogL[p];
        state_.particles[p].logW = logW[p] - logZInc;
    }
    state_.alignment = newAln;
    state_.logZ += logZInc;
    ++state_.updates;
    // Serial commit point — deterministic metric counts, no RNG touched.
    obs::add(obs::Counter::SmcOnlineUpdates);
    obs::set(obs::Gauge::SmcOnlineLogZIncrement, logZInc);
    obs::set(obs::Gauge::SmcLogZ, state_.logZ);

    OnlineUpdateResult res;
    res.logZIncrement = logZInc;

    // --- Phase 4: ESS refresh. Threshold 1.0 refreshes unconditionally
    // (the same boundary contract as the batch filter), 0.0 never does.
    std::vector<double> probs;
    for (std::size_t p = 0; p < N; ++p) logW[p] = state_.particles[p].logW;
    logNormalize(logW, probs);
    const double ess = weightEss(probs);
    res.essFraction = ess / static_cast<double>(N);
    const bool refresh = opts_.essThreshold >= 1.0 ||
                         ess < opts_.essThreshold * static_cast<double>(N);
    obs::set(obs::Gauge::SmcEssFraction, res.essFraction);
    if (refresh) {
        res.refreshed = true;
        obs::add(obs::Counter::SmcOnlineRefreshes);
        std::vector<std::uint32_t> ancestry;
        resampleAncestors(opts_.scheme, probs, state_.hostRng, ancestry);
        std::vector<OnlineParticle> next(N);
        for (std::size_t i = 0; i < N; ++i) next[i] = state_.particles[ancestry[i]];
        state_.particles = std::move(next);
        const double uniform = -std::log(static_cast<double>(N));
        for (std::size_t p = 0; p < N; ++p) state_.particles[p].logW = uniform;

        // Rejuvenation: recoalesce MH sweeps against the enlarged-data
        // posterior, slot streams again, so the refresh stays bitwise
        // thread-invariant.
        std::vector<std::size_t> accepts(N, 0);
        for (std::size_t sweep = 0; sweep < opts_.rejuvenationSweeps; ++sweep) {
            launchBlocked(pool_, N, opts_.blockSize, [&](std::size_t, std::size_t begin,
                                                         std::size_t end) {
                for (std::size_t p = begin; p < end; ++p) {
                    OnlineParticle& pt = state_.particles[p];
                    Mt19937& rng = state_.slotRngs[p];
                    RecoalesceProposal prop = proposeRecoalesce(pt.tree, theta, rng);
                    const double propLogL = lik.logLikelihood(prop.state, nullptr);
                    const double logAccept =
                        propLogL + logCoalescentPrior(prop.state, theta) - pt.logL -
                        logCoalescentPrior(pt.tree, theta) + prop.logReverse -
                        prop.logForward;
                    if (std::log(rng.uniformPos()) < logAccept) {
                        pt.tree = std::move(prop.state);
                        pt.logL = propLogL;
                        ++accepts[p];
                    }
                }
            });
        }
        for (std::size_t p = 0; p < N; ++p) res.rejuvenationAccepts += accepts[p];
        obs::add(obs::Counter::SmcRejuvenationAccepts, res.rejuvenationAccepts);
    }
    return res;
}

double onlineThetaEstimate(const OnlineState& state) {
    std::vector<double> logW(state.particles.size());
    for (std::size_t p = 0; p < state.particles.size(); ++p)
        logW[p] = state.particles[p].logW;
    std::vector<double> probs;
    logNormalize(logW, probs);
    double est = 0.0;
    for (std::size_t p = 0; p < state.particles.size(); ++p)
        est += probs[p] * singleTreeThetaMle(state.particles[p].tree.intervals());
    return est;
}

double onlineEssFraction(const OnlineState& state) {
    std::vector<double> logW(state.particles.size());
    for (std::size_t p = 0; p < state.particles.size(); ++p)
        logW[p] = state.particles[p].logW;
    return essFromLogWeights(logW) / static_cast<double>(state.particles.size());
}

void saveOnlineState(const std::string& path, const OnlineState& state) {
    CheckpointWriter w(path);
    w.beginSection("online.meta");
    w.str(state.substModel);
    w.f64(state.theta);
    w.u64(state.seed);
    w.u64(state.updates);
    w.f64(state.logZ);
    w.beginSection("online.alignment");
    w.u32(static_cast<std::uint32_t>(state.alignment.sequenceCount()));
    for (const Sequence& s : state.alignment.sequences()) {
        w.str(s.name());
        w.str(s.toString());
    }
    w.beginSection("online.rng");
    writeRng(w, state.hostRng);
    w.u32(static_cast<std::uint32_t>(state.slotRngs.size()));
    for (const Mt19937& r : state.slotRngs) writeRng(w, r);
    w.beginSection("online.particles");
    w.u32(static_cast<std::uint32_t>(state.particles.size()));
    for (const OnlineParticle& p : state.particles) {
        writeGenealogy(w, p.tree);
        w.f64(p.logW);
        w.f64(p.logL);
    }
    w.commit();
}

OnlineState loadOnlineState(const std::string& path) {
    try {
        CheckpointReader r(path);
        OnlineState st;
        r.enterSection("online.meta");
        st.substModel = r.str();
        st.theta = r.f64();
        st.seed = r.u64();
        st.updates = r.u64();
        st.logZ = r.f64();
        r.enterSection("online.alignment");
        const std::uint32_t nSeq = r.u32();
        std::vector<Sequence> seqs;
        seqs.reserve(nSeq);
        for (std::uint32_t i = 0; i < nSeq; ++i) {
            std::string name = r.str();
            const std::string chars = r.str();
            seqs.push_back(Sequence::fromString(std::move(name), chars));
        }
        st.alignment = Alignment(std::move(seqs));
        r.enterSection("online.rng");
        readRng(r, st.hostRng);
        const std::uint32_t nRng = r.u32();
        st.slotRngs.resize(nRng);
        for (std::uint32_t i = 0; i < nRng; ++i) readRng(r, st.slotRngs[i]);
        r.enterSection("online.particles");
        const std::uint32_t nPart = r.u32();
        st.particles.resize(nPart);
        for (std::uint32_t i = 0; i < nPart; ++i) {
            st.particles[i].tree = readGenealogy(r);
            st.particles[i].logW = r.f64();
            st.particles[i].logL = r.f64();
        }
        return st;
    } catch (const ResumeError&) {
        throw;
    } catch (const CheckpointError& e) {
        throw ResumeError(e.what());
    } catch (const ParseError& e) {
        throw ResumeError(std::string("checkpoint error: online state: ") + e.what());
    }
}

double onlineAttachmentLogLik(const DataLikelihood& lik, const Genealogy& tree,
                              NodeId attach, double height) {
    const SitePatterns& patterns = lik.patterns();
    const RateCategories& rates = lik.rateCategories();
    const std::size_t P = patterns.patternCount();
    const std::size_t C = rates.count();
    const std::size_t vlen = C * P * 4;
    if (static_cast<std::size_t>(tree.tipCount()) + 1 != patterns.sequenceCount())
        throw ConfigError(
            "online: attachment evaluator needs exactly one more alignment "
            "sequence than the tree has tips");

    // CPU lower partials through the shared forest kernels (the same math
    // the backend slots hold in the add-sequence path).
    const std::size_t nodes = static_cast<std::size_t>(tree.nodeCount());
    std::vector<double> data(nodes * vlen, 0.0);
    std::vector<double> scale(nodes * P, 0.0);
    for (int t = 0; t < tree.tipCount(); ++t)
        forestTipInitRange(patterns, t, data.data() + static_cast<std::size_t>(t) * vlen,
                           scale.data() + static_cast<std::size_t>(t) * P, P, C, 0, P);
    for (NodeId v : tree.postorder()) {
        if (tree.isTip(v)) continue;
        const NodeId a = tree.node(v).child[0];
        const NodeId b = tree.node(v).child[1];
        const double la = tree.node(v).time - tree.node(a).time;
        const double lb = tree.node(v).time - tree.node(b).time;
        double* out = data.data() + static_cast<std::size_t>(v) * vlen;
        for (std::size_t c = 0; c < C; ++c) {
            const Matrix4 pa = lik.model().transition(rates.rates[c] * la);
            const Matrix4 pb = lik.model().transition(rates.rates[c] * lb);
            forestCombineRange(pa, pb,
                               data.data() + static_cast<std::size_t>(a) * vlen + c * P * 4,
                               data.data() + static_cast<std::size_t>(b) * vlen + c * P * 4,
                               out + c * P * 4, 0, P);
        }
        forestRescaleRange(out, scale.data() + static_cast<std::size_t>(v) * P,
                           scale.data() + static_cast<std::size_t>(a) * P,
                           scale.data() + static_cast<std::size_t>(b) * P, P, C, 0, P);
    }
    std::vector<double> tipData(vlen, 0.0);
    std::vector<double> tipScale(P, 0.0);
    forestTipInitRange(patterns, tree.tipCount(), tipData.data(), tipScale.data(), P, C,
                       0, P);

    TripodScorer scorer(patterns, lik.model(), lik.rootFreqs(), rates, tree);
    for (NodeId v = 0; v < tree.nodeCount(); ++v)
        scorer.setLower(v, data.data() + static_cast<std::size_t>(v) * vlen,
                        scale.data() + static_cast<std::size_t>(v) * P);
    scorer.setNewTip(tipData.data());
    scorer.buildOuter();
    return scorer.logLikAt(attach, height);
}

}  // namespace mpcgs
