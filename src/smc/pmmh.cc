#include "smc/pmmh.h"

#include <cmath>
#include <limits>

#include "core/numeric_guard.h"
#include "mcmc/checkpoint.h"
#include "rng/splitmix.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs {

namespace {
/// Salt decorrelating the pass-seed families from the chain RNG streams
/// (both derive from the same run seed).
constexpr std::uint64_t kPassSalt = 0x50534D4350534D43ull;  // "PSMCPSMC"
}  // namespace

void validatePmmhOptions(const PmmhOptions& opts) {
    if (opts.chains == 0) throw ConfigError("pmmh: need >= 1 chain");
    if (opts.proposalSigma <= 0.0)
        throw ConfigError("pmmh: proposal sigma must be positive");
    if (!(opts.thetaMin > 0.0) || !(opts.thetaMax > opts.thetaMin))
        throw ConfigError("pmmh: need 0 < thetaMin < thetaMax");
    validateSmcOptions(opts.smc);
}

PmmhSampler::PmmhSampler(const PooledSmcLikelihood& marginal, double thetaInit,
                         const PmmhOptions& opts, ThreadPool* pool)
    : marginal_(marginal),
      opts_(opts),
      scheduler_(opts.chains > 1 ? pool : nullptr, opts.chains),
      pool_(pool),
      chains_(opts.chains) {
    validatePmmhOptions(opts);
    if (thetaInit < opts.thetaMin || thetaInit > opts.thetaMax)
        throw ConfigError("pmmh: initial theta outside the prior support");
    for (std::size_t c = 0; c < chains_.size(); ++c) {
        chains_[c].theta = thetaInit;
        chains_[c].rng = Mt19937::fromSplitMix(splitMix64At(opts.seed, c + 1));
    }
}

std::uint64_t PmmhSampler::passSeed(std::size_t c, std::uint64_t eval) const {
    return splitMix64At(splitMix64At(opts_.seed ^ kPassSalt, c + 1), eval);
}

void PmmhSampler::stepChain(std::size_t c) {
    Chain& ch = chains_[c];
    // Inner SMC passes may use the pool only when the chain axis does not
    // (pool nesting is unsupported — the MultiLocusRun discipline).
    ThreadPool* inner = chains_.size() > 1 ? nullptr : pool_;

    if (!initialized_) {
        const auto passes = marginal_.passes(ch.theta, passSeed(c, ch.evals++), inner);
        ch.logZ = 0.0;
        for (const SmcPassResult& p : passes) ch.logZ += p.logZ;
        ch.tree = passes.front().sampled;
        ch.lastProposalLogZ = ch.logZ;
        ch.lastProposalTheta = ch.theta;
        return;
    }

    const double z = ch.rng.normal();
    const double thetaNew = ch.theta * std::exp(opts_.proposalSigma * z);
    ++ch.steps;
    if (thetaNew < opts_.thetaMin || thetaNew > opts_.thetaMax) return;  // zero prior

    const auto passes = marginal_.passes(thetaNew, passSeed(c, ch.evals++), inner);
    double logZNew = 0.0;
    for (const SmcPassResult& p : passes) logZNew += p.logZ;
    ch.lastProposalLogZ = logZNew;
    ch.lastProposalTheta = thetaNew;

    // 1/theta prior + log-normal walk: prior ratio and proposal Jacobian
    // cancel, leaving the pseudo-marginal likelihood ratio.
    const double logR = logZNew - ch.logZ;
    if (logR >= 0.0 || std::log(ch.rng.uniformPos()) < logR) {
        ch.theta = thetaNew;
        ch.logZ = logZNew;
        ch.tree = passes.front().sampled;
        ++ch.accepted;
    }
}

void PmmhSampler::tick(SampleSink* sink) {
    scheduler_.stepChains([&](std::size_t c) {
        stepChain(c);
        if (sink && initialized_) {
            Chain& ch = chains_[c];
            sink->consume(ch.tree,
                          SampleTag{static_cast<std::uint32_t>(c), sampleRounds_,
                                    ch.logZ - std::log(ch.theta)});
            ch.trace.push_back(ch.theta);
        }
    });
    if (!initialized_) {
        initialized_ = true;
        // An all-sampling run (no burn-in) still emits from tick one: the
        // initialization pass doubles as that tick's sample.
        if (sink) {
            for (std::size_t c = 0; c < chains_.size(); ++c) {
                Chain& ch = chains_[c];
                sink->consume(ch.tree,
                              SampleTag{static_cast<std::uint32_t>(c), sampleRounds_,
                                        ch.logZ - std::log(ch.theta)});
                ch.trace.push_back(ch.theta);
            }
        }
    }
    // Serial guard after the parallel chain round: a non-finite logZhat is
    // a numeric fault, not a silent rejection (the NaN-false acceptance
    // comparison would otherwise swallow it without a trace). The
    // pmmh.logz fail point poisons chain 0's diagnostic cell.
    if (const auto hit = MPCGS_FAILPOINT("pmmh.logz"); hit.fired()) {
        if (hit.action == failpoint::Action::Nan)
            chains_.front().lastProposalLogZ = std::numeric_limits<double>::quiet_NaN();
        else
            throw InjectedFaultError("pmmh.logz");
    }
    for (std::size_t c = 0; c < chains_.size(); ++c) {
        const Chain& ch = chains_[c];
        if (std::isfinite(ch.lastProposalLogZ)) continue;
        NumericFaultContext ctx;
        ctx.where = "pmmh.logz";
        ctx.value = ch.lastProposalLogZ;
        ctx.theta = ch.lastProposalTheta;
        ctx.seed = opts_.seed;
        ctx.tick = sampleRounds_;
        ctx.chain = static_cast<std::uint32_t>(c);
        // The initialization block above always ran by this point, so
        // every chain holds a valid genealogy.
        ctx.genealogy = genealogySummary(ch.tree);
        ctx.detail = "accepted theta: " + std::to_string(ch.theta) +
                     "\naccepted logZ: " + std::to_string(ch.logZ) +
                     "\nsmc passes run by this chain: " + std::to_string(ch.evals);
        raiseNumericFault(ctx);
    }
    if (sink) ++sampleRounds_;
}

SamplerStats PmmhSampler::stats() const {
    SamplerStats s;
    for (const Chain& c : chains_) {
        s.steps += c.steps;
        s.accepted += c.accepted;
    }
    return s;
}

void PmmhSampler::save(CheckpointWriter& w) const {
    w.u32(kPmmhSnapshotTag);
    w.u32(initialized_ ? 1 : 0);
    w.u64(sampleRounds_);
    w.u64(chains_.size());
    for (const Chain& c : chains_) {
        w.f64(c.theta);
        w.f64(c.logZ);
        // An uninitialized chain holds no genealogy yet (tick one runs the
        // theta0 pass); readGenealogy rejects empty trees, so skip it.
        if (initialized_) writeGenealogy(w, c.tree);
        writeRng(w, c.rng);
        w.u64(c.evals);
        w.u64(c.steps);
        w.u64(c.accepted);
        w.doubles(c.trace);
    }
}

void PmmhSampler::load(CheckpointReader& r) {
    if (r.u32() != kPmmhSnapshotTag)
        throw CheckpointError("snapshot section is not a PMMH ('PSMC') payload");
    initialized_ = r.u32() != 0;
    sampleRounds_ = r.u64();
    if (r.u64() != chains_.size())
        throw CheckpointError("PMMH snapshot chain count does not match configuration");
    for (Chain& c : chains_) {
        c.theta = r.f64();
        c.logZ = r.f64();
        if (initialized_) c.tree = readGenealogy(r);
        readRng(r, c.rng);
        c.evals = r.u64();
        c.steps = r.u64();
        c.accepted = r.u64();
        c.trace = r.doubles();
    }
}

}  // namespace mpcgs
