#include "smc/smc_sampler.h"

#include <cmath>
#include <limits>
#include <utility>

#include "coalescent/prior.h"
#include "core/numeric_guard.h"
#include "par/kernel.h"
#include "rng/splitmix.h"
#include "smc/particle_cloud.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/logspace.h"

namespace mpcgs {

void validateSmcOptions(const SmcOptions& opts) {
    if (opts.particles == 0) throw ConfigError("smc: need >= 1 particle");
    if (!(opts.essThreshold >= 0.0 && opts.essThreshold <= 1.0))
        throw ConfigError("smc: ESS threshold must lie in [0, 1]");
    if (opts.blockSize == 0) throw ConfigError("smc: particle block size must be >= 1");
}

namespace {

/// Advance one particle by one coalescence: prior-rate waiting time,
/// uniform pair, one combine(); returns the incremental log-weight
/// (partial-likelihood ratio). `eventIndex` is the arena id of the new
/// internal node.
double propagateParticle(Particle& pt, Mt19937& rng, const ForestEvaluator& eval,
                         double theta, NodeId newNode) {
    const int k = pt.lineageCount();
    // Waiting time of the NEXT coalescence among k lineages: total rate
    // k(k-1)/theta (Eq. 17 summed over the k(k-1)/2 pairs).
    const double rate = static_cast<double>(k) * static_cast<double>(k - 1) / theta;
    const double t = pt.lastEventTime + rng.exponential(rate);

    // Uniform unordered pair (i, j), i < j.
    const std::size_t i = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(k)));
    std::size_t j = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(k - 1)));
    if (j >= i) ++j;
    const std::size_t a = i < j ? i : j;
    const std::size_t b = i < j ? j : i;

    const NodeId ra = pt.roots[a];
    const NodeId rb = pt.roots[b];
    const double lenA = t - pt.tree.node(ra).time;
    const double lenB = t - pt.tree.node(rb).time;

    pt.tree.node(newNode).time = t;
    pt.tree.link(newNode, ra);
    pt.tree.link(newNode, rb);

    SubtreePartials merged;
    eval.combine(pt.partials[a], lenA, pt.partials[b], lenB, merged);
    const double mergedLogL = eval.rootLogLikelihood(merged);
    const double inc = mergedLogL - pt.rootLogL[a] - pt.rootLogL[b];

    // Replace root a with the merged subtree, drop root b (swap-with-back
    // keeps the arrays dense; order within a particle is slot-local state,
    // so this stays deterministic).
    pt.roots[a] = newNode;
    pt.partials[a] = std::move(merged);
    pt.rootLogL[a] = mergedLogL;
    pt.roots[b] = pt.roots.back();
    pt.roots.pop_back();
    pt.partials[b] = std::move(pt.partials.back());
    pt.partials.pop_back();
    pt.rootLogL[b] = pt.rootLogL.back();
    pt.rootLogL.pop_back();
    pt.lastEventTime = t;
    return inc;
}

}  // namespace

SmcPassResult runSmcPass(const DataLikelihood& lik, double theta, const SmcOptions& opts,
                         std::uint64_t passSeed, ThreadPool* pool) {
    validateSmcOptions(opts);
    if (theta <= 0.0) throw ConfigError("smc: theta must be positive");
    const int n = static_cast<int>(lik.patterns().sequenceCount());
    if (n < 2) throw ConfigError("smc: need at least 2 sequences");

    const ForestEvaluator eval(lik);
    ParticleCloud cloud(opts.particles, eval, n, passSeed);
    const std::size_t N = cloud.size();

    SmcPassResult res;
    res.logZ = cloud.initialLogForestLikelihood();

    std::vector<double> inc(N, 0.0);
    for (int event = 0; event < n - 1; ++event) {
        const NodeId newNode = n + event;
        // Parallel section: each slot propagates its own particle with its
        // own stream; the block partition depends only on (N, blockSize).
        launchBlocked(pool, N, opts.blockSize,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t p = begin; p < end; ++p)
                              inc[p] = propagateParticle(cloud.particle(p),
                                                         cloud.slotRng(p), eval, theta,
                                                         newNode);
                      });

        // Serial cloud-level bookkeeping: logZ += log(sum_i Wbar_i w_i).
        const std::span<double> logW = cloud.logWeights();
        // Fail points live in this serial section only, so their
        // evaluation counts (one per event) stay deterministic:
        // smc.weight poisons one particle's increment, smc.collapse sinks
        // the whole cloud (total degeneracy).
        if (const auto hit = MPCGS_FAILPOINT("smc.weight"); hit.fired()) {
            if (hit.action == failpoint::Action::Nan)
                inc[0] = std::numeric_limits<double>::quiet_NaN();
            else
                throw InjectedFaultError("smc.weight");
        }
        if (const auto hit = MPCGS_FAILPOINT("smc.collapse"); hit.fired()) {
            if (hit.action == failpoint::Action::Nan)
                for (std::size_t p = 0; p < N; ++p)
                    inc[p] = -std::numeric_limits<double>::infinity();
            else
                throw InjectedFaultError("smc.collapse");
        }
        for (std::size_t p = 0; p < N; ++p) logW[p] += inc[p];
        const double stepLogZ = cloud.normalizeWeights();
        res.logZ += stepLogZ;
        if (!std::isfinite(stepLogZ)) {
            // -inf = every weight collapsed to zero (total degeneracy);
            // NaN = a non-finite importance weight. Either way the pass is
            // unrecoverable — dump the cloud state and raise.
            const bool collapse = stepLogZ == -std::numeric_limits<double>::infinity();
            std::size_t finiteW = 0;
            for (std::size_t p = 0; p < N; ++p)
                if (std::isfinite(logW[p])) ++finiteW;
            NumericFaultContext ctx;
            ctx.where = collapse ? "smc.collapse" : "smc.weight";
            ctx.value = stepLogZ;
            ctx.theta = theta;
            ctx.seed = passSeed;
            ctx.tick = static_cast<std::uint64_t>(event);
            ctx.detail =
                "coalescence event: " + std::to_string(event) + " of " +
                std::to_string(n - 1) + "\nparticles: " + std::to_string(N) +
                "\nfinite weights after update: " + std::to_string(finiteW) +
                "\nresamples so far: " + std::to_string(res.resamples) +
                (collapse ? "\nhint: total ESS collapse — increase --particles or "
                            "lower the ESS threshold"
                          : "\nhint: a particle produced a non-finite importance "
                            "weight — check the substitution model and theta");
            raiseNumericFault(ctx);
        }

        const double essFrac = cloud.ess() / static_cast<double>(N);
        if (essFrac < res.minEssFraction) res.minEssFraction = essFrac;
        const bool lastEvent = event == n - 2;
        if (!lastEvent && cloud.ess() < opts.essThreshold * static_cast<double>(N)) {
            cloud.resample(opts.scheme);
            ++res.resamples;
        }
    }

    // Draw one genealogy from the final weighted cloud (host stream).
    const std::size_t pick = cloud.hostRng().categorical(cloud.probabilities());
    Particle& chosen = cloud.particle(pick);
    chosen.tree.setRoot(chosen.roots.front());
    res.sampled = std::move(chosen.tree);
    res.sampledLogPosterior =
        chosen.rootLogL.front() + logCoalescentPrior(res.sampled, theta);
    return res;
}

double SmcThetaLikelihood::logL(double theta, ThreadPool* pool) const {
    return runSmcPass(lik_, theta, opts_, passSeed_, pool).logZ;
}

double PooledSmcLikelihood::logL(double theta, ThreadPool* pool) const {
    double total = 0.0;
    for (std::size_t l = 0; l < loci_.size(); ++l)
        total += runSmcPass(*loci_[l].lik, theta * loci_[l].mutationScale, opts_,
                            splitMix64At(passSeed_, l), pool)
                     .logZ;
    return total;
}

std::vector<SmcPassResult> PooledSmcLikelihood::passes(double theta,
                                                       std::uint64_t passSeed,
                                                       ThreadPool* pool) const {
    std::vector<SmcPassResult> out;
    out.reserve(loci_.size());
    for (std::size_t l = 0; l < loci_.size(); ++l)
        out.push_back(runSmcPass(*loci_[l].lik, theta * loci_[l].mutationScale, opts_,
                                 splitMix64At(passSeed, l), pool));
    return out;
}

}  // namespace mpcgs
