#include "smc/smc_sampler.h"

#include <cmath>
#include <limits>
#include <utility>

#include "coalescent/prior.h"
#include "core/numeric_guard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/kernel.h"
#include "rng/splitmix.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/logspace.h"

namespace mpcgs {

void validateSmcOptions(const SmcOptions& opts) {
    if (opts.particles == 0) throw ConfigError("smc: need >= 1 particle");
    if (!(opts.essThreshold >= 0.0 && opts.essThreshold <= 1.0))
        throw ConfigError("smc: ESS threshold must lie in [0, 1]");
    if (opts.blockSize == 0) throw ConfigError("smc: particle block size must be >= 1");
}

SmcFilter::SmcFilter(LikelihoodBackend& backend, double theta, const SmcOptions& opts,
                     std::uint64_t passSeed, ThreadPool* pool)
    : backend_(backend),
      theta_(theta),
      opts_(opts),
      passSeed_(passSeed),
      pool_(pool),
      totalEvents_([&] {
          validateSmcOptions(opts);
          if (theta <= 0.0) throw ConfigError("smc: theta must be positive");
          const int n = static_cast<int>(backend.tipNames().size());
          if (n < 2) throw ConfigError("smc: need at least 2 sequences");
          return n - 1;
      }()),
      cloud_(opts.particles, backend, totalEvents_ + 1, passSeed, pool) {
    const std::size_t N = cloud_.size();
    res_.logZ = cloud_.initialLogForestLikelihood();
    inc_.resize(N);
    oldA_.resize(N);
    oldB_.resize(N);
    mergedLogL_.resize(N);
    mergedPos_.resize(N);
}

void SmcFilter::step() {
    const obs::TraceSpan span("smc_generation", "smc");
    const std::size_t N = cloud_.size();
    const int n = totalEvents_ + 1;
    const int event = event_;
    const NodeId newNode = n + event;

    // Phase one — parallel over particle blocks: each slot draws its own
    // event with its own stream, updates slot-local topology, and enqueues
    // the generation's likelihood work (one combine + one root fold per
    // particle) against pass-static backend slots. The block partition
    // depends only on (N, blockSize).
    launchBlocked(pool_, N, opts_.blockSize,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t p = begin; p < end; ++p) {
                          Particle& pt = cloud_.particle(p);
                          Mt19937& rng = cloud_.slotRng(p);
                          const int k = pt.lineageCount();
                          // Waiting time of the NEXT coalescence among k
                          // lineages: total rate k(k-1)/theta (Eq. 17
                          // summed over the k(k-1)/2 pairs).
                          const double rate = static_cast<double>(k) *
                                              static_cast<double>(k - 1) / theta_;
                          const double t = pt.lastEventTime + rng.exponential(rate);

                          // Uniform unordered pair (i, j), i < j.
                          const std::size_t i = static_cast<std::size_t>(
                              rng.below(static_cast<std::uint64_t>(k)));
                          std::size_t j = static_cast<std::size_t>(
                              rng.below(static_cast<std::uint64_t>(k - 1)));
                          if (j >= i) ++j;
                          const std::size_t a = i < j ? i : j;
                          const std::size_t b = i < j ? j : i;

                          const NodeId ra = pt.roots[a];
                          const NodeId rb = pt.roots[b];
                          const double lenA = t - pt.tree.node(ra).time;
                          const double lenB = t - pt.tree.node(rb).time;

                          pt.tree.node(newNode).time = t;
                          pt.tree.link(newNode, ra);
                          pt.tree.link(newNode, rb);

                          const ParticleCloud::Slot parent =
                              cloud_.internalSlot(p, event);
                          backend_.combine(parent, pt.slots[a], lenA, pt.slots[b],
                                           lenB);
                          backend_.rootLogLik(parent, &mergedLogL_[p]);
                          oldA_[p] = pt.rootLogL[a];
                          oldB_[p] = pt.rootLogL[b];
                          mergedPos_[p] = static_cast<std::uint32_t>(a);

                          // Replace root a with the merged subtree, drop
                          // root b (swap-with-back keeps the arrays dense;
                          // a < b, so position a survives the swap). The
                          // merged logL lands after the flush.
                          pt.roots[a] = newNode;
                          pt.slots[a] = parent;
                          pt.roots[b] = pt.roots.back();
                          pt.roots.pop_back();
                          pt.slots[b] = pt.slots.back();
                          pt.slots.pop_back();
                          pt.rootLogL[b] = pt.rootLogL.back();
                          pt.rootLogL.pop_back();
                          pt.lastEventTime = t;
                      }
                  });

    // Phase two — execute the generation's likelihood batch.
    backend_.flush(pool_);
    for (std::size_t p = 0; p < N; ++p) {
        cloud_.particle(p).rootLogL[mergedPos_[p]] = mergedLogL_[p];
        // Incremental log-weight: the partial-likelihood ratio.
        inc_[p] = mergedLogL_[p] - oldA_[p] - oldB_[p];
    }

    // Serial cloud-level bookkeeping: logZ += log(sum_i Wbar_i w_i).
    const std::span<double> logW = cloud_.logWeights();
    // Fail points live in this serial section only, so their evaluation
    // counts (one per event) stay deterministic: smc.weight poisons one
    // particle's increment, smc.collapse sinks the whole cloud (total
    // degeneracy).
    if (const auto hit = MPCGS_FAILPOINT("smc.weight"); hit.fired()) {
        if (hit.action == failpoint::Action::Nan)
            inc_[0] = std::numeric_limits<double>::quiet_NaN();
        else
            throw InjectedFaultError("smc.weight");
    }
    if (const auto hit = MPCGS_FAILPOINT("smc.collapse"); hit.fired()) {
        if (hit.action == failpoint::Action::Nan)
            for (std::size_t p = 0; p < N; ++p)
                inc_[p] = -std::numeric_limits<double>::infinity();
        else
            throw InjectedFaultError("smc.collapse");
    }
    for (std::size_t p = 0; p < N; ++p) logW[p] += inc_[p];
    const double stepLogZ = cloud_.normalizeWeights();
    res_.logZ += stepLogZ;
    if (!std::isfinite(stepLogZ)) {
        // -inf = every weight collapsed to zero (total degeneracy);
        // NaN = a non-finite importance weight. Either way the pass is
        // unrecoverable — dump the cloud state and raise.
        const bool collapse = stepLogZ == -std::numeric_limits<double>::infinity();
        std::size_t finiteW = 0;
        for (std::size_t p = 0; p < N; ++p)
            if (std::isfinite(logW[p])) ++finiteW;
        NumericFaultContext ctx;
        ctx.where = collapse ? "smc.collapse" : "smc.weight";
        ctx.value = stepLogZ;
        ctx.theta = theta_;
        ctx.seed = passSeed_;
        ctx.tick = static_cast<std::uint64_t>(event);
        ctx.detail =
            "coalescence event: " + std::to_string(event) + " of " +
            std::to_string(n - 1) + "\nparticles: " + std::to_string(N) +
            "\nfinite weights after update: " + std::to_string(finiteW) +
            "\nresamples so far: " + std::to_string(res_.resamples) +
            (collapse ? "\nhint: total ESS collapse — increase --particles or "
                        "lower the ESS threshold"
                      : "\nhint: a particle produced a non-finite importance "
                        "weight — check the substitution model and theta");
        raiseNumericFault(ctx);
    }

    const double essFrac = cloud_.ess() / static_cast<double>(N);
    if (essFrac < res_.minEssFraction) res_.minEssFraction = essFrac;
    // Metrics live in this serial section for the same reason the fail
    // points do: their counts stay deterministic, and no RNG is touched.
    obs::add(obs::Counter::SmcGenerations);
    obs::set(obs::Gauge::SmcEssFraction, essFrac);
    obs::set(obs::Gauge::SmcMinEssFraction, res_.minEssFraction);
    obs::set(obs::Gauge::SmcStepLogZ, stepLogZ);
    obs::set(obs::Gauge::SmcLogZ, res_.logZ);
    const bool lastEvent = event == totalEvents_ - 1;
    // Threshold 1.0 means "resample every step" (the documented contract):
    // a strict ESS < N comparison alone would skip exactly-uniform clouds
    // (ESS == N, e.g. the step right after a resample with equal
    // incremental weights), so the boundary is forced unconditionally.
    const bool forceResample = opts_.essThreshold >= 1.0;
    if (!lastEvent &&
        (forceResample || cloud_.ess() < opts_.essThreshold * static_cast<double>(N))) {
        cloud_.resample(opts_.scheme);
        ++res_.resamples;
        obs::add(obs::Counter::SmcResamples);
    }
    ++event_;
}

SmcPassResult SmcFilter::finish() {
    // Draw one genealogy from the final weighted cloud (host stream).
    const std::size_t pick = cloud_.hostRng().categorical(cloud_.probabilities());
    Particle& chosen = cloud_.particle(pick);
    chosen.tree.setRoot(chosen.roots.front());
    res_.sampled = std::move(chosen.tree);
    res_.sampledLogPosterior =
        chosen.rootLogL.front() + logCoalescentPrior(res_.sampled, theta_);
    res_.backend = backend_.name();
    return std::move(res_);
}

SmcPassResult runSmcPass(const DataLikelihood& lik, double theta, const SmcOptions& opts,
                         std::uint64_t passSeed, ThreadPool* pool) {
    const obs::TraceSpan span("smc_pass", "smc");
    const std::unique_ptr<LikelihoodBackend> backend =
        makeLikelihoodBackend(opts.backend, lik);
    SmcFilter filter(*backend, theta, opts, passSeed, pool);
    while (!filter.done()) filter.step();
    return filter.finish();
}

double SmcThetaLikelihood::logL(double theta, ThreadPool* pool) const {
    return runSmcPass(lik_, theta, opts_, passSeed_, pool).logZ;
}

double PooledSmcLikelihood::logL(double theta, ThreadPool* pool) const {
    double total = 0.0;
    for (std::size_t l = 0; l < loci_.size(); ++l)
        total += runSmcPass(*loci_[l].lik, theta * loci_[l].mutationScale, opts_,
                            splitMix64At(passSeed_, l), pool)
                     .logZ;
    return total;
}

std::vector<SmcPassResult> PooledSmcLikelihood::passes(double theta,
                                                       std::uint64_t passSeed,
                                                       ThreadPool* pool) const {
    std::vector<SmcPassResult> out;
    out.reserve(loci_.size());
    for (std::size_t l = 0; l < loci_.size(); ++l)
        out.push_back(runSmcPass(*loci_[l].lik, theta * loci_[l].mutationScale, opts_,
                                 splitMix64At(passSeed, l), pool));
    return out;
}

}  // namespace mpcgs
