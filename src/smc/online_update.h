// Online SMC: graft new sequences into a completed posterior cloud.
//
// The batch filter (smc_sampler.h) targets P(G | D_n, theta) for a fixed
// n-sequence alignment. Serving traffic means the dataset GROWS: a new
// sequence arrives and the posterior must be updated without re-running
// the filter from scratch. This module implements that add-sequence move
// as one sequential-importance step over the whole cloud:
//
//   1. Rebuild every particle's per-node conditional vectors against the
//      enlarged alignment's pattern set through the likelihood backend —
//      level-by-level over tree depth, so each level's combines are
//      independent and the whole cloud's level runs as ONE batched
//      flush() (the generation-launch shape of the batch filter).
//   2. For every particle, enumerate candidate attachment branches (every
//      branch of the old tree plus the root lineage), 1D-optimize the
//      attachment height per candidate against the EXACT grafted-tree
//      likelihood (tripod evaluation: outer partials above the branch x
//      lower partials below x the new tip's vectors), and sample an
//      attachment from the softmax of the optimized scores — a guided
//      proposal with a closed-form density.
//   3. Importance-reweight by the exact target/proposal ratio
//        dlogw = [logL_{n+1}(G') + logPrior_{n+1}(G')]
//              - [logL_n(G) + logPrior_n(G)] - log q(branch) - log q(h|b),
//      whose cloud average estimates log P(D_{n+1}) - log P(D_n); the
//      accumulated logZ therefore stays an estimate of the full-data
//      marginal likelihood.
//   4. When the reweighted cloud degenerates (ESS below the threshold),
//      refresh: resample ancestors and optionally rejuvenate every
//      particle with recoalesce Metropolis-Hastings sweeps against the
//      enlarged-data posterior.
//
// Determinism contract (inherited from the batch filter): particle slot i
// owns a persistent Mt19937 stream, cloud-level draws use the host
// stream, all parallel phases run over fixed particle blocks
// (launchBlocked), and backend batching is scheduling-only — an online
// update is bitwise invariant to the thread count, and a saved/loaded
// OnlineState continues bitwise-identically (serve kill+resume).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lik/felsenstein.h"
#include "lik/lik_backend.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"
#include "rng/mt19937.h"
#include "seq/alignment.h"
#include "smc/resampling.h"
#include "smc/smc_sampler.h"

namespace mpcgs {

/// One particle of the online cloud: a full genealogy over the current
/// alignment plus its normalized log-weight and cached data
/// log-likelihood (the denominator of the next add-sequence reweight).
struct OnlineParticle {
    Genealogy tree;
    double logW = 0.0;
    double logL = 0.0;
};

/// Knobs of the add-sequence move and its ESS refresh.
struct OnlineOptions {
    /// Refresh (resample + rejuvenate) when ESS < essThreshold * N after a
    /// reweight; 1.0 refreshes after every update, 0.0 never.
    double essThreshold = 0.5;
    ResamplingScheme scheme = ResamplingScheme::Systematic;
    LikBackendKind backend = kDefaultLikBackend;
    /// Particle-block grain of the parallel phases (fixed partition =>
    /// thread-count invariance).
    std::size_t blockSize = 16;
    /// Recoalesce MH sweeps per particle after an ESS-triggered resample
    /// (0 disables rejuvenation).
    std::size_t rejuvenationSweeps = 1;
    /// Fixed golden-section iterations of the per-candidate height
    /// optimization (fixed so the proposal is a deterministic function of
    /// the particle state).
    std::size_t heightSearchIterations = 24;
};

/// The warm posterior state a serve session holds per dataset: the
/// alignment seen so far, the particle cloud over it, the RNG streams and
/// the accumulated log marginal-likelihood estimate. Self-contained — the
/// checkpoint round-trip (saveOnlineState/loadOnlineState) captures
/// everything an update consumes, so resume is bitwise-identical.
struct OnlineState {
    Alignment alignment;
    std::string substModel = "F81";
    double theta = 1.0;
    std::uint64_t seed = 0;      ///< original pass seed (provenance)
    std::uint64_t updates = 0;   ///< add-sequence moves applied so far
    double logZ = 0.0;           ///< running log P(D | theta) estimate
    std::vector<OnlineParticle> particles;
    Mt19937 hostRng;             ///< cloud-level draws (resampling)
    std::vector<Mt19937> slotRngs;  ///< one stream per particle slot
};

/// Outcome of one add-sequence update.
struct OnlineUpdateResult {
    double logZIncrement = 0.0;  ///< estimate of log P(D_{n+1})/P(D_n)
    double essFraction = 1.0;    ///< ESS/N after the reweight
    bool refreshed = false;      ///< ESS refresh (resample) triggered
    std::size_t rejuvenationAccepts = 0;  ///< accepted recoalesce moves
};

/// Bootstrap an online state by running the batch filter to completion on
/// `aln` and harvesting its full cloud (every particle's tree, weight and
/// cached root likelihood), RNG streams and logZ. Throws ConfigError on
/// bad options (validateSmcOptions / SmcFilter preconditions).
OnlineState initOnlineState(const Alignment& aln, double theta, const SmcOptions& smc,
                            const std::string& substModel, std::uint64_t seed,
                            ThreadPool* pool = nullptr);

/// The add-sequence updater. Borrows the state (mutated in place) and the
/// pool; construction is cheap — per-update resources (pattern data,
/// likelihood backend) are rebuilt per call because the enlarged
/// alignment's compressed pattern set differs from the old one.
class OnlineSmcUpdater {
  public:
    OnlineSmcUpdater(OnlineState& state, const OnlineOptions& opts,
                     ThreadPool* pool = nullptr);

    /// Graft `seq` into every particle and reweight the cloud. Throws
    /// ConfigError on length mismatch or duplicate name, NumericError on a
    /// non-finite reweight (online.reweight guard).
    OnlineUpdateResult addSequence(const Sequence& seq);

  private:
    OnlineState& state_;
    OnlineOptions opts_;
    ThreadPool* pool_;
};

/// Weighted M-step theta estimate of the current cloud:
/// theta_hat = sum_i W_i * S_i / (n - 1) with S_i the sufficient statistic
/// sum_k k(k-1) t_k of particle i's genealogy — the cloud average of the
/// single-tree MLE.
double onlineThetaEstimate(const OnlineState& state);

/// ESS/N of the current normalized weights.
double onlineEssFraction(const OnlineState& state);

/// Persist / restore an online state as a v5 checkpoint (named CRC-32C
/// sections, atomic rename, two-generation retention — the standard
/// snapshot discipline). loadOnlineState throws ResumeError for files that
/// cannot be read back (missing, truncated, corrupt).
void saveOnlineState(const std::string& path, const OnlineState& state);
OnlineState loadOnlineState(const std::string& path);

/// Exact log-likelihood of `tree` with the LAST sequence of `lik`'s
/// alignment grafted as a new tip above node `attach` at height `height`
/// (tripod evaluation over lower/outer partials). `tree` must span
/// alignment sequences [0, n-1) with tip ids [0, n-1) inside an
/// (n+1)-sized arena — the remapped layout addSequence uses internally.
/// Exposed for the agreement tests; attach == tree.root() means the root
/// lineage (height above the root).
double onlineAttachmentLogLik(const DataLikelihood& lik, const Genealogy& tree,
                              NodeId attach, double height);

}  // namespace mpcgs
