// Sequential Monte Carlo over coalescent genealogies.
//
// The filter grows every particle coalescence-by-coalescence (Chen & Xie
// 2013's particle MCMC construction over Kingman's coalescent; Cappello &
// Palacios 2019 use the same event-by-event decomposition): with k live
// lineages, propose the waiting time from the prior's full coalescence
// rate k(k-1)/theta and a uniform pair to merge. The proposal density then
// equals the per-event coalescent prior (Eq. 17) exactly, so the prior
// cancels from the incremental importance weight, leaving the
// partial-forest likelihood ratio
//
//   w_t = L(forest_t) / L(forest_{t-1})
//       = L_root(new node) / (L_root(child a) * L_root(child b)),
//
// the data-lookahead term computed incrementally by the likelihood backend
// (lik/lik_backend.h). With intermediate targets pi_t = Prior_t x L_t, the
// SMC identity
//
//   log Zhat = log L(forest_0) + sum_t log( sum_i Wbar_{t-1,i} w_t,i )
//
// is an UNBIASED estimator of the marginal likelihood P(D | theta) — the
// quantity MCMC-EM can only maximize, never report. ESS-triggered adaptive
// resampling (any scheme in smc/resampling.h) keeps the cloud balanced.
//
// Parallelism: each generation is propagated in two phases. Phase one runs
// thread-parallel over fixed-size particle blocks (launchBlocked) with
// per-slot RNG streams, drawing every particle's event and ENQUEUEING its
// likelihood operations against the backend; phase two is one
// backend.flush() that executes the whole generation's batch. Backends
// affect scheduling only, so logZ is bitwise invariant to both the thread
// count and the backend choice (asserted in bench/smc_scaling.cc and
// tests/lik_backend_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/posterior.h"
#include "lik/felsenstein.h"
#include "lik/lik_backend.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"
#include "smc/particle_cloud.h"
#include "smc/resampling.h"

namespace mpcgs {

struct SmcOptions {
    std::size_t particles = 512;
    ResamplingScheme scheme = ResamplingScheme::Systematic;
    /// Resample when ESS < essThreshold * particles. The boundaries are
    /// contractual: 1.0 resamples on EVERY step (unconditionally — not
    /// just when ESS happens to dip below N), 0.0 never resamples.
    double essThreshold = 0.5;
    /// Particle-block grain of the parallel launches; fixed so the block
    /// partition (and thus the result) is independent of the thread count.
    std::size_t blockSize = 16;
    /// Likelihood execution backend. Scheduling-only: every backend
    /// produces bitwise-identical samples, weights and logZ.
    LikBackendKind backend = kDefaultLikBackend;
};

/// Throws ConfigError on nonsensical options (no particles, threshold
/// outside [0,1], zero block size).
void validateSmcOptions(const SmcOptions& opts);

/// One filter pass over the posterior P(G | D, theta).
struct SmcPassResult {
    double logZ = 0.0;              ///< unbiased log marginal likelihood estimate
    std::size_t resamples = 0;      ///< adaptive resampling events triggered
    double minEssFraction = 1.0;    ///< smallest ESS/N seen across steps
    Genealogy sampled;              ///< one genealogy drawn from the final cloud
    double sampledLogPosterior = 0.0;  ///< log P(D|G) + log P(G|theta) of it
    std::string backend;            ///< likelihood backend that ran the pass
};

/// The genealogy particle filter, stepped one coalescence generation at a
/// time. Owns the particle cloud; borrows the likelihood backend. After
/// construction the steady state allocates nothing per step (asserted in
/// tests/zero_alloc_test.cc): partials live in pass-static backend slots,
/// per-generation scratch is persistent, and resampling reuses its
/// buffers. runSmcPass is the one-shot convenience wrapper.
class SmcFilter {
  public:
    /// Throws ConfigError on bad options, non-positive theta or fewer than
    /// two sequences. `backend` must outlive the filter; `pool` (optional)
    /// parallelizes both propagation and batch execution.
    SmcFilter(LikelihoodBackend& backend, double theta, const SmcOptions& opts,
              std::uint64_t passSeed, ThreadPool* pool = nullptr);

    bool done() const { return event_ == totalEvents_; }
    /// Advance every particle by one coalescence: propagate + enqueue
    /// (parallel over particle blocks), flush the generation's likelihood
    /// batch, update weights, adaptively resample.
    void step();
    /// Draw one genealogy from the final cloud and assemble the pass
    /// result. Call exactly once, after done(); the filter is spent.
    SmcPassResult finish();

    ParticleCloud& cloud() { return cloud_; }

    /// log marginal-likelihood estimate accumulated so far (the final
    /// pass value once done()). Read by the online updater, which harvests
    /// a finished filter's cloud without consuming it through finish().
    double logZ() const { return res_.logZ; }
    double theta() const { return theta_; }

  private:
    LikelihoodBackend& backend_;
    double theta_;
    SmcOptions opts_;
    std::uint64_t passSeed_;
    ThreadPool* pool_;
    int totalEvents_;
    int event_ = 0;
    ParticleCloud cloud_;
    SmcPassResult res_;
    // Per-generation scratch, sized once (parallel phase writes, serial
    // phase reads).
    std::vector<double> inc_;         ///< incremental log-weights
    std::vector<double> oldA_;        ///< merged children's cached logL
    std::vector<double> oldB_;
    std::vector<double> mergedLogL_;  ///< batch output of the root folds
    std::vector<std::uint32_t> mergedPos_;  ///< root-array position of the merge
};

/// Run one SMC pass under opts.backend. Everything random derives from
/// `passSeed` (slot streams + cloud-level draws), so the result is a
/// deterministic function of (lik, theta, opts, passSeed) for ANY pool
/// width and ANY backend.
SmcPassResult runSmcPass(const DataLikelihood& lik, double theta, const SmcOptions& opts,
                         std::uint64_t passSeed, ThreadPool* pool = nullptr);

/// The SMC marginal-likelihood curve theta -> log Zhat(theta) behind the
/// ThetaLikelihood interface, so maximizeTheta / supportInterval drive
/// SMC-based point estimates and support curves directly. Every
/// evaluation reuses the same passSeed (common random numbers), making
/// the curve a deterministic function of theta — smooth enough for the
/// golden-section fallback even when gradient ascent stalls on residual
/// Monte-Carlo roughness.
class SmcThetaLikelihood final : public ThetaLikelihood {
  public:
    SmcThetaLikelihood(const DataLikelihood& lik, SmcOptions opts, std::uint64_t passSeed)
        : lik_(lik), opts_(opts), passSeed_(passSeed) {}

    double logL(double theta, ThreadPool* pool = nullptr) const override;

  private:
    const DataLikelihood& lik_;
    SmcOptions opts_;
    std::uint64_t passSeed_;
};

/// Multi-locus pooled marginal likelihood: independent per-locus particle
/// clouds, their logZ summed —
///   log Zhat(theta) = sum_l log Zhat_l(mu_l * theta),
/// locus l's pass seeded splitMix64At(passSeed, l) so loci decorrelate.
class PooledSmcLikelihood final : public ThetaLikelihood {
  public:
    struct LocusTerm {
        const DataLikelihood* lik = nullptr;
        double mutationScale = 1.0;
    };

    PooledSmcLikelihood(std::vector<LocusTerm> loci, SmcOptions opts,
                        std::uint64_t passSeed)
        : loci_(std::move(loci)), opts_(opts), passSeed_(passSeed) {}

    double logL(double theta, ThreadPool* pool = nullptr) const override;

    std::size_t locusCount() const { return loci_.size(); }

    /// Full per-locus pass results at one theta (pooled logZ = sum, plus
    /// each locus's sampled genealogy) — the PMMH inner evaluation.
    std::vector<SmcPassResult> passes(double theta, std::uint64_t passSeed,
                                      ThreadPool* pool = nullptr) const;

  private:
    std::vector<LocusTerm> loci_;
    SmcOptions opts_;
    std::uint64_t passSeed_;
};

}  // namespace mpcgs
