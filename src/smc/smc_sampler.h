// Sequential Monte Carlo over coalescent genealogies.
//
// The filter grows every particle coalescence-by-coalescence (Chen & Xie
// 2013's particle MCMC construction over Kingman's coalescent; Cappello &
// Palacios 2019 use the same event-by-event decomposition): with k live
// lineages, propose the waiting time from the prior's full coalescence
// rate k(k-1)/theta and a uniform pair to merge. The proposal density then
// equals the per-event coalescent prior (Eq. 17) exactly, so the prior
// cancels from the incremental importance weight, leaving the
// partial-forest likelihood ratio
//
//   w_t = L(forest_t) / L(forest_{t-1})
//       = L_root(new node) / (L_root(child a) * L_root(child b)),
//
// the data-lookahead term computed incrementally by lik/forest_eval.h.
// With intermediate targets pi_t = Prior_t x L_t, the SMC identity
//
//   log Zhat = log L(forest_0) + sum_t log( sum_i Wbar_{t-1,i} w_t,i )
//
// is an UNBIASED estimator of the marginal likelihood P(D | theta) — the
// quantity MCMC-EM can only maximize, never report. ESS-triggered adaptive
// resampling (any scheme in smc/resampling.h) keeps the cloud balanced.
//
// Parallelism: particle propagation + weighting run thread-parallel over
// fixed-size particle blocks via launchBlocked, with per-slot RNG streams,
// so logZ is bitwise invariant to the thread count (asserted in
// bench/smc_scaling.cc and tests/smc_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/posterior.h"
#include "lik/felsenstein.h"
#include "par/thread_pool.h"
#include "phylo/tree.h"
#include "smc/resampling.h"

namespace mpcgs {

struct SmcOptions {
    std::size_t particles = 512;
    ResamplingScheme scheme = ResamplingScheme::Systematic;
    /// Resample when ESS < essThreshold * particles (1.0 = every step,
    /// 0.0 = never).
    double essThreshold = 0.5;
    /// Particle-block grain of the parallel launches; fixed so the block
    /// partition (and thus the result) is independent of the thread count.
    std::size_t blockSize = 16;
};

/// Throws ConfigError on nonsensical options (no particles, threshold
/// outside [0,1], zero block size).
void validateSmcOptions(const SmcOptions& opts);

/// One filter pass over the posterior P(G | D, theta).
struct SmcPassResult {
    double logZ = 0.0;              ///< unbiased log marginal likelihood estimate
    std::size_t resamples = 0;      ///< adaptive resampling events triggered
    double minEssFraction = 1.0;    ///< smallest ESS/N seen across steps
    Genealogy sampled;              ///< one genealogy drawn from the final cloud
    double sampledLogPosterior = 0.0;  ///< log P(D|G) + log P(G|theta) of it
};

/// Run one SMC pass. Everything random derives from `passSeed` (slot
/// streams + cloud-level draws), so the result is a deterministic function
/// of (lik, theta, opts, passSeed) for ANY pool width.
SmcPassResult runSmcPass(const DataLikelihood& lik, double theta, const SmcOptions& opts,
                         std::uint64_t passSeed, ThreadPool* pool = nullptr);

/// The SMC marginal-likelihood curve theta -> log Zhat(theta) behind the
/// ThetaLikelihood interface, so maximizeTheta / supportInterval drive
/// SMC-based point estimates and support curves directly. Every
/// evaluation reuses the same passSeed (common random numbers), making
/// the curve a deterministic function of theta — smooth enough for the
/// golden-section fallback even when gradient ascent stalls on residual
/// Monte-Carlo roughness.
class SmcThetaLikelihood final : public ThetaLikelihood {
  public:
    SmcThetaLikelihood(const DataLikelihood& lik, SmcOptions opts, std::uint64_t passSeed)
        : lik_(lik), opts_(opts), passSeed_(passSeed) {}

    double logL(double theta, ThreadPool* pool = nullptr) const override;

  private:
    const DataLikelihood& lik_;
    SmcOptions opts_;
    std::uint64_t passSeed_;
};

/// Multi-locus pooled marginal likelihood: independent per-locus particle
/// clouds, their logZ summed —
///   log Zhat(theta) = sum_l log Zhat_l(mu_l * theta),
/// locus l's pass seeded splitMix64At(passSeed, l) so loci decorrelate.
class PooledSmcLikelihood final : public ThetaLikelihood {
  public:
    struct LocusTerm {
        const DataLikelihood* lik = nullptr;
        double mutationScale = 1.0;
    };

    PooledSmcLikelihood(std::vector<LocusTerm> loci, SmcOptions opts,
                        std::uint64_t passSeed)
        : loci_(std::move(loci)), opts_(opts), passSeed_(passSeed) {}

    double logL(double theta, ThreadPool* pool = nullptr) const override;

    std::size_t locusCount() const { return loci_.size(); }

    /// Full per-locus pass results at one theta (pooled logZ = sum, plus
    /// each locus's sampled genealogy) — the PMMH inner evaluation.
    std::vector<SmcPassResult> passes(double theta, std::uint64_t passSeed,
                                      ThreadPool* pool = nullptr) const;

  private:
    std::vector<LocusTerm> loci_;
    SmcOptions opts_;
    std::uint64_t passSeed_;
};

}  // namespace mpcgs
