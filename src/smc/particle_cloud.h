// ParticleCloud — the state container of the genealogy particle filter.
//
// N particles, each a partially-built genealogy (a forest of live subtree
// roots, growing coalescence-by-coalescence toward a full tree), plus the
// cloud-level weight machinery: 64-byte-aligned log-weight storage,
// log-space normalization (util/logspace), ESS, and ancestor-indexed
// resampling under any of the four schemes in smc/resampling.h.
//
// Conditional-likelihood state lives in a LikelihoodBackend
// (lik/lik_backend.h): a particle's live roots reference backend-owned
// partials SLOTS rather than carrying their own vectors. The slot map is
// static for a whole pass —
//
//   tip slots      [0, tips): shared read-only by every particle,
//   internal slots tips + p*(tips-1) + e: particle p's node for event e,
//   staging region p == N: one spare particle's worth, used to break
//                  copy cycles during resampling,
//
// so propagation never allocates: event e of particle p always writes the
// same slot, and resampling copies slot contents between fixed regions
// (Kahn-ordered so every copy reads pre-resample state, cycles broken
// through the staging region).
//
// Determinism contract (mirrors the sampler runtime): every particle SLOT
// owns a fixed SplitMix64-derived Mt19937 stream for the whole pass.
// Resampling copies particle STATES between slots but never moves the
// streams, and propagation touches only slot-local state, so a cloud
// stepped thread-parallel over particle blocks (par/kernel.h
// launchBlocked) is bitwise invariant to the worker count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lik/lik_backend.h"
#include "phylo/tree.h"
#include "rng/mt19937.h"
#include "smc/resampling.h"
#include "util/aligned.h"

namespace mpcgs {

/// One particle: a forest over n tips after `coalescences()` merge events.
/// Live roots reference their subtree partials by backend slot and cache
/// their root log-likelihood so one coalescence costs a single combine().
struct Particle {
    Genealogy tree;             ///< arena; topology grows as events land
    std::vector<NodeId> roots;  ///< live subtree roots, oldest arena ids
    std::vector<LikelihoodBackend::Slot> slots;  ///< parallel to roots
    std::vector<double> rootLogL;                ///< parallel to roots
    double lastEventTime = 0.0;  ///< most ancient coalescence so far

    int lineageCount() const { return static_cast<int>(roots.size()); }
};

class ParticleCloud {
  public:
    using Slot = LikelihoodBackend::Slot;

    /// A cloud of `n` particles over `backend`'s alignment tips, every
    /// particle the all-tips forest, weights uniform. Sizes the backend's
    /// slot pool, batches the tip initializations through one flush on
    /// `pool`. Slot i's RNG stream is splitMix64At(passSeed, i + 1);
    /// stream 0 is reserved for the cloud-level draws (resampling, final
    /// genealogy selection).
    ParticleCloud(std::size_t n, LikelihoodBackend& backend, int tipCount,
                  std::uint64_t passSeed, ThreadPool* pool = nullptr);

    std::size_t size() const { return particles_.size(); }
    Particle& particle(std::size_t i) { return particles_[i]; }
    const Particle& particle(std::size_t i) const { return particles_[i]; }
    Mt19937& slotRng(std::size_t i) { return slotRngs_[i]; }
    Mt19937& hostRng() { return hostRng_; }
    LikelihoodBackend& backend() { return backend_; }

    /// Backend slot owned by particle `p`'s internal node of coalescence
    /// event `e` (in [0, tips-1)); the pass-static write target.
    Slot internalSlot(std::size_t p, int e) const {
        return static_cast<Slot>(tipCount_ + p * (tipCount_ - 1) +
                                 static_cast<std::size_t>(e));
    }

    /// The log of the forest likelihood every particle shares at step 0
    /// (the deterministic initial state's weight — part of logZ).
    double initialLogForestLikelihood() const { return logL0_; }

    std::span<double> logWeights() { return {logW_.data(), particles_.size()}; }
    std::span<const double> logWeights() const { return {logW_.data(), particles_.size()}; }

    /// Normalize the log-weights in place (subtract their logSumExp) and
    /// refresh the cached linear probabilities; returns the logSumExp.
    double normalizeWeights();

    /// Linear-space normalized weights (valid after normalizeWeights()).
    std::span<const double> probabilities() const { return probs_; }

    /// ESS of the current normalized weights.
    double ess() const { return weightEss(probs_); }

    /// Resample ancestors under `scheme` from the current probabilities
    /// (drawn with the host stream), copy particle states slot-by-slot,
    /// and reset the weights to uniform. Slot RNG streams stay put. All
    /// scratch is persistent: steady-state resampling allocates nothing.
    void resample(ResamplingScheme scheme);

    /// Ancestor indices chosen by the most recent resample() (diagnostics).
    const std::vector<std::uint32_t>& lastAncestry() const { return ancestry_; }

  private:
    /// Event index of an internal slot (inverse of internalSlot's e).
    int eventOfSlot(Slot s) const {
        return static_cast<int>((s - tipCount_) % (tipCount_ - 1));
    }
    /// Copy particle state `src` into `dst`: genealogy, roots and cached
    /// logL by value, partials slot-by-slot through the backend with
    /// internal slots remapped into `dstRegion`'s slot region (the staging
    /// region is dstRegion == size()).
    void assignParticle(Particle& dst, const Particle& src, std::size_t dstRegion);

    LikelihoodBackend& backend_;
    std::size_t tipCount_ = 0;
    std::vector<Particle> particles_;
    std::vector<Mt19937> slotRngs_;
    Mt19937 hostRng_;
    AlignedDoubles logW_;
    std::vector<double> probs_;
    std::vector<std::uint32_t> ancestry_;
    double logL0_ = 0.0;

    // Persistent resample scratch (Kahn ordering + cycle staging).
    std::vector<std::uint32_t> pendingReads_;
    std::vector<std::uint32_t> copyQueue_;
    std::vector<std::uint8_t> copied_;
    Particle staged_;  ///< cycle breaker; its internal slots live in region N
};

}  // namespace mpcgs
