// ParticleCloud — the state container of the genealogy particle filter.
//
// N particles, each a partially-built genealogy (a forest of live subtree
// roots with cached conditional-likelihood vectors, growing
// coalescence-by-coalescence toward a full tree), plus the cloud-level
// weight machinery: 64-byte-aligned log-weight storage, log-space
// normalization (util/logspace), ESS, and ancestor-indexed resampling
// under any of the four schemes in smc/resampling.h.
//
// Determinism contract (mirrors the sampler runtime): every particle SLOT
// owns a fixed SplitMix64-derived Mt19937 stream for the whole pass.
// Resampling copies particle STATES between slots but never moves the
// streams, and propagation touches only slot-local state, so a cloud
// stepped thread-parallel over particle blocks (par/kernel.h
// launchBlocked) is bitwise invariant to the worker count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lik/forest_eval.h"
#include "phylo/tree.h"
#include "rng/mt19937.h"
#include "smc/resampling.h"
#include "util/aligned.h"

namespace mpcgs {

/// One particle: a forest over n tips after `coalescences()` merge events.
/// Live roots carry their subtree conditional vectors and cached root
/// log-likelihood so one coalescence costs a single combine().
struct Particle {
    Genealogy tree;                        ///< arena; topology grows as events land
    std::vector<NodeId> roots;             ///< live subtree roots, oldest arena ids
    std::vector<SubtreePartials> partials; ///< parallel to roots
    std::vector<double> rootLogL;          ///< parallel to roots (cached factors)
    double lastEventTime = 0.0;            ///< most ancient coalescence so far

    int lineageCount() const { return static_cast<int>(roots.size()); }
};

class ParticleCloud {
  public:
    /// A cloud of `n` particles over the tips of `eval`'s alignment, every
    /// particle the all-tips forest, weights uniform. Slot i's RNG stream
    /// is splitMix64At(passSeed, i + 1); stream 0 is reserved for the
    /// cloud-level draws (resampling, final genealogy selection).
    ParticleCloud(std::size_t n, const ForestEvaluator& eval, int tipCount,
                  std::uint64_t passSeed);

    std::size_t size() const { return particles_.size(); }
    Particle& particle(std::size_t i) { return particles_[i]; }
    const Particle& particle(std::size_t i) const { return particles_[i]; }
    Mt19937& slotRng(std::size_t i) { return slotRngs_[i]; }
    Mt19937& hostRng() { return hostRng_; }

    /// The log of the forest likelihood every particle shares at step 0
    /// (the deterministic initial state's weight — part of logZ).
    double initialLogForestLikelihood() const { return logL0_; }

    std::span<double> logWeights() { return {logW_.data(), particles_.size()}; }
    std::span<const double> logWeights() const { return {logW_.data(), particles_.size()}; }

    /// Normalize the log-weights in place (subtract their logSumExp) and
    /// refresh the cached linear probabilities; returns the logSumExp.
    double normalizeWeights();

    /// Linear-space normalized weights (valid after normalizeWeights()).
    std::span<const double> probabilities() const { return probs_; }

    /// ESS of the current normalized weights.
    double ess() const { return weightEss(probs_); }

    /// Resample ancestors under `scheme` from the current probabilities
    /// (drawn with the host stream), copy particle states slot-by-slot,
    /// and reset the weights to uniform. Slot RNG streams stay put.
    void resample(ResamplingScheme scheme);

    /// Ancestor indices chosen by the most recent resample() (diagnostics).
    const std::vector<std::uint32_t>& lastAncestry() const { return ancestry_; }

  private:
    std::vector<Particle> particles_;
    std::vector<Mt19937> slotRngs_;
    Mt19937 hostRng_;
    AlignedDoubles logW_;
    std::vector<double> probs_;
    std::vector<std::uint32_t> ancestry_;
    double logL0_ = 0.0;
};

}  // namespace mpcgs
