// Particle-marginal Metropolis-Hastings over theta (Andrieu, Doucet &
// Holenstein 2010; Chen & Xie 2013 apply it to Kingman's coalescent).
//
// Each chain carries a scalar theta; one transition proposes a log-normal
// random walk theta' = theta * exp(sigma * z) and runs a fresh SMC pass
// (per-locus clouds, pooled logZ) at theta'. Because log Zhat is an
// UNBIASED estimator of P(D | theta), accepting with the noisy estimate in
// place of the exact marginal targets the exact posterior over theta —
// the pseudo-marginal property. Under the scale-invariant prior
// p(theta) ∝ 1/theta, the log-normal proposal's Jacobian cancels the
// prior ratio exactly, so the log acceptance ratio is just
// logZhat' - logZhat (bounded to [thetaMin, thetaMax] to stay proper).
//
// PmmhSampler implements the PR 2 Sampler interface: chains step in
// parallel through ChainScheduler (inner SMC passes claim the pool only
// for a single chain, mirroring the MultiLocusRun nesting discipline),
// every chain owns a SplitMix64-derived Mt19937 stream plus a
// counter-based pass-seed sequence (stateless given the serialized
// evaluation counter, so checkpoint/resume is bitwise-identical), samples
// stream to any SampleSink, and R-hat/ESS stopping applies to the theta
// log-posterior trace. Snapshots carry the 'PSMC' section tag (format v4).
#pragma once

#include <cstdint>
#include <vector>

#include "mcmc/sampler.h"
#include "mcmc/schedule.h"
#include "rng/mt19937.h"
#include "smc/smc_sampler.h"

namespace mpcgs {

/// Snapshot section tag of PmmhSampler payloads: "PSMC" little-endian.
inline constexpr std::uint32_t kPmmhSnapshotTag = 0x434D5350u;

struct PmmhOptions {
    std::size_t chains = 2;
    double proposalSigma = 0.4;   ///< sd of the log-normal random walk
    double thetaMin = 1e-6;       ///< prior support bounds (1/theta within)
    double thetaMax = 1e6;
    std::uint64_t seed = 1;
    SmcOptions smc;               ///< inner filter geometry
};

/// Throws ConfigError on nonsensical options (no chains, non-positive
/// sigma, empty/inverted prior support, bad SMC geometry).
void validatePmmhOptions(const PmmhOptions& opts);

class PmmhSampler final : public Sampler {
  public:
    /// `marginal` supplies the per-locus SMC passes (summed into the
    /// pooled logZ) and must outlive the sampler. `pool` parallelizes the
    /// chain axis when chains > 1, otherwise the single chain's particle
    /// blocks; results are bitwise identical for any pool width.
    PmmhSampler(const PooledSmcLikelihood& marginal, double thetaInit,
                const PmmhOptions& opts, ThreadPool* pool = nullptr);

    std::uint32_t chainCount() const override {
        return static_cast<std::uint32_t>(chains_.size());
    }
    std::size_t samplesPerTick() const override { return chains_.size(); }
    void tick(SampleSink* sink) override;
    const Genealogy& continuation() const override { return chains_.front().tree; }
    SamplerStats stats() const override;

    void save(CheckpointWriter& w) const override;
    void load(CheckpointReader& r) override;

    double chainTheta(std::size_t c) const { return chains_[c].theta; }
    double chainLogZ(std::size_t c) const { return chains_[c].logZ; }
    /// Per-chain theta values recorded at every SAMPLING tick (burn-in
    /// ticks drive the chain but record nothing) — the posterior sample.
    const std::vector<double>& thetaTrace(std::size_t c) const {
        return chains_[c].trace;
    }

  private:
    struct Chain {
        double theta = 0.0;
        double logZ = 0.0;
        Genealogy tree;              ///< locus-0 genealogy of the last accepted pass
        Mt19937 rng;
        std::uint64_t evals = 0;     ///< SMC passes run (indexes the pass-seed sequence)
        std::uint64_t steps = 0;     ///< MH transitions attempted
        std::uint64_t accepted = 0;
        std::vector<double> trace;
        /// Last SMC marginal-likelihood estimate this chain computed (the
        /// proposal's, whether or not it was accepted). Checked by the
        /// numeric guard in the serial section after each tick — a NaN
        /// logZhat would otherwise be silently rejected by the NaN-false
        /// acceptance comparison and leave no trace. Transient diagnostic
        /// state, not serialized.
        double lastProposalLogZ = 0.0;
        double lastProposalTheta = 0.0;
    };

    void stepChain(std::size_t c);
    std::uint64_t passSeed(std::size_t c, std::uint64_t eval) const;

    const PooledSmcLikelihood& marginal_;
    PmmhOptions opts_;
    ChainScheduler scheduler_;
    ThreadPool* pool_;
    std::vector<Chain> chains_;
    bool initialized_ = false;     ///< chains ran their theta0 pass (lazy: load skips it)
    std::uint64_t sampleRounds_ = 0;
};

}  // namespace mpcgs
