// Resampling kernels for the particle-filter subsystem.
//
// Given normalized particle weights w_1..w_N, a resampling scheme draws N
// ancestor indices with E[offspring_i] = N * w_i (unbiasedness — verified
// statistically in tests/resampling_test.cc). The schemes differ only in
// the variance of the offspring counts:
//
//   Multinomial  N iid categorical draws; the baseline, highest variance.
//   Stratified   one uniform per 1/N stratum of the CDF.
//   Systematic   a single uniform shared by all strata (lowest variance in
//                practice; Douc, Cappe & Moulines 2005).
//   Residual     floor(N w_i) deterministic copies + multinomial on the
//                fractional remainders.
//
// Resampling is triggered adaptively: only when the effective sample size
// N_eff = 1 / sum_i w_i^2 (Kong, Liu & Wong 1994) drops below a threshold
// fraction of N, so well-balanced clouds keep their full weight history.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rng/rng.h"

namespace mpcgs {

enum class ResamplingScheme {
    Multinomial,
    Stratified,
    Systematic,
    Residual,
};

/// Canonical lower-case name ("multinomial", "stratified", ...).
std::string resamplingSchemeName(ResamplingScheme s);

/// Parse a scheme name; throws ConfigError for unknown names.
ResamplingScheme parseResamplingScheme(const std::string& name);

/// Effective sample size 1 / sum_i w_i^2 of normalized weights. A uniform
/// cloud has ESS = N; a single-atom cloud has ESS = 1.
double weightEss(std::span<const double> probs);

/// ESS straight from unnormalized log-weights (normalizes internally).
double essFromLogWeights(std::span<const double> logWeights);

/// Draw N ancestor indices from normalized weights `probs` (N =
/// probs.size()) under `scheme`, appending into `ancestors` (cleared
/// first). RNG consumption is a deterministic function of (scheme, probs)
/// — stratified/systematic always draw N/1 uniforms, while multinomial
/// and residual's leftover stage draw one categorical per non-deterministic
/// offspring — so replaying a checkpointed stream reproduces the same
/// ancestry exactly.
void resampleAncestors(ResamplingScheme scheme, std::span<const double> probs,
                       Rng& rng, std::vector<std::uint32_t>& ancestors);

}  // namespace mpcgs
