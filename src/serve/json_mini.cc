#include "serve/json_mini.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mpcgs::json_mini {
namespace {

class Cursor {
  public:
    explicit Cursor(const std::string& text) : text_(text) {}

    void skipWs() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    bool done() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }
    char take() { return text_[pos_++]; }

    void expect(char c) {
        skipWs();
        if (done() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    [[noreturn]] void fail(const std::string& what) const {
        throw ParseError("json: " + what + " at position " + std::to_string(pos_));
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (done()) fail("unterminated string");
            char c = take();
            if (c == '"') return out;
            if (c == '\\') {
                if (done()) fail("unterminated escape");
                const char e = take();
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    default: fail(std::string("unsupported escape '\\") + e + "'");
                }
            } else {
                out += c;
            }
        }
    }

    Value value() {
        skipWs();
        if (done()) fail("expected a value");
        const char c = peek();
        Value v;
        if (c == '"') {
            v.kind = Value::Kind::String;
            v.str = string();
            return v;
        }
        if (c == 't' || c == 'f') {
            const std::string word = c == 't' ? "true" : "false";
            for (char w : word) {
                if (done() || take() != w) fail("malformed literal");
            }
            v.kind = Value::Kind::Bool;
            v.boolean = c == 't';
            return v;
        }
        if (c == '{' || c == '[') fail("nested objects/arrays are not supported");
        if (c == 'n') fail("null is not supported");
        // Number via strtod over the remaining text.
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        const double num = std::strtod(start, &end);
        if (end == start) fail("expected a number");
        pos_ += static_cast<std::size_t>(end - start);
        v.kind = Value::Kind::Number;
        v.num = num;
        return v;
    }

  private:
    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

Object parse(const std::string& text) {
    Cursor cur(text);
    Object obj;
    cur.expect('{');
    cur.skipWs();
    if (!cur.done() && cur.peek() == '}') {
        cur.take();
        return obj;
    }
    while (true) {
        cur.skipWs();
        const std::string key = cur.string();
        cur.expect(':');
        obj[key] = cur.value();
        cur.skipWs();
        if (cur.done()) cur.fail("unterminated object");
        const char c = cur.take();
        if (c == '}') break;
        if (c != ',') cur.fail("expected ',' or '}'");
    }
    cur.skipWs();
    if (!cur.done()) cur.fail("trailing content after object");
    return obj;
}

const std::string& getString(const Object& o, const std::string& key) {
    const auto it = o.find(key);
    if (it == o.end()) throw ParseError("json: missing field \"" + key + "\"");
    if (it->second.kind != Value::Kind::String)
        throw ParseError("json: field \"" + key + "\" must be a string");
    return it->second.str;
}

double getNumber(const Object& o, const std::string& key) {
    const auto it = o.find(key);
    if (it == o.end()) throw ParseError("json: missing field \"" + key + "\"");
    if (it->second.kind != Value::Kind::Number)
        throw ParseError("json: field \"" + key + "\" must be a number");
    return it->second.num;
}

bool has(const Object& o, const std::string& key) { return o.find(key) != o.end(); }

std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    out += '"';
    return out;
}

Writer& Writer::str(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ',';
    body_ += quote(key) + ':' + quote(value);
    return *this;
}

Writer& Writer::num(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    if (!body_.empty()) body_ += ',';
    body_ += quote(key) + ':' + buf;
    return *this;
}

Writer& Writer::boolean(const std::string& key, bool value) {
    if (!body_.empty()) body_ += ',';
    body_ += quote(key) + ':' + (value ? "true" : "false");
    return *this;
}

std::string Writer::finish() const { return "{" + body_ + "}"; }

}  // namespace mpcgs::json_mini
