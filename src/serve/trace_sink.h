// CSV trace sink for `mpcgs serve --trace FILE` — one row per accepted
// online update, fed the highest-weight particle the daemon hands every
// sink. Lives in the library (not the tool main) so tests can drive the
// exact sink the daemon runs: header row on open, flush after every row so
// monitors tailing the file — and a SIGTERM'd daemon's last accepted
// update — always see complete lines.
#pragma once

#include <fstream>
#include <string>

#include "mcmc/sampler.h"
#include "util/error.h"

namespace mpcgs {

class CsvTraceSink final : public SampleSink {
  public:
    explicit CsvTraceSink(const std::string& path) : out_(path) {
        if (!out_) throw ConfigError("serve: cannot open --trace file " + path);
        out_ << "update,log_posterior,tree_height\n";
        out_.flush();
    }

    void consume(const Genealogy& g, const SampleTag& tag) override {
        out_ << tag.index << ',' << tag.logPosterior << ',' << g.node(g.root()).time
             << '\n';
        out_.flush();  // monitors tail the file while the daemon runs
        ++rows_;
    }

    /// Rows written so far (excluding the header).
    std::size_t rows() const { return rows_; }

  private:
    std::ofstream out_;
    std::size_t rows_ = 0;
};

}  // namespace mpcgs
