// mpcgs serve — a long-running daemon over warm online posterior state.
//
// The batch tools are one-shot: load data, infer, exit. Serving traffic
// inverts that: the posterior (an OnlineState, src/smc/online_update.h)
// stays warm in memory, and clients submit jobs as newline-delimited flat
// JSON over a Unix-domain or loopback TCP socket:
//
//   {"job":"add_sequence","name":"t9","sequence":"ACGT..."}
//       -> graft the sequence into every particle (one online SMC update),
//          checkpoint the new state, reply with the logZ increment / ESS /
//          refresh diagnostics
//   {"job":"estimate"}   -> current weighted theta estimate + ESS
//   {"job":"logz"}       -> accumulated log marginal-likelihood estimate
//   {"job":"metrics"}    -> live metrics registry (src/obs/) as flat JSON;
//                           {"format":"prometheus"} embeds the text
//                           exposition instead (escaped in "text")
//   {"job":"snapshot"}   -> write a checkpoint now
//   {"job":"shutdown"}   -> final checkpoint, clean exit
//
// Every reply is one JSON line with an "ok" field. Job-level problems
// (malformed JSON, unknown job, duplicate sequence name, length mismatch)
// are REPLIES ({"ok":false,"kind":...,"error":...}) — a bad client must
// not kill the daemon. Runtime faults keep the shared taxonomy: a numeric
// fault in the update raises NumericError (exit 5), checkpoint write
// failure CheckpointError (exit 6), supervisor stop (SIGTERM / deadline)
// snapshots and raises InterruptedError (exit 3) so a restarted daemon
// resumes bitwise-identically from --state.
//
// ServeSession is the transport-free core (job line in, reply line out) —
// tests and the fault-injection matrix drive it in-process; the socket
// loop is a thin poll()-based accept/readline wrapper that handles one
// client at a time (updates mutate the one shared posterior state, so job
// execution is inherently serial; the thread pool parallelizes INSIDE an
// update instead).
#pragma once

#include <cstdint>
#include <string>

#include "core/supervisor.h"
#include "mcmc/sampler.h"
#include "par/thread_pool.h"
#include "smc/online_update.h"

namespace mpcgs {

class ServeSession {
  public:
    /// Takes ownership of the warm state. `statePath` is where checkpoints
    /// land (after every accepted update, on snapshot/shutdown jobs and on
    /// supervisor stop); empty disables checkpointing. `sink` (optional)
    /// receives the highest-weight particle's genealogy after every
    /// accepted update — the streaming surface monitors already consume.
    ServeSession(OnlineState state, std::string statePath, const OnlineOptions& opts,
                 ThreadPool* pool = nullptr, const RunSupervisor* supervisor = nullptr,
                 SampleSink* sink = nullptr);

    /// Execute one job line and return the reply line (no trailing
    /// newline). Job-level errors become {"ok":false,...} replies; the
    /// serve.accept fail point (fired per job, before dispatch) raises
    /// InjectedFaultError, and NumericError / CheckpointError /
    /// InterruptedError propagate per the shared exit-code taxonomy.
    std::string handleLine(const std::string& line);

    /// True once a shutdown job was accepted; the socket loop drains and
    /// returns cleanly.
    bool shutdownRequested() const { return shutdown_; }

    /// Surface a pending supervisor stop: final snapshot, then
    /// InterruptedError. No-op otherwise. The socket loop calls this on
    /// idle poll ticks so SIGTERM lands within ~200ms even with no client
    /// connected; handleLine runs the same check before each job.
    void handleIdle();

    /// Write a checkpoint of the current state now (supervisor retry
    /// policy applies); no-op without a state path.
    void snapshot();

    const OnlineState& state() const { return state_; }
    std::uint64_t jobsHandled() const { return jobs_; }

  private:
    std::string dispatch(const std::string& line);

    OnlineState state_;
    std::string statePath_;
    OnlineOptions opts_;
    ThreadPool* pool_;
    const RunSupervisor* supervisor_;
    SampleSink* sink_;
    bool shutdown_ = false;
    std::uint64_t jobs_ = 0;
};

/// Where the daemon listens: a Unix-domain socket path, or TCP on
/// host:port when `unixPath` is empty.
struct ServeEndpoint {
    std::string unixPath;
    std::string host = "127.0.0.1";
    int port = 0;
};

/// Bind, announce "listening on <addr>" on stdout, and serve one client
/// at a time until a shutdown job lands (returns after a final snapshot)
/// or the session's supervisor requests a stop (final snapshot, then
/// InterruptedError). Socket-level failures raise ConfigError (bad
/// endpoint) or Error (I/O).
void runServeLoop(ServeSession& session, const ServeEndpoint& endpoint);

/// Client side of the protocol for tooling/CI: connect, send `line`,
/// return the first reply line. Throws Error on connect/IO failure.
std::string serveSendLine(const ServeEndpoint& endpoint, const std::string& line);

}  // namespace mpcgs
