#include "serve/serve.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <utility>

#include "coalescent/prior.h"
#include "mcmc/checkpoint.h"
#include "serve/json_mini.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

std::string errorReply(const std::string& kind, const std::string& what) {
    json_mini::Writer w;
    w.boolean("ok", false).str("kind", kind).str("error", what);
    return w.finish();
}

/// Close-on-destruction file descriptor.
struct Fd {
    int fd = -1;
    Fd() = default;
    explicit Fd(int f) : fd(f) {}
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;
    Fd(Fd&& o) noexcept : fd(std::exchange(o.fd, -1)) {}
    Fd& operator=(Fd&& o) noexcept {
        if (this != &o) {
            reset();
            fd = std::exchange(o.fd, -1);
        }
        return *this;
    }
    ~Fd() { reset(); }
    void reset() {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
    explicit operator bool() const { return fd >= 0; }
};

[[noreturn]] void sockFail(const std::string& op) {
    throw Error("serve: " + op + ": " + std::strerror(errno));
}

Fd bindEndpoint(const ServeEndpoint& ep, std::string& announce) {
    if (!ep.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unixPath.size() >= sizeof(addr.sun_path))
            throw ConfigError("serve: socket path too long: " + ep.unixPath);
        std::strncpy(addr.sun_path, ep.unixPath.c_str(), sizeof(addr.sun_path) - 1);
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd) sockFail("socket");
        ::unlink(ep.unixPath.c_str());  // stale socket from a previous run
        if (::bind(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
            sockFail("bind " + ep.unixPath);
        if (::listen(fd.fd, 4) != 0) sockFail("listen");
        announce = "unix:" + ep.unixPath;
        return fd;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw ConfigError("serve: bad host address: " + ep.host);
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) sockFail("socket");
    const int one = 1;
    ::setsockopt(fd.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        sockFail("bind " + ep.host + ":" + std::to_string(ep.port));
    if (::listen(fd.fd, 4) != 0) sockFail("listen");
    socklen_t len = sizeof(addr);
    ::getsockname(fd.fd, reinterpret_cast<sockaddr*>(&addr), &len);
    announce = "tcp:" + ep.host + ":" + std::to_string(ntohs(addr.sin_port));
    return fd;
}

Fd connectEndpoint(const ServeEndpoint& ep) {
    if (!ep.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unixPath.size() >= sizeof(addr.sun_path))
            throw ConfigError("serve: socket path too long: " + ep.unixPath);
        std::strncpy(addr.sun_path, ep.unixPath.c_str(), sizeof(addr.sun_path) - 1);
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd) sockFail("socket");
        if (::connect(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
            sockFail("connect " + ep.unixPath);
        return fd;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw ConfigError("serve: bad host address: " + ep.host);
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) sockFail("socket");
    if (::connect(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        sockFail("connect " + ep.host + ":" + std::to_string(ep.port));
    return fd;
}

void writeAll(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            sockFail("write");
        }
        off += static_cast<std::size_t>(n);
    }
}

}  // namespace

ServeSession::ServeSession(OnlineState state, std::string statePath,
                           const OnlineOptions& opts, ThreadPool* pool,
                           const RunSupervisor* supervisor, SampleSink* sink)
    : state_(std::move(state)),
      statePath_(std::move(statePath)),
      opts_(opts),
      pool_(pool),
      supervisor_(supervisor),
      sink_(sink) {
    // Validate state/options up front (throws ConfigError) so a broken
    // deployment fails at startup, not on the first job.
    OnlineSmcUpdater probe(state_, opts_, pool_);
    (void)probe;
    if (sink_) sink_->beginRun(1);
}

std::string ServeSession::handleLine(const std::string& line) {
    ++jobs_;
    // The accept fail point fires once per job, BEFORE dispatch, so fault
    // tests can kill the daemon at a job boundary with a typed error.
    if (const auto hit = MPCGS_FAILPOINT("serve.accept"); hit.fired()) {
        if (hit.action == failpoint::Action::Errno)
            throw InjectedFaultError("serve.accept: " +
                                     std::string(std::strerror(hit.errnum)));
        throw InjectedFaultError("serve.accept");
    }
    // Cooperative stop at the job boundary (never mid-update): snapshot,
    // then surface the stop through the shared taxonomy (exit 3).
    handleIdle();
    return dispatch(line);
}

std::string ServeSession::dispatch(const std::string& line) {
    json_mini::Object job;
    try {
        job = json_mini::parse(line);
    } catch (const ParseError& e) {
        return errorReply("parse", e.what());
    }
    try {
        const std::string& kind = json_mini::getString(job, "job");
        if (kind == "add_sequence") {
            const Sequence seq = Sequence::fromString(
                json_mini::getString(job, "name"), json_mini::getString(job, "sequence"));
            OnlineSmcUpdater updater(state_, opts_, pool_);
            const OnlineUpdateResult res = updater.addSequence(seq);
            snapshot();  // durable after every accepted update
            if (sink_) {
                // Stream the MAP-weight particle (deterministic: first
                // index on ties, no extra RNG draws).
                std::size_t best = 0;
                for (std::size_t p = 1; p < state_.particles.size(); ++p)
                    if (state_.particles[p].logW > state_.particles[best].logW) best = p;
                const OnlineParticle& top = state_.particles[best];
                SampleTag tag;
                tag.chain = 0;
                tag.index = state_.updates - 1;
                tag.logPosterior =
                    top.logL + logCoalescentPrior(top.tree, state_.theta);
                sink_->consume(top.tree, tag);
            }
            json_mini::Writer w;
            w.boolean("ok", true)
                .str("job", kind)
                .num("logz_increment", res.logZIncrement)
                .num("ess", res.essFraction)
                .boolean("refreshed", res.refreshed)
                .num("rejuvenation_accepts",
                     static_cast<double>(res.rejuvenationAccepts))
                .num("updates", static_cast<double>(state_.updates))
                .num("sequences", static_cast<double>(state_.alignment.sequenceCount()));
            return w.finish();
        }
        if (kind == "estimate") {
            json_mini::Writer w;
            w.boolean("ok", true)
                .str("job", kind)
                .num("theta", onlineThetaEstimate(state_))
                .num("ess", onlineEssFraction(state_))
                .num("updates", static_cast<double>(state_.updates))
                .num("sequences", static_cast<double>(state_.alignment.sequenceCount()));
            return w.finish();
        }
        if (kind == "logz") {
            json_mini::Writer w;
            w.boolean("ok", true).str("job", kind).num("logz", state_.logZ);
            return w.finish();
        }
        if (kind == "snapshot") {
            snapshot();
            json_mini::Writer w;
            w.boolean("ok", true).str("job", kind).str("path", statePath_);
            return w.finish();
        }
        if (kind == "shutdown") {
            snapshot();
            shutdown_ = true;
            json_mini::Writer w;
            w.boolean("ok", true).str("job", kind);
            return w.finish();
        }
        return errorReply("config", "unknown job '" + kind +
                                        "' (add_sequence | estimate | logz | "
                                        "snapshot | shutdown)");
    } catch (const ParseError& e) {
        return errorReply("parse", e.what());
    } catch (const ConfigError& e) {
        return errorReply("config", e.what());
    }
    // NumericError, CheckpointError, InjectedFaultError, InterruptedError
    // propagate: those are daemon-fatal by the shared taxonomy.
}

void ServeSession::snapshot() {
    if (statePath_.empty()) return;
    withCheckpointRetry(supervisor_, [&] { saveOnlineState(statePath_, state_); });
}

void ServeSession::handleIdle() {
    if (!supervisor_ || !supervisor_->stopRequested()) return;
    bool written = false;
    try {
        snapshot();
        written = !statePath_.empty();
    } catch (const CheckpointError&) {
        // Best-effort final snapshot; the stop still wins.
    }
    throw InterruptedError(supervisor_->stopReason(), written);
}

void runServeLoop(ServeSession& session, const ServeEndpoint& endpoint) {
    std::string announce;
    Fd listener = bindEndpoint(endpoint, announce);
    std::cout << "mpcgs serve: listening on " << announce << std::endl;

    constexpr int kPollMs = 200;
    std::string buf;
    while (!session.shutdownRequested()) {
        pollfd pfd{listener.fd, POLLIN, 0};
        const int r = ::poll(&pfd, 1, kPollMs);
        if (r < 0) {
            if (errno == EINTR) {
                session.handleIdle();  // a signal is exactly what we poll for
                continue;
            }
            sockFail("poll");
        }
        if (r == 0) {
            // Idle tick: let the session surface a pending supervisor stop
            // (snapshot + InterruptedError) without waiting for a client.
            session.handleIdle();
            continue;
        }
        Fd conn(::accept(listener.fd, nullptr, nullptr));
        if (!conn) {
            if (errno == EINTR) continue;
            sockFail("accept");
        }
        buf.clear();
        bool open = true;
        while (open && !session.shutdownRequested()) {
            pollfd cfd{conn.fd, POLLIN, 0};
            const int cr = ::poll(&cfd, 1, kPollMs);
            if (cr < 0) {
                if (errno == EINTR) {
                    session.handleIdle();
                    continue;
                }
                sockFail("poll");
            }
            if (cr == 0) {
                session.handleIdle();
                continue;
            }
            char chunk[4096];
            const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
            if (n < 0) {
                if (errno == EINTR) continue;
                sockFail("read");
            }
            if (n == 0) break;  // client hung up; back to accept
            buf.append(chunk, static_cast<std::size_t>(n));
            std::size_t nl;
            while (open && (nl = buf.find('\n')) != std::string::npos) {
                const std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (line.empty()) continue;
                const std::string reply = session.handleLine(line);
                writeAll(conn.fd, reply + "\n");
                if (session.shutdownRequested()) open = false;
            }
        }
    }
    if (!endpoint.unixPath.empty()) ::unlink(endpoint.unixPath.c_str());
}

std::string serveSendLine(const ServeEndpoint& endpoint, const std::string& line) {
    Fd fd = connectEndpoint(endpoint);
    writeAll(fd.fd, line + "\n");
    std::string buf;
    char chunk[4096];
    while (buf.find('\n') == std::string::npos) {
        const ssize_t n = ::read(fd.fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) continue;
            sockFail("read");
        }
        if (n == 0) break;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buf.find('\n');
    return nl == std::string::npos ? buf : buf.substr(0, nl);
}

}  // namespace mpcgs
