#include "serve/serve.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <utility>

#include "coalescent/prior.h"
#include "mcmc/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json_mini.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

std::string errorReply(const std::string& kind, const std::string& what) {
    obs::add(obs::Counter::ServeJobsRejected);
    json_mini::Writer w;
    w.boolean("ok", false).str("kind", kind).str("error", what);
    return w.finish();
}

/// Scoped per-job latency observation (serve.job_latency_us.<kind> /
/// serve.checkpoint_write_us). The clock is only read while the registry
/// is armed, matching the pool's LaunchObserver.
struct ScopedLatency {
    bool on;
    obs::Histogram h;
    std::chrono::steady_clock::time_point t0;
    explicit ScopedLatency(obs::Histogram hist) : on(obs::armed()), h(hist) {
        if (on) t0 = std::chrono::steady_clock::now();
    }
    ~ScopedLatency() {
        if (on)
            obs::observe(h, static_cast<std::uint64_t>(
                                std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count()));
    }
};

/// One reply line from the live registry: ok/job/armed, then every counter,
/// every set gauge, and count/sum/p50/p90/p99 per non-empty histogram as
/// flat dotted keys — the same taxonomy --metrics-out writes, inside the
/// protocol's single-level JSON grammar. {"format":"prometheus"} instead
/// embeds the text exposition (newlines escaped) for `serve-send` to
/// unescape and print.
std::string metricsReply(const json_mini::Object& job) {
    const obs::MetricsSnapshot snap = obs::snapshot();
    json_mini::Writer w;
    w.boolean("ok", true).str("job", "metrics").boolean("armed", obs::armed());
    if (json_mini::has(job, "format")) {
        const std::string& format = json_mini::getString(job, "format");
        if (format != "prometheus")
            return errorReply("config", "unknown metrics format '" + format +
                                            "' (prometheus)");
        w.str("format", format).str("text", obs::toPrometheus(snap));
        return w.finish();
    }
    for (std::size_t c = 0; c < obs::kCounterCount; ++c)
        w.num(obs::counterName(static_cast<obs::Counter>(c)),
              static_cast<double>(snap.counters[c]));
    for (std::size_t g = 0; g < obs::kGaugeCount; ++g)
        if (snap.gaugeSet[g])
            w.num(obs::gaugeName(static_cast<obs::Gauge>(g)), snap.gauges[g]);
    for (std::size_t h = 0; h < obs::kHistogramCount; ++h) {
        const auto hh = static_cast<obs::Histogram>(h);
        const std::uint64_t n = snap.histCount(hh);
        if (n == 0) continue;
        const std::string base = obs::histogramName(hh);
        w.num(base + ".count", static_cast<double>(n));
        w.num(base + ".sum", static_cast<double>(snap.histSumUs[h]));
        w.num(base + ".p50", static_cast<double>(snap.histQuantileUs(hh, 0.50)));
        w.num(base + ".p90", static_cast<double>(snap.histQuantileUs(hh, 0.90)));
        w.num(base + ".p99", static_cast<double>(snap.histQuantileUs(hh, 0.99)));
    }
    return w.finish();
}

/// Close-on-destruction file descriptor.
struct Fd {
    int fd = -1;
    Fd() = default;
    explicit Fd(int f) : fd(f) {}
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;
    Fd(Fd&& o) noexcept : fd(std::exchange(o.fd, -1)) {}
    Fd& operator=(Fd&& o) noexcept {
        if (this != &o) {
            reset();
            fd = std::exchange(o.fd, -1);
        }
        return *this;
    }
    ~Fd() { reset(); }
    void reset() {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
    explicit operator bool() const { return fd >= 0; }
};

[[noreturn]] void sockFail(const std::string& op) {
    throw Error("serve: " + op + ": " + std::strerror(errno));
}

Fd bindEndpoint(const ServeEndpoint& ep, std::string& announce) {
    if (!ep.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unixPath.size() >= sizeof(addr.sun_path))
            throw ConfigError("serve: socket path too long: " + ep.unixPath);
        std::strncpy(addr.sun_path, ep.unixPath.c_str(), sizeof(addr.sun_path) - 1);
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd) sockFail("socket");
        ::unlink(ep.unixPath.c_str());  // stale socket from a previous run
        if (::bind(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
            sockFail("bind " + ep.unixPath);
        if (::listen(fd.fd, 4) != 0) sockFail("listen");
        announce = "unix:" + ep.unixPath;
        return fd;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw ConfigError("serve: bad host address: " + ep.host);
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) sockFail("socket");
    const int one = 1;
    ::setsockopt(fd.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        sockFail("bind " + ep.host + ":" + std::to_string(ep.port));
    if (::listen(fd.fd, 4) != 0) sockFail("listen");
    socklen_t len = sizeof(addr);
    ::getsockname(fd.fd, reinterpret_cast<sockaddr*>(&addr), &len);
    announce = "tcp:" + ep.host + ":" + std::to_string(ntohs(addr.sin_port));
    return fd;
}

Fd connectEndpoint(const ServeEndpoint& ep) {
    if (!ep.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unixPath.size() >= sizeof(addr.sun_path))
            throw ConfigError("serve: socket path too long: " + ep.unixPath);
        std::strncpy(addr.sun_path, ep.unixPath.c_str(), sizeof(addr.sun_path) - 1);
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd) sockFail("socket");
        if (::connect(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
            sockFail("connect " + ep.unixPath);
        return fd;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw ConfigError("serve: bad host address: " + ep.host);
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) sockFail("socket");
    if (::connect(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        sockFail("connect " + ep.host + ":" + std::to_string(ep.port));
    return fd;
}

void writeAll(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            sockFail("write");
        }
        off += static_cast<std::size_t>(n);
    }
}

}  // namespace

ServeSession::ServeSession(OnlineState state, std::string statePath,
                           const OnlineOptions& opts, ThreadPool* pool,
                           const RunSupervisor* supervisor, SampleSink* sink)
    : state_(std::move(state)),
      statePath_(std::move(statePath)),
      opts_(opts),
      pool_(pool),
      supervisor_(supervisor),
      sink_(sink) {
    // Validate state/options up front (throws ConfigError) so a broken
    // deployment fails at startup, not on the first job.
    OnlineSmcUpdater probe(state_, opts_, pool_);
    (void)probe;
    if (sink_) sink_->beginRun(1);
}

std::string ServeSession::handleLine(const std::string& line) {
    ++jobs_;
    // The accept fail point fires once per job, BEFORE dispatch, so fault
    // tests can kill the daemon at a job boundary with a typed error.
    if (const auto hit = MPCGS_FAILPOINT("serve.accept"); hit.fired()) {
        if (hit.action == failpoint::Action::Errno)
            throw InjectedFaultError("serve.accept: " +
                                     std::string(std::strerror(hit.errnum)));
        throw InjectedFaultError("serve.accept");
    }
    // Cooperative stop at the job boundary (never mid-update): snapshot,
    // then surface the stop through the shared taxonomy (exit 3).
    handleIdle();
    return dispatch(line);
}

std::string ServeSession::dispatch(const std::string& line) {
    json_mini::Object job;
    try {
        job = json_mini::parse(line);
    } catch (const ParseError& e) {
        return errorReply("parse", e.what());
    }
    try {
        const std::string& kind = json_mini::getString(job, "job");
        if (kind == "add_sequence") {
            const ScopedLatency lat(obs::Histogram::ServeAddSequenceUs);
            const obs::TraceSpan span("serve_add_sequence", "serve");
            const Sequence seq = Sequence::fromString(
                json_mini::getString(job, "name"), json_mini::getString(job, "sequence"));
            OnlineSmcUpdater updater(state_, opts_, pool_);
            const OnlineUpdateResult res = updater.addSequence(seq);
            obs::add(obs::Counter::ServeUpdatesAccepted);
            snapshot();  // durable after every accepted update
            if (sink_) {
                // Stream the MAP-weight particle (deterministic: first
                // index on ties, no extra RNG draws).
                std::size_t best = 0;
                for (std::size_t p = 1; p < state_.particles.size(); ++p)
                    if (state_.particles[p].logW > state_.particles[best].logW) best = p;
                const OnlineParticle& top = state_.particles[best];
                SampleTag tag;
                tag.chain = 0;
                tag.index = state_.updates - 1;
                tag.logPosterior =
                    top.logL + logCoalescentPrior(top.tree, state_.theta);
                sink_->consume(top.tree, tag);
            }
            json_mini::Writer w;
            w.boolean("ok", true)
                .str("job", kind)
                .num("logz_increment", res.logZIncrement)
                .num("ess", res.essFraction)
                .boolean("refreshed", res.refreshed)
                .num("rejuvenation_accepts",
                     static_cast<double>(res.rejuvenationAccepts))
                .num("updates", static_cast<double>(state_.updates))
                .num("sequences", static_cast<double>(state_.alignment.sequenceCount()));
            obs::add(obs::Counter::ServeJobsAccepted);
            return w.finish();
        }
        if (kind == "estimate") {
            const ScopedLatency lat(obs::Histogram::ServeEstimateUs);
            const obs::TraceSpan span("serve_estimate", "serve");
            json_mini::Writer w;
            w.boolean("ok", true)
                .str("job", kind)
                .num("theta", onlineThetaEstimate(state_))
                .num("ess", onlineEssFraction(state_))
                .num("updates", static_cast<double>(state_.updates))
                .num("sequences", static_cast<double>(state_.alignment.sequenceCount()));
            obs::add(obs::Counter::ServeJobsAccepted);
            return w.finish();
        }
        if (kind == "logz") {
            const ScopedLatency lat(obs::Histogram::ServeLogzUs);
            const obs::TraceSpan span("serve_logz", "serve");
            json_mini::Writer w;
            w.boolean("ok", true).str("job", kind).num("logz", state_.logZ);
            obs::add(obs::Counter::ServeJobsAccepted);
            return w.finish();
        }
        if (kind == "metrics") {
            const ScopedLatency lat(obs::Histogram::ServeMetricsUs);
            const obs::TraceSpan span("serve_metrics", "serve");
            const std::string reply = metricsReply(job);
            // metricsReply already counted a rejection for a bad format.
            if (reply.find("\"ok\":true") == 1)
                obs::add(obs::Counter::ServeJobsAccepted);
            return reply;
        }
        if (kind == "snapshot") {
            const ScopedLatency lat(obs::Histogram::ServeSnapshotUs);
            const obs::TraceSpan span("serve_snapshot", "serve");
            snapshot();
            json_mini::Writer w;
            w.boolean("ok", true).str("job", kind).str("path", statePath_);
            obs::add(obs::Counter::ServeJobsAccepted);
            return w.finish();
        }
        if (kind == "shutdown") {
            const ScopedLatency lat(obs::Histogram::ServeShutdownUs);
            const obs::TraceSpan span("serve_shutdown", "serve");
            snapshot();
            shutdown_ = true;
            json_mini::Writer w;
            w.boolean("ok", true).str("job", kind);
            obs::add(obs::Counter::ServeJobsAccepted);
            return w.finish();
        }
        return errorReply("config", "unknown job '" + kind +
                                        "' (add_sequence | estimate | logz | "
                                        "metrics | snapshot | shutdown)");
    } catch (const ParseError& e) {
        return errorReply("parse", e.what());
    } catch (const ConfigError& e) {
        return errorReply("config", e.what());
    }
    // NumericError, CheckpointError, InjectedFaultError, InterruptedError
    // propagate: those are daemon-fatal by the shared taxonomy.
}

void ServeSession::snapshot() {
    if (statePath_.empty()) return;
    const ScopedLatency lat(obs::Histogram::ServeCheckpointWriteUs);
    const obs::TraceSpan span("serve_checkpoint", "serve");
    withCheckpointRetry(supervisor_, [&] { saveOnlineState(statePath_, state_); });
    obs::add(obs::Counter::ServeCheckpointWrites);
}

void ServeSession::handleIdle() {
    if (!supervisor_ || !supervisor_->stopRequested()) return;
    bool written = false;
    try {
        snapshot();
        written = !statePath_.empty();
    } catch (const CheckpointError&) {
        // Best-effort final snapshot; the stop still wins.
    }
    throw InterruptedError(supervisor_->stopReason(), written);
}

void runServeLoop(ServeSession& session, const ServeEndpoint& endpoint) {
    std::string announce;
    Fd listener = bindEndpoint(endpoint, announce);
    std::cout << "mpcgs serve: listening on " << announce << std::endl;

    constexpr int kPollMs = 200;
    std::string buf;
    while (!session.shutdownRequested()) {
        pollfd pfd{listener.fd, POLLIN, 0};
        const int r = ::poll(&pfd, 1, kPollMs);
        if (r < 0) {
            if (errno == EINTR) {
                session.handleIdle();  // a signal is exactly what we poll for
                continue;
            }
            sockFail("poll");
        }
        if (r == 0) {
            // Idle tick: let the session surface a pending supervisor stop
            // (snapshot + InterruptedError) without waiting for a client.
            session.handleIdle();
            continue;
        }
        Fd conn(::accept(listener.fd, nullptr, nullptr));
        if (!conn) {
            if (errno == EINTR) continue;
            sockFail("accept");
        }
        buf.clear();
        bool open = true;
        while (open && !session.shutdownRequested()) {
            pollfd cfd{conn.fd, POLLIN, 0};
            const int cr = ::poll(&cfd, 1, kPollMs);
            if (cr < 0) {
                if (errno == EINTR) {
                    session.handleIdle();
                    continue;
                }
                sockFail("poll");
            }
            if (cr == 0) {
                session.handleIdle();
                continue;
            }
            char chunk[4096];
            const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
            if (n < 0) {
                if (errno == EINTR) continue;
                sockFail("read");
            }
            if (n == 0) break;  // client hung up; back to accept
            buf.append(chunk, static_cast<std::size_t>(n));
            std::size_t nl;
            while (open && (nl = buf.find('\n')) != std::string::npos) {
                const std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (line.empty()) continue;
                const std::string reply = session.handleLine(line);
                writeAll(conn.fd, reply + "\n");
                if (session.shutdownRequested()) open = false;
            }
        }
    }
    if (!endpoint.unixPath.empty()) ::unlink(endpoint.unixPath.c_str());
}

std::string serveSendLine(const ServeEndpoint& endpoint, const std::string& line) {
    Fd fd = connectEndpoint(endpoint);
    writeAll(fd.fd, line + "\n");
    std::string buf;
    char chunk[4096];
    while (buf.find('\n') == std::string::npos) {
        const ssize_t n = ::read(fd.fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) continue;
            sockFail("read");
        }
        if (n == 0) break;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buf.find('\n');
    return nl == std::string::npos ? buf : buf.substr(0, nl);
}

}  // namespace mpcgs
