// Minimal flat-JSON codec for the serve job protocol (src/serve/serve.h).
//
// The protocol is newline-delimited single-level objects — {"job":
// "add_sequence", "name": "t9", "sequence": "ACGT..."} — so this codec
// supports exactly that: one object per line, string / number / boolean
// values, no nesting, no arrays. Hand-rolled rather than a vendored
// library because the serving path must not grow a dependency the
// container lacks; anything outside the supported grammar raises
// ParseError naming the offending position.
#pragma once

#include <map>
#include <string>

#include "util/error.h"

namespace mpcgs::json_mini {

struct Value {
    enum class Kind { String, Number, Bool };
    Kind kind = Kind::String;
    std::string str;     ///< Kind::String payload
    double num = 0.0;    ///< Kind::Number payload
    bool boolean = false;  ///< Kind::Bool payload
};

/// One flat object; std::map keeps emission deterministic (sorted keys).
using Object = std::map<std::string, Value>;

/// Parse one flat JSON object. Throws ParseError on malformed input,
/// nesting, arrays, or null.
Object parse(const std::string& text);

/// Required typed field accessors; throw ParseError naming the field when
/// it is missing or has the wrong type.
const std::string& getString(const Object& o, const std::string& key);
double getNumber(const Object& o, const std::string& key);

/// True when `key` is present (any type).
bool has(const Object& o, const std::string& key);

/// Incremental writer for one reply line. Numbers are emitted with
/// round-trip (%.17g) precision so logZ values survive a
/// serialize/parse cycle exactly.
class Writer {
  public:
    Writer& str(const std::string& key, const std::string& value);
    Writer& num(const std::string& key, double value);
    Writer& boolean(const std::string& key, bool value);
    /// The assembled single-line object, e.g. {"ok":true,"theta":0.05}.
    std::string finish() const;

  private:
    std::string body_;
};

/// JSON string escaping (quotes included).
std::string quote(const std::string& s);

}  // namespace mpcgs::json_mini
