#include "seq/phylip.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace mpcgs {
namespace {

bool isSeqChar(char c) { return charToNuc(c) != 0xFF; }

std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

/// Append every sequence character of `text` to `dst`, ignoring spaces.
void appendSeqChars(const std::string& text, std::string& dst, int lineNo) {
    for (const char c : text) {
        if (std::isspace(static_cast<unsigned char>(c)) || std::isdigit(static_cast<unsigned char>(c)))
            continue;
        if (!isSeqChar(c))
            throw ParseError("phylip line " + std::to_string(lineNo) +
                             ": invalid sequence character '" + std::string(1, c) + "'");
        dst += c;
    }
}

}  // namespace

Alignment readPhylip(std::istream& in) {
    std::string line;
    int lineNo = 0;

    // Header: "<count> <length>".
    std::size_t nSeq = 0, seqLen = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (trim(line).empty()) continue;
        std::istringstream hs(line);
        if (!(hs >> nSeq >> seqLen))
            throw ParseError("phylip line " + std::to_string(lineNo) + ": bad header");
        break;
    }
    if (nSeq < 2) throw ParseError("phylip: need at least 2 sequences");
    if (seqLen == 0) throw ParseError("phylip: zero sequence length");
    // Bound the header against nonsense (and allocation bombs): even the
    // largest published alignments are orders of magnitude below these.
    constexpr std::size_t kMaxSequences = 1u << 22;     // ~4 million taxa
    constexpr std::size_t kMaxLength = 1u << 30;        // ~1 Gbp
    if (nSeq > kMaxSequences)
        throw ParseError("phylip: implausible sequence count " + std::to_string(nSeq));
    if (seqLen > kMaxLength)
        throw ParseError("phylip: implausible sequence length " + std::to_string(seqLen));

    std::vector<std::string> names(nSeq);
    std::vector<std::string> chars(nSeq);

    // First block: each line starts with a name.
    for (std::size_t i = 0; i < nSeq;) {
        if (!std::getline(in, line))
            throw ParseError("phylip: unexpected end of file in first block");
        ++lineNo;
        if (trim(line).empty()) continue;

        // Strict layout puts the name in columns 1-10; relaxed layout
        // separates it by whitespace. Heuristic: take the first
        // whitespace-delimited token as the name unless the remainder of a
        // 10-column name field continues without a gap.
        std::string name, rest;
        if (line.size() > 10 &&
            line.find_first_of(" \t") == std::string::npos) {
            // No whitespace at all: 10-column fixed name, rest is data.
            name = trim(line.substr(0, 10));
            rest = line.substr(10);
        } else {
            std::istringstream ls(line);
            ls >> name;
            std::getline(ls, rest);
        }
        if (name.empty())
            throw ParseError("phylip line " + std::to_string(lineNo) + ": empty name");
        names[i] = name;
        appendSeqChars(rest, chars[i], lineNo);
        ++i;
    }

    // Interleaved continuation blocks (no names), until every sequence is
    // full or the stream ends.
    std::size_t row = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (trim(line).empty()) {
            row = 0;
            continue;
        }
        if (row >= nSeq) row = 0;
        appendSeqChars(line, chars[row], lineNo);
        ++row;
    }

    std::vector<Sequence> seqs;
    seqs.reserve(nSeq);
    for (std::size_t i = 0; i < nSeq; ++i) {
        if (chars[i].size() != seqLen)
            throw ParseError("phylip: sequence '" + names[i] + "' has " +
                             std::to_string(chars[i].size()) + " bases, header says " +
                             std::to_string(seqLen));
        seqs.push_back(Sequence::fromString(names[i], chars[i]));
    }
    return Alignment(std::move(seqs));
}

Alignment readPhylipString(const std::string& text) {
    std::istringstream in(text);
    return readPhylip(in);
}

Alignment readPhylipFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ParseError("phylip: cannot open '" + path + "'");
    return readPhylip(in);
}

void writePhylip(std::ostream& out, const Alignment& aln) {
    out << ' ' << aln.sequenceCount() << ' ' << aln.length() << '\n';
    for (const auto& s : aln.sequences()) {
        std::string name = s.name().substr(0, 10);
        name.resize(10, ' ');
        out << name << s.toString() << '\n';
    }
}

std::string writePhylipString(const Alignment& aln) {
    std::ostringstream os;
    writePhylip(os, aln);
    return os.str();
}

void writePhylipFile(const std::string& path, const Alignment& aln) {
    std::ofstream out(path);
    if (!out) throw ParseError("phylip: cannot write '" + path + "'");
    writePhylip(out, aln);
}

}  // namespace mpcgs
