#include "seq/sequence.h"

#include "util/error.h"

namespace mpcgs {

Sequence Sequence::fromString(std::string name, const std::string& chars) {
    std::vector<NucCode> codes;
    codes.reserve(chars.size());
    for (const char c : chars) {
        const NucCode n = charToNuc(c);
        if (n == 0xFF)
            throw ParseError(std::string("invalid sequence character '") + c + "' in " + name);
        codes.push_back(n);
    }
    return Sequence(std::move(name), std::move(codes));
}

std::string Sequence::toString() const {
    std::string out;
    out.reserve(codes_.size());
    for (const NucCode c : codes_) out += nucToChar(c);
    return out;
}

std::size_t Sequence::hammingDistance(const Sequence& other) const {
    require(length() == other.length(), "hammingDistance: length mismatch");
    std::size_t d = 0;
    for (std::size_t i = 0; i < codes_.size(); ++i) {
        const NucCode a = codes_[i];
        const NucCode b = other.codes_[i];
        if (a == kNucUnknown || b == kNucUnknown) continue;
        if (a != b) ++d;
    }
    return d;
}

PackedAlignment::PackedAlignment(const std::vector<Sequence>& seqs) {
    nSeq_ = seqs.size();
    length_ = seqs.empty() ? 0 : seqs[0].length();
    for (const auto& s : seqs)
        require(s.length() == length_, "PackedAlignment: ragged alignment");
    wordsPerSeq_ = (length_ + 31) / 32;
    maskWordsPerSeq_ = (length_ + 63) / 64;
    words_.assign(nSeq_ * wordsPerSeq_, 0);
    unknownMask_.assign(nSeq_ * maskWordsPerSeq_, 0);
    for (std::size_t s = 0; s < nSeq_; ++s) {
        for (std::size_t i = 0; i < length_; ++i) {
            const NucCode c = seqs[s].at(i);
            if (c == kNucUnknown) {
                unknownMask_[s * maskWordsPerSeq_ + i / 64] |= (std::uint64_t{1} << (i % 64));
                continue;  // packed bits stay 0 (reads as A; mask overrides)
            }
            words_[s * wordsPerSeq_ + i / 32] |=
                (static_cast<std::uint64_t>(c & 0x3u) << (2 * (i % 32)));
        }
    }
}

NucCode PackedAlignment::at(std::size_t seq, std::size_t site) const {
    if (unknownMask_[seq * maskWordsPerSeq_ + site / 64] & (std::uint64_t{1} << (site % 64)))
        return kNucUnknown;
    const std::uint64_t w = words_[seq * wordsPerSeq_ + site / 32];
    return static_cast<NucCode>((w >> (2 * (site % 32))) & 0x3u);
}

std::uint64_t PackedAlignment::word(std::size_t seq, std::size_t w) const {
    return words_[seq * wordsPerSeq_ + w];
}

}  // namespace mpcgs
