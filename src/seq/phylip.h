// PHYLIP sequence file format (§5.1.1).
//
// The paper's `mpcgs` takes sequence data "in the PHYLIP genealogical data
// format, in which the first line provides the number of samples and the
// length of the samples", each following line a name plus sequence data.
// Both the strict layout (10-character name field) and a relaxed layout
// (whitespace-separated name) are accepted; interleaved continuation
// blocks are supported for compatibility with seq-gen output.
#pragma once

#include <iosfwd>
#include <string>

#include "seq/alignment.h"

namespace mpcgs {

/// Parse PHYLIP text. Throws ParseError with a line-number diagnostic on
/// malformed input.
Alignment readPhylip(std::istream& in);
Alignment readPhylipString(const std::string& text);
Alignment readPhylipFile(const std::string& path);

/// Write sequential PHYLIP (names padded to 10 characters).
void writePhylip(std::ostream& out, const Alignment& aln);
std::string writePhylipString(const Alignment& aln);
void writePhylipFile(const std::string& path, const Alignment& aln);

}  // namespace mpcgs
