#include "seq/fasta.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace mpcgs {

Alignment readFasta(std::istream& in) {
    std::vector<Sequence> seqs;
    std::string line, name, chars;
    auto flush = [&] {
        if (!name.empty()) {
            seqs.push_back(Sequence::fromString(name, chars));
            name.clear();
            chars.clear();
        }
    };
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (line[0] == '>') {
            flush();
            name = line.substr(1);
            // Use only the first token of the description as the name.
            const auto sp = name.find_first_of(" \t");
            if (sp != std::string::npos) name = name.substr(0, sp);
            if (name.empty()) throw ParseError("fasta: empty record name");
        } else {
            if (name.empty()) throw ParseError("fasta: sequence data before first header");
            chars += line;
        }
    }
    flush();
    if (seqs.empty()) throw ParseError("fasta: no records");
    return Alignment(std::move(seqs));
}

Alignment readFastaString(const std::string& text) {
    std::istringstream in(text);
    return readFasta(in);
}

Alignment readFastaFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ParseError("fasta: cannot open '" + path + "'");
    return readFasta(in);
}

void writeFasta(std::ostream& out, const Alignment& aln, std::size_t lineWidth) {
    for (const auto& s : aln.sequences()) {
        out << '>' << s.name() << '\n';
        const std::string text = s.toString();
        for (std::size_t i = 0; i < text.size(); i += lineWidth)
            out << text.substr(i, lineWidth) << '\n';
    }
}

std::string writeFastaString(const Alignment& aln, std::size_t lineWidth) {
    std::ostringstream os;
    writeFasta(os, aln, lineWidth);
    return os.str();
}

}  // namespace mpcgs
