// A multiple sequence alignment: the D term of the paper — the observed
// data whose likelihood P(D|G) drives the sampler.
#pragma once

#include <string>
#include <vector>

#include "seq/nucleotide.h"
#include "seq/sequence.h"

namespace mpcgs {

class Alignment {
  public:
    Alignment() = default;
    explicit Alignment(std::vector<Sequence> seqs);

    std::size_t sequenceCount() const { return seqs_.size(); }
    std::size_t length() const { return seqs_.empty() ? 0 : seqs_[0].length(); }

    const Sequence& sequence(std::size_t i) const { return seqs_[i]; }
    const std::vector<Sequence>& sequences() const { return seqs_; }

    std::vector<std::string> names() const;

    /// Column `site` across sequences (one code per sequence).
    std::vector<NucCode> column(std::size_t site) const;

    /// Empirical base frequencies over all known sites (the paper's prior
    /// pi_Y, "approximated by the relative frequency of each nucleotide in
    /// all the sampling data", §2.4). Falls back to uniform when the
    /// alignment has no known bases; zero counts are floored at a small
    /// pseudo-frequency so no stationary frequency is exactly 0.
    BaseFreqs baseFrequencies() const;

    /// True if any site of any sequence is unknown/ambiguous.
    bool hasUnknowns() const;

    /// Number of polymorphic (segregating) columns.
    std::size_t segregatingSites() const;

    bool operator==(const Alignment&) const = default;

  private:
    std::vector<Sequence> seqs_;
};

}  // namespace mpcgs
