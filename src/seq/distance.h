// Pairwise sequence distances feeding the UPGMA initial tree (§5.1.3: "the
// distance between individual sequences is taken to be the number of base
// pair positions that are different between the two sequences").
#pragma once

#include <vector>

#include "seq/alignment.h"

namespace mpcgs {

/// Raw count of differing (known) positions — the paper's measure.
std::vector<std::vector<double>> hammingMatrix(const Alignment& aln);

/// Proportion of differing positions (count / length).
std::vector<std::vector<double>> pDistanceMatrix(const Alignment& aln);

/// Jukes-Cantor corrected distance, -3/4 ln(1 - 4p/3); saturated pairs
/// (p >= 3/4) are clamped to a large finite distance.
std::vector<std::vector<double>> jcDistanceMatrix(const Alignment& aln);

}  // namespace mpcgs
