// FASTA reader/writer (convenience format alongside PHYLIP).
#pragma once

#include <iosfwd>
#include <string>

#include "seq/alignment.h"

namespace mpcgs {

Alignment readFasta(std::istream& in);
Alignment readFastaString(const std::string& text);
Alignment readFastaFile(const std::string& path);

void writeFasta(std::ostream& out, const Alignment& aln, std::size_t lineWidth = 70);
std::string writeFastaString(const Alignment& aln, std::size_t lineWidth = 70);

}  // namespace mpcgs
