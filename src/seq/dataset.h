// Multi-locus sequence data: a Dataset of named Locus entries sharing one
// population parameter theta.
//
// Production LAMARC estimates theta from many independent loci at once:
// each locus carries its own alignment (and hence its own genealogy during
// sampling) plus an optional relative mutation-rate scalar mu_l, so locus l
// is governed by an effective theta_l = mu_l * theta while every locus
// contributes to the same pooled estimate. A single-alignment analysis is
// the L = 1 special case (mu = 1).
#pragma once

#include <string>
#include <vector>

#include "seq/alignment.h"

namespace mpcgs {

/// One locus: a named alignment plus its relative mutation-rate scalar.
struct Locus {
    std::string name;
    Alignment alignment;
    double mutationScale = 1.0;  ///< mu_l: locus rate relative to the dataset average
};

/// An ordered collection of independent loci sharing theta. Locus order is
/// meaningful: per-locus RNG streams, checkpoint payloads and result
/// sections are all indexed by position.
class Dataset {
  public:
    Dataset() = default;
    explicit Dataset(std::vector<Locus> loci) : loci_(std::move(loci)) {}

    /// Wrap one alignment as a single-locus dataset (mu = 1).
    static Dataset single(Alignment aln, std::string name = "locus0");

    /// Load one alignment per path. The format is chosen by extension:
    /// .nex/.nxs -> NEXUS, .fa/.fasta/.fna -> FASTA, anything else ->
    /// PHYLIP. Locus names default to the file stem (made unique by
    /// suffixing on collision).
    static Dataset fromFiles(const std::vector<std::string>& paths);

    /// Load a manifest: one locus per line,
    ///
    ///   <file> [name=<locus-name>] [rate=<mutation-rate-scalar>]
    ///
    /// '#' starts a comment; blank lines are ignored; relative paths are
    /// resolved against the manifest's directory.
    static Dataset fromManifest(const std::string& manifestPath);

    void add(Locus locus) { loci_.push_back(std::move(locus)); }

    std::size_t locusCount() const { return loci_.size(); }
    const Locus& locus(std::size_t l) const { return loci_[l]; }
    const std::vector<Locus>& loci() const { return loci_; }

    /// Sites summed over loci (reporting only).
    std::size_t totalSites() const;

    /// Throws ConfigError unless every locus has >= 2 sequences, a nonzero
    /// length, a positive finite mutation scale and a unique name (and the
    /// dataset has at least one locus).
    void validate() const;

  private:
    std::vector<Locus> loci_;
};

/// Read one alignment with the extension-sniffed format rules of
/// Dataset::fromFiles.
Alignment readAlignmentFile(const std::string& path);

}  // namespace mpcgs
