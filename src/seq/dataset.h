// Multi-locus sequence data: a Dataset of named Locus entries sharing one
// population parameter theta.
//
// Production LAMARC estimates theta from many independent loci at once:
// each locus carries its own alignment (and hence its own genealogy during
// sampling) plus an optional relative mutation-rate scalar mu_l, so locus l
// is governed by an effective theta_l = mu_l * theta while every locus
// contributes to the same pooled estimate. A single-alignment analysis is
// the L = 1 special case (mu = 1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "seq/alignment.h"

namespace mpcgs {

/// Per-sequence population assignment read from a pop-map file: one
/// `<sequence-name> <population-label>` pair per line ('#' starts a
/// comment, blank lines are ignored). Labels are assigned indices in order
/// of first appearance, so deme numbering is deterministic for a given
/// file. Used by the structured-coalescent pipeline (each sequence's deme
/// seeds its lineage's label).
struct PopMap {
    std::vector<std::string> populations;   ///< index -> label, first-appearance order
    std::map<std::string, int> bySequence;  ///< sequence name -> population index

    int populationCount() const { return static_cast<int>(populations.size()); }
};

/// Parse a pop-map file. Throws ParseError on malformed lines (missing
/// label, trailing junk) and on duplicate sequence names.
PopMap readPopMap(const std::string& path);

/// One locus: a named alignment plus its relative mutation-rate scalar and
/// (optionally) per-sequence population assignments.
struct Locus {
    std::string name;
    Alignment alignment;
    double mutationScale = 1.0;  ///< mu_l: locus rate relative to the dataset average
    /// Population index per sequence, aligned with the alignment's order;
    /// empty means "single unstructured population" (every pre-structured
    /// workload). Indices refer to the owning Dataset's populationNames().
    std::vector<int> populations;
};

/// An ordered collection of independent loci sharing theta. Locus order is
/// meaningful: per-locus RNG streams, checkpoint payloads and result
/// sections are all indexed by position.
class Dataset {
  public:
    Dataset() = default;
    explicit Dataset(std::vector<Locus> loci) : loci_(std::move(loci)) {}

    /// Wrap one alignment as a single-locus dataset (mu = 1).
    static Dataset single(Alignment aln, std::string name = "locus0");

    /// Load one alignment per path. The format is chosen by extension:
    /// .nex/.nxs -> NEXUS, .fa/.fasta/.fna -> FASTA, anything else ->
    /// PHYLIP. Locus names default to the file stem (made unique by
    /// suffixing on collision).
    static Dataset fromFiles(const std::vector<std::string>& paths);

    /// Load a manifest: one locus per line,
    ///
    ///   <file> [name=<locus-name>] [rate=<mutation-rate-scalar>] [pop=<pop-map-file>]
    ///
    /// '#' starts a comment; blank lines are ignored; relative paths (the
    /// locus file and any pop= pop-map) are resolved against the
    /// manifest's directory. A pop= column assigns that locus's sequences
    /// to populations via the named pop-map file; labels are interned into
    /// the dataset-wide populationNames() registry.
    static Dataset fromManifest(const std::string& manifestPath);

    void add(Locus locus) { loci_.push_back(std::move(locus)); }

    std::size_t locusCount() const { return loci_.size(); }
    const Locus& locus(std::size_t l) const { return loci_[l]; }
    const std::vector<Locus>& loci() const { return loci_; }

    /// Population labels in interned index order; empty when no locus has
    /// assignments.
    const std::vector<std::string>& populationNames() const { return popNames_; }
    int populationCount() const { return static_cast<int>(popNames_.size()); }

    /// Assign populations from `map` to every locus that does not already
    /// have assignments (manifest pop= columns take precedence). Every
    /// sequence of an assigned locus must appear in the map; labels are
    /// interned into populationNames(). Throws ConfigError on missing
    /// sequences.
    void applyPopMap(const PopMap& map);

    /// Sites summed over loci (reporting only).
    std::size_t totalSites() const;

    /// Throws ConfigError unless every locus has >= 2 sequences, a nonzero
    /// length, a positive finite mutation scale, a unique name, and —
    /// when populations are assigned — one in-range population index per
    /// sequence (and the dataset has at least one locus).
    void validate() const;

  private:
    /// Index of `label` in popNames_, appending on first sight.
    int internPopulation(const std::string& label);
    /// Assign `locus`'s sequences from `map`, interning labels.
    void assignPopulations(Locus& locus, const PopMap& map);

    std::vector<Locus> loci_;
    std::vector<std::string> popNames_;
};

/// Read one alignment with the extension-sniffed format rules of
/// Dataset::fromFiles.
Alignment readAlignmentFile(const std::string& path);

}  // namespace mpcgs
