#include "seq/nucleotide.h"

namespace mpcgs {

NucCode charToNuc(char c) {
    switch (c) {
        case 'A': case 'a': return kNucA;
        case 'C': case 'c': return kNucC;
        case 'G': case 'g': return kNucG;
        case 'T': case 't':
        case 'U': case 'u': return kNucT;
        // Unknown and IUPAC ambiguity codes: treated as fully ambiguous.
        case 'N': case 'n': case 'X': case 'x': case '?': case '-':
        case 'R': case 'r': case 'Y': case 'y': case 'S': case 's':
        case 'W': case 'w': case 'K': case 'k': case 'M': case 'm':
        case 'B': case 'b': case 'D': case 'd': case 'H': case 'h':
        case 'V': case 'v':
            return kNucUnknown;
        default:
            return 0xFF;
    }
}

char nucToChar(NucCode c) {
    switch (c) {
        case kNucA: return 'A';
        case kNucC: return 'C';
        case kNucG: return 'G';
        case kNucT: return 'T';
        default: return 'N';
    }
}

}  // namespace mpcgs
