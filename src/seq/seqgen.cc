#include "seq/seqgen.h"

#include <vector>

#include "util/error.h"

namespace mpcgs {

Alignment simulateSequences(const Genealogy& g, const SubstModel& model,
                            const SeqGenOptions& opts, Rng& rng) {
    if (opts.length == 0) throw ConfigError("seqgen: zero length");
    if (opts.scale <= 0.0) throw ConfigError("seqgen: scale must be positive");

    const BaseFreqs& pi = model.stationary();
    const std::array<double, 4> piW{pi[0], pi[1], pi[2], pi[3]};

    // Working sequence per node; filled root-to-tips in preorder.
    std::vector<std::vector<NucCode>> state(
        static_cast<std::size_t>(g.nodeCount()), std::vector<NucCode>(opts.length));

    const auto order = g.preorder();
    for (const NodeId id : order) {
        auto& seq = state[static_cast<std::size_t>(id)];
        if (id == g.root()) {
            for (std::size_t i = 0; i < opts.length; ++i)
                seq[i] = static_cast<NucCode>(rng.categorical(piW));
            continue;
        }
        const auto& parentSeq = state[static_cast<std::size_t>(g.node(id).parent)];
        const Matrix4 p = model.transition(opts.scale * g.branchLength(id));
        // Per-source-nucleotide transition rows as sampling weights.
        std::array<std::array<double, 4>, 4> rows{};
        for (std::size_t x = 0; x < 4; ++x)
            for (std::size_t y = 0; y < 4; ++y) rows[x][y] = p(x, y);
        for (std::size_t i = 0; i < opts.length; ++i)
            seq[i] = static_cast<NucCode>(rng.categorical(rows[parentSeq[i]]));
    }

    std::vector<Sequence> out;
    out.reserve(static_cast<std::size_t>(g.tipCount()));
    for (int tip = 0; tip < g.tipCount(); ++tip)
        out.emplace_back(g.tipNames()[static_cast<std::size_t>(tip)],
                         std::move(state[static_cast<std::size_t>(tip)]));
    return Alignment(std::move(out));
}

}  // namespace mpcgs
