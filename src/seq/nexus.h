// Minimal NEXUS reader (DATA/CHARACTERS block) — the other interchange
// format population-genetics users commonly hold sequence data in. Parses
// DIMENSIONS (ntax/nchar), honours interleaved matrices, ignores blocks it
// does not know.
#pragma once

#include <iosfwd>
#include <string>

#include "seq/alignment.h"

namespace mpcgs {

Alignment readNexus(std::istream& in);
Alignment readNexusString(const std::string& text);
Alignment readNexusFile(const std::string& path);

}  // namespace mpcgs
