#include "seq/alignment.h"

#include <unordered_set>

#include "util/error.h"

namespace mpcgs {

Alignment::Alignment(std::vector<Sequence> seqs) : seqs_(std::move(seqs)) {
    if (seqs_.empty()) return;
    const std::size_t len = seqs_[0].length();
    std::unordered_set<std::string> names;
    names.reserve(seqs_.size());
    for (const auto& s : seqs_) {
        if (s.length() != len) throw ParseError("alignment: sequences have unequal lengths");
        // Duplicate names break tip lookup, pop-map assignment and result
        // reporting; every input format funnels through here, so reject
        // once centrally.
        if (!names.insert(s.name()).second)
            throw ParseError("alignment: duplicate sequence name '" + s.name() + "'");
    }
}

std::vector<std::string> Alignment::names() const {
    std::vector<std::string> out;
    out.reserve(seqs_.size());
    for (const auto& s : seqs_) out.push_back(s.name());
    return out;
}

std::vector<NucCode> Alignment::column(std::size_t site) const {
    std::vector<NucCode> out;
    out.reserve(seqs_.size());
    for (const auto& s : seqs_) out.push_back(s.at(site));
    return out;
}

BaseFreqs Alignment::baseFrequencies() const {
    std::array<double, 4> counts{0, 0, 0, 0};
    double total = 0.0;
    for (const auto& s : seqs_) {
        for (const NucCode c : s.codes()) {
            if (c == kNucUnknown) continue;
            counts[c] += 1.0;
            total += 1.0;
        }
    }
    if (total == 0.0) return kUniformFreqs;
    // Floor zero counts so no frequency is exactly 0 (a zero pi makes the
    // likelihood of that base -inf everywhere).
    constexpr double kFloor = 1e-6;
    BaseFreqs pi{};
    double norm = 0.0;
    for (int i = 0; i < 4; ++i) {
        pi[static_cast<std::size_t>(i)] =
            (counts[static_cast<std::size_t>(i)] + kFloor * total) / (total * (1.0 + 4.0 * kFloor));
        norm += pi[static_cast<std::size_t>(i)];
    }
    for (auto& p : pi) p /= norm;
    return pi;
}

bool Alignment::hasUnknowns() const {
    for (const auto& s : seqs_)
        for (const NucCode c : s.codes())
            if (c == kNucUnknown) return true;
    return false;
}

std::size_t Alignment::segregatingSites() const {
    std::size_t count = 0;
    const std::size_t len = length();
    for (std::size_t site = 0; site < len; ++site) {
        NucCode first = kNucUnknown;
        bool poly = false;
        for (const auto& s : seqs_) {
            const NucCode c = s.at(site);
            if (c == kNucUnknown) continue;
            if (first == kNucUnknown)
                first = c;
            else if (c != first) {
                poly = true;
                break;
            }
        }
        if (poly) ++count;
    }
    return count;
}

}  // namespace mpcgs
