#include "seq/dataset.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "seq/fasta.h"
#include "seq/nexus.h"
#include "seq/phylip.h"
#include "util/error.h"

namespace mpcgs {
namespace {

std::string lowerExtension(const std::string& path) {
    std::string ext = std::filesystem::path(path).extension().string();
    std::transform(ext.begin(), ext.end(), ext.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return ext;
}

/// Unique locus name: the file stem, suffixed with ".2", ".3", ... when an
/// earlier locus already claimed it.
std::string uniqueName(std::string base, std::unordered_set<std::string>& used) {
    if (base.empty()) base = "locus";
    std::string name = base;
    for (int n = 2; used.count(name) > 0; ++n) name = base + "." + std::to_string(n);
    used.insert(name);
    return name;
}

}  // namespace

PopMap readPopMap(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ParseError("pop-map: cannot open '" + path + "'");
    PopMap map;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
        std::istringstream fields(line);
        std::string seq, pop, extra;
        if (!(fields >> seq)) continue;  // blank or comment-only line
        const std::string where =
            " (pop-map '" + path + "' line " + std::to_string(lineNo) + ")";
        if (!(fields >> pop))
            throw ParseError("pop-map: missing population label for '" + seq + "'" + where);
        if (fields >> extra)
            throw ParseError("pop-map: unexpected trailing field '" + extra + "'" + where);
        if (map.bySequence.count(seq) > 0)
            throw ParseError("pop-map: duplicate sequence name '" + seq + "'" + where);
        int index = -1;
        for (std::size_t i = 0; i < map.populations.size(); ++i)
            if (map.populations[i] == pop) index = static_cast<int>(i);
        if (index < 0) {
            index = static_cast<int>(map.populations.size());
            map.populations.push_back(pop);
        }
        map.bySequence[seq] = index;
    }
    if (map.bySequence.empty())
        throw ParseError("pop-map: '" + path + "' assigns no sequences");
    return map;
}

Alignment readAlignmentFile(const std::string& path) {
    const std::string ext = lowerExtension(path);
    if (ext == ".nex" || ext == ".nxs") return readNexusFile(path);
    if (ext == ".fa" || ext == ".fasta" || ext == ".fna") return readFastaFile(path);
    return readPhylipFile(path);
}

Dataset Dataset::single(Alignment aln, std::string name) {
    Dataset ds;
    ds.add(Locus{std::move(name), std::move(aln), 1.0});
    return ds;
}

Dataset Dataset::fromFiles(const std::vector<std::string>& paths) {
    if (paths.empty()) throw ConfigError("Dataset: no input files");
    Dataset ds;
    std::unordered_set<std::string> used;
    for (const std::string& path : paths) {
        const std::string stem = std::filesystem::path(path).stem().string();
        ds.add(Locus{uniqueName(stem, used), readAlignmentFile(path), 1.0});
    }
    ds.validate();
    return ds;
}

Dataset Dataset::fromManifest(const std::string& manifestPath) {
    std::ifstream in(manifestPath);
    if (!in) throw ConfigError("Dataset: cannot open manifest '" + manifestPath + "'");
    const std::filesystem::path baseDir =
        std::filesystem::path(manifestPath).parent_path();

    Dataset ds;
    std::unordered_set<std::string> used;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string path;
        if (!(fields >> path)) continue;  // blank or comment-only line

        std::string name;
        double rate = 1.0;
        std::string popMapPath;
        std::string field;
        while (fields >> field) {
            const auto eq = field.find('=');
            const std::string key = field.substr(0, eq);
            const std::string value = eq == std::string::npos ? "" : field.substr(eq + 1);
            const std::string where =
                " (manifest '" + manifestPath + "' line " + std::to_string(lineNo) + ")";
            if (eq == std::string::npos || value.empty())
                throw ConfigError("Dataset: expected key=value, got '" + field + "'" + where);
            if (key == "name") {
                name = value;
            } else if (key == "rate") {
                std::size_t used_chars = 0;
                try {
                    rate = std::stod(value, &used_chars);
                } catch (const std::exception&) {
                    used_chars = 0;
                }
                if (used_chars != value.size())
                    throw ConfigError("Dataset: bad rate '" + value + "'" + where);
            } else if (key == "pop") {
                popMapPath = value;
            } else {
                throw ConfigError("Dataset: unknown manifest key '" + key + "'" + where);
            }
        }

        std::filesystem::path file(path);
        if (file.is_relative()) file = baseDir / file;
        // Derived (file-stem) names dedupe by suffixing; an explicit
        // duplicate name= is a manifest mistake and is rejected.
        const bool explicitName = !name.empty();
        if (!explicitName) name = file.stem().string();
        if (explicitName && used.count(name) > 0)
            throw ConfigError("Dataset: duplicate locus name '" + name + "' (manifest '" +
                              manifestPath + "' line " + std::to_string(lineNo) + ")");
        Locus locus{uniqueName(name, used), readAlignmentFile(file.string()), rate};
        if (!popMapPath.empty()) {
            std::filesystem::path popFile(popMapPath);
            if (popFile.is_relative()) popFile = baseDir / popFile;
            ds.assignPopulations(locus, readPopMap(popFile.string()));
        }
        ds.add(std::move(locus));
    }
    if (ds.locusCount() == 0)
        throw ConfigError("Dataset: manifest '" + manifestPath + "' lists no loci");
    ds.validate();
    return ds;
}

int Dataset::internPopulation(const std::string& label) {
    for (std::size_t i = 0; i < popNames_.size(); ++i)
        if (popNames_[i] == label) return static_cast<int>(i);
    popNames_.push_back(label);
    return static_cast<int>(popNames_.size() - 1);
}

void Dataset::assignPopulations(Locus& locus, const PopMap& map) {
    std::vector<int> pops;
    pops.reserve(locus.alignment.sequenceCount());
    for (const std::string& seq : locus.alignment.names()) {
        const auto it = map.bySequence.find(seq);
        if (it == map.bySequence.end())
            throw ConfigError("Dataset: sequence '" + seq + "' of locus '" + locus.name +
                              "' has no population assignment in the pop-map");
        pops.push_back(
            internPopulation(map.populations[static_cast<std::size_t>(it->second)]));
    }
    locus.populations = std::move(pops);
}

void Dataset::applyPopMap(const PopMap& map) {
    for (Locus& locus : loci_)
        if (locus.populations.empty()) assignPopulations(locus, map);
}

std::size_t Dataset::totalSites() const {
    std::size_t n = 0;
    for (const Locus& l : loci_) n += l.alignment.length();
    return n;
}

void Dataset::validate() const {
    if (loci_.empty()) throw ConfigError("Dataset: no loci");
    std::unordered_set<std::string> names;
    for (std::size_t l = 0; l < loci_.size(); ++l) {
        const Locus& locus = loci_[l];
        const std::string where = "locus " + std::to_string(l) +
                                  (locus.name.empty() ? "" : " ('" + locus.name + "')");
        if (locus.alignment.sequenceCount() < 2)
            throw ConfigError("Dataset: " + where + " needs at least 2 sequences");
        if (locus.alignment.length() == 0)
            throw ConfigError("Dataset: " + where + " has zero-length sequences");
        if (!(locus.mutationScale > 0.0) || !std::isfinite(locus.mutationScale))
            throw ConfigError("Dataset: " + where +
                              " needs a positive finite mutation-rate scalar");
        if (!names.insert(locus.name).second)
            throw ConfigError("Dataset: duplicate locus name '" + locus.name + "'");
        if (!locus.populations.empty()) {
            if (locus.populations.size() != locus.alignment.sequenceCount())
                throw ConfigError("Dataset: " + where +
                                  " needs one population assignment per sequence");
            for (const int p : locus.populations)
                if (p < 0 || p >= populationCount())
                    throw ConfigError("Dataset: " + where +
                                      " has a population index out of range");
        }
    }
}

}  // namespace mpcgs
