// DNA alphabet. Codes 0..3 are the four nucleotides in the paper's order
// (A, C, G, T); code 4 represents an unknown/ambiguous site, whose tip
// likelihood is 1 for every nucleotide (standard Felsenstein handling).
#pragma once

#include <array>
#include <cstdint>

namespace mpcgs {

using NucCode = std::uint8_t;

inline constexpr NucCode kNucA = 0;
inline constexpr NucCode kNucC = 1;
inline constexpr NucCode kNucG = 2;
inline constexpr NucCode kNucT = 3;
inline constexpr NucCode kNucUnknown = 4;

inline constexpr int kNumNucs = 4;

/// Base frequencies pi indexed by NucCode (sums to 1).
using BaseFreqs = std::array<double, 4>;

inline constexpr BaseFreqs kUniformFreqs{0.25, 0.25, 0.25, 0.25};

/// True for A or G.
inline constexpr bool isPurine(NucCode c) { return c == kNucA || c == kNucG; }
/// True for C or T.
inline constexpr bool isPyrimidine(NucCode c) { return c == kNucC || c == kNucT; }

/// Map an input character to a code. Accepts upper/lower case, U as T, and
/// the common unknown markers (N, X, ?, -, and IUPAC ambiguity codes all
/// collapse to kNucUnknown). Returns 0xFF for characters that are not
/// valid sequence content at all.
NucCode charToNuc(char c);

/// Canonical character for a code ('A','C','G','T','N').
char nucToChar(NucCode c);

}  // namespace mpcgs
