// Nucleotide substitution models.
//
// The inference side of the paper uses the one-parameter Felsenstein (1981)
// model of Eq. (20):
//
//   P_XY(t) = e^{-ut} * delta_XY + (1 - e^{-ut}) * pi_Y,
//
// while the evaluation generates data with seq-gen's F84 model (§6.1). The
// thesis notes the models are "subtly different" and tolerates the
// mismatch; this library implements both, plus the JC69/K80/HKY85/GTR
// family, so the mismatch itself can be studied (examples/model_comparison).
//
// General reversible models use a spectral decomposition computed once at
// construction: with D = diag(pi), B = D^{1/2} Q D^{-1/2} is symmetric, so
// P(t) = D^{-1/2} V e^{Lambda t} V^T D^{1/2}.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "seq/nucleotide.h"
#include "util/matrix4.h"

namespace mpcgs {

class SubstModel {
  public:
    virtual ~SubstModel() = default;

    /// Transition probability matrix P(X -> Y | t); rows index the source
    /// nucleotide. Rows sum to 1 for every t >= 0.
    virtual Matrix4 transition(double t) const = 0;

    /// Stationary base frequencies pi.
    virtual const BaseFreqs& stationary() const = 0;

    /// Instantaneous rate matrix Q (rows sum to 0).
    virtual Matrix4 rateMatrix() const = 0;

    virtual std::string name() const = 0;
    virtual std::unique_ptr<SubstModel> clone() const = 0;

    /// Expected substitutions per unit time at stationarity,
    /// -sum_i pi_i Q_ii.
    double meanRate() const;
};

/// Eq. (20) verbatim: the model the paper's data-likelihood kernel
/// implements, with `u` the mutation rate per unit time.
class F81Model final : public SubstModel {
  public:
    explicit F81Model(BaseFreqs pi = kUniformFreqs, double u = 1.0);

    Matrix4 transition(double t) const override;
    const BaseFreqs& stationary() const override { return pi_; }
    Matrix4 rateMatrix() const override;
    std::string name() const override { return "F81"; }
    std::unique_ptr<SubstModel> clone() const override {
        return std::make_unique<F81Model>(*this);
    }

    double u() const { return u_; }

  private:
    BaseFreqs pi_;
    double u_;
};

/// General time-reversible model defined by six exchangeabilities
/// (AC, AG, AT, CG, CT, GT) and stationary frequencies.
class GtrModel final : public SubstModel {
  public:
    using Exchangeabilities = std::array<double, 6>;

    /// If `normalize`, Q is scaled so the mean substitution rate is 1
    /// (branch lengths then measure expected substitutions per site, the
    /// seq-gen convention).
    GtrModel(std::string name, const Exchangeabilities& s, BaseFreqs pi, bool normalize = true);

    Matrix4 transition(double t) const override;
    const BaseFreqs& stationary() const override { return pi_; }
    Matrix4 rateMatrix() const override { return q_; }
    std::string name() const override { return name_; }
    std::unique_ptr<SubstModel> clone() const override {
        return std::make_unique<GtrModel>(*this);
    }

  private:
    std::string name_;
    BaseFreqs pi_;
    Matrix4 q_;
    // Spectral factors: P(t) = left * diag(exp(lambda t)) * right.
    Matrix4 left_;
    Matrix4 right_;
    std::array<double, 4> lambda_{};
};

/// Jukes-Cantor 1969 (uniform frequencies, single rate), normalized.
std::unique_ptr<SubstModel> makeJc69();

/// Kimura 1980 two-parameter model with transition/transversion rate ratio
/// kappa, uniform frequencies, normalized.
std::unique_ptr<SubstModel> makeK80(double kappa);

/// Hasegawa-Kishino-Yano 1985 with rate ratio kappa and frequencies pi.
std::unique_ptr<SubstModel> makeHky85(double kappa, BaseFreqs pi);

/// Felsenstein 1984 — the seq-gen default family used by the paper's data
/// generation. `kappa` is the within-class rate boost (a/b in Felsenstein's
/// two-process formulation); kappa = 0 reduces to F81.
std::unique_ptr<SubstModel> makeF84(double kappa, BaseFreqs pi);

/// Fully general GTR.
std::unique_ptr<SubstModel> makeGtr(const GtrModel::Exchangeabilities& s, BaseFreqs pi,
                                    bool normalize = true);

}  // namespace mpcgs
