#include "seq/nexus.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace mpcgs {
namespace {

std::string upper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return s;
}

/// Tokenizer: NEXUS punctuation ; = are their own tokens, [] comments are
/// skipped, quoted labels preserved.
class Tokens {
  public:
    explicit Tokens(std::istream& in) : in_(in) {}

    /// Next token, or empty string at end of input.
    std::string next() {
        skipSpaceAndComments();
        if (!in_.good()) return "";
        const int c = in_.peek();
        if (c == EOF) return "";
        if (c == ';' || c == '=') {
            in_.get();
            return std::string(1, static_cast<char>(c));
        }
        if (c == '\'') {
            in_.get();
            std::string out;
            int ch;
            while ((ch = in_.get()) != EOF && ch != '\'') out += static_cast<char>(ch);
            return out;
        }
        std::string out;
        while (in_.good()) {
            const int ch = in_.peek();
            if (ch == EOF || std::isspace(ch) || ch == ';' || ch == '=' || ch == '[') break;
            out += static_cast<char>(in_.get());
        }
        return out;
    }

    /// Rest of the current line's tokens are irrelevant; skip to after the
    /// next ';'.
    void skipStatement() {
        std::string t;
        while (!(t = next()).empty())
            if (t == ";") return;
    }

  private:
    void skipSpaceAndComments() {
        for (;;) {
            int c = in_.peek();
            while (c != EOF && std::isspace(c)) {
                in_.get();
                c = in_.peek();
            }
            if (c == '[') {  // comment, possibly nested
                int depth = 0;
                int ch;
                while ((ch = in_.get()) != EOF) {
                    if (ch == '[') ++depth;
                    if (ch == ']' && --depth == 0) break;
                }
                continue;
            }
            return;
        }
    }

    std::istream& in_;
};

}  // namespace

Alignment readNexus(std::istream& in) {
    // Header check.
    std::string header;
    std::getline(in, header);
    if (upper(header).rfind("#NEXUS", 0) != 0) throw ParseError("nexus: missing #NEXUS header");

    Tokens toks(in);
    std::size_t ntax = 0, nchar = 0;
    bool interleave = false;

    // Scan for a DATA or CHARACTERS block.
    std::string t;
    bool inData = false;
    while (!(t = toks.next()).empty()) {
        const std::string u = upper(t);
        if (!inData) {
            if (u == "BEGIN") {
                const std::string block = upper(toks.next());
                toks.next();  // ';'
                if (block == "DATA" || block == "CHARACTERS") inData = true;
                continue;
            }
            continue;
        }
        if (u == "DIMENSIONS") {
            std::string k;
            while (!(k = toks.next()).empty() && k != ";") {
                const std::string ku = upper(k);
                if (ku == "NTAX" || ku == "NCHAR") {
                    if (toks.next() != "=") throw ParseError("nexus: expected '=' in DIMENSIONS");
                    const std::string v = toks.next();
                    (ku == "NTAX" ? ntax : nchar) =
                        static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
                }
            }
        } else if (u == "FORMAT") {
            std::string k;
            while (!(k = toks.next()).empty() && k != ";") {
                const std::string ku = upper(k);
                if (ku == "INTERLEAVE") {
                    interleave = true;
                } else if (ku == "DATATYPE" || ku == "MISSING" || ku == "GAP") {
                    if (toks.next() != "=") throw ParseError("nexus: expected '=' in FORMAT");
                    const std::string v = upper(toks.next());
                    if (ku == "DATATYPE" && v != "DNA" && v != "NUCLEOTIDE" && v != "RNA")
                        throw ParseError("nexus: unsupported DATATYPE '" + v + "'");
                }
            }
        } else if (u == "MATRIX") {
            if (ntax < 2 || nchar == 0)
                throw ParseError("nexus: MATRIX before valid DIMENSIONS");
            if (ntax > (1u << 22) || nchar > (1u << 30))
                throw ParseError("nexus: implausible DIMENSIONS");
            std::vector<std::string> names;
            std::map<std::string, std::string> rows;
            std::string tok;
            std::string* active = nullptr;
            while (!(tok = toks.next()).empty() && tok != ";") {
                // A token is a taxon label when we're at a row boundary,
                // i.e. when the previous row is full (non-interleaved) or
                // on every odd token (name seq name seq ...). Simplest
                // robust rule: a token that parses entirely as sequence
                // content extends the active row *if* one is open and not
                // full; otherwise it is a name.
                const bool looksLikeSeq =
                    active != nullptr &&
                    std::all_of(tok.begin(), tok.end(), [](char c) { return charToNuc(c) != 0xFF; });
                if (looksLikeSeq && active->size() < nchar) {
                    *active += tok;
                    if (active->size() >= nchar) active = nullptr;
                } else {
                    const auto it = rows.find(tok);
                    if (it == rows.end()) {
                        names.push_back(tok);
                        active = &rows[tok];
                    } else {
                        active = &it->second;  // interleaved continuation
                    }
                }
            }
            if (names.size() != ntax)
                throw ParseError("nexus: MATRIX has " + std::to_string(names.size()) +
                                 " taxa, DIMENSIONS says " + std::to_string(ntax));
            std::vector<Sequence> seqs;
            seqs.reserve(ntax);
            for (const auto& name : names) {
                const std::string& chars = rows[name];
                if (chars.size() != nchar)
                    throw ParseError("nexus: taxon '" + name + "' has " +
                                     std::to_string(chars.size()) + " characters, expected " +
                                     std::to_string(nchar));
                seqs.push_back(Sequence::fromString(name, chars));
            }
            (void)interleave;  // handled implicitly by the continuation rule
            return Alignment(std::move(seqs));
        } else if (u == "END" || u == "ENDBLOCK") {
            toks.skipStatement();
            inData = false;
        } else if (t == ";") {
            continue;
        } else {
            // Unknown command inside the data block: skip its statement.
            toks.skipStatement();
        }
    }
    throw ParseError("nexus: no DATA/CHARACTERS matrix found");
}

Alignment readNexusString(const std::string& text) {
    std::istringstream in(text);
    return readNexus(in);
}

Alignment readNexusFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ParseError("nexus: cannot open '" + path + "'");
    return readNexus(in);
}

}  // namespace mpcgs
