#include "seq/distance.h"

#include <cmath>
#include <functional>

namespace mpcgs {
namespace {

std::vector<std::vector<double>> pairwise(
    const Alignment& aln, const std::function<double(std::size_t)>& fromCount) {
    const std::size_t n = aln.sequenceCount();
    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const std::size_t c = aln.sequence(i).hammingDistance(aln.sequence(j));
            d[i][j] = d[j][i] = fromCount(c);
        }
    return d;
}

}  // namespace

std::vector<std::vector<double>> hammingMatrix(const Alignment& aln) {
    return pairwise(aln, [](std::size_t c) { return static_cast<double>(c); });
}

std::vector<std::vector<double>> pDistanceMatrix(const Alignment& aln) {
    const double len = static_cast<double>(aln.length());
    return pairwise(aln, [len](std::size_t c) { return static_cast<double>(c) / len; });
}

std::vector<std::vector<double>> jcDistanceMatrix(const Alignment& aln) {
    const double len = static_cast<double>(aln.length());
    return pairwise(aln, [len](std::size_t c) {
        const double p = static_cast<double>(c) / len;
        if (p >= 0.749999) return 10.0;  // saturation clamp
        return -0.75 * std::log(1.0 - 4.0 * p / 3.0);
    });
}

}  // namespace mpcgs
