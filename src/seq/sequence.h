// Sequences and the 2-bit packed layout of §5.1.3.
//
// The paper stores sequence data in CUDA constant memory, 2 bits per base,
// so that a 64-bit read feeds a whole 32-thread warp. PackedAlignment
// reproduces that layout on the CPU: per-sequence 2-bit words with the
// unknown sites tracked in a side mask.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/nucleotide.h"

namespace mpcgs {

/// A named nucleotide sequence (unpacked, one code per byte).
class Sequence {
  public:
    Sequence() = default;
    Sequence(std::string name, std::vector<NucCode> codes)
        : name_(std::move(name)), codes_(std::move(codes)) {}

    /// Parse from characters; throws ParseError on invalid characters.
    static Sequence fromString(std::string name, const std::string& chars);

    const std::string& name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    std::size_t length() const { return codes_.size(); }
    NucCode at(std::size_t i) const { return codes_[i]; }
    void set(std::size_t i, NucCode c) { codes_[i] = c; }
    const std::vector<NucCode>& codes() const { return codes_; }

    /// Render as characters.
    std::string toString() const;

    /// Number of positions that differ from `other` (both known); the raw
    /// distance measure of §5.1.3's UPGMA initialization.
    std::size_t hammingDistance(const Sequence& other) const;

    bool operator==(const Sequence&) const = default;

  private:
    std::string name_;
    std::vector<NucCode> codes_;
};

/// 2-bit packed storage for a whole alignment (sequence-major). 32 bases
/// per 64-bit word, mirroring the paper's constant-memory packing.
class PackedAlignment {
  public:
    PackedAlignment() = default;
    PackedAlignment(const std::vector<Sequence>& seqs);

    std::size_t sequenceCount() const { return nSeq_; }
    std::size_t length() const { return length_; }

    /// Code of base `site` of sequence `seq` (0..3, or kNucUnknown).
    NucCode at(std::size_t seq, std::size_t site) const;

    /// The 64-bit word holding sites [32*w, 32*w+32) of sequence `seq` —
    /// the unit the paper broadcasts to a warp.
    std::uint64_t word(std::size_t seq, std::size_t w) const;

    std::size_t wordsPerSequence() const { return wordsPerSeq_; }

  private:
    std::size_t nSeq_ = 0;
    std::size_t length_ = 0;
    std::size_t wordsPerSeq_ = 0;
    std::vector<std::uint64_t> words_;
    std::vector<std::uint64_t> unknownMask_;  // 1 bit per site
    std::size_t maskWordsPerSeq_ = 0;
};

}  // namespace mpcgs
