// Sequence evolution simulator — the seq-gen substitute (§6.1).
//
// Given a genealogy and a substitution model, draws a root sequence from
// the model's stationary distribution and mutates it down every branch with
// the model's transition probabilities, exactly the generative process
// seq-gen implements for the models this library provides. The paper's
// data sets come from `seq-gen -mF84 -l <L> -s <theta>`; the `-s` scale
// multiplies branch lengths before simulation.
#pragma once

#include "phylo/tree.h"
#include "rng/rng.h"
#include "seq/alignment.h"
#include "seq/subst_model.h"

namespace mpcgs {

struct SeqGenOptions {
    std::size_t length = 200;  ///< sites per sequence (seq-gen -l)
    double scale = 1.0;        ///< branch-length multiplier (seq-gen -s)
};

/// Simulate one alignment over the tips of `g`. Tip names are taken from
/// the genealogy. Deterministic given the Rng state.
Alignment simulateSequences(const Genealogy& g, const SubstModel& model,
                            const SeqGenOptions& opts, Rng& rng);

}  // namespace mpcgs
