#include "seq/subst_model.h"

#include <cmath>

#include "util/error.h"

namespace mpcgs {
namespace {

void checkFreqs(const BaseFreqs& pi) {
    double sum = 0.0;
    for (const double p : pi) {
        if (p <= 0.0) throw ConfigError("substitution model: frequencies must be positive");
        sum += p;
    }
    if (std::fabs(sum - 1.0) > 1e-8)
        throw ConfigError("substitution model: frequencies must sum to 1");
}

}  // namespace

double SubstModel::meanRate() const {
    const Matrix4 q = rateMatrix();
    const BaseFreqs& pi = stationary();
    double rate = 0.0;
    for (std::size_t i = 0; i < 4; ++i) rate -= pi[i] * q(i, i);
    return rate;
}

// --- F81 (Eq. 20) ------------------------------------------------------------

F81Model::F81Model(BaseFreqs pi, double u) : pi_(pi), u_(u) {
    checkFreqs(pi_);
    if (u <= 0.0) throw ConfigError("F81: u must be positive");
}

Matrix4 F81Model::transition(double t) const {
    require(t >= 0.0, "transition: negative branch length");
    const double e = std::exp(-u_ * t);
    Matrix4 p;
    for (std::size_t x = 0; x < 4; ++x)
        for (std::size_t y = 0; y < 4; ++y)
            p(x, y) = (x == y ? e : 0.0) + (1.0 - e) * pi_[y];
    return p;
}

Matrix4 F81Model::rateMatrix() const {
    // dP/dt at t=0: Q_xy = u * pi_y for x != y, Q_xx = -u * (1 - pi_x).
    Matrix4 q;
    for (std::size_t x = 0; x < 4; ++x)
        for (std::size_t y = 0; y < 4; ++y)
            q(x, y) = (x == y) ? -u_ * (1.0 - pi_[x]) : u_ * pi_[y];
    return q;
}

// --- GTR ---------------------------------------------------------------------

namespace {

/// Index of the (i, j) exchangeability in the canonical AC,AG,AT,CG,CT,GT
/// order, for i < j.
std::size_t exchIndex(std::size_t i, std::size_t j) {
    // (0,1)=AC (0,2)=AG (0,3)=AT (1,2)=CG (1,3)=CT (2,3)=GT
    static constexpr int table[4][4] = {{-1, 0, 1, 2}, {0, -1, 3, 4}, {1, 3, -1, 5}, {2, 4, 5, -1}};
    return static_cast<std::size_t>(table[i][j]);
}

}  // namespace

GtrModel::GtrModel(std::string name, const Exchangeabilities& s, BaseFreqs pi, bool normalize)
    : name_(std::move(name)), pi_(pi) {
    checkFreqs(pi_);
    for (const double v : s)
        if (v < 0.0) throw ConfigError("GTR: exchangeabilities must be non-negative");

    // Build Q with q_ij = s_ij * pi_j for i != j.
    for (std::size_t i = 0; i < 4; ++i) {
        double rowSum = 0.0;
        for (std::size_t j = 0; j < 4; ++j) {
            if (i == j) continue;
            const double rate = s[exchIndex(i, j)] * pi_[j];
            q_(i, j) = rate;
            rowSum += rate;
        }
        q_(i, i) = -rowSum;
    }

    if (normalize) {
        double rate = 0.0;
        for (std::size_t i = 0; i < 4; ++i) rate -= pi_[i] * q_(i, i);
        if (rate <= 0.0) throw ConfigError("GTR: degenerate rate matrix");
        q_ = q_.scaled(1.0 / rate);
    }

    // Symmetrize: B = D^{1/2} Q D^{-1/2} with D = diag(pi).
    Matrix4 b;
    std::array<double, 4> sq{}, isq{};
    for (std::size_t i = 0; i < 4; ++i) {
        sq[i] = std::sqrt(pi_[i]);
        isq[i] = 1.0 / sq[i];
    }
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) b(i, j) = sq[i] * q_(i, j) * isq[j];

    const SymEigen4 eig = symmetricEigen(b);
    lambda_ = eig.values;
    // left = D^{-1/2} V,  right = V^T D^{1/2}.
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
            left_(i, j) = isq[i] * eig.vectors(i, j);
            right_(i, j) = eig.vectors(j, i) * sq[j];
        }
}

Matrix4 GtrModel::transition(double t) const {
    require(t >= 0.0, "transition: negative branch length");
    Matrix4 p;
    std::array<double, 4> e{};
    for (std::size_t k = 0; k < 4; ++k) e[k] = std::exp(lambda_[k] * t);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < 4; ++k) acc += left_(i, k) * e[k] * right_(k, j);
            // Clamp the tiny negative values spectral round-off can produce.
            p(i, j) = acc < 0.0 ? 0.0 : acc;
        }
    return p;
}

// --- factories ---------------------------------------------------------------

std::unique_ptr<SubstModel> makeJc69() {
    return std::make_unique<GtrModel>("JC69", GtrModel::Exchangeabilities{1, 1, 1, 1, 1, 1},
                                      kUniformFreqs);
}

std::unique_ptr<SubstModel> makeK80(double kappa) {
    if (kappa <= 0.0) throw ConfigError("K80: kappa must be positive");
    return std::make_unique<GtrModel>(
        "K80", GtrModel::Exchangeabilities{1, kappa, 1, 1, kappa, 1}, kUniformFreqs);
}

std::unique_ptr<SubstModel> makeHky85(double kappa, BaseFreqs pi) {
    if (kappa <= 0.0) throw ConfigError("HKY85: kappa must be positive");
    return std::make_unique<GtrModel>("HKY85",
                                      GtrModel::Exchangeabilities{1, kappa, 1, 1, kappa, 1}, pi);
}

std::unique_ptr<SubstModel> makeF84(double kappa, BaseFreqs pi) {
    if (kappa < 0.0) throw ConfigError("F84: kappa must be non-negative");
    // Felsenstein's two-process form: general replacement at rate b plus a
    // within-class replacement at rate a = kappa * b. As exchangeabilities
    // this is 1 + kappa/pi_R for A<->G and 1 + kappa/pi_Y for C<->T.
    const double piR = pi[kNucA] + pi[kNucG];
    const double piY = pi[kNucC] + pi[kNucT];
    return std::make_unique<GtrModel>(
        "F84",
        GtrModel::Exchangeabilities{1, 1 + kappa / piR, 1, 1, 1 + kappa / piY, 1}, pi);
}

std::unique_ptr<SubstModel> makeGtr(const GtrModel::Exchangeabilities& s, BaseFreqs pi,
                                    bool normalize) {
    return std::make_unique<GtrModel>("GTR", s, pi, normalize);
}

}  // namespace mpcgs
