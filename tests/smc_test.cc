// SMC subsystem: partial-forest likelihood agreement with the pruning
// reference, exact-marginal validation of the unbiased logZ estimator on
// tiny trees (quadrature over all of genealogy space), bitwise
// thread-count invariance of logZ and of a full PMMH run, kill+resume of
// PMMH being bitwise-identical, scheme cross-agreement, the
// SmcThetaLikelihood curve behaving as a likelihood (maximizer near the
// data's information), and checkpoint format v5 with v1-v4 read-compat.
#include "smc/smc_sampler.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "core/smc_estimator.h"
#include "lik/forest_eval.h"
#include "mcmc/checkpoint.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "smc/particle_cloud.h"
#include "smc/pmmh.h"
#include "util/logspace.h"

namespace mpcgs {
namespace {

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
}

Alignment simulateData(int n, double theta, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(n, theta, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

// --- forest evaluator --------------------------------------------------

TEST(ForestEvalTest, FullTreeAgreesWithPruningReference) {
    const Alignment aln = simulateData(7, 1.0, 200, 5);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    const ForestEvaluator eval(lik);

    Mt19937 rng(8);
    const Genealogy g = simulateCoalescent(7, 1.0, rng);

    // Assemble the tree bottom-up through combine(), exactly the way a
    // particle grows, and compare the root likelihood with Felsenstein.
    std::vector<SubtreePartials> partials(static_cast<std::size_t>(g.nodeCount()));
    std::vector<double> rootLogL(static_cast<std::size_t>(g.nodeCount()));
    for (const NodeId id : g.postorder()) {
        if (g.isTip(id)) {
            partials[id] = eval.tipPartials(id);
        } else {
            const NodeId a = g.node(id).child[0];
            const NodeId b = g.node(id).child[1];
            eval.combine(partials[a], g.branchLength(a), partials[b], g.branchLength(b),
                         partials[id]);
        }
        rootLogL[id] = eval.rootLogLikelihood(partials[id]);
    }
    EXPECT_NEAR(rootLogL[g.root()], lik.logLikelihoodReference(g), 1e-9);
}

TEST(ForestEvalTest, RateHeterogeneousFullTreeAgrees) {
    const Alignment aln = simulateData(5, 1.0, 150, 6);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model, RateCategories::discreteGamma(0.5, 4));
    const ForestEvaluator eval(lik);

    Mt19937 rng(9);
    const Genealogy g = simulateCoalescent(5, 1.0, rng);
    std::vector<SubtreePartials> partials(static_cast<std::size_t>(g.nodeCount()));
    for (const NodeId id : g.postorder()) {
        if (g.isTip(id)) {
            partials[id] = eval.tipPartials(id);
        } else {
            const NodeId a = g.node(id).child[0];
            const NodeId b = g.node(id).child[1];
            eval.combine(partials[a], g.branchLength(a), partials[b], g.branchLength(b),
                         partials[id]);
        }
    }
    EXPECT_NEAR(eval.rootLogLikelihood(partials[g.root()]),
                lik.logLikelihoodReference(g), 1e-9);
}

// --- exact-marginal validation -----------------------------------------

/// Exact log P(D | theta) for n = 2 by quadrature: the genealogy is a
/// single coalescence time with density (2/theta) e^{-2t/theta} (Eq. 17).
double exactLogMarginalTwoTips(const DataLikelihood& lik, const Alignment& aln,
                               double theta) {
    Genealogy g(2);
    g.setTipNames(aln.names());
    g.link(2, 0);
    g.link(2, 1);
    g.setRoot(2);
    // Trapezoid on a fine grid; the integrand decays like e^{-2t/theta}.
    const double tMax = 15.0 * theta;
    const int steps = 4000;
    const double h = tMax / steps;
    std::vector<double> logVals;
    logVals.reserve(steps + 1);
    for (int i = 0; i <= steps; ++i) {
        const double t = i == 0 ? 1e-9 : i * h;
        g.node(2).time = t;
        double lg = logCoalescentWaitDensity(2, t, theta) + lik.logLikelihoodReference(g);
        if (i == 0 || i == steps) lg += std::log(0.5);
        logVals.push_back(lg);
    }
    return logSumExp(logVals) + std::log(h);
}

TEST(SmcLogZTest, MatchesExactMarginalOnTwoTips) {
    const Alignment aln = simulateData(2, 1.0, 120, 11);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);

    for (const double theta : {0.5, 1.0, 2.0}) {
        const double exact = exactLogMarginalTwoTips(lik, aln, theta);
        SmcOptions opts;
        opts.particles = 4096;
        const double logZ = runSmcPass(lik, theta, opts, 17).logZ;
        // With 4096 particles and one event the estimator variance is tiny;
        // 0.05 log units is ~5 sigma headroom (checked offline).
        EXPECT_NEAR(logZ, exact, 0.05) << "theta = " << theta;
    }
}

/// Exact log P(D | theta) for n = 3: sum over the 3 labelled first pairs
/// and 2D quadrature over (t3, t2). Each event's density is Eq. 17.
double exactLogMarginalThreeTips(const DataLikelihood& lik, const Alignment& aln,
                                 double theta) {
    const int grid = 120;
    const double t3Max = 6.0 * theta;   // 3-lineage phase: rate 6/theta
    const double t2Max = 15.0 * theta;  // 2-lineage phase: rate 2/theta
    const double h3 = t3Max / grid;
    const double h2 = t2Max / grid;
    std::vector<double> logVals;
    logVals.reserve(3 * grid * grid);
    for (int pair = 0; pair < 3; ++pair) {
        // First coalescence joins (a, b); the third tip joins at the root.
        const int a = pair == 0 ? 0 : (pair == 1 ? 0 : 1);
        const int b = pair == 0 ? 1 : 2;
        const int c = pair == 0 ? 2 : (pair == 1 ? 1 : 0);
        Genealogy g(3);
        g.setTipNames(aln.names());
        g.link(3, a);
        g.link(3, b);
        g.link(4, 3);
        g.link(4, c);
        g.setRoot(4);
        for (int i = 0; i < grid; ++i) {
            const double t3 = (i + 0.5) * h3;
            for (int j = 0; j < grid; ++j) {
                const double t2 = (j + 0.5) * h2;
                g.node(3).time = t3;
                g.node(4).time = t3 + t2;
                logVals.push_back(logCoalescentWaitDensity(3, t3, theta) +
                                  logCoalescentWaitDensity(2, t2, theta) +
                                  lik.logLikelihoodReference(g));
            }
        }
    }
    return logSumExp(logVals) + std::log(h3 * h2);
}

TEST(SmcLogZTest, MatchesExactMarginalOnThreeTips) {
    const Alignment aln = simulateData(3, 1.0, 80, 13);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);

    const double exact = exactLogMarginalThreeTips(lik, aln, 1.0);
    SmcOptions opts;
    opts.particles = 4096;
    // Average several independent passes in linear space (the estimator is
    // unbiased in Z, not logZ) to shrink the Monte-Carlo error.
    std::vector<double> logZs;
    for (const std::uint64_t seed : {21ull, 22ull, 23ull, 24ull})
        logZs.push_back(runSmcPass(lik, 1.0, opts, seed).logZ);
    const double pooled =
        logSumExp(logZs) - std::log(static_cast<double>(logZs.size()));
    // Quadrature discretization + MC error; 0.1 log units is ample
    // (offline: |diff| < 0.03 across seeds).
    EXPECT_NEAR(pooled, exact, 0.1);
}

TEST(SmcLogZTest, SampledGenealogyIsValidAndPosteriorConsistent) {
    const Alignment aln = simulateData(6, 1.0, 150, 19);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    SmcOptions opts;
    opts.particles = 256;
    const SmcPassResult res = runSmcPass(lik, 1.0, opts, 3);
    res.sampled.validate();
    EXPECT_EQ(res.sampled.tipCount(), 6);
    EXPECT_NEAR(res.sampledLogPosterior,
                lik.logLikelihoodReference(res.sampled) +
                    logCoalescentPrior(res.sampled, 1.0),
                1e-8);
    EXPECT_TRUE(std::isfinite(res.logZ));
}

// --- determinism -------------------------------------------------------

TEST(SmcDeterminismTest, LogZIsBitwiseThreadCountInvariant) {
    const Alignment aln = simulateData(8, 1.0, 200, 23);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    SmcOptions opts;
    opts.particles = 512;

    const SmcPassResult serial = runSmcPass(lik, 1.0, opts, 41, nullptr);
    for (const unsigned threads : {1u, 4u, 8u}) {
        ThreadPool pool(threads);
        const SmcPassResult res = runSmcPass(lik, 1.0, opts, 41, &pool);
        EXPECT_EQ(std::memcmp(&res.logZ, &serial.logZ, sizeof(double)), 0)
            << threads << " threads: " << res.logZ << " vs " << serial.logZ;
        EXPECT_EQ(res.sampled, serial.sampled) << threads << " threads";
    }
}

TEST(SmcDeterminismTest, EveryResamplingSchemeGivesAFiniteConsistentLogZ) {
    const Alignment aln = simulateData(6, 1.0, 150, 29);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    SmcOptions opts;
    opts.particles = 2048;
    opts.essThreshold = 0.7;  // force resampling to actually trigger

    std::vector<double> logZs;
    for (const ResamplingScheme scheme :
         {ResamplingScheme::Multinomial, ResamplingScheme::Stratified,
          ResamplingScheme::Systematic, ResamplingScheme::Residual}) {
        opts.scheme = scheme;
        const SmcPassResult res = runSmcPass(lik, 1.0, opts, 7);
        EXPECT_TRUE(std::isfinite(res.logZ)) << resamplingSchemeName(scheme);
        EXPECT_GT(res.resamples, 0u) << resamplingSchemeName(scheme);
        logZs.push_back(res.logZ);
    }
    // All four schemes target the same marginal likelihood.
    for (std::size_t i = 1; i < logZs.size(); ++i)
        EXPECT_NEAR(logZs[i], logZs[0], 1.0) << "scheme " << i;
}

// --- SmcThetaLikelihood ------------------------------------------------

TEST(SmcThetaLikelihoodTest, CurveIsDeterministicAndPeaksInTheInterior) {
    const Alignment aln = simulateData(6, 1.0, 300, 31);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    SmcOptions opts;
    opts.particles = 512;
    const SmcThetaLikelihood curve(lik, opts, 55);

    EXPECT_EQ(curve.logL(1.0), curve.logL(1.0));  // common random numbers
    // The marginal likelihood must fall off on both flanks of the truth.
    const double atTruth = curve.logL(1.0);
    EXPECT_GT(atTruth, curve.logL(0.02));
    EXPECT_GT(atTruth, curve.logL(50.0));
}

// --- PMMH --------------------------------------------------------------

PmmhEstimateOptions smallPmmhOptions(std::uint64_t seed) {
    PmmhEstimateOptions opts;
    opts.theta0 = 1.0;
    opts.samples = 30;
    opts.burnInFraction1000 = 200;
    opts.pmmh.chains = 2;
    opts.pmmh.seed = seed;
    opts.pmmh.smc.particles = 64;
    return opts;
}

TEST(PmmhTest, RunIsBitwiseThreadCountInvariant) {
    const Alignment aln = simulateData(6, 1.0, 120, 37);
    const Dataset ds = Dataset::single(aln);
    const PmmhEstimateOptions opts = smallPmmhOptions(61);

    const PmmhEstimateResult serial = runPmmh(ds, opts, nullptr);
    EXPECT_GT(serial.samples, 0u);
    for (const unsigned threads : {4u, 8u}) {
        ThreadPool pool(threads);
        const PmmhEstimateResult res = runPmmh(ds, opts, &pool);
        ASSERT_EQ(res.thetaChainMajor.size(), serial.thetaChainMajor.size());
        EXPECT_EQ(std::memcmp(res.thetaChainMajor.data(), serial.thetaChainMajor.data(),
                              res.thetaChainMajor.size() * sizeof(double)),
                  0)
            << threads << " threads";
        EXPECT_EQ(std::memcmp(&res.posteriorMean, &serial.posteriorMean, sizeof(double)),
                  0);
    }
}

TEST(PmmhTest, KillAndResumeIsBitwiseIdentical) {
    const Alignment aln = simulateData(6, 1.0, 120, 43);
    const Dataset ds = Dataset::single(aln);

    // Reference: uninterrupted run.
    PmmhEstimateOptions opts = smallPmmhOptions(67);
    const PmmhEstimateResult full = runPmmh(ds, opts);

    // Interrupted: snapshot every tick, crash at a partial sample cap,
    // resume out to the full cap. Burn-in ticks derive from the cap
    // (ceil(cap * permille / 1000)), so the partial cap is chosen to give
    // the same burn-in as the full run (22 -> 11 ticks, 30 -> 15 ticks,
    // both ceil to 3 burn ticks at 200 permille) — resuming then replays
    // the identical tick sequence.
    const std::string path = tempPath("pmmh_midrun.mpck");
    PmmhEstimateOptions part = opts;
    part.samples = 22;
    part.checkpointPath = path;
    part.checkpointIntervalTicks = 1;
    runPmmh(ds, part);

    PmmhEstimateOptions rest = opts;
    rest.checkpointPath = path;
    rest.checkpointIntervalTicks = 1;
    rest.resume = true;
    const PmmhEstimateResult resumed = runPmmh(ds, rest);

    ASSERT_EQ(resumed.thetaChainMajor.size(), full.thetaChainMajor.size());
    EXPECT_EQ(std::memcmp(resumed.thetaChainMajor.data(), full.thetaChainMajor.data(),
                          full.thetaChainMajor.size() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&resumed.posteriorMean, &full.posteriorMean, sizeof(double)), 0);
    EXPECT_EQ(resumed.acceptRate, full.acceptRate);
    std::remove(path.c_str());
}

TEST(PmmhTest, ResumeWithALargerCapExtendsTheRunAsAPureContinuation) {
    // Extending --samples on resume must only ADD sampling ticks: the burn
    // geometry is frozen in the snapshot (recomputing it from the larger
    // cap would inject burn ticks into the middle of the chain), so the
    // extended run's trace starts with the interrupted run's trace.
    const Alignment aln = simulateData(5, 1.0, 100, 83);
    const Dataset ds = Dataset::single(aln);
    const std::string path = tempPath("pmmh_extend.mpck");

    PmmhEstimateOptions part = smallPmmhOptions(89);
    part.samples = 14;  // a cap whose recomputed burn ticks would differ
    part.checkpointPath = path;
    part.checkpointIntervalTicks = 1;
    const PmmhEstimateResult before = runPmmh(ds, part);

    PmmhEstimateOptions ext = part;
    ext.samples = 30;
    ext.resume = true;
    const PmmhEstimateResult after = runPmmh(ds, ext);

    ASSERT_GT(after.thetaChainMajor.size(), before.thetaChainMajor.size());
    // Traces are chain-major with equal per-chain lengths; each chain's
    // pre-resume draws must be a bitwise prefix of its extended trace.
    const std::size_t chains = 2;
    const std::size_t perBefore = before.thetaChainMajor.size() / chains;
    const std::size_t perAfter = after.thetaChainMajor.size() / chains;
    ASSERT_GT(perAfter, perBefore);
    for (std::size_t c = 0; c < chains; ++c)
        for (std::size_t i = 0; i < perBefore; ++i) {
            const double b = before.thetaChainMajor[c * perBefore + i];
            const double a = after.thetaChainMajor[c * perAfter + i];
            EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
                << "chain " << c << " draw " << i << " changed on resume";
        }
    std::remove(path.c_str());
}

TEST(PmmhTest, ResumeWithIncompatibleConfigurationIsRejected) {
    const Alignment aln = simulateData(5, 1.0, 100, 47);
    const Dataset ds = Dataset::single(aln);
    const std::string path = tempPath("pmmh_mismatch.mpck");
    PmmhEstimateOptions opts = smallPmmhOptions(71);
    opts.samples = 8;
    opts.checkpointPath = path;
    opts.checkpointIntervalTicks = 1;
    runPmmh(ds, opts);

    PmmhEstimateOptions other = opts;
    other.resume = true;
    other.pmmh.smc.particles = 128;  // different filter geometry
    EXPECT_THROW(runPmmh(ds, other), ConfigError);

    // Unreadable snapshots raise ResumeError (fresh-run fallback signal).
    // Two-generation retention would rescue a corrupt latest via .prev,
    // so drop that generation first.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "garbage";
    }
    std::remove((path + ".prev").c_str());
    PmmhEstimateOptions broken = opts;
    broken.resume = true;
    EXPECT_THROW(runPmmh(ds, broken), ResumeError);
    std::remove(path.c_str());
}

TEST(PmmhTest, MultiLocusPooledPosteriorCoversTheTruth) {
    Dataset ds;
    Mt19937 rng(53);
    for (int l = 0; l < 3; ++l) {
        const Genealogy g = simulateCoalescent(5, 1.0, rng);
        const auto model = makeF84(2.0, kUniformFreqs);
        ds.add(Locus{"locus" + std::to_string(l),
                     simulateSequences(g, *model, {150, 1.0}, rng), 1.0});
    }
    PmmhEstimateOptions opts;
    opts.theta0 = 0.5;
    opts.samples = 120;
    opts.pmmh.chains = 2;
    opts.pmmh.seed = 59;
    opts.pmmh.smc.particles = 128;
    const PmmhEstimateResult res = runPmmh(ds, opts);
    EXPECT_GT(res.acceptRate, 0.0);
    EXPECT_GT(res.posteriorMean, 0.1);
    EXPECT_LT(res.posteriorMean, 10.0);
    EXPECT_LE(res.q025, res.median);
    EXPECT_LE(res.median, res.q975);
}

// --- checkpoint format -------------------------------------------------

TEST(SmcCheckpointTest, FormatIsV5AndOlderVersionsStillLoad) {
    EXPECT_EQ(kCheckpointVersion, 5u);
    EXPECT_EQ(kCheckpointMinVersion, 1u);
    // v1-v4 files (as written by earlier releases) must still open and
    // read; only v6+ is rejected.
    for (const std::uint32_t v : {1u, 2u, 3u, 4u}) {
        const std::string path = tempPath("smc_v" + std::to_string(v) + ".mpck");
        {
            CheckpointWriter w(path, v);
            w.u64(99);
            w.str("older section");
            w.commit();
        }
        CheckpointReader r(path);
        EXPECT_EQ(r.version(), v);
        EXPECT_EQ(r.u64(), 99u);
        EXPECT_EQ(r.str(), "older section");
        std::remove(path.c_str());
    }
}

TEST(SmcCheckpointTest, PmmhSnapshotSectionRoundTripsThroughTheSampler) {
    const Alignment aln = simulateData(5, 1.0, 100, 73);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    PooledSmcLikelihood pooled({{&lik, 1.0}}, SmcOptions{.particles = 32}, 3);

    PmmhOptions po;
    po.chains = 2;
    po.seed = 77;
    po.smc.particles = 32;
    PmmhSampler a(pooled, 1.0, po);
    for (int i = 0; i < 4; ++i) a.tick(nullptr);

    const std::string path = tempPath("psmc_section.mpck");
    {
        CheckpointWriter w(path);
        a.save(w);
        w.commit();
    }
    PmmhSampler b(pooled, 1.0, po);
    {
        CheckpointReader r(path);
        EXPECT_EQ(r.version(), kCheckpointVersion);
        b.load(r);
    }
    // Continue both; the continuation must be bitwise identical.
    for (int i = 0; i < 3; ++i) {
        a.tick(nullptr);
        b.tick(nullptr);
    }
    for (std::size_t c = 0; c < 2; ++c) {
        const double thetaA = a.chainTheta(c), thetaB = b.chainTheta(c);
        const double logZA = a.chainLogZ(c), logZB = b.chainLogZ(c);
        EXPECT_EQ(std::memcmp(&thetaA, &thetaB, sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&logZA, &logZB, sizeof(double)), 0);
    }
    EXPECT_EQ(a.continuation(), b.continuation());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace mpcgs
