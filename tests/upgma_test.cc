#include "phylo/upgma.h"

#include <cmath>

#include <gtest/gtest.h>

#include "seq/distance.h"
#include "util/error.h"

namespace mpcgs {
namespace {

TEST(UpgmaTest, ClustersClosestPairFirst) {
    // d(0,1) = 2 is smallest; (0,1) merge at height 1, then 2 joins.
    const DistanceMatrix d{{0, 2, 8}, {2, 0, 8}, {8, 8, 0}};
    const Genealogy g = upgmaTree(d);
    EXPECT_EQ(g.tipCount(), 3);
    const NodeId p01 = g.node(0).parent;
    EXPECT_EQ(g.node(1).parent, p01);
    EXPECT_DOUBLE_EQ(g.node(p01).time, 1.0);
    EXPECT_DOUBLE_EQ(g.tmrca(), 4.0);
    EXPECT_NO_THROW(g.validate());
}

TEST(UpgmaTest, AverageLinkageWeighting) {
    // Classic example: after merging (0,1), distance to 2 is the average.
    const DistanceMatrix d{{0, 2, 5}, {2, 0, 9}, {5, 9, 0}};
    const Genealogy g = upgmaTree(d);
    // (0,1) at height 1; d((01),2) = (5+9)/2 = 7 -> root at 3.5.
    EXPECT_DOUBLE_EQ(g.tmrca(), 3.5);
}

TEST(UpgmaTest, FourTaxaKnownTopology) {
    const DistanceMatrix d{
        {0, 1, 6, 6}, {1, 0, 6, 6}, {6, 6, 0, 2}, {6, 6, 2, 0}};
    const Genealogy g = upgmaTree(d);
    EXPECT_EQ(g.node(0).parent, g.node(1).parent);
    EXPECT_EQ(g.node(2).parent, g.node(3).parent);
    EXPECT_DOUBLE_EQ(g.node(g.node(0).parent).time, 0.5);
    EXPECT_DOUBLE_EQ(g.node(g.node(2).parent).time, 1.0);
    EXPECT_DOUBLE_EQ(g.tmrca(), 3.0);
}

TEST(UpgmaTest, IdenticalSequencesGetStrictlyPositiveBranches) {
    const DistanceMatrix d{{0, 0, 4}, {0, 0, 4}, {4, 4, 0}};
    const Genealogy g = upgmaTree(d);
    EXPECT_NO_THROW(g.validate());  // validate demands strictly increasing times
    EXPECT_GT(g.node(g.node(0).parent).time, 0.0);
}

TEST(UpgmaTest, RejectsBadMatrices) {
    EXPECT_THROW(upgmaTree({{0.0}}), ConfigError);
    EXPECT_THROW(upgmaTree({{0, 1}, {1, 0}, {2, 2}}), ConfigError);
}

TEST(UpgmaTest, WorksFromSequenceDistances) {
    const Alignment aln({Sequence::fromString("a", "AAAAAAAA"),
                         Sequence::fromString("b", "AAAAAAAT"),
                         Sequence::fromString("c", "TTTTAAAA"),
                         Sequence::fromString("d", "TTTTTTTA")});
    const Genealogy g = upgmaTree(hammingMatrix(aln));
    EXPECT_EQ(g.tipCount(), 4);
    // a,b differ by 1 and should be siblings; c,d differ by 3 but both are
    // 4+ from a/b.
    EXPECT_EQ(g.node(0).parent, g.node(1).parent);
    EXPECT_NO_THROW(g.validate());
}

TEST(ScaleToExpectedHeightTest, SetsCoalescentHeight) {
    const DistanceMatrix d{{0, 2, 8}, {2, 0, 8}, {8, 8, 0}};
    Genealogy g = upgmaTree(d);
    scaleToExpectedHeight(g, 1.5);
    // E[TMRCA] = theta (1 - 1/n) = 1.5 * 2/3 = 1.0.
    EXPECT_NEAR(g.tmrca(), 1.0, 1e-12);
    EXPECT_THROW(scaleToExpectedHeight(g, 0.0), ConfigError);
}

TEST(DistanceTest, MatricesAreConsistent) {
    const Alignment aln({Sequence::fromString("a", "AAAA"),
                         Sequence::fromString("b", "AATT")});
    EXPECT_DOUBLE_EQ(hammingMatrix(aln)[0][1], 2.0);
    EXPECT_DOUBLE_EQ(pDistanceMatrix(aln)[0][1], 0.5);
    // JC correction: -3/4 ln(1 - 4*0.5/3).
    EXPECT_NEAR(jcDistanceMatrix(aln)[0][1], -0.75 * std::log(1.0 - 2.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(hammingMatrix(aln)[1][0], hammingMatrix(aln)[0][1]);
    EXPECT_DOUBLE_EQ(hammingMatrix(aln)[0][0], 0.0);
}

TEST(DistanceTest, JcSaturationClamps) {
    const Alignment aln({Sequence::fromString("a", "AAAA"),
                         Sequence::fromString("b", "TTTT")});
    EXPECT_DOUBLE_EQ(jcDistanceMatrix(aln)[0][1], 10.0);
}

}  // namespace
}  // namespace mpcgs
