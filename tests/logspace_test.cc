#include "util/logspace.h"

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogAdd, MatchesLinearForModerateValues) {
    EXPECT_NEAR(logAdd(std::log(3.0), std::log(4.0)), std::log(7.0), 1e-12);
    EXPECT_NEAR(logAdd(std::log(1e-5), std::log(2e-5)), std::log(3e-5), 1e-12);
}

TEST(LogAdd, IsCommutative) {
    EXPECT_DOUBLE_EQ(logAdd(-1.5, -700.0), logAdd(-700.0, -1.5));
}

TEST(LogAdd, HandlesZeroOperands) {
    EXPECT_DOUBLE_EQ(logAdd(-kInf, 2.5), 2.5);
    EXPECT_DOUBLE_EQ(logAdd(2.5, -kInf), 2.5);
    EXPECT_DOUBLE_EQ(logAdd(-kInf, -kInf), -kInf);
}

TEST(LogAdd, AvoidsUnderflowForExtremeMagnitudes) {
    // e^-2000 + e^-2001 would be 0 in linear space.
    const double r = logAdd(-2000.0, -2001.0);
    EXPECT_NEAR(r, -2000.0 + std::log1p(std::exp(-1.0)), 1e-12);
}

TEST(LogAdd, LargerOperandDominatesWhenFarApart) {
    EXPECT_DOUBLE_EQ(logAdd(0.0, -800.0), 0.0);
}

TEST(LogSub, MatchesLinear) {
    EXPECT_NEAR(logSub(std::log(7.0), std::log(3.0)), std::log(4.0), 1e-12);
}

TEST(LogSub, EqualOperandsGiveZero) {
    EXPECT_EQ(logSub(-3.0, -3.0), -kInf);
}

TEST(LogSub, SubtractingZeroIsIdentity) {
    EXPECT_DOUBLE_EQ(logSub(1.25, -kInf), 1.25);
}

TEST(LogSumExp, EmptyIsLogZero) {
    EXPECT_EQ(logSumExp({}), -kInf);
}

TEST(LogSumExp, SingleElement) {
    const std::vector<double> xs{-42.0};
    EXPECT_DOUBLE_EQ(logSumExp(xs), -42.0);
}

TEST(LogSumExp, MatchesSequentialLogAdd) {
    const std::vector<double> xs{-1.0, -2.0, -3.0, -4.5, -0.25};
    double seq = -kInf;
    for (double x : xs) seq = logAdd(seq, x);
    EXPECT_NEAR(logSumExp(xs), seq, 1e-12);
}

TEST(LogSumExp, AllZeros) {
    const std::vector<double> xs{-kInf, -kInf};
    EXPECT_EQ(logSumExp(xs), -kInf);
}

TEST(LogValue, DefaultIsOne) {
    EXPECT_DOUBLE_EQ(LogValue().log(), 0.0);
    EXPECT_DOUBLE_EQ(LogValue().linear(), 1.0);
}

TEST(LogValue, MultiplicationAddsLogs) {
    const auto a = LogValue::fromLinear(2.0);
    const auto b = LogValue::fromLinear(8.0);
    EXPECT_NEAR((a * b).linear(), 16.0, 1e-12);
    EXPECT_NEAR((b / a).linear(), 4.0, 1e-12);
}

TEST(LogValue, AdditionInLogSpace) {
    const auto a = LogValue::fromLinear(0.5);
    const auto b = LogValue::fromLinear(0.25);
    EXPECT_NEAR((a + b).linear(), 0.75, 1e-12);
}

TEST(LogValue, ZeroBehaves) {
    const auto z = LogValue::zero();
    EXPECT_TRUE(z.isZero());
    EXPECT_TRUE((z * LogValue::fromLinear(5.0)).isZero());
    EXPECT_NEAR((z + LogValue::fromLinear(5.0)).linear(), 5.0, 1e-12);
}

TEST(LogValue, ComparisonsFollowMagnitude) {
    EXPECT_LT(LogValue::fromLinear(1.0), LogValue::fromLinear(2.0));
    EXPECT_GT(LogValue::fromLinear(3.0), LogValue::fromLinear(2.0));
    EXPECT_LE(LogValue::zero(), LogValue::fromLinear(1e-300));
}

TEST(LogValue, PowScalesLog) {
    const auto a = LogValue::fromLinear(4.0);
    EXPECT_NEAR(a.pow(0.5).linear(), 2.0, 1e-12);
    EXPECT_NEAR(a.pow(3.0).linear(), 64.0, 1e-9);
}

TEST(LogNormalize, ProducesProbabilities) {
    const std::vector<double> lw{-1.0, -2.0, -3.0};
    std::vector<double> p;
    logNormalize(lw, p);
    double sum = 0.0;
    for (double x : p) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GT(p[0], p[1]);
    EXPECT_GT(p[1], p[2]);
}

TEST(LogNormalize, HandlesExtremeOffsets) {
    const std::vector<double> lw{-5000.0, -5001.0};
    std::vector<double> p;
    logNormalize(lw, p);
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
    EXPECT_NEAR(p[0] / p[1], std::exp(1.0), 1e-9);
}

TEST(LogNormalize, AllZeroFallsBackToUniform) {
    const std::vector<double> lw{-kInf, -kInf, -kInf, -kInf};
    std::vector<double> p;
    logNormalize(lw, p);
    for (double x : p) EXPECT_DOUBLE_EQ(x, 0.25);
}

// Property sweep: logAdd consistency against long double linear arithmetic
// across magnitudes.
class LogAddProperty : public ::testing::TestWithParam<double> {};

TEST_P(LogAddProperty, AgreesWithLongDouble) {
    const double base = GetParam();
    std::mt19937 gen(1234);
    std::uniform_real_distribution<double> d(-5.0, 5.0);
    for (int i = 0; i < 200; ++i) {
        const double a = base + d(gen);
        const double b = base + d(gen);
        const long double lin =
            std::log(std::exp(static_cast<long double>(a) - base) +
                     std::exp(static_cast<long double>(b) - base)) + base;
        EXPECT_NEAR(logAdd(a, b), static_cast<double>(lin), 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, LogAddProperty,
                         ::testing::Values(-600.0, -100.0, -10.0, 0.0, 10.0, 100.0, 600.0));

}  // namespace
}  // namespace mpcgs
