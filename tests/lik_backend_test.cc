// Likelihood backend contract: the arena and batched backends are
// SCHEDULING choices, never numeric ones. Tests pin (1) bitwise agreement
// of both backends with the ForestEvaluator reference on raw operation
// sequences, (2) bitwise backend- and thread-count-invariance of full SMC
// passes (logZ, sampled genealogy, resampling trajectory) across
// resampling pressure, rate heterogeneity and multi-locus pooling,
// (3) PMMH neutrality (a sampler built on either backend walks the
// identical chain), and (4) the batch statistics + option parsing.
#include "lik/lik_backend.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "lik/forest_eval.h"
#include "lik/rate_model.h"
#include "obs/metrics.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "smc/pmmh.h"
#include "smc/smc_sampler.h"
#include "util/error.h"

namespace mpcgs {
namespace {

Alignment simulateData(int n, double theta, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(n, theta, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

/// Drive `backend` through a random forest-building schedule (tips, then
/// pairwise combines with the schedule's branch lengths) using ONE flush
/// for the tips and one per combine generation, and return every live
/// root's log-likelihood.
std::vector<double> buildForest(LikelihoodBackend& backend, int tips, Mt19937& rng) {
    backend.resizeSlots(static_cast<std::size_t>(2 * tips - 1));
    std::vector<LikelihoodBackend::Slot> live;
    std::vector<double> logL(static_cast<std::size_t>(2 * tips - 1));
    for (int t = 0; t < tips; ++t) {
        backend.tipInit(t, t);
        backend.rootLogLik(t, &logL[t]);
        live.push_back(t);
    }
    backend.flush(nullptr);
    LikelihoodBackend::Slot next = tips;
    while (live.size() > 1) {
        const std::size_t a = static_cast<std::size_t>(rng.below(live.size()));
        std::size_t b = static_cast<std::size_t>(rng.below(live.size() - 1));
        if (b >= a) ++b;
        const double lenA = 0.01 + 0.3 * rng.uniform01();
        const double lenB = 0.01 + 0.3 * rng.uniform01();
        backend.combine(next, live[a], lenA, live[b], lenB);
        backend.rootLogLik(next, &logL[next]);
        backend.flush(nullptr);
        live[a] = next;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(b));
        ++next;
    }
    logL.resize(next);
    return logL;
}

TEST(LikBackendTest, NamesAndParsing) {
    EXPECT_STREQ(likBackendName(LikBackendKind::Arena), "arena");
    EXPECT_STREQ(likBackendName(LikBackendKind::Batched), "batched");
    EXPECT_EQ(parseLikBackend("arena"), LikBackendKind::Arena);
    EXPECT_EQ(parseLikBackend("batched"), LikBackendKind::Batched);
    EXPECT_THROW(parseLikBackend("gpu"), ConfigError);
    EXPECT_THROW(parseLikBackend(""), ConfigError);
}

TEST(LikBackendTest, BothBackendsMatchForestEvaluatorBitwise) {
    const Alignment aln = simulateData(7, 1.0, 240, 11);
    const F81Model model(aln.baseFrequencies());
    for (const bool gamma : {false, true}) {
        const DataLikelihood lik = gamma ? DataLikelihood(aln, model,
                                                          RateCategories::discreteGamma(
                                                              0.6, 4))
                                         : DataLikelihood(aln, model);
        const ForestEvaluator eval(lik);

        // Reference forest through the evaluator with an identical schedule.
        Mt19937 scheduleRng(99);
        const auto arena = makeLikelihoodBackend(LikBackendKind::Arena, lik);
        const std::vector<double> viaArena = buildForest(*arena, 7, scheduleRng);
        scheduleRng = Mt19937(99);
        const auto batched = makeLikelihoodBackend(LikBackendKind::Batched, lik);
        const std::vector<double> viaBatched = buildForest(*batched, 7, scheduleRng);

        // Evaluator reference: replay the same schedule on SubtreePartials.
        scheduleRng = Mt19937(99);
        std::vector<SubtreePartials> parts(13);
        std::vector<double> ref(13);
        std::vector<std::size_t> live;
        for (int t = 0; t < 7; ++t) {
            parts[t] = eval.tipPartials(t);
            ref[t] = eval.rootLogLikelihood(parts[t]);
            live.push_back(static_cast<std::size_t>(t));
        }
        std::size_t next = 7;
        while (live.size() > 1) {
            const std::size_t a = static_cast<std::size_t>(scheduleRng.below(live.size()));
            std::size_t b = static_cast<std::size_t>(scheduleRng.below(live.size() - 1));
            if (b >= a) ++b;
            const double lenA = 0.01 + 0.3 * scheduleRng.uniform01();
            const double lenB = 0.01 + 0.3 * scheduleRng.uniform01();
            eval.combine(parts[live[a]], lenA, parts[live[b]], lenB, parts[next]);
            ref[next] = eval.rootLogLikelihood(parts[next]);
            live[a] = next;
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(b));
            ++next;
        }

        ASSERT_EQ(viaArena.size(), ref.size());
        ASSERT_EQ(viaBatched.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(std::memcmp(&viaArena[i], &ref[i], sizeof(double)), 0)
                << "arena slot " << i << (gamma ? " (gamma)" : "");
            EXPECT_EQ(std::memcmp(&viaBatched[i], &ref[i], sizeof(double)), 0)
                << "batched slot " << i << (gamma ? " (gamma)" : "");
        }
        // The backends' slot arenas hold identical partials too.
        for (std::size_t s = 0; s < 13; ++s) {
            const auto da = arena->slotData(s), db = batched->slotData(s);
            ASSERT_EQ(da.size(), db.size());
            EXPECT_EQ(std::memcmp(da.data(), db.data(), da.size() * sizeof(double)), 0)
                << "slot " << s;
        }
    }
}

/// Full-pass invariance matrix: backend x thread count, on a config with
/// real resampling pressure (essThreshold 1.0 = resample every step, the
/// path that exercises the Kahn-ordered slot copies and cycle staging).
TEST(LikBackendTest, SmcPassBitwiseInvariantAcrossBackendsAndThreads) {
    const Alignment aln = simulateData(8, 1.0, 200, 31);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);

    for (const auto scheme :
         {ResamplingScheme::Systematic, ResamplingScheme::Multinomial}) {
        SmcOptions opts;
        opts.particles = 96;
        opts.scheme = scheme;
        opts.essThreshold = 1.0;
        opts.backend = LikBackendKind::Arena;
        const SmcPassResult ref = runSmcPass(lik, 1.0, opts, 4711);
        EXPECT_EQ(ref.backend, "arena");

        for (const auto backend : {LikBackendKind::Arena, LikBackendKind::Batched}) {
            for (const unsigned threads : {1u, 2u, 4u, 8u}) {
                SmcOptions o = opts;
                o.backend = backend;
                ThreadPool pool(threads);
                const SmcPassResult res = runSmcPass(lik, 1.0, o, 4711, &pool);
                EXPECT_EQ(std::memcmp(&res.logZ, &ref.logZ, sizeof(double)), 0)
                    << likBackendName(backend) << ", " << threads << " threads";
                EXPECT_EQ(std::memcmp(&res.sampledLogPosterior,
                                      &ref.sampledLogPosterior, sizeof(double)),
                          0)
                    << likBackendName(backend) << ", " << threads << " threads";
                EXPECT_EQ(res.sampled, ref.sampled)
                    << likBackendName(backend) << ", " << threads << " threads";
                EXPECT_EQ(res.resamples, ref.resamples);
                EXPECT_EQ(std::memcmp(&res.minEssFraction, &ref.minEssFraction,
                                      sizeof(double)),
                          0);
            }
        }
    }
}

TEST(LikBackendTest, GammaRatesBackendNeutral) {
    const Alignment aln = simulateData(6, 1.0, 180, 77);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model, RateCategories::discreteGamma(0.7, 4));

    SmcOptions opts;
    opts.particles = 64;
    opts.backend = LikBackendKind::Arena;
    const SmcPassResult a = runSmcPass(lik, 1.0, opts, 9);
    opts.backend = LikBackendKind::Batched;
    const SmcPassResult b = runSmcPass(lik, 1.0, opts, 9);
    EXPECT_EQ(std::memcmp(&a.logZ, &b.logZ, sizeof(double)), 0);
    EXPECT_EQ(a.sampled, b.sampled);
}

TEST(LikBackendTest, PooledMultiLocusBackendNeutral) {
    const Alignment a1 = simulateData(6, 1.0, 150, 3);
    const Alignment a2 = simulateData(6, 1.0, 120, 4);
    const F81Model m1(a1.baseFrequencies());
    const F81Model m2(a2.baseFrequencies());
    const DataLikelihood l1(a1, m1);
    const DataLikelihood l2(a2, m2);

    SmcOptions opts;
    opts.particles = 48;
    opts.backend = LikBackendKind::Arena;
    const PooledSmcLikelihood arenaPool({{&l1, 1.0}, {&l2, 1.6}}, opts, 21);
    opts.backend = LikBackendKind::Batched;
    const PooledSmcLikelihood batchedPool({{&l1, 1.0}, {&l2, 1.6}}, opts, 21);
    for (const double theta : {0.4, 1.0, 2.5}) {
        const double la = arenaPool.logL(theta);
        const double lb = batchedPool.logL(theta);
        EXPECT_EQ(std::memcmp(&la, &lb, sizeof(double)), 0) << "theta " << theta;
    }
}

TEST(LikBackendTest, PmmhChainsBackendNeutral) {
    const Alignment aln = simulateData(6, 1.0, 150, 13);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);

    PmmhOptions po;
    po.chains = 2;
    po.seed = 5;
    po.smc.particles = 32;

    std::vector<double> thetas[2], logZs[2];
    int idx = 0;
    for (const auto backend : {LikBackendKind::Arena, LikBackendKind::Batched}) {
        po.smc.backend = backend;
        PooledSmcLikelihood marg({{&lik, 1.0}}, po.smc, 17);
        ThreadPool pool(2);
        PmmhSampler pmmh(marg, 1.0, po, &pool);
        for (int t = 0; t < 8; ++t) pmmh.tick(nullptr);
        for (std::size_t c = 0; c < po.chains; ++c) {
            thetas[idx].push_back(pmmh.chainTheta(c));
            logZs[idx].push_back(pmmh.chainLogZ(c));
        }
        ++idx;
    }
    EXPECT_EQ(std::memcmp(thetas[0].data(), thetas[1].data(),
                          thetas[0].size() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(logZs[0].data(), logZs[1].data(),
                          logZs[0].size() * sizeof(double)),
              0);
}

TEST(LikBackendTest, BatchStatsRecordSharing) {
    const Alignment aln = simulateData(8, 1.0, 200, 31);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);

    // Execution counters live in the metrics registry (lik.* taxonomy) —
    // backends keep no private stats copy.
    obs::reset();
    obs::arm();

    SmcOptions opts;
    opts.particles = 128;
    opts.backend = LikBackendKind::Batched;
    const SmcPassResult res = runSmcPass(lik, 1.0, opts, 47);
    EXPECT_EQ(res.backend, "batched");
    const obs::MetricsSnapshot batched = obs::snapshot();
    // One flush per generation plus the tip batch.
    EXPECT_EQ(batched.counter(obs::Counter::LikFlushes), 8u);  // 1 tip + 7 events
    EXPECT_EQ(batched.counter(obs::Counter::LikCombineOps), 7u * 128u);
    // Matrix sharing: a naive execution exponentiates 2 matrices per
    // combine per category (lik.matrices_requested counts exactly that);
    // the batch must do strictly better (equal lengths dedupe within a
    // generation).
    EXPECT_EQ(batched.counter(obs::Counter::LikMatricesRequested),
              7u * 128u * 2u * lik.rateCategories().count());
    EXPECT_GT(batched.counter(obs::Counter::LikMatricesComputed), 0u);
    EXPECT_LT(batched.counter(obs::Counter::LikMatricesComputed),
              batched.counter(obs::Counter::LikMatricesRequested));

    obs::reset();
    opts.backend = LikBackendKind::Arena;
    const SmcPassResult ref = runSmcPass(lik, 1.0, opts, 47);
    EXPECT_EQ(ref.backend, "arena");
    const obs::MetricsSnapshot arena = obs::snapshot();
    EXPECT_EQ(arena.counter(obs::Counter::LikCombineOps),
              batched.counter(obs::Counter::LikCombineOps));
    // The eager backend computes every requested matrix — no dedup.
    EXPECT_EQ(arena.counter(obs::Counter::LikMatricesComputed),
              arena.counter(obs::Counter::LikMatricesRequested));

    obs::disarm();
    obs::reset();
}

}  // namespace
}  // namespace mpcgs
