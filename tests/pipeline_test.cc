// End-to-end pipeline tests mirroring §6.1's data flow:
// simulate tree (ms) -> simulate sequences (seq-gen) -> PHYLIP -> estimate.
#include <cmath>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "phylo/newick.h"
#include "rng/mt19937.h"
#include "seq/phylip.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"

namespace mpcgs {
namespace {

TEST(PipelineTest, TreeSurvivesNewickRoundTripIntoSeqgen) {
    Mt19937 rng(31);
    const Genealogy g = simulateCoalescent(10, 1.0, rng);
    const Genealogy g2 = fromNewick(toNewick(g));
    EXPECT_EQ(g2.tipCount(), g.tipCount());
    EXPECT_NEAR(g2.tmrca(), g.tmrca(), 1e-8 * g.tmrca());

    const auto model = makeF84(2.0, kUniformFreqs);
    Mt19937 seqRng(32);
    const Alignment aln = simulateSequences(g2, *model, {150, 1.0}, seqRng);
    EXPECT_EQ(aln.sequenceCount(), 10u);
    EXPECT_EQ(aln.length(), 150u);
}

TEST(PipelineTest, PhylipRoundTripPreservesData) {
    Mt19937 rng(33);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const auto model = makeJc69();
    const Alignment aln = simulateSequences(g, *model, {200, 1.0}, rng);
    const Alignment back = readPhylipString(writePhylipString(aln));
    EXPECT_EQ(back.sequenceCount(), aln.sequenceCount());
    for (std::size_t i = 0; i < aln.sequenceCount(); ++i)
        EXPECT_EQ(back.sequence(i).toString(), aln.sequence(i).toString());
}

TEST(PipelineTest, SeqgenScaleActsLikeBranchMultiplier) {
    // Doubling the scale doubles expected divergence: sequences simulated
    // with larger scale differ more.
    Mt19937 rngTree(34);
    const Genealogy g = simulateCoalescent(2, 1.0, rngTree);
    const auto model = makeJc69();

    auto meanDiff = [&](double scale, unsigned seed) {
        Mt19937 rng(seed);
        double acc = 0.0;
        const int reps = 60;
        for (int r = 0; r < reps; ++r) {
            const Alignment aln = simulateSequences(g, *model, {500, scale}, rng);
            acc += static_cast<double>(aln.sequence(0).hammingDistance(aln.sequence(1))) / 500.0;
        }
        return acc / reps;
    };
    EXPECT_GT(meanDiff(3.0, 35), meanDiff(0.3, 36));
}

TEST(PipelineTest, SequencesFromDeeperTreesDivergeMore) {
    const auto model = makeJc69();
    auto divergence = [&](double theta, unsigned seed) {
        Mt19937 rng(seed);
        double acc = 0.0;
        const int reps = 40;
        for (int r = 0; r < reps; ++r) {
            const Genealogy g = simulateCoalescent(4, theta, rng);
            const Alignment aln = simulateSequences(g, *model, {300, 1.0}, rng);
            acc += static_cast<double>(aln.segregatingSites());
        }
        return acc / reps;
    };
    EXPECT_GT(divergence(2.0, 37), divergence(0.2, 38));
}

TEST(PipelineTest, FullEstimationFromPhylipText) {
    // The exact mpcgs entry path: PHYLIP text in, theta out.
    Mt19937 rng(39);
    const Genealogy g = simulateCoalescent(8, 1.0, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    const Alignment aln = simulateSequences(g, *model, {300, 1.0}, rng);
    const Alignment parsed = readPhylipString(writePhylipString(aln));

    MpcgsOptions o;
    o.theta0 = 0.1;
    o.emIterations = 3;
    o.samplesPerIteration = 1500;
    o.gmhProposals = 16;
    o.seed = 40;
    ThreadPool pool(4);
    const MpcgsResult res = estimateTheta(parsed, o, &pool);
    EXPECT_GT(res.theta, 0.05);
    EXPECT_LT(res.theta, 10.0);
}

TEST(PipelineTest, IdenticalSeedsReproduceIdenticalEstimates) {
    Mt19937 rng(41);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const auto model = makeJc69();
    const Alignment aln = simulateSequences(g, *model, {200, 1.0}, rng);

    MpcgsOptions o;
    o.theta0 = 0.5;
    o.emIterations = 2;
    o.samplesPerIteration = 600;
    o.seed = 42;
    const double a = estimateTheta(aln, o).theta;
    const double b = estimateTheta(aln, o).theta;
    EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace mpcgs
