// Robustness: parsers must reject malformed input with ParseError — never
// crash, hang or accept garbage — across randomized mutations of valid
// inputs and raw random bytes.
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "phylo/newick.h"
#include "seq/fasta.h"
#include "seq/nexus.h"
#include "seq/phylip.h"
#include "util/error.h"

namespace mpcgs {
namespace {

const char* kValidNewick = "((a:1.0,b:1.0):2.0,(c:1.5,d:1.5):1.5);";
const char* kValidPhylip = " 3 8\nalpha ACGTACGT\nbeta  ACGTACGA\ngamma TTGTACGT\n";
const char* kValidFasta = ">one\nACGTACGT\n>two\nTTGTACGA\n";
const char* kValidNexus =
    "#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=2 NCHAR=4;\nFORMAT DATATYPE=DNA;\n"
    "MATRIX\none ACGT\ntwo TGCA\n;\nEND;\n";

/// Either parses successfully or throws ParseError/InvariantError; any
/// other behaviour (other exception types, crash) fails the test.
template <class F>
void mustParseOrReject(F&& parse, const std::string& input) {
    try {
        parse(input);
    } catch (const Error&) {
        // expected rejection path
    }
}

std::string mutate(const std::string& base, std::mt19937& gen) {
    std::string s = base;
    std::uniform_int_distribution<int> op(0, 3);
    std::uniform_int_distribution<std::size_t> pos(0, s.empty() ? 0 : s.size() - 1);
    std::uniform_int_distribution<int> ch(32, 126);
    switch (op(gen)) {
        case 0:  // flip a character
            if (!s.empty()) s[pos(gen)] = static_cast<char>(ch(gen));
            break;
        case 1:  // delete a character
            if (!s.empty()) s.erase(pos(gen), 1);
            break;
        case 2:  // insert a character
            s.insert(pos(gen), 1, static_cast<char>(ch(gen)));
            break;
        case 3:  // truncate
            s.resize(pos(gen));
            break;
    }
    return s;
}

std::string randomBytes(std::mt19937& gen, std::size_t n) {
    std::uniform_int_distribution<int> ch(1, 255);
    std::string s;
    for (std::size_t i = 0; i < n; ++i) s += static_cast<char>(ch(gen));
    return s;
}

TEST(FuzzParsers, NewickSurvivesMutations) {
    std::mt19937 gen(1);
    for (int i = 0; i < 3000; ++i)
        mustParseOrReject([](const std::string& s) { fromNewick(s); }, mutate(kValidNewick, gen));
}

TEST(FuzzParsers, PhylipSurvivesMutations) {
    std::mt19937 gen(2);
    for (int i = 0; i < 3000; ++i)
        mustParseOrReject([](const std::string& s) { readPhylipString(s); },
                          mutate(kValidPhylip, gen));
}

TEST(FuzzParsers, FastaSurvivesMutations) {
    std::mt19937 gen(3);
    for (int i = 0; i < 3000; ++i)
        mustParseOrReject([](const std::string& s) { readFastaString(s); },
                          mutate(kValidFasta, gen));
}

TEST(FuzzParsers, NexusSurvivesMutations) {
    std::mt19937 gen(4);
    for (int i = 0; i < 3000; ++i)
        mustParseOrReject([](const std::string& s) { readNexusString(s); },
                          mutate(kValidNexus, gen));
}

TEST(FuzzParsers, AllSurviveRandomBytes) {
    std::mt19937 gen(5);
    for (int i = 0; i < 500; ++i) {
        const std::string junk = randomBytes(gen, 1 + (i % 400));
        mustParseOrReject([](const std::string& s) { fromNewick(s); }, junk);
        mustParseOrReject([](const std::string& s) { readPhylipString(s); }, junk);
        mustParseOrReject([](const std::string& s) { readFastaString(s); }, junk);
        mustParseOrReject([](const std::string& s) { readNexusString(s); }, junk);
    }
}

TEST(FuzzParsers, DeeplyNestedNewickDoesNotOverflow) {
    // 2000 nested clades: the parser must either handle or reject cleanly.
    std::string deep;
    for (int i = 0; i < 2000; ++i) deep += '(';
    deep += "a:1,b:1";
    for (int i = 0; i < 2000; ++i) deep += "):1,x:1";
    deep += ";";
    mustParseOrReject([](const std::string& s) { fromNewick(s); }, deep);
}

}  // namespace
}  // namespace mpcgs
