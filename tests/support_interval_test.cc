#include "core/support_interval.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/mle.h"
#include "rng/mt19937.h"
#include "util/error.h"

namespace mpcgs {
namespace {

/// Concentrated samples whose curve approximates a smooth single-tree
/// likelihood in theta (peak at meanW / events).
std::vector<IntervalSummary> tightSummaries(int events, double meanW, double spread, int reps,
                                            unsigned seed) {
    Mt19937 rng(seed);
    std::vector<IntervalSummary> out;
    for (int r = 0; r < reps; ++r)
        out.push_back(IntervalSummary{meanW + spread * (rng.uniform01() - 0.5), events});
    return out;
}

TEST(SupportIntervalTest, BracketsTheMle) {
    const auto samples = tightSummaries(9, 9.0, 1.0, 1000, 1);
    const RelativeLikelihood rl(samples, 1.0);
    const MleResult mle = maximizeTheta(rl, 1.0);
    const SupportInterval si = supportInterval(rl, mle.theta);
    EXPECT_TRUE(si.lowerBounded);
    EXPECT_TRUE(si.upperBounded);
    EXPECT_LT(si.lower, si.mle);
    EXPECT_GT(si.upper, si.mle);
    // The curve at the bounds sits the requested drop below the maximum.
    EXPECT_NEAR(rl.logL(si.lower), si.logLAtMle - 1.92, 1e-5);
    EXPECT_NEAR(rl.logL(si.upper), si.logLAtMle - 1.92, 1e-5);
}

TEST(SupportIntervalTest, WiderDropGivesWiderInterval) {
    const auto samples = tightSummaries(9, 9.0, 1.0, 1000, 2);
    const RelativeLikelihood rl(samples, 1.0);
    const MleResult mle = maximizeTheta(rl, 1.0);
    const SupportInterval narrow = supportInterval(rl, mle.theta, 0.5);
    const SupportInterval wide = supportInterval(rl, mle.theta, 3.0);
    EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(SupportIntervalTest, SingleTreeCurveMatchesAnalyticCurvature) {
    // One genealogy: log L(theta) = -E log(theta/theta0) - w(1/theta-1/theta0);
    // the analytic drop-1.92 crossings can be computed by root-finding on
    // the exact function and must match the implementation's bisection.
    const std::vector<IntervalSummary> samples{IntervalSummary{12.0, 6}};
    const RelativeLikelihood rl(samples, 2.0);
    const double mle = 2.0;  // w/events = 12/6
    const SupportInterval si = supportInterval(rl, mle);
    auto exact = [&](double theta) {
        return -6.0 * std::log(theta / 2.0) - 12.0 * (1.0 / theta - 0.5);
    };
    EXPECT_NEAR(exact(si.lower), exact(mle) - 1.92, 1e-6);
    EXPECT_NEAR(exact(si.upper), exact(mle) - 1.92, 1e-6);
    EXPECT_LT(si.lower, 2.0);
    EXPECT_GT(si.upper, 2.0);
}

TEST(SupportIntervalTest, AsymmetryMatchesLikelihoodShape) {
    // Coalescent likelihoods are right-skewed in theta: the upper arm of
    // the support interval is longer than the lower arm.
    const std::vector<IntervalSummary> samples{IntervalSummary{12.0, 6}};
    const RelativeLikelihood rl(samples, 2.0);
    const SupportInterval si = supportInterval(rl, 2.0);
    EXPECT_GT(si.upper - si.mle, si.mle - si.lower);
}

TEST(SupportIntervalTest, Validation) {
    const std::vector<IntervalSummary> samples{IntervalSummary{12.0, 6}};
    const RelativeLikelihood rl(samples, 2.0);
    EXPECT_THROW(supportInterval(rl, 0.0), InvariantError);
    EXPECT_THROW(supportInterval(rl, 1.0, 0.0), InvariantError);
}

}  // namespace
}  // namespace mpcgs
