// Checkpoint/resume: primitive round-trips, snapshot integrity, and
// bitwise-identical continuation of interrupted runs for every strategy —
// both at the SamplerRun level (mid-sampling kill) and through
// estimateTheta (EM-boundary resume).
#include "mcmc/checkpoint.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "core/samplers.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"

namespace mpcgs {
namespace {

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
}

Alignment simulateData(int n, double theta, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(n, theta, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

TEST(CheckpointIoTest, PrimitivesRoundTrip) {
    const std::string path = tempPath("prims.ckpt");
    {
        CheckpointWriter w(path);
        w.u32(0xDEADBEEFu);
        w.u64(0x0123456789ABCDEFull);
        w.f64(-1.5e-300);
        w.str("sampler runtime");
        w.doubles(std::vector<double>{1.0, -2.5, 3.25});
        w.commit();
    }
    CheckpointReader r(path);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.f64(), -1.5e-300);
    EXPECT_EQ(r.str(), "sampler runtime");
    EXPECT_EQ(r.doubles(), (std::vector<double>{1.0, -2.5, 3.25}));
}

TEST(CheckpointIoTest, MissingAndCorruptFilesThrow) {
    EXPECT_THROW(CheckpointReader("/nonexistent/nowhere.ckpt"), CheckpointError);
    const std::string path = tempPath("corrupt.ckpt");
    {
        std::ofstream f(path, std::ios::binary);
        f << "not a snapshot at all";
    }
    EXPECT_THROW(CheckpointReader r(path), CheckpointError);
    // Truncation mid-record is detected on read.
    {
        CheckpointWriter w(path);
        w.u32(7);
        w.commit();
    }
    CheckpointReader r(path);
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.u64(), CheckpointError);
}

TEST(CheckpointIoTest, CorruptLengthFieldsAreRejectedBeforeAllocating) {
    // A garbage length word must raise CheckpointError, not attempt a
    // gigantic allocation.
    const std::string path = tempPath("badlen.ckpt");
    {
        CheckpointWriter w(path);
        w.u64(0x7FFFFFFFFFFFFFFFull);
        w.commit();
    }
    {
        CheckpointReader r(path);
        EXPECT_THROW(r.str(), CheckpointError);
    }
    {
        CheckpointReader r(path);
        EXPECT_THROW(r.doubles(), CheckpointError);
    }
    {
        CheckpointReader r(path);
        EXPECT_THROW(readGenealogy(r), CheckpointError);
    }
}

TEST(CheckpointIoTest, UncommittedWriterLeavesNoSnapshot) {
    const std::string path = tempPath("uncommitted.ckpt");
    {
        CheckpointWriter w(path);
        w.u64(1);
        // no commit: simulated crash mid-write
    }
    EXPECT_FALSE(checkpointExists(path));
}

TEST(CheckpointIoTest, GenealogyRoundTripsExactly) {
    Mt19937 rng(41);
    const Genealogy g = simulateCoalescent(9, 0.8, rng);
    const std::string path = tempPath("genealogy.ckpt");
    {
        CheckpointWriter w(path);
        writeGenealogy(w, g);
        w.commit();
    }
    CheckpointReader r(path);
    const Genealogy back = readGenealogy(r);
    EXPECT_EQ(g, back);
    EXPECT_NO_THROW(back.validate());
}

TEST(CheckpointIoTest, RngStateResumesBitwise) {
    Mt19937 rng = Mt19937::fromSplitMix(0xFEEDFACEull);
    for (int i = 0; i < 1000; ++i) rng.nextU32();  // land mid-buffer
    const std::string path = tempPath("rng.ckpt");
    {
        CheckpointWriter w(path);
        writeRng(w, rng);
        w.commit();
    }
    Mt19937 restored;
    CheckpointReader r(path);
    readRng(r, restored);
    for (int i = 0; i < 2000; ++i) EXPECT_EQ(rng.nextU32(), restored.nextU32());
}

struct RunArtifacts {
    std::vector<IntervalSummary> summaries;
    Genealogy continuation;
    SamplerStats stats;
};

void expectBitwiseEqual(const RunArtifacts& a, const RunArtifacts& b) {
    ASSERT_EQ(a.summaries.size(), b.summaries.size());
    for (std::size_t i = 0; i < a.summaries.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.summaries[i].weightedSum, b.summaries[i].weightedSum);
        EXPECT_EQ(a.summaries[i].events, b.summaries[i].events);
    }
    EXPECT_EQ(a.continuation, b.continuation);
    EXPECT_EQ(a.stats.steps, b.stats.steps);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
    EXPECT_EQ(a.stats.swapsProposed, b.stats.swapsProposed);
    EXPECT_EQ(a.stats.swapsAccepted, b.stats.swapsAccepted);
}

/// Mid-sampling kill/resume at the SamplerRun level: run to the cap in one
/// go, versus "crash" after killTicks and continue from the snapshot. Both
/// must produce the identical sample stream and final state.
class MidRunResumeTest : public ::testing::TestWithParam<std::pair<Strategy, bool>> {};

TEST_P(MidRunResumeTest, ResumedRunIsBitwiseIdentical) {
    const auto [strategy, cached] = GetParam();
    const Alignment aln = simulateData(7, 1.0, 150, 42);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    const Genealogy init = initialGenealogy(aln, 0.5);

    SamplerSpec spec;
    spec.strategy = strategy;
    spec.cachedBaseline = cached;
    spec.seed = 19;
    spec.chains = 3;
    spec.gmhProposals = 6;
    spec.gmhSamplesPerSet = 6;
    const std::size_t burnTicks = 20;
    const std::size_t capTicks = 60;
    const std::size_t killTicks = 23;  // not a checkpoint-interval multiple

    const auto makeFresh = [&] { return makeSampler(spec, lik, 0.5, init, nullptr); };

    // Reference: uninterrupted run.
    RunArtifacts full;
    {
        auto sampler = makeFresh();
        SummarySink sink;
        ConvergenceMonitor monitor;
        SamplerRun::Config cfg;
        cfg.burnInTicks = burnTicks;
        cfg.sampleTicks = capTicks;
        SamplerRun run(*sampler, cfg);
        run.execute(sink, monitor);
        full = RunArtifacts{sink.chainMajor(), sampler->continuation(), sampler->stats()};
    }

    // Interrupted run: snapshot every tick, stop ("crash") at killTicks.
    const std::string path = tempPath("midrun.ckpt");
    {
        auto sampler = makeFresh();
        SummarySink sink;
        ConvergenceMonitor monitor;
        SamplerRun::Config cfg;
        cfg.burnInTicks = burnTicks;
        cfg.sampleTicks = killTicks;
        cfg.checkpointInterval = 1;
        cfg.checkpoint = [&](std::size_t burnDone, std::size_t sampleDone, bool) {
            CheckpointWriter w(path);
            w.u64(burnDone);
            w.u64(sampleDone);
            sampler->save(w);
            sink.save(w);
            monitor.save(w);
            w.commit();
        };
        SamplerRun run(*sampler, cfg);
        run.execute(sink, monitor);
    }

    // Resume from the snapshot and run out the remaining ticks.
    RunArtifacts resumed;
    {
        auto sampler = makeFresh();
        SummarySink sink;
        ConvergenceMonitor monitor;
        CheckpointReader r(path);
        const std::size_t burnDone = r.u64();
        const std::size_t sampleDone = r.u64();
        EXPECT_EQ(burnDone, burnTicks);
        EXPECT_EQ(sampleDone, killTicks);
        sampler->load(r);
        sink.load(r);
        monitor.load(r);
        SamplerRun::Config cfg;
        cfg.burnInTicks = burnTicks;
        cfg.sampleTicks = capTicks;
        SamplerRun run(*sampler, cfg);
        run.restoreProgress(burnDone, sampleDone);
        run.execute(sink, monitor);
        resumed = RunArtifacts{sink.chainMajor(), sampler->continuation(), sampler->stats()};
    }

    expectBitwiseEqual(full, resumed);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, MidRunResumeTest,
    ::testing::Values(std::pair{Strategy::Gmh, false}, std::pair{Strategy::SerialMh, false},
                      std::pair{Strategy::SerialMh, true},
                      std::pair{Strategy::MultiChain, false},
                      std::pair{Strategy::HeatedMh, false}),
    [](const ::testing::TestParamInfo<std::pair<Strategy, bool>>& info) {
        switch (info.param.first) {
            case Strategy::Gmh: return std::string("Gmh");
            case Strategy::SerialMh:
                return std::string(info.param.second ? "CachedMh" : "SerialMh");
            case Strategy::MultiChain: return std::string("MultiChain");
            case Strategy::HeatedMh: return std::string("HeatedMh");
        }
        return std::string("Unknown");
    });

TEST(CheckpointResumeTest, LoadingIntoWrongStrategyThrows) {
    const Alignment aln = simulateData(6, 1.0, 100, 43);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    const Genealogy init = initialGenealogy(aln, 1.0);

    SamplerSpec spec;
    spec.strategy = Strategy::SerialMh;
    auto sampler = makeSampler(spec, lik, 1.0, init, nullptr);
    const std::string path = tempPath("wrongstrategy.ckpt");
    {
        CheckpointWriter w(path);
        sampler->save(w);
        w.commit();
    }
    spec.strategy = Strategy::HeatedMh;
    auto other = makeSampler(spec, lik, 1.0, init, nullptr);
    CheckpointReader r(path);
    EXPECT_THROW(other->load(r), CheckpointError);
}

TEST(CheckpointResumeTest, EstimateThetaResumesAcrossProcessBoundary) {
    // Simulate a kill between EM iterations: the first "process" runs two
    // of four iterations with checkpointing, the second resumes to the full
    // horizon. The result must be bitwise identical to an uninterrupted
    // four-iteration run.
    const Alignment aln = simulateData(7, 1.0, 180, 44);
    MpcgsOptions o;
    o.theta0 = 0.4;
    o.emIterations = 4;
    o.samplesPerIteration = 600;
    o.strategy = Strategy::MultiChain;
    o.chains = 3;
    o.seed = 21;

    const MpcgsResult uninterrupted = estimateTheta(aln, o);

    const std::string path = tempPath("driver.ckpt");
    MpcgsOptions part1 = o;
    part1.emIterations = 2;
    part1.checkpointPath = path;
    estimateTheta(aln, part1);
    ASSERT_TRUE(checkpointExists(path));

    MpcgsOptions part2 = o;
    part2.checkpointPath = path;
    part2.resume = true;
    const MpcgsResult resumed = estimateTheta(aln, part2);

    EXPECT_DOUBLE_EQ(resumed.theta, uninterrupted.theta);
    ASSERT_EQ(resumed.history.size(), uninterrupted.history.size());
    for (std::size_t i = 0; i < resumed.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(resumed.history[i].thetaBefore, uninterrupted.history[i].thetaBefore);
        EXPECT_DOUBLE_EQ(resumed.history[i].thetaAfter, uninterrupted.history[i].thetaAfter);
        EXPECT_EQ(resumed.history[i].samples, uninterrupted.history[i].samples);
    }
    ASSERT_EQ(resumed.finalSummaries.size(), uninterrupted.finalSummaries.size());
    for (std::size_t i = 0; i < resumed.finalSummaries.size(); ++i)
        EXPECT_DOUBLE_EQ(resumed.finalSummaries[i].weightedSum,
                         uninterrupted.finalSummaries[i].weightedSum);
    std::remove(path.c_str());
}

TEST(CheckpointResumeTest, ResumeAfterConvergenceStopContinuesIdentically) {
    // A snapshot taken after the stopping rule fired must resume as
    // already-complete (no extra sampling), so a run killed at that point
    // still converges to the uninterrupted run's exact estimate.
    const Alignment aln = simulateData(7, 1.0, 150, 46);
    MpcgsOptions o;
    o.theta0 = 0.5;
    o.emIterations = 2;
    o.samplesPerIteration = 3000;
    o.strategy = Strategy::MultiChain;
    o.chains = 4;
    o.seed = 13;
    o.stopRhat = 2.5;  // generous: fires well before the cap
    o.stopEss = 10.0;

    const MpcgsResult uninterrupted = estimateTheta(aln, o);
    ASSERT_TRUE(uninterrupted.history[0].stoppedEarly);

    const std::string path = tempPath("stopped.ckpt");
    MpcgsOptions part1 = o;
    part1.emIterations = 1;  // "killed" after the stop fired in EM 1
    part1.checkpointPath = path;
    const MpcgsResult part1Res = estimateTheta(aln, part1);
    ASSERT_TRUE(part1Res.history[0].stoppedEarly);

    MpcgsOptions part2 = o;
    part2.checkpointPath = path;
    part2.resume = true;
    const MpcgsResult resumed = estimateTheta(aln, part2);

    EXPECT_DOUBLE_EQ(resumed.theta, uninterrupted.theta);
    ASSERT_EQ(resumed.history.size(), 2u);
    EXPECT_TRUE(resumed.history[0].stoppedEarly);
    EXPECT_EQ(resumed.history[0].samples, uninterrupted.history[0].samples);
    EXPECT_DOUBLE_EQ(resumed.history[0].rhat, uninterrupted.history[0].rhat);
    std::remove(path.c_str());
}

TEST(CheckpointResumeTest, IncompatibleConfigurationIsRejected) {
    const Alignment aln = simulateData(6, 1.0, 100, 45);
    MpcgsOptions o;
    o.theta0 = 0.5;
    o.emIterations = 2;
    o.samplesPerIteration = 200;
    o.strategy = Strategy::SerialMh;
    o.seed = 8;
    const std::string path = tempPath("fingerprint.ckpt");
    o.checkpointPath = path;
    estimateTheta(aln, o);

    MpcgsOptions changed = o;
    changed.resume = true;
    changed.seed = 9;  // different run configuration
    EXPECT_THROW(estimateTheta(aln, changed), ConfigError);

    MpcgsOptions shrunk = o;
    shrunk.resume = true;
    shrunk.emIterations = 1;  // checkpoint already past the horizon
    EXPECT_THROW(estimateTheta(aln, shrunk), ConfigError);

    MpcgsOptions noPath = o;
    noPath.resume = true;
    noPath.checkpointPath.clear();
    EXPECT_THROW(estimateTheta(aln, noPath), ConfigError);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace mpcgs
