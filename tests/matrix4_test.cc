#include "util/matrix4.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace mpcgs {
namespace {

TEST(Matrix4Test, IdentityMultiplication) {
    Matrix4 a;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) a(i, j) = static_cast<double>(i * 4 + j + 1);
    const Matrix4 id = Matrix4::identity();
    EXPECT_LT((a * id).maxAbsDiff(a), 1e-15);
    EXPECT_LT((id * a).maxAbsDiff(a), 1e-15);
}

TEST(Matrix4Test, MultiplicationAgainstHandComputed) {
    Matrix4 a = Matrix4::zero(), b = Matrix4::zero();
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    const Matrix4 c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix4Test, TransposeAndApply) {
    Matrix4 a = Matrix4::zero();
    a(0, 1) = 2.0;
    a(2, 3) = -1.0;
    const Matrix4 t = a.transposed();
    EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(t(3, 2), -1.0);

    const auto v = a.apply({1.0, 1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(v[0], 2.0);
    EXPECT_DOUBLE_EQ(v[2], -1.0);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(Matrix4Test, AddSubScale) {
    Matrix4 a = Matrix4::identity();
    const Matrix4 two = a + a;
    EXPECT_DOUBLE_EQ(two(0, 0), 2.0);
    EXPECT_LT((two - a).maxAbsDiff(a), 1e-15);
    EXPECT_DOUBLE_EQ(a.scaled(3.0)(2, 2), 3.0);
}

TEST(Matrix4Test, RowSumError) {
    Matrix4 p = Matrix4::identity();
    EXPECT_DOUBLE_EQ(p.rowSumError(), 0.0);
    p(0, 0) = 0.9;
    EXPECT_NEAR(p.rowSumError(), 0.1, 1e-15);
}

TEST(SymEigenTest, DiagonalMatrix) {
    Matrix4 a = Matrix4::zero();
    a(0, 0) = 3.0;
    a(1, 1) = -1.0;
    a(2, 2) = 0.5;
    a(3, 3) = 7.0;
    const SymEigen4 e = symmetricEigen(a);
    std::array<double, 4> sorted = e.values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_NEAR(sorted[0], -1.0, 1e-12);
    EXPECT_NEAR(sorted[1], 0.5, 1e-12);
    EXPECT_NEAR(sorted[2], 3.0, 1e-12);
    EXPECT_NEAR(sorted[3], 7.0, 1e-12);
}

class SymEigenReconstruction : public ::testing::TestWithParam<unsigned> {};

TEST_P(SymEigenReconstruction, VDVtEqualsInput) {
    std::mt19937 gen(GetParam());
    std::uniform_real_distribution<double> d(-2.0, 2.0);
    Matrix4 a;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = i; j < 4; ++j) a(i, j) = a(j, i) = d(gen);

    const SymEigen4 e = symmetricEigen(a);

    // Reconstruct V diag(values) V^T.
    Matrix4 lam = Matrix4::zero();
    for (std::size_t i = 0; i < 4; ++i) lam(i, i) = e.values[i];
    const Matrix4 recon = e.vectors * lam * e.vectors.transposed();
    EXPECT_LT(recon.maxAbsDiff(a), 1e-10);

    // Eigenvectors are orthonormal.
    const Matrix4 vtv = e.vectors.transposed() * e.vectors;
    EXPECT_LT(vtv.maxAbsDiff(Matrix4::identity()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, SymEigenReconstruction,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace mpcgs
