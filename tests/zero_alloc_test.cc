// Counting-allocator verification of the zero-per-step-allocation
// contract: the parallel runtime's launch machinery and the likelihood
// engine's steady-state evaluation path must not touch the heap once warm.
// Global operator new/delete are replaced in this translation unit's
// binary, counting allocations inside explicit measurement windows.
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "lik/felsenstein.h"
#include "lik/lik_backend.h"
#include "obs/metrics.h"
#include "par/kernel.h"
#include "par/thread_pool.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "smc/smc_sampler.h"

namespace {

std::atomic<bool> gCounting{false};
std::atomic<std::size_t> gAllocs{0};

void* countedAlloc(std::size_t size) {
    if (gCounting.load(std::memory_order_relaxed))
        gAllocs.fetch_add(1, std::memory_order_relaxed);
    void* p = std::malloc(size == 0 ? 1 : size);
    if (!p) throw std::bad_alloc();
    return p;
}

void* countedAlignedAlloc(std::size_t size, std::size_t align) {
    if (gCounting.load(std::memory_order_relaxed))
        gAllocs.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size == 0 ? align : size) != 0)
        throw std::bad_alloc();
    return p;
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace mpcgs {
namespace {

// The whole binary runs with the metrics registry ARMED: the zero-alloc
// contract must hold with observability on, or armed production runs
// would silently lose the property these tests defend. Registry shards
// are static storage claimed lazily per thread — no heap involved.
const bool gObsArmed = [] {
    obs::arm();
    return true;
}();

/// Counts heap allocations between construction and stop().
class AllocWindow {
  public:
    AllocWindow() {
        gAllocs.store(0, std::memory_order_relaxed);
        gCounting.store(true, std::memory_order_seq_cst);
    }
    std::size_t stop() {
        gCounting.store(false, std::memory_order_seq_cst);
        return gAllocs.load(std::memory_order_relaxed);
    }
    ~AllocWindow() { gCounting.store(false, std::memory_order_seq_cst); }
};

TEST(ZeroAllocTest, LaunchMachineryAllocatesNothingWhenWarm) {
    ThreadPool pool(4);
    std::vector<double> out(512, 0.0);
    // Warm-up: first launches may fault in worker state.
    for (int r = 0; r < 50; ++r)
        pool.parallelFor(out.size(), [&](std::size_t i) { out[i] += 1.0; });

    AllocWindow window;
    for (int r = 0; r < 2000; ++r) {
        pool.parallelFor(out.size(), [&](std::size_t i) { out[i] += 1.0; });
        pool.parallelForSlot(64, [&](std::size_t i, unsigned) { out[i] -= 0.5; }, 1);
    }
    const std::size_t allocs = window.stop();
    EXPECT_EQ(allocs, 0u);
    EXPECT_DOUBLE_EQ(out[0], 50.0 + 2000.0 * 1.0 - 2000.0 * 0.5);
}

TEST(ZeroAllocTest, ParallelReduceAllocatesNothingWhenWarm) {
    ThreadPool pool(4);
    for (int r = 0; r < 10; ++r)
        pool.parallelReduce(
            1000, 0.0, [](std::size_t i) { return static_cast<double>(i); },
            [](double a, double b) { return a + b; });

    AllocWindow window;
    double sum = 0.0;
    for (int r = 0; r < 1000; ++r)
        sum = pool.parallelReduce(
            1000, 0.0, [](std::size_t i) { return static_cast<double>(i); },
            [](double a, double b) { return a + b; });
    const std::size_t allocs = window.stop();
    EXPECT_EQ(allocs, 0u);
    EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
}

TEST(ZeroAllocTest, SerialLikelihoodSteadyStateAllocatesNothing) {
    Mt19937 rng(97);
    const int n = 12;
    const Genealogy truth = simulateCoalescent(n, 1.0, rng);
    const auto gen = makeF84(2.0, kUniformFreqs);
    const Alignment data = simulateSequences(truth, *gen, {400, 1.0}, rng);
    const auto model = makeHky85(2.0, data.baseFrequencies());
    const DataLikelihood lik(data, *model);
    const Genealogy g = simulateCoalescent(n, 1.0, rng);

    // Warm the thread-local evaluation scratch.
    double ref = 0.0;
    for (int r = 0; r < 3; ++r) ref = lik.logLikelihood(g);

    AllocWindow window;
    double got = 0.0;
    for (int r = 0; r < 200; ++r) got = lik.logLikelihood(g);
    const std::size_t allocs = window.stop();
    EXPECT_EQ(allocs, 0u);
    EXPECT_DOUBLE_EQ(got, ref);
}

TEST(ZeroAllocTest, PooledLikelihoodSteadyStateIsAllocationBounded) {
    // With a real pool the block lambdas run on workers whose thread-local
    // scratch warms on first touch, and work-stealing makes the set of
    // (worker, engine) pairs that get touched nondeterministic — so the
    // pooled assertion is a hard bound (far fewer allocations than
    // evaluations) rather than exact zero.
    Mt19937 rng(131);
    const int n = 12;
    const Genealogy truth = simulateCoalescent(n, 1.0, rng);
    const auto gen = makeF84(2.0, kUniformFreqs);
    const Alignment data = simulateSequences(truth, *gen, {400, 1.0}, rng);
    const auto model = makeHky85(2.0, data.baseFrequencies());
    const DataLikelihood lik(data, *model);
    const Genealogy g = simulateCoalescent(n, 1.0, rng);

    ThreadPool pool(4);
    const double ref = lik.logLikelihood(g);
    for (int r = 0; r < 20; ++r) lik.logLikelihood(g, &pool);

    AllocWindow window;
    const int evals = 500;
    double got = 0.0;
    for (int r = 0; r < evals; ++r) got = lik.logLikelihood(g, &pool);
    const std::size_t allocs = window.stop();
    EXPECT_LT(allocs, static_cast<std::size_t>(evals) / 10);
    EXPECT_DOUBLE_EQ(got, ref);  // pooled result bitwise equals serial
}

// --- SMC propagation steady state --------------------------------------
//
// A particle filter generation must reuse its storage: partials live in
// pass-static backend slots, the per-generation operation queue and
// scratch are persistent, and resampling copies through pre-sized buffers
// (smc/particle_cloud.h). Warm a few events, then count over the rest.

namespace {

DataLikelihood makeSmcLik(Alignment& store) {
    Mt19937 rng(211);
    const int n = 16;
    const Genealogy truth = simulateCoalescent(n, 1.0, rng);
    const auto gen = makeF84(2.0, kUniformFreqs);
    store = simulateSequences(truth, *gen, {300, 1.0}, rng);
    static const F81Model model(kUniformFreqs);
    return DataLikelihood(store, model);
}

}  // namespace

TEST(ZeroAllocTest, SmcArenaPropagationSteadyStateAllocatesNothing) {
    Alignment data;
    const DataLikelihood lik = makeSmcLik(data);

    SmcOptions opts;
    opts.particles = 64;
    opts.essThreshold = 0.0;  // isolate propagation: never resample
    opts.backend = LikBackendKind::Arena;
    const auto backend = makeLikelihoodBackend(opts.backend, lik);
    SmcFilter filter(*backend, 1.0, opts, 7);
    for (int e = 0; e < 3; ++e) filter.step();

    AllocWindow window;
    while (!filter.done()) filter.step();
    const std::size_t allocs = window.stop();
    EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, SmcBatchedPropagationSteadyStateIsAllocationBounded) {
    Alignment data;
    const DataLikelihood lik = makeSmcLik(data);

    SmcOptions opts;
    opts.particles = 64;
    opts.essThreshold = 0.0;
    opts.backend = LikBackendKind::Batched;
    const auto backend = makeLikelihoodBackend(opts.backend, lik);
    SmcFilter filter(*backend, 1.0, opts, 7);
    for (int e = 0; e < 3; ++e) filter.step();

    // The batched backend's only steady-state growth is the transition
    // matrix store, which expands to the largest distinct-length batch
    // seen and is reused after — a handful of geometric regrowths at
    // most, never per-particle or per-pattern churn.
    AllocWindow window;
    int steps = 0;
    while (!filter.done()) {
        filter.step();
        ++steps;
    }
    const std::size_t allocs = window.stop();
    ASSERT_GT(steps, 5);
    EXPECT_LE(allocs, static_cast<std::size_t>(steps));
}

TEST(ZeroAllocTest, SmcResampleSteadyStateAllocatesNothing) {
    Alignment data;
    const DataLikelihood lik = makeSmcLik(data);

    SmcOptions opts;
    opts.particles = 64;
    opts.essThreshold = 1.0;  // systematic resample after every event
    opts.backend = LikBackendKind::Arena;
    const auto backend = makeLikelihoodBackend(opts.backend, lik);
    SmcFilter filter(*backend, 1.0, opts, 7);
    // Warm-up covers the first resample (ancestry buffer + cycle-staging
    // particle grow to their pass-wide sizes there).
    for (int e = 0; e < 3; ++e) filter.step();

    AllocWindow window;
    while (!filter.done()) filter.step();
    const std::size_t allocs = window.stop();
    EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, SmcPooledPropagationSteadyStateIsAllocationBounded) {
    Alignment data;
    const DataLikelihood lik = makeSmcLik(data);

    SmcOptions opts;
    opts.particles = 128;
    opts.essThreshold = 0.5;
    opts.backend = LikBackendKind::Batched;
    ThreadPool pool(4);
    const auto backend = makeLikelihoodBackend(opts.backend, lik);
    SmcFilter filter(*backend, 1.0, opts, 7, &pool);
    for (int e = 0; e < 3; ++e) filter.step();

    // Pooled bound mirrors PooledLikelihoodSteadyStateIsAllocationBounded:
    // worker-local warmup is nondeterministic under stealing, so assert a
    // hard bound rather than exact zero.
    AllocWindow window;
    int steps = 0;
    while (!filter.done()) {
        filter.step();
        ++steps;
    }
    const std::size_t allocs = window.stop();
    ASSERT_GT(steps, 5);
    EXPECT_LE(allocs, 4u * static_cast<std::size_t>(steps));
}

}  // namespace
}  // namespace mpcgs
