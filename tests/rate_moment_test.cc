// Tests for among-site rate variation (discrete gamma) and the classical
// moment estimators of theta.
#include <cmath>

#include <gtest/gtest.h>

#include "coalescent/moment_estimators.h"
#include "coalescent/growth.h"
#include "coalescent/simulator.h"
#include "lik/felsenstein.h"
#include "lik/rate_model.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/error.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

// --- incomplete gamma --------------------------------------------------------

TEST(GammaFunctions, ShapeOneIsExponentialCdf) {
    for (const double x : {0.1, 0.5, 1.0, 3.0, 10.0})
        EXPECT_NEAR(regularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
}

TEST(GammaFunctions, ShapeHalfIsErf) {
    for (const double x : {0.1, 0.5, 1.0, 4.0})
        EXPECT_NEAR(regularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
}

TEST(GammaFunctions, BoundaryBehaviour) {
    EXPECT_DOUBLE_EQ(regularizedGammaP(2.0, 0.0), 0.0);
    EXPECT_NEAR(regularizedGammaP(2.0, 100.0), 1.0, 1e-12);
    EXPECT_THROW(regularizedGammaP(0.0, 1.0), InvariantError);
}

TEST(GammaFunctions, InverseRoundTrips) {
    for (const double a : {0.3, 1.0, 2.5}) {
        for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
            const double x = inverseGammaP(a, p);
            EXPECT_NEAR(regularizedGammaP(a, x), p, 1e-9) << "a=" << a << " p=" << p;
        }
    }
    EXPECT_DOUBLE_EQ(inverseGammaP(1.0, 0.0), 0.0);
    EXPECT_THROW(inverseGammaP(1.0, 1.0), InvariantError);
}

// --- discrete gamma categories ------------------------------------------------

class DiscreteGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteGammaSweep, CategoriesAreValidAndOrdered) {
    const double alpha = GetParam();
    for (const int c : {2, 4, 8}) {
        const RateCategories rc = RateCategories::discreteGamma(alpha, c);
        EXPECT_EQ(rc.count(), static_cast<std::size_t>(c));
        EXPECT_NO_THROW(rc.validate());
        for (std::size_t i = 1; i < rc.rates.size(); ++i)
            EXPECT_GT(rc.rates[i], rc.rates[i - 1]);  // quantile means increase
        // Mean rate exactly 1 (weights uniform).
        double mean = 0.0;
        for (std::size_t i = 0; i < rc.rates.size(); ++i) mean += rc.weights[i] * rc.rates[i];
        EXPECT_NEAR(mean, 1.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DiscreteGammaSweep, ::testing::Values(0.2, 0.5, 1.0, 2.0, 10.0));

TEST(DiscreteGamma, LargeAlphaDegeneratesToUniformRate) {
    const RateCategories rc = RateCategories::discreteGamma(1000.0, 4);
    for (const double r : rc.rates) EXPECT_NEAR(r, 1.0, 0.05);
}

TEST(DiscreteGamma, SmallAlphaIsStronglySkewed) {
    const RateCategories rc = RateCategories::discreteGamma(0.2, 4);
    EXPECT_LT(rc.rates.front(), 0.05);
    EXPECT_GT(rc.rates.back(), 2.0);
}

TEST(DiscreteGamma, Validation) {
    EXPECT_THROW(RateCategories::discreteGamma(0.0, 4), ConfigError);
    EXPECT_THROW(RateCategories::discreteGamma(1.0, 0), ConfigError);
    EXPECT_EQ(RateCategories::discreteGamma(1.0, 1).count(), 1u);
}

// --- likelihood with rate heterogeneity ---------------------------------------

TEST(GammaLikelihood, SingleCategoryEqualsDefault) {
    Mt19937 rng(21);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const auto model = makeJc69();
    const Alignment data = simulateSequences(g, *model, {200, 1.0}, rng);
    const DataLikelihood plain(data, *model);
    const DataLikelihood oneCat(data, *model, RateCategories::uniformRate());
    EXPECT_DOUBLE_EQ(plain.logLikelihood(g), oneCat.logLikelihood(g));
}

TEST(GammaLikelihood, HugeAlphaMatchesHomogeneous) {
    Mt19937 rng(22);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const auto model = makeJc69();
    const Alignment data = simulateSequences(g, *model, {200, 1.0}, rng);
    const DataLikelihood plain(data, *model);
    const DataLikelihood gamma(data, *model, RateCategories::discreteGamma(5000.0, 4));
    EXPECT_NEAR(plain.logLikelihood(g), gamma.logLikelihood(g), 0.5);
}

TEST(GammaLikelihood, FitsHeterogeneousDataBetter) {
    // Heterogeneous data: half the sites evolved 5x faster. On the true
    // tree, the gamma model must beat the single-rate model.
    Mt19937 rng(23);
    const Genealogy g = simulateCoalescent(8, 1.0, rng);
    const auto model = makeJc69();
    const Alignment slow = simulateSequences(g, *model, {300, 0.3}, rng);
    const Alignment fast = simulateSequences(g, *model, {300, 2.5}, rng);
    std::vector<Sequence> merged;
    for (std::size_t i = 0; i < slow.sequenceCount(); ++i)
        merged.emplace_back(slow.sequence(i).name(),
                            [&] {
                                auto codes = slow.sequence(i).codes();
                                const auto& fc = fast.sequence(i).codes();
                                codes.insert(codes.end(), fc.begin(), fc.end());
                                return codes;
                            }());
    const Alignment data(std::move(merged));

    const DataLikelihood single(data, *model);
    const DataLikelihood gamma(data, *model, RateCategories::discreteGamma(0.5, 4));
    EXPECT_GT(gamma.logLikelihood(g), single.logLikelihood(g));
}

TEST(GammaLikelihood, ParallelMatchesSerial) {
    Mt19937 rng(24);
    const Genealogy g = simulateCoalescent(10, 1.0, rng);
    const auto model = makeJc69();
    const Alignment data = simulateSequences(g, *model, {300, 1.0}, rng);
    const DataLikelihood gamma(data, *model, RateCategories::discreteGamma(0.7, 4));
    ThreadPool pool(6);
    EXPECT_NEAR(gamma.logLikelihood(g), gamma.logLikelihood(g, &pool), 1e-9);
}

TEST(GammaLikelihood, CacheSupportsRateHeterogeneity) {
    // The pattern-major engine fuses rate categories into the cached pass,
    // so heterogeneous models get the same incremental path as homogeneous
    // ones (the seed's cache rejected them).
    Mt19937 rng(25);
    const Genealogy g = simulateCoalescent(4, 1.0, rng);
    const auto model = makeJc69();
    const Alignment data = simulateSequences(g, *model, {50, 1.0}, rng);
    const DataLikelihood gamma(data, *model, RateCategories::discreteGamma(0.7, 4));
    LikelihoodCache cache(gamma);
    EXPECT_NEAR(cache.evaluate(g), gamma.logLikelihood(g), 1e-10);
}

// --- moment estimators ---------------------------------------------------------

TEST(MomentEstimators, TajimaThetaIsUnbiasedAtScale) {
    // Average of theta_pi over replicates approaches the generating theta.
    Mt19937 rng(26);
    const auto model = makeJc69();
    const double theta = 0.05;  // low divergence: multiple hits negligible
    RunningStats est;
    for (int rep = 0; rep < 150; ++rep) {
        const Genealogy g = simulateCoalescent(10, theta, rng);
        const Alignment data = simulateSequences(g, *model, {800, 1.0}, rng);
        est.add(tajimaTheta(data));
    }
    EXPECT_NEAR(est.mean(), theta, 0.1 * theta);
}

TEST(MomentEstimators, WattersonThetaIsUnbiasedAtScale) {
    Mt19937 rng(27);
    const auto model = makeJc69();
    const double theta = 0.05;
    RunningStats est;
    for (int rep = 0; rep < 150; ++rep) {
        const Genealogy g = simulateCoalescent(10, theta, rng);
        const Alignment data = simulateSequences(g, *model, {800, 1.0}, rng);
        est.add(wattersonTheta(data));
    }
    EXPECT_NEAR(est.mean(), theta, 0.1 * theta);
}

TEST(MomentEstimators, HandComputedSmallCase) {
    // 3 sequences, 10 sites, 2 segregating sites, pairwise diffs 1,2,1.
    const Alignment aln({Sequence::fromString("a", "AAAAAAAAAA"),
                         Sequence::fromString("b", "CAAAAAAAAA"),
                         Sequence::fromString("c", "CTAAAAAAAA")});
    EXPECT_EQ(aln.segregatingSites(), 2u);
    // a1 = 1 + 1/2 = 1.5; theta_W = 2 / (10 * 1.5).
    EXPECT_NEAR(wattersonTheta(aln), 2.0 / 15.0, 1e-12);
    // mean pairwise = (1 + 2 + 1)/3; theta_pi = (4/3)/10.
    EXPECT_NEAR(tajimaTheta(aln), 4.0 / 30.0, 1e-12);
}

TEST(MomentEstimators, TajimaDNearZeroUnderNeutrality) {
    Mt19937 rng(28);
    const auto model = makeJc69();
    RunningStats d;
    for (int rep = 0; rep < 200; ++rep) {
        const Genealogy g = simulateCoalescent(10, 0.05, rng);
        const Alignment data = simulateSequences(g, *model, {500, 1.0}, rng);
        d.add(tajimaD(data));
    }
    EXPECT_NEAR(d.mean(), 0.0, 0.3);  // neutral equilibrium: D centered near 0
}

TEST(MomentEstimators, TajimaDNegativeUnderGrowth) {
    // Population growth produces star-like trees: an excess of singletons,
    // hence negative D.
    Mt19937 rng(29);
    const auto model = makeJc69();
    RunningStats d;
    for (int rep = 0; rep < 200; ++rep) {
        const Genealogy g = simulateGrowthCoalescent(10, {0.05, 20.0}, rng);
        const Alignment data = simulateSequences(g, *model, {500, 1.0}, rng);
        d.add(tajimaD(data));
    }
    EXPECT_LT(d.mean(), -0.05);  // clearly shifted negative vs neutrality
}

TEST(MomentEstimators, Validation) {
    const Alignment one({Sequence::fromString("a", "ACGT"), Sequence::fromString("b", "ACGT")});
    EXPECT_DOUBLE_EQ(wattersonTheta(one), 0.0);
    EXPECT_THROW(tajimaD(one), InvariantError);  // needs >= 3 sequences
}

}  // namespace
}  // namespace mpcgs
