#include "lik/felsenstein.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "util/error.h"

namespace mpcgs {
namespace {

/// Brute-force P(D|G) for one site: enumerate all internal-node nucleotide
/// assignments (Eq. 19-21 without pruning).
double bruteForceSiteLik(const Genealogy& g, const SubstModel& model,
                         const std::vector<NucCode>& tipStates) {
    const BaseFreqs& pi = model.stationary();
    const int nInternal = g.internalCount();
    const int nTips = g.tipCount();
    std::vector<Matrix4> pmat(static_cast<std::size_t>(g.nodeCount()));
    for (NodeId id = 0; id < g.nodeCount(); ++id)
        if (id != g.root()) pmat[static_cast<std::size_t>(id)] = model.transition(g.branchLength(id));

    double total = 0.0;
    const long combos = static_cast<long>(std::pow(4.0, nInternal));
    for (long c = 0; c < combos; ++c) {
        std::vector<NucCode> state(static_cast<std::size_t>(g.nodeCount()));
        long rem = c;
        for (int i = 0; i < nInternal; ++i) {
            state[static_cast<std::size_t>(nTips + i)] = static_cast<NucCode>(rem % 4);
            rem /= 4;
        }
        for (int t = 0; t < nTips; ++t) state[static_cast<std::size_t>(t)] = tipStates[static_cast<std::size_t>(t)];

        double lik = pi[state[static_cast<std::size_t>(g.root())]];
        bool skip = false;
        for (NodeId id = 0; id < g.nodeCount() && !skip; ++id) {
            if (id == g.root()) continue;
            const NucCode childState = state[static_cast<std::size_t>(id)];
            if (childState == kNucUnknown) {
                // Unknown tip: marginalize by splitting into 4 sub-cases is
                // unnecessary here; tests use known tips for brute force.
                skip = true;
                continue;
            }
            const NucCode parentState = state[static_cast<std::size_t>(g.node(id).parent)];
            lik *= pmat[static_cast<std::size_t>(id)](parentState, childState);
        }
        if (!skip) total += lik;
    }
    return total;
}

Genealogy makeFourTip() {
    Genealogy g(4);
    g.node(4).time = 0.1;
    g.node(5).time = 0.25;
    g.node(6).time = 0.4;
    g.link(4, 0);
    g.link(4, 1);
    g.link(5, 2);
    g.link(5, 3);
    g.link(6, 4);
    g.link(6, 5);
    g.setRoot(6);
    return g;
}

Alignment fourTipAlignment() {
    return Alignment({Sequence::fromString("t1", "ACGTA"),
                      Sequence::fromString("t2", "ACGTC"),
                      Sequence::fromString("t3", "AGGTA"),
                      Sequence::fromString("t4", "AGCTA")});
}

TEST(Felsenstein, TwoTipHandComputed) {
    // Two tips A and C joined at t = 0.3 under F81 with uniform pi:
    // L = sum_x pi_x P_xA(0.3) P_xC(0.3).
    Genealogy g(2);
    g.node(2).time = 0.3;
    g.link(2, 0);
    g.link(2, 1);
    g.setRoot(2);
    const F81Model model(kUniformFreqs, 1.0);
    const Alignment aln({Sequence::fromString("a", "A"), Sequence::fromString("b", "C")});
    const DataLikelihood lik(aln, model);
    const Matrix4 p = model.transition(0.3);
    double expect = 0.0;
    for (std::size_t x = 0; x < 4; ++x) expect += 0.25 * p(x, kNucA) * p(x, kNucC);
    EXPECT_NEAR(lik.logLikelihood(g), std::log(expect), 1e-12);
}

TEST(Felsenstein, MatchesBruteForceEnumeration) {
    const Genealogy g = makeFourTip();
    const Alignment aln = fourTipAlignment();
    const F81Model model(aln.baseFrequencies(), 1.0);
    const DataLikelihood lik(aln, model, /*compress=*/false);
    const auto perPattern = lik.patternLogLikelihoods(g);
    ASSERT_EQ(perPattern.size(), aln.length());
    for (std::size_t site = 0; site < aln.length(); ++site) {
        const double brute = bruteForceSiteLik(g, model, aln.column(site));
        EXPECT_NEAR(perPattern[site], std::log(brute), 1e-10) << "site " << site;
    }
}

TEST(Felsenstein, BruteForceAgreementUnderGtr) {
    const Genealogy g = makeFourTip();
    const Alignment aln = fourTipAlignment();
    const auto model = makeHky85(2.0, aln.baseFrequencies());
    const DataLikelihood lik(aln, *model, false);
    const auto perPattern = lik.patternLogLikelihoods(g);
    for (std::size_t site = 0; site < aln.length(); ++site) {
        const double brute = bruteForceSiteLik(g, *model, aln.column(site));
        EXPECT_NEAR(perPattern[site], std::log(brute), 1e-10);
    }
}

TEST(Felsenstein, PatternCompressionInvariance) {
    const Genealogy g = makeFourTip();
    // Alignment with heavily repeated columns.
    const Alignment aln({Sequence::fromString("t1", "AAAACCGTAAAA"),
                         Sequence::fromString("t2", "AAAACCGTAAAA"),
                         Sequence::fromString("t3", "AAAACCGAAAAA"),
                         Sequence::fromString("t4", "AAGACCGAAAGA")});
    const F81Model model(aln.baseFrequencies(), 1.0);
    const DataLikelihood compressed(aln, model, true);
    const DataLikelihood raw(aln, model, false);
    EXPECT_LT(compressed.patternCount(), raw.patternCount());
    EXPECT_NEAR(compressed.logLikelihood(g), raw.logLikelihood(g), 1e-10);
}

TEST(Felsenstein, ParallelMatchesSerial) {
    Mt19937 rng(3);
    const Genealogy g = simulateCoalescent(16, 1.0, rng);
    const auto model = makeJc69();
    const Alignment aln = simulateSequences(g, *model, {400, 1.0}, rng);
    const DataLikelihood lik(aln, *model);
    ThreadPool pool(6);
    const double serial = lik.logLikelihood(g);
    const double parallel = lik.logLikelihood(g, &pool);
    EXPECT_NEAR(serial, parallel, 1e-9);
}

TEST(Felsenstein, UnknownTipActsAsMarginalized) {
    // Likelihood with an N tip equals the sum of the four resolved
    // likelihoods.
    Genealogy g(2);
    g.node(2).time = 0.4;
    g.link(2, 0);
    g.link(2, 1);
    g.setRoot(2);
    const F81Model model(kUniformFreqs, 1.0);
    double resolvedSum = 0.0;
    for (const char c : {'A', 'C', 'G', 'T'}) {
        const Alignment aln({Sequence::fromString("a", std::string(1, c)),
                             Sequence::fromString("b", "G")});
        resolvedSum += std::exp(DataLikelihood(aln, model).logLikelihood(g));
    }
    const Alignment alnN({Sequence::fromString("a", "N"), Sequence::fromString("b", "G")});
    EXPECT_NEAR(std::exp(DataLikelihood(alnN, model).logLikelihood(g)), resolvedSum, 1e-12);
}

TEST(Felsenstein, IdenticalSequencesFavorShortTrees) {
    const Alignment aln({Sequence::fromString("t1", "ACGTACGTAC"),
                         Sequence::fromString("t2", "ACGTACGTAC"),
                         Sequence::fromString("t3", "ACGTACGTAC"),
                         Sequence::fromString("t4", "ACGTACGTAC")});
    const F81Model model(aln.baseFrequencies(), 1.0);
    const DataLikelihood lik(aln, model);
    Genealogy shortTree = makeFourTip();
    Genealogy longTree = makeFourTip();
    longTree.scaleTimes(20.0);
    EXPECT_GT(lik.logLikelihood(shortTree), lik.logLikelihood(longTree));
}

TEST(Felsenstein, DeepTreeDoesNotUnderflow) {
    // A long caterpillar with many sites: partial products underflow in
    // naive linear space; the scaling path must keep log-likelihood finite.
    const int n = 64;
    Genealogy g(n);
    NodeId prev = 0;
    for (int i = 0; i < n - 1; ++i) {
        const NodeId internal = n + i;
        g.node(internal).time = 4.0 * (i + 1);  // long branches
        g.link(internal, prev);
        g.link(internal, i + 1);
        prev = internal;
    }
    g.setRoot(prev);
    g.validate();

    std::vector<Sequence> seqs;
    for (int i = 0; i < n; ++i)
        seqs.push_back(Sequence::fromString("s" + std::to_string(i), i % 2 ? "ACGT" : "TGCA"));
    const Alignment aln{std::move(seqs)};
    const F81Model model(kUniformFreqs, 1.0);
    const double ll = DataLikelihood(aln, model).logLikelihood(g);
    EXPECT_TRUE(std::isfinite(ll));
    EXPECT_LT(ll, 0.0);
}

TEST(Felsenstein, TipCountMismatchThrows) {
    const Genealogy g = makeFourTip();
    const Alignment aln({Sequence::fromString("a", "A"), Sequence::fromString("b", "C")});
    const F81Model model(kUniformFreqs, 1.0);
    const DataLikelihood lik(aln, model);
    EXPECT_THROW(lik.logLikelihood(g), InvariantError);
}

// --- incremental cache -------------------------------------------------------

TEST(LikelihoodCacheTest, FullEvaluationMatchesDirect) {
    Mt19937 rng(4);
    const Genealogy g = simulateCoalescent(10, 1.0, rng);
    const auto model = makeJc69();
    const Alignment aln = simulateSequences(g, *model, {120, 1.0}, rng);
    const DataLikelihood lik(aln, *model);
    LikelihoodCache cache(lik);
    EXPECT_NEAR(cache.evaluate(g), lik.logLikelihood(g), 1e-10);
}

TEST(LikelihoodCacheTest, DirtyUpdateMatchesFullRecompute) {
    Mt19937 rng(5);
    Genealogy g = simulateCoalescent(10, 1.0, rng);
    const auto model = makeJc69();
    const Alignment aln = simulateSequences(g, *model, {120, 1.0}, rng);
    const DataLikelihood lik(aln, *model);
    LikelihoodCache cache(lik);
    cache.evaluate(g);

    // Perturb one internal node's time (staying valid) and update dirty.
    const auto internals = g.internalsByTime();
    const NodeId moved = internals[internals.size() / 2];
    const TreeNode& nd = g.node(moved);
    double lo = std::max(g.node(nd.child[0]).time, g.node(nd.child[1]).time);
    double hi = (nd.parent == kNoNode) ? nd.time + 1.0 : g.node(nd.parent).time;
    g.node(moved).time = 0.5 * (lo + hi);
    g.validate();

    const double incremental = cache.evaluateDirty(g, {moved, nd.child[0], nd.child[1]});
    EXPECT_NEAR(incremental, lik.logLikelihood(g), 1e-10);
}

TEST(LikelihoodCacheTest, DirtyWithoutEvaluateThrows) {
    Mt19937 rng(6);
    const Genealogy g = simulateCoalescent(5, 1.0, rng);
    const auto model = makeJc69();
    const Alignment aln = simulateSequences(g, *model, {50, 1.0}, rng);
    const DataLikelihood lik(aln, *model);
    LikelihoodCache cache(lik);
    EXPECT_THROW(cache.evaluateDirty(g, {0}), InvariantError);
}

}  // namespace
}  // namespace mpcgs
