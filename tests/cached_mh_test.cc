#include "core/cached_mh.h"

#include <cmath>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "core/genealogy_problem.h"
#include "mcmc/mh.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

struct ChainFixture {
    Alignment data;
    Genealogy init;
};

ChainFixture makeSetup(int n, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy truth = simulateCoalescent(n, 1.0, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    Alignment data = simulateSequences(truth, *model, {length, 1.0}, rng);
    Genealogy init = simulateCoalescent(n, 1.0, rng);
    init.setTipNames(data.names());
    return ChainFixture{std::move(data), std::move(init)};
}

TEST(CachedMhSampler, CacheStaysCoherentAlongTheChain) {
    // The decisive invariant: after arbitrary accept/reject sequences, the
    // incrementally maintained log-likelihood equals a fresh full pruning
    // evaluation of the current genealogy.
    const ChainFixture s = makeSetup(10, 150, 51);
    const F81Model model(s.data.baseFrequencies());
    const DataLikelihood lik(s.data, model);
    CachedMhSampler chain(lik, 1.0, s.init, 7);
    for (int block = 0; block < 20; ++block) {
        for (int i = 0; i < 25; ++i) chain.step();
        EXPECT_NEAR(chain.currentDataLogLik(), lik.logLikelihood(chain.current()), 1e-8)
            << "after " << (block + 1) * 25 << " steps";
    }
    EXPECT_GT(chain.acceptanceRate(), 0.0);
}

TEST(CachedMhSampler, CoherentOnLargerTrees) {
    const ChainFixture s = makeSetup(24, 100, 52);
    const F81Model model(s.data.baseFrequencies());
    const DataLikelihood lik(s.data, model);
    CachedMhSampler chain(lik, 0.7, s.init, 8);
    for (int i = 0; i < 300; ++i) chain.step();
    EXPECT_NEAR(chain.currentDataLogLik(), lik.logLikelihood(chain.current()), 1e-8);
    EXPECT_NO_THROW(chain.current().validate());
}

TEST(CachedMhSampler, AgreesWithRecomputeChainStatistically) {
    // Same posterior, same proposal distribution: the cached and recompute
    // chains must sample the same distribution (compare TMRCA moments).
    const ChainFixture s = makeSetup(8, 200, 53);
    const F81Model model(s.data.baseFrequencies());
    const DataLikelihood lik(s.data, model);
    const double theta = 1.0;

    RunningStats cachedStats;
    CachedMhSampler cached(lik, theta, s.init, 9);
    cached.run(1500, 12000, [&](const Genealogy& g) { cachedStats.add(g.tmrca()); });

    const MhGenealogyProblem problem(lik, theta);
    RunningStats recomputeStats;
    MhChain<MhGenealogyProblem> recompute(problem, s.init, 10);
    recompute.run(1500, 12000, [&](const Genealogy& g) { recomputeStats.add(g.tmrca()); });

    EXPECT_NEAR(cachedStats.mean(), recomputeStats.mean(),
                0.25 * recomputeStats.mean());
}

TEST(CachedMhSampler, DriverIntegration) {
    const ChainFixture s = makeSetup(8, 250, 54);
    MpcgsOptions opts;
    opts.theta0 = 0.4;
    opts.emIterations = 3;
    opts.samplesPerIteration = 1500;
    opts.strategy = Strategy::SerialMh;
    opts.cachedBaseline = true;
    const MpcgsResult res = estimateTheta(s.data, opts);
    EXPECT_GT(res.theta, 0.05);
    EXPECT_LT(res.theta, 20.0);
}

TEST(CachedMhSampler, RunEmitsRequestedSamples) {
    const ChainFixture s = makeSetup(6, 80, 55);
    const F81Model model(s.data.baseFrequencies());
    const DataLikelihood lik(s.data, model);
    CachedMhSampler chain(lik, 1.0, s.init, 11);
    std::size_t count = 0;
    chain.run(10, 123, [&](const Genealogy&) { ++count; });
    EXPECT_EQ(count, 123u);
    EXPECT_EQ(chain.steps(), 133u);
}

}  // namespace
}  // namespace mpcgs
