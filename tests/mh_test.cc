#include "mcmc/mh.h"

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace mpcgs {
namespace {

/// Discrete toy target on {0..4} with an asymmetric random-walk proposal,
/// to exercise the Hastings correction.
struct DiscreteProblem {
    using State = int;
    std::array<double, 5> logPi{};

    DiscreteProblem() {
        const std::array<double, 5> pi{0.05, 0.1, 0.2, 0.3, 0.35};
        for (std::size_t i = 0; i < 5; ++i) logPi[i] = std::log(pi[i]);
    }

    double logPosterior(const State& s) const { return logPi[static_cast<std::size_t>(s)]; }

    struct Proposal {
        State state;
        double logForward;
        double logReverse;
    };

    // Move +1 w.p. 0.7, -1 w.p. 0.3 (reflecting at the ends).
    Proposal propose(const State& cur, Rng& rng) const {
        const bool up = rng.uniform01() < 0.7;
        int next = cur + (up ? 1 : -1);
        if (next < 0) next = 0;
        if (next > 4) next = 4;
        auto q = [](int from, int to) {
            if (to == from + 1 || (from == 4 && to == 4)) return 0.7;
            if (to == from - 1 || (from == 0 && to == 0)) return 0.3;
            return 0.0;
        };
        return Proposal{next, std::log(q(cur, next)), std::log(q(next, cur))};
    }
};

TEST(MhChainTest, ConvergesToTargetDistribution) {
    const DiscreteProblem problem;
    MhChain<DiscreteProblem> chain(problem, 0, /*seed=*/123);
    std::array<double, 5> counts{};
    const std::size_t n = 400000;
    chain.run(5000, n, [&](const int& s) { counts[static_cast<std::size_t>(s)] += 1.0; });
    const std::array<double, 5> pi{0.05, 0.1, 0.2, 0.3, 0.35};
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(counts[i] / static_cast<double>(n), pi[i], 0.01) << "state " << i;
}

TEST(MhChainTest, TracksAcceptanceRate) {
    const DiscreteProblem problem;
    MhChain<DiscreteProblem> chain(problem, 0, 7);
    chain.run(0, 10000, [](const int&) {});
    EXPECT_GT(chain.acceptanceRate(), 0.2);
    EXPECT_LT(chain.acceptanceRate(), 1.0);
    EXPECT_EQ(chain.steps(), 10000u);
}

TEST(MhChainTest, CurrentLogPosteriorStaysInSync) {
    const DiscreteProblem problem;
    MhChain<DiscreteProblem> chain(problem, 2, 99);
    for (int i = 0; i < 100; ++i) {
        chain.step();
        EXPECT_DOUBLE_EQ(chain.currentLogPosterior(), problem.logPosterior(chain.current()));
    }
}

TEST(MhChainTest, DeterministicGivenSeed) {
    const DiscreteProblem problem;
    MhChain<DiscreteProblem> a(problem, 0, 42), b(problem, 0, 42);
    std::vector<int> sa, sb;
    a.run(100, 1000, [&](const int& s) { sa.push_back(s); });
    b.run(100, 1000, [&](const int& s) { sb.push_back(s); });
    EXPECT_EQ(sa, sb);
}

/// Continuous target: N(3, 2^2) with a symmetric Gaussian random walk.
struct GaussianProblem {
    using State = double;
    double logPosterior(const State& x) const { return -0.5 * (x - 3.0) * (x - 3.0) / 4.0; }
    struct Proposal {
        State state;
        double logForward;
        double logReverse;
    };
    Proposal propose(const State& cur, Rng& rng) const {
        return Proposal{cur + rng.normal(0.0, 1.5), 0.0, 0.0};  // symmetric
    }
};

TEST(MhChainTest, GaussianMoments) {
    const GaussianProblem problem;
    MhChain<GaussianProblem> chain(problem, -10.0, 5);
    RunningStats rs;
    chain.run(2000, 200000, [&](const double& x) { rs.add(x); });
    EXPECT_NEAR(rs.mean(), 3.0, 0.1);
    EXPECT_NEAR(rs.variance(), 4.0, 0.3);
}

}  // namespace
}  // namespace mpcgs
