// Run supervision: cooperative SIGTERM/SIGINT stops, wall-time deadlines,
// checkpoint-write retry with backoff, exit-code taxonomy, and the
// headline guarantee — an interrupted run (via the deterministic
// supervisor.stop fail point, a stand-in for a signal at an exact tick)
// leaves a checkpoint from which --resume continues bitwise-identically,
// for all four estimator entry points.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "coalescent/structured.h"
#include "core/driver.h"
#include "core/smc_estimator.h"
#include "core/structured_estimator.h"
#include "core/supervisor.h"
#include "mcmc/checkpoint.h"
#include "rng/mt19937.h"
#include "seq/dataset.h"
#include "seq/seqgen.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

class SupervisorTest : public ::testing::Test {
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }

    static std::string tempPath(const std::string& name) {
        return ::testing::TempDir() + name;
    }

    static Alignment smallAlignment() {
        Mt19937 rng(3);
        const Genealogy g = simulateCoalescent(6, 1.0, rng);
        SeqGenOptions so;
        so.length = 120;
        const auto model = makeF84(2.0, kUniformFreqs);
        return simulateSequences(g, *model, so, rng);
    }
};

TEST_F(SupervisorTest, StartsWithNoStopPending) {
    RunSupervisor::Config cfg;
    cfg.handleSignals = false;
    RunSupervisor sv(cfg);
    EXPECT_FALSE(sv.stopRequested());
    EXPECT_TRUE(sv.stopReason().empty());
}

TEST_F(SupervisorTest, SigtermSetsTheStopFlagAndLatches) {
    RunSupervisor sv;  // installs handlers
    ASSERT_FALSE(sv.stopRequested());
    std::raise(SIGTERM);
    EXPECT_TRUE(sv.stopRequested());
    EXPECT_EQ(sv.stopReason(), "SIGTERM");
    // Latched: still stopped on every later poll.
    EXPECT_TRUE(sv.stopRequested());
}

TEST_F(SupervisorTest, SigintIsAlsoCooperative) {
    RunSupervisor sv;
    std::raise(SIGINT);
    EXPECT_TRUE(sv.stopRequested());
    EXPECT_EQ(sv.stopReason(), "SIGINT");
}

TEST_F(SupervisorTest, WallTimeDeadlineTripsTheFlag) {
    RunSupervisor::Config cfg;
    cfg.handleSignals = false;
    cfg.maxWallSeconds = 0.05;
    RunSupervisor sv(cfg);
    EXPECT_FALSE(sv.stopRequested());
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_TRUE(sv.stopRequested());
    EXPECT_NE(sv.stopReason().find("wall-time"), std::string::npos);
}

TEST_F(SupervisorTest, StopFailpointRequestsADeterministicStop) {
    failpoint::configure("supervisor.stop=after(2)");
    RunSupervisor::Config cfg;
    cfg.handleSignals = false;
    RunSupervisor sv(cfg);
    EXPECT_FALSE(sv.stopRequested());
    EXPECT_FALSE(sv.stopRequested());
    EXPECT_TRUE(sv.stopRequested());  // third poll = evaluation 3 = after(2)
    EXPECT_NE(sv.stopReason().find("injected"), std::string::npos);
}

TEST_F(SupervisorTest, CheckpointRetrySucceedsAfterTransientFailures) {
    RunSupervisor::Config cfg;
    cfg.handleSignals = false;
    cfg.checkpointRetries = 3;
    cfg.backoffInitialMs = 1.0;  // keep the test fast
    cfg.backoffMaxMs = 4.0;
    RunSupervisor sv(cfg);
    int attempts = 0;
    sv.writeCheckpointWithRetry([&] {
        if (++attempts <= 2) throw CheckpointError("transient: disk momentarily full");
    });
    EXPECT_EQ(attempts, 3);
}

TEST_F(SupervisorTest, CheckpointRetryGivesUpAndRethrows) {
    RunSupervisor::Config cfg;
    cfg.handleSignals = false;
    cfg.checkpointRetries = 2;
    cfg.backoffInitialMs = 1.0;
    cfg.backoffMaxMs = 2.0;
    RunSupervisor sv(cfg);
    int attempts = 0;
    EXPECT_THROW(sv.writeCheckpointWithRetry([&] {
        ++attempts;
        throw CheckpointError("persistent failure");
    }),
                 CheckpointError);
    EXPECT_EQ(attempts, 3);  // 1 + 2 retries
}

TEST_F(SupervisorTest, WithCheckpointRetryRunsDirectlyWithoutASupervisor) {
    int attempts = 0;
    withCheckpointRetry(nullptr, [&] { ++attempts; });
    EXPECT_EQ(attempts, 1);
    EXPECT_THROW(
        withCheckpointRetry(nullptr, [] { throw CheckpointError("no retry, no rescue"); }),
        CheckpointError);
}

TEST_F(SupervisorTest, ExitCodeTaxonomyIsStable) {
    EXPECT_EQ(exitCodeFor(InterruptedError("stopped", true)), kExitInterrupted);
    EXPECT_EQ(exitCodeFor(NumericError("bad logL")), kExitNumericFault);
    EXPECT_EQ(exitCodeFor(ResumeError("snapshot gone")), kExitResumeFailed);
    EXPECT_EQ(exitCodeFor(CheckpointError("disk full")), kExitIoFault);
    EXPECT_EQ(exitCodeFor(ConfigError("bad flag")), kExitUsage);
    EXPECT_EQ(exitCodeFor(ParseError("bad file")), kExitUsage);
    EXPECT_EQ(exitCodeFor(std::runtime_error("anything else")), kExitFailure);
    EXPECT_EQ(exitCodeFor(InjectedFaultError("mcmc.logpost")), kExitFailure);
}

// --- interrupt + bitwise-identical resume, all four estimators ---------

TEST_F(SupervisorTest, McmcInterruptThenResumeIsBitwiseIdentical) {
    const Alignment aln = smallAlignment();
    MpcgsOptions opts;
    opts.theta0 = 1.0;
    opts.emIterations = 2;
    opts.samplesPerIteration = 200;
    opts.strategy = Strategy::SerialMh;
    opts.seed = 77;
    const MpcgsResult baseline = estimateTheta(aln, opts);

    const std::string path = tempPath("sv_mcmc.mpck");
    RunSupervisor::Config svCfg;
    svCfg.handleSignals = false;
    RunSupervisor sv(svCfg);
    failpoint::configure("supervisor.stop=after(60)");
    MpcgsOptions part = opts;
    part.checkpointPath = path;
    part.checkpointIntervalTicks = 5;
    part.supervisor = &sv;
    try {
        estimateTheta(aln, part);
        FAIL() << "injected stop did not interrupt the run";
    } catch (const InterruptedError& e) {
        EXPECT_TRUE(e.checkpointWritten());
    }
    // The final snapshot must be a valid, CRC-clean current-version file.
    EXPECT_EQ(verifySnapshot(path), kCheckpointVersion);

    failpoint::reset();
    MpcgsOptions rest = opts;
    rest.checkpointPath = path;
    rest.resume = true;
    const MpcgsResult resumed = estimateTheta(aln, rest);
    EXPECT_EQ(resumed.theta, baseline.theta);
    ASSERT_EQ(resumed.history.size(), baseline.history.size());
    for (std::size_t i = 0; i < baseline.history.size(); ++i)
        EXPECT_EQ(resumed.history[i].thetaAfter, baseline.history[i].thetaAfter);
    std::remove(path.c_str());
}

TEST_F(SupervisorTest, SmcInterruptThenResumeIsBitwiseIdentical) {
    Dataset ds;
    ds.add(Locus{"locus0", smallAlignment(), 1.0, {}});
    SmcEstimateOptions opts;
    opts.theta0 = 1.0;
    opts.smc.particles = 64;
    opts.seed = 19;
    const SmcEstimateResult baseline = estimateThetaSmc(ds, opts);

    const std::string path = tempPath("sv_smc.mpck");
    RunSupervisor::Config svCfg;
    svCfg.handleSignals = false;
    RunSupervisor sv(svCfg);
    failpoint::configure("supervisor.stop=after(6)");
    SmcEstimateOptions part = opts;
    part.checkpointPath = path;
    part.checkpointIntervalEvals = 4;
    part.supervisor = &sv;
    try {
        estimateThetaSmc(ds, part);
        FAIL() << "injected stop did not interrupt the run";
    } catch (const InterruptedError& e) {
        EXPECT_TRUE(e.checkpointWritten());
    }
    EXPECT_EQ(verifySnapshot(path), kCheckpointVersion);

    failpoint::reset();
    SmcEstimateOptions rest = opts;
    rest.checkpointPath = path;
    rest.resume = true;
    const SmcEstimateResult resumed = estimateThetaSmc(ds, rest);
    EXPECT_EQ(resumed.theta, baseline.theta);
    EXPECT_EQ(resumed.logZAtMax, baseline.logZAtMax);
    EXPECT_EQ(resumed.support.lower, baseline.support.lower);
    EXPECT_EQ(resumed.support.upper, baseline.support.upper);
    std::remove(path.c_str());
}

TEST_F(SupervisorTest, PmmhInterruptThenResumeIsBitwiseIdentical) {
    Dataset ds;
    ds.add(Locus{"locus0", smallAlignment(), 1.0, {}});
    PmmhEstimateOptions opts;
    opts.theta0 = 1.0;
    opts.samples = 40;
    opts.pmmh.chains = 2;
    opts.pmmh.smc.particles = 32;
    opts.pmmh.seed = 23;
    const PmmhEstimateResult baseline = runPmmh(ds, opts);

    const std::string path = tempPath("sv_pmmh.mpck");
    RunSupervisor::Config svCfg;
    svCfg.handleSignals = false;
    RunSupervisor sv(svCfg);
    failpoint::configure("supervisor.stop=after(8)");
    PmmhEstimateOptions part = opts;
    part.checkpointPath = path;
    part.checkpointIntervalTicks = 3;
    part.supervisor = &sv;
    try {
        runPmmh(ds, part);
        FAIL() << "injected stop did not interrupt the run";
    } catch (const InterruptedError& e) {
        EXPECT_TRUE(e.checkpointWritten());
    }
    EXPECT_EQ(verifySnapshot(path), kCheckpointVersion);

    failpoint::reset();
    PmmhEstimateOptions rest = opts;
    rest.checkpointPath = path;
    rest.resume = true;
    const PmmhEstimateResult resumed = runPmmh(ds, rest);
    EXPECT_EQ(resumed.posteriorMean, baseline.posteriorMean);
    EXPECT_EQ(resumed.posteriorSd, baseline.posteriorSd);
    ASSERT_EQ(resumed.thetaChainMajor.size(), baseline.thetaChainMajor.size());
    for (std::size_t i = 0; i < baseline.thetaChainMajor.size(); ++i)
        EXPECT_EQ(resumed.thetaChainMajor[i], baseline.thetaChainMajor[i]);
    std::remove(path.c_str());
}

TEST_F(SupervisorTest, StructuredInterruptThenResumeIsBitwiseIdentical) {
    Mt19937 rng(43);
    MigrationModel truth(2, 1.0, 0.5);
    std::vector<int> demes{0, 0, 0, 1, 1, 1};
    const StructuredGenealogy g = simulateStructuredCoalescent(demes, truth, rng);
    SeqGenOptions so;
    so.length = 150;
    const auto model = makeF84(2.0, kUniformFreqs);
    const Alignment aln = simulateSequences(g.tree(), *model, so, rng);

    StructuredOptions opts;
    opts.init = MigrationModel(2, 1.0, 1.0);
    opts.emIterations = 2;
    opts.samplesPerIteration = 150;
    opts.chains = 2;
    opts.seed = 4242;
    const StructuredResult baseline = estimateStructured(aln, demes, opts);

    const std::string path = tempPath("sv_structured.mpck");
    RunSupervisor::Config svCfg;
    svCfg.handleSignals = false;
    RunSupervisor sv(svCfg);
    failpoint::configure("supervisor.stop=after(40)");
    StructuredOptions part = opts;
    part.checkpointPath = path;
    part.checkpointIntervalTicks = 5;
    part.supervisor = &sv;
    try {
        estimateStructured(aln, demes, part);
        FAIL() << "injected stop did not interrupt the run";
    } catch (const InterruptedError& e) {
        EXPECT_TRUE(e.checkpointWritten());
    }
    EXPECT_EQ(verifySnapshot(path), kCheckpointVersion);

    failpoint::reset();
    StructuredOptions rest = opts;
    rest.checkpointPath = path;
    rest.resume = true;
    const StructuredResult resumed = estimateStructured(aln, demes, rest);
    EXPECT_EQ(resumed.estimate, baseline.estimate);
    ASSERT_EQ(resumed.history.size(), baseline.history.size());
    for (std::size_t i = 0; i < baseline.history.size(); ++i)
        EXPECT_EQ(resumed.history[i].after, baseline.history[i].after);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace mpcgs
