#include "coalescent/death_process.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "rng/mt19937.h"
#include "util/error.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DeathRate, MatchesKingmanPairCounts) {
    const double theta = 2.0;
    // j actives, m inactives: rate = [j(j-1) + 2jm] / theta.
    EXPECT_DOUBLE_EQ(DeathProcess::rate(2, 0, theta), 2.0 / theta);
    EXPECT_DOUBLE_EQ(DeathProcess::rate(3, 0, theta), 6.0 / theta);
    EXPECT_DOUBLE_EQ(DeathProcess::rate(2, 3, theta), (2.0 + 12.0) / theta);
    EXPECT_DOUBLE_EQ(DeathProcess::rate(3, 2, theta), (6.0 + 12.0) / theta);
    // A lone active lineage is absorbing in the restricted move.
    EXPECT_DOUBLE_EQ(DeathProcess::rate(1, 5, theta), 0.0);
    EXPECT_DOUBLE_EQ(DeathProcess::rate(0, 5, theta), 0.0);
}

TEST(TransitionProb, DiagonalIsSurvival) {
    const double theta = 1.0, t = 0.4;
    const int m = 1;
    EXPECT_NEAR(DeathProcess::transitionProb(3, 3, t, m, theta),
                std::exp(-DeathProcess::rate(3, m, theta) * t), 1e-12);
    EXPECT_DOUBLE_EQ(DeathProcess::transitionProb(1, 1, t, m, theta), 1.0);
}

TEST(TransitionProb, TwoToOneClosedForm) {
    const double theta = 1.3, t = 0.7;
    const int m = 2;
    const double l2 = DeathProcess::rate(2, m, theta);
    EXPECT_NEAR(DeathProcess::transitionProb(2, 1, t, m, theta), 1.0 - std::exp(-l2 * t),
                1e-12);
}

TEST(TransitionProb, RowsSumToOne) {
    for (const int m : {0, 1, 3}) {
        for (const double t : {0.01, 0.3, 2.0}) {
            for (int a = 1; a <= 3; ++a) {
                double sum = 0.0;
                for (int b = 1; b <= a; ++b)
                    sum += DeathProcess::transitionProb(a, b, t, m, 1.0);
                EXPECT_NEAR(sum, 1.0, 1e-10) << "a=" << a << " m=" << m << " t=" << t;
            }
        }
    }
}

TEST(TransitionProb, ZeroAndInfiniteTime) {
    EXPECT_DOUBLE_EQ(DeathProcess::transitionProb(3, 3, 0.0, 1, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(DeathProcess::transitionProb(3, 2, 0.0, 1, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(DeathProcess::transitionProb(3, 1, kInf, 1, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(DeathProcess::transitionProb(3, 2, kInf, 1, 1.0), 0.0);
}

TEST(TransitionProb, ChapmanKolmogorov) {
    const double theta = 0.9;
    const int m = 1;
    const double s = 0.3, t = 0.5;
    for (int a = 1; a <= 3; ++a) {
        for (int b = 1; b <= a; ++b) {
            double conv = 0.0;
            for (int k = b; k <= a; ++k)
                conv += DeathProcess::transitionProb(a, k, s, m, theta) *
                        DeathProcess::transitionProb(k, b, t, m, theta);
            EXPECT_NEAR(conv, DeathProcess::transitionProb(a, b, s + t, m, theta), 1e-10);
        }
    }
}

TEST(TransitionProb, MatchesMonteCarloSimulation) {
    // Simulate the raw death process and compare empirical state occupancy.
    const double theta = 1.0, t = 0.5;
    const int m = 2, a = 3;
    Mt19937 rng(5);
    const int reps = 100000;
    std::array<int, 4> counts{};
    for (int r = 0; r < reps; ++r) {
        int j = a;
        double clock = 0.0;
        while (j > 1) {
            clock += rng.exponential(DeathProcess::rate(j, m, theta));
            if (clock > t) break;
            --j;
        }
        counts[static_cast<std::size_t>(j)]++;
    }
    for (int b = 1; b <= a; ++b) {
        const double expect = DeathProcess::transitionProb(a, b, t, m, theta);
        EXPECT_NEAR(counts[static_cast<std::size_t>(b)] / static_cast<double>(reps), expect,
                    0.01)
            << "b=" << b;
    }
}

// --- conditioned region sampling ---------------------------------------------

DeathProcess makeBoundedRegion(double theta = 1.0) {
    // Three children entering at 0, 0.1, 0.25; ancestor at 1.0; inactive
    // counts varying per interval.
    std::vector<FeasibleInterval> ivs{
        {0.0, 0.1, 3, 1},
        {0.1, 0.25, 2, 1},
        {0.25, 1.0, 1, 1},
    };
    return DeathProcess(std::move(ivs), theta);
}

TEST(DeathProcessRegion, CompletionProbabilityInUnitInterval) {
    const DeathProcess dp = makeBoundedRegion();
    const double h = dp.completionProbability();
    EXPECT_GT(h, 0.0);
    EXPECT_LE(h, 1.0);
    EXPECT_EQ(dp.totalActive(), 3);
}

TEST(DeathProcessRegion, SamplesAreSortedAndInsideRegion) {
    const DeathProcess dp = makeBoundedRegion();
    Mt19937 rng(6);
    for (int r = 0; r < 500; ++r) {
        const auto times = dp.sampleMergeTimes(rng);
        ASSERT_EQ(times.size(), 2u);
        EXPECT_LT(times[0], times[1]);
        EXPECT_GT(times[0], 0.0);
        EXPECT_LT(times[1], 1.0);
        // Density of every sampled configuration is finite.
        EXPECT_GT(dp.logDensity(times), -kInf);
    }
}

TEST(DeathProcessRegion, DensityIntegratesToOne) {
    // 2-D trapezoid quadrature of exp(logDensity) over 0 < s0 < s1 < 1.
    const DeathProcess dp = makeBoundedRegion();
    const int grid = 300;
    const double h = 1.0 / grid;
    double integral = 0.0;
    for (int i = 0; i < grid; ++i) {
        const double s0 = (i + 0.5) * h;
        for (int j = i + 1; j < grid; ++j) {
            const double s1 = (j + 0.5) * h;
            const std::array<double, 2> times{s0, s1};
            const double ld = dp.logDensity(times);
            if (ld > -kInf) integral += std::exp(ld) * h * h;
        }
    }
    EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(DeathProcessRegion, SamplerMatchesDensityMarginal) {
    // Empirical CDF of the first merge time vs quadrature of the density.
    const DeathProcess dp = makeBoundedRegion();
    Mt19937 rng(7);
    const int reps = 40000;
    int below = 0;
    const double cut = 0.3;
    for (int r = 0; r < reps; ++r)
        if (dp.sampleMergeTimes(rng)[0] < cut) ++below;

    const int grid = 400;
    const double h = 1.0 / grid;
    double massBelow = 0.0;
    for (int i = 0; i < grid; ++i) {
        const double s0 = (i + 0.5) * h;
        if (s0 >= cut) break;
        for (int j = i + 1; j < grid; ++j) {
            const double s1 = (j + 0.5) * h;
            const std::array<double, 2> times{s0, s1};
            const double ld = dp.logDensity(times);
            if (ld > -kInf) massBelow += std::exp(ld) * h * h;
        }
    }
    EXPECT_NEAR(below / static_cast<double>(reps), massBelow, 0.02);
}

TEST(DeathProcessRegion, UnboundedRegionSamplesEventually) {
    std::vector<FeasibleInterval> ivs{
        {0.0, 0.2, 2, 2},
        {0.2, kInf, 0, 1},
    };
    const DeathProcess dp(std::move(ivs), 1.0);
    EXPECT_DOUBLE_EQ(dp.completionProbability(), 1.0);
    Mt19937 rng(8);
    for (int r = 0; r < 200; ++r) {
        const auto times = dp.sampleMergeTimes(rng);
        ASSERT_EQ(times.size(), 2u);
        EXPECT_LT(times[0], times[1]);
        EXPECT_GT(dp.logDensity(times), -kInf);
    }
}

TEST(DeathProcessRegion, UnboundedDensityIntegratesToOne) {
    std::vector<FeasibleInterval> ivs{
        {0.0, 0.2, 1, 2},
        {0.2, kInf, 0, 1},
    };
    const DeathProcess dp(std::move(ivs), 1.0);
    const int grid = 500;
    const double hi = 12.0;  // integrate far into the exponential tail
    const double h = hi / grid;
    double integral = 0.0;
    for (int i = 0; i < grid; ++i) {
        const double s0 = (i + 0.5) * h;
        for (int j = i + 1; j < grid; ++j) {
            const double s1 = (j + 0.5) * h;
            const std::array<double, 2> times{s0, s1};
            const double ld = dp.logDensity(times);
            if (ld > -kInf) integral += std::exp(ld) * h * h;
        }
    }
    EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(DeathProcessRegion, DensityRejectsImpossibleConfigurations) {
    const DeathProcess dp = makeBoundedRegion();
    // Wrong count.
    const std::array<double, 1> one{0.5};
    EXPECT_EQ(dp.logDensity(one), -kInf);
    // Unsorted.
    const std::array<double, 2> unsorted{0.6, 0.4};
    EXPECT_EQ(dp.logDensity(unsorted), -kInf);
    // First merge before two lineages exist (only one active before 0.1).
    const std::array<double, 2> early{0.05, 0.5};
    EXPECT_EQ(dp.logDensity(early), -kInf);
    // Merge beyond the bounded region.
    const std::array<double, 2> late{0.3, 1.5};
    EXPECT_EQ(dp.logDensity(late), -kInf);
}

TEST(DeathProcessRegion, ActiveCountBefore) {
    const DeathProcess dp = makeBoundedRegion();
    const std::array<double, 2> times{0.3, 0.6};
    EXPECT_EQ(dp.activeCountBefore(times, 0.05), 1);
    EXPECT_EQ(dp.activeCountBefore(times, 0.2), 2);
    EXPECT_EQ(dp.activeCountBefore(times, 0.29), 3);
    EXPECT_EQ(dp.activeCountBefore(times, 0.5), 2);
    EXPECT_EQ(dp.activeCountBefore(times, 0.9), 1);
}

TEST(DeathProcessRegion, RejectsMalformedIntervals) {
    EXPECT_THROW(DeathProcess({}, 1.0), InvariantError);
    // Negative length.
    EXPECT_THROW(DeathProcess({{0.5, 0.2, 1, 2}}, 1.0), InvariantError);
    // Not contiguous.
    EXPECT_THROW(DeathProcess({{0.0, 0.2, 1, 2}, {0.4, 1.0, 1, 1}}, 1.0), InvariantError);
    // Fewer than two actives.
    EXPECT_THROW(DeathProcess({{0.0, 1.0, 1, 1}}, 1.0), InvariantError);
    // Bad theta.
    EXPECT_THROW(DeathProcess({{0.0, 1.0, 1, 3}}, 0.0), InvariantError);
}

class RegionThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(RegionThetaSweep, SamplingStaysConsistent) {
    const DeathProcess dp = makeBoundedRegion(GetParam());
    Mt19937 rng(11);
    RunningStats s0;
    for (int r = 0; r < 2000; ++r) {
        const auto times = dp.sampleMergeTimes(rng);
        EXPECT_GT(dp.logDensity(times), -kInf);
        s0.add(times[0]);
    }
    EXPECT_GT(s0.mean(), 0.0);
    EXPECT_LT(s0.mean(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Thetas, RegionThetaSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0));

}  // namespace
}  // namespace mpcgs
